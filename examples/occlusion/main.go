// Occlusion: demonstrates step 5 of the overlap tracker. A fast car
// overtakes a slower one in an adjacent lane; while their images overlap
// the region proposal merges into a single box, and the tracker must keep
// both identities alive by coasting on predictions (the paper's
// prediction-based occlusion handling). The same scene is run with the
// handling disabled to show the failure mode.
package main

import (
	"context"
	"fmt"
	"os"

	"ebbiot/internal/core"
	"ebbiot/internal/events"
	"ebbiot/internal/pipeline"
	"ebbiot/internal/scene"
	"ebbiot/internal/sensor"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "occlusion:", err)
		os.Exit(1)
	}
}

func run() error {
	for _, handling := range []bool{true, false} {
		survived, err := trackCrossing(handling)
		if err != nil {
			return err
		}
		fmt.Printf("occlusion handling %-5v -> pre-crossing identities surviving the crossing: %d of 2\n", handling, survived)
	}
	fmt.Println("\nWith handling ON the two vehicles keep their identities through the")
	fmt.Println("merged-proposal frames; with handling OFF the contested proposal merges")
	fmt.Println("the trackers and one identity is lost.")
	return nil
}

// trackCrossing runs the crossing scene and returns how many of the track
// identities established before the crossing are still reported after the
// objects separate again (the cars cross around t = 2.2 s and separate by
// t = 3 s).
func trackCrossing(occlusionHandling bool) (int, error) {
	sc := scene.CrossingScene(events.DAVIS240, 4_600_000)
	simCfg := sensor.DefaultConfig(7)
	simCfg.NoiseRatePerPixelHz = 0.2
	sim, err := sensor.New(simCfg, sc)
	if err != nil {
		return 0, err
	}
	cfg := core.DefaultConfig()
	cfg.Tracker.OcclusionHandling = occlusionHandling
	sys, err := core.NewEBBIOT(cfg)
	if err != nil {
		return 0, err
	}
	const frameUS = 66_000
	before := map[int]bool{} // IDs confirmed before the crossing
	after := map[int]bool{}  // IDs reported after separation
	observe := func(snap pipeline.TrackSnapshot, s core.System) error {
		eb := s.(*core.EBBIOT)
		cursor := snap.StartUS
		for _, tr := range eb.Tracker().Tracks() {
			if !tr.Confirmed(cfg.Tracker.MinHits) {
				continue
			}
			switch {
			case cursor < 1_800_000:
				before[tr.ID] = true
			case cursor > 3_200_000:
				after[tr.ID] = true
			}
		}
		states := sc.At(cursor)
		if len(states) == 2 {
			overlap := states[0].Box.IntersectionArea(states[1].Box)
			if overlap > 0 && cursor%330_000 == 0 {
				fmt.Printf("  t=%.2fs objects overlap by %.0f px^2, active tracks: %d\n",
					float64(cursor)/1e6, overlap, eb.Tracker().ActiveTracks())
			}
		}
		return nil
	}
	src, err := pipeline.NewSceneSource(sim, sc.DurationUS)
	if err != nil {
		return 0, err
	}
	runner, err := pipeline.NewRunner(pipeline.Config{FrameUS: frameUS})
	if err != nil {
		return 0, err
	}
	if _, err := runner.Run(context.Background(),
		[]pipeline.Stream{{Name: "crossing", Source: src, System: sys, Observer: observe}}, nil); err != nil {
		return 0, err
	}
	survived := 0
	for id := range before {
		if after[id] {
			survived++
		}
	}
	return survived, nil
}
