// Traffic surveillance: the paper's headline scenario. Generates a short
// ENG-style junction recording (two lanes, mixed vehicle classes, tree
// distractor), runs all three pipelines over it, and prints each system's
// precision/recall — a miniature of the Fig. 4 comparison, runnable in a
// few seconds. The three system streams are sharded across pipeline
// workers (one per CPU); scores are deterministic regardless.
package main

import (
	"fmt"
	"os"

	"ebbiot/internal/core"
	"ebbiot/internal/dataset"
	"ebbiot/internal/eval"
	"ebbiot/internal/metrics"
	"ebbiot/internal/roe"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "trafficsurveillance:", err)
		os.Exit(1)
	}
}

func run() error {
	mask := roe.New(dataset.TreeROEENG())
	factories := map[string]eval.SystemFactory{
		"EBBIOT": func() (core.System, error) {
			return core.NewEBBIOT(core.DefaultConfig().WithROE(mask))
		},
		"EBBI+KF": func() (core.System, error) {
			cfg := core.DefaultKFConfig()
			cfg.ROE = mask
			return core.NewEBBIKF(cfg)
		},
		"EBMS": func() (core.System, error) {
			cfg := core.DefaultEBMSConfig()
			cfg.ROE = mask
			return core.NewEBMS(cfg)
		},
	}
	recs := []eval.RecordingSpec{
		{Name: "ENG", Preset: dataset.ENG, Scale: 20.0 / 2998.4, Seed: 21},
	}
	results, err := eval.CompareSystems(factories, recs, metrics.DefaultThresholds(), eval.DefaultOptions())
	if err != nil {
		return err
	}
	fmt.Println("20 s ENG-style junction recording, 3 systems, IoU thresholds 0.3-0.7")
	fmt.Println()
	for _, r := range results {
		fmt.Printf("%-8s:", r.System)
		for _, p := range r.Points {
			fmt.Printf("  P%.2f/R%.2f", p.Precision, p.Recall)
		}
		fmt.Println()
	}
	fmt.Println("\n(The EBBIOT row should dominate and stay flattest as the threshold rises;")
	fmt.Println(" EBMS keeps recall at low thresholds but its scatter-derived boxes lose IoU.)")
	return nil
}
