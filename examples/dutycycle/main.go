// Duty cycle: reproduces the Fig. 2 operating model. The sensor latches
// events while the processor sleeps; a timer interrupt every tF wakes the
// processor, which reads the binary image, runs the pipeline, and sleeps
// again. This example measures the actual per-frame processing time of the
// Go pipeline, feeds it into the duty-cycle power model, and contrasts the
// result with event-interrupt operation where background noise never lets
// the processor sleep.
package main

import (
	"fmt"
	"os"
	"time"

	"ebbiot/internal/core"
	"ebbiot/internal/ebbi"
	"ebbiot/internal/events"
	"ebbiot/internal/scene"
	"ebbiot/internal/sensor"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dutycycle:", err)
		os.Exit(1)
	}
}

func run() error {
	sc := scene.SingleObjectScene(events.DAVIS240, 3_000_000)
	simCfg := sensor.DefaultConfig(3)
	sim, err := sensor.New(simCfg, sc)
	if err != nil {
		return err
	}
	sys, err := core.NewEBBIOT(core.DefaultConfig())
	if err != nil {
		return err
	}

	const frameUS = 66_000
	var busy time.Duration
	var frames int
	var totalEvents int
	for cursor := int64(0); cursor+frameUS <= sc.DurationUS; cursor += frameUS {
		evs, err := sim.Events(cursor, cursor+frameUS)
		if err != nil {
			return err
		}
		totalEvents += len(evs)
		start := time.Now()
		if _, err := sys.ProcessWindow(evs); err != nil {
			return err
		}
		busy += time.Since(start)
		frames++
	}
	perFrame := busy / time.Duration(frames)

	fmt.Printf("frames: %d, events: %d (%.0f/frame), mean processing: %v/frame\n",
		frames, totalEvents, float64(totalEvents)/float64(frames), perFrame)

	dc := ebbi.DutyCycle{FrameUS: frameUS, ActivePowerMW: 100, SleepPowerMW: 0.5}
	rep, err := dc.Analyze(perFrame.Microseconds())
	if err != nil {
		return err
	}
	fmt.Printf("\nFig. 2 operating model (tF = 66 ms, 100 mW active / 0.5 mW sleep):\n")
	fmt.Printf("  sleep fraction:  %5.1f%%\n", rep.SleepFraction*100)
	fmt.Printf("  average power:   %5.2f mW (vs %.0f mW always-on)\n", rep.AvgPowerMW, rep.AlwaysOnPowerMW)
	fmt.Printf("  power savings:   %5.1fx\n", rep.Savings)

	// Contrast with the event-interrupt mode the paper argues against: the
	// sensor raises an interrupt per event, and background noise alone
	// (~1 Hz/pixel over 43200 pixels) keeps the processor awake.
	ev := ebbi.EventInterruptModel{
		EventRateHz:    float64(totalEvents) / (float64(sc.DurationUS) / 1e6),
		WakeOverheadUS: 20,
		HandlingUS:     2,
		BatchSize:      1,
		ActivePowerMW:  100,
		SleepPowerMW:   0.5,
	}
	evRep, err := ev.Analyze()
	if err != nil {
		return err
	}
	fmt.Printf("\nEvent-interrupt mode at the same event rate (%.0f ev/s):\n", ev.EventRateHz)
	fmt.Printf("  sleep fraction:  %5.1f%%\n", evRep.SleepFraction*100)
	fmt.Printf("  average power:   %5.2f mW\n", evRep.AvgPowerMW)
	fmt.Printf("  EBBI advantage:  %5.1fx lower power\n", evRep.AvgPowerMW/rep.AvgPowerMW)

	fmt.Println("\nWhy event interrupts cannot sleep: at the paper's sensor noise rates the")
	fmt.Println("array emits background events continuously, so an event-interrupt design")
	fmt.Println("wakes for every spurious event. The EBBI scheme wakes exactly 15 times/s")
	fmt.Println("regardless of noise, because the sensor array itself stores the frame.")
	return nil
}
