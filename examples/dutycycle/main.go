// Duty cycle: reproduces the Fig. 2 operating model. The sensor latches
// events while the processor sleeps; a timer interrupt every tF wakes the
// processor, which reads the binary image, runs the pipeline, and sleeps
// again. This example measures the actual per-frame processing time of the
// Go pipeline, feeds it into the duty-cycle power model, and contrasts the
// result with event-interrupt operation where background noise never lets
// the processor sleep.
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"ebbiot/internal/core"
	"ebbiot/internal/ebbi"
	"ebbiot/internal/events"
	"ebbiot/internal/pipeline"
	"ebbiot/internal/scene"
	"ebbiot/internal/sensor"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dutycycle:", err)
		os.Exit(1)
	}
}

func run() error {
	sc := scene.SingleObjectScene(events.DAVIS240, 3_000_000)
	simCfg := sensor.DefaultConfig(3)
	sim, err := sensor.New(simCfg, sc)
	if err != nil {
		return err
	}
	sys, err := core.NewEBBIOT(core.DefaultConfig())
	if err != nil {
		return err
	}

	// The runner's per-window ProcUS timestamps measure exactly the active
	// slice of the duty cycle: the sensor (source) side is not part of the
	// processor's wake time.
	const frameUS = 66_000
	var busyUS int64
	var frames int
	var totalEvents int
	src, err := pipeline.NewSceneSource(sim, sc.DurationUS)
	if err != nil {
		return err
	}
	runner, err := pipeline.NewRunner(pipeline.Config{FrameUS: frameUS})
	if err != nil {
		return err
	}
	observe := func(snap pipeline.TrackSnapshot, _ core.System) error {
		totalEvents += snap.Events
		busyUS += snap.ProcUS
		frames++
		return nil
	}
	if _, err := runner.Run(context.Background(),
		[]pipeline.Stream{{Name: "dutycycle", Source: src, System: sys, Observer: observe}}, nil); err != nil {
		return err
	}
	perFrame := time.Duration(busyUS/int64(frames)) * time.Microsecond

	fmt.Printf("frames: %d, events: %d (%.0f/frame), mean processing: %v/frame\n",
		frames, totalEvents, float64(totalEvents)/float64(frames), perFrame)

	dc := ebbi.DutyCycle{FrameUS: frameUS, ActivePowerMW: 100, SleepPowerMW: 0.5}
	rep, err := dc.Analyze(perFrame.Microseconds())
	if err != nil {
		return err
	}
	fmt.Printf("\nFig. 2 operating model (tF = 66 ms, 100 mW active / 0.5 mW sleep):\n")
	fmt.Printf("  sleep fraction:  %5.1f%%\n", rep.SleepFraction*100)
	fmt.Printf("  average power:   %5.2f mW (vs %.0f mW always-on)\n", rep.AvgPowerMW, rep.AlwaysOnPowerMW)
	fmt.Printf("  power savings:   %5.1fx\n", rep.Savings)

	// Contrast with the event-interrupt mode the paper argues against: the
	// sensor raises an interrupt per event, and background noise alone
	// (~1 Hz/pixel over 43200 pixels) keeps the processor awake.
	ev := ebbi.EventInterruptModel{
		EventRateHz:    float64(totalEvents) / (float64(sc.DurationUS) / 1e6),
		WakeOverheadUS: 20,
		HandlingUS:     2,
		BatchSize:      1,
		ActivePowerMW:  100,
		SleepPowerMW:   0.5,
	}
	evRep, err := ev.Analyze()
	if err != nil {
		return err
	}
	fmt.Printf("\nEvent-interrupt mode at the same event rate (%.0f ev/s):\n", ev.EventRateHz)
	fmt.Printf("  sleep fraction:  %5.1f%%\n", evRep.SleepFraction*100)
	fmt.Printf("  average power:   %5.2f mW\n", evRep.AvgPowerMW)
	fmt.Printf("  EBBI advantage:  %5.1fx lower power\n", evRep.AvgPowerMW/rep.AvgPowerMW)

	fmt.Println("\nWhy event interrupts cannot sleep: at the paper's sensor noise rates the")
	fmt.Println("array emits background events continuously, so an event-interrupt design")
	fmt.Println("wakes for every spurious event. The EBBI scheme wakes exactly 15 times/s")
	fmt.Println("regardless of noise, because the sensor array itself stores the frame.")

	// End-to-end check of the model: replay the same scene paced at
	// recorded wall-clock speed (sped up 8x to keep the example snappy)
	// through a PacedSource, so the processor really does idle between
	// window interrupts, and compare the measured active fraction with the
	// model's prediction. This is the pacing mode `ebbiot-run -pace`
	// exposes — the duty cycle exercised for real instead of replay
	// finishing in milliseconds.
	const paceSpeed = 8.0
	sim2, err := sensor.New(simCfg, sc)
	if err != nil {
		return err
	}
	src2, err := pipeline.NewSceneSource(sim2, sc.DurationUS)
	if err != nil {
		return err
	}
	paced, err := pipeline.NewPacedSource(src2, pipeline.PaceConfig{Speed: paceSpeed})
	if err != nil {
		return err
	}
	sys2, err := core.NewEBBIOT(core.DefaultConfig())
	if err != nil {
		return err
	}
	var pacedBusyUS int64
	start := time.Now()
	if _, err := runner.Run(context.Background(),
		[]pipeline.Stream{{Name: "paced", Source: paced, System: sys2,
			Observer: func(snap pipeline.TrackSnapshot, _ core.System) error {
				pacedBusyUS += snap.ProcUS
				return nil
			}}}, nil); err != nil {
		return err
	}
	elapsed := time.Since(start)
	measuredActive := float64(pacedBusyUS) / float64(elapsed.Microseconds())
	fmt.Printf("\nPaced replay at %gx recorded speed: %.1fs wall-clock for a %.1fs scene,\n",
		paceSpeed, elapsed.Seconds(), float64(sc.DurationUS)/1e6)
	fmt.Printf("measured active fraction %.3f%% (model predicts %.3f%% at this speed)\n",
		measuredActive*100, (1-rep.SleepFraction)*paceSpeed*100)
	return nil
}
