// Pedestrians: the paper's future-work extension. A walking human moves
// sub-pixel per 66 ms frame, so its events are too sparse for the base
// EBBIOT pipeline's median filter and RPN threshold — the paper notes "we
// have not tracked slow and small objects like humans" and proposes a two
// time scale approach with a longer second exposure. This example runs the
// base pipeline and the two-timescale pipeline on the same
// pedestrian-plus-car scene and prints per-class recall for both.
package main

import (
	"context"
	"fmt"
	"os"

	"ebbiot/internal/core"
	"ebbiot/internal/events"
	"ebbiot/internal/pipeline"
	"ebbiot/internal/scene"
	"ebbiot/internal/sensor"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pedestrians:", err)
		os.Exit(1)
	}
}

func mixedScene(durationUS int64) *scene.Scene {
	return &scene.Scene{
		Res:        events.DAVIS240,
		DurationUS: durationUS,
		Objects: []scene.Object{
			{
				ID: 0, Kind: scene.KindHuman, W: 7, H: 15, LaneY: 20,
				X0: 40, VX: 7, EnterUS: 0, ExitUS: durationUS, Z: 1,
				EdgeDensity: 0.8, InteriorDensity: 0.25,
			},
			{
				ID: 1, Kind: scene.KindCar, W: 32, H: 18, LaneY: 90,
				X0: -32, VX: 55, EnterUS: 0, ExitUS: durationUS, Z: 2,
				EdgeDensity: 0.9, InteriorDensity: 0.2,
			},
		},
	}
}

func recallByKind(sys core.System, seed uint64) (human, car float64, err error) {
	sc := mixedScene(8_000_000)
	cfg := sensor.DefaultConfig(seed)
	cfg.NoiseRatePerPixelHz = 0.3
	sim, err := sensor.New(cfg, sc)
	if err != nil {
		return 0, 0, err
	}
	var hHit, hTot, cHit, cTot int
	observe := func(snap pipeline.TrackSnapshot, _ core.System) error {
		if snap.StartUS < 1_000_000 {
			return nil
		}
		for _, g := range sc.GroundTruth(snap.EndUS, 20) {
			matched := false
			for _, b := range snap.Boxes {
				if b.IoU(g.Box) > 0.3 {
					matched = true
					break
				}
			}
			if g.Kind == scene.KindHuman {
				hTot++
				if matched {
					hHit++
				}
			} else {
				cTot++
				if matched {
					cHit++
				}
			}
		}
		return nil
	}
	src, err := pipeline.NewSceneSource(sim, sc.DurationUS)
	if err != nil {
		return 0, 0, err
	}
	runner, err := pipeline.NewRunner(pipeline.Config{FrameUS: 66_000})
	if err != nil {
		return 0, 0, err
	}
	if _, err := runner.Run(context.Background(),
		[]pipeline.Stream{{Name: "mixed", Source: src, System: sys, Observer: observe}}, nil); err != nil {
		return 0, 0, err
	}
	return float64(hHit) / float64(hTot), float64(cHit) / float64(cTot), nil
}

func run() error {
	base, err := core.NewEBBIOT(core.DefaultConfig())
	if err != nil {
		return err
	}
	bh, bc, err := recallByKind(base, 51)
	if err != nil {
		return err
	}
	two, err := core.NewTwoTimescale(core.DefaultTwoTimescaleConfig())
	if err != nil {
		return err
	}
	th, tc, err := recallByKind(two, 51)
	if err != nil {
		return err
	}
	fmt.Println("Recall at IoU 0.3 on a pedestrian + car scene (8 s):")
	fmt.Printf("  %-22s human %5.2f   car %5.2f\n", "EBBIOT (tF=66ms):", bh, bc)
	fmt.Printf("  %-22s human %5.2f   car %5.2f\n", "EBBIOT-2TS (+264ms):", th, tc)
	fmt.Println("\nThe walking human yields ~0.5 px of motion per base frame — too few")
	fmt.Println("events to survive the median filter. The second, 4x longer exposure")
	fmt.Println("integrates enough events to track it, without disturbing the fast lane.")
	return nil
}
