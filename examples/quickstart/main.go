// Quickstart: simulate a single car crossing the DAVIS field of view, run
// the full EBBIOT pipeline on it through the streaming runtime, and render
// the Fig. 3 artefacts — the event-based binary image, its X/Y histograms
// and the resulting region proposal — plus the live track box, as ASCII.
//
// The per-window inspection happens in a pipeline Observer, which runs
// synchronously between windows and may therefore read the system's
// window-scoped internals (LastFrame/LastRPN alias buffers the next window
// overwrites).
//
// The run is also recorded through a StoreSink into a temporary embedded
// snapshot store and replayed from disk afterwards, verifying that the
// persisted sequence is identical to what the live sink saw — the
// record→replay loop that ebbiot-run -store / ebbiot-query expose on the
// command line.
package main

import (
	"context"
	"fmt"
	"math"
	"os"
	"reflect"

	"ebbiot/internal/core"
	"ebbiot/internal/events"
	"ebbiot/internal/pipeline"
	"ebbiot/internal/scene"
	"ebbiot/internal/sensor"
	"ebbiot/internal/store"
	"ebbiot/internal/vis"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// A 4-second scene: one car, left to right at 60 px/s.
	sc := scene.SingleObjectScene(events.DAVIS240, 4_000_000)
	simCfg := sensor.DefaultConfig(42)
	sim, err := sensor.New(simCfg, sc)
	if err != nil {
		return err
	}
	sys, err := core.NewEBBIOT(core.DefaultConfig())
	if err != nil {
		return err
	}

	const frameUS = 66_000
	src, err := pipeline.NewSceneSource(sim, sc.DurationUS)
	if err != nil {
		return err
	}
	runner, err := pipeline.NewRunner(pipeline.Config{FrameUS: frameUS})
	if err != nil {
		return err
	}
	observe := func(snap pipeline.TrackSnapshot, s core.System) error {
		eb := s.(*core.EBBIOT)
		// Render one mid-crossing frame in detail (the Fig. 3 moment).
		if snap.StartUS == 1_980_000 {
			frame := eb.LastFrame()
			res := eb.LastRPN()
			fmt.Printf("=== frame at t=%.2fs: %d events, %d set pixels, %d proposals ===\n",
				float64(snap.StartUS)/1e6, frame.EventCount, frame.Filtered.CountOnes(), len(res.Proposals))
			fmt.Println(vis.ASCIIFrame(frame.Filtered, res.Boxes(), 4))
			fmt.Println("X histogram (downsampled by s1=6):")
			fmt.Println(vis.ASCIIHistogram(res.HX, 40))
		}
		gt := sc.GroundTruth(snap.EndUS, 4)
		if len(snap.Boxes) > 0 && len(gt) > 0 {
			fmt.Printf("t=%.2fs  track=%v  gt=%v  IoU=%.2f\n",
				float64(snap.EndUS)/1e6, snap.Boxes[0], gt[0].Box, snap.Boxes[0].IoU(gt[0].Box))
		}
		return nil
	}
	// Record the run into an embedded snapshot store while the live
	// callback sink collects the same sequence.
	storeDir, err := os.MkdirTemp("", "ebbiot-quickstart-store")
	if err != nil {
		return err
	}
	defer os.RemoveAll(storeDir)
	sw, err := store.Open(storeDir, store.Options{})
	if err != nil {
		return err
	}
	var live []pipeline.TrackSnapshot
	collect := pipeline.SinkFunc(func(snap pipeline.TrackSnapshot) error {
		live = append(live, snap)
		return nil
	})
	_, err = runner.Run(context.Background(),
		[]pipeline.Stream{{Name: "quickstart", Source: src, System: sys, Observer: observe}},
		pipeline.MultiSink{collect, pipeline.NewStoreSink(sw)})
	if err != nil {
		return err
	}
	if err := sw.Close(); err != nil {
		return err
	}

	// Replay the stored run and check it is bit-identical to the live one.
	r, err := store.OpenReader(storeDir)
	if err != nil {
		return err
	}
	var replayed []pipeline.TrackSnapshot
	if _, err := pipeline.ReplayStore(context.Background(), r, nil, 0, math.MaxInt64,
		pipeline.SinkFunc(func(snap pipeline.TrackSnapshot) error {
			replayed = append(replayed, snap)
			return nil
		})); err != nil {
		return err
	}
	if !reflect.DeepEqual(live, replayed) {
		return fmt.Errorf("store round-trip mismatch: %d live vs %d replayed snapshots", len(live), len(replayed))
	}
	st := r.Stats()
	fmt.Printf("\nstore: recorded %d snapshots (%d bytes on disk), replayed %d, identical\n",
		st.Records, st.DataBytes, len(replayed))
	return nil
}
