// Quickstart: simulate a single car crossing the DAVIS field of view, run
// the full EBBIOT pipeline on it, and render the Fig. 3 artefacts — the
// event-based binary image, its X/Y histograms and the resulting region
// proposal — plus the live track box, as ASCII.
package main

import (
	"fmt"
	"os"

	"ebbiot/internal/core"
	"ebbiot/internal/events"
	"ebbiot/internal/scene"
	"ebbiot/internal/sensor"
	"ebbiot/internal/vis"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// A 4-second scene: one car, left to right at 60 px/s.
	sc := scene.SingleObjectScene(events.DAVIS240, 4_000_000)
	simCfg := sensor.DefaultConfig(42)
	sim, err := sensor.New(simCfg, sc)
	if err != nil {
		return err
	}
	sys, err := core.NewEBBIOT(core.DefaultConfig())
	if err != nil {
		return err
	}

	const frameUS = 66_000
	for cursor := int64(0); cursor+frameUS <= sc.DurationUS; cursor += frameUS {
		evs, err := sim.Events(cursor, cursor+frameUS)
		if err != nil {
			return err
		}
		boxes, err := sys.ProcessWindow(evs)
		if err != nil {
			return err
		}
		// Render one mid-crossing frame in detail (the Fig. 3 moment).
		if cursor == 1_980_000 {
			frame := sys.LastFrame()
			res := sys.LastRPN()
			fmt.Printf("=== frame at t=%.2fs: %d events, %d set pixels, %d proposals ===\n",
				float64(cursor)/1e6, frame.EventCount, frame.Filtered.CountOnes(), len(res.Proposals))
			fmt.Println(vis.ASCIIFrame(frame.Filtered, res.Boxes(), 4))
			fmt.Println("X histogram (downsampled by s1=6):")
			fmt.Println(vis.ASCIIHistogram(res.HX, 40))
		}
		gt := sc.GroundTruth(cursor+frameUS, 4)
		if len(boxes) > 0 && len(gt) > 0 {
			fmt.Printf("t=%.2fs  track=%v  gt=%v  IoU=%.2f\n",
				float64(cursor+frameUS)/1e6, boxes[0], gt[0].Box, boxes[0].IoU(gt[0].Box))
		}
	}
	return nil
}
