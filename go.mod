module ebbiot

go 1.22
