module ebbiot

go 1.21
