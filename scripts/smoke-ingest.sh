#!/usr/bin/env bash
# Network-ingest smoke test: start ebbiot-run as a two-stream ingest server
# with the control plane attached, reject a bad-token sender, replay a
# deterministic recording into each stream over loopback TCP with
# ebbiot-gen -send, probe the per-stream ingest counters over HTTP while
# the run is live, and require a clean, lossless exit. Used by
# `make smoke-ingest` and CI.
set -euo pipefail

INGEST=127.0.0.1:18081
HTTP=127.0.0.1:18082
TOKEN=smoke-secret
BIN=${BIN:-bin/ebbiot-run}
GEN=${GEN:-bin/ebbiot-gen}

$BIN -listen "$INGEST" -streams cam0,cam1 -ingest-token "$TOKEN" -http "$HTTP" \
  >smoke-ingest.csv 2>smoke-ingest.log &
PID=$!
trap 'kill $PID 2>/dev/null || true' EXIT

# Wait for the control plane (and with it the ingest listener) to come up.
for i in $(seq 1 50); do
  if curl -fsS "http://$HTTP/healthz" >/dev/null 2>&1; then break; fi
  sleep 0.1
done

echo "--- healthz while waiting for sensors"
curl -fsS "http://$HTTP/healthz" | grep -q '"status": "ok"'
curl -fsS "http://$HTTP/streams/cam0" | grep -q '"state": "running"'

echo "--- bad token is rejected"
if $GEN -preset LT4 -scale 0.001 -seed 3 -send "$INGEST" -stream cam0 -token wrong 2>gen-reject.log; then
  echo "sender with a bad token was accepted"; exit 1
fi
grep -q "bad token" gen-reject.log
rm -f gen-reject.log

echo "--- stream cam0 over the wire"
$GEN -preset LT4 -scale 0.003 -seed 3 -send "$INGEST" -stream cam0 -token "$TOKEN" \
  | grep -q "sent .* events .* as stream \"cam0\""

echo "--- live ingest counters (cam1 still pending keeps the run alive)"
curl -fsS "http://$HTTP/streams/cam0" | grep -q '"batches"'
METRICS=$(curl -fsS "http://$HTTP/metrics")
echo "$METRICS" | grep -q '^ebbiot_ingest_batches_total{stream="cam0"}'
echo "$METRICS" | grep -q '^ebbiot_ingest_faults_total{stream="cam0"} 0'
echo "$METRICS" | grep -q '^ebbiot_ingest_dropped_events_total{stream="cam0"} 0'
echo "$METRICS" | grep -q '^ebbiot_source_errors_total{stream="cam0"} 0'

echo "--- stream cam1, then clean exit"
$GEN -preset LT4 -scale 0.003 -seed 4 -send "$INGEST" -stream cam1 -token "$TOKEN" >/dev/null
wait $PID
trap - EXIT

echo "--- lossless per-stream summaries"
grep -q 'ingest cam0: accepted .* batches .* dropped 0 batches / 0 events; dup 0, gaps 0, faults 0' smoke-ingest.log
grep -q 'ingest cam1: accepted .* batches .* dropped 0 batches / 0 events; dup 0, gaps 0, faults 0' smoke-ingest.log

echo "--- tracking output produced"
ROWS=$(tail -n +2 smoke-ingest.csv | wc -l)
test "$ROWS" -gt 0

rm -f smoke-ingest.csv smoke-ingest.log
echo "ingest smoke: OK"
