#!/usr/bin/env bash
# Control-plane smoke test: run the quickstart scene paced at recorded
# speed with the HTTP control plane, drive every endpoint while the run is
# live, and require a clean exit. Used by `make smoke-control` and CI.
set -euo pipefail

ADDR=127.0.0.1:18080
BIN=${BIN:-bin/ebbiot-run}

$BIN -scene 8000 -pace -speed 1 -http "$ADDR" >/dev/null 2>smoke-run.log &
PID=$!
trap 'kill $PID 2>/dev/null || true' EXIT

# Wait for the server to come up (the run lasts ~8 s), then for the first
# paced window to land: the per-stream stage block (windows_skipped and
# friends) is only published once a window has been processed, and on a
# fast box the probes below can otherwise beat the 66 ms pacer to it.
for i in $(seq 1 50); do
  if curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then break; fi
  sleep 0.1
done
for i in $(seq 1 50); do
  if curl -fsS "http://$ADDR/streams/0" 2>/dev/null | grep -q '"windows_skipped"'; then break; fi
  sleep 0.1
done

echo "--- healthz"
curl -fsS "http://$ADDR/healthz" | grep -q '"status": "ok"'
curl -fsS "http://$ADDR/healthz" | grep -q '"phase": "running"'

echo "--- stats"
STATS=$(curl -fsS "http://$ADDR/stats")
echo "$STATS" | grep -q '"running": true'
echo "$STATS" | grep -q '"name": "sensor0"'

echo "--- stream by id"
curl -fsS "http://$ADDR/streams/0" | grep -q '"state": "running"'
curl -fsS "http://$ADDR/streams/sensor0" | grep -q '"sensor": 0'
# The near-empty fast-path counter is part of the stage timings and must be
# serialized even while zero (the busy smoke scene skips nothing).
curl -fsS "http://$ADDR/streams/sensor0" | grep -q '"windows_skipped"'

echo "--- params GET"
curl -fsS "http://$ADDR/params" | grep -q '"version": 1'

echo "--- params PATCH (live retune)"
curl -fsS -X PATCH "http://$ADDR/params" -d '{"frame_us": 33000, "threshold": 2}' \
  | grep -q '"version": 2'

echo "--- params PATCH invalid (400, old version stays)"
CODE=$(curl -s -o /dev/null -w '%{http_code}' -X PATCH "http://$ADDR/params" -d '{"median_p": 4}')
test "$CODE" = "400"
curl -fsS "http://$ADDR/params" | grep -q '"version": 2'

echo "--- metrics"
sleep 1  # let the retune land at a window boundary
METRICS=$(curl -fsS "http://$ADDR/metrics")
echo "$METRICS" | grep -q '^ebbiot_param_version 2'
echo "$METRICS" | grep -q '^ebbiot_windows_total{stream="sensor0"}'
echo "$METRICS" | grep -q '^ebbiot_windows_skipped_total{stream="sensor0"}'
echo "$METRICS" | grep -q '^ebbiot_frame_us{stream="sensor0"} 33000'

echo "--- clean exit"
wait $PID
trap - EXIT
grep -q "params: finished on version 2" smoke-run.log
rm -f smoke-run.log
echo "control plane smoke: OK"
