#!/usr/bin/env bash
# Interleaved A/B bench regression gate: compare the gated benchmarks of
# two source trees (usually merge-base vs head) on this machine.
#
#   scripts/bench-gate.sh BASE_TREE HEAD_TREE
#
# Sequential A-then-B comparisons are unusable on shared/virtualized CPUs:
# this container's vCPU drifts 20-55% on a minutes timescale, so two runs
# taken even a few minutes apart disagree far beyond any tolerance that
# could still catch real regressions. The fix is the benchstat playbook:
# compile each side's test binaries once, then ALTERNATE base/head
# executions repetition by repetition so both sides sample the same
# machine phases, and keep each side's fastest repetition per benchmark
# (the parse-level min in ebbiot-benchfmt). Real kernel regressions land
# as 2x+; the interleaved min-of-REPS brings run-to-run disagreement well
# under the tolerance.
#
# Tunables (env): BENCH_MATCH (gated bench regex), BENCH_REPS,
# BENCHTIME (per repetition), BENCH_TOLERANCE (percent), BENCH_MIN_NS
# (ns/op floor below which slowdowns are informational: sub-microsecond
# benchmarks sit under this box's code-layout noise floor — relinking
# alone moves them 15-50%, interleaving or not, as even untouched
# benchmarks demonstrate — so they cannot gate).
# The HEAD tree's ebbiot-benchfmt parses and compares BOTH sides, so the
# de-noising treats them identically even when the base predates it.
# Benchmarks present on only one side are informational, never failures,
# so a PR adding a benchmark stays green.
set -euo pipefail

if [ $# -ne 2 ]; then
  echo "usage: $0 BASE_TREE HEAD_TREE" >&2
  exit 2
fi
BASE_TREE=$(cd "$1" && pwd)
HEAD_TREE=$(cd "$2" && pwd)
MATCH=${BENCH_MATCH:-'Median|Downsample|Histograms|Popcount|ProcessWindow'}
REPS=${BENCH_REPS:-6}
BENCHTIME=${BENCHTIME:-300ms}
TOL=${BENCH_TOLERANCE:-15}
MIN_NS=${BENCH_MIN_NS:-2000}
# Packages holding gated benchmarks today; binaries whose benches don't
# match the regex cost nothing at run time.
PKGS="internal/imgproc internal/core"

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

for side in base head; do
  tree=$BASE_TREE
  [ "$side" = head ] && tree=$HEAD_TREE
  mkdir -p "$WORK/$side"
  for p in $PKGS; do
    if [ -d "$tree/$p" ]; then
      (cd "$tree" && go test -c -o "$WORK/$side/$(basename "$p").test" "./$p/")
    fi
  done
done

# Enumerate the gated top-level benchmark functions per side and package
# (sub-benchmarks ride along with their parent), so the run loop can pair
# base and head at per-function granularity.
for side in base head; do
  for p in $PKGS; do
    bin="$WORK/$side/$(basename "$p").test"
    [ -x "$bin" ] || continue
    "$bin" -test.list "$MATCH" | grep '^Benchmark' \
      >"$WORK/$side.$(basename "$p").list" || true
  done
done

for rep in $(seq 1 "$REPS"); do
  echo "bench-gate: repetition $rep/$REPS" >&2
  # Side innermost, one benchmark function at a time: the base and head
  # runs of the same function sit seconds apart, well inside one machine
  # phase (the drift timescale is minutes). The within-pair order flips
  # every repetition — whichever binary runs second starts on a core the
  # first just heated, so a fixed order would bias one side slow.
  order="base head"
  [ $((rep % 2)) -eq 0 ] && order="head base"
  for p in $PKGS; do
    funcs=$(cat "$WORK"/*."$(basename "$p")".list 2>/dev/null | sort -u)
    [ -n "$funcs" ] || continue
    for fn in $funcs; do
      for side in $order; do
        bin="$WORK/$side/$(basename "$p").test"
        grep -qx "$fn" "$WORK/$side.$(basename "$p").list" 2>/dev/null || continue
        # go test binaries print no "pkg:" headers; emit them so benchfmt
        # qualifies names the same way `go test ./...` output does.
        echo "pkg: ebbiot/$p" >>"$WORK/$side.txt"
        "$bin" -test.run xxx -test.bench "^${fn}\$" -test.benchmem \
          -test.benchtime "$BENCHTIME" >>"$WORK/$side.txt"
      done
    done
  done
done

cd "$HEAD_TREE"
go run ./cmd/ebbiot-benchfmt -o "$WORK/base.json" <"$WORK/base.txt"
go run ./cmd/ebbiot-benchfmt -o "$WORK/head.json" <"$WORK/head.txt"
go run ./cmd/ebbiot-benchfmt compare -tolerance "$TOL" -min-ns "$MIN_NS" -match "$MATCH" \
  "$WORK/base.json" "$WORK/head.json"
