// Package ebbiot_test is the benchmark harness that regenerates every table
// and figure of the paper's evaluation (see DESIGN.md's per-experiment
// index and EXPERIMENTS.md for recorded paper-vs-measured numbers).
//
// Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark reports the figure's headline quantities via
// b.ReportMetric, so the bench output doubles as the experiment log.
// Dataset replicas are seconds-long scaled versions of the Table I
// recordings; all rates and object statistics match the full-scale presets.
package ebbiot_test

import (
	"context"
	"fmt"
	"testing"

	"ebbiot/internal/core"
	"ebbiot/internal/dataset"
	"ebbiot/internal/ebbi"
	"ebbiot/internal/ebms"
	"ebbiot/internal/eval"
	"ebbiot/internal/events"
	"ebbiot/internal/filter"
	"ebbiot/internal/geometry"
	"ebbiot/internal/imgproc"
	"ebbiot/internal/kalman"
	"ebbiot/internal/metrics"
	"ebbiot/internal/pipeline"
	"ebbiot/internal/resources"
	"ebbiot/internal/roe"
	"ebbiot/internal/rpn"
	"ebbiot/internal/scene"
	"ebbiot/internal/sensor"
	"ebbiot/internal/tracker"
)

// ---------------------------------------------------------------------------
// E1 — Table I: dataset details (duration, event count, event rate).
// ---------------------------------------------------------------------------

func benchTableI(b *testing.B, preset dataset.Preset, fullSeconds, paperEvents float64) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		spec, err := dataset.For(preset, 8.0/fullSeconds, 42)
		if err != nil {
			b.Fatal(err)
		}
		rec, err := dataset.Generate(spec)
		if err != nil {
			b.Fatal(err)
		}
		row, err := dataset.MeasureTableRow(rec, 66_000)
		if err != nil {
			b.Fatal(err)
		}
		rate := float64(row.Events) / row.DurationS
		b.ReportMetric(rate, "events/s")
		b.ReportMetric(paperEvents/fullSeconds, "paper-events/s")
		b.ReportMetric(float64(row.Tracks), "tracks")
	}
}

func BenchmarkTableI_ENG(b *testing.B) { benchTableI(b, dataset.ENG, 2998.4, 107_500_000) }
func BenchmarkTableI_LT4(b *testing.B) { benchTableI(b, dataset.LT4, 999.5, 12_500_000) }

// ---------------------------------------------------------------------------
// E2 — Fig. 2: interrupt-driven duty-cycled operation.
// ---------------------------------------------------------------------------

func BenchmarkFig2_DutyCycle(b *testing.B) {
	sc := scene.SingleObjectScene(events.DAVIS240, 2_000_000)
	sim, err := sensor.New(sensor.DefaultConfig(3), sc)
	if err != nil {
		b.Fatal(err)
	}
	// Pre-generate the frames so the benchmark isolates pipeline time (the
	// simulated sensor is not part of the processor's duty cycle).
	var windows [][]events.Event
	for cursor := int64(0); cursor+66_000 <= sc.DurationUS; cursor += 66_000 {
		evs, err := sim.Events(cursor, cursor+66_000)
		if err != nil {
			b.Fatal(err)
		}
		windows = append(windows, evs)
	}
	sys, err := core.NewEBBIOT(core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.ProcessWindow(windows[i%len(windows)]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	perFrameUS := float64(b.Elapsed().Microseconds()) / float64(b.N)
	dc := ebbi.DutyCycle{FrameUS: 66_000, ActivePowerMW: 100, SleepPowerMW: 0.5}
	rep, err := dc.Analyze(int64(perFrameUS))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(rep.SleepFraction*100, "sleep%")
	b.ReportMetric(rep.Savings, "power-savings-x")
}

// ---------------------------------------------------------------------------
// E3 — Fig. 3: EBBI + histogram region proposal on one frame.
// ---------------------------------------------------------------------------

func BenchmarkFig3_RPNFrame(b *testing.B) {
	// A frame with a fragmented large vehicle (two dense halves), the
	// situation Fig. 3 illustrates.
	img := imgproc.NewBitmap(240, 180)
	for y := 70; y < 95; y++ {
		for x := 60; x < 85; x++ {
			img.Set(x, y)
		}
		for x := 92; x < 120; x++ {
			img.Set(x, y)
		}
	}
	p, err := rpn.New(rpn.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var nProposals int
	for i := 0; i < b.N; i++ {
		res, err := p.Propose(img)
		if err != nil {
			b.Fatal(err)
		}
		nProposals = len(res.Proposals)
	}
	// The fragmented vehicle must merge into a single proposal.
	b.ReportMetric(float64(nProposals), "proposals")
}

// ---------------------------------------------------------------------------
// E4 — Fig. 4: precision/recall vs IoU threshold, three systems, weighted
// across the two recordings.
// ---------------------------------------------------------------------------

func benchFig4(b *testing.B, factory eval.SystemFactory) {
	recs := []eval.RecordingSpec{
		{Name: "ENG", Preset: dataset.ENG, Scale: 12.0 / 2998.4, Seed: 11},
		{Name: "LT4", Preset: dataset.LT4, Scale: 12.0 / 999.5, Seed: 13},
	}
	for i := 0; i < b.N; i++ {
		results, err := eval.CompareSystems(
			map[string]eval.SystemFactory{"sys": factory},
			recs, metrics.DefaultThresholds(), eval.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		pts := results[0].Points
		b.ReportMetric(pts[0].Precision, "P@0.3")
		b.ReportMetric(pts[0].Recall, "R@0.3")
		b.ReportMetric(pts[2].Precision, "P@0.5")
		b.ReportMetric(pts[2].Recall, "R@0.5")
		b.ReportMetric(pts[4].Precision, "P@0.7")
		b.ReportMetric(pts[4].Recall, "R@0.7")
	}
}

func BenchmarkFig4_EBBIOT(b *testing.B) {
	mask := roe.New(dataset.TreeROEENG())
	benchFig4(b, func() (core.System, error) {
		return core.NewEBBIOT(core.DefaultConfig().WithROE(mask))
	})
}

func BenchmarkFig4_EBBIKF(b *testing.B) {
	mask := roe.New(dataset.TreeROEENG())
	benchFig4(b, func() (core.System, error) {
		cfg := core.DefaultKFConfig()
		cfg.ROE = mask
		return core.NewEBBIKF(cfg)
	})
}

func BenchmarkFig4_EBMS(b *testing.B) {
	mask := roe.New(dataset.TreeROEENG())
	benchFig4(b, func() (core.System, error) {
		cfg := core.DefaultEBMSConfig()
		cfg.ROE = mask
		return core.NewEBMS(cfg)
	})
}

// ---------------------------------------------------------------------------
// E5 — Fig. 5: relative computes and memory of the three pipelines.
// ---------------------------------------------------------------------------

func BenchmarkFig5_Resources(b *testing.B) {
	p := resources.PaperDefaults()
	ot := resources.DefaultOTParams()
	var cmp resources.Comparison
	var err error
	for i := 0; i < b.N; i++ {
		cmp, err = p.Compare(ot)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(cmp.RelComputes[2], "EBMS-rel-computes")
	b.ReportMetric(cmp.RelMemory[2], "EBMS-rel-memory")
	b.ReportMetric(cmp.RelComputes[1], "KF-rel-computes")
	b.ReportMetric(cmp.RelMemory[1], "KF-rel-memory")
}

// ---------------------------------------------------------------------------
// E6 — Eq. 1 vs Eq. 2: EBBI median filtering vs NN event filtering, analytic
// model cross-checked against instrumented implementations on one identical
// simulated frame stream.
// ---------------------------------------------------------------------------

func BenchmarkEq12_NoiseFilterCost(b *testing.B) {
	p := resources.PaperDefaults()
	// Simulated busy frame stream.
	sc := scene.SingleObjectScene(events.DAVIS240, 2_000_000)
	sim, err := sensor.New(sensor.DefaultConfig(5), sc)
	if err != nil {
		b.Fatal(err)
	}
	evs, err := sim.Events(0, 2_000_000)
	if err != nil {
		b.Fatal(err)
	}
	frames, err := events.Windows(evs, 66_000)
	if err != nil {
		b.Fatal(err)
	}
	src := imgproc.NewBitmap(240, 180)
	dst := imgproc.NewBitmap(240, 180)
	var medianOps, frameCount int64
	nn, err := filter.NewNN(events.DAVIS240, 3, 20_000)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := frames[i%len(frames)]
		src.Clear()
		for _, e := range w.Events {
			src.Set(int(e.X), int(e.Y))
		}
		ops, err := imgproc.MedianFilterCounted(dst, src, 3)
		if err != nil {
			b.Fatal(err)
		}
		medianOps += ops
		frameCount++
		nn.Filter(w.Events)
	}
	b.StopTimer()
	if frameCount > 0 {
		b.ReportMetric(float64(medianOps)/float64(frameCount)/1000, "measured-EBBI-kops/frame")
		b.ReportMetric(float64(nn.Ops())/float64(frameCount)/1000, "measured-NN-kops/frame")
	}
	b.ReportMetric(p.EBBIComputes()/1000, "eq1-EBBI-kops/frame")
	b.ReportMetric(p.NNFiltComputes()/1000, "eq2-NN-kops/frame")
	b.ReportMetric(p.NNFiltMemoryBits()/p.EBBIMemoryBits(), "memory-ratio")
}

// ---------------------------------------------------------------------------
// E7 — Eq. 5: histogram RPN cost.
// ---------------------------------------------------------------------------

func BenchmarkEq5_RPNCost(b *testing.B) {
	p := resources.PaperDefaults()
	img := imgproc.NewBitmap(240, 180)
	for y := 70; y < 90; y++ {
		for x := 60; x < 100; x++ {
			img.Set(x, y)
		}
	}
	prop, err := rpn.New(rpn.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prop.Propose(img); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(p.RPNComputes()/1000, "eq5-kops/frame")
	b.ReportMetric(p.RPNMemoryBits()/8192, "eq5-kB")
}

// ---------------------------------------------------------------------------
// E8 — Eq. 6: overlap tracker cost at NT ~ 2.
// ---------------------------------------------------------------------------

func BenchmarkEq6_OTCost(b *testing.B) {
	p := resources.PaperDefaults()
	tr, err := tracker.New(tracker.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	props := []geometry.Box{
		geometry.NewBox(50, 60, 30, 16),
		geometry.NewBox(150, 100, 40, 20),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Step([]geometry.Box{props[0].Translate(i%40, 0), props[1].Translate(-(i % 40), 0)})
	}
	b.StopTimer()
	b.ReportMetric(float64(tr.Ops())/float64(b.N), "measured-ops/frame")
	b.ReportMetric(p.OTComputes(resources.DefaultOTParams()), "eq6-ops/frame")
}

// ---------------------------------------------------------------------------
// E9 — Eq. 7: Kalman filter cost at n = m = 2 NT.
// ---------------------------------------------------------------------------

func BenchmarkEq7_KFCost(b *testing.B) {
	p := resources.PaperDefaults()
	tr, err := kalman.New(kalman.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	props := []geometry.Box{
		geometry.NewBox(50, 60, 30, 16),
		geometry.NewBox(150, 100, 40, 20),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Step([]geometry.Box{props[0].Translate(i%40, 0), props[1].Translate(-(i % 40), 0)}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(p.KFComputesPaper(), "eq7-ops/frame")
	b.ReportMetric(p.KFMemoryBitsPaper()/8192, "eq7-kB")
}

// ---------------------------------------------------------------------------
// E10 — Eq. 8: EBMS cost; analytic vs instrumented, with measured NF.
// ---------------------------------------------------------------------------

func BenchmarkEq8_EBMSCost(b *testing.B) {
	p := resources.PaperDefaults()
	sc := scene.SingleObjectScene(events.DAVIS240, 2_000_000)
	sim, err := sensor.New(sensor.DefaultConfig(9), sc)
	if err != nil {
		b.Fatal(err)
	}
	evs, err := sim.Events(0, 2_000_000)
	if err != nil {
		b.Fatal(err)
	}
	frames, err := events.Windows(evs, 66_000)
	if err != nil {
		b.Fatal(err)
	}
	nn, err := filter.NewNN(events.DAVIS240, 3, 20_000)
	if err != nil {
		b.Fatal(err)
	}
	ms, err := ebms.New(ebms.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	var nf, frameCount int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := frames[i%len(frames)]
		kept := nn.Filter(w.Events)
		nf += int64(len(kept))
		frameCount++
		ms.Process(kept)
	}
	b.StopTimer()
	if frameCount > 0 {
		b.ReportMetric(float64(nf)/float64(frameCount), "measured-NF")
		b.ReportMetric(float64(ms.Ops())/float64(frameCount)/1000, "measured-kops/frame")
	}
	b.ReportMetric(p.EBMSComputes()/1000, "eq8-kops/frame")
}

// ---------------------------------------------------------------------------
// E11 — headline ratios from the abstract.
// ---------------------------------------------------------------------------

func BenchmarkHeadline_Ratios(b *testing.B) {
	p := resources.PaperDefaults()
	ot := resources.DefaultOTParams()
	var cmp resources.Comparison
	var err error
	for i := 0; i < b.N; i++ {
		cmp, err = p.Compare(ot)
		if err != nil {
			b.Fatal(err)
		}
	}
	cnn := resources.CNNRPNEstimate()
	b.ReportMetric(cmp.RelComputes[2], "vs-EBMS-computes-x") // paper: ~3x
	b.ReportMetric(cmp.RelMemory[2], "vs-EBMS-memory-x")     // paper: ~7x
	b.ReportMetric(cnn.ComputesOps/p.RPNComputes(), "vs-CNN-computes-x")
	b.ReportMetric(cnn.MemoryBits/p.RPNMemoryBits(), "vs-CNN-memory-x")
}

// ---------------------------------------------------------------------------
// A1 — ablation: histogram RPN vs connected-components RPN.
// ---------------------------------------------------------------------------

func BenchmarkAblation_RPNvsCCA(b *testing.B) {
	// The same fragmented-vehicle frame processed by both proposers: the
	// histogram RPN merges the fragments, plain CCA splits them.
	img := imgproc.NewBitmap(240, 180)
	for y := 70; y < 95; y++ {
		for x := 60; x < 85; x++ {
			img.Set(x, y)
		}
		for x := 92; x < 120; x++ {
			img.Set(x, y)
		}
	}
	hist, err := rpn.New(rpn.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	cca := rpn.CCAProposer{MinPixels: 8}
	var histN, ccaN int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := hist.Propose(img)
		if err != nil {
			b.Fatal(err)
		}
		histN = len(res.Proposals)
		ccaN = len(cca.Propose(img))
	}
	b.ReportMetric(float64(histN), "hist-proposals") // want 1 (merged)
	b.ReportMetric(float64(ccaN), "cca-proposals")   // 2 (fragmented)
}

// ---------------------------------------------------------------------------
// A2 — ablation: occlusion handling on/off over crossing scenes.
// ---------------------------------------------------------------------------

func BenchmarkAblation_Occlusion(b *testing.B) {
	run := func(handling bool) (survived int) {
		sc := scene.CrossingScene(events.DAVIS240, 4_600_000)
		simCfg := sensor.DefaultConfig(7)
		simCfg.NoiseRatePerPixelHz = 0.2
		sim, err := sensor.New(simCfg, sc)
		if err != nil {
			b.Fatal(err)
		}
		cfg := core.DefaultConfig()
		cfg.Tracker.OcclusionHandling = handling
		sys, err := core.NewEBBIOT(cfg)
		if err != nil {
			b.Fatal(err)
		}
		before := map[int]bool{}
		after := map[int]bool{}
		for cursor := int64(0); cursor+66_000 <= sc.DurationUS; cursor += 66_000 {
			evs, err := sim.Events(cursor, cursor+66_000)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sys.ProcessWindow(evs); err != nil {
				b.Fatal(err)
			}
			for _, tr := range sys.Tracker().Tracks() {
				if !tr.Confirmed(cfg.Tracker.MinHits) {
					continue
				}
				if cursor < 1_800_000 {
					before[tr.ID] = true
				} else if cursor > 3_200_000 {
					after[tr.ID] = true
				}
			}
		}
		for id := range before {
			if after[id] {
				survived++
			}
		}
		return survived
	}
	var on, off int
	for i := 0; i < b.N; i++ {
		on = run(true)
		off = run(false)
	}
	b.ReportMetric(float64(on), "identities-with-occlusion")     // want 2
	b.ReportMetric(float64(off), "identities-without-occlusion") // typically 1
}

// ---------------------------------------------------------------------------
// A3 — ablation: frame duration tF in {33, 66, 132} ms.
// ---------------------------------------------------------------------------

func BenchmarkAblation_FrameDuration(b *testing.B) {
	for _, tfMS := range []int64{33, 66, 132} {
		tfMS := tfMS
		b.Run(benchName(tfMS), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				spec, err := dataset.For(dataset.ENG, 10.0/2998.4, 11)
				if err != nil {
					b.Fatal(err)
				}
				rec, err := dataset.Generate(spec)
				if err != nil {
					b.Fatal(err)
				}
				cfg := core.DefaultConfig().WithROE(roe.New(dataset.TreeROEENG()))
				cfg.EBBI.FrameUS = tfMS * 1000
				sys, err := core.NewEBBIOT(cfg)
				if err != nil {
					b.Fatal(err)
				}
				opt := eval.DefaultOptions()
				opt.FrameUS = tfMS * 1000
				samples, err := eval.Run(sys, rec.Scene, rec.Sim, opt)
				if err != nil {
					b.Fatal(err)
				}
				c := metrics.Evaluate(samples, 0.5)
				b.ReportMetric(c.Precision(), "P@0.5")
				b.ReportMetric(c.Recall(), "R@0.5")
			}
		})
	}
}

func benchName(tfMS int64) string {
	switch tfMS {
	case 33:
		return "tF=33ms"
	case 66:
		return "tF=66ms"
	default:
		return "tF=132ms"
	}
}

// BenchmarkAblation_SkipThreshold sweeps the near-empty window fast path on
// an intermittent-traffic scene — a quiet low-noise sensor (~60 background
// events per window) watching one car cross mid-recording, so most windows
// are near-empty — reporting tracking quality against per-window processor
// time and the fraction of windows skipped. Thresholds at or below the
// lossless bound floor(p^2/2)+1 (5 for the paper's p = 3) cannot change any
// reported box, so P/R must match skip=0 exactly there; higher thresholds
// skip progressively more idle windows, cutting mean µs/window while the
// car's own windows stay untouched (see docs/EXPERIMENTS.md for recorded
// numbers).
func BenchmarkAblation_SkipThreshold(b *testing.B) {
	quiet := func() *scene.Scene {
		return &scene.Scene{
			Res:        events.DAVIS240,
			DurationUS: 10_000_000,
			Objects: []scene.Object{
				{ID: 0, Kind: scene.KindCar, W: 32, H: 18, LaneY: 90,
					X0: -32, VX: 60, EnterUS: 3_000_000, ExitUS: 7_500_000, Z: 1,
					EdgeDensity: 0.9, InteriorDensity: 0.2},
			},
		}
	}
	for _, thr := range []int{0, 5, 100, 400} {
		thr := thr
		b.Run(fmt.Sprintf("skip=%d", thr), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sc := quiet()
				scfg := sensor.DefaultConfig(11)
				scfg.NoiseRatePerPixelHz = 0.02
				sim, err := sensor.New(scfg, sc)
				if err != nil {
					b.Fatal(err)
				}
				cfg := core.DefaultConfig()
				cfg.SkipEventsBelow = thr
				sys, err := core.NewEBBIOT(cfg)
				if err != nil {
					b.Fatal(err)
				}
				samples, err := eval.Run(sys, sc, sim, eval.DefaultOptions())
				if err != nil {
					b.Fatal(err)
				}
				c := metrics.Evaluate(samples, 0.5)
				b.ReportMetric(c.Precision(), "P@0.5")
				b.ReportMetric(c.Recall(), "R@0.5")
				st := sys.StageTimings()
				if st.Windows > 0 {
					b.ReportMetric(100*float64(st.Skipped)/float64(st.Windows), "skipped%")
					b.ReportMetric(float64((st.EBBI+st.Filter+st.RPN+st.Track).Microseconds())/float64(st.Windows), "us/window")
				}
				sys.Close()
			}
		})
	}
}

// ---------------------------------------------------------------------------
// X1 — extension: two-timescale tracking of slow pedestrians (the paper's
// future-work proposal, Section IV).
// ---------------------------------------------------------------------------

func BenchmarkExtension_TwoTimescale(b *testing.B) {
	mixed := func() *scene.Scene {
		return &scene.Scene{
			Res:        events.DAVIS240,
			DurationUS: 6_000_000,
			Objects: []scene.Object{
				{ID: 0, Kind: scene.KindHuman, W: 7, H: 15, LaneY: 20,
					X0: 60, VX: 6, EnterUS: 0, ExitUS: 6_000_000, Z: 1,
					EdgeDensity: 0.8, InteriorDensity: 0.25},
				{ID: 1, Kind: scene.KindCar, W: 32, H: 18, LaneY: 90,
					X0: -32, VX: 60, EnterUS: 0, ExitUS: 6_000_000, Z: 2,
					EdgeDensity: 0.9, InteriorDensity: 0.2},
			},
		}
	}
	humanRecall := func(sys core.System) float64 {
		sc := mixed()
		cfg := sensor.DefaultConfig(31)
		cfg.NoiseRatePerPixelHz = 0.3
		sim, err := sensor.New(cfg, sc)
		if err != nil {
			b.Fatal(err)
		}
		var hits, total int
		for cursor := int64(0); cursor+66_000 <= sc.DurationUS; cursor += 66_000 {
			evs, err := sim.Events(cursor, cursor+66_000)
			if err != nil {
				b.Fatal(err)
			}
			boxes, err := sys.ProcessWindow(evs)
			if err != nil {
				b.Fatal(err)
			}
			if cursor < 1_000_000 {
				continue
			}
			for _, g := range sc.GroundTruth(cursor+66_000, 20) {
				if g.Kind != scene.KindHuman {
					continue
				}
				total++
				for _, bx := range boxes {
					if bx.IoU(g.Box) > 0.3 {
						hits++
						break
					}
				}
			}
		}
		if total == 0 {
			return 0
		}
		return float64(hits) / float64(total)
	}
	var base, two float64
	for i := 0; i < b.N; i++ {
		bsys, err := core.NewEBBIOT(core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		base = humanRecall(bsys)
		tsys, err := core.NewTwoTimescale(core.DefaultTwoTimescaleConfig())
		if err != nil {
			b.Fatal(err)
		}
		two = humanRecall(tsys)
	}
	b.ReportMetric(base, "human-recall-base")
	b.ReportMetric(two, "human-recall-2ts")
}

// ---------------------------------------------------------------------------
// E12 — extension: streaming pipeline runtime. Multi-sensor sharded Runner
// throughput versus worker count (events/s, windows/s), the production-scale
// deployment mode the cmd/ebbiot-run -sensors/-workers flags expose.
// ---------------------------------------------------------------------------

func BenchmarkPipeline_MultiSensorRunner(b *testing.B) {
	sc := scene.SingleObjectScene(events.DAVIS240, 2_000_000)
	sim, err := sensor.New(sensor.DefaultConfig(3), sc)
	if err != nil {
		b.Fatal(err)
	}
	evs, err := sim.Events(0, sc.DurationUS)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		workers := workers
		name := "workers=1"
		if workers != 1 {
			name = "workers=4"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				const sensors = 4
				streams := make([]pipeline.Stream, sensors)
				for k := range streams {
					src, err := pipeline.NewSliceSource(evs)
					if err != nil {
						b.Fatal(err)
					}
					sys, err := core.NewEBBIOT(core.DefaultConfig())
					if err != nil {
						b.Fatal(err)
					}
					streams[k] = pipeline.Stream{Source: src, System: sys}
				}
				runner, err := pipeline.NewRunner(pipeline.Config{FrameUS: 66_000, Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				stats, err := runner.Run(context.Background(), streams, nil)
				if err != nil {
					b.Fatal(err)
				}
				for k := range streams {
					streams[k].System.(*core.EBBIOT).Close()
				}
				b.ReportMetric(stats.EventsPerSec()/1e6, "Mevents/s")
				b.ReportMetric(stats.WindowsPerSec(), "windows/s")
			}
		})
	}
}

// ---------------------------------------------------------------------------
// A4 — ablation: RPN downsampling factors (s1, s2).
// ---------------------------------------------------------------------------

func BenchmarkAblation_RPNScales(b *testing.B) {
	configs := []struct {
		name   string
		s1, s2 int
	}{
		{"s1=1_s2=1", 1, 1},   // no downsampling: fragmentation unmitigated
		{"s1=6_s2=3", 6, 3},   // the paper's choice
		{"s1=12_s2=6", 12, 6}, // over-coarse: objects merge across lanes
	}
	for _, cfgCase := range configs {
		cfgCase := cfgCase
		b.Run(cfgCase.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				spec, err := dataset.For(dataset.ENG, 10.0/2998.4, 11)
				if err != nil {
					b.Fatal(err)
				}
				rec, err := dataset.Generate(spec)
				if err != nil {
					b.Fatal(err)
				}
				cfg := core.DefaultConfig().WithROE(roe.New(dataset.TreeROEENG()))
				cfg.RPN.S1 = cfgCase.s1
				cfg.RPN.S2 = cfgCase.s2
				sys, err := core.NewEBBIOT(cfg)
				if err != nil {
					b.Fatal(err)
				}
				samples, err := eval.Run(sys, rec.Scene, rec.Sim, eval.DefaultOptions())
				if err != nil {
					b.Fatal(err)
				}
				c := metrics.Evaluate(samples, 0.5)
				b.ReportMetric(c.Precision(), "P@0.5")
				b.ReportMetric(c.Recall(), "R@0.5")
			}
		})
	}
}

// ---------------------------------------------------------------------------
// A5 — ablation: proposal tightening (the validity-check extension).
// ---------------------------------------------------------------------------

func BenchmarkAblation_ProposalTighten(b *testing.B) {
	for _, tighten := range []bool{true, false} {
		tighten := tighten
		name := "tighten=off"
		if tighten {
			name = "tighten=on"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				spec, err := dataset.For(dataset.ENG, 10.0/2998.4, 11)
				if err != nil {
					b.Fatal(err)
				}
				rec, err := dataset.Generate(spec)
				if err != nil {
					b.Fatal(err)
				}
				cfg := core.DefaultConfig().WithROE(roe.New(dataset.TreeROEENG()))
				cfg.RPN.Tighten = tighten
				sys, err := core.NewEBBIOT(cfg)
				if err != nil {
					b.Fatal(err)
				}
				samples, err := eval.Run(sys, rec.Scene, rec.Sim, eval.DefaultOptions())
				if err != nil {
					b.Fatal(err)
				}
				c := metrics.Evaluate(samples, 0.5)
				b.ReportMetric(c.Precision(), "P@0.5")
				b.ReportMetric(c.Recall(), "R@0.5")
			}
		})
	}
}
