package tracker

import (
	"math"
	"testing"
	"testing/quick"

	"ebbiot/internal/geometry"
	"ebbiot/internal/roe"
)

func mustNew(t *testing.T, cfg Config) *Tracker {
	t.Helper()
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.MaxTrackers = 0 },
		func(c *Config) { c.MatchFraction = 0 },
		func(c *Config) { c.MatchFraction = 1.5 },
		func(c *Config) { c.PositionBlend = -0.1 },
		func(c *Config) { c.SizeBlend = 2 },
		func(c *Config) { c.VelocityBlend = -1 },
		func(c *Config) { c.OcclusionSteps = -1 },
		func(c *Config) { c.MaxMisses = 0 },
		func(c *Config) { c.Bounds = geometry.Box{} },
	}
	for i, mut := range mutations {
		cfg := DefaultConfig()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d should invalidate config", i)
		}
	}
}

func TestSeedAndConfirm(t *testing.T) {
	tr := mustNew(t, DefaultConfig())
	p := geometry.NewBox(50, 50, 30, 16)
	// First frame: track seeded but unconfirmed (MinHits = 2).
	if got := tr.Step([]geometry.Box{p}); len(got) != 0 {
		t.Errorf("track reported before confirmation: %v", got)
	}
	if tr.ActiveTracks() != 1 {
		t.Fatalf("active tracks = %d, want 1", tr.ActiveTracks())
	}
	// Second frame: matched again, now confirmed.
	got := tr.Step([]geometry.Box{p.Translate(3, 0)})
	if len(got) != 1 {
		t.Fatalf("confirmed track not reported: %v", got)
	}
	if got[0].Box.IoU(p.Translate(3, 0)) < 0.5 {
		t.Errorf("reported box %v far from proposal", got[0].Box)
	}
}

func TestTrackFollowsMovingObject(t *testing.T) {
	tr := mustNew(t, DefaultConfig())
	obj := geometry.NewBox(10, 60, 30, 16)
	var last []Report
	for i := 0; i < 20; i++ {
		last = tr.Step([]geometry.Box{obj.Translate(4*i, 0)})
	}
	if len(last) != 1 {
		t.Fatalf("want one track, got %d", len(last))
	}
	final := obj.Translate(4*19, 0)
	if last[0].Box.IoU(final) < 0.6 {
		t.Errorf("track %v lost object %v (IoU %.2f)", last[0].Box, final, last[0].Box.IoU(final))
	}
	// Velocity estimate should converge to ~4 px/frame rightward.
	if math.Abs(last[0].VX-4) > 1.5 {
		t.Errorf("VX = %v, want ~4", last[0].VX)
	}
	if math.Abs(last[0].VY) > 1 {
		t.Errorf("VY = %v, want ~0", last[0].VY)
	}
	// Track identity must be stable across the sequence.
	if tr.ActiveTracks() != 1 {
		t.Errorf("active tracks = %d", tr.ActiveTracks())
	}
}

func TestCoastingAndExpiry(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxMisses = 2
	tr := mustNew(t, cfg)
	obj := geometry.NewBox(50, 60, 30, 16)
	tr.Step([]geometry.Box{obj})
	tr.Step([]geometry.Box{obj.Translate(4, 0)})
	if tr.ActiveTracks() != 1 {
		t.Fatal("track not established")
	}
	// Proposals vanish: the track coasts for MaxMisses frames then frees.
	tr.Step(nil)
	tr.Step(nil)
	if tr.ActiveTracks() != 1 {
		t.Fatalf("track freed too early")
	}
	tr.Step(nil)
	if tr.ActiveTracks() != 0 {
		t.Errorf("track not freed after %d misses", cfg.MaxMisses+1)
	}
}

func TestCoastingPredictsThroughGap(t *testing.T) {
	// A two-frame detection dropout: prediction should carry the track so
	// that the object is re-acquired with the same ID.
	tr := mustNew(t, DefaultConfig())
	obj := geometry.NewBox(20, 60, 30, 16)
	var id int
	for i := 0; i < 6; i++ {
		reps := tr.Step([]geometry.Box{obj.Translate(5*i, 0)})
		if len(reps) > 0 {
			id = reps[0].ID
		}
	}
	tr.Step(nil) // dropout frames
	tr.Step(nil)
	reps := tr.Step([]geometry.Box{obj.Translate(5*8, 0)})
	if len(reps) != 1 {
		t.Fatalf("track lost through dropout: %v", reps)
	}
	if reps[0].ID != id {
		t.Errorf("track ID changed across dropout: %d -> %d", id, reps[0].ID)
	}
}

func TestFragmentedProposalsMerged(t *testing.T) {
	// One object fragmenting into two proposals: step 4 merges them into
	// one track; no second track may be seeded.
	tr := mustNew(t, DefaultConfig())
	whole := geometry.NewBox(50, 60, 40, 16)
	tr.Step([]geometry.Box{whole})
	tr.Step([]geometry.Box{whole.Translate(4, 0)})
	left := geometry.NewBox(58, 60, 14, 16)
	right := geometry.NewBox(80, 60, 14, 16)
	reps := tr.Step([]geometry.Box{left, right})
	if tr.ActiveTracks() != 1 {
		t.Fatalf("fragmentation seeded extra tracks: %d active", tr.ActiveTracks())
	}
	if len(reps) != 1 {
		t.Fatalf("want 1 report, got %d", len(reps))
	}
	// The track should span roughly the union of the fragments, with
	// history damping.
	if reps[0].Box.W < 25 {
		t.Errorf("merged track too narrow: %v", reps[0].Box)
	}
}

func TestPoolExhaustion(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxTrackers = 2
	tr := mustNew(t, cfg)
	props := []geometry.Box{
		geometry.NewBox(10, 10, 20, 12),
		geometry.NewBox(60, 60, 20, 12),
		geometry.NewBox(120, 120, 20, 12), // no slot for this one
	}
	tr.Step(props)
	if tr.ActiveTracks() != 2 {
		t.Errorf("active = %d, want pool cap 2", tr.ActiveTracks())
	}
}

func TestTrackFreedWhenLeavingFrame(t *testing.T) {
	tr := mustNew(t, DefaultConfig())
	// Object moving right at 12 px/frame near the right edge.
	obj := geometry.NewBox(200, 60, 24, 16)
	for i := 0; i < 4; i++ {
		tr.Step([]geometry.Box{obj.Translate(8*i, 0).Clamp(tr.Config().Bounds)})
	}
	// Let it coast out of the frame.
	for i := 0; i < 8; i++ {
		tr.Step(nil)
	}
	if tr.ActiveTracks() != 0 {
		t.Errorf("off-screen track not freed: %d active", tr.ActiveTracks())
	}
}

func TestOcclusionCoasting(t *testing.T) {
	// Two tracks with crossing trajectories receive one merged proposal at
	// the crossing: with occlusion handling they must both survive and keep
	// separate identities.
	cfg := DefaultConfig()
	tr := mustNew(t, cfg)
	// Establish two tracks moving toward each other.
	a := geometry.NewBox(40, 60, 24, 14)
	b := geometry.NewBox(160, 62, 24, 14)
	var ids []int
	for i := 0; i < 8; i++ {
		reps := tr.Step([]geometry.Box{a.Translate(6*i, 0), b.Translate(-6*i, 0)})
		ids = nil
		for _, r := range reps {
			ids = append(ids, r.ID)
		}
	}
	if len(ids) != 2 {
		t.Fatalf("want 2 established tracks, got %d", len(ids))
	}
	// Crossing frames: a single merged proposal covering both.
	merged := geometry.NewBox(85, 60, 40, 16)
	tr.Step([]geometry.Box{merged})
	tr.Step([]geometry.Box{merged.Translate(0, 0)})
	if tr.ActiveTracks() != 2 {
		t.Fatalf("occlusion collapsed tracks: %d active", tr.ActiveTracks())
	}
	// After crossing, two separate proposals reappear; both tracks should
	// reattach without new IDs.
	reps := tr.Step([]geometry.Box{
		geometry.NewBox(40+6*11, 60, 24, 14),
		geometry.NewBox(160-6*11, 62, 24, 14),
	})
	if len(reps) != 2 {
		t.Fatalf("tracks lost after occlusion: %d", len(reps))
	}
	for _, r := range reps {
		if r.ID != ids[0] && r.ID != ids[1] {
			t.Errorf("new ID %d appeared after occlusion (had %v)", r.ID, ids)
		}
	}
}

func TestFragmentMergeWithoutOcclusion(t *testing.T) {
	// Two tracks with nearly identical velocity contesting one proposal are
	// fragments of the same object: they must merge into one track.
	cfg := DefaultConfig()
	tr := mustNew(t, cfg)
	left := geometry.NewBox(50, 60, 14, 16)
	right := geometry.NewBox(72, 60, 14, 16)
	// Seed as two separate slow-moving tracks (same velocity).
	for i := 0; i < 4; i++ {
		tr.Step([]geometry.Box{left.Translate(3*i, 0), right.Translate(3*i, 0)})
	}
	if tr.ActiveTracks() != 2 {
		t.Fatalf("precondition: want 2 tracks, got %d", tr.ActiveTracks())
	}
	// The object defragments into one proposal spanning both.
	whole := geometry.NewBox(50+12, 60, 36, 16)
	tr.Step([]geometry.Box{whole})
	if tr.ActiveTracks() != 1 {
		t.Errorf("same-velocity contention should merge tracks: %d active", tr.ActiveTracks())
	}
}

func TestOcclusionHandlingDisabledMerges(t *testing.T) {
	// A2 ablation: with occlusion handling off, crossing tracks collapse.
	cfg := DefaultConfig()
	cfg.OcclusionHandling = false
	tr := mustNew(t, cfg)
	a := geometry.NewBox(40, 60, 24, 14)
	b := geometry.NewBox(160, 62, 24, 14)
	for i := 0; i < 8; i++ {
		tr.Step([]geometry.Box{a.Translate(6*i, 0), b.Translate(-6*i, 0)})
	}
	if tr.ActiveTracks() != 2 {
		t.Fatalf("precondition failed: %d active", tr.ActiveTracks())
	}
	merged := geometry.NewBox(85, 60, 40, 16)
	tr.Step([]geometry.Box{merged})
	if tr.ActiveTracks() != 1 {
		t.Errorf("without occlusion handling contention must merge: %d active", tr.ActiveTracks())
	}
}

func TestROEFiltersProposals(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ROE = roe.New(geometry.NewBox(0, 120, 240, 60)) // top band = tree zone
	tr := mustNew(t, cfg)
	inROE := geometry.NewBox(100, 140, 20, 12)
	clear := geometry.NewBox(100, 60, 20, 12)
	tr.Step([]geometry.Box{inROE, clear})
	tr.Step([]geometry.Box{inROE, clear})
	if tr.ActiveTracks() != 1 {
		t.Errorf("ROE proposal seeded a track: %d active", tr.ActiveTracks())
	}
	reps := tr.Step([]geometry.Box{clear})
	if len(reps) != 1 {
		t.Fatalf("clear track missing")
	}
	if !clear.Overlaps(reps[0].Box) {
		t.Errorf("surviving track at %v, want near %v", reps[0].Box, clear)
	}
}

func TestReportsClampedToBounds(t *testing.T) {
	tr := mustNew(t, DefaultConfig())
	edge := geometry.NewBox(220, 60, 19, 14)
	tr.Step([]geometry.Box{edge})
	reps := tr.Step([]geometry.Box{edge.Translate(6, 0).Clamp(tr.Config().Bounds)})
	for _, r := range reps {
		if !tr.Config().Bounds.ContainsBox(r.Box) {
			t.Errorf("report %v outside bounds", r.Box)
		}
	}
}

func TestVelocityRetainedDuringOcclusionCoast(t *testing.T) {
	cfg := DefaultConfig()
	tr := mustNew(t, cfg)
	a := geometry.NewBox(40, 60, 24, 14)
	b := geometry.NewBox(160, 62, 24, 14)
	for i := 0; i < 8; i++ {
		tr.Step([]geometry.Box{a.Translate(6*i, 0), b.Translate(-6*i, 0)})
	}
	var vxBefore []float64
	for _, trk := range tr.Tracks() {
		vxBefore = append(vxBefore, trk.VX)
	}
	merged := geometry.NewBox(85, 60, 40, 16)
	tr.Step([]geometry.Box{merged})
	for i, trk := range tr.Tracks() {
		if math.Abs(trk.VX-vxBefore[i]) > 1e-9 {
			t.Errorf("track %d velocity changed during occlusion coast: %v -> %v", i, vxBefore[i], trk.VX)
		}
	}
}

func TestOpsCounterAdvances(t *testing.T) {
	tr := mustNew(t, DefaultConfig())
	tr.Step([]geometry.Box{geometry.NewBox(10, 10, 20, 10)})
	if tr.Ops() == 0 {
		t.Error("ops counter did not advance")
	}
	if tr.Frame() != 1 {
		t.Errorf("frame counter = %d", tr.Frame())
	}
}

func TestStepNoProposalsNoTracks(t *testing.T) {
	tr := mustNew(t, DefaultConfig())
	if got := tr.Step(nil); len(got) != 0 {
		t.Errorf("empty step produced reports: %v", got)
	}
}

func BenchmarkStepTwoTracks(b *testing.B) {
	tr, err := New(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	props := []geometry.Box{
		geometry.NewBox(50, 60, 30, 16),
		geometry.NewBox(150, 90, 40, 20),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Step(props)
	}
}

func TestStepInvariantsProperty(t *testing.T) {
	// Whatever proposals arrive, the tracker must maintain its invariants:
	// reports lie inside bounds, the pool never exceeds MaxTrackers, IDs
	// never repeat across distinct live tracks, and velocities stay finite.
	prop := func(seed []uint16) bool {
		cfg := DefaultConfig()
		tr, err := New(cfg)
		if err != nil {
			return false
		}
		seen := map[int]bool{}
		for step := 0; step < 30; step++ {
			var props []geometry.Box
			for i := 0; i+3 < len(seed); i += 4 {
				if (int(seed[i])+step)%3 == 0 {
					props = append(props, geometry.NewBox(
						int(seed[i])%250-5,
						int(seed[i+1])%190-5,
						1+int(seed[i+2])%60,
						1+int(seed[i+3])%40,
					))
				}
			}
			reports := tr.Step(props)
			if tr.ActiveTracks() > cfg.MaxTrackers {
				return false
			}
			ids := map[int]bool{}
			for _, r := range reports {
				if !cfg.Bounds.ContainsBox(r.Box) || r.Box.Empty() {
					return false
				}
				if ids[r.ID] {
					return false // duplicate ID within a frame
				}
				ids[r.ID] = true
				if math.IsNaN(r.VX) || math.IsInf(r.VX, 0) || math.IsNaN(r.VY) || math.IsInf(r.VY, 0) {
					return false
				}
				seen[r.ID] = true
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestIDsNeverReused(t *testing.T) {
	// Track IDs are globally unique across the tracker's lifetime even as
	// slots are recycled.
	cfg := DefaultConfig()
	cfg.MaxMisses = 1
	tr := mustNew(t, cfg)
	assigned := map[int]int{} // ID -> generation
	gen := 0
	for cycle := 0; cycle < 10; cycle++ {
		gen++
		p := geometry.NewBox(20+cycle*5, 60, 20, 12)
		for i := 0; i < 3; i++ {
			for _, r := range tr.Step([]geometry.Box{p.Translate(3*i, 0)}) {
				if g, ok := assigned[r.ID]; ok && g != gen {
					t.Fatalf("ID %d reused across generations %d and %d", r.ID, g, gen)
				}
				assigned[r.ID] = gen
			}
		}
		// Kill the track.
		for i := 0; i < cfg.MaxMisses+2; i++ {
			tr.Step(nil)
		}
		if tr.ActiveTracks() != 0 {
			t.Fatalf("cycle %d: track survived starvation", cycle)
		}
	}
}
