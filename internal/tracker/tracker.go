// Package tracker implements the paper's overlap-based tracker (OT), the
// final stage of the EBBIOT pipeline (Section II-C).
//
// The tracker maintains up to NT (= 8) simultaneous tracks. Every frame it
// follows the five steps of the paper:
//
//  1. predict each valid track's position by adding its velocity;
//  2. match predictions against region proposals by overlap: a match is
//     declared when the intersection area exceeds a fraction of either the
//     predicted track box or the proposal box;
//  3. unmatched proposals seed new tracks while free slots exist;
//  4. a track matching one or more proposals (each uncontested) is updated
//     as a weighted average of prediction and the merged proposals, the
//     track's history smoothing away proposal fragmentation;
//  5. a proposal matched by multiple tracks is either a dynamic occlusion —
//     detected by predicting the contending tracks up to n (= 2) future
//     steps and testing for overlap, in which case each track coasts on its
//     prediction with velocity retained — or stale fragmentation, in which
//     case the tracks merge into the oldest one and the rest are freed.
//
// All state fits in a handful of registers per track (< 0.5 kB total in
// the paper's memory model, Eq. 6).
package tracker

import (
	"fmt"
	"math"

	"ebbiot/internal/geometry"
	"ebbiot/internal/roe"
)

// Config parameterises the overlap tracker.
type Config struct {
	// MaxTrackers is NT, the size of the track pool; the paper uses 8.
	MaxTrackers int
	// MatchFraction is the overlap fraction threshold: a predicted track
	// and a proposal match when their intersection exceeds this fraction of
	// either box's area.
	MatchFraction float64
	// PositionBlend is the weight given to the region proposal (versus the
	// prediction) when updating a matched track's position in step 4.
	PositionBlend float64
	// SizeBlend is the weight given to the merged proposal's size versus
	// the track's historical size; low values let history smooth
	// fragmentation.
	SizeBlend float64
	// VelocityBlend is the weight of the newly measured displacement in the
	// velocity update.
	VelocityBlend float64
	// OcclusionSteps is n, the number of future steps examined by the
	// occlusion test of step 5; the paper uses 2.
	OcclusionSteps int
	// OcclusionHandling can be disabled for the A2 ablation: when false,
	// contested proposals always merge tracks (no prediction coasting).
	OcclusionHandling bool
	// MinHits is the number of matched frames before a track is reported.
	MinHits int
	// MaxMisses frees a track after this many consecutive unmatched frames.
	MaxMisses int
	// Bounds is the sensor array; tracks fully outside are freed.
	Bounds geometry.Box
	// ROE optionally discards proposals covered by exclusion zones.
	ROE *roe.Mask
	// ROEMaxCover is the coverage fraction above which a proposal is
	// excluded (see roe.Mask.Excluded).
	ROEMaxCover float64
}

// DefaultConfig returns the parameters used throughout the evaluation:
// NT = 8, 30% overlap matching, n = 2 occlusion look-ahead, on a DAVIS240
// array.
func DefaultConfig() Config {
	return Config{
		MaxTrackers:       8,
		MatchFraction:     0.3,
		PositionBlend:     0.6,
		SizeBlend:         0.7,
		VelocityBlend:     0.5,
		OcclusionSteps:    2,
		OcclusionHandling: true,
		MinHits:           2,
		MaxMisses:         3,
		Bounds:            geometry.NewBox(0, 0, 240, 180),
		ROEMaxCover:       0.5,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.MaxTrackers <= 0 {
		return fmt.Errorf("tracker: MaxTrackers must be positive, got %d", c.MaxTrackers)
	}
	if c.MatchFraction <= 0 || c.MatchFraction > 1 {
		return fmt.Errorf("tracker: MatchFraction must be in (0,1], got %v", c.MatchFraction)
	}
	if c.PositionBlend < 0 || c.PositionBlend > 1 {
		return fmt.Errorf("tracker: PositionBlend must be in [0,1], got %v", c.PositionBlend)
	}
	if c.SizeBlend < 0 || c.SizeBlend > 1 {
		return fmt.Errorf("tracker: SizeBlend must be in [0,1], got %v", c.SizeBlend)
	}
	if c.VelocityBlend < 0 || c.VelocityBlend > 1 {
		return fmt.Errorf("tracker: VelocityBlend must be in [0,1], got %v", c.VelocityBlend)
	}
	if c.OcclusionSteps < 0 {
		return fmt.Errorf("tracker: negative OcclusionSteps %d", c.OcclusionSteps)
	}
	if c.MaxMisses < 1 {
		return fmt.Errorf("tracker: MaxMisses must be >= 1, got %d", c.MaxMisses)
	}
	if c.Bounds.Empty() {
		return fmt.Errorf("tracker: empty bounds")
	}
	return nil
}

// Track is one active track's state. Position is sub-pixel; velocities are
// in pixels per frame.
type Track struct {
	ID     int
	Box    geometry.FBox
	VX, VY float64
	// Hits is the number of frames in which the track matched a proposal;
	// Misses counts consecutive unmatched frames; Age is total frames.
	Hits, Misses, Age int
	valid             bool
}

// Confirmed reports whether the track has enough support to be reported.
func (t *Track) Confirmed(minHits int) bool { return t.valid && t.Hits >= minHits }

// predicted returns the track's position advanced k frames.
func (t *Track) predicted(k float64) geometry.FBox {
	return t.Box.Translate(t.VX*k, t.VY*k)
}

// Report is one confirmed track's per-frame output.
type Report struct {
	ID     int
	Box    geometry.Box
	VX, VY float64
}

// Tracker runs the overlap-based multi-object tracker.
type Tracker struct {
	cfg    Config
	pool   []Track
	nextID int
	// frame counts processed frames.
	frame int
	// ops approximates the per-frame primitive-operation count using the
	// paper's accounting, for validating Eq. 6.
	ops int64
}

// New returns a Tracker.
func New(cfg Config) (*Tracker, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Tracker{cfg: cfg, pool: make([]Track, cfg.MaxTrackers)}, nil
}

// Config returns the tracker's configuration.
func (t *Tracker) Config() Config { return t.cfg }

// Frame returns the number of frames processed.
func (t *Tracker) Frame() int { return t.frame }

// Ops returns the cumulative approximate operation count.
func (t *Tracker) Ops() int64 { return t.ops }

// ActiveTracks returns the number of valid tracks.
func (t *Tracker) ActiveTracks() int {
	n := 0
	for i := range t.pool {
		if t.pool[i].valid {
			n++
		}
	}
	return n
}

// Tracks returns copies of all valid tracks (confirmed or not), for tests
// and instrumentation.
func (t *Tracker) Tracks() []Track {
	out := make([]Track, 0, len(t.pool))
	for i := range t.pool {
		if t.pool[i].valid {
			out = append(out, t.pool[i])
		}
	}
	return out
}

// Step advances the tracker by one frame given the frame's region
// proposals, returning the confirmed tracks' reports.
func (t *Tracker) Step(proposals []geometry.Box) []Report {
	t.frame++

	// ROE: discard excluded proposals up front.
	if t.cfg.ROE != nil {
		proposals = t.cfg.ROE.FilterBoxes(proposals, t.cfg.ROEMaxCover)
	}

	// Step 1: predictions for all valid tracks.
	preds := make([]pred, 0, len(t.pool))
	for i := range t.pool {
		if t.pool[i].valid {
			preds = append(preds, pred{idx: i, box: t.pool[i].predicted(1)})
		}
	}

	// Step 2: overlap matching. matchT[pi] lists proposal indices matched
	// by prediction pi; matchP[j] lists prediction indices matching
	// proposal j.
	matchT := make([][]int, len(preds))
	matchP := make([][]int, len(proposals))
	for pi, pr := range preds {
		for j, pb := range proposals {
			t.ops += 4 // corner min/max for the intersection test
			fb := geometry.FBoxFrom(pb)
			inter := pr.box.IntersectionArea(fb)
			if inter <= 0 {
				continue
			}
			if inter >= t.cfg.MatchFraction*pr.box.Area() || inter >= t.cfg.MatchFraction*fb.Area() {
				matchT[pi] = append(matchT[pi], j)
				matchP[j] = append(matchP[j], pi)
			}
		}
	}

	// Step 5 first: resolve contested proposals (matched by > 1 track) so
	// that step 4 afterwards only sees uncontested assignments.
	claimed := make([]bool, len(proposals)) // proposal consumed by step 5
	frozen := make([]bool, len(preds))      // track already updated by step 5
	for j := range proposals {
		if len(matchP[j]) < 2 || claimed[j] {
			continue
		}
		// Tracks already resolved by an earlier contested proposal this
		// frame must not be re-processed: their boxes have advanced, which
		// would corrupt a second occlusion test (and double-count hits).
		contenders := make([]int, 0, len(matchP[j]))
		for _, pi := range matchP[j] {
			if !frozen[pi] {
				contenders = append(contenders, pi)
			}
		}
		if len(contenders) == 0 {
			claimed[j] = true
			continue
		}
		if len(contenders) == 1 {
			// Only one live contender: an ordinary step-4 match.
			continue
		}
		if t.cfg.OcclusionHandling && t.occluding(preds, contenders) {
			// Dynamic occlusion: every contender coasts on its prediction,
			// velocity retained (step 5, occlusion branch).
			for _, pi := range contenders {
				tr := &t.pool[preds[pi].idx]
				tr.Box = preds[pi].box
				tr.Age++
				tr.Hits++ // the object is present, just occluded
				tr.Misses = 0
				frozen[pi] = true
			}
		} else {
			// Stale fragmentation: merge all contenders into the oldest
			// track, update it from the proposal, free the rest.
			oldest := contenders[0]
			for _, pi := range contenders[1:] {
				if t.pool[preds[pi].idx].Age > t.pool[preds[oldest].idx].Age {
					oldest = pi
				}
			}
			tr := &t.pool[preds[oldest].idx]
			t.updateTrack(tr, preds[oldest].box, geometry.FBoxFrom(proposals[j]))
			frozen[oldest] = true
			for _, pi := range contenders {
				if pi != oldest {
					t.pool[preds[pi].idx] = Track{}
					frozen[pi] = true
				}
			}
		}
		claimed[j] = true
		t.ops += int64(80 * len(contenders))
	}

	// Step 4: uncontested updates; a track may consume several proposals
	// (fragmentation of the current frame), merged by union.
	for pi := range preds {
		if frozen[pi] {
			continue
		}
		tr := &t.pool[preds[pi].idx]
		var merged geometry.FBox
		n := 0
		for _, j := range matchT[pi] {
			if claimed[j] {
				continue
			}
			fb := geometry.FBoxFrom(proposals[j])
			if n == 0 {
				merged = fb
			} else {
				merged = unionF(merged, fb)
			}
			claimed[j] = true
			n++
		}
		if n == 0 {
			// Unmatched: coast and count a miss.
			tr.Box = preds[pi].box
			tr.Age++
			tr.Misses++
			if tr.Misses > t.cfg.MaxMisses {
				*tr = Track{}
			}
			continue
		}
		t.updateTrack(tr, preds[pi].box, merged)
		t.ops += int64(30 * n)
	}

	// Step 3: seed new tracks from unclaimed proposals.
	for j, pb := range proposals {
		if claimed[j] || len(matchP[j]) > 0 {
			continue
		}
		slot := t.freeSlot()
		if slot < 0 {
			break // pool exhausted
		}
		t.pool[slot] = Track{
			ID:    t.nextID,
			Box:   geometry.FBoxFrom(pb),
			Hits:  1,
			Age:   1,
			valid: true,
		}
		t.nextID++
		t.ops += 10
	}

	// Lifecycle: free tracks that left the array.
	boundsF := geometry.FBoxFrom(t.cfg.Bounds)
	for i := range t.pool {
		if !t.pool[i].valid {
			continue
		}
		if t.pool[i].Box.IntersectionArea(boundsF) <= 0 {
			t.pool[i] = Track{}
		}
	}

	// Reports.
	var out []Report
	for i := range t.pool {
		tr := &t.pool[i]
		if !tr.Confirmed(t.cfg.MinHits) {
			continue
		}
		b := tr.Box.Round().Clamp(t.cfg.Bounds)
		if b.Empty() {
			continue
		}
		out = append(out, Report{ID: tr.ID, Box: b, VX: tr.VX, VY: tr.VY})
	}
	return out
}

// pred pairs a pool index with the track's one-step prediction.
type pred struct {
	idx int
	box geometry.FBox
}

// occluding implements the step-5 occlusion test. A contested proposal is
// a dynamic occlusion (rather than stale fragmentation) when two contending
// tracks move on distinct trajectories: fragments of one object share its
// velocity, while two objects crossing do not. For distinct-velocity pairs
// the occlusion is confirmed when the predicted trajectories overlap within
// the next OcclusionSteps frames (objects converging, the paper's n-step
// test) or when the tracks are already moving apart (objects that crossed
// but whose images have not yet separated).
func (t *Tracker) occluding(preds []pred, contenders []int) bool {
	for a := 0; a < len(contenders); a++ {
		ta := &t.pool[preds[contenders[a]].idx]
		for b := a + 1; b < len(contenders); b++ {
			tb := &t.pool[preds[contenders[b]].idx]
			if math.Abs(ta.VX-tb.VX) <= 0.5 && math.Abs(ta.VY-tb.VY) <= 0.5 {
				continue // co-moving: fragments of one object
			}
			// Converging: overlap within n future steps.
			for k := 1; k <= t.cfg.OcclusionSteps; k++ {
				t.ops += 4
				if ta.predicted(float64(k)+1).IntersectionArea(tb.predicted(float64(k)+1)) > 0 {
					return true
				}
			}
			// Diverging: center distance grows over the next step.
			ax0, ay0 := ta.Box.Center()
			bx0, by0 := tb.Box.Center()
			ax1, ay1 := ta.predicted(1).Center()
			bx1, by1 := tb.predicted(1).Center()
			d0 := (ax0-bx0)*(ax0-bx0) + (ay0-by0)*(ay0-by0)
			d1 := (ax1-bx1)*(ax1-bx1) + (ay1-by1)*(ay1-by1)
			t.ops += 8
			if d1 > d0 {
				return true
			}
		}
	}
	return false
}

// updateTrack applies the step-4 weighted update: position blends the
// prediction with the (merged) proposal, size blends track history with the
// proposal, and velocity blends the previous velocity with the newly
// measured displacement.
func (t *Tracker) updateTrack(tr *Track, predBox, proposal geometry.FBox) {
	pcx, pcy := predBox.Center()
	mcx, mcy := proposal.Center()
	w := t.cfg.PositionBlend
	cx := (1-w)*pcx + w*mcx
	cy := (1-w)*pcy + w*mcy

	sw := t.cfg.SizeBlend
	newW := (1-sw)*tr.Box.W + sw*proposal.W
	newH := (1-sw)*tr.Box.H + sw*proposal.H

	// Measured velocity from the track's previous center to the corrected
	// center.
	ocx, ocy := tr.Box.Center()
	vw := t.cfg.VelocityBlend
	tr.VX = (1-vw)*tr.VX + vw*(cx-ocx)
	tr.VY = (1-vw)*tr.VY + vw*(cy-ocy)

	tr.Box = geometry.FBox{X: cx - newW/2, Y: cy - newH/2, W: newW, H: newH}
	tr.Hits++
	tr.Misses = 0
	tr.Age++
}

func (t *Tracker) freeSlot() int {
	for i := range t.pool {
		if !t.pool[i].valid {
			return i
		}
	}
	return -1
}

func unionF(a, b geometry.FBox) geometry.FBox {
	x0 := math.Min(a.X, b.X)
	y0 := math.Min(a.Y, b.Y)
	x1 := math.Max(a.X+a.W, b.X+b.W)
	y1 := math.Max(a.Y+a.H, b.Y+b.H)
	return geometry.FBox{X: x0, Y: y0, W: x1 - x0, H: y1 - y0}
}
