//go:build !windows

package store

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// lockFileName guards a store directory against concurrent writers. Two
// writers appending to the same active segment would interleave their
// buffered frames into mid-file corruption the torn-tail recovery model
// cannot undo, so Open takes this advisory flock for the Writer's
// lifetime and a second Open fails fast instead.
const lockFileName = "LOCK"

// acquireDirLock takes a non-blocking exclusive flock on dir's lock file,
// returning the held file. The lock dies with the process, so a crashed
// writer never leaves the store unopenable.
func acquireDirLock(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, lockFileName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %s is locked by another writer: %w", dir, err)
	}
	return f, nil
}

// releaseDirLock drops the flock (closing the file releases it).
func releaseDirLock(f *os.File) {
	if f != nil {
		f.Close()
	}
}
