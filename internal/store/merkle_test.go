package store

import (
	"fmt"
	"testing"
)

// drillLeaves builds n deterministic distinct leaves.
func drillLeaves(n int) [][hashSize]byte {
	leaves := make([][hashSize]byte, n)
	for i := range leaves {
		leaves[i] = leafHash([]byte(fmt.Sprintf("record-%d", i)))
	}
	return leaves
}

// TestMerkleAccMatchesBatchRoot pins the accumulator to the recursive MTH
// definition: the incremental mountain-range fold the writer uses while
// sealing must agree bit for bit with the batch builder Verify uses after
// rescanning, for every tree size (powers of two, one off them, and the
// ragged middles).
func TestMerkleAccMatchesBatchRoot(t *testing.T) {
	for n := 0; n <= 70; n++ {
		leaves := drillLeaves(n)
		var acc merkleAcc
		for _, l := range leaves {
			acc.add(l)
		}
		if acc.root() != merkleRoot(leaves) {
			t.Fatalf("n=%d: incremental root differs from batch root", n)
		}
		if acc.n != int64(n) {
			t.Fatalf("n=%d: accumulator counted %d leaves", n, acc.n)
		}
	}
	// reset returns the accumulator to the empty tree.
	var acc merkleAcc
	acc.add(leafHash([]byte("x")))
	acc.reset()
	if acc.root() != leafHash(nil) {
		t.Fatal("reset accumulator does not produce the empty-tree root")
	}
}

// TestMerkleInclusionProofs checks every audit path of every tree size up
// to 33 leaves, and that any mutation — wrong leaf, wrong index, damaged
// path element, truncated path — fails verification.
func TestMerkleInclusionProofs(t *testing.T) {
	for n := 1; n <= 33; n++ {
		leaves := drillLeaves(n)
		root := merkleRoot(leaves)
		for i := 0; i < n; i++ {
			path := merklePath(leaves, i)
			if !verifyInclusion(leaves[i], i, n, path, root) {
				t.Fatalf("n=%d i=%d: valid proof rejected", n, i)
			}
			if verifyInclusion(leafHash([]byte("forged")), i, n, path, root) {
				t.Fatalf("n=%d i=%d: forged leaf accepted", n, i)
			}
			if n > 1 {
				if verifyInclusion(leaves[i], (i+1)%n, n, path, root) {
					t.Fatalf("n=%d i=%d: wrong index accepted", n, i)
				}
				bad := append([][hashSize]byte(nil), path...)
				bad[0][0] ^= 1
				if verifyInclusion(leaves[i], i, n, bad, root) {
					t.Fatalf("n=%d i=%d: damaged path accepted", n, i)
				}
				if verifyInclusion(leaves[i], i, n, path[:len(path)-1], root) {
					t.Fatalf("n=%d i=%d: truncated path accepted", n, i)
				}
			}
		}
	}
	if verifyInclusion(drillLeaves(1)[0], 1, 1, nil, merkleRoot(drillLeaves(1))) {
		t.Fatal("out-of-range index accepted")
	}
}

// TestChainBindsRunAndOrder pins the chain construction: distinct runs
// seed distinct chains even over identical roots, and swapping two
// segment roots changes the final link.
func TestChainBindsRunAndOrder(t *testing.T) {
	r1, r2 := leafHash([]byte("a")), leafHash([]byte("b"))
	c1 := chainHash(chainHash(runSeed(1), r1), r2)
	if c2 := chainHash(chainHash(runSeed(2), r1), r2); c2 == c1 {
		t.Fatal("chains of different runs collide")
	}
	if swapped := chainHash(chainHash(runSeed(1), r2), r1); swapped == c1 {
		t.Fatal("chain ignores segment order")
	}
}
