// Package store is the embedded, crash-tolerant persistence backend for
// pipeline TrackSnapshots: a segmented append-only binary log with
// checksummed framing, a per-segment sparse time index, and a query API
// that can answer "what did sensor k see between t0 and t1?" long after
// the run that produced the data has exited.
//
// On disk a store is a directory of numbered segment files
// (seg-00000001.log, ...). Each segment starts with an 8-byte header and
// then holds length+CRC32-framed snapshot records; a sidecar sparse index
// (seg-00000001.idx) caches the segment's record count, time bounds,
// sensor set and every IndexEvery-th record offset so queries can skip
// cold data. Indexes are pure caches — a missing, stale or corrupt index
// is silently rebuilt by scanning its segment. The full format is
// specified in docs/STORE.md.
//
// Durability follows the classic write-ahead-log contract: records become
// durable at the configured fsync cadence (Options.SyncEvery), and after a
// crash the tail of the last segment may hold one torn or corrupt record.
// Recovery — performed both by Open (which physically truncates the tail)
// and by OpenReader (which ignores it) — drops only that invalid suffix;
// every record before it is preserved bit-for-bit.
//
// Writers and readers are independent: a Reader opens a point-in-time view
// of whatever prefix of the log is on disk and never blocks a live Writer.
// Scan(sensor, t0, t1) yields one sensor's snapshots in append order
// (which is frame order for streams recorded through a pipeline Runner);
// Replay merges any set of sensors into a single stream ordered by
// (EndUS, Sensor, Frame) across segment boundaries.
package store

import (
	"errors"
	"fmt"

	"ebbiot/internal/geometry"
)

// Snapshot is the stored form of one window's tracking result from one
// sensor stream. It mirrors pipeline.TrackSnapshot field for field; the
// two are kept as separate types so the store depends only on geometry and
// the pipeline can depend on the store (for StoreSink/replay) without an
// import cycle.
type Snapshot struct {
	// Sensor is the stream index (must be >= 0); Name its label.
	Sensor int
	Name   string
	// Frame is the window index; the window spans [StartUS, EndUS) in
	// stream time.
	Frame   int
	StartUS int64
	EndUS   int64
	// Events is the number of events consumed in the window.
	Events int
	// ProcUS is the wall-clock processing time of the window in
	// microseconds.
	ProcUS int64
	// Boxes are the reported track boxes at the window end.
	Boxes []geometry.Box
}

// Options parameterise a Writer. The zero value selects the defaults.
type Options struct {
	// SegmentBytes rotates to a new segment once the current one reaches
	// this size (default DefaultSegmentBytes). Rotation seals the segment:
	// its data is fsynced and its sidecar index written.
	SegmentBytes int64
	// SyncEvery is the fsync cadence: n >= 1 flushes and fsyncs the data
	// file after every n-th append; 0 (the default) fsyncs only on segment
	// rotation and Close, leaving intermediate durability to the OS.
	SyncEvery int
	// IndexEvery is the sparse index stride: one index entry per
	// IndexEvery records (default DefaultIndexEvery). Smaller strides make
	// time-bounded scans seek more precisely at the cost of index size.
	IndexEvery int
	// Retention bounds the directory's size and age (see RetentionPolicy).
	// The zero value keeps everything. The active writer's policy governs
	// the whole directory: it is recorded in the run manifest and applied
	// at every rotation and at Close, expiring whole sealed segments
	// (oldest first, across all runs) into tombstones.
	Retention RetentionPolicy
	// ParamsHash commits the pipeline parameter set that produced the run
	// into its manifest, so a replayed run can be matched to its exact
	// configuration. Zero means "not recorded".
	ParamsHash [32]byte
}

// Defaults for Options fields left zero.
const (
	DefaultSegmentBytes = 64 << 20
	DefaultIndexEvery   = 64
)

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.SyncEvery < 0 {
		o.SyncEvery = 0
	}
	if o.IndexEvery <= 0 {
		o.IndexEvery = DefaultIndexEvery
	}
	return o
}

// ErrCorrupt reports bytes that failed framing, checksum or decode
// validation inside a region the store committed to. Corruption at the
// tail of an unfinalized run's last segment is not an error — it is
// recovered by truncation. Most corruption surfaces as a *CorruptionError
// wrapping this sentinel, so errors.Is(err, ErrCorrupt) classifies it.
var ErrCorrupt = errors.New("store: corrupt record")

// ErrClosed reports use of a closed Writer.
var ErrClosed = errors.New("store: writer closed")

// ErrMultipleRuns reports a Scan/Replay/Prove with run selector 0 ("the
// sole run") against a directory holding more than one run. Interleaving
// runs into one timeline would be garbage — each run restarts the frame
// clock — so the caller must pick a run (see Reader.Runs).
var ErrMultipleRuns = errors.New("store: directory holds multiple runs; select one")

// CorruptionError pinpoints post-seal damage: the segment and byte offset
// at which validation first failed. It unwraps to ErrCorrupt. Readers
// serve the valid prefix before returning it — damage is reported, never
// silently skipped.
type CorruptionError struct {
	Segment int
	Offset  int64
	Detail  string
}

func (e *CorruptionError) Error() string {
	return fmt.Sprintf("store: corrupt record: %s at offset %d: %s", segmentName(e.Segment), e.Offset, e.Detail)
}

func (e *CorruptionError) Unwrap() error { return ErrCorrupt }

// Iterator yields stored snapshots until io.EOF. Iterators are
// single-goroutine; Close releases the underlying file handles and is safe
// to call more than once.
type Iterator interface {
	Next() (Snapshot, error)
	Close() error
}

// validate rejects snapshots the on-disk encoding cannot represent.
func (s *Snapshot) validate() error {
	if s.Sensor < 0 || int64(s.Sensor) > int64(^uint32(0)) {
		return fmt.Errorf("store: sensor %d out of range", s.Sensor)
	}
	if s.Frame < 0 || int64(s.Frame) > int64(^uint32(0)) {
		return fmt.Errorf("store: frame %d out of range", s.Frame)
	}
	if s.Events < 0 || int64(s.Events) > int64(^uint32(0)) {
		return fmt.Errorf("store: event count %d out of range", s.Events)
	}
	if len(s.Name) > maxNameLen {
		return fmt.Errorf("store: name length %d exceeds %d", len(s.Name), maxNameLen)
	}
	return nil
}
