package store

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Writer appends snapshots to a store directory, rotating segments by
// size and fsyncing at the configured cadence. It is safe for concurrent
// use, though the pipeline invokes it from the single sink goroutine.
type Writer struct {
	mu   sync.Mutex
	dir  string
	opts Options

	seg       int // current segment number
	f         *os.File
	bw        *bufio.Writer
	meta      *segMeta
	off       int64 // append offset in the current segment
	sinceSync int
	scratch   []byte
	lock      *os.File // held flock guarding against concurrent writers
	closed    bool
}

// Open creates dir if needed and returns a Writer appending to it. The
// directory is guarded by an advisory lock for the Writer's lifetime, so
// a second concurrent writer fails fast instead of interleaving frames
// into the same segment. If the directory already holds segments, the
// last one is recovered first: its valid prefix is kept, any torn or
// corrupt tail left by a crash is physically truncated, and appending
// resumes in place. Records from earlier runs remain and are merged at
// query time.
func Open(dir string, opts Options) (*Writer, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	lock, err := acquireDirLock(dir)
	if err != nil {
		return nil, err
	}
	w := &Writer{dir: dir, opts: opts, lock: lock}
	if err := w.open(); err != nil {
		releaseDirLock(lock)
		return nil, err
	}
	return w, nil
}

// open positions the Writer at the store's append point (lock held).
func (w *Writer) open() error {
	segs, err := listSegments(w.dir)
	if err != nil {
		return err
	}
	if len(segs) == 0 {
		return w.createSegment(1)
	}

	last := segs[len(segs)-1]
	path := filepath.Join(w.dir, segmentName(last))
	meta, _, err := scanSegment(path, w.opts.IndexEvery)
	if err != nil {
		return err
	}
	if meta.DataBytes == 0 {
		// Header itself is missing or invalid (crash between create and
		// header write): rewrite the segment from scratch.
		if err := os.Remove(path); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		return w.createSegment(last)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := f.Truncate(meta.DataBytes); err != nil {
		f.Close()
		return fmt.Errorf("store: truncate %s: %w", path, err)
	}
	if _, err := f.Seek(meta.DataBytes, 0); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	w.seg, w.f, w.meta, w.off = last, f, meta, meta.DataBytes
	w.bw = bufio.NewWriterSize(f, 1<<16)
	return nil
}

// createSegment opens segment n fresh, writes its header and fsyncs the
// directory so the new file name is durable.
func (w *Writer) createSegment(n int) error {
	path := filepath.Join(w.dir, segmentName(n))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := f.Write(appendSegHeader(nil)); err != nil {
		f.Close()
		return fmt.Errorf("store: write header %s: %w", path, err)
	}
	if err := syncDir(w.dir); err != nil {
		f.Close()
		return err
	}
	w.seg, w.f, w.off = n, f, segHeaderLen
	w.meta = newSegMeta()
	w.bw = bufio.NewWriterSize(f, 1<<16)
	w.sinceSync = 0
	return nil
}

// Append encodes and writes one snapshot. The snapshot is fully serialised
// before Append returns, so the caller may reuse or mutate it (and its
// Boxes slice) immediately afterwards.
func (w *Writer) Append(s Snapshot) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if w.f == nil {
		// A rotation sealed the old segment but failed to open the next
		// one; the writer is wedged until reopened.
		return fmt.Errorf("store: no open segment (previous rotation failed); reopen the store")
	}
	if err := s.validate(); err != nil {
		return err
	}
	w.scratch = encodeSnapshot(w.scratch[:0], s)
	payload := w.scratch
	if len(payload) > maxRecordBytes {
		return fmt.Errorf("store: record payload %d bytes exceeds %d", len(payload), maxRecordBytes)
	}
	var frame [frameLen]byte
	le.PutUint32(frame[0:4], uint32(len(payload)))
	le.PutUint32(frame[4:8], payloadCRC(payload))
	if _, err := w.bw.Write(frame[:]); err != nil {
		return fmt.Errorf("store: append: %w", err)
	}
	if _, err := w.bw.Write(payload); err != nil {
		return fmt.Errorf("store: append: %w", err)
	}
	w.meta.note(s, w.off, int64(frameLen+len(payload)), w.opts.IndexEvery)
	w.off += int64(frameLen + len(payload))
	w.sinceSync++
	if w.opts.SyncEvery > 0 && w.sinceSync >= w.opts.SyncEvery {
		if err := w.syncLocked(); err != nil {
			return err
		}
	}
	if w.off >= w.opts.SegmentBytes {
		return w.rotateLocked()
	}
	return nil
}

// Sync flushes buffered records and fsyncs the current segment, making
// everything appended so far durable.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	return w.syncLocked()
}

func (w *Writer) syncLocked() error {
	if w.f == nil {
		return nil // sealed: everything already flushed and fsynced
	}
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("store: flush: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("store: fsync: %w", err)
	}
	w.sinceSync = 0
	return nil
}

// rotateLocked seals the current segment — flush, fsync, sidecar index —
// and opens the next one.
func (w *Writer) rotateLocked() error {
	if err := w.sealLocked(); err != nil {
		return err
	}
	return w.createSegment(w.seg + 1)
}

func (w *Writer) sealLocked() error {
	if w.f == nil {
		// Already sealed by a rotation whose successor segment failed to
		// open; nothing further to flush or index.
		return nil
	}
	if err := w.syncLocked(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("store: close segment: %w", err)
	}
	w.f = nil
	return writeIndexFile(w.dir, w.seg, w.meta)
}

// Close seals the current segment and releases the Writer and its
// directory lock. Further calls return ErrClosed (a second Close is a
// no-op returning nil).
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	err := w.sealLocked()
	releaseDirLock(w.lock)
	w.lock = nil
	return err
}

// Dir returns the store directory.
func (w *Writer) Dir() string { return w.dir }

// Records returns the number of records appended to the current segment
// (recovered records included after a reopen).
func (w *Writer) Records() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.meta.Records
}
