package store

import (
	"bufio"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
)

// Writer appends snapshots to a store directory, rotating segments by
// size and fsyncing at the configured cadence. It is safe for concurrent
// use, though the pipeline invokes it from the single sink goroutine.
//
// Every Open starts a new run: a fresh manifest (run-%08d.mf) claims the
// run's segments in order, and each sealed segment's Merkle root is
// chained into it, so runs recorded into the same directory stay
// independently listable, replayable and verifiable. The manifest is
// always written claiming a segment before the segment file is created —
// a crash can leave a claimed-but-missing segment (repaired on the next
// Open) but never an orphan segment no manifest accounts for.
type Writer struct {
	mu   sync.Mutex
	dir  string
	opts Options

	runID  uint64
	man    *manifest   // this run's manifest
	others []*manifest // earlier runs, for directory-wide retention

	seg       int // current segment number
	f         *os.File
	bw        *bufio.Writer
	meta      *segMeta
	acc       merkleAcc      // Merkle leaves of the current segment
	prevChain [hashSize]byte // chain value after the last sealed entry
	off       int64          // append offset in the current segment
	sinceSync int
	scratch   []byte
	lock      *os.File // held flock guarding against concurrent writers
	closed    bool
}

// Open creates dir if needed and returns a Writer recording a new run
// into it. The directory is guarded by an advisory lock for the Writer's
// lifetime, so a second concurrent writer fails fast instead of
// interleaving frames into the same segment. Any run left unfinalized by
// a crash is recovered first: its open segment's valid prefix is kept
// (torn or corrupt tail physically truncated), sealed with a recomputed
// Merkle root, and the run finalized with the recovered flag — or
// discarded entirely if it holds no records. Finalized runs are immutable
// and untouched.
func Open(dir string, opts Options) (*Writer, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	lock, err := acquireDirLock(dir)
	if err != nil {
		return nil, err
	}
	w := &Writer{dir: dir, opts: opts, lock: lock}
	if err := w.open(); err != nil {
		releaseDirLock(lock)
		return nil, err
	}
	return w, nil
}

// open recovers crashed runs and starts this writer's run (lock held).
func (w *Writer) open() error {
	removeStrayTemps(w.dir)
	mans, _, err := loadManifests(w.dir)
	if err != nil {
		return err
	}
	// Unparseable manifests are left in place for Verify to report; their
	// segments are treated as unclaimed legacy data by readers.
	w.others = w.others[:0]
	var maxRun uint64
	for _, m := range mans {
		if m.RunID > maxRun {
			maxRun = m.RunID
		}
		kept, rerr := recoverRun(w.dir, m)
		if rerr != nil {
			return rerr
		}
		removeExpiredLeftovers(w.dir, m)
		if kept {
			w.others = append(w.others, m)
		}
	}
	segs, err := listSegments(w.dir)
	if err != nil {
		return err
	}
	nextSeg := 1
	if len(segs) > 0 {
		nextSeg = segs[len(segs)-1] + 1
	}
	// Claimed segment numbers beyond what is on disk (an expired segment's
	// number must never be reused — its tombstone still names it).
	for _, m := range mans {
		for i := range m.Segments {
			if s := m.Segments[i].Seg; s >= nextSeg {
				nextSeg = s + 1
			}
		}
	}
	w.runID = maxRun + 1
	w.prevChain = runSeed(w.runID)
	w.man = &manifest{
		RunID:       w.runID,
		StartWallUS: nowUS(),
		ParamsHash:  w.opts.ParamsHash,
		Retention:   w.opts.Retention,
	}
	return w.beginSegment(nextSeg)
}

// recoverRun repairs an unfinalized manifest left by a crash: the open
// entry's segment is scanned, its torn tail truncated to the last valid
// record, and the valid prefix sealed with a freshly computed Merkle
// root; the run is then finalized with the recovered flag. Returns false
// when the run held no records and was discarded. Finalized manifests are
// returned unchanged.
func recoverRun(dir string, m *manifest) (kept bool, err error) {
	if m.finalized() {
		return true, nil
	}
	for i := len(m.Segments) - 1; i >= 0; i-- {
		if m.Segments[i].State != segOpen {
			continue
		}
		e := &m.Segments[i]
		path := filepath.Join(dir, segmentName(e.Seg))
		var acc merkleAcc
		meta, dropped, serr := scanSegmentFunc(path, DefaultIndexEvery, func(p []byte) { acc.add(leafHash(p)) })
		switch {
		case errors.Is(serr, fs.ErrNotExist) || serr == nil && meta.Records == 0:
			// Crash between manifest claim and first durable record: the
			// entry never held data. Drop it (and any empty file).
			if serr == nil {
				if rerr := os.Remove(path); rerr != nil && !os.IsNotExist(rerr) {
					return false, fmt.Errorf("store: %w", rerr)
				}
			}
			m.Segments = append(m.Segments[:i], m.Segments[i+1:]...)
		case serr != nil:
			return false, serr
		default:
			if dropped > 0 {
				if terr := truncateFile(path, meta.DataBytes); terr != nil {
					return false, terr
				}
			}
			if ierr := writeIndexFile(dir, e.Seg, meta); ierr != nil {
				return false, ierr
			}
			prev := runSeed(m.RunID)
			if i > 0 {
				prev = m.Segments[i-1].Chain
			}
			root := acc.root()
			e.State = segSealed
			e.Records = meta.Records
			e.DataBytes = meta.DataBytes
			e.MinEndUS = meta.MinEndUS
			e.MaxEndUS = meta.MaxEndUS
			e.SealedWallUS = nowUS()
			e.Root = root
			e.Chain = chainHash(prev, root)
			m.addSensors(meta.sortedSensors())
		}
	}
	if len(m.Segments) == 0 {
		return false, removeManifestFile(dir, m.RunID)
	}
	m.Flags |= manFinalized | manRecovered
	m.EndWallUS = nowUS()
	return true, writeManifestFile(dir, m)
}

// truncateFile cuts path to size and fsyncs it.
func truncateFile(path string, size int64) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	if err := f.Truncate(size); err != nil {
		return fmt.Errorf("store: truncate %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("store: fsync %s: %w", path, err)
	}
	return nil
}

// beginSegment claims segment n in the manifest (durably), then creates
// the segment file with its header and fsyncs the directory.
func (w *Writer) beginSegment(n int) error {
	w.man.Segments = append(w.man.Segments, manifestSeg{Seg: n, State: segOpen})
	if err := writeManifestFile(w.dir, w.man); err != nil {
		return err
	}
	path := filepath.Join(w.dir, segmentName(n))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := f.Write(appendSegHeader(nil)); err != nil {
		f.Close()
		return fmt.Errorf("store: write header %s: %w", path, err)
	}
	if err := syncDir(w.dir); err != nil {
		f.Close()
		return err
	}
	w.seg, w.f, w.off = n, f, segHeaderLen
	w.meta = newSegMeta()
	w.acc.reset()
	w.bw = bufio.NewWriterSize(f, 1<<16)
	w.sinceSync = 0
	return nil
}

// Append encodes and writes one snapshot. The snapshot is fully serialised
// before Append returns, so the caller may reuse or mutate it (and its
// Boxes slice) immediately afterwards.
func (w *Writer) Append(s Snapshot) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if w.f == nil {
		// A rotation sealed the old segment but failed to open the next
		// one; the writer is wedged until reopened.
		return fmt.Errorf("store: no open segment (previous rotation failed); reopen the store")
	}
	if err := s.validate(); err != nil {
		return err
	}
	w.scratch = encodeSnapshot(w.scratch[:0], s)
	payload := w.scratch
	if len(payload) > maxRecordBytes {
		return fmt.Errorf("store: record payload %d bytes exceeds %d", len(payload), maxRecordBytes)
	}
	var frame [frameLen]byte
	le.PutUint32(frame[0:4], uint32(len(payload)))
	le.PutUint32(frame[4:8], payloadCRC(payload))
	if _, err := w.bw.Write(frame[:]); err != nil {
		return fmt.Errorf("store: append: %w", err)
	}
	if _, err := w.bw.Write(payload); err != nil {
		return fmt.Errorf("store: append: %w", err)
	}
	w.acc.add(leafHash(payload))
	w.meta.note(s, w.off, int64(frameLen+len(payload)), w.opts.IndexEvery)
	w.off += int64(frameLen + len(payload))
	w.sinceSync++
	if w.opts.SyncEvery > 0 && w.sinceSync >= w.opts.SyncEvery {
		if err := w.syncLocked(); err != nil {
			return err
		}
	}
	if w.off >= w.opts.SegmentBytes {
		return w.rotateLocked()
	}
	return nil
}

// Sync flushes buffered records and fsyncs the current segment, making
// everything appended so far durable.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	return w.syncLocked()
}

func (w *Writer) syncLocked() error {
	if w.f == nil {
		return nil // sealed: everything already flushed and fsynced
	}
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("store: flush: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("store: fsync: %w", err)
	}
	w.sinceSync = 0
	return nil
}

// rotateLocked seals the current segment into the manifest, applies
// retention, and begins the next segment.
func (w *Writer) rotateLocked() error {
	if err := w.sealLocked(); err != nil {
		return err
	}
	if err := writeManifestFile(w.dir, w.man); err != nil {
		return err
	}
	if err := w.retainLocked(); err != nil {
		return err
	}
	return w.beginSegment(w.seg + 1)
}

// sealLocked makes the current segment immutable: flush, fsync, sidecar
// index, and the manifest entry updated in memory with the segment's
// Merkle root chained onto the run (the caller persists the manifest).
func (w *Writer) sealLocked() error {
	if w.f == nil {
		// Already sealed by a rotation whose successor segment failed to
		// open; nothing further to flush or index.
		return nil
	}
	if err := w.syncLocked(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("store: close segment: %w", err)
	}
	w.f = nil
	if err := writeIndexFile(w.dir, w.seg, w.meta); err != nil {
		return err
	}
	i := w.man.openSeg()
	if i < 0 {
		return fmt.Errorf("store: manifest lost its open segment entry")
	}
	e := &w.man.Segments[i]
	root := w.acc.root()
	e.State = segSealed
	e.Records = w.meta.Records
	e.DataBytes = w.meta.DataBytes
	e.MinEndUS = w.meta.MinEndUS
	e.MaxEndUS = w.meta.MaxEndUS
	e.SealedWallUS = nowUS()
	e.Root = root
	e.Chain = chainHash(w.prevChain, root)
	w.prevChain = e.Chain
	w.man.addSensors(w.meta.sortedSensors())
	return nil
}

// retainLocked applies the writer's retention policy across every run in
// the directory.
func (w *Writer) retainLocked() error {
	if !w.opts.Retention.enabled() {
		return nil
	}
	mans := make([]*manifest, 0, len(w.others)+1)
	mans = append(mans, w.others...)
	mans = append(mans, w.man)
	_, err := applyRetention(w.dir, mans, w.opts.Retention, nowUS())
	return err
}

// Close seals the current segment, finalizes the run manifest, applies
// retention, and releases the Writer and its directory lock. A run that
// recorded nothing is discarded entirely (its manifest and empty segment
// removed). Further calls return ErrClosed (a second Close is a no-op
// returning nil).
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	err := w.finalizeLocked()
	releaseDirLock(w.lock)
	w.lock = nil
	return err
}

func (w *Writer) finalizeLocked() error {
	if w.f != nil && w.meta.Records == 0 {
		// Empty current segment: drop it rather than sealing zero records.
		ferr := w.f.Close()
		w.f = nil
		if ferr != nil {
			return fmt.Errorf("store: close segment: %w", ferr)
		}
		if err := os.Remove(filepath.Join(w.dir, segmentName(w.seg))); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("store: %w", err)
		}
		if i := w.man.openSeg(); i >= 0 {
			w.man.Segments = append(w.man.Segments[:i], w.man.Segments[i+1:]...)
		}
	} else if err := w.sealLocked(); err != nil {
		return err
	}
	if len(w.man.Segments) == 0 {
		return removeManifestFile(w.dir, w.runID)
	}
	w.man.Flags |= manFinalized
	w.man.EndWallUS = nowUS()
	if err := writeManifestFile(w.dir, w.man); err != nil {
		return err
	}
	return w.retainLocked()
}

// Dir returns the store directory.
func (w *Writer) Dir() string { return w.dir }

// RunID returns this writer's run identifier (stable for the Writer's
// lifetime; what Reader.Runs and the query CLI list).
func (w *Writer) RunID() uint64 { return w.runID }

// Records returns the number of records appended to the current segment.
func (w *Writer) Records() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.meta.Records
}
