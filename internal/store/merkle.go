package store

import "crypto/sha256"

// Merkle tree over record payloads, RFC 6962-shaped: the tree of n leaves
// splits at the largest power of two strictly below n, odd subtrees are
// promoted (never duplicated, so no two distinct leaf sequences share a
// root), and leaf and interior hashes are domain-separated so an interior
// node can never be replayed as a record. The per-segment root is chained
// across segments in the run manifest (see manifest.go); together they
// make a recorded run provably complete and untampered, with O(log n)
// inclusion proofs for individual snapshots.

// hashSize is sha256.Size, named locally so the format files need not
// import crypto.
const hashSize = sha256.Size

// Domain-separation prefixes.
const (
	leafPrefix  = 0x00 // leaf: H(0x00 || payload)
	nodePrefix  = 0x01 // interior: H(0x01 || left || right)
	chainPrefix = 0x02 // segment chain: H(0x02 || prev || root)
	seedPrefix  = 0x03 // run seed: H(0x03 || "EBRN" || u64 runID)
)

// leafHash hashes one record payload into a tree leaf.
func leafHash(payload []byte) [hashSize]byte {
	h := sha256.New()
	h.Write([]byte{leafPrefix})
	h.Write(payload)
	var out [hashSize]byte
	h.Sum(out[:0])
	return out
}

// nodeHash combines two subtree hashes.
func nodeHash(l, r [hashSize]byte) [hashSize]byte {
	h := sha256.New()
	h.Write([]byte{nodePrefix})
	h.Write(l[:])
	h.Write(r[:])
	var out [hashSize]byte
	h.Sum(out[:0])
	return out
}

// chainHash commits segment root to the running chain: each manifest
// entry's chain value is chainHash(previous entry's chain, this segment's
// root), seeded by runSeed. Retained segments therefore stay provable
// after earlier segments are expired — the tombstone's recorded root
// feeds the chain exactly as the live segment's recomputed root would.
func chainHash(prev, root [hashSize]byte) [hashSize]byte {
	h := sha256.New()
	h.Write([]byte{chainPrefix})
	h.Write(prev[:])
	h.Write(root[:])
	var out [hashSize]byte
	h.Sum(out[:0])
	return out
}

// runSeed is the chain value before a run's first segment, binding the
// chain to the run identity so two runs with identical records still have
// distinct chains.
func runSeed(runID uint64) [hashSize]byte {
	var buf [4 + 8]byte
	copy(buf[:4], "EBRN")
	le.PutUint64(buf[4:], runID)
	h := sha256.New()
	h.Write([]byte{seedPrefix})
	h.Write(buf[:])
	var out [hashSize]byte
	h.Sum(out[:0])
	return out
}

// merkleAcc incrementally folds leaves into the RFC 6962 root with
// O(log n) state: peaks[i] is the root of a complete subtree, sizes
// strictly decreasing left to right (a Merkle mountain range). Bagging
// the peaks right to left reproduces the recursive MTH definition
// exactly, so the accumulator and the batch builder in merkleRoot agree
// bit for bit. The zero value is an empty accumulator.
type merkleAcc struct {
	peaks []([hashSize]byte)
	n     int64
}

// add folds in the next leaf.
func (a *merkleAcc) add(leaf [hashSize]byte) {
	a.peaks = append(a.peaks, leaf)
	a.n++
	// After appending leaf k (1-based), merge one pair of equal-size peaks
	// per trailing one-bit of k: the peak sizes mirror k's binary digits.
	for m := a.n; m&1 == 0; m >>= 1 {
		last := len(a.peaks) - 1
		a.peaks[last-1] = nodeHash(a.peaks[last-1], a.peaks[last])
		a.peaks = a.peaks[:last]
	}
}

// root bags the peaks into the final tree hash. The root of zero leaves
// is defined as the hash of an empty leaf-less tree: sha256 of the empty
// string under the leaf prefix — callers never store empty segments, but
// the definition keeps the function total.
func (a *merkleAcc) root() [hashSize]byte {
	if len(a.peaks) == 0 {
		return leafHash(nil)
	}
	r := a.peaks[len(a.peaks)-1]
	for i := len(a.peaks) - 2; i >= 0; i-- {
		r = nodeHash(a.peaks[i], r)
	}
	return r
}

// reset clears the accumulator for the next segment.
func (a *merkleAcc) reset() {
	a.peaks = a.peaks[:0]
	a.n = 0
}

// merkleRoot computes the root of a full leaf slice (the verify path,
// which has every leaf in memory after rescanning a segment).
func merkleRoot(leaves [][hashSize]byte) [hashSize]byte {
	if len(leaves) == 0 {
		return leafHash(nil)
	}
	if len(leaves) == 1 {
		return leaves[0]
	}
	k := splitPoint(len(leaves))
	return nodeHash(merkleRoot(leaves[:k]), merkleRoot(leaves[k:]))
}

// splitPoint returns the largest power of two strictly below n (n >= 2).
func splitPoint(n int) int {
	k := 1
	for k*2 < n {
		k *= 2
	}
	return k
}

// merklePath returns the audit path for leaf i of the given tree: the
// sibling hashes, leaf-to-root, that verifyInclusion folds with the leaf
// to reproduce the root.
func merklePath(leaves [][hashSize]byte, i int) [][hashSize]byte {
	if i < 0 || i >= len(leaves) {
		return nil
	}
	var path [][hashSize]byte
	lo, hi := 0, len(leaves)
	// Descend recursively, collecting siblings on the way back up.
	var walk func(lo, hi, i int)
	walk = func(lo, hi, i int) {
		if hi-lo <= 1 {
			return
		}
		k := splitPoint(hi - lo)
		if i < lo+k {
			walk(lo, lo+k, i)
			path = append(path, merkleRoot(leaves[lo+k:hi]))
		} else {
			walk(lo+k, hi, i)
			path = append(path, merkleRoot(leaves[lo:lo+k]))
		}
	}
	walk(lo, hi, i)
	return path
}

// verifyInclusion folds leaf i's audit path back into a root and reports
// whether it matches. n is the leaf count of the tree.
func verifyInclusion(leaf [hashSize]byte, i, n int, path [][hashSize]byte, root [hashSize]byte) bool {
	if i < 0 || i >= n {
		return false
	}
	h := leaf
	lo, hi := 0, n
	// Recompute the index bounds top-down to know, at each level bottom-up,
	// whether the sibling sits left or right. Collect the directions first.
	dirs := make([]bool, 0, len(path)) // true = sibling on the left
	for hi-lo > 1 {
		k := splitPoint(hi - lo)
		if i < lo+k {
			dirs = append(dirs, false)
			hi = lo + k
		} else {
			dirs = append(dirs, true)
			lo += k
		}
	}
	if len(dirs) != len(path) {
		return false
	}
	for level := len(path) - 1; level >= 0; level-- {
		sib := path[len(path)-1-level]
		if dirs[level] {
			h = nodeHash(sib, h)
		} else {
			h = nodeHash(h, sib)
		}
	}
	return h == root
}
