package store

import (
	"errors"
	"io"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"ebbiot/internal/geometry"
)

// snap builds a deterministic snapshot for sensor/frame with frameUS-long
// windows and a box count derived from the frame index.
func snap(sensor, frame int, frameUS int64) Snapshot {
	s := Snapshot{
		Sensor:  sensor,
		Name:    "s",
		Frame:   frame,
		StartUS: int64(frame) * frameUS,
		EndUS:   int64(frame+1) * frameUS,
		Events:  100 + frame,
		ProcUS:  int64(10 + frame),
	}
	for b := 0; b < frame%3; b++ {
		s.Boxes = append(s.Boxes, geometry.NewBox(sensor*10+b, frame, 8+b, 6))
	}
	return s
}

// writeStore records frames windows for each listed sensor, interleaved
// round-robin per frame (the shape a multi-worker Runner produces), and
// closes the writer.
func writeStore(t *testing.T, dir string, opts Options, sensors []int, frames int, frameUS int64) {
	t.Helper()
	w, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < frames; f++ {
		for _, id := range sensors {
			if err := w.Append(snap(id, f, frameUS)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// collect drains an iterator.
func collect(t *testing.T, it Iterator) []Snapshot {
	t.Helper()
	defer it.Close()
	var out []Snapshot
	for {
		s, err := it.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, s)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, s := range []Snapshot{
		{},
		{Sensor: 3, Name: "sensor3", Frame: 7, StartUS: 462_000, EndUS: 528_000, Events: 123, ProcUS: 456,
			Boxes: []geometry.Box{geometry.NewBox(-5, 20, 30, 16), geometry.NewBox(0, 0, 1, 1)}},
		snap(12, 99, 66_000),
	} {
		p := encodeSnapshot(nil, s)
		got, err := decodeSnapshot(p)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, s) {
			t.Fatalf("decode(encode(%+v)) = %+v", s, got)
		}
	}
}

func TestDecodeGarbageNeverPanics(t *testing.T) {
	good := encodeSnapshot(nil, snap(1, 5, 66_000))
	for cut := 0; cut < len(good); cut++ {
		if _, err := decodeSnapshot(good[:cut]); err == nil && cut < len(good) {
			t.Fatalf("decode of %d-byte prefix succeeded", cut)
		}
	}
	// Absurd box count must be rejected by length check, not allocated.
	bad := append([]byte(nil), good...)
	le.PutUint32(bad[len(bad)-4-len(snap(1, 5, 66_000).Boxes)*16:], math.MaxUint32)
	if _, err := decodeSnapshot(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("decode with huge box count: %v, want ErrCorrupt", err)
	}
}

func TestWriteScanRoundTrip(t *testing.T) {
	dir := t.TempDir()
	writeStore(t, dir, Options{}, []int{0, 1, 2}, 50, 66_000)
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Sensors(); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Fatalf("Sensors() = %v", got)
	}
	st := r.Stats()
	if st.Records != 150 || st.DroppedBytes != 0 {
		t.Fatalf("Stats() = %+v, want 150 records, 0 dropped", st)
	}
	if st.MinEndUS != 66_000 || st.MaxEndUS != 50*66_000 {
		t.Fatalf("Stats() bounds = [%d, %d]", st.MinEndUS, st.MaxEndUS)
	}
	for _, id := range []int{0, 1, 2} {
		got := collect(t, r.Scan(id, 0, math.MaxInt64))
		if len(got) != 50 {
			t.Fatalf("sensor %d: %d records, want 50", id, len(got))
		}
		for f, s := range got {
			if want := snap(id, f, 66_000); !reflect.DeepEqual(s, want) {
				t.Fatalf("sensor %d frame %d: %+v, want %+v", id, f, s, want)
			}
		}
	}
}

func TestScanTimeBoundsAndIndexSeek(t *testing.T) {
	const frameUS = 66_000
	dir := t.TempDir()
	// Small index stride so bounded scans actually exercise seekOffset.
	writeStore(t, dir, Options{IndexEvery: 4}, []int{0, 1}, 200, frameUS)
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ t0, t1 int64 }{
		{0, math.MaxInt64},
		{50 * frameUS, 60 * frameUS},
		{0, frameUS},
		{199 * frameUS, math.MaxInt64},
		{7*frameUS + 1, 9*frameUS - 1},
		{1000 * frameUS, 2000 * frameUS}, // past the end
		{60 * frameUS, 50 * frameUS},     // empty range
	} {
		got := collect(t, r.Scan(1, tc.t0, tc.t1))
		var want []Snapshot
		for f := 0; f < 200; f++ {
			s := snap(1, f, frameUS)
			if s.StartUS < tc.t1 && s.EndUS > tc.t0 {
				want = append(want, s)
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Scan(1, %d, %d): %d records, want %d", tc.t0, tc.t1, len(got), len(want))
		}
	}
}

func TestSegmentRotationAndReopen(t *testing.T) {
	dir := t.TempDir()
	opts := Options{SegmentBytes: 2048, IndexEvery: 8}
	writeStore(t, dir, opts, []int{0}, 100, 66_000)
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("only %d segments after 100 records with 2 KiB rotation", len(segs))
	}
	// Reopen and append a second batch in the same directory.
	w, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for f := 100; f < 120; f++ {
		if err := w.Append(snap(0, f, 66_000)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, r.Scan(0, 0, math.MaxInt64))
	if len(got) != 120 {
		t.Fatalf("%d records after reopen, want 120", len(got))
	}
	for f, s := range got {
		if s.Frame != f {
			t.Fatalf("record %d has frame %d: append order broken across segments", f, s.Frame)
		}
	}
}

func TestReplayMergesSensorsInTimestampOrder(t *testing.T) {
	const frameUS = 66_000
	dir := t.TempDir()
	// Interleave sensors unevenly: all of sensor 1's records land after
	// all of sensor 0's in file order, so replay must reorder.
	w, err := Open(dir, Options{SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < 40; f++ {
		if err := w.Append(snap(0, f, frameUS)); err != nil {
			t.Fatal(err)
		}
	}
	for f := 0; f < 40; f++ {
		if err := w.Append(snap(1, f, frameUS)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	it, err := r.Replay(nil, 0, math.MaxInt64)
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, it)
	if len(got) != 80 {
		t.Fatalf("replay yielded %d records, want 80", len(got))
	}
	perSensor := map[int]int{}
	for i, s := range got {
		if i > 0 && snapLess(&s, &got[i-1]) {
			t.Fatalf("record %d (%d/%d) out of (EndUS, Sensor, Frame) order after (%d/%d)",
				i, s.EndUS, s.Sensor, got[i-1].EndUS, got[i-1].Sensor)
		}
		if s.Frame != perSensor[s.Sensor] {
			t.Fatalf("sensor %d frame %d arrived out of frame order", s.Sensor, s.Frame)
		}
		perSensor[s.Sensor]++
	}
	// Sensor subset selection.
	it, err = r.Replay([]int{1}, 0, math.MaxInt64)
	if err != nil {
		t.Fatal(err)
	}
	if got := collect(t, it); len(got) != 40 || got[0].Sensor != 1 {
		t.Fatalf("Replay([1]) yielded %d records (first sensor %d)", len(got), got[0].Sensor)
	}
}

// TestReplaySinglePass pins the read-amplification contract of the
// shared-segment merge: a k-sensor replay opens each matching segment
// exactly once and reads each stored byte once, where the previous design
// ran k sequential cursors (k x amplification).
func TestReplaySinglePass(t *testing.T) {
	dir := t.TempDir()
	writeStore(t, dir, Options{SegmentBytes: 4096}, []int{0, 1, 2, 3}, 100, 66_000)
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Segments < 2 {
		t.Fatalf("want a multi-segment store, got %d segments", st.Segments)
	}
	it, err := r.Replay(nil, 0, math.MaxInt64)
	if err != nil {
		t.Fatal(err)
	}
	if got := collect(t, it); len(got) != 400 {
		t.Fatalf("replay yielded %d records, want 400", len(got))
	}
	rs := it.(*sharedMergeIterator).Stats()
	if rs.SegmentsOpened != int64(st.Segments) {
		t.Fatalf("opened %d segments of %d: not single-pass", rs.SegmentsOpened, st.Segments)
	}
	if want := st.DataBytes - int64(st.Segments)*segHeaderLen; rs.BytesRead != want {
		t.Fatalf("read %d bytes of %d stored: amplified", rs.BytesRead, want)
	}
	if rs.Records != 400 {
		t.Fatalf("streamed %d records, want 400", rs.Records)
	}
	// Round-robin interleaving keeps the merge buffer near the sensor
	// count, not the store size.
	if rs.Buffered > 16 {
		t.Fatalf("buffered %d snapshots for a round-robin store", rs.Buffered)
	}

	// A sensor whose records end early must not stall or disorder the
	// merge (its last-seen clock lower-bounds its future records). Keep
	// the small rotation so post-dropout records land in segments whose
	// metadata provably lacks sensor 3.
	w, err := Open(dir, Options{SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	for f := 100; f < 140; f++ {
		for _, id := range []int{0, 1, 2} { // sensor 3 goes silent
			if err := w.Append(snap(id, f, 66_000)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err = OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	it, err = r.Replay(nil, 0, math.MaxInt64)
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, it)
	if len(got) != 400+120 {
		t.Fatalf("replay yielded %d records, want %d", len(got), 400+120)
	}
	for i := 1; i < len(got); i++ {
		if snapLess(&got[i], &got[i-1]) {
			t.Fatalf("record %d out of order after sensor dropout", i)
		}
	}
	// The dropout must not make the merge buffer the rest of the store:
	// once the segment metadata shows no further segment holds sensor 3,
	// its empty queue stops blocking pops. The bound is one segment's
	// worth of records (the segment where the dropout happens), not the
	// 120 post-dropout records.
	rs = it.(*sharedMergeIterator).Stats()
	if rs.Buffered > 100 {
		t.Fatalf("buffered %d snapshots after sensor dropout: merge is not using segment metadata to release the silent sensor", rs.Buffered)
	}
}

// lastSegPath returns the path of the highest-numbered segment.
func lastSegPath(t *testing.T, dir string) string {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("listSegments: %v (%d segs)", err, len(segs))
	}
	return filepath.Join(dir, segmentName(segs[len(segs)-1]))
}

func TestRecoveryTruncatedTailRecord(t *testing.T) {
	dir := t.TempDir()
	writeStore(t, dir, Options{}, []int{0}, 20, 66_000)
	path := lastSegPath(t, dir)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop the last record in half — a torn append.
	if err := os.Truncate(path, fi.Size()-20); err != nil {
		t.Fatal(err)
	}
	// The sealed sidecar index is now stale (DataBytes mismatch) and must
	// be ignored in favour of a rescan.
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := collect(t, r.Scan(0, 0, math.MaxInt64)); len(got) != 19 {
		t.Fatalf("reader sees %d records after torn tail, want 19", len(got))
	}
	if st := r.Stats(); st.DroppedBytes == 0 {
		t.Fatalf("Stats() = %+v, want dropped tail bytes reported", st)
	}
	// Writer recovery physically truncates the tail and appends cleanly.
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n := w.Records(); n != 19 {
		t.Fatalf("writer recovered %d records, want 19", n)
	}
	if err := w.Append(snap(0, 19, 66_000)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err = OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, r.Scan(0, 0, math.MaxInt64))
	if len(got) != 20 {
		t.Fatalf("%d records after recovery+append, want 20", len(got))
	}
	for f, s := range got {
		if want := snap(0, f, 66_000); !reflect.DeepEqual(s, want) {
			t.Fatalf("frame %d corrupted by recovery: %+v", f, s)
		}
	}
	if rep, err := Verify(dir); err != nil || !rep.Clean() {
		t.Fatalf("Verify after recovery: %+v, %v", rep, err)
	}
}

func TestRecoveryBitFlippedTail(t *testing.T) {
	dir := t.TempDir()
	writeStore(t, dir, Options{}, []int{0}, 20, 66_000)
	path := lastSegPath(t, dir)
	// Flip one payload byte inside the final record.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := Verify(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() || rep.Records != 19 {
		t.Fatalf("Verify = %+v, want 19 valid records and a flagged tail", rep)
	}
	// The sealed sidecar index still matches the file size, so the damage
	// sits inside the trusted region: the scan must surface ErrCorrupt
	// after the intact prefix, never silently truncate.
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	it := r.Scan(0, 0, math.MaxInt64)
	var got []Snapshot
	var scanErr error
	for {
		s, err := it.Next()
		if err != nil {
			scanErr = err
			break
		}
		got = append(got, s)
	}
	it.Close()
	if !errors.Is(scanErr, ErrCorrupt) {
		t.Fatalf("scan over bit-flipped sealed segment ended with %v, want ErrCorrupt", scanErr)
	}
	if len(got) != 19 {
		t.Fatalf("scan yielded %d records before the corruption, want 19", len(got))
	}
	for f, s := range got {
		if want := snap(0, f, 66_000); !reflect.DeepEqual(s, want) {
			t.Fatalf("frame %d damaged: %+v", f, s)
		}
	}
	// Writer recovery truncates the bad tail; the store then reads and
	// verifies clean with all prior records intact.
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if rep, err := Verify(dir); err != nil || !rep.Clean() || rep.Records != 19 {
		t.Fatalf("Verify after writer recovery: %+v, %v", rep, err)
	}
	r, err = OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := collect(t, r.Scan(0, 0, math.MaxInt64)); len(got) != 19 {
		t.Fatalf("%d records after recovery, want 19", len(got))
	}
}

func TestReplayRejectsMultiRunStore(t *testing.T) {
	// Two runs appended to one directory restart the frame clock; Replay
	// must refuse to interleave them rather than emit a broken timeline.
	dir := t.TempDir()
	writeStore(t, dir, Options{}, []int{0}, 10, 66_000)
	writeStore(t, dir, Options{}, []int{0}, 10, 66_000)
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	it, err := r.Replay(nil, 0, math.MaxInt64)
	if err == nil {
		for {
			if _, err = it.Next(); err != nil {
				break
			}
		}
		it.Close()
	}
	if err == io.EOF || err == nil || !strings.Contains(err.Error(), "multiple runs") {
		t.Fatalf("multi-run replay ended with %v, want a timestamps-regress error", err)
	}
	// Per-sensor Scan still works in append order across both runs.
	if got := collect(t, r.Scan(0, 0, math.MaxInt64)); len(got) != 20 {
		t.Fatalf("Scan over multi-run store yielded %d records, want 20", len(got))
	}
}

func TestReaderRebuildsMissingIndex(t *testing.T) {
	dir := t.TempDir()
	writeStore(t, dir, Options{SegmentBytes: 2048}, []int{0, 1}, 60, 66_000)
	withIdx, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := collect(t, withIdx.Scan(1, 10*66_000, 30*66_000))
	idxFiles, err := filepath.Glob(filepath.Join(dir, "*.idx"))
	if err != nil || len(idxFiles) == 0 {
		t.Fatalf("no sidecar indexes written (%v)", err)
	}
	for _, p := range idxFiles {
		if err := os.Remove(p); err != nil {
			t.Fatal(err)
		}
	}
	rebuilt, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, rebuilt.Scan(1, 10*66_000, 30*66_000))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("scan differs without sidecar indexes: %d vs %d records", len(got), len(want))
	}
	// A corrupt sidecar is likewise ignored, not trusted.
	segs, _ := listSegments(dir)
	if err := os.WriteFile(filepath.Join(dir, indexName(segs[0])), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := collect(t, r.Scan(1, 10*66_000, 30*66_000)); !reflect.DeepEqual(got, want) {
		t.Fatal("scan differs with corrupt sidecar index")
	}
}

func TestWriterRejectsInvalidSnapshots(t *testing.T) {
	w, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for _, s := range []Snapshot{
		{Sensor: -1},
		{Frame: -2},
		{Events: -3},
	} {
		if err := w.Append(s); err == nil {
			t.Fatalf("Append(%+v) accepted an unencodable snapshot", s)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(snap(0, 0, 66_000)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
}

func TestOpenRejectsSecondWriter(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("second concurrent Open succeeded; expected the directory lock to reject it")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// The lock is released with the writer: reopening now succeeds.
	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open after Close: %v", err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSyncEveryDurability(t *testing.T) {
	// With SyncEvery=1 every record is flushed to the file, so a reader
	// opened mid-run (no Close, simulating a crash with a live writer)
	// sees all appended records.
	dir := t.TempDir()
	w, err := Open(dir, Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < 10; f++ {
		if err := w.Append(snap(0, f, 66_000)); err != nil {
			t.Fatal(err)
		}
	}
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := collect(t, r.Scan(0, 0, math.MaxInt64)); len(got) != 10 {
		t.Fatalf("mid-run reader sees %d records with SyncEvery=1, want 10", len(got))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}
