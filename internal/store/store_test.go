package store

import (
	"errors"
	"io"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"ebbiot/internal/geometry"
)

// snap builds a deterministic snapshot for sensor/frame with frameUS-long
// windows and a box count derived from the frame index.
func snap(sensor, frame int, frameUS int64) Snapshot {
	s := Snapshot{
		Sensor:  sensor,
		Name:    "s",
		Frame:   frame,
		StartUS: int64(frame) * frameUS,
		EndUS:   int64(frame+1) * frameUS,
		Events:  100 + frame,
		ProcUS:  int64(10 + frame),
	}
	for b := 0; b < frame%3; b++ {
		s.Boxes = append(s.Boxes, geometry.NewBox(sensor*10+b, frame, 8+b, 6))
	}
	return s
}

// writeStore records frames windows for each listed sensor, interleaved
// round-robin per frame (the shape a multi-worker Runner produces), and
// closes the writer, finalizing the run.
func writeStore(t *testing.T, dir string, opts Options, sensors []int, frames int, frameUS int64) {
	t.Helper()
	w, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < frames; f++ {
		for _, id := range sensors {
			if err := w.Append(snap(id, f, frameUS)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// crash simulates the process dying mid-run: buffered bytes reach the OS
// (the drill truncates or flips them explicitly when it wants torn data),
// but no sealing, finalization or manifest write happens, and the
// directory lock is released so the same process can reopen the store the
// way a restarted process would.
func (w *Writer) crash() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.closed = true
	if w.f != nil {
		w.bw.Flush()
		w.f.Close()
		w.f = nil
	}
	releaseDirLock(w.lock)
	w.lock = nil
}

// collect drains an iterator.
func collect(t *testing.T, it Iterator) []Snapshot {
	t.Helper()
	defer it.Close()
	var out []Snapshot
	for {
		s, err := it.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, s)
	}
}

// scanRun opens a cursor over one run, failing the test on a selector
// error.
func scanRun(t *testing.T, r *Reader, run uint64, sensor int, t0, t1 int64) *Cursor {
	t.Helper()
	c, err := r.Scan(run, sensor, t0, t1)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, s := range []Snapshot{
		{},
		{Sensor: 3, Name: "sensor3", Frame: 7, StartUS: 462_000, EndUS: 528_000, Events: 123, ProcUS: 456,
			Boxes: []geometry.Box{geometry.NewBox(-5, 20, 30, 16), geometry.NewBox(0, 0, 1, 1)}},
		snap(12, 99, 66_000),
	} {
		p := encodeSnapshot(nil, s)
		got, err := decodeSnapshot(p)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, s) {
			t.Fatalf("decode(encode(%+v)) = %+v", s, got)
		}
	}
}

func TestDecodeGarbageNeverPanics(t *testing.T) {
	good := encodeSnapshot(nil, snap(1, 5, 66_000))
	for cut := 0; cut < len(good); cut++ {
		if _, err := decodeSnapshot(good[:cut]); err == nil && cut < len(good) {
			t.Fatalf("decode of %d-byte prefix succeeded", cut)
		}
	}
	// Absurd box count must be rejected by length check, not allocated.
	bad := append([]byte(nil), good...)
	le.PutUint32(bad[len(bad)-4-len(snap(1, 5, 66_000).Boxes)*16:], math.MaxUint32)
	if _, err := decodeSnapshot(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("decode with huge box count: %v, want ErrCorrupt", err)
	}
}

func TestWriteScanRoundTrip(t *testing.T) {
	dir := t.TempDir()
	writeStore(t, dir, Options{}, []int{0, 1, 2}, 50, 66_000)
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Sensors(); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Fatalf("Sensors() = %v", got)
	}
	st := r.Stats()
	if st.Runs != 1 || st.Records != 150 || st.DroppedBytes != 0 {
		t.Fatalf("Stats() = %+v, want 1 run, 150 records, 0 dropped", st)
	}
	if st.MinEndUS != 66_000 || st.MaxEndUS != 50*66_000 {
		t.Fatalf("Stats() bounds = [%d, %d]", st.MinEndUS, st.MaxEndUS)
	}
	runs := r.Runs()
	if len(runs) != 1 || !runs[0].Finalized || runs[0].Recovered || runs[0].Records != 150 {
		t.Fatalf("Runs() = %+v, want one finalized run with 150 records", runs)
	}
	if !reflect.DeepEqual(runs[0].Sensors, []int{0, 1, 2}) {
		t.Fatalf("run sensors = %v", runs[0].Sensors)
	}
	for _, id := range []int{0, 1, 2} {
		got := collect(t, scanRun(t, r, 0, id, 0, math.MaxInt64))
		if len(got) != 50 {
			t.Fatalf("sensor %d: %d records, want 50", id, len(got))
		}
		for f, s := range got {
			if want := snap(id, f, 66_000); !reflect.DeepEqual(s, want) {
				t.Fatalf("sensor %d frame %d: %+v, want %+v", id, f, s, want)
			}
		}
	}
}

func TestScanTimeBoundsAndIndexSeek(t *testing.T) {
	const frameUS = 66_000
	dir := t.TempDir()
	// Small index stride so bounded scans actually exercise seekOffset.
	writeStore(t, dir, Options{IndexEvery: 4}, []int{0, 1}, 200, frameUS)
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ t0, t1 int64 }{
		{0, math.MaxInt64},
		{50 * frameUS, 60 * frameUS},
		{0, frameUS},
		{199 * frameUS, math.MaxInt64},
		{7*frameUS + 1, 9*frameUS - 1},
		{1000 * frameUS, 2000 * frameUS}, // past the end
		{60 * frameUS, 50 * frameUS},     // empty range
	} {
		got := collect(t, scanRun(t, r, 0, 1, tc.t0, tc.t1))
		var want []Snapshot
		for f := 0; f < 200; f++ {
			s := snap(1, f, frameUS)
			if s.StartUS < tc.t1 && s.EndUS > tc.t0 {
				want = append(want, s)
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Scan(1, %d, %d): %d records, want %d", tc.t0, tc.t1, len(got), len(want))
		}
	}
}

func TestSegmentRotationAndTwoRuns(t *testing.T) {
	dir := t.TempDir()
	opts := Options{SegmentBytes: 2048, IndexEvery: 8}
	writeStore(t, dir, opts, []int{0}, 100, 66_000)
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("only %d segments after 100 records with 2 KiB rotation", len(segs))
	}
	// Reopen: a second run recorded into the same directory.
	w, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if w.RunID() != 2 {
		t.Fatalf("second Open got run %d, want 2", w.RunID())
	}
	for f := 0; f < 20; f++ {
		if err := w.Append(snap(0, f, 66_000)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	runs := r.Runs()
	if len(runs) != 2 || runs[0].ID != 1 || runs[1].ID != 2 {
		t.Fatalf("Runs() = %+v, want runs 1 and 2", runs)
	}
	if runs[0].Records != 100 || runs[1].Records != 20 {
		t.Fatalf("run records = %d, %d, want 100, 20", runs[0].Records, runs[1].Records)
	}
	// Each run is independently scannable; its frames start from 0.
	for i, want := range []int{100, 20} {
		got := collect(t, scanRun(t, r, runs[i].ID, 0, 0, math.MaxInt64))
		if len(got) != want {
			t.Fatalf("run %d: %d records, want %d", runs[i].ID, len(got), want)
		}
		for f, s := range got {
			if s.Frame != f {
				t.Fatalf("run %d record %d has frame %d: append order broken", runs[i].ID, f, s.Frame)
			}
		}
	}
	// Both runs verify independently.
	rep, err := Verify(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() || len(rep.Runs) != 2 {
		t.Fatalf("Verify = %+v, want 2 clean runs", rep)
	}
}

func TestReplayMergesSensorsInTimestampOrder(t *testing.T) {
	const frameUS = 66_000
	dir := t.TempDir()
	// Interleave sensors unevenly: all of sensor 1's records land after
	// all of sensor 0's in file order, so replay must reorder.
	w, err := Open(dir, Options{SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < 40; f++ {
		if err := w.Append(snap(0, f, frameUS)); err != nil {
			t.Fatal(err)
		}
	}
	for f := 0; f < 40; f++ {
		if err := w.Append(snap(1, f, frameUS)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	it, err := r.Replay(0, nil, 0, math.MaxInt64)
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, it)
	if len(got) != 80 {
		t.Fatalf("replay yielded %d records, want 80", len(got))
	}
	perSensor := map[int]int{}
	for i, s := range got {
		if i > 0 && snapLess(&s, &got[i-1]) {
			t.Fatalf("record %d (%d/%d) out of (EndUS, Sensor, Frame) order after (%d/%d)",
				i, s.EndUS, s.Sensor, got[i-1].EndUS, got[i-1].Sensor)
		}
		if s.Frame != perSensor[s.Sensor] {
			t.Fatalf("sensor %d frame %d arrived out of frame order", s.Sensor, s.Frame)
		}
		perSensor[s.Sensor]++
	}
	// Sensor subset selection.
	it, err = r.Replay(0, []int{1}, 0, math.MaxInt64)
	if err != nil {
		t.Fatal(err)
	}
	if got := collect(t, it); len(got) != 40 || got[0].Sensor != 1 {
		t.Fatalf("Replay([1]) yielded %d records (first sensor %d)", len(got), got[0].Sensor)
	}
}

// TestReplaySinglePass pins the read-amplification contract of the
// shared-segment merge: a k-sensor replay opens each matching segment
// exactly once and reads each stored byte once, where the previous design
// ran k sequential cursors (k x amplification).
func TestReplaySinglePass(t *testing.T) {
	dir := t.TempDir()
	// One run: 100 round-robin frames from 4 sensors, then 40 more with
	// sensor 3 silent — a dropout must not stall or disorder the merge.
	w, err := Open(dir, Options{SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < 100; f++ {
		for _, id := range []int{0, 1, 2, 3} {
			if err := w.Append(snap(id, f, 66_000)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for f := 100; f < 140; f++ {
		for _, id := range []int{0, 1, 2} { // sensor 3 goes silent
			if err := w.Append(snap(id, f, 66_000)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Segments < 2 {
		t.Fatalf("want a multi-segment store, got %d segments", st.Segments)
	}
	it, err := r.Replay(0, nil, 0, math.MaxInt64)
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, it)
	if len(got) != 520 {
		t.Fatalf("replay yielded %d records, want 520", len(got))
	}
	for i := 1; i < len(got); i++ {
		if snapLess(&got[i], &got[i-1]) {
			t.Fatalf("record %d out of order", i)
		}
	}
	rs := it.(*sharedMergeIterator).Stats()
	if rs.SegmentsOpened != int64(st.Segments) {
		t.Fatalf("opened %d segments of %d: not single-pass", rs.SegmentsOpened, st.Segments)
	}
	if want := st.DataBytes - int64(st.Segments)*segHeaderLen; rs.BytesRead != want {
		t.Fatalf("read %d bytes of %d stored: amplified", rs.BytesRead, want)
	}
	if rs.Records != 520 {
		t.Fatalf("streamed %d records, want 520", rs.Records)
	}
	// Round-robin interleaving keeps the merge buffer near the sensor
	// count; the dropout must not make the merge buffer the rest of the
	// store — once the segment metadata shows no further segment holds
	// sensor 3, its empty queue stops blocking pops. The bound is one
	// segment's worth of records, not the 120 post-dropout records.
	if rs.Buffered > 100 {
		t.Fatalf("buffered %d snapshots: merge is not using segment metadata to release the silent sensor", rs.Buffered)
	}
}

// lastSegPath returns the path of the highest-numbered segment.
func lastSegPath(t *testing.T, dir string) string {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("listSegments: %v (%d segs)", err, len(segs))
	}
	return filepath.Join(dir, segmentName(segs[len(segs)-1]))
}

func TestRecoveryTruncatedTailRecord(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < 20; f++ {
		if err := w.Append(snap(0, f, 66_000)); err != nil {
			t.Fatal(err)
		}
	}
	w.crash() // no seal, no finalize
	path := lastSegPath(t, dir)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop the last record in half — a torn append.
	if err := os.Truncate(path, fi.Size()-20); err != nil {
		t.Fatal(err)
	}
	// A reader sees the crashed run's valid prefix; the torn tail of an
	// unfinalized run is recoverable, not corruption.
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := collect(t, scanRun(t, r, 0, 0, 0, math.MaxInt64)); len(got) != 19 {
		t.Fatalf("reader sees %d records after torn tail, want 19", len(got))
	}
	if st := r.Stats(); st.DroppedBytes == 0 {
		t.Fatalf("Stats() = %+v, want dropped tail bytes reported", st)
	}
	// Reopening recovers the crashed run: tail truncated to the last valid
	// record, run finalized with the recovered flag; appends go to a new
	// run.
	w, err = Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(snap(0, 0, 66_000)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err = OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	runs := r.Runs()
	if len(runs) != 2 || !runs[0].Recovered || runs[0].Records != 19 || runs[1].Records != 1 {
		t.Fatalf("Runs() after recovery = %+v, want recovered 19-record run + 1-record run", runs)
	}
	got := collect(t, scanRun(t, r, runs[0].ID, 0, 0, math.MaxInt64))
	if len(got) != 19 {
		t.Fatalf("%d records in recovered run, want 19", len(got))
	}
	for f, s := range got {
		if want := snap(0, f, 66_000); !reflect.DeepEqual(s, want) {
			t.Fatalf("frame %d corrupted by recovery: %+v", f, s)
		}
	}
	if rep, err := Verify(dir); err != nil || !rep.Clean() {
		t.Fatalf("Verify after recovery: %+v, %v", rep, err)
	}
}

func TestCrashedRunBitFlippedTailRecovered(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < 20; f++ {
		if err := w.Append(snap(0, f, 66_000)); err != nil {
			t.Fatal(err)
		}
	}
	w.crash()
	path := lastSegPath(t, dir)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	// Recovery truncates the unfinalized run to the last valid record.
	w, err = Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := Verify(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() || rep.Records != 19 {
		t.Fatalf("Verify after recovery = %+v, want 19 clean records", rep)
	}
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := collect(t, scanRun(t, r, 0, 0, 0, math.MaxInt64)); len(got) != 19 {
		t.Fatalf("%d records after recovery, want 19", len(got))
	}
}

func TestSealedSegmentDamageIsReportedNotRecovered(t *testing.T) {
	dir := t.TempDir()
	writeStore(t, dir, Options{}, []int{0}, 20, 66_000)
	path := lastSegPath(t, dir)
	// Flip one payload byte inside the final record of the finalized run.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := Verify(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatalf("Verify = %+v, want the flipped bit flagged", rep)
	}
	// Scans serve the intact prefix, then surface a typed error naming the
	// damage — never silent truncation.
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	it := scanRun(t, r, 0, 0, 0, math.MaxInt64)
	var got []Snapshot
	var scanErr error
	for {
		s, err := it.Next()
		if err != nil {
			scanErr = err
			break
		}
		got = append(got, s)
	}
	it.Close()
	if !errors.Is(scanErr, ErrCorrupt) {
		t.Fatalf("scan over bit-flipped sealed segment ended with %v, want ErrCorrupt", scanErr)
	}
	var ce *CorruptionError
	if !errors.As(scanErr, &ce) || ce.Segment == 0 {
		t.Fatalf("scan error %v is not a *CorruptionError naming the segment", scanErr)
	}
	if len(got) != 19 {
		t.Fatalf("scan yielded %d records before the corruption, want 19", len(got))
	}
	for f, s := range got {
		if want := snap(0, f, 66_000); !reflect.DeepEqual(s, want) {
			t.Fatalf("frame %d damaged: %+v", f, s)
		}
	}
	// A finalized run is immutable: reopening the store for append must
	// NOT truncate the damage away — it belongs to a sealed segment whose
	// manifest entry still committed to the full content.
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if rep, err := Verify(dir); err != nil || rep.Clean() {
		t.Fatalf("Verify after reopen = %+v, %v: finalized-run damage must persist and stay reported", rep, err)
	}
}

func TestReplayRejectsMultiRunStore(t *testing.T) {
	// Two runs in one directory each restart the frame clock; replaying
	// them interleaved would be a broken timeline, so a selector-less
	// replay (run 0 = "the sole run") must fail fast with the typed
	// sentinel — the pre-manifest store rejected this only after streaming
	// far enough to see timestamps regress.
	dir := t.TempDir()
	writeStore(t, dir, Options{}, []int{0}, 10, 66_000)
	writeStore(t, dir, Options{}, []int{0}, 10, 66_000)
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Replay(0, nil, 0, math.MaxInt64); !errors.Is(err, ErrMultipleRuns) {
		t.Fatalf("selector-less replay of 2-run store: %v, want ErrMultipleRuns", err)
	}
	if _, err := r.Scan(0, 0, 0, math.MaxInt64); !errors.Is(err, ErrMultipleRuns) {
		t.Fatalf("selector-less scan of 2-run store: %v, want ErrMultipleRuns", err)
	}
	// With an explicit selector each run replays independently.
	for _, ri := range r.Runs() {
		it, err := r.Replay(ri.ID, nil, 0, math.MaxInt64)
		if err != nil {
			t.Fatal(err)
		}
		if got := collect(t, it); len(got) != 10 {
			t.Fatalf("run %d replay yielded %d records, want 10", ri.ID, len(got))
		}
	}
	if _, err := r.Replay(99, nil, 0, math.MaxInt64); err == nil {
		t.Fatal("replay of unknown run succeeded")
	}
}

func TestReaderRebuildsMissingIndex(t *testing.T) {
	dir := t.TempDir()
	writeStore(t, dir, Options{SegmentBytes: 2048}, []int{0, 1}, 60, 66_000)
	withIdx, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	if fb := withIdx.IndexFallbacks(); fb != 0 {
		t.Fatalf("IndexFallbacks = %d on an intact store", fb)
	}
	want := collect(t, scanRun(t, withIdx, 0, 1, 10*66_000, 30*66_000))
	idxFiles, err := filepath.Glob(filepath.Join(dir, "*.idx"))
	if err != nil || len(idxFiles) == 0 {
		t.Fatalf("no sidecar indexes written (%v)", err)
	}
	for _, p := range idxFiles {
		if err := os.Remove(p); err != nil {
			t.Fatal(err)
		}
	}
	rebuilt, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, scanRun(t, rebuilt, 0, 1, 10*66_000, 30*66_000))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("scan differs without sidecar indexes: %d vs %d records", len(got), len(want))
	}
	if fb := rebuilt.IndexFallbacks(); fb != len(idxFiles) {
		t.Fatalf("IndexFallbacks = %d with %d sidecars removed", fb, len(idxFiles))
	}
	// A corrupt sidecar is likewise ignored, not trusted.
	segs, _ := listSegments(dir)
	if err := os.WriteFile(filepath.Join(dir, indexName(segs[0])), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := collect(t, scanRun(t, r, 0, 1, 10*66_000, 30*66_000)); !reflect.DeepEqual(got, want) {
		t.Fatal("scan differs with corrupt sidecar index")
	}
	if fb := r.IndexFallbacks(); fb != len(idxFiles) {
		t.Fatalf("IndexFallbacks = %d, want %d", fb, len(idxFiles))
	}
}

func TestWriterRejectsInvalidSnapshots(t *testing.T) {
	w, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for _, s := range []Snapshot{
		{Sensor: -1},
		{Frame: -2},
		{Events: -3},
	} {
		if err := w.Append(s); err == nil {
			t.Fatalf("Append(%+v) accepted an unencodable snapshot", s)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(snap(0, 0, 66_000)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
}

// TestEmptyRunDiscarded pins the Close contract: a run that recorded
// nothing leaves no manifest and no segment behind.
func TestEmptyRunDiscarded(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != lockFileName {
			t.Fatalf("empty run left %s behind", e.Name())
		}
	}
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Runs()) != 0 {
		t.Fatalf("Runs() = %+v after an empty run", r.Runs())
	}
	// Selector 0 on an empty store scans nothing rather than erroring.
	if got := collect(t, scanRun(t, r, 0, 0, 0, math.MaxInt64)); len(got) != 0 {
		t.Fatalf("empty store scan yielded %d records", len(got))
	}
}

func TestOpenRejectsSecondWriter(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("second concurrent Open succeeded; expected the directory lock to reject it")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// The lock is released with the writer: reopening now succeeds.
	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open after Close: %v", err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSyncEveryDurability(t *testing.T) {
	// With SyncEvery=1 every record is flushed to the file, so a reader
	// opened mid-run (no Close, simulating a crash with a live writer)
	// sees all appended records.
	dir := t.TempDir()
	w, err := Open(dir, Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < 10; f++ {
		if err := w.Append(snap(0, f, 66_000)); err != nil {
			t.Fatal(err)
		}
	}
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := collect(t, scanRun(t, r, 0, 0, 0, math.MaxInt64)); len(got) != 10 {
		t.Fatalf("mid-run reader sees %d records with SyncEvery=1, want 10", len(got))
	}
	if runs := r.Runs(); len(runs) != 1 || runs[0].Finalized {
		t.Fatalf("mid-run Runs() = %+v, want one unfinalized run", runs)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestLegacySegmentsReadable pins backward compatibility: segments with
// no manifest (a pre-manifest store) group as legacy run 0 — scannable
// and replayable, with Verify validating frames but no roots.
func TestLegacySegmentsReadable(t *testing.T) {
	dir := t.TempDir()
	writeStore(t, dir, Options{SegmentBytes: 2048}, []int{0, 1}, 40, 66_000)
	// Strip the manifest: what remains is exactly a pre-manifest store.
	mans, _ := filepath.Glob(filepath.Join(dir, "run-*.mf"))
	if len(mans) != 1 {
		t.Fatalf("expected 1 manifest, found %v", mans)
	}
	if err := os.Remove(mans[0]); err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	runs := r.Runs()
	if len(runs) != 1 || !runs[0].Legacy || runs[0].ID != 0 {
		t.Fatalf("Runs() = %+v, want one legacy group", runs)
	}
	if got := collect(t, scanRun(t, r, 0, 1, 0, math.MaxInt64)); len(got) != 40 {
		t.Fatalf("legacy scan yielded %d records, want 40", len(got))
	}
	it, err := r.Replay(0, nil, 0, math.MaxInt64)
	if err != nil {
		t.Fatal(err)
	}
	if got := collect(t, it); len(got) != 80 {
		t.Fatalf("legacy replay yielded %d records, want 80", len(got))
	}
	rep, err := Verify(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() || len(rep.Runs) != 1 || !rep.Runs[0].Legacy {
		t.Fatalf("Verify = %+v, want one clean legacy group", rep)
	}
}
