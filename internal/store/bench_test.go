package store

import (
	"io"
	"math"
	"os"
	"testing"

	"ebbiot/internal/geometry"
)

// benchSnap is a representative record: two boxes and a short name, ~90
// payload bytes — the shape a two-track EBBIOT stream produces.
func benchSnap(sensor, frame int) Snapshot {
	return Snapshot{
		Sensor:  sensor,
		Name:    "sensor0",
		Frame:   frame,
		StartUS: int64(frame) * 66_000,
		EndUS:   int64(frame+1) * 66_000,
		Events:  1500,
		ProcUS:  420,
		Boxes: []geometry.Box{
			geometry.NewBox(10+frame%50, 20, 24, 18),
			geometry.NewBox(100, 40+frame%30, 16, 12),
		},
	}
}

func benchRecordBytes() int64 {
	return int64(frameLen + len(encodeSnapshot(nil, benchSnap(0, 0))))
}

// BenchmarkAppend measures append throughput with the default fsync policy
// (sync on rotate/close only).
func BenchmarkAppend(b *testing.B) {
	w, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	b.SetBytes(benchRecordBytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Append(benchSnap(i%4, i/4)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAppendSyncEvery64 measures append throughput with a durability
// cadence of one fsync per 64 records.
func BenchmarkAppendSyncEvery64(b *testing.B) {
	w, err := Open(b.TempDir(), Options{SyncEvery: 64})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	b.SetBytes(benchRecordBytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Append(benchSnap(i%4, i/4)); err != nil {
			b.Fatal(err)
		}
	}
}

// benchStore lazily builds one shared on-disk store: 4 sensors × 25k
// frames = 100k records across multiple segments.
const (
	benchSensors = 4
	benchFrames  = 25_000
)

var benchDir string

func benchStoreDir(b *testing.B) string {
	if benchDir != "" {
		return benchDir
	}
	dir, err := os.MkdirTemp("", "ebbiot-store-bench")
	if err != nil {
		b.Fatal(err)
	}
	w, err := Open(dir, Options{SegmentBytes: 8 << 20})
	if err != nil {
		b.Fatal(err)
	}
	for f := 0; f < benchFrames; f++ {
		for s := 0; s < benchSensors; s++ {
			if err := w.Append(benchSnap(s, f)); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	benchDir = dir
	return dir
}

func TestMain(m *testing.M) {
	// Re-exec'd as a crash-drill victim: record until SIGKILLed (never
	// returns). See crashdrill_test.go.
	if crashChildRequested() {
		crashChildMain()
	}
	code := m.Run()
	if benchDir != "" {
		os.RemoveAll(benchDir)
	}
	os.Exit(code)
}

// benchScan opens a cursor over the bench store's sole run.
func benchScan(b *testing.B, r *Reader, sensor int, t0, t1 int64) *Cursor {
	c, err := r.Scan(0, sensor, t0, t1)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

func drain(b *testing.B, it Iterator, want int64) {
	defer it.Close()
	var n int64
	for {
		_, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			b.Fatal(err)
		}
		n++
	}
	if n != want {
		b.Fatalf("iterator yielded %d records, want %d", n, want)
	}
}

// BenchmarkScanFull measures single-sensor scan latency over the whole
// 100k-record store (one sensor's 25k records match).
func BenchmarkScanFull(b *testing.B) {
	dir := benchStoreDir(b)
	r, err := OpenReader(dir)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(benchRecordBytes() * benchSensors * benchFrames)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		drain(b, benchScan(b, r, 1, 0, math.MaxInt64), benchFrames)
	}
}

// BenchmarkScanWindow measures a narrow time-bounded query (100 frames out
// of 25k) — the case the sparse index accelerates.
func BenchmarkScanWindow(b *testing.B) {
	dir := benchStoreDir(b)
	r, err := OpenReader(dir)
	if err != nil {
		b.Fatal(err)
	}
	const t0, t1 = 20_000 * 66_000, 20_100 * 66_000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		drain(b, benchScan(b, r, 1, t0, t1), 100)
	}
}

// BenchmarkReplay measures the k-way merged replay of all four sensors.
// The merge is single-pass — each shared segment is read exactly once, not
// once per sensor — which the read-amplification counters assert.
func BenchmarkReplay(b *testing.B) {
	dir := benchStoreDir(b)
	r, err := OpenReader(dir)
	if err != nil {
		b.Fatal(err)
	}
	segments := int64(r.Stats().Segments)
	dataBytes := r.Stats().DataBytes - segments*segHeaderLen
	b.SetBytes(benchRecordBytes() * benchSensors * benchFrames)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it, err := r.Replay(0, nil, 0, math.MaxInt64)
		if err != nil {
			b.Fatal(err)
		}
		drain(b, it, benchSensors*benchFrames)
		st := it.(*sharedMergeIterator).Stats()
		if st.SegmentsOpened != segments {
			b.Fatalf("read amplification: %d segment opens for %d segments (want 1x)", st.SegmentsOpened, segments)
		}
		if st.BytesRead != dataBytes {
			b.Fatalf("read amplification: %d bytes read of %d stored (want 1x)", st.BytesRead, dataBytes)
		}
	}
	b.ReportMetric(float64(1), "segment-reads/segment")
}

// BenchmarkReplayMultiCursor is the pre-single-pass design kept as the
// comparison baseline: one sequential Scan cursor per sensor merged by
// (EndUS, Sensor, Frame), paying k passes over the shared segments.
func BenchmarkReplayMultiCursor(b *testing.B) {
	dir := benchStoreDir(b)
	r, err := OpenReader(dir)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(benchRecordBytes() * benchSensors * benchFrames)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cursors := make([]*Cursor, benchSensors)
		heads := make([]Snapshot, benchSensors)
		live := make([]bool, benchSensors)
		for s := 0; s < benchSensors; s++ {
			cursors[s] = benchScan(b, r, s, 0, math.MaxInt64)
			snap, err := cursors[s].Next()
			if err != nil {
				b.Fatal(err)
			}
			heads[s], live[s] = snap, true
		}
		var n int64
		for {
			best := -1
			for s := range live {
				if live[s] && (best < 0 || snapLess(&heads[s], &heads[best])) {
					best = s
				}
			}
			if best < 0 {
				break
			}
			n++
			snap, err := cursors[best].Next()
			if err == io.EOF {
				live[best] = false
				continue
			}
			if err != nil {
				b.Fatal(err)
			}
			heads[best] = snap
		}
		for _, c := range cursors {
			c.Close()
		}
		if n != benchSensors*benchFrames {
			b.Fatalf("merged %d records, want %d", n, benchSensors*benchFrames)
		}
	}
}

// BenchmarkOpenReaderIndexed measures reader startup when sidecar indexes
// are present (no segment scans).
func BenchmarkOpenReaderIndexed(b *testing.B) {
	dir := benchStoreDir(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := OpenReader(dir); err != nil {
			b.Fatal(err)
		}
	}
}
