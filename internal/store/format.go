package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"regexp"
	"sort"

	"ebbiot/internal/geometry"
)

// On-disk constants. The full format is specified in docs/STORE.md; the
// encoder/decoder here is the single source of truth for the byte layout.
const (
	segMagic = "EBST" // segment data file
	idxMagic = "EBSI" // sidecar sparse index
	version  = 1

	segHeaderLen = 8 // magic + u32 version
	frameLen     = 8 // u32 payload length + u32 CRC32(payload)

	// maxRecordBytes bounds a single record's payload; a larger length
	// field is treated as corruption rather than attempted as an
	// allocation.
	maxRecordBytes = 1 << 26
	maxNameLen     = 1<<16 - 1
)

var le = binary.LittleEndian

// segmentName returns the data file name of segment n (1-based).
func segmentName(n int) string { return fmt.Sprintf("seg-%08d.log", n) }

// indexName returns the sidecar index file name of segment n.
func indexName(n int) string { return fmt.Sprintf("seg-%08d.idx", n) }

var segNameRE = regexp.MustCompile(`^seg-(\d{8})\.log$`)

// parseSegmentName extracts the segment number from a data file name.
func parseSegmentName(name string) (int, bool) {
	m := segNameRE.FindStringSubmatch(filepath.Base(name))
	if m == nil {
		return 0, false
	}
	var n int
	if _, err := fmt.Sscanf(m[1], "%d", &n); err != nil || n <= 0 {
		return 0, false
	}
	return n, true
}

// appendSegHeader appends the 8-byte segment file header.
func appendSegHeader(dst []byte) []byte {
	dst = append(dst, segMagic...)
	return le.AppendUint32(dst, version)
}

// checkSegHeader validates an 8-byte segment header.
func checkSegHeader(hdr []byte) error {
	if len(hdr) < segHeaderLen || string(hdr[:4]) != segMagic {
		return fmt.Errorf("%w: bad segment magic", ErrCorrupt)
	}
	if v := le.Uint32(hdr[4:8]); v != version {
		return fmt.Errorf("store: unsupported segment version %d", v)
	}
	return nil
}

// encodeSnapshot appends the record payload (no framing) for s to dst.
// Layout, all little-endian:
//
//	u32 sensor | u32 frame | u64 startUS | u64 endUS | u32 events |
//	u64 procUS | u16 nameLen | name | u32 nBoxes | nBoxes × (i32 x,y,w,h)
func encodeSnapshot(dst []byte, s Snapshot) []byte {
	dst = le.AppendUint32(dst, uint32(s.Sensor))
	dst = le.AppendUint32(dst, uint32(s.Frame))
	dst = le.AppendUint64(dst, uint64(s.StartUS))
	dst = le.AppendUint64(dst, uint64(s.EndUS))
	dst = le.AppendUint32(dst, uint32(s.Events))
	dst = le.AppendUint64(dst, uint64(s.ProcUS))
	dst = le.AppendUint16(dst, uint16(len(s.Name)))
	dst = append(dst, s.Name...)
	dst = le.AppendUint32(dst, uint32(len(s.Boxes)))
	for _, b := range s.Boxes {
		dst = le.AppendUint32(dst, uint32(int32(b.X)))
		dst = le.AppendUint32(dst, uint32(int32(b.Y)))
		dst = le.AppendUint32(dst, uint32(int32(b.W)))
		dst = le.AppendUint32(dst, uint32(int32(b.H)))
	}
	return dst
}

// peekMeta extracts the filter fields — sensor, window bounds — from a
// payload without decoding the name or box list, so scans can reject
// non-matching records allocation-free.
func peekMeta(p []byte) (sensor int, startUS, endUS int64, err error) {
	if len(p) < 24 {
		return 0, 0, 0, fmt.Errorf("%w: payload too short (%d bytes)", ErrCorrupt, len(p))
	}
	return int(le.Uint32(p[0:])), int64(le.Uint64(p[8:])), int64(le.Uint64(p[16:])), nil
}

// snapDecoder is decodeSnapshot with amortized allocations for bulk
// decode paths (the single-pass replay merge decodes every matching
// record in the store): sensor names are interned — a recorded stream
// repeats the same label on every window — and box slices are carved from
// chunked arenas instead of allocated per record. Decoded snapshots stay
// safe to retain indefinitely (interned strings and arena chunks are
// never reused), matching the Iterator contract. Zero value is ready.
type snapDecoder struct {
	names map[string]string
	arena []geometry.Box
}

// decodeSnapshot parses a record payload. Every length is bounds-checked
// so arbitrary bytes yield ErrCorrupt, never a panic.
func decodeSnapshot(p []byte) (Snapshot, error) {
	var s Snapshot
	err := decodeSnapshotInto(&s, p, nil)
	return s, err
}

// decodeSnapshotInto parses a record payload into *dst (which must be
// zeroed), drawing name and box storage from d when non-nil.
func decodeSnapshotInto(dst *Snapshot, p []byte, d *snapDecoder) error {
	s := dst
	const fixed = 4 + 4 + 8 + 8 + 4 + 8 + 2
	if len(p) < fixed {
		return fmt.Errorf("%w: payload too short (%d bytes)", ErrCorrupt, len(p))
	}
	s.Sensor = int(le.Uint32(p[0:]))
	s.Frame = int(le.Uint32(p[4:]))
	s.StartUS = int64(le.Uint64(p[8:]))
	s.EndUS = int64(le.Uint64(p[16:]))
	s.Events = int(le.Uint32(p[24:]))
	s.ProcUS = int64(le.Uint64(p[28:]))
	nameLen := int(le.Uint16(p[36:]))
	p = p[fixed:]
	if len(p) < nameLen+4 {
		return fmt.Errorf("%w: truncated name", ErrCorrupt)
	}
	if d != nil {
		if cached, ok := d.names[string(p[:nameLen])]; ok {
			s.Name = cached
		} else {
			if d.names == nil {
				d.names = make(map[string]string, 8)
			}
			n := string(p[:nameLen])
			d.names[n] = n
			s.Name = n
		}
	} else {
		s.Name = string(p[:nameLen])
	}
	p = p[nameLen:]
	nBoxes := int(le.Uint32(p))
	p = p[4:]
	if nBoxes < 0 || len(p) != nBoxes*16 {
		return fmt.Errorf("%w: box list length mismatch", ErrCorrupt)
	}
	if nBoxes > 0 {
		if d != nil {
			if len(d.arena)+nBoxes > cap(d.arena) {
				d.arena = make([]geometry.Box, 0, max(4096, nBoxes))
			}
			start := len(d.arena)
			d.arena = d.arena[:start+nBoxes]
			s.Boxes = d.arena[start : start+nBoxes : start+nBoxes]
		} else {
			s.Boxes = make([]geometry.Box, nBoxes)
		}
		for i := range s.Boxes {
			s.Boxes[i] = geometry.Box{
				X: int(int32(le.Uint32(p[i*16:]))),
				Y: int(int32(le.Uint32(p[i*16+4:]))),
				W: int(int32(le.Uint32(p[i*16+8:]))),
				H: int(int32(le.Uint32(p[i*16+12:]))),
			}
		}
	}
	return nil
}

// payloadCRC is the checksum stored in each record frame.
func payloadCRC(p []byte) uint32 { return crc32.ChecksumIEEE(p) }

// indexEntry is one sparse index point: every record whose file offset is
// strictly below Offset has EndUS <= CumMaxEndUS. CumMaxEndUS is a running
// maximum and therefore monotone across entries, so a time-bounded scan
// binary-searches for the last entry with CumMaxEndUS <= t0 and starts
// reading at its offset.
type indexEntry struct {
	CumMaxEndUS int64
	Offset      int64
}

// segMeta is the queryable summary of one segment — the in-memory form of
// the sidecar index. It is maintained incrementally by the Writer and
// rebuilt by scanning when the sidecar is missing or invalid.
type segMeta struct {
	Records   int64
	MinEndUS  int64
	MaxEndUS  int64
	cumMax    int64
	Sensors   map[int]struct{}
	Entries   []indexEntry
	DataBytes int64 // valid bytes in the data file, header included
}

func newSegMeta() *segMeta {
	return &segMeta{Sensors: make(map[int]struct{}), DataBytes: segHeaderLen}
}

// note records one snapshot appended at file offset off (the offset of its
// frame header), updating bounds, the sensor set and — every indexEvery
// records — the sparse entry list.
func (m *segMeta) note(s Snapshot, off int64, recLen int64, indexEvery int) {
	if m.Records > 0 && m.Records%int64(indexEvery) == 0 {
		m.Entries = append(m.Entries, indexEntry{CumMaxEndUS: m.cumMax, Offset: off})
	}
	if m.Records == 0 || s.EndUS < m.MinEndUS {
		m.MinEndUS = s.EndUS
	}
	if m.Records == 0 || s.EndUS > m.MaxEndUS {
		m.MaxEndUS = s.EndUS
	}
	if s.EndUS > m.cumMax {
		m.cumMax = s.EndUS
	}
	m.Sensors[s.Sensor] = struct{}{}
	m.Records++
	m.DataBytes = off + recLen
}

// seekOffset returns the file offset at which a scan for windows
// overlapping [t0, ∞) may start: records before it all end at or before
// t0 and therefore cannot overlap.
func (m *segMeta) seekOffset(t0 int64) int64 {
	i := sort.Search(len(m.Entries), func(i int) bool { return m.Entries[i].CumMaxEndUS > t0 })
	if i == 0 {
		return segHeaderLen
	}
	return m.Entries[i-1].Offset
}

// sortedSensors returns the segment's sensor ids in ascending order.
func (m *segMeta) sortedSensors() []int {
	out := make([]int, 0, len(m.Sensors))
	for s := range m.Sensors {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// marshalIndex serialises the sidecar index file. Layout after the 8-byte
// magic+version header (all little-endian):
//
//	u64 dataBytes | u64 records | u64 minEndUS | u64 maxEndUS |
//	u32 nSensors | nSensors × u32 | u32 nEntries |
//	nEntries × (u64 cumMaxEndUS, u64 offset) | u32 CRC32(everything above)
func marshalIndex(m *segMeta) []byte {
	dst := make([]byte, 0, 64+len(m.Sensors)*4+len(m.Entries)*16)
	dst = append(dst, idxMagic...)
	dst = le.AppendUint32(dst, version)
	dst = le.AppendUint64(dst, uint64(m.DataBytes))
	dst = le.AppendUint64(dst, uint64(m.Records))
	dst = le.AppendUint64(dst, uint64(m.MinEndUS))
	dst = le.AppendUint64(dst, uint64(m.MaxEndUS))
	sensors := m.sortedSensors()
	dst = le.AppendUint32(dst, uint32(len(sensors)))
	for _, s := range sensors {
		dst = le.AppendUint32(dst, uint32(s))
	}
	dst = le.AppendUint32(dst, uint32(len(m.Entries)))
	for _, e := range m.Entries {
		dst = le.AppendUint64(dst, uint64(e.CumMaxEndUS))
		dst = le.AppendUint64(dst, uint64(e.Offset))
	}
	return le.AppendUint32(dst, crc32.ChecksumIEEE(dst))
}

// unmarshalIndex parses a sidecar index file, verifying its trailing CRC.
func unmarshalIndex(p []byte) (*segMeta, error) {
	const fixed = 8 + 8*4 + 4
	if len(p) < fixed+4 || string(p[:4]) != idxMagic {
		return nil, fmt.Errorf("%w: bad index header", ErrCorrupt)
	}
	if v := le.Uint32(p[4:]); v != version {
		return nil, fmt.Errorf("store: unsupported index version %d", v)
	}
	body, sum := p[:len(p)-4], le.Uint32(p[len(p)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, fmt.Errorf("%w: index checksum mismatch", ErrCorrupt)
	}
	m := newSegMeta()
	m.DataBytes = int64(le.Uint64(body[8:]))
	m.Records = int64(le.Uint64(body[16:]))
	m.MinEndUS = int64(le.Uint64(body[24:]))
	m.MaxEndUS = int64(le.Uint64(body[32:]))
	m.cumMax = m.MaxEndUS
	nSensors := int(le.Uint32(body[40:]))
	body = body[44:]
	if len(body) < nSensors*4+4 {
		return nil, fmt.Errorf("%w: truncated index sensor list", ErrCorrupt)
	}
	for i := 0; i < nSensors; i++ {
		m.Sensors[int(le.Uint32(body[i*4:]))] = struct{}{}
	}
	body = body[nSensors*4:]
	nEntries := int(le.Uint32(body))
	body = body[4:]
	if len(body) != nEntries*16 {
		return nil, fmt.Errorf("%w: truncated index entry list", ErrCorrupt)
	}
	m.Entries = make([]indexEntry, nEntries)
	for i := range m.Entries {
		m.Entries[i] = indexEntry{
			CumMaxEndUS: int64(le.Uint64(body[i*16:])),
			Offset:      int64(le.Uint64(body[i*16+8:])),
		}
	}
	return m, nil
}
