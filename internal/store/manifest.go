package store

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// A run manifest is the authoritative record of one recording run: its
// identity, wall-clock span, parameter-set hash, retention policy, sensor
// set and — most importantly — the ordered segment list with each
// segment's Merkle root chained to its predecessor. The manifest is
// rewritten atomically (tmp + rename + directory fsync) at run start, at
// every rotation, at retention and at close, so a crash leaves either the
// previous or the next manifest on disk, never a torn one. A manifest
// whose bytes are damaged anyway (bit rot, tampering) fails its trailing
// CRC and is reported by Verify rather than trusted.
const (
	manMagic   = "EBSM"
	manVersion = 1

	// Manifest flags.
	manFinalized = 1 << 0 // run closed (or recovered); segment list is final
	manRecovered = 1 << 1 // finalized by crash recovery, not a clean Close

	// Segment entry states.
	segOpen    = 0 // being appended to (only the last entry of an open run)
	segSealed  = 1 // immutable, root computed, data + index on disk
	segExpired = 2 // tombstone: files deleted by retention, root retained

	// maxManifestSegments bounds the decoded segment list so arbitrary
	// bytes are rejected rather than attempted as an allocation.
	maxManifestSegments = 1 << 20
	maxManifestSensors  = 1 << 20
)

// manifestSeg is one segment entry. For expired entries the data and
// index files are gone; Records, DataBytes, the time bounds and the
// root/chain pair survive here as the tombstone.
type manifestSeg struct {
	Seg          int
	State        uint8
	Records      int64
	DataBytes    int64
	MinEndUS     int64
	MaxEndUS     int64
	SealedWallUS int64
	Root         [hashSize]byte
	Chain        [hashSize]byte
}

// manifest is the in-memory form of a run manifest file.
type manifest struct {
	RunID       uint64
	Flags       uint8
	StartWallUS int64
	EndWallUS   int64
	ParamsHash  [hashSize]byte
	Retention   RetentionPolicy
	Sensors     []int
	Segments    []manifestSeg
}

func (m *manifest) finalized() bool { return m.Flags&manFinalized != 0 }
func (m *manifest) recovered() bool { return m.Flags&manRecovered != 0 }

// openSeg returns the index of the run's open segment entry, or -1.
func (m *manifest) openSeg() int {
	for i := range m.Segments {
		if m.Segments[i].State == segOpen {
			return i
		}
	}
	return -1
}

// liveRecords sums the records of non-expired entries.
func (m *manifest) liveRecords() int64 {
	var n int64
	for _, e := range m.Segments {
		if e.State == segSealed {
			n += e.Records
		}
	}
	return n
}

// addSensors merges ids into the manifest's sorted sensor set.
func (m *manifest) addSensors(ids []int) {
	set := make(map[int]struct{}, len(m.Sensors)+len(ids))
	for _, s := range m.Sensors {
		set[s] = struct{}{}
	}
	for _, s := range ids {
		set[s] = struct{}{}
	}
	m.Sensors = m.Sensors[:0]
	for s := range set {
		m.Sensors = append(m.Sensors, s)
	}
	sort.Ints(m.Sensors)
}

// manifestName returns the manifest file name of run id.
func manifestName(id uint64) string { return fmt.Sprintf("run-%08d.mf", id) }

var manNameRE = regexp.MustCompile(`^run-(\d{8,20})\.mf$`)

// parseManifestName extracts the run id from a manifest file name.
func parseManifestName(name string) (uint64, bool) {
	m := manNameRE.FindStringSubmatch(filepath.Base(name))
	if m == nil {
		return 0, false
	}
	var id uint64
	if _, err := fmt.Sscanf(m[1], "%d", &id); err != nil || id == 0 {
		return 0, false
	}
	return id, true
}

// marshalManifest serialises m. Layout after the 8-byte magic+version
// header (all little-endian):
//
//	u64 runID | u8 flags | u64 startWallUS | u64 endWallUS |
//	32B paramsHash | u64 retainAgeUS | u64 retainBytes |
//	u32 nSensors | nSensors × u32 |
//	u32 nSegments | nSegments × (u32 seg | u8 state | u64 records |
//	    u64 dataBytes | u64 minEndUS | u64 maxEndUS | u64 sealedWallUS |
//	    32B root | 32B chain) |
//	u32 CRC32(everything above)
func marshalManifest(m *manifest) []byte {
	dst := make([]byte, 0, 128+len(m.Sensors)*4+len(m.Segments)*109)
	dst = append(dst, manMagic...)
	dst = le.AppendUint32(dst, manVersion)
	dst = le.AppendUint64(dst, m.RunID)
	dst = append(dst, m.Flags)
	dst = le.AppendUint64(dst, uint64(m.StartWallUS))
	dst = le.AppendUint64(dst, uint64(m.EndWallUS))
	dst = append(dst, m.ParamsHash[:]...)
	dst = le.AppendUint64(dst, uint64(m.Retention.MaxAgeUS))
	dst = le.AppendUint64(dst, uint64(m.Retention.MaxBytes))
	dst = le.AppendUint32(dst, uint32(len(m.Sensors)))
	for _, s := range m.Sensors {
		dst = le.AppendUint32(dst, uint32(s))
	}
	dst = le.AppendUint32(dst, uint32(len(m.Segments)))
	for i := range m.Segments {
		e := &m.Segments[i]
		dst = le.AppendUint32(dst, uint32(e.Seg))
		dst = append(dst, e.State)
		dst = le.AppendUint64(dst, uint64(e.Records))
		dst = le.AppendUint64(dst, uint64(e.DataBytes))
		dst = le.AppendUint64(dst, uint64(e.MinEndUS))
		dst = le.AppendUint64(dst, uint64(e.MaxEndUS))
		dst = le.AppendUint64(dst, uint64(e.SealedWallUS))
		dst = append(dst, e.Root[:]...)
		dst = append(dst, e.Chain[:]...)
	}
	return le.AppendUint32(dst, crc32.ChecksumIEEE(dst))
}

// unmarshalManifest parses a manifest file, verifying the trailing CRC.
// Every length is bounds-checked so arbitrary bytes yield ErrCorrupt,
// never a panic (FuzzManifestDecoder pins this down).
func unmarshalManifest(p []byte) (*manifest, error) {
	const fixed = 8 + 8 + 1 + 8 + 8 + hashSize + 8 + 8 + 4
	if len(p) < fixed+4+4 || string(p[:4]) != manMagic {
		return nil, fmt.Errorf("%w: bad manifest header", ErrCorrupt)
	}
	if v := le.Uint32(p[4:]); v != manVersion {
		return nil, fmt.Errorf("store: unsupported manifest version %d", v)
	}
	body, sum := p[:len(p)-4], le.Uint32(p[len(p)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, fmt.Errorf("%w: manifest checksum mismatch", ErrCorrupt)
	}
	m := &manifest{}
	b := body[8:]
	m.RunID = le.Uint64(b)
	m.Flags = b[8]
	m.StartWallUS = int64(le.Uint64(b[9:]))
	m.EndWallUS = int64(le.Uint64(b[17:]))
	copy(m.ParamsHash[:], b[25:])
	b = b[25+hashSize:]
	m.Retention.MaxAgeUS = int64(le.Uint64(b))
	m.Retention.MaxBytes = int64(le.Uint64(b[8:]))
	nSensors := int(le.Uint32(b[16:]))
	b = b[20:]
	if nSensors < 0 || nSensors > maxManifestSensors || len(b) < nSensors*4+4 {
		return nil, fmt.Errorf("%w: truncated manifest sensor list", ErrCorrupt)
	}
	if nSensors > 0 {
		m.Sensors = make([]int, nSensors)
		for i := range m.Sensors {
			m.Sensors[i] = int(le.Uint32(b[i*4:]))
		}
	}
	b = b[nSensors*4:]
	nSegs := int(le.Uint32(b))
	b = b[4:]
	const entryLen = 4 + 1 + 8*5 + hashSize*2
	if nSegs < 0 || nSegs > maxManifestSegments || len(b) != nSegs*entryLen {
		return nil, fmt.Errorf("%w: truncated manifest segment list", ErrCorrupt)
	}
	if nSegs > 0 {
		m.Segments = make([]manifestSeg, nSegs)
		for i := range m.Segments {
			e := &m.Segments[i]
			e.Seg = int(le.Uint32(b))
			e.State = b[4]
			if e.State > segExpired {
				return nil, fmt.Errorf("%w: bad segment state %d in manifest", ErrCorrupt, e.State)
			}
			e.Records = int64(le.Uint64(b[5:]))
			e.DataBytes = int64(le.Uint64(b[13:]))
			e.MinEndUS = int64(le.Uint64(b[21:]))
			e.MaxEndUS = int64(le.Uint64(b[29:]))
			e.SealedWallUS = int64(le.Uint64(b[37:]))
			copy(e.Root[:], b[45:])
			copy(e.Chain[:], b[45+hashSize:])
			b = b[entryLen:]
		}
	}
	return m, nil
}

// writeManifestFile atomically replaces run m.RunID's manifest: the new
// bytes are written to a temporary file, fsynced, renamed over the old
// manifest, and the directory fsynced so the rename survives a crash.
func writeManifestFile(dir string, m *manifest) error {
	path := filepath.Join(dir, manifestName(m.RunID))
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := f.Write(marshalManifest(m)); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: write manifest %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: sync manifest %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: close manifest %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: rename manifest: %w", err)
	}
	return syncDir(dir)
}

// removeManifestFile deletes run id's manifest (used when an empty run is
// discarded) and fsyncs the directory.
func removeManifestFile(dir string, id uint64) error {
	if err := os.Remove(filepath.Join(dir, manifestName(id))); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: %w", err)
	}
	return syncDir(dir)
}

// loadManifests reads every run manifest in dir, ascending by run id.
// Unparseable manifests are returned as problems (file name + reason),
// not errors: readers degrade to treating their segments as an
// unverifiable legacy group, and Verify reports them as tampered. Only
// I/O failures return an error. Stray .tmp files from a crashed atomic
// rewrite are ignored (the writer removes them on Open).
func loadManifests(dir string) (mans []*manifest, problems []string, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("store: list %s: %w", dir, err)
	}
	for _, e := range entries {
		id, ok := parseManifestName(e.Name())
		if !ok {
			continue
		}
		raw, rerr := os.ReadFile(filepath.Join(dir, e.Name()))
		if rerr != nil {
			return nil, nil, fmt.Errorf("store: %w", rerr)
		}
		m, merr := unmarshalManifest(raw)
		if merr != nil {
			problems = append(problems, fmt.Sprintf("%s: %v", e.Name(), merr))
			continue
		}
		if m.RunID != id {
			problems = append(problems, fmt.Sprintf("%s: declares run %d", e.Name(), m.RunID))
			continue
		}
		mans = append(mans, m)
	}
	sort.Slice(mans, func(i, j int) bool { return mans[i].RunID < mans[j].RunID })
	return mans, problems, nil
}

// removeStrayTemps deletes leftover manifest .tmp files from a crashed
// atomic rewrite (writer-side housekeeping on Open).
func removeStrayTemps(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".mf.tmp") {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
}
