package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// RetentionPolicy bounds a store directory by age and/or size. Expiry is
// whole-segment only: a sealed segment past the age bound, or the oldest
// sealed segments while the directory exceeds the size bound, are deleted
// and replaced by manifest tombstones that keep the segment's Merkle root
// and chain value — so the chained roots of every retained segment stay
// provable (Verify recomputes the chain through tombstones without
// touching the deleted bytes). The open segment is never expired.
type RetentionPolicy struct {
	// MaxAgeUS expires sealed segments older than this (measured from the
	// wall-clock seal time). 0 disables age expiry.
	MaxAgeUS int64
	// MaxBytes expires oldest sealed segments while the live data bytes
	// across all runs exceed this. 0 disables size expiry.
	MaxBytes int64
}

func (p RetentionPolicy) enabled() bool { return p.MaxAgeUS > 0 || p.MaxBytes > 0 }

// nowUS is the wall clock used for seal times and age expiry; a variable
// so tests can drive retention deterministically.
var nowUS = func() int64 { return time.Now().UnixMicro() }

// retainCandidate is one sealed segment eligible for expiry.
type retainCandidate struct {
	man   *manifest
	entry int
}

// applyRetention enforces pol over every manifest in mans (the live
// writer's own included), expiring whole sealed segments oldest-first.
// For each affected run the manifest is rewritten (tombstones recorded)
// before the segment's data and index files are deleted, so a crash
// between the two leaves only orphan files — removed by the next Open —
// never a tombstone-less deletion. Returns the number of segments
// expired.
func applyRetention(dir string, mans []*manifest, pol RetentionPolicy, now int64) (int, error) {
	if !pol.enabled() {
		return 0, nil
	}
	var cands []retainCandidate
	var liveBytes int64
	for _, m := range mans {
		for i := range m.Segments {
			e := &m.Segments[i]
			switch e.State {
			case segSealed:
				cands = append(cands, retainCandidate{man: m, entry: i})
				liveBytes += e.DataBytes
			case segOpen:
				liveBytes += e.DataBytes
			}
		}
	}
	// Oldest first by seal time, ties broken by (run, segment) so the
	// order is total and deterministic.
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i].man.Segments[cands[i].entry], cands[j].man.Segments[cands[j].entry]
		if a.SealedWallUS != b.SealedWallUS {
			return a.SealedWallUS < b.SealedWallUS
		}
		if cands[i].man.RunID != cands[j].man.RunID {
			return cands[i].man.RunID < cands[j].man.RunID
		}
		return a.Seg < b.Seg
	})
	touched := make(map[*manifest]struct{})
	var expire []retainCandidate
	for _, c := range cands {
		e := &c.man.Segments[c.entry]
		tooOld := pol.MaxAgeUS > 0 && e.SealedWallUS < now-pol.MaxAgeUS
		tooBig := pol.MaxBytes > 0 && liveBytes > pol.MaxBytes
		if !tooOld && !tooBig {
			continue
		}
		e.State = segExpired
		liveBytes -= e.DataBytes
		expire = append(expire, c)
		touched[c.man] = struct{}{}
	}
	if len(expire) == 0 {
		return 0, nil
	}
	// Tombstones first, durably; then the files.
	for m := range touched {
		if err := writeManifestFile(dir, m); err != nil {
			return 0, err
		}
	}
	for _, c := range expire {
		n := c.man.Segments[c.entry].Seg
		if err := os.Remove(filepath.Join(dir, segmentName(n))); err != nil && !os.IsNotExist(err) {
			return 0, fmt.Errorf("store: expire segment %d: %w", n, err)
		}
		if err := os.Remove(filepath.Join(dir, indexName(n))); err != nil && !os.IsNotExist(err) {
			return 0, fmt.Errorf("store: expire index %d: %w", n, err)
		}
	}
	if err := syncDir(dir); err != nil {
		return 0, err
	}
	return len(expire), nil
}

// removeExpiredLeftovers deletes data/index files that a crashed
// retention pass tombstoned but did not get to delete.
func removeExpiredLeftovers(dir string, m *manifest) {
	for i := range m.Segments {
		if m.Segments[i].State != segExpired {
			continue
		}
		n := m.Segments[i].Seg
		os.Remove(filepath.Join(dir, segmentName(n)))
		os.Remove(filepath.Join(dir, indexName(n)))
	}
}
