package store

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"
	"time"
)

// The crash-drill harness kills the writer at randomized points — mid
// frame, mid index, mid manifest rewrite — and asserts the recovery
// contract every time: the recovered prefix verifies (roots and chain),
// the torn tail is truncated to exactly the last valid record, and the
// recovered run replays bit-identically to the same prefix recorded by an
// uninterrupted writer. `make crash-drill` runs the fixed seed matrix
// under -race; CRASH_DRILL_SEED / CRASH_DRILL_POINTS widen the sweep.

func drillSeed() int64 {
	if s := os.Getenv("CRASH_DRILL_SEED"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			return v
		}
	}
	return 1
}

func drillPoints() int {
	if s := os.Getenv("CRASH_DRILL_POINTS"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return 50
}

const crashChildEnv = "EBBIOT_CRASH_CHILD_DIR"

func crashChildRequested() bool { return os.Getenv(crashChildEnv) != "" }

// crashChildMain is the drill victim: opened from TestMain in a re-exec'd
// test binary, it appends records as fast as it can — rotating small
// segments, fsyncing every record so the kill point is in the durable
// stream — until the parent SIGKILLs it mid-whatever.
func crashChildMain() {
	w, err := Open(os.Getenv(crashChildEnv), Options{SegmentBytes: 4096, SyncEvery: 1})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(3)
	}
	for f := 0; ; f++ {
		for _, id := range []int{0, 1} {
			if err := w.Append(snap(id, f, 66_000)); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(3)
			}
		}
	}
}

// drillAppend returns the a-th record of the drill append order: sensors
// 0 and 1 alternating, one frame each per pair.
func drillAppend(a int) Snapshot { return snap(a%2, a/2, 66_000) }

// recoverAndAudit reopens dir (running crash recovery), closes the empty
// new run, and asserts the recovered store verifies clean and holds an
// exact prefix of the drill append order. Returns the recovered record
// count.
func recoverAndAudit(t *testing.T, dir string) int64 {
	t.Helper()
	w, err := Open(dir, Options{SegmentBytes: 2048})
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := Verify(dir)
	if err != nil {
		t.Fatalf("Verify after recovery: %v", err)
	}
	if !rep.Clean() {
		t.Fatalf("recovered store not clean: %+v", rep)
	}
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	runs := r.Runs()
	if len(runs) == 0 {
		return 0 // killed before anything durable; empty run discarded
	}
	if len(runs) != 1 || !runs[0].Finalized || !runs[0].Recovered {
		t.Fatalf("Runs() after recovery = %+v, want one finalized+recovered run", runs)
	}
	if st := r.Stats(); st.DroppedBytes != 0 {
		t.Fatalf("recovered store still reports %d dropped bytes: tail not truncated to the last valid record", st.DroppedBytes)
	}
	// Per-sensor streams must each be an exact prefix of what was appended,
	// and their lengths consistent with one interleaved append order.
	var counts [2]int
	for id := 0; id < 2; id++ {
		got := collect(t, scanRun(t, r, runs[0].ID, id, 0, math.MaxInt64))
		counts[id] = len(got)
		for f, s := range got {
			if want := snap(id, f, 66_000); !reflect.DeepEqual(s, want) {
				t.Fatalf("sensor %d frame %d corrupted by recovery: %+v", id, f, s)
			}
		}
	}
	if counts[0] != counts[1] && counts[0] != counts[1]+1 {
		t.Fatalf("recovered per-sensor counts %v are not a prefix of the append order", counts)
	}
	return runs[0].Records
}

// assertBitIdenticalPrefix records the first m drill appends with an
// uninterrupted writer and asserts the recovered run replays identically.
func assertBitIdenticalPrefix(t *testing.T, dir string, m int64) {
	t.Helper()
	refDir := t.TempDir()
	if m > 0 {
		w, err := Open(refDir, Options{SegmentBytes: 2048})
		if err != nil {
			t.Fatal(err)
		}
		for a := int64(0); a < m; a++ {
			if err := w.Append(drillAppend(int(a))); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	replay := func(d string) []Snapshot {
		r, err := OpenReader(d)
		if err != nil {
			t.Fatal(err)
		}
		it, err := r.Replay(0, nil, 0, math.MaxInt64)
		if err != nil {
			t.Fatal(err)
		}
		return collect(t, it)
	}
	got, want := replay(dir), replay(refDir)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered replay differs from uninterrupted %d-record prefix: %d vs %d records", m, len(got), len(want))
	}
}

// TestCrashDrillRandomized is the deterministic fault matrix: each point
// kills the writer after a random number of appends and injects one fault
// class — clean kill, torn tail (mid-frame), bit flip in the unsealed
// tail, garbage in the open segment's sidecar slot (mid-index), or a
// stray manifest temp file (mid-manifest rewrite) — then asserts the full
// recovery contract.
func TestCrashDrillRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(drillSeed()))
	points := drillPoints()
	for point := 0; point < points; point++ {
		kills := rng.Intn(81)
		mode := rng.Intn(5)
		fuzz := rng.Int63()
		t.Run(fmt.Sprintf("point%03d", point), func(t *testing.T) {
			dir := t.TempDir()
			w, err := Open(dir, Options{SegmentBytes: 2048})
			if err != nil {
				t.Fatal(err)
			}
			for a := 0; a < kills; a++ {
				if err := w.Append(drillAppend(a)); err != nil {
					t.Fatal(err)
				}
			}
			w.crash()
			sub := rand.New(rand.NewSource(fuzz))
			cleanKill := mode == 0
			switch mode {
			case 1: // torn tail: mid-frame or mid-payload cut
				path := lastSegPath(t, dir)
				fi, err := os.Stat(path)
				if err != nil {
					t.Fatal(err)
				}
				if cut := fi.Size() - segHeaderLen; cut > 0 {
					if err := os.Truncate(path, fi.Size()-(1+sub.Int63n(min64(cut, 64)))); err != nil {
						t.Fatal(err)
					}
				}
			case 2: // bit flip somewhere in the unsealed (open) segment
				path := lastSegPath(t, dir)
				raw, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				if len(raw) > 0 {
					raw[sub.Intn(len(raw))] ^= 1 << uint(sub.Intn(8))
					if err := os.WriteFile(path, raw, 0o644); err != nil {
						t.Fatal(err)
					}
				}
			case 3: // mid-index: partial sidecar for the still-open segment
				segs, err := listSegments(dir)
				if err != nil || len(segs) == 0 {
					t.Fatal(err)
				}
				junk := make([]byte, 1+sub.Intn(40))
				sub.Read(junk)
				if err := os.WriteFile(filepath.Join(dir, indexName(segs[len(segs)-1])), junk, 0o644); err != nil {
					t.Fatal(err)
				}
			case 4: // mid-manifest: stray temp from a torn atomic rewrite
				junk := make([]byte, 1+sub.Intn(200))
				sub.Read(junk)
				if err := os.WriteFile(filepath.Join(dir, manifestName(1)+".tmp"), junk, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			m := recoverAndAudit(t, dir)
			if cleanKill && m != int64(kills) {
				t.Fatalf("clean kill after %d appends recovered %d records", kills, m)
			}
			if m > int64(kills) {
				t.Fatalf("recovered %d records from %d appends", m, kills)
			}
			assertBitIdenticalPrefix(t, dir, m)
			if stray, _ := filepath.Glob(filepath.Join(dir, "*.mf.tmp")); len(stray) != 0 {
				t.Fatalf("stray manifest temps survived recovery: %v", stray)
			}
		})
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// TestCrashDrillProcessKill is the real thing: a re-exec'd writer process
// SIGKILLed at a random point in its append loop, with no cooperation from
// the victim — the recovered prefix must verify and stay an exact prefix.
func TestCrashDrillProcessKill(t *testing.T) {
	if testing.Short() {
		t.Skip("process-kill drill skipped in -short")
	}
	rng := rand.New(rand.NewSource(drillSeed() + 100))
	for round := 0; round < 6; round++ {
		dir := t.TempDir()
		cmd := exec.Command(os.Args[0], "-test.run=^$")
		cmd.Env = append(os.Environ(), crashChildEnv+"="+dir)
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Duration(2+rng.Intn(60)) * time.Millisecond)
		if err := cmd.Process.Kill(); err != nil {
			t.Fatal(err)
		}
		cmd.Wait()
		m := recoverAndAudit(t, dir)
		t.Logf("round %d: recovered %d records", round, m)
	}
}
