package store

import (
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestVerifyCleanStore is the baseline: a freshly recorded multi-segment
// run audits clean, with every segment's root and chain link checked.
func TestVerifyCleanStore(t *testing.T) {
	dir := t.TempDir()
	writeStore(t, dir, Options{SegmentBytes: 2048}, []int{0, 1}, 60, 66_000)
	rep, err := Verify(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("fresh store not clean: %+v", rep)
	}
	if len(rep.Runs) != 1 || rep.Runs[0].Segments < 3 || rep.Records != 120 {
		t.Fatalf("Verify = %+v, want one run, >=3 segments, 120 records", rep)
	}
}

// TestVerifyDetectsAnySingleBitFlip is the tamper-evidence property: a
// single flipped bit anywhere — segment data or header, sidecar index,
// manifest — must surface in the report (exit 1 territory), never pass as
// clean and never escalate to an I/O error. Positions are sampled with a
// fixed seed plus the structural corners (first byte, magic, trailer).
func TestVerifyDetectsAnySingleBitFlip(t *testing.T) {
	dir := t.TempDir()
	writeStore(t, dir, Options{SegmentBytes: 2048, IndexEvery: 8}, []int{0, 1}, 40, 66_000)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for _, e := range entries {
		name := e.Name()
		if name == lockFileName {
			continue
		}
		path := filepath.Join(dir, name)
		orig, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		offsets := []int{0, len(orig) / 2, len(orig) - 1}
		for i := 0; i < 32; i++ {
			offsets = append(offsets, rng.Intn(len(orig)))
		}
		for _, off := range offsets {
			bit := byte(1) << uint(rng.Intn(8))
			raw := append([]byte(nil), orig...)
			raw[off] ^= bit
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
			rep, verr := Verify(dir)
			if verr != nil {
				t.Fatalf("%s offset %d: Verify returned an I/O error for tampering: %v", name, off, verr)
			}
			if rep.Clean() {
				t.Fatalf("%s: flipping bit %#02x at offset %d of %d went undetected", name, bit, off, len(orig))
			}
		}
		if err := os.WriteFile(path, orig, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if rep, err := Verify(dir); err != nil || !rep.Clean() {
		t.Fatalf("store not clean after restoring all bytes: %+v, %v", rep, err)
	}
}

// TestRetentionRoundTrip drives the fake clock through a recording with an
// age bound: old segments expire to tombstones mid-run, the files are
// gone, and the run still verifies — the tombstoned roots keep the chain
// of every retained segment provable.
func TestRetentionRoundTrip(t *testing.T) {
	clock := int64(1_000_000_000_000)
	restore := nowUS
	nowUS = func() int64 { return clock }
	defer func() { nowUS = restore }()

	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentBytes: 2048, Retention: RetentionPolicy{MaxAgeUS: 5_000_000}})
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < 100; f++ {
		if err := w.Append(snap(0, f, 66_000)); err != nil {
			t.Fatal(err)
		}
		clock += 500_000 // 0.5 s per frame; 5 s age bound spans ~10 frames
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	runs := r.Runs()
	if len(runs) != 1 || runs[0].Tombstones == 0 || runs[0].Records == 100 {
		t.Fatalf("Runs() = %+v, want one run with tombstones and a reduced live record count", runs)
	}
	// Expired files are actually deleted.
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != runs[0].Segments {
		t.Fatalf("%d segment files on disk for %d live segments", len(segs), runs[0].Segments)
	}
	// The surviving records are the newest contiguous suffix.
	got := collect(t, scanRun(t, r, 0, 0, 0, math.MaxInt64))
	if int64(len(got)) != runs[0].Records {
		t.Fatalf("scan yielded %d records, run reports %d", len(got), runs[0].Records)
	}
	first := 100 - len(got)
	for i, s := range got {
		if want := snap(0, first+i, 66_000); !reflect.DeepEqual(s, want) {
			t.Fatalf("retained record %d is frame %d, want %d", i, s.Frame, first+i)
		}
	}
	// The acceptance property: verify passes via tombstone roots.
	rep, err := Verify(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() || rep.Runs[0].Tombstones != runs[0].Tombstones {
		t.Fatalf("Verify after retention = %+v, want clean with %d tombstones", rep, runs[0].Tombstones)
	}
	// Proofs: a retained record still proves at its original run-wide seq;
	// an expired one errors, naming the tombstone.
	lastSeq := int64(99)
	p, err := Prove(dir, 0, lastSeq)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Verify() || p.Snapshot.Frame != 99 {
		t.Fatalf("proof for seq %d: verify=%v frame=%d", lastSeq, p.Verify(), p.Snapshot.Frame)
	}
	if _, err := Prove(dir, 0, 0); err == nil || !strings.Contains(err.Error(), "expired") {
		t.Fatalf("Prove over an expired record: %v, want an expiry error", err)
	}
}

// TestRetentionSizeBoundAcrossRuns pins the size bound: the active
// writer's policy governs the whole directory, expiring oldest segments
// of earlier runs first, and a fully-expired run remains listed as
// tombstones.
func TestRetentionSizeBoundAcrossRuns(t *testing.T) {
	clock := int64(2_000_000_000_000)
	restore := nowUS
	nowUS = func() int64 { return clock }
	defer func() { nowUS = restore }()

	dir := t.TempDir()
	writeStore(t, dir, Options{SegmentBytes: 2048}, []int{0}, 60, 66_000)
	clock += 1_000_000
	w, err := Open(dir, Options{SegmentBytes: 2048, Retention: RetentionPolicy{MaxBytes: 6 << 10}})
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < 60; f++ {
		if err := w.Append(snap(0, f, 66_000)); err != nil {
			t.Fatal(err)
		}
		clock += 1000
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Runs != 2 || st.Tombstones == 0 {
		t.Fatalf("Stats() = %+v, want 2 runs with tombstones", st)
	}
	if st.DataBytes > (8 << 10) {
		t.Fatalf("live bytes %d exceed the size bound with slack", st.DataBytes)
	}
	runs := r.Runs()
	if runs[0].Tombstones == 0 {
		t.Fatalf("oldest run lost no segments: %+v", runs)
	}
	if rep, err := Verify(dir); err != nil || !rep.Clean() {
		t.Fatalf("Verify after cross-run retention: %+v, %v", rep, err)
	}
}

// TestProveInclusion spot-checks proofs across a multi-segment run and the
// error paths: out-of-range seq, and tampered data failing proof
// generation with a typed corruption error.
func TestProveInclusion(t *testing.T) {
	dir := t.TempDir()
	writeStore(t, dir, Options{SegmentBytes: 2048}, []int{0, 1}, 40, 66_000)
	for _, seq := range []int64{0, 1, 39, 79} {
		p, err := Prove(dir, 0, seq)
		if err != nil {
			t.Fatalf("Prove(%d): %v", seq, err)
		}
		if !p.Verify() {
			t.Fatalf("proof for seq %d does not verify", seq)
		}
		// seq counts in append order: sensors alternate per frame.
		if want := snap(int(seq%2), int(seq/2), 66_000); !reflect.DeepEqual(p.Snapshot, want) {
			t.Fatalf("seq %d proves %+v, want %+v", seq, p.Snapshot, want)
		}
	}
	if _, err := Prove(dir, 0, 80); err == nil {
		t.Fatal("Prove past the end succeeded")
	}
	if _, err := Prove(dir, 0, -1); err == nil {
		t.Fatal("Prove(-1) succeeded")
	}
	// Tamper, then ask for a proof in the damaged segment.
	path := lastSegPath(t, dir)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 1
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Prove(dir, 0, 79); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Prove over tampered data: %v, want ErrCorrupt", err)
	}
}

// TestIndexSidecarCorruption pins the degraded-read contract: a bit-flipped
// or truncated sidecar index falls back to a full segment scan — identical
// results, IndexFallbacks counted — never a wrong seek; and Verify reports
// the sidecar as a problem.
func TestIndexSidecarCorruption(t *testing.T) {
	const t0, t1 = 10 * 66_000, 30 * 66_000
	baseline := func(dir string) []Snapshot {
		r, err := OpenReader(dir)
		if err != nil {
			t.Fatal(err)
		}
		return collect(t, scanRun(t, r, 0, 1, t0, t1))
	}
	for _, damage := range []struct {
		name string
		fn   func(t *testing.T, path string)
	}{
		{"bitflip", func(t *testing.T, path string) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			raw[len(raw)/2] ^= 0x10
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"truncate", func(t *testing.T, path string) {
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, fi.Size()/2); err != nil {
				t.Fatal(err)
			}
		}},
	} {
		t.Run(damage.name, func(t *testing.T) {
			dir := t.TempDir()
			writeStore(t, dir, Options{SegmentBytes: 2048, IndexEvery: 4}, []int{0, 1}, 60, 66_000)
			want := baseline(dir)
			if len(want) == 0 {
				t.Fatal("baseline scan is empty; test is vacuous")
			}
			segs, err := listSegments(dir)
			if err != nil {
				t.Fatal(err)
			}
			damage.fn(t, filepath.Join(dir, indexName(segs[0])))
			r, err := OpenReader(dir)
			if err != nil {
				t.Fatal(err)
			}
			if got := collect(t, scanRun(t, r, 0, 1, t0, t1)); !reflect.DeepEqual(got, want) {
				t.Fatalf("scan with %s sidecar differs: %d vs %d records", damage.name, len(got), len(want))
			}
			if fb := r.IndexFallbacks(); fb != 1 {
				t.Fatalf("IndexFallbacks = %d, want 1", fb)
			}
			rep, err := Verify(dir)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Clean() {
				t.Fatalf("Verify missed the %s sidecar damage", damage.name)
			}
		})
	}
}

// TestManifestRoundTrip pins the manifest binary format.
func TestManifestRoundTrip(t *testing.T) {
	m := &manifest{
		RunID:       7,
		Flags:       manFinalized | manRecovered,
		StartWallUS: 1_700_000_000_000_000,
		EndWallUS:   1_700_000_100_000_000,
		Retention:   RetentionPolicy{MaxAgeUS: 3_600_000_000, MaxBytes: 64 << 20},
		Sensors:     []int{0, 2, 5},
		Segments: []manifestSeg{
			{Seg: 3, State: segExpired, Records: 10, DataBytes: 900, MinEndUS: 1, MaxEndUS: 10,
				SealedWallUS: 5, Root: leafHash([]byte("a")), Chain: leafHash([]byte("b"))},
			{Seg: 4, State: segSealed, Records: 20, DataBytes: 1800, MinEndUS: 11, MaxEndUS: 30,
				SealedWallUS: 6, Root: leafHash([]byte("c")), Chain: leafHash([]byte("d"))},
			{Seg: 5, State: segOpen},
		},
	}
	m.ParamsHash[0] = 0xAB
	got, err := unmarshalManifest(marshalManifest(m))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, m)
	}
}

// FuzzManifestDecoder hammers the manifest decoder with arbitrary bytes:
// it must never panic, and anything it does accept must re-marshal to a
// decodable, equal manifest.
func FuzzManifestDecoder(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(manMagic))
	seed := &manifest{RunID: 3, Flags: manFinalized, StartWallUS: 111, EndWallUS: 222,
		Sensors: []int{0, 2}, Retention: RetentionPolicy{MaxAgeUS: 5},
		Segments: []manifestSeg{{Seg: 1, State: segSealed, Records: 4, DataBytes: 600,
			MinEndUS: 1, MaxEndUS: 4, SealedWallUS: 999, Root: leafHash([]byte("r")), Chain: leafHash([]byte("c"))}}}
	raw := marshalManifest(seed)
	f.Add(raw)
	for _, cut := range []int{1, 8, len(raw) / 2, len(raw) - 1} {
		f.Add(raw[:cut])
	}
	mutated := append([]byte(nil), raw...)
	mutated[len(mutated)/2] ^= 0x80
	f.Add(mutated)
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := unmarshalManifest(b)
		if err != nil {
			return
		}
		again, err := unmarshalManifest(marshalManifest(m))
		if err != nil {
			t.Fatalf("re-marshal of accepted manifest does not decode: %v", err)
		}
		if !reflect.DeepEqual(m, again) {
			t.Fatalf("accepted manifest does not round-trip:\n got %+v\nwant %+v", again, m)
		}
	})
}
