//go:build windows

package store

import "os"

// Windows has no flock; concurrent-writer protection is unix-only. The
// single-writer requirement still holds — it is just not enforced here.
func acquireDirLock(dir string) (*os.File, error) { return nil, nil }

func releaseDirLock(f *os.File) {}
