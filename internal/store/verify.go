package store

import (
	"bytes"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// RunVerify is one run's share of a Verify report.
type RunVerify struct {
	ID        uint64
	Legacy    bool
	Finalized bool
	Recovered bool
	// Segments counts live segments checked; Tombstones counts expired
	// entries whose chain link was verified from the recorded root.
	Segments   int
	Tombstones int
	Records    int64
	DataBytes  int64
	// TornTailBytes counts recoverable invalid bytes at the tail of an
	// unfinalized run's open segment — not damage, just an un-recovered
	// crash (or legacy-store recovery region).
	TornTailBytes int64
	// Problems lists integrity violations: root or chain mismatches,
	// size/record divergence from the manifest, invalid bytes in sealed
	// segments, damaged or missing sidecar indexes.
	Problems []string
}

// VerifyReport summarises a full-store integrity audit.
type VerifyReport struct {
	Runs []RunVerify
	// Problems lists directory-level violations: manifests that failed
	// their checksum or declared the wrong run.
	Problems  []string
	Records   int64
	DataBytes int64
}

// Clean reports whether the audit found no integrity violations.
func (v VerifyReport) Clean() bool {
	if len(v.Problems) > 0 {
		return false
	}
	for _, r := range v.Runs {
		if len(r.Problems) > 0 {
			return false
		}
	}
	return true
}

// Verify audits every run in dir against its manifest: each sealed
// segment is rescanned from disk, its Merkle root recomputed over the
// record hashes and compared to the manifest's, the chain of roots
// re-derived through sealed and tombstoned entries alike, sizes and
// record counts cross-checked, and sidecar indexes validated. Legacy
// segments (no manifest) get frame/CRC validation only. Verify never
// modifies the store.
//
// Integrity violations — any single flipped bit in a segment, index or
// manifest byte — land in the report's Problems; only environmental I/O
// failures (permissions, disk errors) return a non-nil error. The
// ebbiot-query CLI maps the three outcomes to exit codes 0/1/2.
func Verify(dir string) (VerifyReport, error) {
	var rep VerifyReport
	mans, problems, err := loadManifests(dir)
	if err != nil {
		return rep, err
	}
	rep.Problems = problems
	segsOnDisk, err := listSegments(dir)
	if err != nil {
		return rep, err
	}
	claimed := make(map[int]bool)
	for _, m := range mans {
		rv, verr := verifyRun(dir, m, claimed)
		if verr != nil {
			return rep, verr
		}
		rep.Records += rv.Records
		rep.DataBytes += rv.DataBytes
		rep.Runs = append(rep.Runs, rv)
	}
	// Unclaimed segments: the legacy group. No roots to check — validate
	// framing and checksums, as the pre-manifest Verify did.
	var legacy RunVerify
	legacy.Legacy = true
	legacy.Finalized = true
	for _, n := range segsOnDisk {
		if claimed[n] {
			continue
		}
		meta, dropped, serr := scanSegment(filepath.Join(dir, segmentName(n)), DefaultIndexEvery)
		if serr != nil {
			return rep, serr
		}
		legacy.Segments++
		legacy.Records += meta.Records
		legacy.DataBytes += meta.DataBytes
		if dropped > 0 {
			legacy.Problems = append(legacy.Problems, fmt.Sprintf(
				"%s: %d valid records, %d invalid bytes", segmentName(n), meta.Records, dropped))
		}
	}
	if legacy.Segments > 0 {
		rep.Records += legacy.Records
		rep.DataBytes += legacy.DataBytes
		rep.Runs = append(rep.Runs, RunVerify{})
		copy(rep.Runs[1:], rep.Runs[:len(rep.Runs)-1])
		rep.Runs[0] = legacy
	}
	return rep, nil
}

// verifyRun audits one manifest-described run.
func verifyRun(dir string, m *manifest, claimed map[int]bool) (RunVerify, error) {
	rv := RunVerify{ID: m.RunID, Finalized: m.finalized(), Recovered: m.recovered()}
	prob := func(format string, args ...any) {
		rv.Problems = append(rv.Problems, fmt.Sprintf(format, args...))
	}
	prev := runSeed(m.RunID)
	openSeen := false
	for i := range m.Segments {
		e := &m.Segments[i]
		claimed[e.Seg] = true
		switch e.State {
		case segExpired:
			// The bytes are gone by design; the tombstone's recorded root
			// must still link the chain so every retained successor
			// remains provable.
			if chainHash(prev, e.Root) != e.Chain {
				prob("%s (tombstone): chain mismatch", segmentName(e.Seg))
			}
			prev = e.Chain
			rv.Tombstones++

		case segSealed:
			var acc merkleAcc
			meta, dropped, serr := scanSegmentFunc(filepath.Join(dir, segmentName(e.Seg)), DefaultIndexEvery,
				func(p []byte) { acc.add(leafHash(p)) })
			if serr != nil {
				if errors.Is(serr, fs.ErrNotExist) {
					prob("%s: sealed segment file missing", segmentName(e.Seg))
					prev = e.Chain
					continue
				}
				return rv, serr
			}
			rv.Segments++
			rv.Records += meta.Records
			rv.DataBytes += meta.DataBytes
			if dropped > 0 {
				prob("%s: %d invalid bytes at offset %d", segmentName(e.Seg), dropped, meta.DataBytes)
			}
			if meta.Records != e.Records || meta.DataBytes != e.DataBytes {
				prob("%s: holds %d records / %d bytes, manifest committed %d / %d",
					segmentName(e.Seg), meta.Records, meta.DataBytes, e.Records, e.DataBytes)
			}
			if root := acc.root(); root != e.Root {
				prob("%s: Merkle root mismatch", segmentName(e.Seg))
			}
			// Chain is re-derived from the manifest's roots (not the
			// recomputed one) so one damaged segment yields one root
			// problem, not a cascade down the rest of the run.
			if chainHash(prev, e.Root) != e.Chain {
				prob("%s: chain mismatch", segmentName(e.Seg))
			}
			prev = e.Chain
			verifyIndexFile(dir, e, meta, prob)

		case segOpen:
			if openSeen {
				prob("%s: second open segment in manifest", segmentName(e.Seg))
			}
			openSeen = true
			if m.finalized() {
				prob("%s: open segment in a finalized run", segmentName(e.Seg))
			}
			meta, dropped, serr := scanSegment(filepath.Join(dir, segmentName(e.Seg)), DefaultIndexEvery)
			if serr != nil {
				if errors.Is(serr, fs.ErrNotExist) {
					continue // claimed before creation; crash window
				}
				return rv, serr
			}
			rv.Segments++
			rv.Records += meta.Records
			rv.DataBytes += meta.DataBytes
			rv.TornTailBytes += dropped
		}
	}
	return rv, nil
}

// verifyIndexFile validates a sealed segment's sidecar against the
// rescanned metadata. The sidecar is a cache for reads (a bad one only
// degrades to a scan), but it is part of the store's bytes, so Verify
// holds it to the same standard: missing, unparseable, or disagreeing
// with the data is a problem.
func verifyIndexFile(dir string, e *manifestSeg, meta *segMeta, prob func(string, ...any)) {
	raw, err := os.ReadFile(filepath.Join(dir, indexName(e.Seg)))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			prob("%s: sidecar index missing", indexName(e.Seg))
		} else {
			prob("%s: %v", indexName(e.Seg), err)
		}
		return
	}
	im, err := unmarshalIndex(raw)
	if err != nil {
		prob("%s: %v", indexName(e.Seg), err)
		return
	}
	if im.DataBytes != meta.DataBytes || im.Records != meta.Records ||
		im.MinEndUS != meta.MinEndUS || im.MaxEndUS != meta.MaxEndUS {
		prob("%s: index disagrees with segment data", indexName(e.Seg))
	}
}

// InclusionProof proves one snapshot's membership in a sealed segment of
// a run: fold Leaf up Path to reproduce Root, then confirm Root is the
// ChainIndex-th link of the run's manifest chain. Produced by Prove,
// checked by its Verify method (and by any external verifier holding only
// the manifest).
type InclusionProof struct {
	Run     uint64
	Seq     int64 // run-wide record ordinal, 0-based, stable under retention
	Segment int
	Index   int   // leaf index within the segment
	Leaves  int64 // leaf count of the segment tree
	Leaf    [hashSize]byte
	Path    [][hashSize]byte
	Root    [hashSize]byte
	Chain   [hashSize]byte
	// Snapshot is the decoded record the proof covers.
	Snapshot Snapshot
}

// Verify re-folds the proof, reporting whether Leaf at Index is contained
// in the tree committing to Root.
func (p *InclusionProof) Verify() bool {
	return verifyInclusion(p.Leaf, p.Index, int(p.Leaves), p.Path, p.Root)
}

// Prove builds an inclusion proof for record seq of the selected run
// (run 0 = the sole run). seq counts records across the run's segments in
// append order, including expired ones — so a record's seq never changes
// as retention proceeds — but a seq landing in a tombstone is an error:
// the bytes are gone, only the segment root survives.
func Prove(dir string, run uint64, seq int64) (*InclusionProof, error) {
	mans, problems, err := loadManifests(dir)
	if err != nil {
		return nil, err
	}
	var m *manifest
	if run == 0 {
		if len(mans) != 1 || len(problems) > 0 {
			return nil, fmt.Errorf("%w (%d runs; pass a run ID)", ErrMultipleRuns, len(mans)+len(problems))
		}
		m = mans[0]
	} else {
		for _, c := range mans {
			if c.RunID == run {
				m = c
				break
			}
		}
		if m == nil {
			return nil, fmt.Errorf("store: unknown run %d", run)
		}
	}
	if seq < 0 {
		return nil, fmt.Errorf("store: negative record seq %d", seq)
	}
	var base int64
	for i := range m.Segments {
		e := &m.Segments[i]
		if e.State == segOpen {
			continue // not yet committed to the chain
		}
		if seq >= base+e.Records {
			base += e.Records
			continue
		}
		if e.State == segExpired {
			return nil, fmt.Errorf("store: record %d of run %d expired with %s (root retained in tombstone)",
				seq, m.RunID, segmentName(e.Seg))
		}
		return proveInSegment(dir, m, e, seq, seq-base)
	}
	return nil, fmt.Errorf("store: run %d has %d sealed records, seq %d out of range", m.RunID, base, seq)
}

// proveInSegment scans one sealed segment, collecting leaves and the
// target payload, and assembles the proof.
func proveInSegment(dir string, m *manifest, e *manifestSeg, seq, idx int64) (*InclusionProof, error) {
	leaves := make([][hashSize]byte, 0, e.Records)
	var payload []byte
	meta, dropped, err := scanSegmentFunc(filepath.Join(dir, segmentName(e.Seg)), DefaultIndexEvery, func(p []byte) {
		if int64(len(leaves)) == idx {
			payload = bytes.Clone(p)
		}
		leaves = append(leaves, leafHash(p))
	})
	if err != nil {
		return nil, err
	}
	if dropped > 0 || meta.Records != e.Records || payload == nil {
		return nil, &CorruptionError{Segment: e.Seg, Offset: meta.DataBytes,
			Detail: fmt.Sprintf("segment holds %d valid records, manifest committed %d", meta.Records, e.Records)}
	}
	if merkleRoot(leaves) != e.Root {
		return nil, &CorruptionError{Segment: e.Seg, Offset: segHeaderLen, Detail: "Merkle root mismatch"}
	}
	snap, err := decodeSnapshot(payload)
	if err != nil {
		return nil, err
	}
	p := &InclusionProof{
		Run:      m.RunID,
		Seq:      seq,
		Segment:  e.Seg,
		Index:    int(idx),
		Leaves:   e.Records,
		Leaf:     leaves[idx],
		Path:     merklePath(leaves, int(idx)),
		Root:     e.Root,
		Chain:    e.Chain,
		Snapshot: snap,
	}
	if !p.Verify() {
		return nil, fmt.Errorf("store: internal error: generated proof does not verify")
	}
	return p, nil
}
