package store

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
)

// Reader is a point-in-time view of a store directory: run manifests,
// segment lists and per-segment metadata are captured at OpenReader.
// Records appended after that (by a live Writer) are not visible; reopen
// to see them. A Reader is safe for concurrent use — each Scan/Replay
// cursor owns its file handles.
//
// A directory holds any number of runs (one per Writer Open), each
// described by its manifest. Scan, Replay and Prove take a run selector:
// 0 means "the sole run" and fails with ErrMultipleRuns when several are
// present; any other value names a run listed by Runs. Segments predating
// the manifest format are grouped as a synthetic legacy run with ID 0.
type Reader struct {
	dir              string
	runs             []readerRun
	manifestProblems []string
	indexFallbacks   int
}

type readerRun struct {
	info RunInfo
	man  *manifest // nil for the legacy group
	segs []readerSeg
}

type readerSeg struct {
	n       int
	path    string
	meta    *segMeta
	dropped int64
	// corrupt, when non-nil, is post-seal damage detected against the
	// manifest: reads serve the segment's valid prefix and then return it
	// — damage is reported, never silently skipped.
	corrupt error
}

// RunInfo describes one run in the directory.
type RunInfo struct {
	ID uint64
	// Legacy marks the synthetic group of segments predating run
	// manifests: readable, but with no manifest to verify against.
	Legacy bool
	// Finalized runs are immutable; Recovered ones were finalized by
	// crash recovery rather than a clean Close.
	Finalized bool
	Recovered bool
	// Wall-clock span of the recording (microseconds since the epoch).
	StartWallUS int64
	EndWallUS   int64
	// ParamsHash is the pipeline parameter-set hash recorded at Open
	// (zero if not recorded).
	ParamsHash [32]byte
	Retention  RetentionPolicy
	Sensors    []int
	// Segments and Records count live (readable) data; Tombstones counts
	// segments expired by retention, whose Merkle roots remain in the
	// manifest chain.
	Segments   int
	Tombstones int
	Records    int64
	DataBytes  int64
	// MinEndUS/MaxEndUS bound the live records' window end timestamps
	// (valid only when Records > 0).
	MinEndUS int64
	MaxEndUS int64
}

// Stats summarises what a Reader can see across all runs.
type Stats struct {
	Runs     int
	Segments int
	// Tombstones counts retention-expired segments across all runs.
	Tombstones int
	Records    int64
	// DataBytes counts valid record bytes including per-segment headers;
	// DroppedBytes counts invalid tail bytes ignored during recovery.
	DataBytes    int64
	DroppedBytes int64
	// MinEndUS/MaxEndUS bound the stored window end timestamps (valid only
	// when Records > 0).
	MinEndUS int64
	MaxEndUS int64
}

// OpenReader captures a consistent view of the store in dir. Sidecar
// indexes are used when present and valid; a corrupt or truncated index
// degrades to a full segment scan (correct results, counted by
// IndexFallbacks), never a wrong seek. Sealed segments are checked
// against their manifest entries: a size or record-count mismatch marks
// the segment corrupt, and reads of it serve the valid prefix before
// reporting a *CorruptionError.
func OpenReader(dir string) (*Reader, error) {
	mans, problems, err := loadManifests(dir)
	if err != nil {
		return nil, err
	}
	segsOnDisk, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	r := &Reader{dir: dir, manifestProblems: problems}
	claimed := make(map[int]bool)
	for _, m := range mans {
		run := readerRun{man: m}
		run.info = RunInfo{
			ID:          m.RunID,
			Finalized:   m.finalized(),
			Recovered:   m.recovered(),
			StartWallUS: m.StartWallUS,
			EndWallUS:   m.EndWallUS,
			ParamsHash:  m.ParamsHash,
			Retention:   m.Retention,
			Sensors:     append([]int(nil), m.Sensors...),
		}
		for i := range m.Segments {
			e := &m.Segments[i]
			claimed[e.Seg] = true
			switch e.State {
			case segExpired:
				run.info.Tombstones++
				continue
			case segSealed:
				seg, err := r.loadSealedSeg(e)
				if err != nil {
					return nil, err
				}
				run.addSeg(seg)
			case segOpen:
				// Unfinalized tail (live writer or not-yet-recovered
				// crash): the torn tail, if any, is recoverable and
				// tolerated, not corruption.
				meta, dropped, fellBack, err := loadSegMeta(dir, e.Seg, DefaultIndexEvery)
				if err != nil {
					if errors.Is(err, fs.ErrNotExist) {
						continue // claimed before creation; crash window
					}
					return nil, err
				}
				if fellBack {
					r.indexFallbacks++
				}
				run.addSeg(readerSeg{n: e.Seg, path: filepath.Join(dir, segmentName(e.Seg)), meta: meta, dropped: dropped})
			}
		}
		r.runs = append(r.runs, run)
	}
	// Segments no valid manifest claims form the legacy group (pre-manifest
	// stores, or segments stranded by an unparseable manifest).
	var legacy readerRun
	legacy.info = RunInfo{ID: 0, Legacy: true, Finalized: true}
	for _, n := range segsOnDisk {
		if claimed[n] {
			continue
		}
		meta, dropped, fellBack, err := loadSegMeta(dir, n, DefaultIndexEvery)
		if err != nil {
			return nil, err
		}
		if fellBack {
			r.indexFallbacks++
		}
		legacy.addSeg(readerSeg{n: n, path: filepath.Join(dir, segmentName(n)), meta: meta, dropped: dropped})
	}
	if len(legacy.segs) > 0 {
		sensors := make(map[int]struct{})
		for _, s := range legacy.segs {
			for id := range s.meta.Sensors {
				sensors[id] = struct{}{}
			}
		}
		for id := range sensors {
			legacy.info.Sensors = append(legacy.info.Sensors, id)
		}
		sort.Ints(legacy.info.Sensors)
		r.runs = append(r.runs, legacy)
	}
	sort.Slice(r.runs, func(i, j int) bool { return r.runs[i].info.ID < r.runs[j].info.ID })
	return r, nil
}

// addSeg appends seg to the run, folding it into the run's aggregates.
func (run *readerRun) addSeg(seg readerSeg) {
	run.segs = append(run.segs, seg)
	run.info.Segments++
	run.info.DataBytes += seg.meta.DataBytes
	if seg.meta.Records > 0 {
		if run.info.Records == 0 || seg.meta.MinEndUS < run.info.MinEndUS {
			run.info.MinEndUS = seg.meta.MinEndUS
		}
		if run.info.Records == 0 || seg.meta.MaxEndUS > run.info.MaxEndUS {
			run.info.MaxEndUS = seg.meta.MaxEndUS
		}
		run.info.Records += seg.meta.Records
	}
}

// loadSealedSeg loads a sealed segment's metadata and cross-checks it
// against the manifest entry — the CRC-protected, chain-committed
// authority on what the segment must hold.
func (r *Reader) loadSealedSeg(e *manifestSeg) (readerSeg, error) {
	seg := readerSeg{n: e.Seg, path: filepath.Join(r.dir, segmentName(e.Seg))}
	if _, err := os.Stat(filepath.Join(r.dir, indexName(e.Seg))); errors.Is(err, fs.ErrNotExist) {
		// A sealed segment's sidecar should exist; scanning instead is the
		// degraded path.
		r.indexFallbacks++
	}
	meta, dropped, fellBack, err := loadSegMeta(r.dir, e.Seg, DefaultIndexEvery)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			seg.meta = newSegMeta()
			seg.meta.DataBytes = 0
			seg.corrupt = &CorruptionError{Segment: e.Seg, Offset: 0, Detail: "sealed segment file missing"}
			return seg, nil
		}
		return seg, err
	}
	if fellBack {
		r.indexFallbacks++
	}
	seg.meta, seg.dropped = meta, dropped
	switch {
	case dropped > 0:
		seg.corrupt = &CorruptionError{Segment: e.Seg, Offset: meta.DataBytes,
			Detail: fmt.Sprintf("%d invalid bytes in sealed segment", dropped)}
	case meta.DataBytes != e.DataBytes || meta.Records != e.Records:
		off := meta.DataBytes
		if e.DataBytes < off {
			off = e.DataBytes
		}
		seg.corrupt = &CorruptionError{Segment: e.Seg, Offset: off,
			Detail: fmt.Sprintf("sealed segment holds %d records / %d bytes, manifest committed %d / %d",
				meta.Records, meta.DataBytes, e.Records, e.DataBytes)}
	}
	return seg, nil
}

// Runs lists the directory's runs, ascending by ID (the legacy group, if
// any, is ID 0 and sorts first).
func (r *Reader) Runs() []RunInfo {
	out := make([]RunInfo, len(r.runs))
	for i := range r.runs {
		out[i] = r.runs[i].info
	}
	return out
}

// IndexFallbacks reports how many segments had to be fully scanned
// because their sidecar index was missing (sealed segments), corrupt or
// truncated — the degraded-but-correct path.
func (r *Reader) IndexFallbacks() int { return r.indexFallbacks }

// ManifestProblems lists run manifests that failed to parse (their
// segments appear under the legacy group).
func (r *Reader) ManifestProblems() []string { return r.manifestProblems }

// Stats aggregates the per-segment metadata across all runs.
func (r *Reader) Stats() Stats {
	var st Stats
	st.Runs = len(r.runs)
	for _, run := range r.runs {
		st.Tombstones += run.info.Tombstones
		for _, s := range run.segs {
			st.Segments++
			st.DataBytes += s.meta.DataBytes
			st.DroppedBytes += s.dropped
			if s.meta.Records == 0 {
				continue
			}
			if st.Records == 0 || s.meta.MinEndUS < st.MinEndUS {
				st.MinEndUS = s.meta.MinEndUS
			}
			if st.Records == 0 || s.meta.MaxEndUS > st.MaxEndUS {
				st.MaxEndUS = s.meta.MaxEndUS
			}
			st.Records += s.meta.Records
		}
	}
	return st
}

// Sensors returns every sensor id with at least one stored record in any
// run, ascending.
func (r *Reader) Sensors() []int {
	set := make(map[int]struct{})
	for _, run := range r.runs {
		for _, s := range run.segs {
			for id := range s.meta.Sensors {
				set[id] = struct{}{}
			}
		}
	}
	out := make([]int, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// selectRun resolves a run selector. 0 selects the directory's sole run
// (nil segs on an empty store) and returns ErrMultipleRuns when several
// are present; anything else must match a listed run ID.
func (r *Reader) selectRun(id uint64) (*readerRun, error) {
	if id == 0 {
		switch len(r.runs) {
		case 0:
			return nil, nil
		case 1:
			return &r.runs[0], nil
		default:
			return nil, fmt.Errorf("%w (%d runs; pass a run ID from Runs)", ErrMultipleRuns, len(r.runs))
		}
	}
	for i := range r.runs {
		if r.runs[i].info.ID == id && !r.runs[i].info.Legacy {
			return &r.runs[i], nil
		}
	}
	return nil, fmt.Errorf("store: unknown run %d", id)
}

// Scan returns an iterator over one run's snapshots for sensor whose
// windows overlap [t0, t1) — i.e. StartUS < t1 && EndUS > t0 — in append
// order, which is frame order for a stream recorded through the pipeline
// Runner. run 0 selects the sole run (ErrMultipleRuns otherwise); use
// t0 = 0, t1 = math.MaxInt64 for an unbounded scan.
func (r *Reader) Scan(run uint64, sensor int, t0, t1 int64) (*Cursor, error) {
	rr, err := r.selectRun(run)
	if err != nil {
		return nil, err
	}
	c := &Cursor{sensor: sensor, t0: t0, t1: t1}
	var segs []readerSeg
	if rr != nil {
		segs = rr.segs
	}
	c.stream = segStream{segs: segs, t0: t0, match: c.segMayMatch}
	return c, nil
}

// Cursor streams one sensor's matching snapshots (see Reader.Scan). The
// sparse index lets it skip whole segments the sensor or time range never
// touches and seek past cold prefixes inside each segment.
type Cursor struct {
	sensor int
	t0, t1 int64
	stream segStream
	done   bool
}

// segMayMatch reports whether a segment can hold a matching record. Only
// the lower time bound prunes here: EndUS <= t0 can never overlap, but a
// record ending after t1 may still start before it.
func (c *Cursor) segMayMatch(s readerSeg) bool {
	if s.meta.Records == 0 || s.meta.MaxEndUS <= c.t0 {
		return false
	}
	if c.sensor >= 0 {
		if _, ok := s.meta.Sensors[c.sensor]; !ok {
			return false
		}
	}
	return true
}

// Next returns the next matching snapshot, or io.EOF when the scan is
// exhausted. A crash's torn tail never reaches Next — it is excluded from
// the validated region at OpenReader — so a record failing validation
// here means real post-seal damage (e.g. a bit flip under a sidecar index
// that still matches the file size) and is reported as a *CorruptionError
// naming the segment and offset, after the valid prefix has been served.
// Run Verify to audit the whole store.
func (c *Cursor) Next() (Snapshot, error) {
	if c.done {
		return Snapshot{}, io.EOF
	}
	for {
		payload, err := c.stream.next()
		if err != nil {
			c.done = true
			c.stream.close()
			return Snapshot{}, err
		}
		// Filter on the cheap peeked fields; only matching records pay
		// for the full decode (name and box allocations).
		sensor, startUS, endUS, err := peekMeta(payload)
		if err != nil {
			c.done = true
			c.stream.close()
			return Snapshot{}, err
		}
		if (c.sensor >= 0 && sensor != c.sensor) || startUS >= c.t1 || endUS <= c.t0 {
			continue
		}
		snap, err := decodeSnapshot(payload)
		if err != nil {
			c.done = true
			c.stream.close()
			return Snapshot{}, err
		}
		return snap, nil
	}
}

// Close releases the cursor's file handle. Safe to call repeatedly.
func (c *Cursor) Close() error {
	c.done = true
	c.stream.close()
	return nil
}

// errSegmentEnd marks the end of one segment's valid region inside
// segStream; next consumes it and moves to the following segment.
var errSegmentEnd = errors.New("store: segment end")

// segStream sequentially streams checksum-verified record payloads from a
// run's segment chain: segments rejected by match are skipped, cold
// prefixes are seeked past via the sparse index, and each surviving byte
// is read exactly once. It is the shared low-level reader under both the
// per-sensor Cursor and the replay merge; the counters feed ReplayStats.
type segStream struct {
	segs  []readerSeg
	t0    int64
	match func(readerSeg) bool

	segIdx    int // next segment to open
	cur       readerSeg
	f         *os.File
	br        *bufio.Reader
	off       int64 // file offset of the next unread byte
	remaining int64 // valid data bytes left in the open segment
	payload   []byte
	opened    int64
	bytesRead int64
}

// next returns the next record payload in chain order, or io.EOF when the
// chain is exhausted. The slice is the stream's scratch buffer, valid
// until the following call.
func (s *segStream) next() ([]byte, error) {
	for {
		if s.f == nil {
			ok, err := s.openNextSegment()
			if err != nil {
				return nil, err
			}
			if !ok {
				return nil, io.EOF
			}
		}
		payload, err := s.readRecord()
		if err == errSegmentEnd {
			// Valid prefix fully served; report any post-seal damage the
			// Reader detected before moving on.
			corrupt := s.cur.corrupt
			s.close()
			if corrupt != nil {
				return nil, corrupt
			}
			continue
		}
		return payload, err
	}
}

// openNextSegment advances to the next candidate segment and seeks past
// records the index proves cannot match. Returns false when none remain.
// A segment deleted since OpenReader captured the view is skipped (the
// view is best-effort under concurrent retention); any other I/O failure
// — permissions, disk errors — is surfaced rather than silently dropping
// a whole segment from the results.
func (s *segStream) openNextSegment() (bool, error) {
	for s.segIdx < len(s.segs) {
		seg := s.segs[s.segIdx]
		s.segIdx++
		if !s.match(seg) {
			continue
		}
		f, err := os.Open(seg.path)
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				if seg.corrupt != nil {
					return false, seg.corrupt
				}
				continue
			}
			return false, fmt.Errorf("store: %w", err)
		}
		off := seg.meta.seekOffset(s.t0)
		if _, err := f.Seek(off, 0); err != nil {
			f.Close()
			return false, fmt.Errorf("store: seek %s: %w", seg.path, err)
		}
		s.cur = seg
		s.f = f
		s.br = bufio.NewReaderSize(f, 1<<16)
		s.off = off
		s.remaining = seg.meta.DataBytes - off
		s.opened++
		return true, nil
	}
	return false, nil
}

// readRecord reads one framed record's checksum-verified payload from the
// open segment, returning errSegmentEnd at the end of its valid region.
// Validation failures inside the region are typed with the segment and
// the offending record's file offset.
func (s *segStream) readRecord() ([]byte, error) {
	if s.remaining < frameLen {
		return nil, errSegmentEnd
	}
	var frame [frameLen]byte
	if _, err := io.ReadFull(s.br, frame[:]); err != nil {
		return nil, fmt.Errorf("store: read: %w", err)
	}
	n := int64(le.Uint32(frame[0:4]))
	sum := le.Uint32(frame[4:8])
	if n > maxRecordBytes || frameLen+n > s.remaining {
		return nil, &CorruptionError{Segment: s.cur.n, Offset: s.off,
			Detail: fmt.Sprintf("frame length %d exceeds segment bounds", n)}
	}
	if int64(cap(s.payload)) < n {
		s.payload = make([]byte, n)
	}
	s.payload = s.payload[:n]
	if _, err := io.ReadFull(s.br, s.payload); err != nil {
		return nil, fmt.Errorf("store: read: %w", err)
	}
	if payloadCRC(s.payload) != sum {
		return nil, &CorruptionError{Segment: s.cur.n, Offset: s.off, Detail: "record checksum mismatch"}
	}
	s.off += frameLen + n
	s.remaining -= frameLen + n
	s.bytesRead += frameLen + n
	return s.payload, nil
}

func (s *segStream) close() {
	if s.f != nil {
		s.f.Close()
		s.f, s.br = nil, nil
	}
}

// Replay returns an iterator merging the given sensors' snapshots from
// one run in (EndUS, Sensor, Frame) order across all its segments — the
// canonical replay order: globally non-decreasing in time, per-sensor in
// frame order, and deterministic for any on-disk interleaving. run 0
// selects the sole run and fails with ErrMultipleRuns when the directory
// holds several — interleaving runs into one timeline would be garbage,
// since each run restarts the frame clock. A nil or empty sensor list
// replays every sensor in the run.
//
// The merge is single-pass: every shared segment is opened and read
// exactly once, with records demultiplexed into per-sensor queues as they
// stream by — a k-sensor replay used to run k sequential cursors over the
// same segments (k x read amplification); now it holds one file handle
// and reads each byte once (ReplayStats exposes the counters). The queues
// buffer only the on-disk interleaving skew between sensors, which the
// recording Runner bounds by its fan-in queue depth; replaying a store
// whose sensors were written in long disjoint stretches trades that
// memory for the eliminated re-reads.
func (r *Reader) Replay(run uint64, sensors []int, t0, t1 int64) (Iterator, error) {
	rr, err := r.selectRun(run)
	if err != nil {
		return nil, err
	}
	var segs []readerSeg
	var runSensors []int
	if rr != nil {
		segs = rr.segs
		runSensors = rr.info.Sensors
	}
	if len(sensors) == 0 {
		sensors = runSensors
	}
	m := &sharedMergeIterator{segs: segs, t0: t0, t1: t1, want: make(map[int]int, len(sensors)), pendingSeg: -1}
	m.stream = segStream{segs: segs, t0: t0, match: m.segMayMatch}
	for _, id := range sensors {
		if id < 0 {
			return nil, fmt.Errorf("store: negative sensor id %d", id)
		}
		if _, dup := m.want[id]; dup {
			continue
		}
		m.want[id] = len(m.queues)
		m.queues = append(m.queues, sensorQueue{sensor: id, pending: true})
	}
	return m, nil
}

// ReplayStats counts a replay's segment I/O, making read amplification
// observable: a single-pass merge opens each matching segment once, so
// SegmentsOpened stays at the run's segment count no matter how many
// sensors merge, and BytesRead stays at the run's data size.
type ReplayStats struct {
	SegmentsOpened int64
	BytesRead      int64
	// Records counts every record streamed past the demultiplexer,
	// matching or not; Buffered is the high-water mark of snapshots queued
	// across all sensors (the interleaving skew the merge absorbed).
	Records  int64
	Buffered int
}

// sensorQueue is one sensor's FIFO of decoded snapshots awaiting merge.
type sensorQueue struct {
	sensor int
	buf    []Snapshot
	head   int
	// lastEndUS/lastFrame track the most recently enqueued snapshot's
	// clock, for the per-sensor monotonicity check and the empty-queue
	// merge bound; valid when primed.
	lastEndUS int64
	lastFrame int
	primed    bool
	// pending means not-yet-consumed segments may still hold this sensor's
	// records (per the segment metadata); once false it stays false, and
	// an empty non-pending queue no longer blocks the merge — this is what
	// keeps buffering bounded when a sensor drops out mid-store.
	pending bool
}

func (q *sensorQueue) empty() bool { return q.head >= len(q.buf) }

// pushSlot appends a zero snapshot and returns a pointer to it, so the
// decoder can fill it in place without an intermediate struct copy.
func (q *sensorQueue) pushSlot() *Snapshot {
	// Compact the consumed prefix once it dominates the buffer, keeping
	// the queue allocation-stable over long replays.
	if q.head > 32 && q.head*2 >= len(q.buf) {
		n := copy(q.buf, q.buf[q.head:])
		q.buf = q.buf[:n]
		q.head = 0
	}
	q.buf = append(q.buf, Snapshot{})
	return &q.buf[len(q.buf)-1]
}

func (q *sensorQueue) unpush() { q.buf = q.buf[:len(q.buf)-1] }

func (q *sensorQueue) peek() *Snapshot { return &q.buf[q.head] }

func (q *sensorQueue) pop() Snapshot {
	s := q.buf[q.head]
	q.head++
	return s
}

// sharedMergeIterator implements the single-pass k-way merge: one
// sequential reader over the run's segment chain feeds per-sensor queues,
// and Next pops the (EndUS, Sensor, Frame)-minimal head once every sensor
// that could still produce a smaller record has one buffered. Correctness
// of the merge rests on each sensor's records being strictly increasing
// in (EndUS, Frame) on disk — true within a single run, where a sensor's
// frame clock only moves forward (run selection happens up front; see
// ErrMultipleRuns). A regression inside one run means disordered or
// damaged segments, so the demultiplexer still detects it and fails
// loudly instead of emitting a garbled timeline.
type sharedMergeIterator struct {
	segs   []readerSeg
	t0, t1 int64
	want   map[int]int // sensor id -> queue index
	queues []sensorQueue
	stream segStream
	// dec amortizes decode allocations: the merge decodes every matching
	// record in the run, so per-record name and box allocations would
	// dominate the replay.
	dec       snapDecoder
	exhausted bool // every segment fully consumed
	failed    bool
	// pendingSeg memoizes refreshPending on the stream's segment position.
	pendingSeg int
	stats      ReplayStats
}

// segMayMatch reports whether a segment can hold any record this replay
// wants.
func (m *sharedMergeIterator) segMayMatch(s readerSeg) bool {
	if s.meta.Records == 0 || s.meta.MaxEndUS <= m.t0 {
		return false
	}
	for id := range m.want {
		if _, ok := s.meta.Sensors[id]; ok {
			return true
		}
	}
	return false
}

// Next implements Iterator.
func (m *sharedMergeIterator) Next() (Snapshot, error) {
	if m.failed {
		return Snapshot{}, io.EOF
	}
	for {
		best := -1
		for i := range m.queues {
			if m.queues[i].empty() {
				continue
			}
			if best < 0 || snapLess(m.queues[i].peek(), m.queues[best].peek()) {
				best = i
			}
		}
		if best >= 0 && (m.exhausted || m.safeToPop(m.queues[best].peek())) {
			return m.queues[best].pop(), nil
		}
		if m.exhausted {
			return Snapshot{}, io.EOF
		}
		if err := m.fill(); err != nil {
			m.failed = true
			m.stream.close()
			return Snapshot{}, err
		}
	}
}

// safeToPop reports whether no record still on disk can sort before head.
// A non-empty queue needs no check (head is already the minimum buffered
// key, and that queue's future records sort after its own head). An empty
// queue with no pending segments can produce nothing more and never
// blocks. An empty pending queue bounds its future records from below by
// its last streamed snapshot — per-sensor monotonicity guarantees the
// next one is strictly later in (EndUS, Frame) — so head is safe when it
// sorts before that bound. An empty pending queue whose sensor has not
// been seen yet gives no bound at all: its first record could carry any
// timestamp, so the merge must keep streaming before it can emit
// anything.
func (m *sharedMergeIterator) safeToPop(head *Snapshot) bool {
	m.refreshPending()
	for i := range m.queues {
		q := &m.queues[i]
		if !q.empty() || !q.pending {
			continue
		}
		if !q.primed {
			return false
		}
		// The queue's next record sorts at or after (lastEndUS, its
		// sensor, lastFrame+1); head must sort strictly before that. On a
		// time tie the order falls to the sensor id (head's sensor cannot
		// equal the empty queue's — head would be its own record).
		if head.EndUS > q.lastEndUS || (head.EndUS == q.lastEndUS && head.Sensor > q.sensor) {
			return false
		}
	}
	return true
}

// refreshPending recomputes, per queue, whether any not-yet-consumed
// segment can still hold its sensor's records, using the segment metadata
// already captured at OpenReader. Memoized on the stream's segment
// position, so the scan runs once per segment advance. The range
// conservatively includes the most recently opened segment (it may still
// be mid-read).
func (m *sharedMergeIterator) refreshPending() {
	if m.pendingSeg == m.stream.segIdx {
		return
	}
	m.pendingSeg = m.stream.segIdx
	from := m.stream.segIdx - 1
	if from < 0 {
		from = 0
	}
	remaining := m.segs[from:]
	for i := range m.queues {
		q := &m.queues[i]
		if !q.pending {
			continue
		}
		q.pending = false
		for _, seg := range remaining {
			if seg.meta.MaxEndUS <= m.t0 || seg.meta.Records == 0 {
				continue
			}
			if _, ok := seg.meta.Sensors[q.sensor]; ok {
				q.pending = true
				break
			}
		}
	}
}

// fill streams records from the segment chain until one matching snapshot
// is enqueued or the chain is exhausted.
func (m *sharedMergeIterator) fill() error {
	for {
		payload, err := m.stream.next()
		if err == io.EOF {
			m.exhausted = true
			return nil
		}
		if err != nil {
			return err
		}
		m.stats.Records++
		// Filter on the cheap peeked fields; only matching records pay
		// for the full decode (name and box allocations).
		sensor, startUS, endUS, err := peekMeta(payload)
		if err != nil {
			return err
		}
		qi, wanted := m.want[sensor]
		if !wanted || startUS >= m.t1 || endUS <= m.t0 {
			continue
		}
		q := &m.queues[qi]
		slot := q.pushSlot()
		if err := decodeSnapshotInto(slot, payload, &m.dec); err != nil {
			q.unpush()
			return err
		}
		if q.primed && (slot.EndUS < q.lastEndUS || (slot.EndUS == q.lastEndUS && slot.Frame <= q.lastFrame)) {
			err := fmt.Errorf("store: sensor %d timestamps regress at frame %d (end %d us after %d us): segments disordered or damaged within the run",
				slot.Sensor, slot.Frame, slot.EndUS, q.lastEndUS)
			q.unpush()
			return err
		}
		q.lastEndUS, q.lastFrame, q.primed = slot.EndUS, slot.Frame, true
		if buffered := m.buffered(); buffered > m.stats.Buffered {
			m.stats.Buffered = buffered
		}
		return nil
	}
}

func (m *sharedMergeIterator) buffered() int {
	n := 0
	for i := range m.queues {
		n += len(m.queues[i].buf) - m.queues[i].head
	}
	return n
}

// Stats returns the replay's I/O counters so far. Useful after draining
// the iterator to verify read amplification (each shared segment read
// once).
func (m *sharedMergeIterator) Stats() ReplayStats {
	st := m.stats
	st.SegmentsOpened = m.stream.opened
	st.BytesRead = m.stream.bytesRead
	return st
}

// snapLess orders snapshots by (EndUS, Sensor, Frame).
func snapLess(a, b *Snapshot) bool {
	if a.EndUS != b.EndUS {
		return a.EndUS < b.EndUS
	}
	if a.Sensor != b.Sensor {
		return a.Sensor < b.Sensor
	}
	return a.Frame < b.Frame
}

// Close implements Iterator.
func (m *sharedMergeIterator) Close() error {
	m.failed = true
	m.exhausted = true
	m.stream.close()
	return nil
}
