package store

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
)

// Reader is a point-in-time view of a store directory: the segment list
// and per-segment metadata are captured at OpenReader. Records appended
// after that (by a live Writer) are not visible; reopen to see them. A
// Reader is safe for concurrent use — each Scan/Replay cursor owns its
// file handles.
type Reader struct {
	dir  string
	segs []readerSeg
}

type readerSeg struct {
	n       int
	path    string
	meta    *segMeta
	dropped int64
}

// Stats summarises what a Reader can see.
type Stats struct {
	Segments int
	Records  int64
	// DataBytes counts valid record bytes including per-segment headers;
	// DroppedBytes counts invalid tail bytes ignored during recovery.
	DataBytes    int64
	DroppedBytes int64
	// MinEndUS/MaxEndUS bound the stored window end timestamps (valid only
	// when Records > 0).
	MinEndUS int64
	MaxEndUS int64
}

// OpenReader captures a consistent view of the store in dir. Sidecar
// indexes are used when present and valid; otherwise segments are scanned
// and a torn or corrupt tail is ignored (see Stats.DroppedBytes).
func OpenReader(dir string) (*Reader, error) {
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	r := &Reader{dir: dir}
	for _, n := range segs {
		meta, dropped, err := loadSegMeta(dir, n, DefaultIndexEvery)
		if err != nil {
			return nil, err
		}
		r.segs = append(r.segs, readerSeg{
			n:       n,
			path:    filepath.Join(dir, segmentName(n)),
			meta:    meta,
			dropped: dropped,
		})
	}
	return r, nil
}

// Stats aggregates the per-segment metadata.
func (r *Reader) Stats() Stats {
	var st Stats
	st.Segments = len(r.segs)
	for _, s := range r.segs {
		st.DataBytes += s.meta.DataBytes
		st.DroppedBytes += s.dropped
		if s.meta.Records == 0 {
			continue
		}
		if st.Records == 0 || s.meta.MinEndUS < st.MinEndUS {
			st.MinEndUS = s.meta.MinEndUS
		}
		if st.Records == 0 || s.meta.MaxEndUS > st.MaxEndUS {
			st.MaxEndUS = s.meta.MaxEndUS
		}
		st.Records += s.meta.Records
	}
	return st
}

// Sensors returns every sensor id with at least one stored record,
// ascending.
func (r *Reader) Sensors() []int {
	set := make(map[int]struct{})
	for _, s := range r.segs {
		for id := range s.meta.Sensors {
			set[id] = struct{}{}
		}
	}
	out := make([]int, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// Scan returns an iterator over sensor's snapshots whose windows overlap
// [t0, t1) — i.e. StartUS < t1 && EndUS > t0 — in append order, which is
// frame order for a stream recorded through the pipeline Runner. Use
// t0 = 0, t1 = math.MaxInt64 for an unbounded scan.
func (r *Reader) Scan(sensor int, t0, t1 int64) *Cursor {
	return &Cursor{r: r, sensor: sensor, t0: t0, t1: t1}
}

// Cursor streams one sensor's matching snapshots (see Reader.Scan). The
// sparse index lets it skip whole segments the sensor or time range never
// touches and seek past cold prefixes inside each segment.
type Cursor struct {
	r      *Reader
	sensor int
	t0, t1 int64

	segIdx    int // next segment to open
	f         *os.File
	br        *bufio.Reader
	remaining int64 // valid data bytes left in the open segment
	payload   []byte
	done      bool
}

// segMayMatch reports whether a segment can hold a matching record. Only
// the lower time bound prunes here: EndUS <= t0 can never overlap, but a
// record ending after t1 may still start before it.
func (c *Cursor) segMayMatch(s readerSeg) bool {
	if s.meta.Records == 0 || s.meta.MaxEndUS <= c.t0 {
		return false
	}
	if c.sensor >= 0 {
		if _, ok := s.meta.Sensors[c.sensor]; !ok {
			return false
		}
	}
	return true
}

// Next returns the next matching snapshot, or io.EOF when the scan is
// exhausted. A crash's torn tail never reaches Next — it is excluded from
// the validated region at OpenReader — so a record failing validation
// here means real post-seal damage (e.g. a bit flip under a sidecar index
// that still matches the file size) and is reported as ErrCorrupt rather
// than silently truncating the results. Run Verify to locate the damage;
// reopening the store for append truncates it only when it sits in the
// last segment.
func (c *Cursor) Next() (Snapshot, error) {
	if c.done {
		return Snapshot{}, io.EOF
	}
	for {
		if c.f == nil {
			ok, err := c.openNextSegment()
			if err != nil {
				c.done = true
				return Snapshot{}, err
			}
			if !ok {
				c.done = true
				return Snapshot{}, io.EOF
			}
		}
		payload, err := c.readRecord()
		if err == nil {
			// Filter on the cheap peeked fields; only matching records pay
			// for the full decode (name and box allocations).
			var sensor int
			var startUS, endUS int64
			sensor, startUS, endUS, err = peekMeta(payload)
			if err == nil {
				if (c.sensor >= 0 && sensor != c.sensor) || startUS >= c.t1 || endUS <= c.t0 {
					continue
				}
				var snap Snapshot
				snap, err = decodeSnapshot(payload)
				if err == nil {
					return snap, nil
				}
			}
		}
		if err == io.EOF {
			c.closeSegment()
			continue
		}
		c.done = true
		c.closeSegment()
		return Snapshot{}, err
	}
}

// openNextSegment advances to the next candidate segment and seeks past
// records the index proves cannot match. Returns false when none remain.
// A segment deleted since OpenReader captured the view is skipped (the
// view is best-effort under concurrent retention); any other I/O failure
// — permissions, disk errors — is surfaced rather than silently dropping
// a whole segment from the results.
func (c *Cursor) openNextSegment() (bool, error) {
	for c.segIdx < len(c.r.segs) {
		s := c.r.segs[c.segIdx]
		c.segIdx++
		if !c.segMayMatch(s) {
			continue
		}
		f, err := os.Open(s.path)
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				continue
			}
			return false, fmt.Errorf("store: %w", err)
		}
		off := s.meta.seekOffset(c.t0)
		if _, err := f.Seek(off, 0); err != nil {
			f.Close()
			return false, fmt.Errorf("store: seek %s: %w", s.path, err)
		}
		c.f = f
		c.br = bufio.NewReaderSize(f, 1<<16)
		c.remaining = s.meta.DataBytes - off
		return true, nil
	}
	return false, nil
}

// readRecord reads one framed record's checksum-verified payload from the
// open segment, returning io.EOF at the end of its valid region. The
// returned slice is the cursor's scratch buffer, valid until the next
// call.
func (c *Cursor) readRecord() ([]byte, error) {
	if c.remaining < frameLen {
		return nil, io.EOF
	}
	var frame [frameLen]byte
	if _, err := io.ReadFull(c.br, frame[:]); err != nil {
		return nil, fmt.Errorf("store: read: %w", err)
	}
	n := int64(le.Uint32(frame[0:4]))
	sum := le.Uint32(frame[4:8])
	if n > maxRecordBytes || frameLen+n > c.remaining {
		return nil, fmt.Errorf("%w: frame length %d exceeds segment bounds", ErrCorrupt, n)
	}
	if int64(cap(c.payload)) < n {
		c.payload = make([]byte, n)
	}
	c.payload = c.payload[:n]
	if _, err := io.ReadFull(c.br, c.payload); err != nil {
		return nil, fmt.Errorf("store: read: %w", err)
	}
	c.remaining -= frameLen + n
	if payloadCRC(c.payload) != sum {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return c.payload, nil
}

func (c *Cursor) closeSegment() {
	if c.f != nil {
		c.f.Close()
		c.f, c.br = nil, nil
	}
}

// Close releases the cursor's file handle. Safe to call repeatedly.
func (c *Cursor) Close() error {
	c.done = true
	c.closeSegment()
	return nil
}

// Replay returns an iterator merging the given sensors' snapshots in
// (EndUS, Sensor, Frame) order across all segments — the canonical replay
// order: globally non-decreasing in time, per-sensor in frame order, and
// deterministic for any on-disk interleaving. A nil or empty sensor list
// replays every sensor in the store. Each sensor contributes one
// sequential cursor, so a k-sensor replay holds k file handles.
func (r *Reader) Replay(sensors []int, t0, t1 int64) (Iterator, error) {
	if len(sensors) == 0 {
		sensors = r.Sensors()
	}
	seen := make(map[int]struct{}, len(sensors))
	m := &mergeIterator{}
	for _, id := range sensors {
		if id < 0 {
			m.Close()
			return nil, fmt.Errorf("store: negative sensor id %d", id)
		}
		if _, dup := seen[id]; dup {
			continue
		}
		seen[id] = struct{}{}
		m.cursors = append(m.cursors, r.Scan(id, t0, t1))
	}
	if err := m.prime(); err != nil {
		m.Close()
		return nil, err
	}
	return m, nil
}

// mergeIterator k-way merges per-sensor cursors. Correctness rests on
// each cursor yielding strictly increasing (EndUS, Frame) — true for a
// single recorded run, where a sensor's frame clock only moves forward.
// A store holding several appended runs breaks that precondition (each
// run restarts the clock), so advance detects the regression and fails
// loudly instead of interleaving snapshots from different runs into one
// timeline.
type mergeIterator struct {
	cursors []*Cursor
	heads   []Snapshot
	live    []bool
}

func (m *mergeIterator) prime() error {
	m.heads = make([]Snapshot, len(m.cursors))
	m.live = make([]bool, len(m.cursors))
	for i := range m.cursors {
		if err := m.advance(i); err != nil {
			return err
		}
	}
	return nil
}

func (m *mergeIterator) advance(i int) error {
	prev, hadPrev := m.heads[i], m.live[i]
	snap, err := m.cursors[i].Next()
	if err == io.EOF {
		m.live[i] = false
		return nil
	}
	if err != nil {
		return err
	}
	if hadPrev && (snap.EndUS < prev.EndUS || (snap.EndUS == prev.EndUS && snap.Frame <= prev.Frame)) {
		return fmt.Errorf("store: sensor %d timestamps regress at frame %d (end %d us after %d us): store holds multiple runs; replay requires one run per directory",
			snap.Sensor, snap.Frame, snap.EndUS, prev.EndUS)
	}
	m.heads[i], m.live[i] = snap, true
	return nil
}

// Next implements Iterator.
func (m *mergeIterator) Next() (Snapshot, error) {
	best := -1
	for i, ok := range m.live {
		if !ok {
			continue
		}
		if best < 0 || snapLess(m.heads[i], m.heads[best]) {
			best = i
		}
	}
	if best < 0 {
		return Snapshot{}, io.EOF
	}
	out := m.heads[best]
	if err := m.advance(best); err != nil {
		return Snapshot{}, err
	}
	return out, nil
}

// snapLess orders snapshots by (EndUS, Sensor, Frame).
func snapLess(a, b Snapshot) bool {
	if a.EndUS != b.EndUS {
		return a.EndUS < b.EndUS
	}
	if a.Sensor != b.Sensor {
		return a.Sensor < b.Sensor
	}
	return a.Frame < b.Frame
}

// Close implements Iterator.
func (m *mergeIterator) Close() error {
	for _, c := range m.cursors {
		if c != nil {
			c.Close()
		}
	}
	return nil
}

// VerifyReport summarises a full-store integrity check.
type VerifyReport struct {
	Segments int
	Records  int64
	// DataBytes counts validated bytes; DroppedBytes counts the invalid
	// tail bytes that recovery would discard. Problems lists one line per
	// affected segment.
	DataBytes    int64
	DroppedBytes int64
	Problems     []string
}

// Clean reports whether every byte in the store validated.
func (v VerifyReport) Clean() bool { return v.DroppedBytes == 0 }

// Verify rescans every segment from disk — ignoring sidecar indexes — and
// checks each record's framing, checksum and decodability. It never
// modifies the store.
func Verify(dir string) (VerifyReport, error) {
	var rep VerifyReport
	segs, err := listSegments(dir)
	if err != nil {
		return rep, err
	}
	rep.Segments = len(segs)
	for _, n := range segs {
		meta, dropped, err := scanSegment(filepath.Join(dir, segmentName(n)), DefaultIndexEvery)
		if err != nil {
			return rep, err
		}
		rep.Records += meta.Records
		rep.DataBytes += meta.DataBytes
		rep.DroppedBytes += dropped
		if dropped > 0 {
			rep.Problems = append(rep.Problems, fmt.Sprintf(
				"%s: %d valid records, %d invalid tail bytes", segmentName(n), meta.Records, dropped))
		}
	}
	return rep, nil
}
