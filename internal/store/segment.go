package store

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// listSegments returns the segment numbers present in dir, ascending.
func listSegments(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: list %s: %w", dir, err)
	}
	var segs []int
	for _, e := range entries {
		if n, ok := parseSegmentName(e.Name()); ok {
			segs = append(segs, n)
		}
	}
	sort.Ints(segs)
	return segs, nil
}

// scanSegment reads a segment data file front to back, validating every
// frame, and returns the rebuilt metadata plus the number of trailing
// bytes that failed validation (torn frame, bad CRC, undecodable payload —
// all treated as a crashed append). Scanning stops at the first invalid
// frame: meta covers exactly the valid prefix, meta.DataBytes marks where
// it ends, and dropped = fileSize - meta.DataBytes.
//
// A file too short or wrong-magic to hold a header yields an empty meta
// with DataBytes 0 (the whole file is the dropped tail); only I/O failures
// return an error.
func scanSegment(path string, indexEvery int) (meta *segMeta, dropped int64, err error) {
	return scanSegmentFunc(path, indexEvery, nil)
}

// scanSegmentFunc is scanSegment with a per-record hook: onRecord is
// invoked with each valid record's payload in order (valid until the next
// invocation), which is how crash recovery and Verify fold the segment's
// Merkle leaves while paying for a single pass.
func scanSegmentFunc(path string, indexEvery int, onRecord func(payload []byte)) (meta *segMeta, dropped int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, 0, fmt.Errorf("store: %w", err)
	}
	size := fi.Size()

	meta = newSegMeta()
	var hdr [segHeaderLen]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil || checkSegHeader(hdr[:]) != nil {
		if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
			return nil, 0, fmt.Errorf("store: %w", err)
		}
		meta.DataBytes = 0
		return meta, size, nil
	}

	br := bufio.NewReaderSize(f, 1<<16)
	off := int64(segHeaderLen)
	var frame [frameLen]byte
	var payload []byte
	for off < size {
		if size-off < frameLen {
			break
		}
		if _, err := io.ReadFull(br, frame[:]); err != nil {
			return nil, 0, fmt.Errorf("store: %w", err)
		}
		n := int64(le.Uint32(frame[0:4]))
		sum := le.Uint32(frame[4:8])
		if n > maxRecordBytes || off+frameLen+n > size {
			break
		}
		if int64(cap(payload)) < n {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(br, payload); err != nil {
			return nil, 0, fmt.Errorf("store: %w", err)
		}
		if payloadCRC(payload) != sum {
			break
		}
		snap, derr := decodeSnapshot(payload)
		if derr != nil {
			break
		}
		if onRecord != nil {
			onRecord(payload)
		}
		meta.note(snap, off, frameLen+n, indexEvery)
		off += frameLen + n
	}
	return meta, size - meta.DataBytes, nil
}

// loadSegMeta returns the metadata of segment n in dir, preferring the
// sidecar index and falling back to a full scan when the sidecar is
// missing, corrupt, version-skewed, or stale (its DataBytes no longer
// matches the data file size — e.g. the segment is still being appended
// to, or the sidecar survived a crash the data file did not). fellBack
// reports that a sidecar was present but unusable — a bit flip or
// truncation in the index degrades to a correct full scan, and the
// Reader surfaces the count so the degradation is observable.
func loadSegMeta(dir string, n int, indexEvery int) (meta *segMeta, dropped int64, fellBack bool, err error) {
	dataPath := filepath.Join(dir, segmentName(n))
	if raw, rerr := os.ReadFile(filepath.Join(dir, indexName(n))); rerr == nil {
		m, merr := unmarshalIndex(raw)
		if merr == nil {
			if fi, serr := os.Stat(dataPath); serr == nil && fi.Size() == m.DataBytes {
				return m, 0, false, nil
			}
			// Stale (size mismatch): the data file moved on without the
			// sidecar — normal for a segment still being appended to, so
			// not counted as a fallback.
			meta, dropped, err = scanSegment(dataPath, indexEvery)
			return meta, dropped, false, err
		}
		meta, dropped, err = scanSegment(dataPath, indexEvery)
		return meta, dropped, true, err
	}
	meta, dropped, err = scanSegment(dataPath, indexEvery)
	return meta, dropped, false, err
}

// writeIndexFile persists meta as segment n's sidecar index and fsyncs it.
// The sidecar is a cache: failure to write it is reported but readers
// survive without it.
func writeIndexFile(dir string, n int, meta *segMeta) error {
	path := filepath.Join(dir, indexName(n))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := f.Write(marshalIndex(meta)); err != nil {
		f.Close()
		return fmt.Errorf("store: write index %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: sync index %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: close index %s: %w", path, err)
	}
	return nil
}

// syncDir fsyncs a directory so freshly created files survive a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: sync dir %s: %w", dir, err)
	}
	return nil
}
