package geometry

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBoxBasics(t *testing.T) {
	tests := []struct {
		name      string
		box       Box
		wantArea  int
		wantEmpty bool
	}{
		{"unit", NewBox(0, 0, 1, 1), 1, false},
		{"rect", NewBox(3, 4, 10, 5), 50, false},
		{"zero width", NewBox(1, 1, 0, 5), 0, true},
		{"zero height", NewBox(1, 1, 5, 0), 0, true},
		{"negative", NewBox(1, 1, -3, 5), 0, true},
		{"zero value", Box{}, 0, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.box.Area(); got != tt.wantArea {
				t.Errorf("Area() = %d, want %d", got, tt.wantArea)
			}
			if got := tt.box.Empty(); got != tt.wantEmpty {
				t.Errorf("Empty() = %v, want %v", got, tt.wantEmpty)
			}
		})
	}
}

func TestBoxFromCorners(t *testing.T) {
	tests := []struct {
		name           string
		x0, y0, x1, y1 int
		want           Box
	}{
		{"ordered", 1, 2, 4, 6, Box{1, 2, 3, 4}},
		{"swapped x", 4, 2, 1, 6, Box{1, 2, 3, 4}},
		{"swapped y", 1, 6, 4, 2, Box{1, 2, 3, 4}},
		{"swapped both", 4, 6, 1, 2, Box{1, 2, 3, 4}},
		{"degenerate", 2, 2, 2, 2, Box{2, 2, 0, 0}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := BoxFromCorners(tt.x0, tt.y0, tt.x1, tt.y1); got != tt.want {
				t.Errorf("BoxFromCorners = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestIntersect(t *testing.T) {
	tests := []struct {
		name string
		a, b Box
		want Box
	}{
		{"identical", NewBox(0, 0, 4, 4), NewBox(0, 0, 4, 4), NewBox(0, 0, 4, 4)},
		{"partial", NewBox(0, 0, 4, 4), NewBox(2, 2, 4, 4), NewBox(2, 2, 2, 2)},
		{"disjoint", NewBox(0, 0, 2, 2), NewBox(5, 5, 2, 2), Box{}},
		{"touching edges", NewBox(0, 0, 2, 2), NewBox(2, 0, 2, 2), Box{}},
		{"contained", NewBox(0, 0, 10, 10), NewBox(3, 3, 2, 2), NewBox(3, 3, 2, 2)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Intersect(tt.b); got != tt.want {
				t.Errorf("Intersect = %v, want %v", got, tt.want)
			}
			// Intersection must be symmetric.
			if got := tt.b.Intersect(tt.a); got != tt.want {
				t.Errorf("Intersect (swapped) = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestUnion(t *testing.T) {
	tests := []struct {
		name string
		a, b Box
		want Box
	}{
		{"identical", NewBox(0, 0, 4, 4), NewBox(0, 0, 4, 4), NewBox(0, 0, 4, 4)},
		{"disjoint", NewBox(0, 0, 2, 2), NewBox(4, 4, 2, 2), NewBox(0, 0, 6, 6)},
		{"a empty", Box{}, NewBox(4, 4, 2, 2), NewBox(4, 4, 2, 2)},
		{"b empty", NewBox(4, 4, 2, 2), Box{}, NewBox(4, 4, 2, 2)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Union(tt.b); got != tt.want {
				t.Errorf("Union = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestIoU(t *testing.T) {
	tests := []struct {
		name string
		a, b Box
		want float64
	}{
		{"identical", NewBox(0, 0, 10, 10), NewBox(0, 0, 10, 10), 1.0},
		{"disjoint", NewBox(0, 0, 2, 2), NewBox(10, 10, 2, 2), 0.0},
		{"half shift", NewBox(0, 0, 10, 10), NewBox(5, 0, 10, 10), 50.0 / 150.0},
		{"quarter", NewBox(0, 0, 4, 4), NewBox(2, 2, 4, 4), 4.0 / 28.0},
		{"empty vs empty", Box{}, Box{}, 0.0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.IoU(tt.b); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("IoU = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestOverlapFraction(t *testing.T) {
	a := NewBox(0, 0, 10, 10)
	b := NewBox(5, 0, 10, 10)
	if got := a.OverlapFraction(b); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("OverlapFraction = %v, want 0.5", got)
	}
	small := NewBox(0, 0, 2, 2)
	if got := small.OverlapFraction(a); got != 1.0 {
		t.Errorf("contained OverlapFraction = %v, want 1", got)
	}
	if got := (Box{}).OverlapFraction(a); got != 0 {
		t.Errorf("empty OverlapFraction = %v, want 0", got)
	}
}

func TestContains(t *testing.T) {
	b := NewBox(2, 3, 4, 5)
	cases := []struct {
		x, y int
		want bool
	}{
		{2, 3, true},  // bottom-left corner inclusive
		{5, 7, true},  // top-right interior
		{6, 3, false}, // right edge exclusive
		{2, 8, false}, // top edge exclusive
		{1, 3, false}, // left of box
		{2, 2, false}, // below box
	}
	for _, c := range cases {
		if got := b.Contains(c.x, c.y); got != c.want {
			t.Errorf("Contains(%d,%d) = %v, want %v", c.x, c.y, got, c.want)
		}
	}
}

func TestContainsBox(t *testing.T) {
	outer := NewBox(0, 0, 10, 10)
	if !outer.ContainsBox(NewBox(2, 2, 3, 3)) {
		t.Error("inner box should be contained")
	}
	if !outer.ContainsBox(outer) {
		t.Error("box should contain itself")
	}
	if outer.ContainsBox(NewBox(8, 8, 5, 5)) {
		t.Error("overhanging box should not be contained")
	}
	if !outer.ContainsBox(Box{}) {
		t.Error("empty box is contained by everything")
	}
}

func TestExpandClamp(t *testing.T) {
	b := NewBox(5, 5, 4, 4)
	if got := b.Expand(2); got != NewBox(3, 3, 8, 8) {
		t.Errorf("Expand(2) = %v", got)
	}
	if got := b.Expand(-3); got.W != 0 || got.H != 0 {
		t.Errorf("over-shrunk box should be empty, got %v", got)
	}
	bounds := NewBox(0, 0, 8, 8)
	if got := b.Clamp(bounds); got != NewBox(5, 5, 3, 3) {
		t.Errorf("Clamp = %v", got)
	}
}

func TestCenter(t *testing.T) {
	b := NewBox(0, 0, 10, 20)
	cx, cy := b.Center()
	if cx != 5 || cy != 10 {
		t.Errorf("Center = (%v,%v), want (5,10)", cx, cy)
	}
}

func TestFBoxRoundTrip(t *testing.T) {
	b := NewBox(3, -2, 17, 9)
	if got := FBoxFrom(b).Round(); got != b {
		t.Errorf("FBox round trip = %v, want %v", got, b)
	}
}

func TestFBoxIoU(t *testing.T) {
	a := FBox{0, 0, 10, 10}
	b := FBox{5, 0, 10, 10}
	want := 50.0 / 150.0
	if got := a.IoU(b); math.Abs(got-want) > 1e-12 {
		t.Errorf("FBox IoU = %v, want %v", got, want)
	}
	if got := a.IoU(FBox{20, 20, 1, 1}); got != 0 {
		t.Errorf("disjoint FBox IoU = %v, want 0", got)
	}
}

// clampGen maps arbitrary ints into a small coordinate range so random boxes
// overlap often enough to exercise the interesting code paths.
func clampGen(v, lo, hi int) int {
	if hi <= lo {
		return lo
	}
	m := (hi - lo + 1)
	r := v % m
	if r < 0 {
		r += m
	}
	return lo + r
}

func genBox(x, y, w, h int) Box {
	return Box{
		X: clampGen(x, -20, 20),
		Y: clampGen(y, -20, 20),
		W: clampGen(w, 0, 30),
		H: clampGen(h, 0, 30),
	}
}

func TestIoUProperties(t *testing.T) {
	// IoU is symmetric, bounded in [0, 1], and exactly 1 only for identical
	// non-empty boxes.
	prop := func(ax, ay, aw, ah, bx, by, bw, bh int) bool {
		a := genBox(ax, ay, aw, ah)
		b := genBox(bx, by, bw, bh)
		iou := a.IoU(b)
		if iou < 0 || iou > 1 {
			return false
		}
		if math.Abs(iou-b.IoU(a)) > 1e-12 {
			return false
		}
		if !a.Empty() && a == b && iou != 1 {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestIntersectionProperties(t *testing.T) {
	// The intersection is contained in both operands and never larger than
	// either.
	prop := func(ax, ay, aw, ah, bx, by, bw, bh int) bool {
		a := genBox(ax, ay, aw, ah)
		b := genBox(bx, by, bw, bh)
		in := a.Intersect(b)
		if in.Area() > a.Area() || in.Area() > b.Area() {
			return false
		}
		if !in.Empty() && (!a.ContainsBox(in) || !b.ContainsBox(in)) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestUnionProperties(t *testing.T) {
	// The bounding union contains both operands, and union area obeys
	// inclusion-exclusion bounds.
	prop := func(ax, ay, aw, ah, bx, by, bw, bh int) bool {
		a := genBox(ax, ay, aw, ah)
		b := genBox(bx, by, bw, bh)
		u := a.Union(b)
		if !u.ContainsBox(a) || !u.ContainsBox(b) {
			return false
		}
		ua := a.UnionArea(b)
		if ua > a.Area()+b.Area() {
			return false
		}
		if ua < a.Area() || ua < b.Area() {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestTranslateProperties(t *testing.T) {
	// Translation preserves area and IoU with a co-translated box.
	prop := func(ax, ay, aw, ah, dx, dy int) bool {
		a := genBox(ax, ay, aw, ah)
		d := a.Translate(dx%50, dy%50)
		if d.Area() != a.Area() {
			return false
		}
		b := genBox(ay, ax, ah, aw)
		db := b.Translate(dx%50, dy%50)
		return math.Abs(a.IoU(b)-d.IoU(db)) < 1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPointOps(t *testing.T) {
	p := Point{1, 2}
	q := Point{3, -4}
	if got := p.Add(q); got != (Point{4, -2}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{-2, 6}) {
		t.Errorf("Sub = %v", got)
	}
}
