// Package geometry provides integer box and point primitives shared by the
// region-proposal, tracking and evaluation stages of the EBBIOT pipeline.
//
// All boxes use the paper's convention: (X, Y) is the bottom-left corner of
// the box on the sensor array, W and H are width and height in pixels. A box
// with W <= 0 or H <= 0 is empty.
package geometry

import (
	"fmt"
	"math"
)

// Point is an integer pixel coordinate on the sensor array.
type Point struct {
	X, Y int
}

// Add returns the component-wise sum p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the component-wise difference p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Box is an axis-aligned rectangle with integer coordinates. X, Y locate the
// bottom-left corner; W and H are the extent in pixels.
type Box struct {
	X, Y, W, H int
}

// NewBox returns the box with bottom-left corner (x, y), width w and height h.
func NewBox(x, y, w, h int) Box { return Box{X: x, Y: y, W: w, H: h} }

// BoxFromCorners returns the box spanning the two corner points (x0, y0)
// (inclusive) and (x1, y1) (exclusive). The corners may be given in any
// order.
func BoxFromCorners(x0, y0, x1, y1 int) Box {
	if x1 < x0 {
		x0, x1 = x1, x0
	}
	if y1 < y0 {
		y0, y1 = y1, y0
	}
	return Box{X: x0, Y: y0, W: x1 - x0, H: y1 - y0}
}

// String implements fmt.Stringer.
func (b Box) String() string {
	return fmt.Sprintf("Box(x=%d,y=%d,w=%d,h=%d)", b.X, b.Y, b.W, b.H)
}

// Empty reports whether the box has no area.
func (b Box) Empty() bool { return b.W <= 0 || b.H <= 0 }

// Area returns the box area in pixels; empty boxes have zero area.
func (b Box) Area() int {
	if b.Empty() {
		return 0
	}
	return b.W * b.H
}

// MaxX returns the exclusive right edge of the box.
func (b Box) MaxX() int { return b.X + b.W }

// MaxY returns the exclusive top edge of the box.
func (b Box) MaxY() int { return b.Y + b.H }

// Center returns the box centroid in floating point, matching the centroid
// measurements used by the Kalman-filter tracker.
func (b Box) Center() (cx, cy float64) {
	return float64(b.X) + float64(b.W)/2, float64(b.Y) + float64(b.H)/2
}

// Contains reports whether the pixel (x, y) lies inside the box.
func (b Box) Contains(x, y int) bool {
	return x >= b.X && x < b.X+b.W && y >= b.Y && y < b.Y+b.H
}

// ContainsBox reports whether o lies fully inside b. Empty boxes are
// contained by everything.
func (b Box) ContainsBox(o Box) bool {
	if o.Empty() {
		return true
	}
	return o.X >= b.X && o.Y >= b.Y && o.MaxX() <= b.MaxX() && o.MaxY() <= b.MaxY()
}

// Translate returns the box shifted by (dx, dy).
func (b Box) Translate(dx, dy int) Box {
	return Box{X: b.X + dx, Y: b.Y + dy, W: b.W, H: b.H}
}

// Intersect returns the overlapping region of b and o. The result is empty
// (possibly with negative extent normalised to zero) when they do not
// overlap.
func (b Box) Intersect(o Box) Box {
	x0 := max(b.X, o.X)
	y0 := max(b.Y, o.Y)
	x1 := min(b.MaxX(), o.MaxX())
	y1 := min(b.MaxY(), o.MaxY())
	if x1 <= x0 || y1 <= y0 {
		return Box{}
	}
	return Box{X: x0, Y: y0, W: x1 - x0, H: y1 - y0}
}

// Union returns the smallest box containing both b and o. If either box is
// empty the other is returned unchanged.
func (b Box) Union(o Box) Box {
	if b.Empty() {
		return o
	}
	if o.Empty() {
		return b
	}
	x0 := min(b.X, o.X)
	y0 := min(b.Y, o.Y)
	x1 := max(b.MaxX(), o.MaxX())
	y1 := max(b.MaxY(), o.MaxY())
	return Box{X: x0, Y: y0, W: x1 - x0, H: y1 - y0}
}

// Overlaps reports whether b and o share at least one pixel.
func (b Box) Overlaps(o Box) bool { return !b.Intersect(o).Empty() }

// IntersectionArea returns the area of overlap between b and o.
func (b Box) IntersectionArea(o Box) int { return b.Intersect(o).Area() }

// UnionArea returns |b| + |o| - |b ∩ o|, the area of the set union (not the
// bounding box).
func (b Box) UnionArea(o Box) int {
	return b.Area() + o.Area() - b.IntersectionArea(o)
}

// IoU returns the intersection-over-union of the two boxes, the evaluation
// metric of Eq. 9 in the paper. Two empty boxes have IoU 0.
func (b Box) IoU(o Box) float64 {
	inter := b.IntersectionArea(o)
	if inter == 0 {
		return 0
	}
	return float64(inter) / float64(b.UnionArea(o))
}

// OverlapFraction returns the intersection area divided by the area of b.
// The paper's overlap-based tracker declares a match when this fraction (for
// either the tracker or the proposal box) exceeds a threshold.
func (b Box) OverlapFraction(o Box) float64 {
	if b.Area() == 0 {
		return 0
	}
	return float64(b.IntersectionArea(o)) / float64(b.Area())
}

// Clamp returns b clipped to lie within bounds. The result may be empty.
func (b Box) Clamp(bounds Box) Box {
	return b.Intersect(bounds)
}

// Expand grows the box by m pixels on every side (shrinks when m < 0). The
// result is normalised so that a fully collapsed box becomes empty rather
// than inverted.
func (b Box) Expand(m int) Box {
	nb := Box{X: b.X - m, Y: b.Y - m, W: b.W + 2*m, H: b.H + 2*m}
	if nb.W < 0 {
		nb.W = 0
	}
	if nb.H < 0 {
		nb.H = 0
	}
	return nb
}

// FBox is a floating-point box used where sub-pixel positions matter
// (tracker prediction, Kalman state). The same bottom-left convention as Box
// applies.
type FBox struct {
	X, Y, W, H float64
}

// FBoxFrom converts an integer box.
func FBoxFrom(b Box) FBox {
	return FBox{X: float64(b.X), Y: float64(b.Y), W: float64(b.W), H: float64(b.H)}
}

// Round converts back to an integer box using round-to-nearest on the corner
// and size.
func (f FBox) Round() Box {
	return Box{
		X: int(math.Round(f.X)),
		Y: int(math.Round(f.Y)),
		W: int(math.Round(f.W)),
		H: int(math.Round(f.H)),
	}
}

// Center returns the centroid of the box.
func (f FBox) Center() (cx, cy float64) { return f.X + f.W/2, f.Y + f.H/2 }

// Area returns the area; empty boxes have zero area.
func (f FBox) Area() float64 {
	if f.W <= 0 || f.H <= 0 {
		return 0
	}
	return f.W * f.H
}

// Translate returns the box shifted by (dx, dy).
func (f FBox) Translate(dx, dy float64) FBox {
	return FBox{X: f.X + dx, Y: f.Y + dy, W: f.W, H: f.H}
}

// Intersect returns the overlapping region of f and o, or the zero FBox when
// they are disjoint.
func (f FBox) Intersect(o FBox) FBox {
	x0 := math.Max(f.X, o.X)
	y0 := math.Max(f.Y, o.Y)
	x1 := math.Min(f.X+f.W, o.X+o.W)
	y1 := math.Min(f.Y+f.H, o.Y+o.H)
	if x1 <= x0 || y1 <= y0 {
		return FBox{}
	}
	return FBox{X: x0, Y: y0, W: x1 - x0, H: y1 - y0}
}

// IntersectionArea returns the area of overlap between f and o.
func (f FBox) IntersectionArea(o FBox) float64 { return f.Intersect(o).Area() }

// IoU returns intersection-over-union for floating point boxes.
func (f FBox) IoU(o FBox) float64 {
	inter := f.IntersectionArea(o)
	if inter == 0 {
		return 0
	}
	return inter / (f.Area() + o.Area() - inter)
}

// OverlapFraction returns intersection area divided by the area of f.
func (f FBox) OverlapFraction(o FBox) float64 {
	a := f.Area()
	if a == 0 {
		return 0
	}
	return f.IntersectionArea(o) / a
}
