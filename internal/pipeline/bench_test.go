package pipeline

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sync"
	"testing"

	"ebbiot/internal/aedat"
	"ebbiot/internal/core"
	"ebbiot/internal/events"
	"ebbiot/internal/geometry"
	"ebbiot/internal/scene"
	"ebbiot/internal/sensor"
)

// benchRecording lazily generates one 2-second single-car recording shared
// by every benchmark: the raw event slice and its AEDAT encoding.
var benchRecording struct {
	once sync.Once
	evs  []events.Event
	aer  []byte
}

func benchEvents(b *testing.B) ([]events.Event, []byte) {
	benchRecording.once.Do(func() {
		sc := scene.SingleObjectScene(events.DAVIS240, 2_000_000)
		sim, err := sensor.New(sensor.DefaultConfig(3), sc)
		if err != nil {
			panic(err)
		}
		evs, err := sim.Events(0, sc.DurationUS)
		if err != nil {
			panic(err)
		}
		var buf bytes.Buffer
		if err := aedat.Write(&buf, events.DAVIS240, evs); err != nil {
			panic(err)
		}
		benchRecording.evs = evs
		benchRecording.aer = buf.Bytes()
	})
	return benchRecording.evs, benchRecording.aer
}

// BenchmarkWindowLoop_Naive is the seed's hand-rolled replay loop: a fresh
// window slice is allocated per frame by the AEDAT reader and the reported
// boxes are copied into a retained snapshot, exactly as cmd/ebbiot-run did
// before the pipeline runtime. One op = one full replay (~31 windows).
func BenchmarkWindowLoop_Naive(b *testing.B) {
	_, aer := benchEvents(b)
	b.ReportAllocs()
	b.ResetTimer()
	var windows int
	for i := 0; i < b.N; i++ {
		r, err := aedat.NewReader(bytes.NewReader(aer))
		if err != nil {
			b.Fatal(err)
		}
		sys, err := core.NewEBBIOT(core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		windows = 0
		for frame := 0; ; frame++ {
			end := int64(frame+1) * 66_000
			evs, werr := r.NextWindow(end)
			boxes, perr := sys.ProcessWindow(evs)
			if perr != nil {
				b.Fatal(perr)
			}
			_ = append([]geometry.Box(nil), boxes...)
			windows++
			if werr == io.EOF {
				break
			}
			if werr != nil {
				b.Fatal(werr)
			}
		}
	}
	b.ReportMetric(float64(windows), "windows/replay")
}

// BenchmarkWindowLoop_Runner replays the identical recording through the
// streaming runtime: pooled window buffers, windower validation, snapshot
// deep copy and fan-in included.
func BenchmarkWindowLoop_Runner(b *testing.B) {
	_, aer := benchEvents(b)
	b.ReportAllocs()
	b.ResetTimer()
	var windows int64
	for i := 0; i < b.N; i++ {
		r, err := aedat.NewReader(bytes.NewReader(aer))
		if err != nil {
			b.Fatal(err)
		}
		sys, err := core.NewEBBIOT(core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		runner, err := NewRunner(Config{FrameUS: 66_000, Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		stats, err := runner.Run(context.Background(),
			[]Stream{{Source: NewAEDATSource(r), System: sys}}, nil)
		if err != nil {
			b.Fatal(err)
		}
		sys.Close()
		windows = stats.Windows
	}
	b.ReportMetric(float64(windows), "windows/replay")
}

// BenchmarkWindowLoop_RunnerBatch replays the identical recording at
// increasing window batch sizes: each op is one full replay, so falling
// ns/op with batch size is the measured amortization of the per-window
// tuner check, stage publication and dispatch (batch=1 pins the unbatched
// fast path as the baseline).
func BenchmarkWindowLoop_RunnerBatch(b *testing.B) {
	_, aer := benchEvents(b)
	for _, batch := range []int{1, 4, 16} {
		batch := batch
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r, err := aedat.NewReader(bytes.NewReader(aer))
				if err != nil {
					b.Fatal(err)
				}
				sys, err := core.NewEBBIOT(core.DefaultConfig())
				if err != nil {
					b.Fatal(err)
				}
				runner, err := NewRunner(Config{FrameUS: 66_000, Workers: 1, Batch: batch})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := runner.Run(context.Background(),
					[]Stream{{Source: NewAEDATSource(r), System: sys}}, nil); err != nil {
					b.Fatal(err)
				}
				sys.Close()
			}
		})
	}
}

// BenchmarkRunnerMultiSensor measures how aggregate throughput scales when
// the same 8-sensor fleet is sharded across 1, 2, 4 and 8 workers. Per-op
// work is constant (8 sensors x ~31 windows), so ns/op falling with worker
// count is the scaling headline.
func BenchmarkRunnerMultiSensor(b *testing.B) {
	evs, _ := benchEvents(b)
	const sensors = 8
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		name := map[int]string{1: "workers=1", 2: "workers=2", 4: "workers=4", 8: "workers=8"}[workers]
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				streams := make([]Stream, sensors)
				for k := range streams {
					src, err := NewSliceSource(evs)
					if err != nil {
						b.Fatal(err)
					}
					sys, err := core.NewEBBIOT(core.DefaultConfig())
					if err != nil {
						b.Fatal(err)
					}
					streams[k] = Stream{Source: src, System: sys}
				}
				runner, err := NewRunner(Config{FrameUS: 66_000, Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				stats, err := runner.Run(context.Background(), streams, nil)
				if err != nil {
					b.Fatal(err)
				}
				for k := range streams {
					streams[k].System.(*core.EBBIOT).Close()
				}
				b.ReportMetric(stats.WindowsPerSec(), "windows/s")
				b.ReportMetric(stats.EventsPerSec()/1e6, "Mevents/s")
			}
		})
	}
}
