package pipeline

import (
	"sync"
	"sync/atomic"
	"time"

	"ebbiot/internal/core"
)

// StreamState is the lifecycle position of one stream within a run.
type StreamState int32

// Stream lifecycle states.
const (
	// StreamPending: registered but no worker has claimed it yet.
	StreamPending StreamState = iota
	// StreamRunning: a worker is processing its windows.
	StreamRunning
	// StreamDone: the stream was processed to exhaustion.
	StreamDone
	// StreamFailed: the stream's source, system, observer or tuner errored.
	StreamFailed
	// StreamCanceled: the stream stopped because the run was canceled
	// (another stream's failure, a sink error, or ctx cancellation).
	StreamCanceled
	// StreamStalled: the stream is still owned by a worker but has made no
	// window progress within the run's watchdog deadline — typically a
	// network source whose sensor went quiet. Not terminal: the stream
	// flips back to running at its next window.
	StreamStalled
)

// String implements fmt.Stringer.
func (s StreamState) String() string {
	switch s {
	case StreamPending:
		return "pending"
	case StreamRunning:
		return "running"
	case StreamDone:
		return "done"
	case StreamFailed:
		return "failed"
	case StreamCanceled:
		return "canceled"
	case StreamStalled:
		return "stalled"
	default:
		return "unknown"
	}
}

// StreamStatus holds one stream's continuously updated counters. The worker
// driving the stream writes them between windows; any goroutine (the control
// plane's HTTP handlers in particular) may read a consistent point-in-time
// view via Snapshot at any moment during the run.
type StreamStatus struct {
	sensor int
	name   string

	state      atomic.Int32
	windows    atomic.Int64
	events     atomic.Int64
	boxes      atomic.Int64
	procUS     atomic.Int64
	lastFrame  atomic.Int64
	lastEndUS  atomic.Int64
	lastEvents atomic.Int64
	lastBoxes  atomic.Int64
	frameUS    atomic.Int64
	paramVer   atomic.Int64
	srcErrs    atomic.Int64
	stalls     atomic.Int64
	restarts   atomic.Int64
	// lastProgress is the UnixNano of the stream's latest window (or its
	// claim by a worker) — what the run's watchdog measures staleness
	// against.
	lastProgress atomic.Int64

	// mu guards the multi-word fields below.
	mu     sync.Mutex
	stages core.StageTimings
	hasST  bool
	src    SourceStats
	hasSrc bool
	errMsg string
	// stack is the recovered goroutine stack when the stream failed by
	// panic (contained by the supervisor).
	stack string
}

// StreamSnapshot is the JSON view of one stream's StreamStatus.
type StreamSnapshot struct {
	Sensor int    `json:"sensor"`
	Name   string `json:"name"`
	State  string `json:"state"`
	// Windows, Events, Boxes are cumulative totals.
	Windows int64 `json:"windows"`
	Events  int64 `json:"events"`
	Boxes   int64 `json:"boxes"`
	// ProcUS is the cumulative ProcessWindow wall-clock (the duty cycle's
	// active slice).
	ProcUS int64 `json:"proc_us"`
	// LastFrame/LastEndUS locate the stream clock; LastEvents and LastBoxes
	// are the most recent window's event count and reported track count (the
	// live NT).
	LastFrame  int64 `json:"last_frame"`
	LastEndUS  int64 `json:"last_end_us"`
	LastEvents int64 `json:"last_events"`
	LastBoxes  int64 `json:"last_boxes"`
	// FrameUS is the tF currently in effect; ParamVersion is the ParamSet
	// version last applied by the stream's tuner (0 when untuned).
	FrameUS      int64 `json:"frame_us"`
	ParamVersion int64 `json:"param_version,omitempty"`
	// EventsPerSec / WindowsPerSec are wall-clock rates over the run so far.
	EventsPerSec  float64 `json:"events_per_sec"`
	WindowsPerSec float64 `json:"windows_per_sec"`
	// ActiveFraction is ProcUS over the stream time covered so far — the
	// duty-cycle active fraction when the run is paced at recorded speed.
	ActiveFraction float64 `json:"active_fraction"`
	// SourceErrors counts windower/source failures on this stream — a
	// source that errored mid-run after yielding windows shows up here
	// even though the failure also aborts the run.
	SourceErrors int64 `json:"source_errors"`
	// Stalls counts watchdog trips: periods with no window progress within
	// the run's watchdog deadline. Restarts counts supervised source
	// restarts (RestartableSource) on this stream.
	Stalls   int64 `json:"stalls,omitempty"`
	Restarts int64 `json:"restarts,omitempty"`
	// Stages is the per-stage timing breakdown for systems that implement
	// core.StageTimer.
	Stages *StageSnapshot `json:"stages,omitempty"`
	// Source carries the network-source health counters for streams fed by
	// a SourceMeter (the ingest layer's NetSource); nil for local sources.
	Source *SourceStats `json:"source,omitempty"`
	Error  string       `json:"error,omitempty"`
	// Stack is the recovered goroutine stack when the stream failed by
	// panic; empty otherwise.
	Stack string `json:"stack,omitempty"`
}

// StageSnapshot is the JSON view of core.StageTimings (totals in µs).
type StageSnapshot struct {
	Windows int64 `json:"windows"`
	// WindowsSkipped counts the windows the near-empty fast path bypassed
	// (included in Windows); always serialized so consumers can tell "no
	// skipping configured" from "field absent".
	WindowsSkipped int64 `json:"windows_skipped"`
	EBBIUS         int64 `json:"ebbi_us"`
	FilterUS       int64 `json:"filter_us"`
	RPNUS          int64 `json:"rpn_us"`
	TrackUS        int64 `json:"track_us"`
	// ActivePixelFraction is the mean fraction of the packed frame the
	// active region marked dirty — the sparsity the activity-bounded
	// kernels skipped past (1 on the byte reference path). Distinct from
	// the stream-level ActiveFraction, which is the duty cycle's
	// processing-time share.
	ActivePixelFraction float64 `json:"active_pixel_fraction"`
}

// Sensor returns the stream's index in the run's stream list.
func (s *StreamStatus) Sensor() int { return s.sensor }

// Name returns the stream's label.
func (s *StreamStatus) Name() string { return s.name }

// State returns the stream's lifecycle state.
func (s *StreamStatus) State() StreamState { return StreamState(s.state.Load()) }

// Windows returns the number of windows processed so far.
func (s *StreamStatus) Windows() int64 { return s.windows.Load() }

// Events returns the number of events consumed so far.
func (s *StreamStatus) Events() int64 { return s.events.Load() }

// Boxes returns the number of track boxes reported so far.
func (s *StreamStatus) Boxes() int64 { return s.boxes.Load() }

// setState transitions the stream's lifecycle state.
func (s *StreamStatus) setState(st StreamState) { s.state.Store(int32(st)) }

// fail records a terminal error.
func (s *StreamStatus) fail(st StreamState, err error) {
	s.setState(st)
	if err == nil {
		return
	}
	s.mu.Lock()
	s.errMsg = err.Error()
	s.mu.Unlock()
}

// noteProgress stamps the stream's progress clock and clears a watchdog
// stall, if one was flagged: progress is the proof of life.
func (s *StreamStatus) noteProgress(now time.Time) {
	s.lastProgress.Store(now.UnixNano())
	s.state.CompareAndSwap(int32(StreamStalled), int32(StreamRunning))
}

// markStalled flips a running stream to stalled, counting the trip.
// CAS-only so it can never clobber a terminal state the worker is
// concurrently writing.
func (s *StreamStatus) markStalled() bool {
	if s.state.CompareAndSwap(int32(StreamRunning), int32(StreamStalled)) {
		s.stalls.Add(1)
		return true
	}
	return false
}

// addRestart accounts one supervised source restart.
func (s *StreamStatus) addRestart() { s.restarts.Add(1) }

// failPanic records a contained panic: terminal failure plus the
// recovered stack for /streams/{id}.
func (s *StreamStatus) failPanic(err error, stack []byte) {
	s.setState(StreamFailed)
	s.mu.Lock()
	s.errMsg = err.Error()
	s.stack = string(stack)
	s.mu.Unlock()
}

// record accounts one processed window.
func (s *StreamStatus) record(snap TrackSnapshot) {
	s.noteProgress(time.Now())
	s.windows.Add(1)
	s.events.Add(int64(snap.Events))
	s.boxes.Add(int64(len(snap.Boxes)))
	s.procUS.Add(snap.ProcUS)
	s.lastFrame.Store(int64(snap.Frame))
	s.lastEndUS.Store(snap.EndUS)
	s.lastEvents.Store(int64(snap.Events))
	s.lastBoxes.Store(int64(len(snap.Boxes)))
}

// setStages publishes the system's per-stage timings.
func (s *StreamStatus) setStages(st core.StageTimings) {
	s.mu.Lock()
	s.stages = st
	s.hasST = true
	s.mu.Unlock()
}

// addSourceError accounts one source failure on this stream.
func (s *StreamStatus) addSourceError() { s.srcErrs.Add(1) }

// SourceErrors returns the stream's source-failure count.
func (s *StreamStatus) SourceErrors() int64 { return s.srcErrs.Load() }

// setSourceStats publishes the source's health counters.
func (s *StreamStatus) setSourceStats(st SourceStats) {
	s.mu.Lock()
	s.src = st
	s.hasSrc = true
	s.mu.Unlock()
}

// setTuning publishes the frame duration and parameter version in effect.
func (s *StreamStatus) setTuning(frameUS, version int64) {
	if frameUS > 0 {
		s.frameUS.Store(frameUS)
	}
	if version > 0 {
		s.paramVer.Store(version)
	}
}

// Snapshot returns a point-in-time view; elapsed is the run's wall-clock so
// far, used for the rate fields.
func (s *StreamStatus) Snapshot(elapsed time.Duration) StreamSnapshot {
	snap := StreamSnapshot{
		Sensor:       s.sensor,
		Name:         s.name,
		State:        s.State().String(),
		Windows:      s.windows.Load(),
		Events:       s.events.Load(),
		Boxes:        s.boxes.Load(),
		ProcUS:       s.procUS.Load(),
		LastFrame:    s.lastFrame.Load(),
		LastEndUS:    s.lastEndUS.Load(),
		LastEvents:   s.lastEvents.Load(),
		LastBoxes:    s.lastBoxes.Load(),
		FrameUS:      s.frameUS.Load(),
		ParamVersion: s.paramVer.Load(),
		SourceErrors: s.srcErrs.Load(),
		Stalls:       s.stalls.Load(),
		Restarts:     s.restarts.Load(),
	}
	if secs := elapsed.Seconds(); secs > 0 {
		snap.EventsPerSec = float64(snap.Events) / secs
		snap.WindowsPerSec = float64(snap.Windows) / secs
	}
	if snap.LastEndUS > 0 {
		snap.ActiveFraction = float64(snap.ProcUS) / float64(snap.LastEndUS)
	}
	s.mu.Lock()
	if s.hasST {
		snap.Stages = &StageSnapshot{
			Windows:             s.stages.Windows,
			WindowsSkipped:      s.stages.Skipped,
			EBBIUS:              s.stages.EBBI.Microseconds(),
			FilterUS:            s.stages.Filter.Microseconds(),
			RPNUS:               s.stages.RPN.Microseconds(),
			TrackUS:             s.stages.Track.Microseconds(),
			ActivePixelFraction: s.stages.MeanActiveFraction(),
		}
	}
	if s.hasSrc {
		src := s.src
		snap.Source = &src
	}
	snap.Error = s.errMsg
	snap.Stack = s.stack
	s.mu.Unlock()
	return snap
}

// RunStatus is the live, continuously updated view of one run — the
// observation surface the control plane serves while Runner.Run (or a store
// replay) is still in flight. All methods are safe for concurrent use.
//
// RunStatus implements the control plane's status-provider contract on
// itself (Status returns the receiver), so a bare RunStatus — e.g. one
// tracking a store replay — can be served directly.
type RunStatus struct {
	start   time.Time
	workers atomic.Int64

	mu       sync.RWMutex
	streams  []*StreamStatus
	bySensor map[int]*StreamStatus
	errMsg   string

	sinkNS  atomic.Int64
	done    atomic.Bool
	endNS   atomic.Int64 // elapsed frozen when the run finishes
	lagFunc func() int
}

// StatusSnapshot is the JSON view of a whole run at one moment.
type StatusSnapshot struct {
	Running bool `json:"running"`
	Workers int  `json:"workers"`
	// ElapsedUS is wall-clock since the run started (frozen at completion).
	ElapsedUS int64 `json:"elapsed_us"`
	// Totals across streams.
	Streams int   `json:"streams"`
	Windows int64 `json:"windows"`
	Events  int64 `json:"events"`
	Boxes   int64 `json:"boxes"`
	// SourceErrors totals the per-stream source failures.
	SourceErrors int64 `json:"source_errors"`
	// Stalls and Restarts total the per-stream watchdog trips and
	// supervised source restarts.
	Stalls   int64 `json:"stalls,omitempty"`
	Restarts int64 `json:"restarts,omitempty"`
	// SinkUS is cumulative wall-clock inside Sink.Consume; SinkLag is the
	// number of snapshots queued in the fan-in channel right now.
	SinkUS        int64            `json:"sink_us"`
	SinkLag       int              `json:"sink_lag"`
	EventsPerSec  float64          `json:"events_per_sec"`
	WindowsPerSec float64          `json:"windows_per_sec"`
	PerStream     []StreamSnapshot `json:"per_stream"`
	Error         string           `json:"error,omitempty"`
}

// NewRunStatus returns an empty status anchored at now. Runner.Run builds
// one per run; replay and custom drivers may build their own and register
// streams as they appear.
func NewRunStatus(workers int) *RunStatus {
	rs := &RunStatus{start: time.Now(), bySensor: make(map[int]*StreamStatus)}
	rs.workers.Store(int64(workers))
	return rs
}

// Status implements the control plane's status-provider contract.
func (r *RunStatus) Status() *RunStatus { return r }

// Register adds (or returns the already registered) stream with the given
// sensor index and label.
func (r *RunStatus) Register(sensor int, name string) *StreamStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	if st, ok := r.bySensor[sensor]; ok {
		return st
	}
	st := &StreamStatus{sensor: sensor, name: name}
	r.bySensor[sensor] = st
	r.streams = append(r.streams, st)
	return st
}

// Stream returns the status of the stream with the given sensor index, or
// nil if none is registered.
func (r *RunStatus) Stream(sensor int) *StreamStatus {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.bySensor[sensor]
}

// Streams returns the registered stream statuses (a copy of the list; the
// statuses themselves are live). The run's watchdog scans this.
func (r *RunStatus) Streams() []*StreamStatus {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*StreamStatus, len(r.streams))
	copy(out, r.streams)
	return out
}

// FailedStreams lists the names of streams that ended in StreamFailed —
// the basis for the run's aggregate error when failures were contained
// rather than run-aborting, and for ebbiot-run's exit code.
func (r *RunStatus) FailedStreams() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []string
	for _, st := range r.streams {
		if st.State() == StreamFailed {
			out = append(out, st.name)
		}
	}
	return out
}

// StreamByName returns the status of the first stream with the given label,
// or nil.
func (r *RunStatus) StreamByName(name string) *StreamStatus {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, st := range r.streams {
		if st.name == name {
			return st
		}
	}
	return nil
}

// Running reports whether the run is still in flight.
func (r *RunStatus) Running() bool { return !r.done.Load() }

// Elapsed returns wall-clock since the run started, frozen at completion.
func (r *RunStatus) Elapsed() time.Duration {
	if r.done.Load() {
		return time.Duration(r.endNS.Load())
	}
	return time.Since(r.start)
}

// addSinkTime accounts time spent inside Sink.Consume. Accumulated in
// nanoseconds: per-snapshot sink calls are often sub-microsecond, and
// truncating each one would undercount the total.
func (r *RunStatus) addSinkTime(d time.Duration) { r.sinkNS.Add(int64(d)) }

// finish freezes the clock and records the run's terminal error. Streams
// never dispatched to a worker (an aborted run broke off dispatch) are
// swept to canceled: in a finished run, "pending" would read as stuck work.
func (r *RunStatus) finish(err error) {
	r.endNS.Store(int64(time.Since(r.start)))
	r.mu.Lock()
	if err != nil {
		r.errMsg = err.Error()
	}
	streams := make([]*StreamStatus, len(r.streams))
	copy(streams, r.streams)
	r.mu.Unlock()
	for _, st := range streams {
		if st.State() == StreamPending {
			st.setState(StreamCanceled)
		}
	}
	r.done.Store(true)
}

// Snapshot returns a consistent point-in-time view of the whole run.
func (r *RunStatus) Snapshot() StatusSnapshot {
	elapsed := r.Elapsed()
	snap := StatusSnapshot{
		Running:   r.Running(),
		Workers:   int(r.workers.Load()),
		ElapsedUS: elapsed.Microseconds(),
		SinkUS:    time.Duration(r.sinkNS.Load()).Microseconds(),
	}
	r.mu.RLock()
	snap.Error = r.errMsg
	streams := make([]*StreamStatus, len(r.streams))
	copy(streams, r.streams)
	lag := r.lagFunc
	r.mu.RUnlock()
	if lag != nil {
		snap.SinkLag = lag()
	}
	snap.Streams = len(streams)
	snap.PerStream = make([]StreamSnapshot, 0, len(streams))
	for _, st := range streams {
		ss := st.Snapshot(elapsed)
		snap.Windows += ss.Windows
		snap.Events += ss.Events
		snap.Boxes += ss.Boxes
		snap.SourceErrors += ss.SourceErrors
		snap.Stalls += ss.Stalls
		snap.Restarts += ss.Restarts
		snap.PerStream = append(snap.PerStream, ss)
	}
	if secs := elapsed.Seconds(); secs > 0 {
		snap.EventsPerSec = float64(snap.Events) / secs
		snap.WindowsPerSec = float64(snap.Windows) / secs
	}
	return snap
}

// setLag installs the fan-in queue-length probe.
func (r *RunStatus) setLag(f func() int) {
	r.mu.Lock()
	r.lagFunc = f
	r.mu.Unlock()
}

// Stats collapses the live status into the end-of-run aggregate form.
func (r *RunStatus) Stats() Stats {
	snap := r.Snapshot()
	return Stats{
		Streams:  snap.Streams,
		Workers:  snap.Workers,
		Windows:  snap.Windows,
		Events:   snap.Events,
		Boxes:    snap.Boxes,
		Elapsed:  r.Elapsed(),
		SinkTime: time.Duration(r.sinkNS.Load()),
	}
}
