// Package pipeline is the streaming runtime that drives the paper's
// frame-synchronous tracking systems over live or recorded event streams.
// It layers as
//
//	EventSource -> Windower -> core.System -> TrackSnapshot -> Sink
//
// and scales out: a Runner shards N independent sensor streams across M
// worker goroutines, each worker owning one stream at a time (so every
// stream's stateful System sees its windows strictly in order), and fans the
// per-window TrackSnapshots into a single Sink goroutine over a bounded
// channel. Backpressure is end-to-end — a slow sink blocks the workers
// rather than buffering unboundedly — and per-stream results are
// deterministic regardless of worker count.
//
// The hot per-window path recycles buffers: window event slices come from a
// sync.Pool shared across streams, and the Systems' EBBI frames are pooled
// underneath (see ebbi.NewBuilder). Snapshots deep-copy the reported track
// boxes at the window boundary, so sinks may retain them indefinitely while
// workers race ahead.
//
// Runs can outlive the process: a StoreSink persists every snapshot into
// the embedded append-only store (internal/store), and ReplayStore feeds a
// recorded run back through any Sink with the same per-stream ordering
// contract — record once, re-evaluate offline forever. Sinks that buffer
// implement Flusher and are flushed by the Runner itself, so deferred
// write errors fail the run instead of vanishing.
//
// Runs are also observable and tunable while in flight: the Runner
// publishes a live RunStatus (per-stream counters, stage timings, sink
// lag) that any goroutine may read, each Stream may carry a Tuner that the
// worker consults at window boundaries to retune tF or reconfigure the
// System live, and PacedSource releases windows at recorded wall-clock
// speed so replays behave like deployments. internal/control serves all of
// this over HTTP.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ebbiot/internal/core"
	"ebbiot/internal/events"
	"ebbiot/internal/geometry"
)

// TrackSnapshot is one window's result from one sensor stream: the frame
// clock position plus the tracker's reported boxes, deep-copied so the
// snapshot stays valid after the worker moves on to the next window.
type TrackSnapshot struct {
	// Sensor is the stream's index in the Runner's stream list; Name is its
	// label ("sensor3" when unset).
	Sensor int    `json:"sensor"`
	Name   string `json:"name"`
	// Frame is the window index; the window spans [StartUS, EndUS) in
	// stream time.
	Frame   int   `json:"frame"`
	StartUS int64 `json:"start_us"`
	EndUS   int64 `json:"end_us"`
	// Events is the number of events consumed in the window.
	Events int `json:"events"`
	// ProcUS is the wall-clock time ProcessWindow took, in microseconds —
	// the active slice of the paper's duty cycle.
	ProcUS int64 `json:"proc_us"`
	// Boxes are the reported tracks at the window end (deep copy; safe to
	// retain).
	Boxes []geometry.Box `json:"boxes"`
}

// Observer is a per-stream hook invoked synchronously on the worker
// goroutine after each window, before the snapshot is fanned in. Because it
// runs between windows of its own stream, it may inspect the System's
// window-scoped internals (e.g. core.EBBIOT.LastFrame), which alias buffers
// that the next window will overwrite.
type Observer func(snap TrackSnapshot, sys core.System) error

// Tuner is the control plane's hook into a running stream. The worker calls
// Tune on its own goroutine at every window boundary, before the next window
// is pulled; the tuner may reconfigure the System in place (the systems'
// ApplyParams hooks) and returns the frame duration tF to use for the next
// window (0 keeps the current one) plus the parameter version in effect (0
// when unversioned), which the live status reports.
//
// A Tuner instance belongs to one stream: it is only ever called from the
// worker currently driving that stream, so it needs no locking of its own,
// but implementations that consult shared state (a control.ParamStore) must
// read it atomically.
type Tuner interface {
	Tune(sensor int, sys core.System) (frameUS, version int64, err error)
}

// Stream pairs an event source with the stateful System consuming it. Each
// stream is processed by exactly one worker at a time.
type Stream struct {
	// Name labels snapshots; defaults to "sensor<index>".
	Name   string
	Source EventSource
	System core.System
	// Observer, if non-nil, runs synchronously after every window.
	Observer Observer
	// Tuner, if non-nil, is consulted at every window boundary and may
	// retune tF or reconfigure the System live. Each stream needs its own
	// instance.
	Tuner Tuner
}

// Config parameterises a Runner.
type Config struct {
	// FrameUS is the frame period tF in microseconds.
	FrameUS int64
	// Workers caps the concurrent stream workers; 0 means GOMAXPROCS. The
	// effective count never exceeds the number of streams.
	Workers int
	// QueueDepth bounds the fan-in channel; 0 means 2 per worker. Smaller
	// values tighten backpressure, larger ones decouple bursty sinks.
	QueueDepth int
	// Batch is the number of contiguous windows pulled and processed per
	// stream iteration; 0 or 1 means one window at a time. Batching
	// amortizes per-window dispatch — the tuner check, stage-timing
	// publication, and (for systems implementing core.WindowBatcher) the
	// ProcessWindow call overhead — over Batch windows, at the cost of
	// coarser control: live tF retunes and parameter changes land at batch
	// boundaries instead of every window, and per-window snapshots are
	// published only after the whole batch completes (so paced/latency-
	// sensitive runs should keep Batch small). Tracking output is identical
	// at any batch size.
	Batch int
	// Watchdog, when positive, arms a per-stream progress watchdog: a
	// running stream that completes no window within this duration is
	// flipped to the (non-terminal) stalled state and its stall counter
	// incremented — surfacing a quiet sensor through /streams/{id} and
	// /metrics without killing anything. The stream returns to running at
	// its next window.
	Watchdog time.Duration
	// MaxRestarts bounds supervised restarts per stream for sources
	// implementing RestartableSource: a mid-stream source error triggers a
	// jittered exponential backoff, Restart, and a contiguous continuation
	// of the window clock instead of failing the stream — up to this many
	// times over the stream's life. 0 disables restarts.
	MaxRestarts int
	// RestartBackoff is the base delay before restart attempt n (doubled
	// each attempt, capped at 5 s, jittered into [d/2, d]); 0 means 200 ms.
	RestartBackoff time.Duration
}

// Stats summarises a run.
type Stats struct {
	Streams int
	// Workers is the effective worker count the run used (after resolving
	// the GOMAXPROCS default and the stream-count cap).
	Workers int
	Windows int64
	Events  int64
	// Boxes is the total reported track boxes across all snapshots.
	Boxes   int64
	Elapsed time.Duration
	// SinkTime is the total wall-clock spent inside Sink.Consume on the
	// single sink goroutine — the "sink" stage of the per-window timing
	// breakdown (divide by Windows for the per-window mean).
	SinkTime time.Duration
}

// EventsPerSec returns the aggregate event throughput.
func (s Stats) EventsPerSec() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Events) / s.Elapsed.Seconds()
}

// WindowsPerSec returns the aggregate window throughput.
func (s Stats) WindowsPerSec() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Windows) / s.Elapsed.Seconds()
}

// Runner shards sensor streams across workers and fans snapshots into a
// sink.
type Runner struct {
	cfg    Config
	status atomic.Pointer[RunStatus]
}

// NewRunner validates the configuration and returns a Runner.
func NewRunner(cfg Config) (*Runner, error) {
	if cfg.FrameUS <= 0 {
		return nil, fmt.Errorf("pipeline: frame duration must be positive, got %d", cfg.FrameUS)
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("pipeline: negative worker count %d", cfg.Workers)
	}
	if cfg.QueueDepth < 0 {
		return nil, fmt.Errorf("pipeline: negative queue depth %d", cfg.QueueDepth)
	}
	if cfg.Batch < 0 {
		return nil, fmt.Errorf("pipeline: negative batch size %d", cfg.Batch)
	}
	if cfg.Watchdog < 0 {
		return nil, fmt.Errorf("pipeline: negative watchdog deadline %v", cfg.Watchdog)
	}
	if cfg.MaxRestarts < 0 {
		return nil, fmt.Errorf("pipeline: negative restart budget %d", cfg.MaxRestarts)
	}
	return &Runner{cfg: cfg}, nil
}

// panicError is a panic recovered from one stream's goroutine chain —
// source, system, tuner, observer or the sink consuming its snapshot. The
// supervisor contains it: the stream fails with the stack recorded, the
// run's other streams are untouched, and the run reports the failure in
// its aggregate error once everything else has finished.
type panicError struct {
	stream string
	val    any
	stack  []byte
}

func (p *panicError) Error() string {
	return fmt.Sprintf("pipeline: %s: panic: %v", p.stream, p.val)
}

// errStreamKilled is runStream's signal that its stream was failed from
// outside the worker (the sink goroutine contained a panic on one of its
// snapshots): stop producing, touch nothing else.
var errStreamKilled = errors.New("pipeline: stream failed externally")

// restartBackoff returns the jittered exponential delay before restart
// attempt number attempt (0-based): base << attempt capped at 5 s,
// jittered uniformly into [d/2, d].
func restartBackoff(base time.Duration, attempt int) time.Duration {
	if base <= 0 {
		base = 200 * time.Millisecond
	}
	const cap = 5 * time.Second
	d := base
	for i := 0; i < attempt && d < cap; i++ {
		d *= 2
	}
	if d > cap {
		d = cap
	}
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

// Run processes every stream to exhaustion and returns aggregate stats. The
// sink (which may be nil to discard results) is invoked from a single
// goroutine, so it need not be thread-safe; per-stream snapshots arrive in
// frame order, interleaving across streams arbitrarily. Once the snapshot
// stream ends the sink is flushed if it implements Flusher (MultiSink
// members included). The first error — from a source, System, observer,
// sink, flush or ctx — cancels the run and is returned.
func (r *Runner) Run(ctx context.Context, streams []Stream, sink Sink) (Stats, error) {
	if len(streams) == 0 {
		return Stats{}, fmt.Errorf("pipeline: no streams")
	}
	for i := range streams {
		if streams[i].Source == nil || streams[i].System == nil {
			return Stats{}, fmt.Errorf("pipeline: stream %d missing source or system", i)
		}
	}
	workers := r.cfg.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(streams) {
		workers = len(streams)
	}
	depth := r.cfg.QueueDepth
	if depth == 0 {
		depth = 2 * workers
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		firstErr error
		errOnce  sync.Once
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}

	// Live status: registered before any worker starts so the control plane
	// sees every stream (as pending) from the first moment of the run.
	status := NewRunStatus(workers)
	for i := range streams {
		name := streams[i].Name
		if name == "" {
			name = fmt.Sprintf("sensor%d", i)
		}
		ss := status.Register(i, name)
		ss.setTuning(r.cfg.FrameUS, 0)
	}
	r.status.Store(status)

	results := make(chan TrackSnapshot, depth)
	status.setLag(func() int { return len(results) })
	work := make(chan int)

	// Single sink consumer: non-thread-safe sinks stay simple. A panic
	// inside Consume is contained to the snapshot's stream — the stream is
	// failed with the stack recorded and its worker notices at the next
	// window boundary, while the other streams keep flowing.
	consume := func(snap TrackSnapshot) {
		defer func() {
			if v := recover(); v != nil {
				perr := &panicError{stream: snap.Name + ": sink", val: v, stack: debug.Stack()}
				if ss := status.Stream(snap.Sensor); ss != nil {
					ss.failPanic(perr, perr.stack)
				}
			}
		}()
		t0 := time.Now()
		err := sink.Consume(snap)
		status.addSinkTime(time.Since(t0))
		if err != nil {
			fail(fmt.Errorf("pipeline: sink: %w", err))
			// Keep draining so workers never block forever.
		}
	}
	var sinkWG sync.WaitGroup
	sinkWG.Add(1)
	go func() {
		defer sinkWG.Done()
		for snap := range results {
			if sink == nil {
				continue
			}
			// Skip snapshots of a stream already failed (a prior panic on
			// it): feeding more would likely panic on the same state again.
			if ss := status.Stream(snap.Sensor); ss != nil && ss.State() == StreamFailed {
				continue
			}
			consume(snap)
		}
	}()

	// Progress watchdog: flags running streams that complete no window
	// within the deadline as stalled (observability only — nothing is
	// killed). Stopped once the workers drain.
	var wdWG sync.WaitGroup
	wdStop := make(chan struct{})
	if r.cfg.Watchdog > 0 {
		wdWG.Add(1)
		go func() {
			defer wdWG.Done()
			period := r.cfg.Watchdog / 4
			if period < time.Millisecond {
				period = time.Millisecond
			}
			tick := time.NewTicker(period)
			defer tick.Stop()
			for {
				select {
				case <-wdStop:
					return
				case now := <-tick.C:
					for _, ss := range status.Streams() {
						lp := ss.lastProgress.Load()
						if ss.State() == StreamRunning && lp > 0 &&
							now.UnixNano()-lp > int64(r.cfg.Watchdog) {
							ss.markStalled()
						}
					}
				}
			}
		}()
	}

	var workerWG sync.WaitGroup
	for w := 0; w < workers; w++ {
		workerWG.Add(1)
		go func() {
			defer workerWG.Done()
			for idx := range work {
				ss := status.Stream(idx)
				ss.noteProgress(time.Now())
				ss.setState(StreamRunning)
				err := r.superviseStream(ctx, idx, &streams[idx], results, ss)
				var pe *panicError
				switch {
				case err == nil:
					ss.setState(StreamDone)
				case errors.Is(err, errStreamKilled):
					// Failed from the sink side; state and stack are
					// already recorded. The run keeps going.
				case errors.As(err, &pe):
					// Contained panic: the stream is failed with its stack,
					// siblings and the run continue. The failure surfaces
					// in the run's aggregate error at the end.
				case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
					ss.fail(StreamCanceled, err)
					fail(err)
					return
				default:
					ss.fail(StreamFailed, err)
					fail(err)
					return
				}
			}
		}()
	}

dispatch:
	for i := range streams {
		select {
		case work <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(work)
	workerWG.Wait()
	close(wdStop)
	wdWG.Wait()
	close(results)
	sinkWG.Wait()

	// Flush buffering sinks so deferred write errors surface through the
	// run instead of being dropped; flushing is attempted even on a failed
	// run to persist whatever made it through.
	if err := flushSink(sink); err != nil {
		fail(fmt.Errorf("pipeline: sink flush: %w", err))
	}

	if firstErr == nil && ctx.Err() != nil {
		firstErr = ctx.Err()
	}
	// Contained failures (panics) let the rest of the run finish, but a
	// run with failed streams is still a failed run: report them so
	// callers — ebbiot-run's exit code in particular — can't mistake it
	// for success.
	if firstErr == nil {
		if failed := status.FailedStreams(); len(failed) > 0 {
			firstErr = fmt.Errorf("pipeline: %d stream(s) failed: %s", len(failed), strings.Join(failed, ", "))
		}
	}
	status.finish(firstErr)
	return status.Stats(), firstErr
}

// superviseStream runs one stream with panic containment: a panic
// anywhere in the stream's chain (source, windower, system, tuner,
// observer) is recovered, recorded on the stream's status with its stack,
// and returned as a *panicError for the worker to treat as contained.
func (r *Runner) superviseStream(ctx context.Context, idx int, st *Stream, results chan<- TrackSnapshot, ss *StreamStatus) (err error) {
	defer func() {
		if v := recover(); v != nil {
			perr := &panicError{stream: ss.Name(), val: v, stack: debug.Stack()}
			ss.failPanic(perr, perr.stack)
			err = perr
		}
	}()
	return r.runStream(ctx, idx, st, results, ss)
}

// Status returns the live view of the current (or most recent) run, nil
// before the first Run. The returned RunStatus stays valid and readable
// after the run ends; a Runner drives one run at a time.
func (r *Runner) Status() *RunStatus { return r.status.Load() }

// runStream drives one stream's window loop to exhaustion, publishing
// progress into ss between windows. With cfg.Batch > 1 it pulls up to Batch
// contiguous windows per iteration — copying each window's events out of the
// Windower's recycled buffer — and hands them to the System in a single
// ProcessWindowBatch call when it implements core.WindowBatcher, so the
// tuner check, stage-timing publication and dispatch overhead amortize
// across the batch. Per-window snapshots are still emitted in order.
func (r *Runner) runStream(ctx context.Context, idx int, st *Stream, results chan<- TrackSnapshot, ss *StreamStatus) error {
	name := ss.Name()
	w, err := NewWindower(st.Source, r.cfg.FrameUS)
	if err != nil {
		return fmt.Errorf("pipeline: %s: %w", name, err)
	}
	defer w.Close()
	// Metered sources (the ingest layer's NetSource, possibly paced) have
	// their health counters published into the live status between windows
	// and once more when the stream ends, whatever way it ends.
	meter := sourceMeter(st.Source)
	publishSrc := func() {
		if meter != nil {
			ss.setSourceStats(meter.SourceStats())
		}
	}
	defer publishSrc()
	// emit publishes one finished window: observer first (it may fail the
	// run), then the fan-in send.
	emit := func(snap TrackSnapshot) error {
		if st.Observer != nil {
			if err := st.Observer(snap, st.System); err != nil {
				return fmt.Errorf("pipeline: %s: observer: %w", name, err)
			}
		}
		select {
		case results <- snap:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	// pull advances the windower by one window, absorbing mid-stream source
	// errors for restartable sources within the run's restart budget: back
	// off (jittered exponential), restart the source, resume the windower
	// on the same frame clock, and try the interrupted window again.
	restarts := 0
	pull := func() (events.Window, bool, error) {
		for {
			win, err := w.Next()
			if err == nil {
				return win, false, nil
			}
			if err == io.EOF {
				return events.Window{}, true, nil
			}
			ss.addSourceError()
			rs, restartable := st.Source.(RestartableSource)
			if !restartable || restarts >= r.cfg.MaxRestarts {
				return events.Window{}, false, fmt.Errorf("pipeline: %s: %w", name, err)
			}
			select {
			case <-time.After(restartBackoff(r.cfg.RestartBackoff, restarts)):
			case <-ctx.Done():
				return events.Window{}, false, ctx.Err()
			}
			restarts++
			ss.addRestart()
			if rerr := rs.Restart(); rerr != nil {
				return events.Window{}, false, fmt.Errorf("pipeline: %s: restart: %v (after: %w)", name, rerr, err)
			}
			if rerr := w.Resume(); rerr != nil {
				return events.Window{}, false, rerr
			}
		}
	}
	batch := r.cfg.Batch
	if batch < 1 {
		batch = 1
	}
	type windowMeta struct {
		frame      int
		start, end int64
	}
	// Per-batch scratch, reused across iterations. Events are copied out of
	// the Windower because it owns a single buffer that the next Next call
	// overwrites; batching needs the whole batch's windows alive at once.
	var (
		bufs  [][]events.Event
		metas []windowMeta
	)
	if batch > 1 {
		bufs = make([][]events.Event, batch)
		metas = make([]windowMeta, 0, batch)
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		// A stream failed from outside the worker (the sink goroutine
		// contained a panic on one of its snapshots) stops producing here,
		// at the window boundary, without disturbing the run.
		if ss.State() == StreamFailed {
			return errStreamKilled
		}
		// Window boundary: let the control plane retune tF or reconfigure
		// the System before the next window (or batch of windows) is
		// pulled; at Batch > 1 live changes land every Batch windows.
		if st.Tuner != nil {
			frameUS, version, err := st.Tuner.Tune(idx, st.System)
			if err != nil {
				return fmt.Errorf("pipeline: %s: tuner: %w", name, err)
			}
			if frameUS > 0 && frameUS != w.FrameUS() {
				if err := w.SetFrameUS(frameUS); err != nil {
					return fmt.Errorf("pipeline: %s: tuner: %w", name, err)
				}
			}
			ss.setTuning(frameUS, version)
		}
		if batch == 1 {
			// Unbatched fast path: process the Windower's buffer in place,
			// no copy.
			frame := w.Frame()
			win, eof, err := pull()
			if eof {
				return nil
			}
			if err != nil {
				// A source failing mid-run (after yielding windows) was
				// accounted by pull before the failure aborts the run, so
				// the stream's snapshot shows where the stream broke.
				return err
			}
			procStart := time.Now()
			reported, err := st.System.ProcessWindow(win.Events)
			if err != nil {
				return fmt.Errorf("pipeline: %s: %s: %w", name, st.System.Name(), err)
			}
			snap := TrackSnapshot{
				Sensor:  idx,
				Name:    name,
				Frame:   frame,
				StartUS: win.Start,
				EndUS:   win.End,
				Events:  len(win.Events),
				ProcUS:  time.Since(procStart).Microseconds(),
				// Deep copy: the System's slice is fresh per the core.System
				// contract, but copying here makes the snapshot safe even for
				// systems that violate it.
				Boxes: append([]geometry.Box(nil), reported...),
			}
			ss.record(snap)
			if timer, ok := st.System.(core.StageTimer); ok {
				ss.setStages(timer.StageTimings())
			}
			publishSrc()
			if err := emit(snap); err != nil {
				return err
			}
			continue
		}
		// Batched path: pull up to batch windows (fewer at stream end).
		metas = metas[:0]
		n := 0
		for n < batch {
			frame := w.Frame()
			win, eof, err := pull()
			if eof {
				break
			}
			if err != nil {
				return err
			}
			bufs[n] = append(bufs[n][:0], win.Events...)
			metas = append(metas, windowMeta{frame: frame, start: win.Start, end: win.End})
			n++
		}
		if n == 0 {
			return nil
		}
		procStart := time.Now()
		var reported [][]geometry.Box
		if wb, ok := st.System.(core.WindowBatcher); ok {
			reported, err = wb.ProcessWindowBatch(bufs[:n])
		} else {
			reported = make([][]geometry.Box, n)
			for i := 0; i < n && err == nil; i++ {
				reported[i], err = st.System.ProcessWindow(bufs[i])
			}
		}
		if err != nil {
			return fmt.Errorf("pipeline: %s: %s: %w", name, st.System.Name(), err)
		}
		// The batch is timed as a whole, so each window reports the batch
		// mean processing time.
		perUS := time.Since(procStart).Microseconds() / int64(n)
		if timer, ok := st.System.(core.StageTimer); ok {
			ss.setStages(timer.StageTimings())
		}
		publishSrc()
		for i := 0; i < n; i++ {
			snap := TrackSnapshot{
				Sensor:  idx,
				Name:    name,
				Frame:   metas[i].frame,
				StartUS: metas[i].start,
				EndUS:   metas[i].end,
				Events:  len(bufs[i]),
				ProcUS:  perUS,
				Boxes:   append([]geometry.Box(nil), reported[i]...),
			}
			ss.record(snap)
			if err := emit(snap); err != nil {
				return err
			}
		}
	}
}
