package pipeline

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"reflect"
	"strings"
	"testing"

	"ebbiot/internal/aedat"
	"ebbiot/internal/core"
	"ebbiot/internal/events"
	"ebbiot/internal/geometry"
	"ebbiot/internal/scene"
	"ebbiot/internal/sensor"
)

// fakeSystem is a cheap deterministic core.System: each window reports one
// box encoding the window's event count and the running window index. With
// failAfter > 0 it errors once that many windows have been processed.
type fakeSystem struct {
	name      string
	windows   int
	err       error
	failAfter int
}

func (f *fakeSystem) Name() string { return f.name }

func (f *fakeSystem) ProcessWindow(evs []events.Event) ([]geometry.Box, error) {
	if f.err != nil && f.failAfter <= 0 {
		return nil, f.err
	}
	if f.err != nil && f.windows >= f.failAfter {
		return nil, f.err
	}
	f.windows++
	if len(evs) == 0 {
		return nil, nil
	}
	return []geometry.Box{geometry.NewBox(len(evs), f.windows, 1, 1)}, nil
}

func ev(x, y int, t int64) events.Event {
	return events.Event{X: int16(x), Y: int16(y), T: t, P: events.On}
}

// ---------------------------------------------------------------------------
// Windower
// ---------------------------------------------------------------------------

func collectWindows(t *testing.T, src EventSource, frameUS int64) []events.Window {
	t.Helper()
	w, err := NewWindower(src, frameUS)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	var out []events.Window
	for {
		win, err := w.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		// The window's events alias the windower's buffer; copy for
		// inspection after the next call.
		win.Events = append([]events.Event(nil), win.Events...)
		out = append(out, win)
	}
}

func TestWindowerSlicesLikeEventsWindows(t *testing.T) {
	evs := []events.Event{ev(1, 1, 10), ev(2, 2, 65_999), ev(3, 3, 66_000), ev(4, 4, 200_000)}
	src, err := NewSliceSource(evs)
	if err != nil {
		t.Fatal(err)
	}
	got := collectWindows(t, src, 66_000)
	want, err := events.Windows(evs, 66_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d windows, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Start != want[i].Start || got[i].End != want[i].End {
			t.Errorf("window %d bounds [%d,%d), want [%d,%d)", i, got[i].Start, got[i].End, want[i].Start, want[i].End)
		}
		if len(got[i].Events) != len(want[i].Events) ||
			(len(want[i].Events) > 0 && !reflect.DeepEqual(got[i].Events, want[i].Events)) {
			t.Errorf("window %d events %v, want %v", i, got[i].Events, want[i].Events)
		}
	}
}

func TestWindowerEdgeEventGoesToNextWindow(t *testing.T) {
	// An event exactly on the boundary belongs to the next half-open window.
	src, err := NewSliceSource([]events.Event{ev(0, 0, 0), ev(1, 1, 66_000)})
	if err != nil {
		t.Fatal(err)
	}
	ws := collectWindows(t, src, 66_000)
	if len(ws) != 2 {
		t.Fatalf("got %d windows, want 2", len(ws))
	}
	if n := len(ws[0].Events); n != 1 {
		t.Errorf("window 0 has %d events, want 1", n)
	}
	if n := len(ws[1].Events); n != 1 || ws[1].Events[0].T != 66_000 {
		t.Errorf("window 1 events %v, want the t=66000 event", ws[1].Events)
	}
}

func TestWindowerEmitsEmptyGapWindows(t *testing.T) {
	// Events in windows 0 and 3: windows 1 and 2 are emitted empty (the
	// frame clock never skips), and nothing is emitted past the last event.
	src, err := NewSliceSource([]events.Event{ev(0, 0, 5), ev(1, 1, 3*66_000+5)})
	if err != nil {
		t.Fatal(err)
	}
	ws := collectWindows(t, src, 66_000)
	if len(ws) != 4 {
		t.Fatalf("got %d windows, want 4", len(ws))
	}
	for i, n := range []int{1, 0, 0, 1} {
		if len(ws[i].Events) != n {
			t.Errorf("window %d has %d events, want %d", i, len(ws[i].Events), n)
		}
	}
}

func TestWindowerEmptyStream(t *testing.T) {
	src, err := NewSliceSource(nil)
	if err != nil {
		t.Fatal(err)
	}
	if ws := collectWindows(t, src, 66_000); len(ws) != 0 {
		t.Fatalf("got %d windows from an empty stream, want 0", len(ws))
	}
}

// recordedSource replays scripted batches, exercising source-bug paths the
// well-behaved adapters never take.
type recordedSource struct {
	batches [][]events.Event
	i       int
}

func (r *recordedSource) NextWindow(buf []events.Event, start, end int64) ([]events.Event, error) {
	if r.i >= len(r.batches) {
		return buf, io.EOF
	}
	buf = append(buf, r.batches[r.i]...)
	r.i++
	if r.i == len(r.batches) {
		return buf, io.EOF
	}
	return buf, nil
}

func TestWindowerRejectsOutOfOrder(t *testing.T) {
	// Unsorted slices are rejected at source construction...
	if _, err := NewSliceSource([]events.Event{ev(0, 0, 50), ev(0, 0, 10)}); !errors.Is(err, events.ErrUnsorted) {
		t.Fatalf("NewSliceSource error = %v, want ErrUnsorted", err)
	}
	// ...and a source emitting a timestamp that regresses across windows is
	// rejected by the windower itself.
	src := &recordedSource{batches: [][]events.Event{
		{ev(0, 0, 60_000)},
		{ev(0, 0, 66_001), ev(0, 0, 66_000)},
	}}
	w, err := NewWindower(src, 66_000)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Next(); !errors.Is(err, events.ErrUnsorted) {
		t.Fatalf("Next error = %v, want ErrUnsorted", err)
	}
}

func TestWindowerRejectsEventOutsideWindow(t *testing.T) {
	src := &recordedSource{batches: [][]events.Event{{ev(0, 0, 70_000)}, nil}}
	w, err := NewWindower(src, 66_000)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.Next(); err == nil || !strings.Contains(err.Error(), "outside") {
		t.Fatalf("Next error = %v, want outside-window rejection", err)
	}
}

// ---------------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------------

func TestAEDATSourceMatchesSliceSource(t *testing.T) {
	evs := []events.Event{ev(3, 4, 100), ev(5, 6, 70_000), ev(7, 8, 70_001), ev(9, 10, 250_000)}
	var buf bytes.Buffer
	if err := aedat.Write(&buf, events.DAVIS240, evs); err != nil {
		t.Fatal(err)
	}
	r, err := aedat.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := collectWindows(t, NewAEDATSource(r), 66_000)
	slice, err := NewSliceSource(evs)
	if err != nil {
		t.Fatal(err)
	}
	want := collectWindows(t, slice, 66_000)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("AEDAT windows %v, want %v", got, want)
	}
}

func TestSceneSourceMatchesManualLoop(t *testing.T) {
	const frameUS = 66_000
	sc := scene.SingleObjectScene(events.DAVIS240, 500_000)
	mk := func() *sensor.Simulator {
		sim, err := sensor.New(sensor.DefaultConfig(7), sc)
		if err != nil {
			t.Fatal(err)
		}
		return sim
	}
	// Manual loop, as the seed code wrote it.
	var want [][]events.Event
	sim := mk()
	for cursor := int64(0); cursor+frameUS <= sc.DurationUS; cursor += frameUS {
		evs, err := sim.Events(cursor, cursor+frameUS)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, evs)
	}
	src, err := NewSceneSource(mk(), sc.DurationUS)
	if err != nil {
		t.Fatal(err)
	}
	got := collectWindows(t, src, frameUS)
	if len(got) != len(want) {
		t.Fatalf("got %d windows, want %d", len(got), len(want))
	}
	for i := range want {
		w := want[i]
		if w == nil {
			w = []events.Event{}
		}
		g := got[i].Events
		if g == nil {
			g = []events.Event{}
		}
		if !reflect.DeepEqual(g, w) {
			t.Fatalf("window %d: %d events, want %d", i, len(g), len(w))
		}
	}
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

// syntheticStream builds a deterministic per-sensor event stream: sensor k
// gets one event per millisecond with coordinates derived from k.
func syntheticStream(k int, durationUS int64) []events.Event {
	var out []events.Event
	for t := int64(0); t < durationUS; t += 1000 {
		out = append(out, ev((k*13+int(t/1000))%240, (k*7)%180, t))
	}
	return out
}

func runFleet(t *testing.T, sensors, workers int) map[int][]TrackSnapshot {
	t.Helper()
	streams := make([]Stream, sensors)
	for k := 0; k < sensors; k++ {
		src, err := NewSliceSource(syntheticStream(k, 2_000_000))
		if err != nil {
			t.Fatal(err)
		}
		streams[k] = Stream{Source: src, System: &fakeSystem{name: fmt.Sprintf("fake%d", k)}}
	}
	r, err := NewRunner(Config{FrameUS: 66_000, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[int][]TrackSnapshot)
	sink := SinkFunc(func(snap TrackSnapshot) error {
		got[snap.Sensor] = append(got[snap.Sensor], snap)
		return nil
	})
	stats, err := r.Run(context.Background(), streams, sink)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Streams != sensors {
		t.Fatalf("stats.Streams = %d, want %d", stats.Streams, sensors)
	}
	wantWindows := int64(sensors) * 31 // 2s / 66ms, last partial window emitted with final events
	if stats.Windows != wantWindows {
		t.Fatalf("stats.Windows = %d, want %d", stats.Windows, wantWindows)
	}
	return got
}

// normalize strips the wall-clock field so runs are comparable.
func normalize(m map[int][]TrackSnapshot) map[int][]TrackSnapshot {
	for _, snaps := range m {
		for i := range snaps {
			snaps[i].ProcUS = 0
		}
	}
	return m
}

func TestRunnerDeterministicAcrossWorkerCounts(t *testing.T) {
	const sensors = 6
	want := normalize(runFleet(t, sensors, 1))
	for _, workers := range []int{2, 4, 0} {
		got := normalize(runFleet(t, sensors, workers))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: per-sensor snapshots differ from workers=1", workers)
		}
	}
	// Per-sensor snapshots arrive in frame order.
	for sensorID, snaps := range want {
		for i, snap := range snaps {
			if snap.Frame != i {
				t.Fatalf("sensor %d snapshot %d has frame %d", sensorID, i, snap.Frame)
			}
		}
	}
}

func TestRunnerPropagatesSystemError(t *testing.T) {
	boom := errors.New("boom")
	src, err := NewSliceSource(syntheticStream(0, 500_000))
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(Config{FrameUS: 66_000})
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.Run(context.Background(), []Stream{{Source: src, System: &fakeSystem{name: "bad", err: boom}}}, nil)
	if !errors.Is(err, boom) {
		t.Fatalf("Run error = %v, want %v", err, boom)
	}
}

func TestRunnerPropagatesSinkError(t *testing.T) {
	boom := errors.New("sink full")
	streams := make([]Stream, 4)
	for k := range streams {
		src, err := NewSliceSource(syntheticStream(k, 2_000_000))
		if err != nil {
			t.Fatal(err)
		}
		streams[k] = Stream{Source: src, System: &fakeSystem{name: "s"}}
	}
	r, err := NewRunner(Config{FrameUS: 66_000, Workers: 2, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	sink := SinkFunc(func(TrackSnapshot) error {
		n++
		if n > 3 {
			return boom
		}
		return nil
	})
	if _, err := r.Run(context.Background(), streams, sink); !errors.Is(err, boom) {
		t.Fatalf("Run error = %v, want %v", err, boom)
	}
}

func TestRunnerHonoursContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	src, err := NewSliceSource(syntheticStream(0, 500_000))
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(Config{FrameUS: 66_000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(ctx, []Stream{{Source: src, System: &fakeSystem{name: "s"}}}, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run error = %v, want context.Canceled", err)
	}
}

func TestRunnerSnapshotsSafeToRetain(t *testing.T) {
	// Snapshots collected during the run must stay intact afterwards even
	// though the worker recycles its window buffer — the deep-copy contract.
	var first []TrackSnapshot
	m := runFleet(t, 1, 1)
	first = append(first, m[0]...)
	again := runFleet(t, 1, 1)[0]
	if !reflect.DeepEqual(normalize(map[int][]TrackSnapshot{0: first})[0], normalize(map[int][]TrackSnapshot{0: again})[0]) {
		t.Fatal("retained snapshots changed between identical runs")
	}
}

// ---------------------------------------------------------------------------
// Real-system end-to-end: EBBIOT over a synthetic scene through the Runner
// equals the seed-style manual loop.
// ---------------------------------------------------------------------------

func TestRunnerMatchesManualLoopEBBIOT(t *testing.T) {
	const frameUS = 66_000
	sc := scene.SingleObjectScene(events.DAVIS240, 2_000_000)

	manual := func() [][]geometry.Box {
		sim, err := sensor.New(sensor.DefaultConfig(42), sc)
		if err != nil {
			t.Fatal(err)
		}
		sys, err := core.NewEBBIOT(core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		var out [][]geometry.Box
		for cursor := int64(0); cursor+frameUS <= sc.DurationUS; cursor += frameUS {
			evs, err := sim.Events(cursor, cursor+frameUS)
			if err != nil {
				t.Fatal(err)
			}
			boxes, err := sys.ProcessWindow(evs)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, boxes)
		}
		return out
	}()

	sim, err := sensor.New(sensor.DefaultConfig(42), sc)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewEBBIOT(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewSceneSource(sim, sc.DurationUS)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(Config{FrameUS: frameUS})
	if err != nil {
		t.Fatal(err)
	}
	var got [][]geometry.Box
	sink := SinkFunc(func(snap TrackSnapshot) error {
		got = append(got, snap.Boxes)
		return nil
	})
	if _, err := r.Run(context.Background(), []Stream{{Source: src, System: sys}}, sink); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(manual) {
		t.Fatalf("runner produced %d windows, manual loop %d", len(got), len(manual))
	}
	for i := range manual {
		w := manual[i]
		if len(w) == 0 && len(got[i]) == 0 {
			continue
		}
		if !reflect.DeepEqual(got[i], w) {
			t.Fatalf("window %d: runner boxes %v, manual %v", i, got[i], w)
		}
	}
}

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

func TestCSVAndJSONAndTraceSinks(t *testing.T) {
	snap := TrackSnapshot{
		Sensor: 2, Name: "s2", Frame: 7, StartUS: 462_000, EndUS: 528_000,
		Events: 123, Boxes: []geometry.Box{geometry.NewBox(10, 20, 30, 16)},
	}
	var csvBuf bytes.Buffer
	cs, err := NewCSVSink(&csvBuf)
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.Consume(snap); err != nil {
		t.Fatal(err)
	}
	if err := cs.Flush(); err != nil {
		t.Fatal(err)
	}
	wantCSV := CSVHeader + "\n2,7,528000,10,20,30,16\n"
	if csvBuf.String() != wantCSV {
		t.Errorf("CSV output %q, want %q", csvBuf.String(), wantCSV)
	}

	var jsonBuf bytes.Buffer
	js := NewJSONSink(&jsonBuf)
	if err := js.Consume(snap); err != nil {
		t.Fatal(err)
	}
	if err := js.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"sensor":2`, `"frame":7`, `"end_us":528000`, `"boxes":[{`} {
		if !strings.Contains(jsonBuf.String(), want) {
			t.Errorf("JSON output %q missing %q", jsonBuf.String(), want)
		}
	}

	ts := NewTraceSink()
	if err := ts.Consume(snap); err != nil {
		t.Fatal(err)
	}
	if got := ts.Sensors(); !reflect.DeepEqual(got, []int{2}) {
		t.Errorf("TraceSink sensors %v, want [2]", got)
	}
	col := ts.Collector(2)
	if col == nil || col.Len() != 1 {
		t.Fatalf("TraceSink collector missing the recorded frame")
	}
	if fs := col.Stats()[0]; fs.Events != 123 || fs.Reported != 1 || fs.EndUS != 528_000 {
		t.Errorf("recorded FrameStat %+v", fs)
	}

	var multiCount int
	multi := MultiSink{ts, SinkFunc(func(TrackSnapshot) error { multiCount++; return nil })}
	if err := multi.Consume(snap); err != nil {
		t.Fatal(err)
	}
	if multiCount != 1 || ts.Collector(2).Len() != 2 {
		t.Errorf("MultiSink did not fan out: count=%d, trace frames=%d", multiCount, ts.Collector(2).Len())
	}
}
