package pipeline

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"ebbiot/internal/core"
	"ebbiot/internal/events"
)

// TestRunnerStatsAccountOneStreamFailing pins down the counter accounting
// when a stream dies mid-run: the failing stream's counters stop at the
// failure point, completed streams keep their full counts, never-started
// streams are swept to canceled at zero — and the aggregate Stats equal
// the sum of the per-stream counters.
func TestRunnerStatsAccountOneStreamFailing(t *testing.T) {
	boom := errors.New("sensor unplugged")
	const durationUS = 2_000_000 // 31 windows of 66 ms (final partial included)
	mkSrc := func(k int) *SliceSource {
		src, err := NewSliceSource(syntheticStream(k, durationUS))
		if err != nil {
			t.Fatal(err)
		}
		return src
	}
	streams := []Stream{
		{Name: "good", Source: mkSrc(0), System: &fakeSystem{name: "good"}},
		{Name: "bad", Source: mkSrc(1), System: &fakeSystem{name: "bad", err: boom, failAfter: 3}},
		{Name: "never", Source: mkSrc(2), System: &fakeSystem{name: "never"}},
	}
	r, err := NewRunner(Config{FrameUS: 66_000, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var sunk int64
	stats, err := r.Run(context.Background(), streams, SinkFunc(func(snap TrackSnapshot) error {
		sunk++
		return nil
	}))
	if !errors.Is(err, boom) {
		t.Fatalf("Run error = %v, want %v", err, boom)
	}

	// With one worker the dispatch order is deterministic: stream 0 runs to
	// exhaustion (31 windows), stream 1 fails after 3, stream 2 never runs.
	const wantGood, wantBad = 31, 3
	if stats.Streams != 3 {
		t.Fatalf("stats.Streams = %d, want 3", stats.Streams)
	}
	if stats.Windows != wantGood+wantBad {
		t.Fatalf("stats.Windows = %d, want %d", stats.Windows, wantGood+wantBad)
	}
	if stats.Boxes != wantGood+wantBad { // every synthetic window has events, so one box each
		t.Fatalf("stats.Boxes = %d, want %d", stats.Boxes, wantGood+wantBad)
	}

	status := r.Status()
	if status == nil {
		t.Fatal("Status() nil after Run")
	}
	snap := status.Snapshot()
	if snap.Running {
		t.Fatal("status still running after Run returned")
	}
	if snap.Error == "" || !strings.Contains(snap.Error, "sensor unplugged") {
		t.Fatalf("status error %q", snap.Error)
	}
	// Aggregates must equal the per-stream sums.
	var windows, evs, boxes int64
	for _, ss := range snap.PerStream {
		windows += ss.Windows
		evs += ss.Events
		boxes += ss.Boxes
	}
	if windows != stats.Windows || evs != stats.Events || boxes != stats.Boxes {
		t.Fatalf("per-stream sums (%d, %d, %d) != stats (%d, %d, %d)",
			windows, evs, boxes, stats.Windows, stats.Events, stats.Boxes)
	}

	checks := []struct {
		sensor  int
		state   string
		windows int64
		hasErr  bool
	}{
		{0, "done", wantGood, false},
		{1, "failed", wantBad, true},
		{2, "canceled", 0, false},
	}
	for _, c := range checks {
		ss := status.Stream(c.sensor).Snapshot(status.Elapsed())
		if ss.State != c.state {
			t.Errorf("stream %d state %q, want %q", c.sensor, ss.State, c.state)
		}
		if ss.Windows != c.windows {
			t.Errorf("stream %d windows %d, want %d", c.sensor, ss.Windows, c.windows)
		}
		if (ss.Error != "") != c.hasErr {
			t.Errorf("stream %d error %q, want hasErr=%v", c.sensor, ss.Error, c.hasErr)
		}
		// Events accounting: windows processed x 66 events/window (one per
		// ms), except the final partial window of the completed stream.
		if c.sensor == 1 && ss.Events != 3*66 {
			t.Errorf("failed stream events %d, want %d", ss.Events, 3*66)
		}
	}

	// The sink saw exactly the recorded windows (it may have been cut short
	// by cancellation, never more than the workers produced).
	if sunk > stats.Windows {
		t.Fatalf("sink consumed %d snapshots, more than %d produced", sunk, stats.Windows)
	}
}

// TestRunnerLiveStatusMatchesStats checks the happy path: after a clean
// run the live status totals collapse to exactly the returned Stats, every
// stream is done, and per-stream frame clocks are plausible.
func TestRunnerLiveStatusMatchesStats(t *testing.T) {
	const sensors = 4
	streams := make([]Stream, sensors)
	for k := 0; k < sensors; k++ {
		src, err := NewSliceSource(syntheticStream(k, 1_000_000))
		if err != nil {
			t.Fatal(err)
		}
		streams[k] = Stream{Source: src, System: &fakeSystem{name: fmt.Sprintf("f%d", k)}}
	}
	r, err := NewRunner(Config{FrameUS: 66_000, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := r.Run(context.Background(), streams, nil)
	if err != nil {
		t.Fatal(err)
	}
	snap := r.Status().Snapshot()
	if snap.Windows != stats.Windows || snap.Events != stats.Events || snap.Boxes != stats.Boxes {
		t.Fatalf("status (%d, %d, %d) != stats (%d, %d, %d)",
			snap.Windows, snap.Events, snap.Boxes, stats.Windows, stats.Events, stats.Boxes)
	}
	if got := r.Status().Stats(); got.Windows != stats.Windows || got.Streams != stats.Streams {
		t.Fatalf("Status().Stats() = %+v, want %+v", got, stats)
	}
	for _, ss := range snap.PerStream {
		if ss.State != "done" {
			t.Errorf("stream %d state %q", ss.Sensor, ss.State)
		}
		if ss.Name != fmt.Sprintf("sensor%d", ss.Sensor) {
			t.Errorf("stream %d default name %q", ss.Sensor, ss.Name)
		}
		if ss.LastEndUS == 0 || ss.FrameUS != 66_000 {
			t.Errorf("stream %d clock (end %d, tF %d)", ss.Sensor, ss.LastEndUS, ss.FrameUS)
		}
	}
}

// TestStreamStatusReportsActivePixelFraction runs a real EBBIOT stream
// (localized synthetic events, no noise) through the Runner and asserts
// the packed frame chain's sparsity stat surfaces in the stream snapshot
// the control plane serves.
func TestStreamStatusReportsActivePixelFraction(t *testing.T) {
	var evs []events.Event
	for f := 0; f < 8; f++ {
		base := int64(f) * 66_000
		n := int64(0)
		for y := 40; y < 60; y++ {
			for x := 80; x < 110; x += 2 {
				evs = append(evs, events.Event{X: int16(x), Y: int16(y), T: base + n})
				n++
			}
		}
	}
	src, err := NewSliceSource(evs)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewEBBIOT(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	r, err := NewRunner(Config{FrameUS: 66_000, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background(), []Stream{{Source: src, System: sys}}, nil); err != nil {
		t.Fatal(err)
	}
	ss := r.Status().Snapshot().PerStream[0]
	if ss.Stages == nil {
		t.Fatal("no stage snapshot for a StageTimer system")
	}
	if f := ss.Stages.ActivePixelFraction; f <= 0 || f >= 0.5 {
		t.Fatalf("active pixel fraction = %.3f, want sparse (0, 0.5)", f)
	}
}

// tfTuner halves tF once at a fixed window boundary, recording what it saw.
type tfTuner struct {
	at      int64
	before  int64
	after   int64
	windows int64
}

func (tt *tfTuner) Tune(sensor int, sys core.System) (int64, int64, error) {
	tt.windows++
	if tt.windows > tt.at {
		return tt.after, 2, nil
	}
	return tt.before, 1, nil
}

// TestRunnerTunerRetunesFrameDuration proves a tF change lands exactly at a
// window boundary: windows stay contiguous and the new duration applies
// from the next window on.
func TestRunnerTunerRetunesFrameDuration(t *testing.T) {
	src, err := NewSliceSource(syntheticStream(0, 1_000_000))
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(Config{FrameUS: 66_000})
	if err != nil {
		t.Fatal(err)
	}
	var snaps []TrackSnapshot
	tuner := &tfTuner{at: 5, before: 66_000, after: 33_000}
	_, err = r.Run(context.Background(),
		[]Stream{{Source: src, System: &fakeSystem{name: "t"}, Tuner: tuner}},
		SinkFunc(func(snap TrackSnapshot) error { snaps = append(snaps, snap); return nil }))
	if err != nil {
		t.Fatal(err)
	}
	for i, snap := range snaps {
		wantDur := int64(66_000)
		if i >= 5 {
			wantDur = 33_000
		}
		if snap.EndUS-snap.StartUS != wantDur {
			t.Fatalf("window %d duration %d, want %d", i, snap.EndUS-snap.StartUS, wantDur)
		}
		if i > 0 && snap.StartUS != snaps[i-1].EndUS {
			t.Fatalf("window %d starts at %d, previous ended at %d", i, snap.StartUS, snaps[i-1].EndUS)
		}
	}
	if ss := r.Status().Stream(0).Snapshot(0); ss.FrameUS != 33_000 || ss.ParamVersion != 2 {
		t.Fatalf("status tuning (%d us, v%d), want (33000, v2)", ss.FrameUS, ss.ParamVersion)
	}
}

// failingTuner errors on its second call.
type failingTuner struct{ calls int }

func (ft *failingTuner) Tune(sensor int, sys core.System) (int64, int64, error) {
	ft.calls++
	if ft.calls > 1 {
		return 0, 0, errors.New("tuner exploded")
	}
	return 0, 0, nil
}

func TestRunnerTunerErrorFailsStream(t *testing.T) {
	src, err := NewSliceSource(syntheticStream(0, 500_000))
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(Config{FrameUS: 66_000})
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.Run(context.Background(),
		[]Stream{{Source: src, System: &fakeSystem{name: "t"}, Tuner: &failingTuner{}}}, nil)
	if err == nil || !strings.Contains(err.Error(), "tuner exploded") {
		t.Fatalf("Run error = %v, want tuner failure", err)
	}
	if st := r.Status().Stream(0).State(); st != StreamFailed {
		t.Fatalf("stream state %v, want failed", st)
	}
}

// TestWindowerSetFrameUS exercises the retune path directly, including the
// validation of events against the moving window bounds.
func TestWindowerSetFrameUS(t *testing.T) {
	var evs []events.Event
	for ts := int64(0); ts < 300_000; ts += 10_000 {
		evs = append(evs, ev(1, 1, ts))
	}
	src, err := NewSliceSource(evs)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWindower(src, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	win, err := w.Next()
	if err != nil {
		t.Fatal(err)
	}
	if win.Start != 0 || win.End != 100_000 || len(win.Events) != 10 {
		t.Fatalf("window 0: [%d, %d) with %d events", win.Start, win.End, len(win.Events))
	}
	if err := w.SetFrameUS(50_000); err != nil {
		t.Fatal(err)
	}
	win, err = w.Next()
	if err != nil {
		t.Fatal(err)
	}
	if win.Start != 100_000 || win.End != 150_000 || len(win.Events) != 5 {
		t.Fatalf("window 1 after retune: [%d, %d) with %d events", win.Start, win.End, len(win.Events))
	}
	if err := w.SetFrameUS(0); err == nil {
		t.Fatal("SetFrameUS accepted a zero duration")
	}
	if got := w.FrameUS(); got != 50_000 {
		t.Fatalf("failed SetFrameUS changed the duration to %d", got)
	}
}
