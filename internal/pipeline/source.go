package pipeline

import (
	"fmt"
	"io"

	"ebbiot/internal/aedat"
	"ebbiot/internal/events"
	"ebbiot/internal/sensor"
)

// EventSource delivers a sensor stream to the pipeline one frame window at a
// time. Windows are requested in order with contiguous, half-open bounds
// [start, end); the source appends the window's events to buf and returns
// the extended slice, so callers can recycle one buffer across windows.
//
// A source signals exhaustion by returning io.EOF, possibly alongside a
// final batch of events; after that the windower emits the final window and
// stops. Any other error aborts the stream.
type EventSource interface {
	NextWindow(buf []events.Event, start, end int64) ([]events.Event, error)
}

// SourceStats is the health ledger of a network-fed (or otherwise fallible)
// event source: what arrived, what was shed by backpressure policy, what
// the transport mangled. Sources that implement SourceMeter have these
// counters published into their stream's StreamStatus at every window
// boundary, and from there onto /streams/{id} and /metrics.
type SourceStats struct {
	// Connected reports whether the producing connection is currently
	// attached and live.
	Connected bool `json:"connected"`
	// Batches and Events count what the source accepted from the wire
	// (before any queue-policy drop).
	Batches int64 `json:"batches"`
	Events  int64 `json:"events"`
	// DroppedBatches/DroppedEvents count queue-policy evictions plus the
	// events of discarded duplicate/reordered batches.
	DroppedBatches int64 `json:"dropped_batches"`
	DroppedEvents  int64 `json:"dropped_events"`
	// DupBatches counts batches dropped for arriving with an
	// already-delivered (duplicate or reordered) sequence number; SeqGaps
	// counts sequence numbers skipped over.
	DupBatches int64 `json:"dup_batches"`
	SeqGaps    int64 `json:"seq_gaps"`
	// QueuedBatches is the queue depth at sampling time.
	QueuedBatches int64 `json:"queued_batches"`
	// Faults counts mid-stream transport/protocol failures (torn frame,
	// stalled writer, disconnect without EOF); LastError describes the
	// most recent one.
	Faults    int64  `json:"faults"`
	LastError string `json:"last_error,omitempty"`
	// Epoch is the ingest session epoch: 1 for the first connection,
	// bumped on every accepted resume. 0 for sources without sessions.
	Epoch int64 `json:"epoch,omitempty"`
	// Resumes counts accepted session resumes (reconnects that continued
	// the same stream instead of faulting it).
	Resumes int64 `json:"resumes,omitempty"`
	// Resumable reports a disconnected stream currently inside its resume
	// grace window: the connection is down but the session is still alive,
	// waiting for the sensor to reconnect.
	Resumable bool `json:"resumable,omitempty"`
}

// SourceMeter is implemented by sources that keep SourceStats (the ingest
// layer's NetSource). The Runner polls it between windows on the stream's
// worker goroutine; implementations must be safe for concurrent use with
// their producing side.
type SourceMeter interface {
	SourceStats() SourceStats
}

// RestartableSource is an EventSource that can recover from a mid-stream
// error. When NextWindow fails on a stream whose source implements this
// interface, the Runner — within its configured restart budget — waits a
// jittered exponential backoff, calls Restart, and continues pulling
// windows from where the stream clock stopped instead of failing the
// stream. Restart must leave the source ready to serve the window the
// failure interrupted (typically by reopening whatever backed it);
// returning an error gives up and fails the stream with both causes.
type RestartableSource interface {
	EventSource
	Restart() error
}

// SliceSource replays an in-memory, time-sorted event stream — recordings
// already decoded, test fixtures, or shards of a captured stream.
type SliceSource struct {
	evs []events.Event
	pos int
}

// NewSliceSource validates ordering and returns a source over evs. The
// source aliases evs; do not mutate while streaming.
func NewSliceSource(evs []events.Event) (*SliceSource, error) {
	if !events.Sorted(evs) {
		return nil, events.ErrUnsorted
	}
	return &SliceSource{evs: evs}, nil
}

// NextWindow implements EventSource.
func (s *SliceSource) NextWindow(buf []events.Event, start, end int64) ([]events.Event, error) {
	for s.pos < len(s.evs) && s.evs[s.pos].T < end {
		buf = append(buf, s.evs[s.pos])
		s.pos++
	}
	if s.pos == len(s.evs) {
		return buf, io.EOF
	}
	return buf, nil
}

// AEDATSource streams a recorded AER file incrementally, so hour-long
// recordings are processed window by window without decoding everything up
// front.
type AEDATSource struct {
	r *aedat.Reader
}

// NewAEDATSource wraps a streaming AEDAT reader.
func NewAEDATSource(r *aedat.Reader) *AEDATSource { return &AEDATSource{r: r} }

// NextWindow implements EventSource.
func (a *AEDATSource) NextWindow(buf []events.Event, start, end int64) ([]events.Event, error) {
	return a.r.NextWindowInto(buf, end)
}

// SceneSource drives a sensor simulator over a synthetic scene of finite
// duration. Matching the evaluation protocol, only windows that fit fully
// inside the scene duration are emitted; the trailing partial window is
// dropped.
type SceneSource struct {
	sim        *sensor.Simulator
	durationUS int64
}

// NewSceneSource wraps a simulator whose scene lasts durationUS.
func NewSceneSource(sim *sensor.Simulator, durationUS int64) (*SceneSource, error) {
	if durationUS <= 0 {
		return nil, fmt.Errorf("pipeline: non-positive scene duration %d", durationUS)
	}
	return &SceneSource{sim: sim, durationUS: durationUS}, nil
}

// NextWindow implements EventSource.
func (s *SceneSource) NextWindow(buf []events.Event, start, end int64) ([]events.Event, error) {
	if end > s.durationUS {
		return buf, io.EOF
	}
	out, err := s.sim.EventsInto(buf, start, end)
	if err != nil {
		return out, err
	}
	if end == s.durationUS {
		return out, io.EOF
	}
	return out, nil
}
