package pipeline

import (
	"fmt"
	"io"

	"ebbiot/internal/aedat"
	"ebbiot/internal/events"
	"ebbiot/internal/sensor"
)

// EventSource delivers a sensor stream to the pipeline one frame window at a
// time. Windows are requested in order with contiguous, half-open bounds
// [start, end); the source appends the window's events to buf and returns
// the extended slice, so callers can recycle one buffer across windows.
//
// A source signals exhaustion by returning io.EOF, possibly alongside a
// final batch of events; after that the windower emits the final window and
// stops. Any other error aborts the stream.
type EventSource interface {
	NextWindow(buf []events.Event, start, end int64) ([]events.Event, error)
}

// SliceSource replays an in-memory, time-sorted event stream — recordings
// already decoded, test fixtures, or shards of a captured stream.
type SliceSource struct {
	evs []events.Event
	pos int
}

// NewSliceSource validates ordering and returns a source over evs. The
// source aliases evs; do not mutate while streaming.
func NewSliceSource(evs []events.Event) (*SliceSource, error) {
	if !events.Sorted(evs) {
		return nil, events.ErrUnsorted
	}
	return &SliceSource{evs: evs}, nil
}

// NextWindow implements EventSource.
func (s *SliceSource) NextWindow(buf []events.Event, start, end int64) ([]events.Event, error) {
	for s.pos < len(s.evs) && s.evs[s.pos].T < end {
		buf = append(buf, s.evs[s.pos])
		s.pos++
	}
	if s.pos == len(s.evs) {
		return buf, io.EOF
	}
	return buf, nil
}

// AEDATSource streams a recorded AER file incrementally, so hour-long
// recordings are processed window by window without decoding everything up
// front.
type AEDATSource struct {
	r *aedat.Reader
}

// NewAEDATSource wraps a streaming AEDAT reader.
func NewAEDATSource(r *aedat.Reader) *AEDATSource { return &AEDATSource{r: r} }

// NextWindow implements EventSource.
func (a *AEDATSource) NextWindow(buf []events.Event, start, end int64) ([]events.Event, error) {
	return a.r.NextWindowInto(buf, end)
}

// SceneSource drives a sensor simulator over a synthetic scene of finite
// duration. Matching the evaluation protocol, only windows that fit fully
// inside the scene duration are emitted; the trailing partial window is
// dropped.
type SceneSource struct {
	sim        *sensor.Simulator
	durationUS int64
}

// NewSceneSource wraps a simulator whose scene lasts durationUS.
func NewSceneSource(sim *sensor.Simulator, durationUS int64) (*SceneSource, error) {
	if durationUS <= 0 {
		return nil, fmt.Errorf("pipeline: non-positive scene duration %d", durationUS)
	}
	return &SceneSource{sim: sim, durationUS: durationUS}, nil
}

// NextWindow implements EventSource.
func (s *SceneSource) NextWindow(buf []events.Event, start, end int64) ([]events.Event, error) {
	if end > s.durationUS {
		return buf, io.EOF
	}
	out, err := s.sim.EventsInto(buf, start, end)
	if err != nil {
		return out, err
	}
	if end == s.durationUS {
		return out, io.EOF
	}
	return out, nil
}
