package pipeline

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"ebbiot/internal/trace"
)

// Sink consumes the fan-in of TrackSnapshots. Runner invokes Consume from a
// single goroutine, so implementations need no locking; snapshots are safe
// to retain (boxes are deep-copied by the worker).
type Sink interface {
	Consume(snap TrackSnapshot) error
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(snap TrackSnapshot) error

// Consume implements Sink.
func (f SinkFunc) Consume(snap TrackSnapshot) error { return f(snap) }

// Flusher is implemented by sinks that buffer output (CSVSink, JSONSink,
// StoreSink). Runner.Run and ReplayStore flush the sink once the snapshot
// stream ends and propagate the error, so deferred write failures — a full
// disk surfacing only when the buffer drains — fail the run instead of
// being dropped on the floor.
type Flusher interface {
	Flush() error
}

// flushSink flushes s if it buffers, descending into MultiSink so every
// member gets flushed; the first error wins but remaining members are
// still attempted (a CSV flush failure must not leave the store sink
// unflushed).
func flushSink(s Sink) error {
	switch v := s.(type) {
	case nil:
		return nil
	case MultiSink:
		var firstErr error
		for _, m := range v {
			if err := flushSink(m); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	case Flusher:
		return v.Flush()
	default:
		return nil
	}
}

// ChannelSink forwards snapshots to a channel, inheriting the Runner's
// backpressure: an unread channel blocks the pipeline. The caller owns the
// channel and closes it (after Run returns) if needed.
type ChannelSink chan<- TrackSnapshot

// Consume implements Sink.
func (c ChannelSink) Consume(snap TrackSnapshot) error {
	c <- snap
	return nil
}

// MultiSink fans each snapshot out to several sinks in order, stopping at
// the first error.
type MultiSink []Sink

// Consume implements Sink.
func (m MultiSink) Consume(snap TrackSnapshot) error {
	for _, s := range m {
		if s == nil {
			continue
		}
		if err := s.Consume(snap); err != nil {
			return err
		}
	}
	return nil
}

// CSVHeader is the row format emitted by CSVSink: one row per reported box.
const CSVHeader = "sensor,frame,end_us,box_x,box_y,box_w,box_h"

// CSVSink writes one CSV row per reported track box. Flush must be called
// after the run to drain the write buffer.
type CSVSink struct {
	bw *bufio.Writer
}

// NewCSVSink writes the header and returns the sink.
func NewCSVSink(w io.Writer) (*CSVSink, error) {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, CSVHeader); err != nil {
		return nil, fmt.Errorf("pipeline: csv header: %w", err)
	}
	return &CSVSink{bw: bw}, nil
}

// Consume implements Sink.
func (c *CSVSink) Consume(snap TrackSnapshot) error {
	for _, b := range snap.Boxes {
		if _, err := fmt.Fprintf(c.bw, "%d,%d,%d,%d,%d,%d,%d\n",
			snap.Sensor, snap.Frame, snap.EndUS, b.X, b.Y, b.W, b.H); err != nil {
			return fmt.Errorf("pipeline: csv row: %w", err)
		}
	}
	return nil
}

// Flush drains the write buffer.
func (c *CSVSink) Flush() error {
	if err := c.bw.Flush(); err != nil {
		return fmt.Errorf("pipeline: csv flush: %w", err)
	}
	return nil
}

// JSONSink writes one JSON object per snapshot (JSON Lines), including
// windows that reported no boxes.
type JSONSink struct {
	bw  *bufio.Writer
	enc *json.Encoder
}

// NewJSONSink returns the sink.
func NewJSONSink(w io.Writer) *JSONSink {
	bw := bufio.NewWriter(w)
	return &JSONSink{bw: bw, enc: json.NewEncoder(bw)}
}

// Consume implements Sink.
func (j *JSONSink) Consume(snap TrackSnapshot) error {
	if err := j.enc.Encode(snap); err != nil {
		return fmt.Errorf("pipeline: json encode: %w", err)
	}
	return nil
}

// Flush drains the write buffer.
func (j *JSONSink) Flush() error {
	if err := j.bw.Flush(); err != nil {
		return fmt.Errorf("pipeline: json flush: %w", err)
	}
	return nil
}

// TraceSink records one trace.FrameStat per window into a per-sensor
// trace.Collector, bridging the runtime to the paper's resource-model
// statistics (NT, per-frame event rates).
type TraceSink struct {
	collectors map[int]*trace.Collector
}

// NewTraceSink returns an empty sink.
func NewTraceSink() *TraceSink {
	return &TraceSink{collectors: make(map[int]*trace.Collector)}
}

// Consume implements Sink.
func (t *TraceSink) Consume(snap TrackSnapshot) error {
	c := t.collectors[snap.Sensor]
	if c == nil {
		c = &trace.Collector{}
		t.collectors[snap.Sensor] = c
	}
	c.Record(trace.FrameStat{
		Frame:    snap.Frame,
		EndUS:    snap.EndUS,
		Events:   snap.Events,
		Reported: len(snap.Boxes),
	})
	return nil
}

// Collector returns the collector for one sensor (nil if it produced no
// snapshots).
func (t *TraceSink) Collector(sensor int) *trace.Collector { return t.collectors[sensor] }

// Sensors returns the sensor indices seen, sorted.
func (t *TraceSink) Sensors() []int {
	out := make([]int, 0, len(t.collectors))
	for s := range t.collectors {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}
