package pipeline

import (
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"testing"

	"ebbiot/internal/store"
)

// runFleetWithStore mirrors runFleet but records every snapshot through a
// StoreSink (alongside the collecting callback) into dir.
func runFleetWithStore(t *testing.T, dir string, sensors, workers int) map[int][]TrackSnapshot {
	t.Helper()
	w, err := store.Open(dir, store.Options{SegmentBytes: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	streams := make([]Stream, sensors)
	for k := 0; k < sensors; k++ {
		src, err := NewSliceSource(syntheticStream(k, 2_000_000))
		if err != nil {
			t.Fatal(err)
		}
		streams[k] = Stream{Source: src, System: &fakeSystem{name: fmt.Sprintf("fake%d", k)}}
	}
	r, err := NewRunner(Config{FrameUS: 66_000, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[int][]TrackSnapshot)
	live := SinkFunc(func(snap TrackSnapshot) error {
		got[snap.Sensor] = append(got[snap.Sensor], snap)
		return nil
	})
	if _, err := r.Run(context.Background(), streams, MultiSink{live, NewStoreSink(w)}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return got
}

// TestStoreRoundTrip is the acceptance property: a Runner run recorded
// through StoreSink and replayed via the store yields the same per-stream
// snapshot sequence as the live callback sink, for any worker count.
func TestStoreRoundTrip(t *testing.T) {
	const sensors = 5
	for _, workers := range []int{1, 2, 4} {
		dir := t.TempDir()
		live := runFleetWithStore(t, dir, sensors, workers)

		r, err := store.OpenReader(dir)
		if err != nil {
			t.Fatal(err)
		}
		replayed := make(map[int][]TrackSnapshot)
		stats, err := ReplayStore(context.Background(), r, nil, 0, math.MaxInt64,
			SinkFunc(func(snap TrackSnapshot) error {
				replayed[snap.Sensor] = append(replayed[snap.Sensor], snap)
				return nil
			}))
		if err != nil {
			t.Fatal(err)
		}
		if stats.Streams != sensors {
			t.Fatalf("workers=%d: replay saw %d streams, want %d", workers, stats.Streams, sensors)
		}
		if !reflect.DeepEqual(replayed, live) {
			t.Fatalf("workers=%d: replayed per-stream snapshots differ from live run", workers)
		}
	}
}

// TestReplayStoreTimeAndSensorBounds re-queries a recorded run: a bounded
// replay must equal the live sequence filtered by window overlap.
func TestReplayStoreTimeAndSensorBounds(t *testing.T) {
	dir := t.TempDir()
	live := runFleetWithStore(t, dir, 3, 2)
	r, err := store.OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	const t0, t1 = 500_000, 1_200_000
	var got []TrackSnapshot
	if _, err := ReplayStore(context.Background(), r, []int{2}, t0, t1,
		SinkFunc(func(snap TrackSnapshot) error { got = append(got, snap); return nil })); err != nil {
		t.Fatal(err)
	}
	var want []TrackSnapshot
	for _, snap := range live[2] {
		if snap.StartUS < t1 && snap.EndUS > t0 {
			want = append(want, snap)
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("bounded replay: %d snapshots, want %d", len(got), len(want))
	}
}

// TestMultiRunStoreScopedQueries pins the run-selector contract: two runs
// recorded into one directory are independently queryable, and the
// selector-less forms (run 0 = "the sole run") fail fast with the typed
// sentinel instead of interleaving two frame clocks into one timeline.
func TestMultiRunStoreScopedQueries(t *testing.T) {
	dir := t.TempDir()
	first := runFleetWithStore(t, dir, 2, 1)
	second := runFleetWithStore(t, dir, 2, 1) // second run recorded into the same store
	r, err := store.OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReplayStore(context.Background(), r, nil, 0, math.MaxInt64, nil); !errors.Is(err, store.ErrMultipleRuns) {
		t.Fatalf("ReplayStore over a two-run store: %v, want ErrMultipleRuns", err)
	}
	if _, err := ScanStore(context.Background(), r, 0, 1, 0, math.MaxInt64, nil); !errors.Is(err, store.ErrMultipleRuns) {
		t.Fatalf("selector-less ScanStore over a two-run store: %v, want ErrMultipleRuns", err)
	}
	runs := r.Runs()
	if len(runs) != 2 {
		t.Fatalf("Runs() listed %d runs, want 2", len(runs))
	}
	for i, want := range []map[int][]TrackSnapshot{first, second} {
		var got []TrackSnapshot
		stats, err := ScanStore(context.Background(), r, runs[i].ID, 1, 0, math.MaxInt64,
			SinkFunc(func(snap TrackSnapshot) error { got = append(got, snap); return nil }))
		if err != nil {
			t.Fatal(err)
		}
		if stats.Windows != int64(len(want[1])) || !reflect.DeepEqual(got, want[1]) {
			t.Fatalf("run %d: ScanStore yielded %d snapshots, want %d", runs[i].ID, len(got), len(want[1]))
		}
		replayed := make(map[int][]TrackSnapshot)
		if _, err := ReplayStoreWith(context.Background(), r,
			SinkFunc(func(snap TrackSnapshot) error {
				replayed[snap.Sensor] = append(replayed[snap.Sensor], snap)
				return nil
			}), ReplayOptions{Run: runs[i].ID}); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(replayed, want) {
			t.Fatalf("run %d: replay differs from its live recording", runs[i].ID)
		}
	}
}

// flushFailSink consumes everything but fails at flush time — the shape of
// a full disk surfacing only when a buffer drains.
type flushFailSink struct{ err error }

func (f *flushFailSink) Consume(TrackSnapshot) error { return nil }
func (f *flushFailSink) Flush() error                { return f.err }

// TestRunnerSurfacesFlushErrors covers the sink error-path fix: deferred
// write errors from buffering sinks must fail the run, including when the
// sink is buried inside a MultiSink.
func TestRunnerSurfacesFlushErrors(t *testing.T) {
	boom := errors.New("disk full")
	for _, wrap := range []func(Sink) Sink{
		func(s Sink) Sink { return s },
		func(s Sink) Sink { return MultiSink{NewTraceSink(), s} },
	} {
		src, err := NewSliceSource(syntheticStream(0, 500_000))
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewRunner(Config{FrameUS: 66_000})
		if err != nil {
			t.Fatal(err)
		}
		_, err = r.Run(context.Background(),
			[]Stream{{Source: src, System: &fakeSystem{name: "s"}}}, wrap(&flushFailSink{err: boom}))
		if !errors.Is(err, boom) {
			t.Fatalf("Run error = %v, want flush error %v", err, boom)
		}
	}
}

// TestCSVSinkFlushErrorFailsRun exercises the real CSVSink against a
// writer that rejects everything: the header and rows sit in the bufio
// buffer, so before the fix the run "succeeded" and the output silently
// vanished at flush time.
func TestCSVSinkFlushErrorFailsRun(t *testing.T) {
	sink, err := NewCSVSink(failWriter{})
	if err != nil {
		t.Fatal(err) // header is buffered, construction must succeed
	}
	src, err := NewSliceSource(syntheticStream(0, 2_000_000))
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(Config{FrameUS: 66_000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background(),
		[]Stream{{Source: src, System: &fakeSystem{name: "s"}}}, sink); err == nil {
		t.Fatal("run over a failing writer reported success")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errors.New("write refused") }
