package pipeline

import (
	"context"
	"reflect"
	"testing"

	"ebbiot/internal/core"
	"ebbiot/internal/events"
	"ebbiot/internal/scene"
	"ebbiot/internal/sensor"
)

// batchRun drives one stream through a Runner at the given batch size and
// returns the snapshots in arrival order.
func batchRun(t *testing.T, mkSystem func() core.System, batch int) []TrackSnapshot {
	t.Helper()
	sc := scene.SingleObjectScene(events.DAVIS240, 2_000_000)
	sim, err := sensor.New(sensor.DefaultConfig(42), sc)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewSceneSource(sim, sc.DurationUS)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(Config{FrameUS: 66_000, Batch: batch})
	if err != nil {
		t.Fatal(err)
	}
	var got []TrackSnapshot
	sink := SinkFunc(func(snap TrackSnapshot) error {
		snap.ProcUS = 0 // wall-clock differs run to run
		got = append(got, snap)
		return nil
	})
	if _, err := r.Run(context.Background(), []Stream{{Source: src, System: mkSystem()}}, sink); err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("no snapshots")
	}
	return got
}

// TestRunnerBatchDeterministic holds the batched window loop to the
// unbatched one: for every batch size — including sizes that don't divide
// the window count, and one larger than the whole stream — the per-window
// snapshots must be identical. Runs once with EBBIOT (the WindowBatcher
// path) and once with a System lacking ProcessWindowBatch (the fallback
// loop, whose boxes encode each window's event count and so also verify the
// per-window event copies out of the Windower's recycled buffer).
func TestRunnerBatchDeterministic(t *testing.T) {
	systems := map[string]func() core.System{
		"ebbiot": func() core.System {
			sys, err := core.NewEBBIOT(core.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			return sys
		},
		"nonbatcher": func() core.System { return &fakeSystem{name: "fake"} },
	}
	for name, mk := range systems {
		t.Run(name, func(t *testing.T) {
			want := batchRun(t, mk, 1)
			for _, batch := range []int{2, 3, 8, 1000} {
				got := batchRun(t, mk, batch)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("batch=%d: snapshots diverge from unbatched run", batch)
				}
			}
		})
	}
}

// TestRunnerBatchValidation covers the config-time rejection of negative
// batch sizes.
func TestRunnerBatchValidation(t *testing.T) {
	if _, err := NewRunner(Config{FrameUS: 66_000, Batch: -1}); err == nil {
		t.Error("negative Batch accepted")
	}
}
