package pipeline

import (
	"context"
	"fmt"
	"io"
	"math"
	"time"

	"ebbiot/internal/store"
)

// StoreSink persists every snapshot into an embedded store.Writer, giving
// a run a durable, queryable record. It honours the Runner's determinism
// contract the same way the in-process sinks do: Append fully serialises
// the snapshot (boxes included, already deep-copied by the worker) before
// returning, so nothing the workers recycle is ever aliased by the store.
//
// The Runner flushes the sink when the run ends (StoreSink implements
// Flusher via Writer.Sync); the caller still owns the Writer and must
// Close it to seal the final segment.
type StoreSink struct {
	w *store.Writer
}

// NewStoreSink wraps an open store.Writer.
func NewStoreSink(w *store.Writer) *StoreSink { return &StoreSink{w: w} }

// Consume implements Sink.
func (s *StoreSink) Consume(snap TrackSnapshot) error {
	if err := s.w.Append(store.Snapshot{
		Sensor:  snap.Sensor,
		Name:    snap.Name,
		Frame:   snap.Frame,
		StartUS: snap.StartUS,
		EndUS:   snap.EndUS,
		Events:  snap.Events,
		ProcUS:  snap.ProcUS,
		Boxes:   snap.Boxes,
	}); err != nil {
		return fmt.Errorf("pipeline: store sink: %w", err)
	}
	return nil
}

// Flush implements Flusher: buffered records are flushed and fsynced.
func (s *StoreSink) Flush() error { return s.w.Sync() }

// Close seals the store. After Close the sink must not consume again.
func (s *StoreSink) Close() error { return s.w.Close() }

// snapshotFromStore converts a stored record back to the pipeline type.
func snapshotFromStore(s store.Snapshot) TrackSnapshot {
	return TrackSnapshot{
		Sensor:  s.Sensor,
		Name:    s.Name,
		Frame:   s.Frame,
		StartUS: s.StartUS,
		EndUS:   s.EndUS,
		Events:  s.Events,
		ProcUS:  s.ProcUS,
		Boxes:   s.Boxes,
	}
}

// ReplayStore is the offline counterpart of Runner.Run: it feeds a stored
// run back through any Sink, so recorded deployments can be re-evaluated —
// re-summarised through a TraceSink, re-exported as CSV/JSON, or piped
// into new analysis code — without touching the original sensors.
//
// Snapshots arrive on the calling goroutine in the store's replay order:
// globally non-decreasing EndUS, per-sensor in frame order — the same
// per-stream ordering contract a live Runner gives its sink. The store's
// sole run is replayed (store.ErrMultipleRuns when the directory holds
// several; use ReplayStoreWith and ReplayOptions.Run to pick one). A nil
// or empty sensors list replays every sensor; [t0, t1) bounds the window
// overlap query (use 0 and math.MaxInt64 for everything). Like Runner.Run,
// ReplayStore flushes the sink before returning and reports the first
// error from the store, the sink, the flush or ctx.
func ReplayStore(ctx context.Context, r *store.Reader, sensors []int, t0, t1 int64, sink Sink) (Stats, error) {
	// Bounds are passed literally (t1 = 0 replays nothing, as it always
	// has); the T1 <= 0 convenience below belongs to ReplayOptions only.
	it, err := r.Replay(0, sensors, t0, t1)
	if err != nil {
		return Stats{}, fmt.Errorf("pipeline: replay: %w", err)
	}
	return drainStore(ctx, it, sink, ReplayOptions{})
}

// ReplayOptions parameterises ReplayStoreWith.
type ReplayOptions struct {
	// Run selects which recorded run to replay; 0 means the directory's
	// sole run and fails with store.ErrMultipleRuns when several are
	// present (see store.Reader.Runs for the listing).
	Run uint64
	// Sensors selects the sensors to merge; nil or empty replays all.
	Sensors []int
	// T0, T1 bound the window-overlap query; T1 <= 0 means no upper bound.
	T0, T1 int64
	// Speed, when positive, paces the replay at recorded wall-clock speed
	// times Speed: each snapshot is withheld until its recorded EndUS has
	// elapsed relative to the first snapshot's. 0 replays at full speed.
	Speed float64
	// Status, when non-nil, receives live per-sensor progress — the same
	// observation surface a live Runner publishes, so the control plane's
	// HTTP server can monitor a replay exactly like a live run.
	Status *RunStatus
}

// ReplayStoreWith is ReplayStore with pacing and live monitoring.
func ReplayStoreWith(ctx context.Context, r *store.Reader, sink Sink, opts ReplayOptions) (Stats, error) {
	t1 := opts.T1
	if t1 <= 0 {
		t1 = math.MaxInt64
	}
	it, err := r.Replay(opts.Run, opts.Sensors, opts.T0, t1)
	if err != nil {
		return Stats{}, fmt.Errorf("pipeline: replay: %w", err)
	}
	return drainStore(ctx, it, sink, opts)
}

// ScanStore feeds one sensor's stored snapshots from one run through a
// Sink in append order (frame order within the recorded run). run 0
// selects the directory's sole run; a directory holding several requires
// an explicit run ID from store.Reader.Runs.
func ScanStore(ctx context.Context, r *store.Reader, run uint64, sensor int, t0, t1 int64, sink Sink) (Stats, error) {
	c, err := r.Scan(run, sensor, t0, t1)
	if err != nil {
		return Stats{}, fmt.Errorf("pipeline: scan: %w", err)
	}
	return drainStore(ctx, c, sink, ReplayOptions{})
}

// drainStore pumps a store iterator into a sink, mirroring Runner.Run's
// consumer-side contract: single goroutine, sink flushed at the end,
// first error wins. With opts.Speed > 0 delivery is paced on the recorded
// EndUS clock; with opts.Status non-nil per-sensor progress is published
// live.
func drainStore(ctx context.Context, it store.Iterator, sink Sink, opts ReplayOptions) (Stats, error) {
	defer it.Close()
	start := time.Now()
	status := opts.Status
	if status == nil {
		status = NewRunStatus(1)
	}
	pace := pacer{speed: opts.Speed}
	var firstErr error
loop:
	for {
		if err := ctx.Err(); err != nil {
			firstErr = err
			break
		}
		snap, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			firstErr = fmt.Errorf("pipeline: replay: %w", err)
			break
		}
		if opts.Speed > 0 {
			pace.wait(snap.EndUS, ctx.Done())
		}
		ps := snapshotFromStore(snap)
		ss := status.Register(ps.Sensor, ps.Name)
		ss.setState(StreamRunning)
		ss.record(ps)
		// The recorded window span is the stream's tF, so monitored replays
		// report a real frame_us like live runs do.
		ss.setTuning(ps.EndUS-ps.StartUS, 0)
		if sink != nil {
			t0 := time.Now()
			err := sink.Consume(ps)
			status.addSinkTime(time.Since(t0))
			if err != nil {
				firstErr = fmt.Errorf("pipeline: sink: %w", err)
				break loop
			}
		}
	}
	if err := flushSink(sink); err != nil && firstErr == nil {
		firstErr = fmt.Errorf("pipeline: sink flush: %w", err)
	}
	status.finish(firstErr)
	snap := status.Snapshot()
	for _, ss := range snap.PerStream {
		st := status.Stream(ss.Sensor)
		if firstErr == nil {
			st.setState(StreamDone)
		} else {
			st.setState(StreamCanceled)
		}
	}
	st := status.Stats()
	st.Workers = 1
	st.Elapsed = time.Since(start)
	return st, firstErr
}
