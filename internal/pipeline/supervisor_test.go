package pipeline

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"ebbiot/internal/core"
	"ebbiot/internal/events"
)

// supervisorEvents builds n windows' worth of events, one event per 1000 µs
// frame, so window counts map directly to delivered snapshots.
func supervisorEvents(n int) []events.Event {
	evs := make([]events.Event, n)
	for i := range evs {
		evs[i] = ev(1+i%10, 1, int64(i)*1000+10)
	}
	return evs
}

// panickySource panics on its nth NextWindow call — a stand-in for a bug
// anywhere in the stream's pull chain.
type panickySource struct {
	inner   *SliceSource
	panicAt int
	calls   int
}

func (p *panickySource) NextWindow(buf []events.Event, start, end int64) ([]events.Event, error) {
	p.calls++
	if p.calls == p.panicAt {
		panic("boom: source bug")
	}
	return p.inner.NextWindow(buf, start, end)
}

// panickyTuner panics on its nth Tune call.
type panickyTuner struct {
	panicAt int
	calls   int
}

func (p *panickyTuner) Tune(sensor int, sys core.System) (int64, int64, error) {
	p.calls++
	if p.calls == p.panicAt {
		panic("boom: tuner bug")
	}
	return 0, 0, nil
}

// twoStreams builds a faulty stream named "bad" (using src) and a healthy
// sibling "good", runs them on two workers, and returns the run error, the
// per-name snapshot count, and the final status snapshot.
func twoStreams(t *testing.T, bad Stream, sinkPanics bool) (error, map[string]int, StatusSnapshot) {
	t.Helper()
	goodSrc, err := NewSliceSource(supervisorEvents(10))
	if err != nil {
		t.Fatal(err)
	}
	bad.Name = "bad"
	if bad.System == nil {
		bad.System = &fakeSystem{name: "fake"}
	}
	streams := []Stream{
		bad,
		{Name: "good", Source: goodSrc, System: &fakeSystem{name: "fake"}},
	}
	r, err := NewRunner(Config{FrameUS: 1000, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int{}
	sink := SinkFunc(func(snap TrackSnapshot) error {
		if sinkPanics && snap.Name == "bad" && got["bad"] >= 2 {
			panic("boom: sink bug")
		}
		got[snap.Name]++
		return nil
	})
	_, runErr := r.Run(context.Background(), streams, sink)
	return runErr, got, r.Status().Snapshot()
}

// assertContained checks the shared containment contract: the run reports
// the failed stream in its aggregate error, the failed stream carries the
// panic message and a recovered stack, and the healthy sibling delivered
// every one of its windows.
func assertContained(t *testing.T, runErr error, got map[string]int, snap StatusSnapshot, wantPanic string) {
	t.Helper()
	if runErr == nil || !strings.Contains(runErr.Error(), "1 stream(s) failed: bad") {
		t.Fatalf("run error = %v, want an aggregate failed-streams error naming bad", runErr)
	}
	if got["good"] != 10 {
		t.Fatalf("healthy sibling delivered %d windows, want all 10", got["good"])
	}
	for _, ss := range snap.PerStream {
		switch ss.Name {
		case "bad":
			if ss.State != StreamFailed.String() {
				t.Fatalf("bad stream state = %s, want failed", ss.State)
			}
			if !strings.Contains(ss.Error, wantPanic) {
				t.Fatalf("bad stream error = %q, want the panic value %q", ss.Error, wantPanic)
			}
			if !strings.Contains(ss.Stack, "goroutine") {
				t.Fatalf("bad stream has no recovered stack; got %q", ss.Stack)
			}
		case "good":
			if ss.State != StreamDone.String() || ss.Error != "" || ss.Stack != "" {
				t.Fatalf("healthy sibling contaminated: %+v", ss)
			}
		}
	}
}

func TestPanicContainedSource(t *testing.T) {
	src, err := NewSliceSource(supervisorEvents(10))
	if err != nil {
		t.Fatal(err)
	}
	runErr, got, snap := twoStreams(t, Stream{Source: &panickySource{inner: src, panicAt: 3}}, false)
	assertContained(t, runErr, got, snap, "boom: source bug")
}

func TestPanicContainedTuner(t *testing.T) {
	src, err := NewSliceSource(supervisorEvents(10))
	if err != nil {
		t.Fatal(err)
	}
	runErr, got, snap := twoStreams(t, Stream{Source: src, Tuner: &panickyTuner{panicAt: 3}}, false)
	assertContained(t, runErr, got, snap, "boom: tuner bug")
}

func TestPanicContainedSink(t *testing.T) {
	src, err := NewSliceSource(supervisorEvents(10))
	if err != nil {
		t.Fatal(err)
	}
	runErr, got, snap := twoStreams(t, Stream{Source: src}, true)
	assertContained(t, runErr, got, snap, "boom: sink bug")
	if got["bad"] >= 10 {
		t.Fatalf("sink-failed stream kept delivering: %d snapshots", got["bad"])
	}
}

// slowSource stalls (no window completes) for well past the watchdog
// deadline in the middle of the stream, then finishes normally.
type slowSource struct {
	inner *SliceSource
	calls int
	stall time.Duration
}

func (s *slowSource) NextWindow(buf []events.Event, start, end int64) ([]events.Event, error) {
	s.calls++
	if s.calls == 3 {
		time.Sleep(s.stall)
	}
	return s.inner.NextWindow(buf, start, end)
}

// TestWatchdogFlagsStall: a stream that stops making progress is flagged
// stalled (state + counter) while stuck, flips back to running on its next
// window, and still finishes as done — the watchdog observes, it never
// kills.
func TestWatchdogFlagsStall(t *testing.T) {
	src, err := NewSliceSource(supervisorEvents(10))
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(Config{FrameUS: 1000, Watchdog: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	streams := []Stream{{Name: "cam0", Source: &slowSource{inner: src, stall: 250 * time.Millisecond}, System: &fakeSystem{name: "fake"}}}

	sawStalled := make(chan struct{})
	go func() {
		for {
			if rs := r.Status(); rs != nil {
				snap := rs.Snapshot()
				if len(snap.PerStream) == 1 && snap.PerStream[0].State == StreamStalled.String() {
					close(sawStalled)
					return
				}
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	if _, err := r.Run(context.Background(), streams, nil); err != nil {
		t.Fatalf("stalled-but-recovered run failed: %v", err)
	}
	select {
	case <-sawStalled:
	case <-time.After(time.Second):
		t.Fatal("stream never observed in the stalled state")
	}
	snap := r.Status().Snapshot()
	ss := snap.PerStream[0]
	if ss.State != StreamDone.String() {
		t.Fatalf("final state = %s, want done (the watchdog must not kill)", ss.State)
	}
	if ss.Stalls < 1 || snap.Stalls < 1 {
		t.Fatalf("stall not counted: stream=%d run=%d", ss.Stalls, snap.Stalls)
	}
}

// transientSource fails transiently: each entry in failures burns one NextWindow
// call into an error, and Restart repairs it. It implements
// RestartableSource, so the Runner should absorb the failures within its
// restart budget.
type transientSource struct {
	inner    *SliceSource
	failures int
	broken   bool
	restarts int
}

func (f *transientSource) NextWindow(buf []events.Event, start, end int64) ([]events.Event, error) {
	if f.broken {
		return buf, errors.New("transient transport error")
	}
	if f.failures > 0 {
		f.failures--
		f.broken = true
		return buf, errors.New("transient transport error")
	}
	return f.inner.NextWindow(buf, start, end)
}

func (f *transientSource) Restart() error {
	f.restarts++
	f.broken = false
	return nil
}

// TestRestartableSourceRecovers: transient source errors within the budget
// are retried after backoff and the stream completes with every window
// delivered and the restarts counted.
func TestRestartableSourceRecovers(t *testing.T) {
	src, err := NewSliceSource(supervisorEvents(10))
	if err != nil {
		t.Fatal(err)
	}
	fs := &transientSource{inner: src, failures: 2}
	r, err := NewRunner(Config{FrameUS: 1000, MaxRestarts: 3, RestartBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	_, runErr := r.Run(context.Background(),
		[]Stream{{Name: "cam0", Source: fs, System: &fakeSystem{name: "fake"}}},
		SinkFunc(func(TrackSnapshot) error { delivered++; return nil }))
	if runErr != nil {
		t.Fatalf("run with transient source errors failed: %v", runErr)
	}
	if delivered != 10 {
		t.Fatalf("delivered %d windows, want all 10", delivered)
	}
	snap := r.Status().Snapshot()
	if ss := snap.PerStream[0]; ss.Restarts != 2 || ss.SourceErrors != 2 {
		t.Fatalf("restarts=%d source_errors=%d, want 2 and 2", ss.Restarts, ss.SourceErrors)
	}
	if fs.restarts != 2 {
		t.Fatalf("source restarted %d times, want 2", fs.restarts)
	}
}

// TestRestartBudgetExhausted: a source that keeps failing burns the budget
// and then fails the run, with the restart count capped at MaxRestarts.
func TestRestartBudgetExhausted(t *testing.T) {
	src, err := NewSliceSource(supervisorEvents(10))
	if err != nil {
		t.Fatal(err)
	}
	fs := &transientSource{inner: src, failures: 100}
	r, err := NewRunner(Config{FrameUS: 1000, MaxRestarts: 2, RestartBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	_, runErr := r.Run(context.Background(),
		[]Stream{{Name: "cam0", Source: fs, System: &fakeSystem{name: "fake"}}}, nil)
	if runErr == nil || !strings.Contains(runErr.Error(), "transient transport error") {
		t.Fatalf("run error = %v, want the exhausted source error", runErr)
	}
	snap := r.Status().Snapshot()
	if ss := snap.PerStream[0]; ss.Restarts != 2 || ss.State != StreamFailed.String() {
		t.Fatalf("restarts=%d state=%s, want 2 and failed", ss.Restarts, ss.State)
	}
}
