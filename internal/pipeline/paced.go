package pipeline

import (
	"fmt"
	"time"

	"ebbiot/internal/events"
)

// PaceConfig parameterises a PacedSource.
type PaceConfig struct {
	// Speed is the playback rate relative to recorded time: 1 replays at
	// recorded wall-clock speed, 2 twice as fast, 0.5 half speed. Must be
	// positive.
	Speed float64
	// Done, when non-nil, aborts any pending pacing sleep when closed (wire
	// it to ctx.Done() so a canceled run is not held up by the pacer);
	// windows after that are released without delay and the runner's own
	// context check stops the stream.
	Done <-chan struct{}

	// now/sleep are test seams; nil selects the real clock.
	now   func() time.Time
	sleep func(d time.Duration, done <-chan struct{})
}

// PacedSource wraps an EventSource so windows are released at recorded
// wall-clock speed (scaled by Speed) instead of as fast as the source can
// produce them. The first window anchors recorded time to wall time; each
// subsequent window [start, end) is withheld until the wall clock reaches
// anchor + (end - firstStart)/Speed — the moment the window's last event
// would have been available on live hardware.
//
// This turns a replay into a live-shaped run: the duty-cycle model sees
// realistic idle time between frames, and the monitoring endpoint observes
// rates matching a deployment instead of a millisecond burst. A source that
// falls behind (processing slower than recorded time) is never delayed
// further, so pacing adds no backpressure of its own.
type PacedSource struct {
	src  EventSource
	done <-chan struct{}
	pace pacer
}

// NewPacedSource wraps src with pacing.
func NewPacedSource(src EventSource, cfg PaceConfig) (*PacedSource, error) {
	if src == nil {
		return nil, fmt.Errorf("pipeline: nil event source")
	}
	if cfg.Speed <= 0 {
		return nil, fmt.Errorf("pipeline: pace speed must be positive, got %v", cfg.Speed)
	}
	return &PacedSource{
		src:  src,
		done: cfg.Done,
		pace: pacer{speed: cfg.Speed, now: cfg.now, sleep: cfg.sleep},
	}, nil
}

// NextWindow implements EventSource: fetch the window from the wrapped
// source, then hold it back until its recorded end time has elapsed on the
// (scaled) wall clock. The first window's start anchors recorded time to
// wall time.
func (p *PacedSource) NextWindow(buf []events.Event, start, end int64) ([]events.Event, error) {
	out, err := p.src.NextWindow(buf, start, end)
	p.pace.wait(start, p.done)
	p.pace.wait(end, p.done)
	return out, err
}

// sourceMeter resolves the SourceMeter behind src, looking through a
// PacedSource wrapper so a paced network source keeps its counters
// visible. Returns nil for unmetered sources.
func sourceMeter(src EventSource) SourceMeter {
	if m, ok := src.(SourceMeter); ok {
		return m
	}
	if p, ok := src.(*PacedSource); ok {
		if m, ok := p.src.(SourceMeter); ok {
			return m
		}
	}
	return nil
}

// pacer maps a recorded-microsecond clock onto the wall clock: the first
// wait anchors (recorded us <-> now) and returns immediately; every later
// wait blocks until anchor + (us - base)/speed, never delaying a caller
// that has already fallen behind. Shared by PacedSource (window clock) and
// drainStore (snapshot clock) so the two pacing paths cannot drift apart.
type pacer struct {
	speed    float64
	anchored bool
	anchor   time.Time
	baseUS   int64
	// now/sleep are test seams; nil selects the real clock.
	now   func() time.Time
	sleep func(d time.Duration, done <-chan struct{})
}

func (p *pacer) wait(us int64, done <-chan struct{}) {
	if p.now == nil {
		p.now = time.Now
	}
	if p.sleep == nil {
		p.sleep = sleepInterruptible
	}
	if !p.anchored {
		p.anchored = true
		p.anchor = p.now()
		p.baseUS = us
		return
	}
	due := p.anchor.Add(time.Duration(float64(us-p.baseUS) / p.speed * float64(time.Microsecond)))
	if d := due.Sub(p.now()); d > 0 {
		p.sleep(d, done)
	}
}

// sleepInterruptible sleeps for d, returning early when done closes.
func sleepInterruptible(d time.Duration, done <-chan struct{}) {
	if done == nil {
		time.Sleep(d)
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-done:
	}
}
