package pipeline

import (
	"fmt"
	"io"
	"sync"

	"ebbiot/internal/events"
)

// bufPool recycles window event buffers across streams and windows — the
// per-window slice allocation of the hand-rolled loops this package
// replaces.
var bufPool = sync.Pool{
	New: func() any {
		s := make([]events.Event, 0, 4096)
		return &s
	},
}

func getBuf() []events.Event {
	return (*(bufPool.Get().(*[]events.Event)))[:0]
}

func putBuf(buf []events.Event) {
	bufPool.Put(&buf)
}

// Windower slices an EventSource into the consecutive frame windows
// [k*tF, (k+1)*tF) that a core.System consumes — the single implementation
// of the windowing loop previously hand-rolled by every command, example and
// the evaluator. It validates the stream as it goes: events must be
// non-decreasing in time and inside their window, so a misbehaving source
// (or an unsorted recording) is rejected instead of silently corrupting
// frames.
//
// The frame duration may be retuned between windows (SetFrameUS): windows
// stay contiguous — the next window starts where the previous one ended and
// runs for the new duration — which is how the control plane applies a live
// tF change at a window boundary.
type Windower struct {
	src     EventSource
	frameUS int64
	frame   int
	// nextStart is the start of the next window; windows are contiguous
	// even across SetFrameUS retunes, so it advances by the frame duration
	// in effect when each window was emitted.
	nextStart int64
	lastT     int64
	buf       []events.Event
	// eofPending is set when the source returned io.EOF alongside a final
	// batch; the batch's window is emitted first, then io.EOF.
	eofPending bool
	done       bool
}

// NewWindower returns a windower emitting frameUS-long windows from src.
// Call Close when done to recycle the window buffer.
func NewWindower(src EventSource, frameUS int64) (*Windower, error) {
	if src == nil {
		return nil, fmt.Errorf("pipeline: nil event source")
	}
	if frameUS <= 0 {
		return nil, fmt.Errorf("pipeline: frame duration must be positive, got %d", frameUS)
	}
	return &Windower{src: src, frameUS: frameUS, buf: getBuf()}, nil
}

// Next returns the next frame window. Empty windows between events are
// emitted — the frame clock never skips — but nothing is emitted past the
// source's final event. Returns io.EOF once the stream is exhausted.
//
// The returned Window's Events slice is owned by the Windower and valid
// only until the following Next call; this is safe for core.System
// consumers, which must not retain it.
func (w *Windower) Next() (events.Window, error) {
	if w.done {
		return events.Window{}, io.EOF
	}
	if w.eofPending {
		w.done = true
		return events.Window{}, io.EOF
	}
	start := w.nextStart
	end := start + w.frameUS
	w.buf = w.buf[:0]
	buf, err := w.src.NextWindow(w.buf, start, end)
	w.buf = buf
	if err != nil && err != io.EOF {
		w.done = true
		return events.Window{}, fmt.Errorf("window %d: %w", w.frame, err)
	}
	if verr := w.validate(buf, start, end); verr != nil {
		w.done = true
		return events.Window{}, verr
	}
	if err == io.EOF {
		if len(buf) == 0 {
			w.done = true
			return events.Window{}, io.EOF
		}
		w.eofPending = true
	}
	w.frame++
	w.nextStart = end
	return events.Window{Start: start, End: end, Events: buf}, nil
}

// Frame returns the index of the next window to be emitted.
func (w *Windower) Frame() int { return w.frame }

// FrameUS returns the current frame duration.
func (w *Windower) FrameUS() int64 { return w.frameUS }

// SetFrameUS retunes the frame duration, taking effect at the next window:
// it starts where the previous window ended and spans the new duration.
func (w *Windower) SetFrameUS(us int64) error {
	if us <= 0 {
		return fmt.Errorf("pipeline: frame duration must be positive, got %d", us)
	}
	w.frameUS = us
	return nil
}

// Resume clears the terminal state a mid-stream source error left behind
// so Next may be called again once the source has recovered (see
// RestartableSource). The frame clock is untouched: the failed window's
// index, start position and timestamp floor are all retained, so the
// resumed stream stays contiguous with what was already emitted. Only
// valid after a source error — not after Close.
func (w *Windower) Resume() error {
	if w.buf == nil {
		return fmt.Errorf("pipeline: resume after close")
	}
	w.done = false
	w.eofPending = false
	return nil
}

// Close recycles the window buffer. The Windower (and any Window it
// returned) must not be used afterwards.
func (w *Windower) Close() {
	if w.buf != nil {
		putBuf(w.buf)
		w.buf = nil
	}
	w.done = true
}

func (w *Windower) validate(evs []events.Event, start, end int64) error {
	prev := w.lastT
	for i, e := range evs {
		if e.T < prev {
			return fmt.Errorf("window %d event %d at t=%d after t=%d: %w",
				w.frame, i, e.T, prev, events.ErrUnsorted)
		}
		if e.T < start || e.T >= end {
			return fmt.Errorf("window %d event %d at t=%d outside [%d,%d)",
				w.frame, i, e.T, start, end)
		}
		prev = e.T
	}
	w.lastT = prev
	return nil
}
