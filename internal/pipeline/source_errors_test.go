package pipeline

import (
	"context"
	"errors"
	"testing"

	"ebbiot/internal/events"
)

// flakySource yields windows of events until its budget runs out, then
// fails with a non-EOF error — a network source dying mid-run.
type flakySource struct {
	src     *SliceSource
	windows int
	budget  int
	err     error
}

func (f *flakySource) NextWindow(buf []events.Event, start, end int64) ([]events.Event, error) {
	if f.windows >= f.budget {
		return buf, f.err
	}
	f.windows++
	return f.src.NextWindow(buf, start, end)
}

// meteredFlaky additionally implements SourceMeter so the publish-on-exit
// path is exercised alongside the error accounting.
type meteredFlaky struct {
	flakySource
	stats SourceStats
}

func (m *meteredFlaky) SourceStats() SourceStats { return m.stats }

// TestRunnerCountsSourceErrors: a source failing mid-run (after yielding
// windows) must fail the run AND leave source_errors = 1 on its stream's
// status, totaled into the run snapshot — so post-mortems can tell a
// source death from a system error.
func TestRunnerCountsSourceErrors(t *testing.T) {
	for _, batch := range []int{0, 3} {
		src, err := NewSliceSource(syntheticStream(0, 2_000_000))
		if err != nil {
			t.Fatal(err)
		}
		boom := errors.New("sensor unplugged")
		flaky := &meteredFlaky{
			flakySource: flakySource{src: src, budget: 5, err: boom},
			stats:       SourceStats{Faults: 1, LastError: boom.Error()},
		}
		r, err := NewRunner(Config{FrameUS: 66_000, Batch: batch})
		if err != nil {
			t.Fatal(err)
		}
		streams := []Stream{{Name: "flaky", Source: flaky, System: &fakeSystem{name: "fake"}}}
		_, runErr := r.Run(context.Background(), streams, nil)
		if !errors.Is(runErr, boom) {
			t.Fatalf("batch=%d: run error = %v, want the source error", batch, runErr)
		}
		snap := r.Status().Snapshot()
		if snap.SourceErrors != 1 {
			t.Fatalf("batch=%d: run source_errors = %d, want 1", batch, snap.SourceErrors)
		}
		ss := snap.PerStream[0]
		if ss.SourceErrors != 1 {
			t.Fatalf("batch=%d: stream source_errors = %d, want 1", batch, ss.SourceErrors)
		}
		if ss.State != "failed" {
			t.Fatalf("batch=%d: stream state = %q, want failed", batch, ss.State)
		}
		// The meter was published on stream exit even though the stream died.
		if ss.Source == nil || ss.Source.Faults != 1 {
			t.Fatalf("batch=%d: source stats not published on failure: %+v", batch, ss.Source)
		}
	}
}

// TestRunnerNoSourceErrorsOnCleanRun: the counter stays zero for sources
// that end with io.EOF, and unmetered streams publish no Source block.
func TestRunnerNoSourceErrorsOnCleanRun(t *testing.T) {
	src, err := NewSliceSource(syntheticStream(0, 500_000))
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(Config{FrameUS: 66_000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background(), []Stream{{Source: src, System: &fakeSystem{name: "fake"}}}, nil); err != nil {
		t.Fatal(err)
	}
	snap := r.Status().Snapshot()
	if snap.SourceErrors != 0 {
		t.Fatalf("clean run source_errors = %d, want 0", snap.SourceErrors)
	}
	if snap.PerStream[0].Source != nil {
		t.Fatalf("unmetered stream published source stats: %+v", snap.PerStream[0].Source)
	}
}
