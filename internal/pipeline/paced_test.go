package pipeline

import (
	"context"
	"math"
	"os"
	"testing"
	"time"

	"ebbiot/internal/store"
)

// fakeClock drives a PacedSource deterministically: now() returns the
// accumulated virtual time and sleep() advances it, recording each request.
type fakeClock struct {
	t      time.Time
	sleeps []time.Duration
}

func (c *fakeClock) now() time.Time { return c.t }

func (c *fakeClock) sleep(d time.Duration, done <-chan struct{}) {
	c.sleeps = append(c.sleeps, d)
	c.t = c.t.Add(d)
}

func TestPacedSourceHoldsWindowsToRecordedClock(t *testing.T) {
	evs := syntheticStream(0, 500_000)
	src, err := NewSliceSource(evs)
	if err != nil {
		t.Fatal(err)
	}
	clock := &fakeClock{t: time.Unix(0, 0)}
	paced, err := NewPacedSource(src, PaceConfig{Speed: 2, now: clock.now, sleep: clock.sleep})
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWindower(paced, 66_000)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	n := 0
	for {
		if _, err := w.Next(); err != nil {
			break
		}
		n++
	}
	if n == 0 {
		t.Fatal("no windows")
	}
	// At speed 2, each 66 ms window is due 33 ms after the previous one;
	// with an instant source every wait is the full 33 ms.
	if len(clock.sleeps) != n {
		t.Fatalf("%d sleeps for %d windows", len(clock.sleeps), n)
	}
	for i, d := range clock.sleeps {
		if d != 33*time.Millisecond {
			t.Fatalf("sleep %d was %v, want 33ms", i, d)
		}
	}

	// A source that has fallen behind is never delayed further.
	clock.t = clock.t.Add(10 * time.Second)
	src2, _ := NewSliceSource(evs)
	paced2, err := NewPacedSource(src2, PaceConfig{Speed: 1, now: clock.now, sleep: clock.sleep})
	if err != nil {
		t.Fatal(err)
	}
	before := len(clock.sleeps)
	if _, err := paced2.NextWindow(nil, 0, 66_000); err != nil {
		t.Fatal(err)
	}
	clock.t = clock.t.Add(time.Hour) // way past every remaining deadline
	if _, err := paced2.NextWindow(nil, 66_000, 132_000); err != nil {
		t.Fatal(err)
	}
	// Only the first window (anchoring) slept; the late one did not.
	if got := len(clock.sleeps) - before; got != 1 {
		t.Fatalf("late source slept %d times, want 1", got)
	}
}

func TestPacedSourceValidates(t *testing.T) {
	src, err := NewSliceSource(syntheticStream(0, 100_000))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPacedSource(src, PaceConfig{Speed: 0}); err == nil {
		t.Fatal("accepted zero speed")
	}
	if _, err := NewPacedSource(nil, PaceConfig{Speed: 1}); err == nil {
		t.Fatal("accepted nil source")
	}
}

// TestPacedSourceCancelUnblocks proves a canceled run is not held hostage
// by a pending pacing sleep.
func TestPacedSourceCancelUnblocks(t *testing.T) {
	src, err := NewSliceSource(syntheticStream(0, 10_000_000))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	paced, err := NewPacedSource(src, PaceConfig{Speed: 0.001, Done: ctx.Done()}) // 66 ms window -> 66 s sleep
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(Config{FrameUS: 66_000})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = r.Run(ctx, []Stream{{Source: paced, System: &fakeSystem{name: "p"}}}, nil)
	if err == nil {
		t.Fatal("expected cancellation error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancel took %v; pacing sleep not interrupted", elapsed)
	}
}

// TestReplayStoreWithStatusAndPacing replays a small recorded run with live
// status and a very high pacing speed, checking the status registers the
// sensors and the totals match the unpaced replay.
func TestReplayStoreWithStatusAndPacing(t *testing.T) {
	dir, err := os.MkdirTemp("", "ebbiot-paced-replay")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	sw, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	streams := make([]Stream, 2)
	for k := range streams {
		src, err := NewSliceSource(syntheticStream(k, 500_000))
		if err != nil {
			t.Fatal(err)
		}
		streams[k] = Stream{Source: src, System: &fakeSystem{name: "s"}}
	}
	r, err := NewRunner(Config{FrameUS: 66_000, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	live, err := r.Run(context.Background(), streams, NewStoreSink(sw))
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}

	rd, err := store.OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	status := NewRunStatus(1)
	stats, err := ReplayStoreWith(context.Background(), rd, nil, ReplayOptions{
		T1:     math.MaxInt64,
		Speed:  10_000, // recorded 0.5 s -> 50 µs of pacing: exercised, not slow
		Status: status,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Windows != live.Windows || stats.Events != live.Events {
		t.Fatalf("paced replay (%d, %d) != live (%d, %d)", stats.Windows, stats.Events, live.Windows, live.Events)
	}
	snap := status.Snapshot()
	if snap.Running {
		t.Fatal("replay status still running")
	}
	if snap.Streams != 2 || snap.Windows != live.Windows {
		t.Fatalf("replay status %+v", snap)
	}
	for _, ss := range snap.PerStream {
		if ss.State != "done" || ss.Windows == 0 {
			t.Fatalf("replay stream %d: %+v", ss.Sensor, ss)
		}
	}
}
