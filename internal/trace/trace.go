// Package trace collects per-frame pipeline statistics — event counts,
// proposal counts, reported and active tracks — and summarises them into
// the scene constants the paper's resource models take as inputs: NT (mean
// valid trackers, Eq. 6) and the per-frame event rates behind Eq. 2 and
// Eq. 8. The cmd/ebbiot-run tool can dump a trace as CSV for offline
// analysis.
package trace

import (
	"bufio"
	"fmt"
	"io"
)

// FrameStat is one frame's statistics.
type FrameStat struct {
	// Frame is the frame index; EndUS its window end.
	Frame int
	EndUS int64
	// Events is the number of raw sensor events in the window.
	Events int
	// Proposals is the number of region proposals (0 when unknown).
	Proposals int
	// Reported is the number of confirmed track boxes output.
	Reported int
	// Active is the number of live (confirmed or tentative) tracks.
	Active int
}

// Collector accumulates frame statistics.
type Collector struct {
	stats []FrameStat
}

// Record appends one frame's statistics.
func (c *Collector) Record(fs FrameStat) {
	c.stats = append(c.stats, fs)
}

// Stats returns the recorded statistics (shared slice; callers must not
// mutate).
func (c *Collector) Stats() []FrameStat { return c.stats }

// Len returns the number of recorded frames.
func (c *Collector) Len() int { return len(c.stats) }

// Summary aggregates a trace.
type Summary struct {
	Frames int
	// MeanEvents is the mean raw events per frame (the n of Eq. 2 before
	// the conservative β α A B estimate).
	MeanEvents float64
	// MeanProposals is the mean region proposals per frame.
	MeanProposals float64
	// MeanActive is the mean live tracks per frame — the NT of Eq. 6.
	MeanActive float64
	// MaxActive is the peak concurrent tracks (must stay <= NT pool size).
	MaxActive int
	// MeanReported is the mean confirmed boxes per frame.
	MeanReported float64
}

// Summarize reduces the trace to its summary.
func (c *Collector) Summarize() Summary {
	var s Summary
	s.Frames = len(c.stats)
	if s.Frames == 0 {
		return s
	}
	var ev, pr, ac, rp int
	for _, fs := range c.stats {
		ev += fs.Events
		pr += fs.Proposals
		ac += fs.Active
		rp += fs.Reported
		if fs.Active > s.MaxActive {
			s.MaxActive = fs.Active
		}
	}
	n := float64(s.Frames)
	s.MeanEvents = float64(ev) / n
	s.MeanProposals = float64(pr) / n
	s.MeanActive = float64(ac) / n
	s.MeanReported = float64(rp) / n
	return s
}

// Header is the CSV header emitted by WriteCSV.
const Header = "frame,end_us,events,proposals,reported,active"

// WriteCSV encodes the trace as CSV.
func WriteCSV(w io.Writer, stats []FrameStat) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, Header); err != nil {
		return fmt.Errorf("trace: writing header: %w", err)
	}
	for _, fs := range stats {
		if _, err := fmt.Fprintf(bw, "%d,%d,%d,%d,%d,%d\n",
			fs.Frame, fs.EndUS, fs.Events, fs.Proposals, fs.Reported, fs.Active); err != nil {
			return fmt.Errorf("trace: writing frame %d: %w", fs.Frame, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("trace: flushing: %w", err)
	}
	return nil
}
