package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestCollectorAndSummary(t *testing.T) {
	var c Collector
	c.Record(FrameStat{Frame: 0, EndUS: 66_000, Events: 100, Proposals: 2, Reported: 1, Active: 2})
	c.Record(FrameStat{Frame: 1, EndUS: 132_000, Events: 200, Proposals: 4, Reported: 3, Active: 4})
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	s := c.Summarize()
	if s.Frames != 2 {
		t.Errorf("Frames = %d", s.Frames)
	}
	if math.Abs(s.MeanEvents-150) > 1e-9 {
		t.Errorf("MeanEvents = %v", s.MeanEvents)
	}
	if math.Abs(s.MeanProposals-3) > 1e-9 {
		t.Errorf("MeanProposals = %v", s.MeanProposals)
	}
	if math.Abs(s.MeanActive-3) > 1e-9 {
		t.Errorf("MeanActive = %v", s.MeanActive)
	}
	if s.MaxActive != 4 {
		t.Errorf("MaxActive = %d", s.MaxActive)
	}
	if math.Abs(s.MeanReported-2) > 1e-9 {
		t.Errorf("MeanReported = %v", s.MeanReported)
	}
}

func TestEmptySummary(t *testing.T) {
	var c Collector
	s := c.Summarize()
	if s.Frames != 0 || s.MeanEvents != 0 || s.MaxActive != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestWriteCSV(t *testing.T) {
	var c Collector
	c.Record(FrameStat{Frame: 0, EndUS: 66_000, Events: 10, Proposals: 1, Reported: 1, Active: 1})
	c.Record(FrameStat{Frame: 1, EndUS: 132_000, Events: 20, Proposals: 2, Reported: 2, Active: 2})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, c.Stats()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines", len(lines))
	}
	if lines[0] != Header {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "0,66000,10,1,1,1" || lines[2] != "1,132000,20,2,2,2" {
		t.Errorf("rows = %q, %q", lines[1], lines[2])
	}
}
