package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"ebbiot/internal/geometry"
)

func box(x, y, w, h int) geometry.Box { return geometry.NewBox(x, y, w, h) }

func TestMatchFramePerfect(t *testing.T) {
	s := FrameSample{
		Tracker:     []geometry.Box{box(10, 10, 20, 20), box(100, 50, 30, 15)},
		GroundTruth: []geometry.Box{box(10, 10, 20, 20), box(100, 50, 30, 15)},
	}
	c := MatchFrame(s, 0.5)
	if c.TruePositives != 2 || c.Proposals != 2 || c.GroundTruth != 2 {
		t.Errorf("counts = %+v", c)
	}
	if c.Precision() != 1 || c.Recall() != 1 {
		t.Errorf("P=%v R=%v", c.Precision(), c.Recall())
	}
}

func TestMatchFrameMisses(t *testing.T) {
	s := FrameSample{
		Tracker:     []geometry.Box{box(10, 10, 20, 20)},
		GroundTruth: []geometry.Box{box(100, 100, 20, 20)},
	}
	c := MatchFrame(s, 0.5)
	if c.TruePositives != 0 {
		t.Errorf("disjoint boxes matched: %+v", c)
	}
	if c.Precision() != 0 || c.Recall() != 0 {
		t.Errorf("P=%v R=%v", c.Precision(), c.Recall())
	}
}

func TestMatchFrameOneGTOneTP(t *testing.T) {
	// Two tracker boxes over one ground truth: only one may count.
	g := box(10, 10, 20, 20)
	s := FrameSample{
		Tracker:     []geometry.Box{g, g.Translate(1, 0)},
		GroundTruth: []geometry.Box{g},
	}
	c := MatchFrame(s, 0.5)
	if c.TruePositives != 1 {
		t.Errorf("GT box validated %d tracker boxes, want 1", c.TruePositives)
	}
	if got := c.Precision(); got != 0.5 {
		t.Errorf("precision = %v, want 0.5", got)
	}
}

func TestMatchFrameGreedyPicksBest(t *testing.T) {
	// A tight box and a loose box over the same GT: the tight one wins, and
	// the loose one cannot steal a different GT it barely misses.
	gt := box(10, 10, 20, 20)
	tight := box(10, 10, 20, 20)
	loose := box(5, 5, 30, 30)
	s := FrameSample{Tracker: []geometry.Box{loose, tight}, GroundTruth: []geometry.Box{gt}}
	c := MatchFrame(s, 0.4)
	if c.TruePositives != 1 {
		t.Errorf("TP = %d, want 1", c.TruePositives)
	}
}

func TestMatchFrameThresholdStrict(t *testing.T) {
	// IoU exactly at the threshold must NOT count (strictly greater).
	a := box(0, 0, 10, 10)
	b := box(5, 0, 10, 10) // IoU = 50/150 = 1/3
	s := FrameSample{Tracker: []geometry.Box{a}, GroundTruth: []geometry.Box{b}}
	if c := MatchFrame(s, 1.0/3.0); c.TruePositives != 0 {
		t.Error("IoU equal to threshold should not match")
	}
	if c := MatchFrame(s, 1.0/3.0-1e-9); c.TruePositives != 1 {
		t.Error("IoU just above threshold should match")
	}
}

func TestEmptyFrameConventions(t *testing.T) {
	c := MatchFrame(FrameSample{}, 0.5)
	if c.Precision() != 1 || c.Recall() != 1 {
		t.Errorf("empty frame: P=%v R=%v, want 1,1", c.Precision(), c.Recall())
	}
	// Proposals with no GT: precision 0, recall 1.
	c = MatchFrame(FrameSample{Tracker: []geometry.Box{box(0, 0, 5, 5)}}, 0.5)
	if c.Precision() != 0 || c.Recall() != 1 {
		t.Errorf("spurious proposals: P=%v R=%v", c.Precision(), c.Recall())
	}
	// GT with no proposals: precision 1, recall 0.
	c = MatchFrame(FrameSample{GroundTruth: []geometry.Box{box(0, 0, 5, 5)}}, 0.5)
	if c.Precision() != 1 || c.Recall() != 0 {
		t.Errorf("missed GT: P=%v R=%v", c.Precision(), c.Recall())
	}
}

func TestEvaluateAccumulates(t *testing.T) {
	g := box(10, 10, 20, 20)
	samples := []FrameSample{
		{Tracker: []geometry.Box{g}, GroundTruth: []geometry.Box{g}},
		{Tracker: []geometry.Box{box(100, 100, 10, 10)}, GroundTruth: []geometry.Box{g}},
	}
	c := Evaluate(samples, 0.5)
	if c.TruePositives != 1 || c.Proposals != 2 || c.GroundTruth != 2 {
		t.Errorf("counts = %+v", c)
	}
	if c.Precision() != 0.5 || c.Recall() != 0.5 {
		t.Errorf("P=%v R=%v", c.Precision(), c.Recall())
	}
	if math.Abs(c.F1()-0.5) > 1e-12 {
		t.Errorf("F1 = %v", c.F1())
	}
}

func TestSweepMonotoneNonIncreasing(t *testing.T) {
	// As the IoU threshold rises, precision and recall cannot increase.
	g := box(10, 10, 20, 20)
	samples := []FrameSample{
		{Tracker: []geometry.Box{g}, GroundTruth: []geometry.Box{g}},
		{Tracker: []geometry.Box{g.Translate(3, 2)}, GroundTruth: []geometry.Box{g}},
		{Tracker: []geometry.Box{g.Translate(8, 5)}, GroundTruth: []geometry.Box{g}},
	}
	pts := Sweep(samples, DefaultThresholds())
	for i := 1; i < len(pts); i++ {
		if pts[i].Precision > pts[i-1].Precision+1e-12 {
			t.Errorf("precision increased with threshold: %+v", pts)
		}
		if pts[i].Recall > pts[i-1].Recall+1e-12 {
			t.Errorf("recall increased with threshold: %+v", pts)
		}
	}
}

func TestWeightedAverage(t *testing.T) {
	mk := func(p, r float64) []Point {
		return []Point{{IoUThreshold: 0.5, Precision: p, Recall: r}}
	}
	res := []RecordingResult{
		{Name: "ENG", Points: mk(0.9, 0.8), TrackWeight: 3},
		{Name: "LT4", Points: mk(0.5, 0.4), TrackWeight: 1},
	}
	avg, err := WeightedAverage(res)
	if err != nil {
		t.Fatal(err)
	}
	wantP := (0.9*3 + 0.5*1) / 4
	wantR := (0.8*3 + 0.4*1) / 4
	if math.Abs(avg[0].Precision-wantP) > 1e-12 || math.Abs(avg[0].Recall-wantR) > 1e-12 {
		t.Errorf("avg = %+v, want P=%v R=%v", avg[0], wantP, wantR)
	}
}

func TestWeightedAverageErrors(t *testing.T) {
	if _, err := WeightedAverage(nil); err == nil {
		t.Error("empty input should error")
	}
	mk := func(th float64) []Point { return []Point{{IoUThreshold: th}} }
	if _, err := WeightedAverage([]RecordingResult{
		{Points: mk(0.5), TrackWeight: 0},
		{Points: mk(0.5), TrackWeight: 0},
	}); err == nil {
		t.Error("all-zero weights should error")
	}
	if _, err := WeightedAverage([]RecordingResult{
		{Points: mk(0.5), TrackWeight: 1},
		{Points: mk(0.6), TrackWeight: 1},
	}); err == nil {
		t.Error("mismatched threshold grids should error")
	}
	if _, err := WeightedAverage([]RecordingResult{
		{Points: mk(0.5), TrackWeight: 1},
		{Points: []Point{{IoUThreshold: 0.5}, {IoUThreshold: 0.6}}, TrackWeight: 1},
	}); err == nil {
		t.Error("mismatched point counts should error")
	}
}

func TestPrecisionRecallBoundsProperty(t *testing.T) {
	// Precision and recall always lie in [0, 1]; TP never exceeds either
	// total, for arbitrary box sets.
	prop := func(seed []uint16, th8 uint8) bool {
		var s FrameSample
		for i, v := range seed {
			b := box(int(v%200), int(v/200%150), 1+int(v%30), 1+int(v%20))
			if i%2 == 0 {
				s.Tracker = append(s.Tracker, b)
			} else {
				s.GroundTruth = append(s.GroundTruth, b)
			}
		}
		th := float64(th8%90) / 100
		c := MatchFrame(s, th)
		if c.TruePositives > c.Proposals || c.TruePositives > c.GroundTruth {
			return false
		}
		p, r := c.Precision(), c.Recall()
		return p >= 0 && p <= 1 && r >= 0 && r <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCountsAdd(t *testing.T) {
	a := Counts{TruePositives: 1, Proposals: 2, GroundTruth: 3}
	a.Add(Counts{TruePositives: 4, Proposals: 5, GroundTruth: 6})
	if a != (Counts{TruePositives: 5, Proposals: 7, GroundTruth: 9}) {
		t.Errorf("Add = %+v", a)
	}
}

func TestDefaultThresholds(t *testing.T) {
	th := DefaultThresholds()
	if len(th) != 5 || th[0] != 0.3 || th[len(th)-1] != 0.7 {
		t.Errorf("thresholds = %v", th)
	}
}
