// Package metrics implements the tracker evaluation protocol of Section
// III-B: tracker boxes and ground-truth boxes are sampled at fixed time
// intervals; a tracker box is a true positive when its best IoU (Eq. 9)
// against the ground truth exceeds a threshold; precision is
// TP / proposals, recall is TP / ground-truth boxes, accumulated over all
// sampled instants; recordings are combined by weighting each recording's
// precision/recall by its number of ground-truth tracks (Section III-C).
package metrics

import (
	"fmt"
	"sort"

	"ebbiot/internal/geometry"
)

// FrameSample is one evaluation instant: the tracker's boxes and the
// ground-truth boxes at that time.
type FrameSample struct {
	Tracker     []geometry.Box
	GroundTruth []geometry.Box
}

// Counts accumulates the raw matching tallies at one IoU threshold.
type Counts struct {
	// TruePositives is the number of tracker boxes whose matched IoU
	// exceeded the threshold.
	TruePositives int
	// Proposals is the total number of tracker boxes.
	Proposals int
	// GroundTruth is the total number of ground-truth boxes.
	GroundTruth int
}

// Add accumulates another tally.
func (c *Counts) Add(o Counts) {
	c.TruePositives += o.TruePositives
	c.Proposals += o.Proposals
	c.GroundTruth += o.GroundTruth
}

// Precision returns TP / proposals (1 when there are no proposals, because
// an empty output makes no false claims).
func (c Counts) Precision() float64 {
	if c.Proposals == 0 {
		return 1
	}
	return float64(c.TruePositives) / float64(c.Proposals)
}

// Recall returns TP / ground truth (1 when there is nothing to find).
func (c Counts) Recall() float64 {
	if c.GroundTruth == 0 {
		return 1
	}
	return float64(c.TruePositives) / float64(c.GroundTruth)
}

// F1 returns the harmonic mean of precision and recall.
func (c Counts) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// MatchFrame matches one frame's tracker boxes to ground truth at the given
// IoU threshold using greedy best-IoU assignment (each ground-truth box may
// validate at most one tracker box).
func MatchFrame(s FrameSample, iouThreshold float64) Counts {
	c := Counts{Proposals: len(s.Tracker), GroundTruth: len(s.GroundTruth)}
	type pair struct {
		ti, gi int
		iou    float64
	}
	var pairs []pair
	for ti, tb := range s.Tracker {
		for gi, gb := range s.GroundTruth {
			if iou := tb.IoU(gb); iou > iouThreshold {
				pairs = append(pairs, pair{ti: ti, gi: gi, iou: iou})
			}
		}
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].iou != pairs[b].iou {
			return pairs[a].iou > pairs[b].iou
		}
		if pairs[a].ti != pairs[b].ti {
			return pairs[a].ti < pairs[b].ti
		}
		return pairs[a].gi < pairs[b].gi
	})
	tUsed := make([]bool, len(s.Tracker))
	gUsed := make([]bool, len(s.GroundTruth))
	for _, p := range pairs {
		if tUsed[p.ti] || gUsed[p.gi] {
			continue
		}
		tUsed[p.ti] = true
		gUsed[p.gi] = true
		c.TruePositives++
	}
	return c
}

// Evaluate matches every frame sample at the threshold and returns the
// accumulated counts.
func Evaluate(samples []FrameSample, iouThreshold float64) Counts {
	var total Counts
	for _, s := range samples {
		total.Add(MatchFrame(s, iouThreshold))
	}
	return total
}

// Point is one (threshold, precision, recall) sample of the Fig. 4 curves.
type Point struct {
	IoUThreshold float64
	Precision    float64
	Recall       float64
}

// Sweep evaluates the samples across the given IoU thresholds, producing
// one curve point per threshold (the x axis of Fig. 4).
func Sweep(samples []FrameSample, thresholds []float64) []Point {
	out := make([]Point, 0, len(thresholds))
	for _, th := range thresholds {
		c := Evaluate(samples, th)
		out = append(out, Point{IoUThreshold: th, Precision: c.Precision(), Recall: c.Recall()})
	}
	return out
}

// RecordingResult couples one recording's curve with its ground-truth track
// count, the weight used when combining recordings.
type RecordingResult struct {
	Name   string
	Points []Point
	// TrackWeight is the number of ground-truth tracks in the recording.
	TrackWeight int
}

// WeightedAverage combines per-recording curves into one curve, weighting
// each recording by its ground-truth track count as in Section III-C. All
// recordings must share the same threshold grid.
func WeightedAverage(results []RecordingResult) ([]Point, error) {
	if len(results) == 0 {
		return nil, fmt.Errorf("metrics: no recordings to average")
	}
	n := len(results[0].Points)
	totalW := 0.0
	for _, r := range results {
		if len(r.Points) != n {
			return nil, fmt.Errorf("metrics: recording %q has %d points, want %d", r.Name, len(r.Points), n)
		}
		if r.TrackWeight < 0 {
			return nil, fmt.Errorf("metrics: recording %q has negative weight", r.Name)
		}
		totalW += float64(r.TrackWeight)
	}
	if totalW == 0 {
		return nil, fmt.Errorf("metrics: all recordings have zero weight")
	}
	out := make([]Point, n)
	for i := 0; i < n; i++ {
		th := results[0].Points[i].IoUThreshold
		var p, rc float64
		for _, r := range results {
			if r.Points[i].IoUThreshold != th {
				return nil, fmt.Errorf("metrics: recording %q threshold grid mismatch", r.Name)
			}
			w := float64(r.TrackWeight) / totalW
			p += w * r.Points[i].Precision
			rc += w * r.Points[i].Recall
		}
		out[i] = Point{IoUThreshold: th, Precision: p, Recall: rc}
	}
	return out, nil
}

// DefaultThresholds is the IoU threshold grid used for the Fig. 4
// reproduction.
func DefaultThresholds() []float64 {
	return []float64{0.3, 0.4, 0.5, 0.6, 0.7}
}
