package vis

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve for Chart.
type Series struct {
	Name string
	// X and Y must have equal length.
	X, Y []float64
}

// Chart renders one or more series as an ASCII scatter/line chart of the
// given size, used by cmd/ebbiot-eval to draw the Fig. 4 curves in the
// terminal. Each series is plotted with its own marker ('A' for the first,
// 'B' for the second, ...); coincident points show the later series'
// marker.
func Chart(series []Series, width, height int) (string, error) {
	if width < 10 || height < 4 {
		return "", fmt.Errorf("vis: chart too small (%dx%d)", width, height)
	}
	if len(series) == 0 {
		return "", fmt.Errorf("vis: no series")
	}
	if len(series) > 26 {
		return "", fmt.Errorf("vis: too many series (%d)", len(series))
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		if len(s.X) != len(s.Y) {
			return "", fmt.Errorf("vis: series %q has %d x values and %d y values", s.Name, len(s.X), len(s.Y))
		}
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if math.IsInf(minX, 1) {
		return "", fmt.Errorf("vis: all series empty")
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		marker := byte('A' + si)
		for i := range s.X {
			cx := int(math.Round((s.X[i] - minX) / (maxX - minX) * float64(width-1)))
			cy := int(math.Round((s.Y[i] - minY) / (maxY - minY) * float64(height-1)))
			grid[height-1-cy][cx] = marker
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "%8.3f +%s\n", maxY, strings.Repeat("-", width))
	for _, row := range grid {
		sb.WriteString("         |")
		sb.Write(row)
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "%8.3f +%s\n", minY, strings.Repeat("-", width))
	fmt.Fprintf(&sb, "          %-8.3f%s%8.3f\n", minX, strings.Repeat(" ", max(width-16, 1)), maxX)
	for si, s := range series {
		fmt.Fprintf(&sb, "          %c = %s\n", 'A'+si, s.Name)
	}
	return sb.String(), nil
}
