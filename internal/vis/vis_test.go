package vis

import (
	"bytes"
	"strings"
	"testing"

	"ebbiot/internal/geometry"
	"ebbiot/internal/imgproc"
)

func TestASCIIFrame(t *testing.T) {
	b := imgproc.NewBitmap(8, 4)
	b.Set(0, 0)
	b.Set(7, 3)
	s := ASCIIFrame(b, nil, 1)
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines", len(lines))
	}
	// Row 0 (bottom) is the last line.
	if lines[3][0] != '#' {
		t.Errorf("pixel (0,0) missing:\n%s", s)
	}
	if lines[0][7] != '#' {
		t.Errorf("pixel (7,3) missing:\n%s", s)
	}
}

func TestASCIIFrameBoxOverlay(t *testing.T) {
	b := imgproc.NewBitmap(10, 10)
	s := ASCIIFrame(b, []geometry.Box{geometry.NewBox(2, 2, 4, 3)}, 1)
	if !strings.Contains(s, "+") {
		t.Error("box border not rendered")
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	// Bottom edge of the box is row 2 -> line index 10-1-2 = 7.
	if lines[7][2] != '+' || lines[7][5] != '+' {
		t.Errorf("box corners missing:\n%s", s)
	}
}

func TestASCIIFrameScale(t *testing.T) {
	b := imgproc.NewBitmap(240, 180)
	b.Set(100, 90)
	s := ASCIIFrame(b, nil, 4)
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 45 {
		t.Fatalf("scaled height = %d lines, want 45", len(lines))
	}
	if len(lines[0]) != 60 {
		t.Fatalf("scaled width = %d chars, want 60", len(lines[0]))
	}
	if !strings.Contains(s, "#") {
		t.Error("set pixel lost in downscale")
	}
}

func TestASCIIHistogram(t *testing.T) {
	s := ASCIIHistogram([]int{0, 5, 10}, 10)
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines", len(lines))
	}
	if strings.Count(lines[2], "*") != 10 {
		t.Errorf("peak bar wrong: %q", lines[2])
	}
	if strings.Count(lines[1], "*") != 5 {
		t.Errorf("half bar wrong: %q", lines[1])
	}
	if strings.Count(lines[0], "*") != 0 {
		t.Errorf("zero bar wrong: %q", lines[0])
	}
}

func TestASCIIHistogramEmpty(t *testing.T) {
	// All-zero histogram must not divide by zero.
	s := ASCIIHistogram([]int{0, 0}, 10)
	if !strings.Contains(s, "0") {
		t.Error("histogram output missing values")
	}
}

func TestWritePGM(t *testing.T) {
	b := imgproc.NewBitmap(3, 2)
	b.Set(1, 0)
	var buf bytes.Buffer
	if err := WritePGM(&buf, b); err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	if !bytes.HasPrefix(out, []byte("P5\n3 2\n255\n")) {
		t.Fatalf("bad header: %q", out[:11])
	}
	pix := out[len(out)-6:]
	// Top row first: (0,1),(1,1),(2,1) then (0,0),(1,0),(2,0).
	want := []byte{0, 0, 0, 0, 255, 0}
	if !bytes.Equal(pix, want) {
		t.Errorf("pixels = %v, want %v", pix, want)
	}
}

func TestWritePPM(t *testing.T) {
	b := imgproc.NewBitmap(4, 4)
	b.Set(1, 1)
	var buf bytes.Buffer
	err := WritePPM(&buf, b,
		[]geometry.Box{geometry.NewBox(0, 0, 4, 4)},
		[]geometry.Box{geometry.NewBox(1, 1, 2, 2)})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	if !bytes.HasPrefix(out, []byte("P6\n4 4\n255\n")) {
		t.Fatalf("bad header: %q", out[:11])
	}
	if len(out) != 11+4*4*3 {
		t.Errorf("payload size = %d", len(out)-11)
	}
	// The tracker box border (drawn last) must appear in red somewhere.
	found := false
	for i := 11; i+2 < len(out); i += 3 {
		if out[i] == ColorBox.R && out[i+1] == ColorBox.G && out[i+2] == ColorBox.B {
			found = true
			break
		}
	}
	if !found {
		t.Error("tracker box colour missing from PPM")
	}
}

func TestChartBasic(t *testing.T) {
	s := []Series{
		{Name: "precision", X: []float64{0.3, 0.5, 0.7}, Y: []float64{0.9, 0.8, 0.7}},
		{Name: "recall", X: []float64{0.3, 0.5, 0.7}, Y: []float64{0.85, 0.75, 0.65}},
	}
	out, err := Chart(s, 40, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "A") || !strings.Contains(out, "B") {
		t.Errorf("markers missing:\n%s", out)
	}
	if !strings.Contains(out, "A = precision") || !strings.Contains(out, "B = recall") {
		t.Errorf("legend missing:\n%s", out)
	}
}

func TestChartErrors(t *testing.T) {
	ok := []Series{{Name: "x", X: []float64{1}, Y: []float64{1}}}
	if _, err := Chart(ok, 5, 5); err == nil {
		t.Error("tiny chart should error")
	}
	if _, err := Chart(nil, 40, 10); err == nil {
		t.Error("no series should error")
	}
	bad := []Series{{Name: "x", X: []float64{1, 2}, Y: []float64{1}}}
	if _, err := Chart(bad, 40, 10); err == nil {
		t.Error("ragged series should error")
	}
	empty := []Series{{Name: "x"}}
	if _, err := Chart(empty, 40, 10); err == nil {
		t.Error("empty series should error")
	}
}

func TestChartDegenerateRanges(t *testing.T) {
	// Constant series must not divide by zero.
	s := []Series{{Name: "flat", X: []float64{1, 2, 3}, Y: []float64{5, 5, 5}}}
	if _, err := Chart(s, 30, 6); err != nil {
		t.Errorf("flat series should chart: %v", err)
	}
}
