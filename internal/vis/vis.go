// Package vis renders EBBI frames, histograms and tracker boxes as ASCII
// art and as portable graymap/pixmap (PGM/PPM) images, reproducing the
// visual content of the paper's Fig. 3 without any graphics dependency.
package vis

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"ebbiot/internal/geometry"
	"ebbiot/internal/imgproc"
)

// ASCIIFrame renders the bitmap with optional boxes overlaid, downscaled by
// the given factor so a DAVIS frame fits a terminal (scale 4 gives 60x45
// characters). Box borders render as '+', set pixels as '#'.
func ASCIIFrame(b *imgproc.Bitmap, boxes []geometry.Box, scale int) string {
	if scale < 1 {
		scale = 1
	}
	w := (b.W + scale - 1) / scale
	h := (b.H + scale - 1) / scale
	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(".", w))
	}
	for y := 0; y < b.H; y++ {
		for x := 0; x < b.W; x++ {
			if b.Get(x, y) != 0 {
				grid[y/scale][x/scale] = '#'
			}
		}
	}
	mark := func(x, y int) {
		sx, sy := x/scale, y/scale
		if sx >= 0 && sx < w && sy >= 0 && sy < h {
			grid[sy][sx] = '+'
		}
	}
	for _, box := range boxes {
		for x := box.X; x < box.MaxX(); x++ {
			mark(x, box.Y)
			mark(x, box.MaxY()-1)
		}
		for y := box.Y; y < box.MaxY(); y++ {
			mark(box.X, y)
			mark(box.MaxX()-1, y)
		}
	}
	var sb strings.Builder
	sb.Grow((w + 1) * h)
	for y := h - 1; y >= 0; y-- { // row 0 at the bottom
		sb.Write(grid[y])
		sb.WriteByte('\n')
	}
	return sb.String()
}

// ASCIIHistogram renders a histogram as horizontal bars, one row per bin
// group, for the Fig. 3 side panels.
func ASCIIHistogram(h []int, maxWidth int) string {
	if maxWidth < 1 {
		maxWidth = 40
	}
	peak := 0
	for _, v := range h {
		if v > peak {
			peak = v
		}
	}
	var sb strings.Builder
	for i, v := range h {
		bar := 0
		if peak > 0 {
			bar = v * maxWidth / peak
		}
		fmt.Fprintf(&sb, "%3d |%s %d\n", i, strings.Repeat("*", bar), v)
	}
	return sb.String()
}

// WritePGM emits the bitmap as a binary PGM (P5) image, set pixels white.
// The image is flipped so row 0 (sensor bottom) appears at the image
// bottom.
func WritePGM(w io.Writer, b *imgproc.Bitmap) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P5\n%d %d\n255\n", b.W, b.H); err != nil {
		return fmt.Errorf("vis: writing PGM header: %w", err)
	}
	for y := b.H - 1; y >= 0; y-- {
		for x := 0; x < b.W; x++ {
			v := byte(0)
			if b.Get(x, y) != 0 {
				v = 255
			}
			if err := bw.WriteByte(v); err != nil {
				return fmt.Errorf("vis: writing PGM pixel: %w", err)
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("vis: flushing PGM: %w", err)
	}
	return nil
}

// RGB is an 8-bit colour.
type RGB struct{ R, G, B uint8 }

// Standard overlay colours.
var (
	ColorBox    = RGB{R: 255, G: 64, B: 64}
	ColorGT     = RGB{R: 64, G: 255, B: 64}
	ColorPixels = RGB{R: 230, G: 230, B: 230}
)

// WritePPM emits the bitmap as a binary PPM (P6) with two box sets overlaid
// (tracker boxes and ground truth), for qualitative inspection of tracking
// output.
func WritePPM(w io.Writer, b *imgproc.Bitmap, trackerBoxes, gtBoxes []geometry.Box) error {
	img := make([]RGB, b.W*b.H)
	for y := 0; y < b.H; y++ {
		for x := 0; x < b.W; x++ {
			if b.Get(x, y) != 0 {
				img[y*b.W+x] = ColorPixels
			}
		}
	}
	draw := func(boxes []geometry.Box, c RGB) {
		for _, box := range boxes {
			for x := box.X; x < box.MaxX(); x++ {
				setPix(img, b.W, b.H, x, box.Y, c)
				setPix(img, b.W, b.H, x, box.MaxY()-1, c)
			}
			for y := box.Y; y < box.MaxY(); y++ {
				setPix(img, b.W, b.H, box.X, y, c)
				setPix(img, b.W, b.H, box.MaxX()-1, y, c)
			}
		}
	}
	draw(gtBoxes, ColorGT)
	draw(trackerBoxes, ColorBox)

	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P6\n%d %d\n255\n", b.W, b.H); err != nil {
		return fmt.Errorf("vis: writing PPM header: %w", err)
	}
	for y := b.H - 1; y >= 0; y-- {
		for x := 0; x < b.W; x++ {
			p := img[y*b.W+x]
			if _, err := bw.Write([]byte{p.R, p.G, p.B}); err != nil {
				return fmt.Errorf("vis: writing PPM pixel: %w", err)
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("vis: flushing PPM: %w", err)
	}
	return nil
}

func setPix(img []RGB, w, h, x, y int, c RGB) {
	if x >= 0 && x < w && y >= 0 && y < h {
		img[y*w+x] = c
	}
}
