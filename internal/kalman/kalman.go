// Package kalman implements the Kalman-filter tracking baseline of Section
// II-C: a constant-velocity motion model per track, with region-proposal
// centroids as measurements (state centroid (x, y), following Lin et al.,
// the paper's reference [14]).
//
// Data association is greedy nearest-centroid with a gating distance, and
// track lifecycle (confirmation, misses, seeding) mirrors the overlap
// tracker so the comparison isolates the filtering algorithm itself. Box
// extents are carried alongside the filter state (smoothed exponentially),
// since the KF state proper contains only centroid kinematics.
package kalman

import (
	"fmt"
	"math"

	"ebbiot/internal/assign"
	"ebbiot/internal/geometry"
	"ebbiot/internal/matrix"
)

// Association selects the data-association strategy.
type Association int

// Association strategies.
const (
	// AssociateGreedy is nearest-first greedy matching — what an embedded
	// implementation ships, and the default.
	AssociateGreedy Association = iota + 1
	// AssociateOptimal solves the assignment exactly (Hungarian); used to
	// measure how much greedy association costs.
	AssociateOptimal
)

// Filter is one track's Kalman state: x = [cx, cy, vx, vy]^T with the
// constant-velocity transition
//
//	F = | 1 0 1 0 |      H = | 1 0 0 0 |
//	    | 0 1 0 1 |          | 0 1 0 0 |
//	    | 0 0 1 0 |
//	    | 0 0 0 1 |
//
// (time unit = one frame).
type Filter struct {
	// X is the 4x1 state vector.
	X *matrix.Mat
	// P is the 4x4 state covariance.
	P *matrix.Mat
	// q and r are process and measurement noise intensities.
	q, r float64
}

// NewFilter returns a filter initialised at the measured centroid with zero
// velocity and large velocity uncertainty.
func NewFilter(cx, cy, processNoise, measNoise float64) *Filter {
	x := matrix.New(4, 1)
	x.Set(0, 0, cx)
	x.Set(1, 0, cy)
	p := matrix.New(4, 4)
	p.Set(0, 0, measNoise)
	p.Set(1, 1, measNoise)
	p.Set(2, 2, 100) // velocity unknown at birth
	p.Set(3, 3, 100)
	return &Filter{X: x, P: p, q: processNoise, r: measNoise}
}

func transition() *matrix.Mat {
	f := matrix.Identity(4)
	f.Set(0, 2, 1)
	f.Set(1, 3, 1)
	return f
}

func measurement() *matrix.Mat {
	h := matrix.New(2, 4)
	h.Set(0, 0, 1)
	h.Set(1, 1, 1)
	return h
}

// processNoiseMat returns Q for a piecewise-constant white acceleration
// model with dt = 1 frame.
func processNoiseMat(q float64) *matrix.Mat {
	m := matrix.New(4, 4)
	// [dt^4/4, dt^3/2; dt^3/2, dt^2] blocks per axis with dt = 1.
	m.Set(0, 0, q/4)
	m.Set(0, 2, q/2)
	m.Set(2, 0, q/2)
	m.Set(2, 2, q)
	m.Set(1, 1, q/4)
	m.Set(1, 3, q/2)
	m.Set(3, 1, q/2)
	m.Set(3, 3, q)
	return m
}

// Predict advances the state one frame: x = Fx, P = FPF^T + Q.
func (f *Filter) Predict() error {
	ft := transition()
	x, err := ft.Mul(f.X)
	if err != nil {
		return fmt.Errorf("kalman: predict state: %w", err)
	}
	fp, err := ft.Mul(f.P)
	if err != nil {
		return fmt.Errorf("kalman: predict covariance: %w", err)
	}
	fpft, err := fp.Mul(ft.T())
	if err != nil {
		return fmt.Errorf("kalman: predict covariance: %w", err)
	}
	p, err := fpft.Add(processNoiseMat(f.q))
	if err != nil {
		return fmt.Errorf("kalman: predict covariance: %w", err)
	}
	f.X = x
	f.P, err = p.Symmetrize()
	if err != nil {
		return fmt.Errorf("kalman: predict covariance: %w", err)
	}
	return nil
}

// Update folds in a centroid measurement (mx, my) with the standard KF
// equations: K = PH^T (HPH^T + R)^-1; x += K(z - Hx); P = (I - KH)P.
func (f *Filter) Update(mx, my float64) error {
	h := measurement()
	z := matrix.New(2, 1)
	z.Set(0, 0, mx)
	z.Set(1, 0, my)

	hx, err := h.Mul(f.X)
	if err != nil {
		return fmt.Errorf("kalman: innovation: %w", err)
	}
	innov, err := z.Sub(hx)
	if err != nil {
		return fmt.Errorf("kalman: innovation: %w", err)
	}
	ph, err := f.P.Mul(h.T())
	if err != nil {
		return fmt.Errorf("kalman: gain: %w", err)
	}
	hph, err := h.Mul(ph)
	if err != nil {
		return fmt.Errorf("kalman: gain: %w", err)
	}
	r := matrix.Identity(2).Scale(f.r)
	s, err := hph.Add(r)
	if err != nil {
		return fmt.Errorf("kalman: gain: %w", err)
	}
	sInv, err := s.Inverse()
	if err != nil {
		return fmt.Errorf("kalman: gain: %w", err)
	}
	k, err := ph.Mul(sInv)
	if err != nil {
		return fmt.Errorf("kalman: gain: %w", err)
	}
	dx, err := k.Mul(innov)
	if err != nil {
		return fmt.Errorf("kalman: update state: %w", err)
	}
	f.X, err = f.X.Add(dx)
	if err != nil {
		return fmt.Errorf("kalman: update state: %w", err)
	}
	kh, err := k.Mul(h)
	if err != nil {
		return fmt.Errorf("kalman: update covariance: %w", err)
	}
	ikh, err := matrix.Identity(4).Sub(kh)
	if err != nil {
		return fmt.Errorf("kalman: update covariance: %w", err)
	}
	p, err := ikh.Mul(f.P)
	if err != nil {
		return fmt.Errorf("kalman: update covariance: %w", err)
	}
	f.P, err = p.Symmetrize()
	if err != nil {
		return fmt.Errorf("kalman: update covariance: %w", err)
	}
	return nil
}

// Centroid returns the current (cx, cy) estimate.
func (f *Filter) Centroid() (cx, cy float64) { return f.X.At(0, 0), f.X.At(1, 0) }

// Velocity returns the current (vx, vy) estimate in px/frame.
func (f *Filter) Velocity() (vx, vy float64) { return f.X.At(2, 0), f.X.At(3, 0) }

// Config parameterises the multi-track KF tracker.
type Config struct {
	// MaxTracks mirrors the OT pool size NT.
	MaxTracks int
	// GateDistance is the maximum centroid distance (pixels) for
	// associating a proposal with a track.
	GateDistance float64
	// ProcessNoise and MeasurementNoise are the KF intensities.
	ProcessNoise, MeasurementNoise float64
	// SizeBlend smooths the carried box extents toward each associated
	// proposal.
	SizeBlend float64
	// MinHits confirms a track; MaxMisses frees it.
	MinHits, MaxMisses int
	// Bounds is the sensor array.
	Bounds geometry.Box
	// Association selects greedy (default when zero) or optimal matching.
	Association Association
}

// DefaultConfig returns parameters matched to the OT defaults.
func DefaultConfig() Config {
	return Config{
		MaxTracks:        8,
		GateDistance:     40,
		ProcessNoise:     1.0,
		MeasurementNoise: 4.0,
		SizeBlend:        0.3,
		MinHits:          2,
		MaxMisses:        3,
		Bounds:           geometry.NewBox(0, 0, 240, 180),
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.MaxTracks <= 0 {
		return fmt.Errorf("kalman: MaxTracks must be positive, got %d", c.MaxTracks)
	}
	if c.GateDistance <= 0 {
		return fmt.Errorf("kalman: GateDistance must be positive, got %v", c.GateDistance)
	}
	if c.ProcessNoise <= 0 || c.MeasurementNoise <= 0 {
		return fmt.Errorf("kalman: noise intensities must be positive")
	}
	if c.SizeBlend < 0 || c.SizeBlend > 1 {
		return fmt.Errorf("kalman: SizeBlend must be in [0,1], got %v", c.SizeBlend)
	}
	if c.MaxMisses < 1 {
		return fmt.Errorf("kalman: MaxMisses must be >= 1, got %d", c.MaxMisses)
	}
	if c.Bounds.Empty() {
		return fmt.Errorf("kalman: empty bounds")
	}
	return nil
}

type track struct {
	id     int
	filter *Filter
	w, h   float64
	hits   int
	misses int
	valid  bool
}

// Report is one confirmed track's per-frame output.
type Report struct {
	ID     int
	Box    geometry.Box
	VX, VY float64
}

// Tracker is the multi-object KF tracker.
type Tracker struct {
	cfg    Config
	tracks []track
	nextID int
}

// New returns a Tracker.
func New(cfg Config) (*Tracker, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Tracker{cfg: cfg, tracks: make([]track, cfg.MaxTracks)}, nil
}

// ActiveTracks returns the number of live tracks.
func (t *Tracker) ActiveTracks() int {
	n := 0
	for i := range t.tracks {
		if t.tracks[i].valid {
			n++
		}
	}
	return n
}

// associate returns pairs[trackIndex] = proposal index (or -1) under the
// configured strategy, with gating applied in both.
func (t *Tracker) associate(proposals []geometry.Box) ([]int, error) {
	pairs := make([]int, len(t.tracks))
	for i := range pairs {
		pairs[i] = -1
	}
	if len(proposals) == 0 {
		return pairs, nil
	}
	// Build the gated cost matrix over live tracks only.
	live := make([]int, 0, len(t.tracks))
	for i := range t.tracks {
		if t.tracks[i].valid {
			live = append(live, i)
		}
	}
	if len(live) == 0 {
		return pairs, nil
	}
	cost := make([][]float64, len(live))
	for li, ti := range live {
		cost[li] = make([]float64, len(proposals))
		cx, cy := t.tracks[ti].filter.Centroid()
		for j, p := range proposals {
			px, py := p.Center()
			d := math.Hypot(px-cx, py-cy)
			if d <= t.cfg.GateDistance {
				cost[li][j] = d
			} else {
				cost[li][j] = assign.Inf
			}
		}
	}
	var rowTo []int
	var err error
	if t.cfg.Association == AssociateOptimal {
		rowTo, err = assign.Hungarian(cost)
	} else {
		rowTo, err = assign.Greedy(cost)
	}
	if err != nil {
		return nil, fmt.Errorf("kalman: association: %w", err)
	}
	for li, pj := range rowTo {
		pairs[live[li]] = pj
	}
	return pairs, nil
}

// Step advances all tracks one frame with the given proposals and returns
// confirmed-track reports.
func (t *Tracker) Step(proposals []geometry.Box) ([]Report, error) {
	// Predict.
	for i := range t.tracks {
		if !t.tracks[i].valid {
			continue
		}
		if err := t.tracks[i].filter.Predict(); err != nil {
			return nil, err
		}
	}

	// Association within the gate: greedy nearest-first by default, or the
	// exact Hungarian assignment for the association ablation.
	pairs, err := t.associate(proposals)
	if err != nil {
		return nil, err
	}
	trackUsed := make([]bool, len(t.tracks))
	propUsed := make([]bool, len(proposals))
	for ti, pj := range pairs {
		if pj < 0 {
			continue
		}
		trackUsed[ti] = true
		propUsed[pj] = true
		tr := &t.tracks[ti]
		px, py := proposals[pj].Center()
		if err := tr.filter.Update(px, py); err != nil {
			return nil, err
		}
		sb := t.cfg.SizeBlend
		tr.w = (1-sb)*tr.w + sb*float64(proposals[pj].W)
		tr.h = (1-sb)*tr.h + sb*float64(proposals[pj].H)
		tr.hits++
		tr.misses = 0
	}

	// Missed tracks age out.
	for i := range t.tracks {
		tr := &t.tracks[i]
		if !tr.valid || trackUsed[i] {
			continue
		}
		tr.misses++
		if tr.misses > t.cfg.MaxMisses {
			t.tracks[i] = track{}
		}
	}

	// Seed new tracks from unassociated proposals.
	for j, p := range proposals {
		if propUsed[j] {
			continue
		}
		slot := -1
		for i := range t.tracks {
			if !t.tracks[i].valid {
				slot = i
				break
			}
		}
		if slot < 0 {
			break
		}
		cx, cy := p.Center()
		t.tracks[slot] = track{
			id:     t.nextID,
			filter: NewFilter(cx, cy, t.cfg.ProcessNoise, t.cfg.MeasurementNoise),
			w:      float64(p.W),
			h:      float64(p.H),
			hits:   1,
			valid:  true,
		}
		t.nextID++
	}

	// Drop tracks that left the frame.
	for i := range t.tracks {
		tr := &t.tracks[i]
		if !tr.valid {
			continue
		}
		cx, cy := tr.filter.Centroid()
		if cx < float64(t.cfg.Bounds.X)-tr.w || cx > float64(t.cfg.Bounds.MaxX())+tr.w ||
			cy < float64(t.cfg.Bounds.Y)-tr.h || cy > float64(t.cfg.Bounds.MaxY())+tr.h {
			t.tracks[i] = track{}
		}
	}

	// Reports.
	var out []Report
	for i := range t.tracks {
		tr := &t.tracks[i]
		if !tr.valid || tr.hits < t.cfg.MinHits {
			continue
		}
		cx, cy := tr.filter.Centroid()
		vx, vy := tr.filter.Velocity()
		b := geometry.FBox{X: cx - tr.w/2, Y: cy - tr.h/2, W: tr.w, H: tr.h}.Round().Clamp(t.cfg.Bounds)
		if b.Empty() {
			continue
		}
		out = append(out, Report{ID: tr.id, Box: b, VX: vx, VY: vy})
	}
	return out, nil
}
