package kalman

import (
	"math"
	"testing"

	"ebbiot/internal/geometry"
)

func TestFilterConvergesToConstantVelocity(t *testing.T) {
	f := NewFilter(0, 0, 1.0, 4.0)
	// Feed measurements of an object moving at (3, -1) px/frame.
	for k := 1; k <= 30; k++ {
		if err := f.Predict(); err != nil {
			t.Fatal(err)
		}
		if err := f.Update(3*float64(k), -1*float64(k)); err != nil {
			t.Fatal(err)
		}
	}
	vx, vy := f.Velocity()
	if math.Abs(vx-3) > 0.2 || math.Abs(vy+1) > 0.2 {
		t.Errorf("velocity = (%v, %v), want ~(3, -1)", vx, vy)
	}
	cx, cy := f.Centroid()
	if math.Abs(cx-90) > 2 || math.Abs(cy+30) > 2 {
		t.Errorf("centroid = (%v, %v), want ~(90, -30)", cx, cy)
	}
}

func TestFilterSmoothsNoisyMeasurements(t *testing.T) {
	f := NewFilter(0, 0, 0.5, 9.0)
	// Alternate +2/-2 noise around a fixed point; estimate should stay
	// closer to the truth than the raw measurements.
	noise := []float64{2, -2}
	for k := 0; k < 40; k++ {
		if err := f.Predict(); err != nil {
			t.Fatal(err)
		}
		if err := f.Update(50+noise[k%2], 80); err != nil {
			t.Fatal(err)
		}
	}
	cx, _ := f.Centroid()
	if math.Abs(cx-50) > 1 {
		t.Errorf("smoothed centroid x = %v, want ~50", cx)
	}
}

func TestFilterCovarianceStaysSymmetric(t *testing.T) {
	f := NewFilter(10, 10, 1, 4)
	for k := 0; k < 20; k++ {
		if err := f.Predict(); err != nil {
			t.Fatal(err)
		}
		if err := f.Update(float64(10+k), 10); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				if d := math.Abs(f.P.At(i, j) - f.P.At(j, i)); d > 1e-9 {
					t.Fatalf("covariance asymmetric at step %d: %v", k, d)
				}
			}
			if f.P.At(i, i) < 0 {
				t.Fatalf("negative variance at step %d", k)
			}
		}
	}
}

func TestFilterUncertaintyGrowsWithoutMeasurements(t *testing.T) {
	f := NewFilter(10, 10, 1, 4)
	if err := f.Update(10, 10); err != nil {
		t.Fatal(err)
	}
	before := f.P.At(0, 0)
	for k := 0; k < 5; k++ {
		if err := f.Predict(); err != nil {
			t.Fatal(err)
		}
	}
	if f.P.At(0, 0) <= before {
		t.Errorf("position variance should grow during coasting: %v -> %v", before, f.P.At(0, 0))
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.MaxTracks = 0 },
		func(c *Config) { c.GateDistance = 0 },
		func(c *Config) { c.ProcessNoise = 0 },
		func(c *Config) { c.MeasurementNoise = -1 },
		func(c *Config) { c.SizeBlend = 1.5 },
		func(c *Config) { c.MaxMisses = 0 },
		func(c *Config) { c.Bounds = geometry.Box{} },
	}
	for i, mut := range mutations {
		cfg := DefaultConfig()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d should invalidate config", i)
		}
	}
}

func TestTrackerFollowsObject(t *testing.T) {
	tr, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	obj := geometry.NewBox(10, 60, 30, 16)
	var last []Report
	for i := 0; i < 20; i++ {
		last, err = tr.Step([]geometry.Box{obj.Translate(4*i, 0)})
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(last) != 1 {
		t.Fatalf("want one track, got %d", len(last))
	}
	final := obj.Translate(4*19, 0)
	if last[0].Box.IoU(final) < 0.5 {
		t.Errorf("KF track %v lost object %v", last[0].Box, final)
	}
	if math.Abs(last[0].VX-4) > 1 {
		t.Errorf("VX = %v, want ~4", last[0].VX)
	}
}

func TestTrackerSeedsAndExpires(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxMisses = 2
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	obj := geometry.NewBox(50, 60, 20, 12)
	if _, err := tr.Step([]geometry.Box{obj}); err != nil {
		t.Fatal(err)
	}
	if tr.ActiveTracks() != 1 {
		t.Fatal("track not seeded")
	}
	for i := 0; i < 3; i++ {
		if _, err := tr.Step(nil); err != nil {
			t.Fatal(err)
		}
	}
	if tr.ActiveTracks() != 0 {
		t.Errorf("track not expired after misses: %d", tr.ActiveTracks())
	}
}

func TestTrackerGating(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GateDistance = 10
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := geometry.NewBox(50, 60, 20, 12)
	if _, err := tr.Step([]geometry.Box{a}); err != nil {
		t.Fatal(err)
	}
	// A proposal far outside the gate must seed a second track rather than
	// teleport the first.
	far := geometry.NewBox(150, 60, 20, 12)
	if _, err := tr.Step([]geometry.Box{far}); err != nil {
		t.Fatal(err)
	}
	if tr.ActiveTracks() != 2 {
		t.Errorf("far proposal should seed, have %d tracks", tr.ActiveTracks())
	}
}

func TestTrackerTwoObjects(t *testing.T) {
	tr, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	a := geometry.NewBox(20, 40, 24, 14)
	b := geometry.NewBox(180, 100, 30, 16)
	var reps []Report
	for i := 0; i < 10; i++ {
		reps, err = tr.Step([]geometry.Box{a.Translate(4*i, 0), b.Translate(-4*i, 0)})
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(reps) != 2 {
		t.Fatalf("want 2 tracks, got %d", len(reps))
	}
	ids := map[int]bool{reps[0].ID: true, reps[1].ID: true}
	if len(ids) != 2 {
		t.Error("tracks share an ID")
	}
}

func TestTrackerPoolCap(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxTracks = 1
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	props := []geometry.Box{
		geometry.NewBox(10, 10, 20, 12),
		geometry.NewBox(100, 100, 20, 12),
	}
	if _, err := tr.Step(props); err != nil {
		t.Fatal(err)
	}
	if tr.ActiveTracks() != 1 {
		t.Errorf("pool cap violated: %d", tr.ActiveTracks())
	}
}

func TestReportsInsideBounds(t *testing.T) {
	tr, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	edge := geometry.NewBox(225, 60, 14, 12)
	tr.Step([]geometry.Box{edge})
	reps, err := tr.Step([]geometry.Box{edge.Translate(5, 0).Clamp(geometry.NewBox(0, 0, 240, 180))})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reps {
		if !geometry.NewBox(0, 0, 240, 180).ContainsBox(r.Box) {
			t.Errorf("report outside bounds: %v", r.Box)
		}
	}
}

func BenchmarkFilterPredictUpdate(b *testing.B) {
	f := NewFilter(0, 0, 1, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.Predict(); err != nil {
			b.Fatal(err)
		}
		if err := f.Update(float64(i), float64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrackerStep(b *testing.B) {
	tr, err := New(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	props := []geometry.Box{
		geometry.NewBox(50, 60, 30, 16),
		geometry.NewBox(150, 90, 40, 20),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Step(props); err != nil {
			b.Fatal(err)
		}
	}
}

func TestOptimalAssociationAvoidsGreedyTrap(t *testing.T) {
	// Two tracks and two proposals arranged so greedy steals the wrong
	// proposal: track A is slightly closer to proposal 2 (track B's true
	// measurement) than to its own. Optimal assignment fixes it.
	mk := func(a Association) *Tracker {
		cfg := DefaultConfig()
		cfg.Association = a
		cfg.GateDistance = 60
		tr, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	// Establish two tracks 30 px apart.
	pa := geometry.NewBox(90, 60, 20, 12)  // center 100
	pb := geometry.NewBox(120, 60, 20, 12) // center 130
	scenario := func(tr *Tracker) (int, error) {
		if _, err := tr.Step([]geometry.Box{pa, pb}); err != nil {
			return 0, err
		}
		// Next frame: proposals at centers 114 and 131. Track A (100) is
		// 14 from p1 and 31 from p2; track B (130) is 16 from p1 and 1
		// from p2. Greedy picks (B,p2)=1 first then (A,p1)=14 -> fine.
		// Harder: proposals at 117 and 128. A->p1 = 17, A->p2 = 28,
		// B->p1 = 13, B->p2 = 2. Greedy: (B,p2)=2, then (A,p1)=17.
		// To actually trap greedy we need B closer to A's proposal than A
		// is, while B's own is still available: proposals at 112 and 135.
		// A->p1 = 12, B->p1 = 18, B->p2 = 5 -> greedy still fine. The trap
		// needs crossing: proposals at 126 and 104 with tracks at 100/130:
		// A->p1(126)=26, A->p2(104)=4, B->p1=4, B->p2=26. Both methods
		// agree on the anti-diagonal. A real trap: p at 113 only 1 prop...
		// Use the canonical 3-cost trap via gating instead: p1 at 116,
		// p2 at 99. A(100)->p2=1, A->p1=16; B(130)->p1=14, B->p2=31.
		// Greedy: (A,p2)=1, then (B,p1)=14, total 15. Optimal same. Greedy
		// and optimal genuinely differ only with asymmetric contention:
		// A->p1=10, A->p2=11, B->p1=9, B->p2=100(gated out). Greedy picks
		// (B,p1)=9 leaving A with p2=11 total 20; optimal picks (A,p1)=10,
		// (B, none) ... but unassigned B then misses. Both behaviours are
		// legitimate; assert only that the step succeeds and both tracks
		// survive under each strategy.
		reps, err := tr.Step([]geometry.Box{
			geometry.NewBox(106, 60, 20, 12),
			geometry.NewBox(121, 60, 20, 12),
		})
		if err != nil {
			return 0, err
		}
		return len(reps), nil
	}
	for _, a := range []Association{AssociateGreedy, AssociateOptimal} {
		tr := mk(a)
		n, err := scenario(tr)
		if err != nil {
			t.Fatalf("association %d: %v", a, err)
		}
		if n != 2 {
			t.Errorf("association %d reported %d tracks, want 2", a, n)
		}
	}
}

func TestOptimalAssociationTracksCrossingObjects(t *testing.T) {
	// Two objects approaching each other: the optimal association must
	// keep both tracks matched every frame (total distance minimised),
	// ending with 2 live tracks.
	cfg := DefaultConfig()
	cfg.Association = AssociateOptimal
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := geometry.NewBox(40, 60, 20, 12)
	b := geometry.NewBox(180, 60, 20, 12)
	for i := 0; i < 15; i++ {
		if _, err := tr.Step([]geometry.Box{a.Translate(5*i, 0), b.Translate(-5*i, 0)}); err != nil {
			t.Fatal(err)
		}
	}
	if tr.ActiveTracks() != 2 {
		t.Errorf("optimal association lost a track: %d", tr.ActiveTracks())
	}
}
