// Package scene models the side-view traffic scenes the paper records with
// a stationary DAVIS sensor at a junction: vehicles and pedestrians moving
// along horizontal lanes, with static distractors (trees) and occlusion
// between lanes.
//
// A Scene is a purely kinematic description — which objects exist, where
// each one is at any microsecond, and which pixels of each are visible. The
// sensor package turns a Scene into an address-event stream; ground-truth
// boxes for evaluation come straight from the same kinematics, replacing the
// paper's manual annotation with exact annotation.
package scene

import (
	"fmt"
	"sort"

	"ebbiot/internal/events"
	"ebbiot/internal/geometry"
)

// Kind classifies a moving object. The paper's scenes contain humans, bikes,
// cars, vans, trucks and buses, with sizes spanning an order of magnitude.
type Kind int

// Object kinds, ordered roughly by size.
const (
	KindHuman Kind = iota + 1
	KindBike
	KindCar
	KindVan
	KindTruck
	KindBus
)

var kindNames = map[Kind]string{
	KindHuman: "human",
	KindBike:  "bike",
	KindCar:   "car",
	KindVan:   "van",
	KindTruck: "truck",
	KindBus:   "bus",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Valid reports whether k is a defined kind.
func (k Kind) Valid() bool { return k >= KindHuman && k <= KindBus }

// Profile holds the event-generation characteristics of an object kind at
// the reference 12 mm lens (the ENG recording). Sizes are in pixels; rates
// are dimensionless densities consumed by the sensor model.
type Profile struct {
	// MinW, MaxW, MinH, MaxH bound the object's pixel size.
	MinW, MaxW, MinH, MaxH int
	// MinSpeed, MaxSpeed bound |velocity| in pixels per second.
	MinSpeed, MaxSpeed float64
	// EdgeDensity is the probability that an edge pixel fires an event per
	// pixel of motion; high-contrast object outlines approach 1.
	EdgeDensity float64
	// InteriorDensity is the per-interior-pixel event probability per pixel
	// of motion. Large vehicles have low values: their flat flanks generate
	// few events, which is exactly the fragmentation failure mode the
	// paper's RPN and tracker must handle.
	InteriorDensity float64
}

// DefaultProfiles returns the per-kind profiles used by the dataset presets.
// Speeds follow the paper's observation that object velocities span
// sub-pixel to 5-6 pixels per frame (a frame is 66 ms, so 6 px/frame is
// ~90 px/s) and sizes vary by an order of magnitude in a scene.
func DefaultProfiles() map[Kind]Profile {
	return map[Kind]Profile{
		KindHuman: {MinW: 5, MaxW: 9, MinH: 12, MaxH: 18, MinSpeed: 4, MaxSpeed: 12, EdgeDensity: 0.8, InteriorDensity: 0.25},
		KindBike:  {MinW: 10, MaxW: 16, MinH: 12, MaxH: 16, MinSpeed: 30, MaxSpeed: 60, EdgeDensity: 0.8, InteriorDensity: 0.30},
		KindCar:   {MinW: 28, MaxW: 40, MinH: 14, MaxH: 20, MinSpeed: 45, MaxSpeed: 90, EdgeDensity: 0.9, InteriorDensity: 0.18},
		KindVan:   {MinW: 36, MaxW: 50, MinH: 18, MaxH: 26, MinSpeed: 45, MaxSpeed: 80, EdgeDensity: 0.9, InteriorDensity: 0.12},
		KindTruck: {MinW: 50, MaxW: 70, MinH: 22, MaxH: 32, MinSpeed: 40, MaxSpeed: 70, EdgeDensity: 0.9, InteriorDensity: 0.08},
		KindBus:   {MinW: 65, MaxW: 90, MinH: 26, MaxH: 36, MinSpeed: 40, MaxSpeed: 70, EdgeDensity: 0.9, InteriorDensity: 0.05},
	}
}

// Object is one moving entity in the scene. Motion is constant-velocity
// along the lane (the side-view geometry of the paper's recordings), active
// between EnterUS and ExitUS.
type Object struct {
	ID   int
	Kind Kind
	// W, H is the object's pixel extent.
	W, H int
	// LaneY is the y coordinate of the object's bottom edge.
	LaneY int
	// X0 is the x position of the object's left edge at time EnterUS.
	X0 float64
	// VX is the horizontal velocity in pixels per second (signed).
	VX float64
	// EnterUS and ExitUS bound the object's presence in the scene.
	EnterUS, ExitUS int64
	// Z is the depth order: larger Z is nearer the camera and occludes
	// smaller Z where boxes overlap.
	Z int
	// EdgeDensity and InteriorDensity override the kind profile for this
	// instance (set by the generator from the profile).
	EdgeDensity, InteriorDensity float64
}

// Active reports whether the object is in the scene at time t.
func (o *Object) Active(tUS int64) bool { return tUS >= o.EnterUS && tUS < o.ExitUS }

// BoxAt returns the object's sub-pixel box at time t. The caller must check
// Active; BoxAt extrapolates outside the active interval.
func (o *Object) BoxAt(tUS int64) geometry.FBox {
	dt := float64(tUS-o.EnterUS) / 1e6
	return geometry.FBox{X: o.X0 + o.VX*dt, Y: float64(o.LaneY), W: float64(o.W), H: float64(o.H)}
}

// State is an object's instantaneous kinematic state.
type State struct {
	ID   int
	Kind Kind
	Box  geometry.FBox
	// VX, VY are velocities in pixels per second.
	VX, VY float64
	Z      int
	// EdgeDensity, InteriorDensity are the event-generation densities.
	EdgeDensity, InteriorDensity float64
}

// Distractor is a static scene element (tree foliage, flag) that produces
// clutter events at a constant rate. The paper removes these with a
// manually-defined region of exclusion (ROE).
type Distractor struct {
	Box geometry.Box
	// RatePerPixelHz is the clutter event rate per pixel.
	RatePerPixelHz float64
}

// Scene is a full kinematic scenario over a fixed duration.
type Scene struct {
	Res         events.Resolution
	DurationUS  int64
	Objects     []Object
	Distractors []Distractor
}

// Validate checks internal consistency: object sizes positive, times
// ordered, kinds valid.
func (s *Scene) Validate() error {
	if err := s.Res.Validate(); err != nil {
		return err
	}
	if s.DurationUS <= 0 {
		return fmt.Errorf("scene: non-positive duration %d", s.DurationUS)
	}
	for i := range s.Objects {
		o := &s.Objects[i]
		if !o.Kind.Valid() {
			return fmt.Errorf("scene: object %d has invalid kind %d", o.ID, o.Kind)
		}
		if o.W <= 0 || o.H <= 0 {
			return fmt.Errorf("scene: object %d has non-positive size %dx%d", o.ID, o.W, o.H)
		}
		if o.ExitUS <= o.EnterUS {
			return fmt.Errorf("scene: object %d exits (%d) before entering (%d)", o.ID, o.ExitUS, o.EnterUS)
		}
	}
	return nil
}

// At returns the states of all objects active at time t, ordered by
// ascending Z (far to near) so a renderer can paint in depth order.
func (s *Scene) At(tUS int64) []State {
	var out []State
	for i := range s.Objects {
		o := &s.Objects[i]
		if !o.Active(tUS) {
			continue
		}
		out = append(out, State{
			ID: o.ID, Kind: o.Kind, Box: o.BoxAt(tUS),
			VX: o.VX, VY: 0, Z: o.Z,
			EdgeDensity: o.EdgeDensity, InteriorDensity: o.InteriorDensity,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Z != out[j].Z {
			return out[i].Z < out[j].Z
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// LabeledBox is a ground-truth annotation: the visible pixel box of one
// object at one instant.
type LabeledBox struct {
	ID   int
	Kind Kind
	Box  geometry.Box
}

// GroundTruth returns the ground-truth boxes at time t: each active
// object's box clamped to the sensor array. Objects whose on-screen
// visible area has been reduced below minVisible pixels (off-screen, or
// nearly fully occluded by a nearer object) are omitted, matching how a
// human annotator would not label an invisible object.
func (s *Scene) GroundTruth(tUS int64, minVisible int) []LabeledBox {
	states := s.At(tUS)
	bounds := geometry.NewBox(0, 0, s.Res.A, s.Res.B)
	var out []LabeledBox
	for i, st := range states {
		b := st.Box.Round().Clamp(bounds)
		if b.Area() < minVisible {
			continue
		}
		// Estimate visible area after occlusion by nearer objects.
		visible := b.Area()
		for j := i + 1; j < len(states); j++ {
			if states[j].Z > st.Z {
				visible -= b.IntersectionArea(states[j].Box.Round().Clamp(bounds))
			}
		}
		if visible < minVisible {
			continue
		}
		out = append(out, LabeledBox{ID: st.ID, Kind: st.Kind, Box: b})
	}
	return out
}

// TrackCount returns the number of distinct objects that ever appear within
// the sensor bounds — the paper's "number of ground truth tracks" used to
// weight precision/recall across recordings.
//
// For the constant-velocity motion model the on-screen interval can be
// solved in closed form: the object is visible while its x extent
// [x(t), x(t)+W) overlaps [0, A), and its fixed y extent overlaps [0, B).
func (s *Scene) TrackCount() int {
	n := 0
	for i := range s.Objects {
		if s.objectEverVisible(&s.Objects[i]) {
			n++
		}
	}
	return n
}

func (s *Scene) objectEverVisible(o *Object) bool {
	if o.LaneY+o.H <= 0 || o.LaneY >= s.Res.B {
		return false
	}
	// Solve x(t)+W > 0 and x(t) < A for t in [EnterUS, min(ExitUS, DurationUS)).
	end := o.ExitUS
	if s.DurationUS > 0 && s.DurationUS < end {
		end = s.DurationUS
	}
	if end <= o.EnterUS {
		return false
	}
	x0 := o.X0
	if o.VX == 0 {
		return x0+float64(o.W) > 0 && x0 < float64(s.Res.A)
	}
	// Times (seconds from entry) at which the two constraints flip.
	tEnterScreen := (-float64(o.W) - x0) / o.VX   // x + W == 0
	tExitScreen := (float64(s.Res.A) - x0) / o.VX // x == A
	lo, hi := tEnterScreen, tExitScreen
	if lo > hi {
		lo, hi = hi, lo
	}
	activeLo := 0.0
	activeHi := float64(end-o.EnterUS) / 1e6
	return hi > activeLo && lo < activeHi
}
