package scene

import (
	"fmt"
	"sort"

	"ebbiot/internal/events"
	"ebbiot/internal/xrand"
)

// Lane describes one traffic lane in the side-view scene.
type Lane struct {
	// Y is the pixel row of the lane floor (object bottom edge).
	Y int
	// Dir is +1 for left-to-right traffic, -1 for right-to-left.
	Dir int
	// Z is the lane's depth order; nearer lanes (larger Z) occlude farther
	// ones where boxes overlap, producing the paper's dynamic occlusions.
	Z int
	// ArrivalRateHz is the mean object arrival rate on this lane.
	ArrivalRateHz float64
	// Kinds is the mix of object kinds on this lane with relative weights.
	// An empty map means the full default vehicle mix.
	Kinds map[Kind]float64
}

// TrafficSpec parameterises the synthetic traffic generator.
type TrafficSpec struct {
	Res        events.Resolution
	DurationUS int64
	Lanes      []Lane
	// LensScale scales object sizes: 1.0 reproduces the ENG 12 mm geometry,
	// 0.5 the wider LT4 6 mm view where objects appear half as large.
	LensScale float64
	// Profiles overrides the per-kind profiles; nil uses DefaultProfiles.
	Profiles map[Kind]Profile
	// Distractors to embed (tree clutter for ROE experiments).
	Distractors []Distractor
	// MinGapUS enforces a minimum headway between consecutive arrivals on
	// the same lane so objects do not spawn overlapping.
	MinGapUS int64
	// Seed drives all randomness; equal specs with equal seeds produce
	// identical scenes.
	Seed uint64
}

func defaultKindMix() map[Kind]float64 {
	return map[Kind]float64{
		KindHuman: 0.10,
		KindBike:  0.10,
		KindCar:   0.45,
		KindVan:   0.15,
		KindTruck: 0.10,
		KindBus:   0.10,
	}
}

// pickKind draws a kind from the weighted mix.
func pickKind(r *xrand.Rand, mix map[Kind]float64) Kind {
	total := 0.0
	kinds := make([]Kind, 0, len(mix))
	for k := range mix {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		total += mix[k]
	}
	u := r.Float64() * total
	acc := 0.0
	for _, k := range kinds {
		acc += mix[k]
		if u < acc {
			return k
		}
	}
	return kinds[len(kinds)-1]
}

// Generate synthesises a Scene from the spec. Arrivals on each lane follow
// a Poisson process thinned by the minimum headway; each object's size and
// speed are drawn from its kind profile scaled by the lens factor.
func Generate(spec TrafficSpec) (*Scene, error) {
	if err := spec.Res.Validate(); err != nil {
		return nil, err
	}
	if spec.DurationUS <= 0 {
		return nil, fmt.Errorf("scene: non-positive duration %d", spec.DurationUS)
	}
	if len(spec.Lanes) == 0 {
		return nil, fmt.Errorf("scene: no lanes in spec")
	}
	if spec.LensScale <= 0 {
		spec.LensScale = 1.0
	}
	profiles := spec.Profiles
	if profiles == nil {
		profiles = DefaultProfiles()
	}

	root := xrand.New(spec.Seed)
	sc := &Scene{Res: spec.Res, DurationUS: spec.DurationUS, Distractors: spec.Distractors}
	id := 0
	for li, lane := range spec.Lanes {
		laneRng := root.Fork()
		mix := lane.Kinds
		if len(mix) == 0 {
			mix = defaultKindMix()
		}
		if lane.ArrivalRateHz <= 0 {
			return nil, fmt.Errorf("scene: lane %d has non-positive arrival rate", li)
		}
		t := 0.0 // seconds
		prevSpeed := 0.0
		prevEnter := 0.0
		prevW := 0
		prevExit := 0.0 // when the previous object finishes crossing
		for {
			t += laneRng.ExpFloat64() / lane.ArrivalRateHz
			if spec.MinGapUS > 0 {
				t += float64(spec.MinGapUS) / 1e6 * laneRng.Float64()
			}
			kind := pickKind(laneRng, mix)
			prof, ok := profiles[kind]
			if !ok {
				return nil, fmt.Errorf("scene: no profile for kind %v", kind)
			}
			w := scaleDim(laneRng.IntRange(prof.MinW, prof.MaxW), spec.LensScale)
			h := scaleDim(laneRng.IntRange(prof.MinH, prof.MaxH), spec.LensScale)
			speed := laneRng.Range(prof.MinSpeed, prof.MaxSpeed) * spec.LensScale
			// No-overtake rule, part 1: a follower may not spawn until its
			// leader has cleared the spawn point plus a safety gap (objects
			// in one lane cannot physically overlap).
			if prevSpeed > 0 {
				if clearT := prevEnter + (float64(prevW)+4)/prevSpeed; t < clearT {
					t = clearT
				}
			}
			// Part 2: while the leader is still crossing, the follower may
			// not be faster, or the two would pass through each other.
			if t < prevExit && prevSpeed > 0 && speed > prevSpeed {
				speed = prevSpeed
			}
			enterUS := int64(t * 1e6)
			if enterUS >= spec.DurationUS {
				break
			}
			vx := speed * float64(lane.Dir)
			// Start just off-screen and cross the full width.
			var x0 float64
			if lane.Dir >= 0 {
				x0 = -float64(w)
			} else {
				x0 = float64(spec.Res.A)
			}
			travel := float64(spec.Res.A + w) // pixels to fully cross
			durUS := int64(travel / speed * 1e6)
			prevSpeed = speed
			prevEnter = t
			prevW = w
			prevExit = t + travel/speed
			obj := Object{
				ID: id, Kind: kind, W: w, H: h,
				LaneY: lane.Y, X0: x0, VX: vx,
				EnterUS: enterUS, ExitUS: enterUS + durUS,
				Z:               lane.Z,
				EdgeDensity:     prof.EdgeDensity,
				InteriorDensity: prof.InteriorDensity,
			}
			sc.Objects = append(sc.Objects, obj)
			id++
		}
	}
	sort.Slice(sc.Objects, func(i, j int) bool {
		if sc.Objects[i].EnterUS != sc.Objects[j].EnterUS {
			return sc.Objects[i].EnterUS < sc.Objects[j].EnterUS
		}
		return sc.Objects[i].ID < sc.Objects[j].ID
	})
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return sc, nil
}

func scaleDim(v int, scale float64) int {
	s := int(float64(v)*scale + 0.5)
	if s < 2 {
		s = 2
	}
	return s
}

// CrossingScene builds a deterministic two-object scene in which two cars
// travelling in opposite directions on overlapping lanes cross mid-frame —
// the dynamic-occlusion case of tracker step 5. Both tracks are well
// established before the crossing, the images merge during it, and the
// objects separate afterwards. Used by tests, the occlusion example and
// the A2 ablation bench.
func CrossingScene(res events.Resolution, durationUS int64) *Scene {
	return &Scene{
		Res:        res,
		DurationUS: durationUS,
		Objects: []Object{
			{
				ID: 0, Kind: KindCar, W: 30, H: 16, LaneY: 60,
				X0: -30, VX: 55, EnterUS: 0, ExitUS: durationUS, Z: 1,
				EdgeDensity: 0.9, InteriorDensity: 0.18,
			},
			{
				ID: 1, Kind: KindCar, W: 32, H: 18, LaneY: 64,
				X0: float64(res.A), VX: -55, EnterUS: 0, ExitUS: durationUS, Z: 2,
				EdgeDensity: 0.9, InteriorDensity: 0.18,
			},
		},
	}
}

// SingleObjectScene builds a one-car scene crossing the full frame, used by
// the quickstart example and unit tests.
func SingleObjectScene(res events.Resolution, durationUS int64) *Scene {
	return &Scene{
		Res:        res,
		DurationUS: durationUS,
		Objects: []Object{{
			ID: 0, Kind: KindCar, W: 32, H: 18, LaneY: 70,
			X0: -32, VX: 60, EnterUS: 0, ExitUS: durationUS, Z: 1,
			EdgeDensity: 0.9, InteriorDensity: 0.2,
		}},
	}
}
