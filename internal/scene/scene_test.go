package scene

import (
	"testing"

	"ebbiot/internal/events"
	"ebbiot/internal/geometry"
)

func TestKindString(t *testing.T) {
	if KindBus.String() != "bus" || KindHuman.String() != "human" {
		t.Error("kind names wrong")
	}
	if Kind(99).String() != "Kind(99)" {
		t.Error("unknown kind formatting wrong")
	}
	if Kind(0).Valid() || Kind(7).Valid() {
		t.Error("invalid kinds should not validate")
	}
	if !KindCar.Valid() {
		t.Error("car should be valid")
	}
}

func TestObjectBoxAt(t *testing.T) {
	o := Object{ID: 1, Kind: KindCar, W: 30, H: 15, LaneY: 50, X0: -30, VX: 60, EnterUS: 0, ExitUS: 10_000_000}
	b0 := o.BoxAt(0)
	if b0.X != -30 || b0.Y != 50 || b0.W != 30 || b0.H != 15 {
		t.Errorf("box at t=0: %+v", b0)
	}
	// After 1 second at 60 px/s the box has moved 60 px.
	b1 := o.BoxAt(1_000_000)
	if b1.X != 30 {
		t.Errorf("box.X at t=1s = %v, want 30", b1.X)
	}
}

func TestObjectActive(t *testing.T) {
	o := Object{EnterUS: 100, ExitUS: 200}
	if o.Active(99) || o.Active(200) {
		t.Error("outside interval should be inactive")
	}
	if !o.Active(100) || !o.Active(199) {
		t.Error("inside interval should be active")
	}
}

func TestSceneAtDepthOrder(t *testing.T) {
	sc := CrossingScene(events.DAVIS240, 5_000_000)
	states := sc.At(1_000_000)
	if len(states) != 2 {
		t.Fatalf("want 2 active objects, got %d", len(states))
	}
	if states[0].Z > states[1].Z {
		t.Error("states must be ordered far-to-near")
	}
}

func TestSceneValidate(t *testing.T) {
	good := SingleObjectScene(events.DAVIS240, 1_000_000)
	if err := good.Validate(); err != nil {
		t.Errorf("good scene should validate: %v", err)
	}
	bad := &Scene{Res: events.DAVIS240, DurationUS: 100,
		Objects: []Object{{ID: 0, Kind: KindCar, W: 0, H: 5, EnterUS: 0, ExitUS: 10}}}
	if err := bad.Validate(); err == nil {
		t.Error("zero-width object should fail validation")
	}
	bad2 := &Scene{Res: events.DAVIS240, DurationUS: 100,
		Objects: []Object{{ID: 0, Kind: Kind(42), W: 5, H: 5, EnterUS: 0, ExitUS: 10}}}
	if err := bad2.Validate(); err == nil {
		t.Error("invalid kind should fail validation")
	}
	bad3 := &Scene{Res: events.DAVIS240, DurationUS: 100,
		Objects: []Object{{ID: 0, Kind: KindCar, W: 5, H: 5, EnterUS: 10, ExitUS: 5}}}
	if err := bad3.Validate(); err == nil {
		t.Error("exit before enter should fail validation")
	}
	if err := (&Scene{Res: events.DAVIS240, DurationUS: 0}).Validate(); err == nil {
		t.Error("zero duration should fail validation")
	}
}

func TestGroundTruthClamped(t *testing.T) {
	sc := SingleObjectScene(events.DAVIS240, 10_000_000)
	// At t=0 the car is fully off-screen to the left: no ground truth.
	if gt := sc.GroundTruth(0, 4); len(gt) != 0 {
		t.Errorf("off-screen object should have no GT, got %v", gt)
	}
	// Mid-recording it is fully visible.
	gt := sc.GroundTruth(2_000_000, 4)
	if len(gt) != 1 {
		t.Fatalf("want 1 GT box, got %d", len(gt))
	}
	bounds := geometry.NewBox(0, 0, 240, 180)
	if !bounds.ContainsBox(gt[0].Box) {
		t.Errorf("GT box %v outside sensor bounds", gt[0].Box)
	}
	if gt[0].Kind != KindCar || gt[0].ID != 0 {
		t.Errorf("GT label wrong: %+v", gt[0])
	}
}

func TestGroundTruthOcclusionSuppression(t *testing.T) {
	// Two same-lane objects directly on top of each other; the nearer one
	// fully covers the farther one.
	sc := &Scene{
		Res: events.DAVIS240, DurationUS: 1_000_000,
		Objects: []Object{
			{ID: 0, Kind: KindCar, W: 30, H: 16, LaneY: 50, X0: 100, VX: 0.001, EnterUS: 0, ExitUS: 1_000_000, Z: 1, EdgeDensity: 0.9, InteriorDensity: 0.2},
			{ID: 1, Kind: KindBus, W: 60, H: 30, LaneY: 45, X0: 90, VX: 0.001, EnterUS: 0, ExitUS: 1_000_000, Z: 2, EdgeDensity: 0.9, InteriorDensity: 0.05},
		},
	}
	gt := sc.GroundTruth(500_000, 4)
	if len(gt) != 1 {
		t.Fatalf("fully occluded object should be dropped, got %d boxes", len(gt))
	}
	if gt[0].ID != 1 {
		t.Errorf("surviving GT should be the near bus, got %+v", gt[0])
	}
}

func TestGenerateDeterminism(t *testing.T) {
	spec := TrafficSpec{
		Res:        events.DAVIS240,
		DurationUS: 30_000_000,
		Lanes: []Lane{
			{Y: 60, Dir: 1, Z: 1, ArrivalRateHz: 0.5},
			{Y: 40, Dir: -1, Z: 2, ArrivalRateHz: 0.3},
		},
		Seed: 99,
	}
	a, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Objects) != len(b.Objects) {
		t.Fatalf("object counts differ: %d vs %d", len(a.Objects), len(b.Objects))
	}
	for i := range a.Objects {
		if a.Objects[i] != b.Objects[i] {
			t.Fatalf("object %d differs:\n%+v\n%+v", i, a.Objects[i], b.Objects[i])
		}
	}
	spec.Seed = 100
	c, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	same := len(a.Objects) == len(c.Objects)
	if same {
		diff := false
		for i := range a.Objects {
			if a.Objects[i] != c.Objects[i] {
				diff = true
				break
			}
		}
		if !diff && len(a.Objects) > 0 {
			t.Error("different seeds produced identical scenes")
		}
	}
}

func TestGenerateObjectsWithinSpec(t *testing.T) {
	spec := TrafficSpec{
		Res:        events.DAVIS240,
		DurationUS: 60_000_000,
		Lanes:      []Lane{{Y: 60, Dir: 1, Z: 1, ArrivalRateHz: 1.0}},
		Seed:       7,
	}
	sc, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Objects) == 0 {
		t.Fatal("expected some objects at 1 Hz over 60 s")
	}
	profiles := DefaultProfiles()
	for _, o := range sc.Objects {
		p := profiles[o.Kind]
		if o.W < p.MinW || o.W > p.MaxW || o.H < p.MinH || o.H > p.MaxH {
			t.Errorf("object %d size %dx%d outside profile %+v", o.ID, o.W, o.H, p)
		}
		speed := o.VX
		if speed < 0 {
			speed = -speed
		}
		// The no-overtake rule may clamp a follower below its profile
		// minimum, but never above the maximum and never to a standstill.
		if speed <= 0 || speed > p.MaxSpeed {
			t.Errorf("object %d speed %v outside (0,%v]", o.ID, speed, p.MaxSpeed)
		}
		if o.EnterUS < 0 || o.EnterUS >= spec.DurationUS {
			t.Errorf("object %d enter time %d outside recording", o.ID, o.EnterUS)
		}
	}
}

func TestGenerateLensScale(t *testing.T) {
	mkSpec := func(scale float64) TrafficSpec {
		return TrafficSpec{
			Res:        events.DAVIS240,
			DurationUS: 120_000_000,
			Lanes:      []Lane{{Y: 60, Dir: 1, Z: 1, ArrivalRateHz: 0.5}},
			LensScale:  scale,
			Seed:       11,
		}
	}
	full, err := Generate(mkSpec(1.0))
	if err != nil {
		t.Fatal(err)
	}
	half, err := Generate(mkSpec(0.5))
	if err != nil {
		t.Fatal(err)
	}
	meanW := func(sc *Scene) float64 {
		s := 0
		for _, o := range sc.Objects {
			s += o.W
		}
		return float64(s) / float64(len(sc.Objects))
	}
	if len(full.Objects) == 0 || len(half.Objects) == 0 {
		t.Fatal("no objects generated")
	}
	r := meanW(half) / meanW(full)
	if r < 0.35 || r > 0.65 {
		t.Errorf("half lens scale mean width ratio = %v, want ~0.5", r)
	}
}

func TestGenerateErrors(t *testing.T) {
	base := TrafficSpec{Res: events.DAVIS240, DurationUS: 1000, Lanes: []Lane{{Y: 1, Dir: 1, ArrivalRateHz: 1}}}
	bad := base
	bad.DurationUS = 0
	if _, err := Generate(bad); err == nil {
		t.Error("zero duration should error")
	}
	bad = base
	bad.Lanes = nil
	if _, err := Generate(bad); err == nil {
		t.Error("no lanes should error")
	}
	bad = base
	bad.Lanes = []Lane{{Y: 1, Dir: 1, ArrivalRateHz: 0}}
	if _, err := Generate(bad); err == nil {
		t.Error("zero arrival rate should error")
	}
	bad = base
	bad.Res = events.Resolution{}
	if _, err := Generate(bad); err == nil {
		t.Error("invalid resolution should error")
	}
}

func TestTrackCount(t *testing.T) {
	sc := SingleObjectScene(events.DAVIS240, 10_000_000)
	if got := sc.TrackCount(); got != 1 {
		t.Errorf("TrackCount = %d, want 1", got)
	}
	cross := CrossingScene(events.DAVIS240, 5_000_000)
	if got := cross.TrackCount(); got != 2 {
		t.Errorf("crossing TrackCount = %d, want 2", got)
	}
}

func TestPickKindDistribution(t *testing.T) {
	spec := TrafficSpec{
		Res:        events.DAVIS240,
		DurationUS: 600_000_000,
		Lanes: []Lane{{
			Y: 60, Dir: 1, Z: 1, ArrivalRateHz: 2,
			Kinds: map[Kind]float64{KindCar: 0.8, KindBus: 0.2},
		}},
		Seed: 3,
	}
	sc, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[Kind]int{}
	for _, o := range sc.Objects {
		counts[o.Kind]++
	}
	if counts[KindHuman] != 0 || counts[KindTruck] != 0 {
		t.Error("kinds outside the lane mix should not appear")
	}
	total := counts[KindCar] + counts[KindBus]
	if total == 0 {
		t.Fatal("no objects generated")
	}
	frac := float64(counts[KindCar]) / float64(total)
	if frac < 0.7 || frac > 0.9 {
		t.Errorf("car fraction = %v, want ~0.8", frac)
	}
}

func TestCrossingSceneActuallyCrosses(t *testing.T) {
	sc := CrossingScene(events.DAVIS240, 5_000_000)
	crossed := false
	for tUS := int64(0); tUS < sc.DurationUS; tUS += 66_000 {
		st := sc.At(tUS)
		if len(st) == 2 && st[0].Box.IntersectionArea(st[1].Box) > 0 {
			crossed = true
			break
		}
	}
	if !crossed {
		t.Error("crossing scene objects never overlap")
	}
}

func TestNoOvertakeInvariant(t *testing.T) {
	// Objects sharing a lane must never overlap: the no-overtake rule
	// caps a follower's speed while its leader is still crossing.
	spec := TrafficSpec{
		Res:        events.DAVIS240,
		DurationUS: 300_000_000,
		Lanes:      []Lane{{Y: 60, Dir: 1, Z: 1, ArrivalRateHz: 1.2}},
		Seed:       5,
	}
	sc, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Objects) < 10 {
		t.Fatalf("expected a busy lane, got %d objects", len(sc.Objects))
	}
	for tUS := int64(0); tUS < spec.DurationUS; tUS += 500_000 {
		states := sc.At(tUS)
		for i := 0; i < len(states); i++ {
			for j := i + 1; j < len(states); j++ {
				a, b := states[i].Box, states[j].Box
				if a.IntersectionArea(b) > 1 { // float rounding tolerance
					t.Fatalf("objects %d and %d overlap at t=%dus: %v vs %v",
						states[i].ID, states[j].ID, tUS, a, b)
				}
			}
		}
	}
}
