package annot

import (
	"bytes"
	"strings"
	"testing"

	"ebbiot/internal/events"
	"ebbiot/internal/geometry"
	"ebbiot/internal/scene"
)

func sample() []Record {
	return []Record{
		{TUS: 66000, ID: 0, Kind: scene.KindCar, Box: geometry.NewBox(132, 84, 30, 17)},
		{TUS: 66000, ID: 1, Kind: scene.KindBus, Box: geometry.NewBox(10, 44, 70, 30)},
		{TUS: 132000, ID: 0, Kind: scene.KindCar, Box: geometry.NewBox(136, 84, 30, 17)},
	}
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := sample()
	if len(got) != len(want) {
		t.Fatalf("got %d records", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestWriteRejectsInvalidKind(t *testing.T) {
	var buf bytes.Buffer
	err := Write(&buf, []Record{{Kind: scene.Kind(77)}})
	if err == nil {
		t.Error("invalid kind should fail to encode")
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"bad header", "nope\n"},
		{"short line", Header + "\n1,2,car\n"},
		{"bad kind", Header + "\n1,2,plane,0,0,1,1\n"},
		{"bad int", Header + "\n1,x,car,0,0,1,1\n"},
		{"bad box", Header + "\n1,2,car,0,0,one,1\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Read(strings.NewReader(c.in)); err == nil {
				t.Errorf("input %q should fail", c.in)
			}
		})
	}
}

func TestReadSkipsBlankLines(t *testing.T) {
	in := Header + "\n\n66000,0,car,1,2,3,4\n\n"
	got, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Errorf("got %d records, want 1", len(got))
	}
}

func TestSortAndAtTime(t *testing.T) {
	recs := []Record{
		{TUS: 200, ID: 1},
		{TUS: 100, ID: 2},
		{TUS: 200, ID: 0},
		{TUS: 100, ID: 1},
	}
	// Kinds must be valid only for Write; fill for realism.
	for i := range recs {
		recs[i].Kind = scene.KindCar
	}
	Sort(recs)
	if recs[0].TUS != 100 || recs[0].ID != 1 || recs[3].ID != 1 {
		t.Errorf("sort order wrong: %+v", recs)
	}
	at := AtTime(recs, 200)
	if len(at) != 2 || at[0].ID != 0 {
		t.Errorf("AtTime(200) = %+v", at)
	}
	if len(AtTime(recs, 150)) != 0 {
		t.Error("AtTime between stamps should be empty")
	}
}

func TestFromScene(t *testing.T) {
	sc := scene.SingleObjectScene(events.DAVIS240, 2_000_000)
	recs, err := FromScene(sc, 66_000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no records sampled")
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].TUS < recs[i-1].TUS {
			t.Fatal("records not sorted")
		}
	}
	// Round trip the sampled annotations.
	var buf bytes.Buffer
	if err := Write(&buf, recs); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(recs) {
		t.Errorf("round trip lost records: %d vs %d", len(back), len(recs))
	}
}

func TestFromSceneValidation(t *testing.T) {
	sc := scene.SingleObjectScene(events.DAVIS240, 1_000_000)
	if _, err := FromScene(sc, 0, 4); err == nil {
		t.Error("zero step should error")
	}
}
