// Package annot reads and writes ground-truth annotation files: one box
// per object per sampling instant, CSV-encoded. This is the interchange
// format between the dataset generator (which replaces the paper's manual
// annotation with exact scene-derived boxes) and the evaluation tools.
//
// Format (header line required):
//
//	t_us,id,kind,x,y,w,h
//	66000,0,car,132,84,30,17
package annot

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"ebbiot/internal/geometry"
	"ebbiot/internal/scene"
)

// Record is one annotated box at one instant.
type Record struct {
	TUS  int64
	ID   int
	Kind scene.Kind
	Box  geometry.Box
}

// Header is the CSV header line.
const Header = "t_us,id,kind,x,y,w,h"

var kindByName = map[string]scene.Kind{
	"human": scene.KindHuman,
	"bike":  scene.KindBike,
	"car":   scene.KindCar,
	"van":   scene.KindVan,
	"truck": scene.KindTruck,
	"bus":   scene.KindBus,
}

// Write encodes records as CSV. Records are written in the given order;
// use Sort first for canonical output.
func Write(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, Header); err != nil {
		return fmt.Errorf("annot: writing header: %w", err)
	}
	for i, r := range recs {
		if !r.Kind.Valid() {
			return fmt.Errorf("annot: record %d has invalid kind %d", i, r.Kind)
		}
		if _, err := fmt.Fprintf(bw, "%d,%d,%s,%d,%d,%d,%d\n",
			r.TUS, r.ID, r.Kind, r.Box.X, r.Box.Y, r.Box.W, r.Box.H); err != nil {
			return fmt.Errorf("annot: writing record %d: %w", i, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("annot: flushing: %w", err)
	}
	return nil
}

// Read decodes a CSV annotation stream.
func Read(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("annot: reading header: %w", err)
		}
		return nil, fmt.Errorf("annot: empty input")
	}
	if got := strings.TrimSpace(sc.Text()); got != Header {
		return nil, fmt.Errorf("annot: bad header %q", got)
	}
	var out []Record
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		rec, err := parseLine(text)
		if err != nil {
			return nil, fmt.Errorf("annot: line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("annot: scanning: %w", err)
	}
	return out, nil
}

func parseLine(s string) (Record, error) {
	fields := strings.Split(s, ",")
	if len(fields) != 7 {
		return Record{}, fmt.Errorf("want 7 fields, got %d", len(fields))
	}
	var rec Record
	var err error
	if rec.TUS, err = strconv.ParseInt(fields[0], 10, 64); err != nil {
		return Record{}, fmt.Errorf("t_us: %w", err)
	}
	if rec.ID, err = strconv.Atoi(fields[1]); err != nil {
		return Record{}, fmt.Errorf("id: %w", err)
	}
	kind, ok := kindByName[fields[2]]
	if !ok {
		return Record{}, fmt.Errorf("unknown kind %q", fields[2])
	}
	rec.Kind = kind
	ints := make([]int, 4)
	for i, f := range fields[3:] {
		if ints[i], err = strconv.Atoi(f); err != nil {
			return Record{}, fmt.Errorf("box field %d: %w", i, err)
		}
	}
	rec.Box = geometry.NewBox(ints[0], ints[1], ints[2], ints[3])
	return rec, nil
}

// Sort orders records by time, then ID, in place.
func Sort(recs []Record) {
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].TUS != recs[j].TUS {
			return recs[i].TUS < recs[j].TUS
		}
		return recs[i].ID < recs[j].ID
	})
}

// AtTime returns the records with exactly the given timestamp. The input
// must be sorted.
func AtTime(recs []Record, tUS int64) []Record {
	lo := sort.Search(len(recs), func(i int) bool { return recs[i].TUS >= tUS })
	hi := sort.Search(len(recs), func(i int) bool { return recs[i].TUS > tUS })
	return recs[lo:hi]
}

// FromScene samples a scene's ground truth every stepUS and returns the
// records, sorted.
func FromScene(sc *scene.Scene, stepUS int64, minVisible int) ([]Record, error) {
	if stepUS <= 0 {
		return nil, fmt.Errorf("annot: step must be positive, got %d", stepUS)
	}
	var out []Record
	for t := stepUS; t <= sc.DurationUS; t += stepUS {
		for _, g := range sc.GroundTruth(t, minVisible) {
			out = append(out, Record{TUS: t, ID: g.ID, Kind: g.Kind, Box: g.Box})
		}
	}
	Sort(out)
	return out, nil
}
