// Package events defines the address-event representation (AER) produced by
// neuromorphic vision sensors and utilities for manipulating event streams.
//
// Following the paper's notation, an event is the tuple e_i = (x_i, y_i,
// t_i, p_i): pixel coordinates on the sensor array, a microsecond timestamp,
// and a polarity that is +1 when the log-intensity at the pixel increased
// beyond threshold (ON event) and -1 when it decreased (OFF event).
package events

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// Polarity is the sign of the intensity change that triggered an event.
type Polarity int8

// Polarity values. The paper uses p = 1 for ON and p = -1 for OFF.
const (
	Off Polarity = -1
	On  Polarity = 1
)

// String implements fmt.Stringer.
func (p Polarity) String() string {
	switch p {
	case On:
		return "ON"
	case Off:
		return "OFF"
	default:
		return fmt.Sprintf("Polarity(%d)", int8(p))
	}
}

// Valid reports whether p is one of the two defined polarities.
func (p Polarity) Valid() bool { return p == On || p == Off }

// Event is one address-event: pixel location, microsecond timestamp and
// polarity.
type Event struct {
	X, Y int16
	// T is the event timestamp in microseconds from the start of the
	// recording, the native resolution of DAVIS-class sensors.
	T int64
	P Polarity
}

// Time returns the timestamp as a duration from the recording start.
func (e Event) Time() time.Duration { return time.Duration(e.T) * time.Microsecond }

// String implements fmt.Stringer.
func (e Event) String() string {
	return fmt.Sprintf("(%d,%d,%dus,%s)", e.X, e.Y, e.T, e.P)
}

// Resolution describes the sensor array dimensions. The paper's DAVIS has
// A = 240 columns and B = 180 rows.
type Resolution struct {
	// A is the number of columns (width, X extent).
	A int
	// B is the number of rows (height, Y extent).
	B int
}

// DAVIS240 is the resolution of the DAVIS sensor used in the paper.
var DAVIS240 = Resolution{A: 240, B: 180}

// Pixels returns the total pixel count A*B.
func (r Resolution) Pixels() int { return r.A * r.B }

// Contains reports whether (x, y) is a valid pixel address.
func (r Resolution) Contains(x, y int) bool {
	return x >= 0 && x < r.A && y >= 0 && y < r.B
}

// Validate returns an error if the resolution is not positive.
func (r Resolution) Validate() error {
	if r.A <= 0 || r.B <= 0 {
		return fmt.Errorf("events: invalid resolution %dx%d", r.A, r.B)
	}
	return nil
}

// ErrUnsorted is returned when an operation requires a time-sorted stream
// but the input is out of order.
var ErrUnsorted = errors.New("events: stream is not sorted by timestamp")

// Sorted reports whether the events are in non-decreasing timestamp order.
func Sorted(evs []Event) bool {
	for i := 1; i < len(evs); i++ {
		if evs[i].T < evs[i-1].T {
			return false
		}
	}
	return true
}

// SortByTime sorts the events in place by timestamp. The sort is stable so
// that events sharing a timestamp keep their sensor readout order, which
// matters for reproducible filtering.
func SortByTime(evs []Event) {
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].T < evs[j].T })
}

// Merge combines two time-sorted streams into one sorted stream. It returns
// ErrUnsorted if either input is unsorted. Ties are broken in favour of a,
// keeping merges deterministic.
func Merge(a, b []Event) ([]Event, error) {
	if !Sorted(a) || !Sorted(b) {
		return nil, ErrUnsorted
	}
	out := make([]Event, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].T <= b[j].T {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out, nil
}

// Slice returns the sub-stream with timestamps in [t0, t1). The input must
// be sorted; the result aliases evs.
func Slice(evs []Event, t0, t1 int64) []Event {
	lo := sort.Search(len(evs), func(i int) bool { return evs[i].T >= t0 })
	hi := sort.Search(len(evs), func(i int) bool { return evs[i].T >= t1 })
	return evs[lo:hi]
}

// Window is a half-open time interval [Start, End) holding the events that
// occurred within it, as delivered by one frame-period readout.
type Window struct {
	Start, End int64
	Events     []Event
}

// Duration returns the window length in microseconds.
func (w Window) Duration() int64 { return w.End - w.Start }

// Windows partitions a sorted stream into consecutive windows of frameUS
// microseconds, starting at the timestamp origin (t = 0). Empty trailing
// windows are not emitted, but empty windows between events are, so that the
// frame clock of the downstream pipeline never skips: the paper's
// interrupt-driven readout fires every tF regardless of scene activity.
func Windows(evs []Event, frameUS int64) ([]Window, error) {
	if frameUS <= 0 {
		return nil, fmt.Errorf("events: frame duration must be positive, got %d", frameUS)
	}
	if !Sorted(evs) {
		return nil, ErrUnsorted
	}
	if len(evs) == 0 {
		return nil, nil
	}
	last := evs[len(evs)-1].T
	n := int(last/frameUS) + 1
	out := make([]Window, 0, n)
	idx := 0
	for f := 0; f < n; f++ {
		start := int64(f) * frameUS
		end := start + frameUS
		lo := idx
		for idx < len(evs) && evs[idx].T < end {
			idx++
		}
		out = append(out, Window{Start: start, End: end, Events: evs[lo:idx]})
	}
	return out, nil
}

// Stats summarises a stream for dataset reporting (Table I in the paper).
type Stats struct {
	Count      int
	DurationUS int64
	OnCount    int
	OffCount   int
	// RatePerSec is the mean event rate over the stream duration.
	RatePerSec float64
}

// ComputeStats scans a sorted stream and returns its summary statistics.
func ComputeStats(evs []Event) Stats {
	var s Stats
	s.Count = len(evs)
	if len(evs) == 0 {
		return s
	}
	for _, e := range evs {
		if e.P == On {
			s.OnCount++
		} else {
			s.OffCount++
		}
	}
	s.DurationUS = evs[len(evs)-1].T - evs[0].T
	if s.DurationUS > 0 {
		s.RatePerSec = float64(s.Count) / (float64(s.DurationUS) / 1e6)
	}
	return s
}

// CountInBox returns how many events fall inside the given pixel box.
func CountInBox(evs []Event, x0, y0, x1, y1 int) int {
	n := 0
	for _, e := range evs {
		if int(e.X) >= x0 && int(e.X) < x1 && int(e.Y) >= y0 && int(e.Y) < y1 {
			n++
		}
	}
	return n
}

// Clip returns the events whose addresses fall inside the resolution,
// discarding any that a buggy or simulated source emitted out of range. The
// result reuses the input slice's backing array.
func Clip(evs []Event, res Resolution) []Event {
	out := evs[:0]
	for _, e := range evs {
		if res.Contains(int(e.X), int(e.Y)) {
			out = append(out, e)
		}
	}
	return out
}
