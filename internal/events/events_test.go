package events

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func ev(x, y int, t int64, p Polarity) Event {
	return Event{X: int16(x), Y: int16(y), T: t, P: p}
}

func TestPolarity(t *testing.T) {
	if On.String() != "ON" || Off.String() != "OFF" {
		t.Errorf("polarity strings wrong: %s %s", On, Off)
	}
	if !On.Valid() || !Off.Valid() {
		t.Error("On/Off should be valid")
	}
	if Polarity(0).Valid() || Polarity(2).Valid() {
		t.Error("0 and 2 should be invalid polarities")
	}
}

func TestEventTime(t *testing.T) {
	e := ev(0, 0, 1500, On)
	if e.Time() != 1500*time.Microsecond {
		t.Errorf("Time() = %v", e.Time())
	}
}

func TestResolution(t *testing.T) {
	if DAVIS240.Pixels() != 43200 {
		t.Errorf("DAVIS240 pixels = %d, want 43200", DAVIS240.Pixels())
	}
	if !DAVIS240.Contains(0, 0) || !DAVIS240.Contains(239, 179) {
		t.Error("corner pixels should be contained")
	}
	if DAVIS240.Contains(240, 0) || DAVIS240.Contains(0, 180) || DAVIS240.Contains(-1, 5) {
		t.Error("out of range pixels should not be contained")
	}
	if err := DAVIS240.Validate(); err != nil {
		t.Errorf("DAVIS240 should validate: %v", err)
	}
	if err := (Resolution{0, 10}).Validate(); err == nil {
		t.Error("zero-width resolution should not validate")
	}
}

func TestSortedAndSort(t *testing.T) {
	evs := []Event{ev(0, 0, 30, On), ev(1, 1, 10, Off), ev(2, 2, 20, On)}
	if Sorted(evs) {
		t.Error("stream should be detected as unsorted")
	}
	SortByTime(evs)
	if !Sorted(evs) {
		t.Error("stream should be sorted after SortByTime")
	}
	if evs[0].T != 10 || evs[2].T != 30 {
		t.Errorf("unexpected order: %v", evs)
	}
}

func TestSortStability(t *testing.T) {
	evs := []Event{ev(1, 0, 10, On), ev(2, 0, 10, Off), ev(3, 0, 10, On)}
	SortByTime(evs)
	if evs[0].X != 1 || evs[1].X != 2 || evs[2].X != 3 {
		t.Errorf("equal-timestamp events reordered: %v", evs)
	}
}

func TestMerge(t *testing.T) {
	a := []Event{ev(0, 0, 10, On), ev(0, 0, 30, On)}
	b := []Event{ev(1, 1, 20, Off), ev(1, 1, 40, Off)}
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{10, 20, 30, 40}
	for i, w := range want {
		if m[i].T != w {
			t.Errorf("merged[%d].T = %d, want %d", i, m[i].T, w)
		}
	}
	if _, err := Merge([]Event{ev(0, 0, 5, On), ev(0, 0, 1, On)}, nil); err != ErrUnsorted {
		t.Errorf("unsorted merge should fail, got %v", err)
	}
}

func TestMergeTieBreak(t *testing.T) {
	a := []Event{ev(1, 0, 10, On)}
	b := []Event{ev(2, 0, 10, Off)}
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m[0].X != 1 {
		t.Error("ties must favour the first stream")
	}
}

func TestSlice(t *testing.T) {
	evs := []Event{ev(0, 0, 0, On), ev(0, 0, 10, On), ev(0, 0, 20, On), ev(0, 0, 30, On)}
	got := Slice(evs, 10, 30)
	if len(got) != 2 || got[0].T != 10 || got[1].T != 20 {
		t.Errorf("Slice = %v", got)
	}
	if got := Slice(evs, 100, 200); len(got) != 0 {
		t.Errorf("out of range slice should be empty, got %v", got)
	}
	if got := Slice(evs, -10, 1); len(got) != 1 {
		t.Errorf("slice from before start = %v", got)
	}
}

func TestWindows(t *testing.T) {
	evs := []Event{
		ev(0, 0, 0, On),
		ev(0, 0, 50, On),
		ev(0, 0, 100, On),
		ev(0, 0, 310, On), // two empty windows before this one
	}
	ws, err := Windows(evs, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 4 {
		t.Fatalf("got %d windows, want 4", len(ws))
	}
	counts := []int{2, 1, 0, 1}
	for i, w := range ws {
		if len(w.Events) != counts[i] {
			t.Errorf("window %d has %d events, want %d", i, len(w.Events), counts[i])
		}
		if w.Start != int64(i)*100 || w.End != int64(i+1)*100 {
			t.Errorf("window %d bounds [%d,%d)", i, w.Start, w.End)
		}
		if w.Duration() != 100 {
			t.Errorf("window %d duration %d", i, w.Duration())
		}
	}
}

func TestWindowsErrors(t *testing.T) {
	if _, err := Windows(nil, 0); err == nil {
		t.Error("zero frame duration should error")
	}
	if _, err := Windows([]Event{ev(0, 0, 10, On), ev(0, 0, 5, On)}, 100); err != ErrUnsorted {
		t.Errorf("unsorted input should return ErrUnsorted, got %v", err)
	}
	ws, err := Windows(nil, 100)
	if err != nil || ws != nil {
		t.Errorf("empty stream: ws=%v err=%v", ws, err)
	}
}

func TestWindowsPartitionProperty(t *testing.T) {
	// Every event lands in exactly one window and windows tile the timeline.
	prop := func(raw []uint16) bool {
		evs := make([]Event, len(raw))
		for i, r := range raw {
			evs[i] = ev(int(r%240), int(r/240%180), int64(r), On)
		}
		SortByTime(evs)
		ws, err := Windows(evs, 66000)
		if err != nil {
			return false
		}
		total := 0
		for i, w := range ws {
			total += len(w.Events)
			if i > 0 && w.Start != ws[i-1].End {
				return false
			}
			for _, e := range w.Events {
				if e.T < w.Start || e.T >= w.End {
					return false
				}
			}
		}
		return total == len(evs)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestComputeStats(t *testing.T) {
	evs := []Event{ev(0, 0, 0, On), ev(0, 0, 500000, Off), ev(0, 0, 1000000, On)}
	s := ComputeStats(evs)
	if s.Count != 3 || s.OnCount != 2 || s.OffCount != 1 {
		t.Errorf("counts = %+v", s)
	}
	if s.DurationUS != 1000000 {
		t.Errorf("duration = %d", s.DurationUS)
	}
	if math.Abs(s.RatePerSec-3.0) > 1e-9 {
		t.Errorf("rate = %v, want 3", s.RatePerSec)
	}
	if s := ComputeStats(nil); s.Count != 0 || s.RatePerSec != 0 {
		t.Errorf("empty stats = %+v", s)
	}
}

func TestCountInBox(t *testing.T) {
	evs := []Event{ev(5, 5, 0, On), ev(10, 10, 0, On), ev(4, 5, 0, On)}
	if got := CountInBox(evs, 5, 5, 11, 11); got != 2 {
		t.Errorf("CountInBox = %d, want 2", got)
	}
}

func TestClip(t *testing.T) {
	evs := []Event{ev(0, 0, 0, On), ev(-1, 5, 1, On), ev(240, 0, 2, On), ev(239, 179, 3, Off)}
	got := Clip(evs, DAVIS240)
	if len(got) != 2 {
		t.Fatalf("Clip kept %d events, want 2", len(got))
	}
	if got[0].X != 0 || got[1].X != 239 {
		t.Errorf("Clip kept wrong events: %v", got)
	}
}
