package ebms

import (
	"math"
	"testing"

	"ebbiot/internal/events"
	"ebbiot/internal/geometry"
	"ebbiot/internal/scene"
	"ebbiot/internal/sensor"
	"ebbiot/internal/xrand"
)

// burst generates count events scattered within radius r of (cx, cy)
// between t0 and t1.
func burst(rng *xrand.Rand, cx, cy int, r int, count int, t0, t1 int64) []events.Event {
	out := make([]events.Event, 0, count)
	for i := 0; i < count; i++ {
		out = append(out, events.Event{
			X: int16(cx + rng.IntRange(-r, r)),
			Y: int16(cy + rng.IntRange(-r, r)),
			T: t0 + int64(rng.Float64()*float64(t1-t0)),
			P: events.On,
		})
	}
	events.SortByTime(out)
	return out
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.MaxClusters = 0 },
		func(c *Config) { c.Radius = 0 },
		func(c *Config) { c.MixFactor = 0 },
		func(c *Config) { c.MixFactor = 2 },
		func(c *Config) { c.ExpiryUS = 0 },
		func(c *Config) { c.HistoryStrideUS = 0 },
		func(c *Config) { c.Bounds = geometry.Box{} },
	}
	for i, mut := range mutations {
		cfg := DefaultConfig()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d should invalidate config", i)
		}
	}
}

func TestSingleClusterForms(t *testing.T) {
	tr, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(1)
	tr.Process(burst(rng, 100, 90, 8, 200, 0, 50_000))
	if tr.ActiveClusters() != 1 {
		t.Fatalf("active clusters = %d, want 1", tr.ActiveClusters())
	}
	reps := tr.Reports()
	if len(reps) != 1 {
		t.Fatalf("reports = %d, want 1", len(reps))
	}
	cx, cy := reps[0].Box.Center()
	if math.Abs(cx-100) > 6 || math.Abs(cy-90) > 6 {
		t.Errorf("cluster center (%v, %v), want ~(100, 90)", cx, cy)
	}
}

func TestClusterTracksMovingBurst(t *testing.T) {
	tr, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(2)
	// Object moving right at 60 px/s: bursts every 33 ms moving 2 px.
	for k := 0; k < 40; k++ {
		cx := 40 + 2*k
		t0 := int64(k) * 33_000
		tr.Process(burst(rng, cx, 90, 6, 60, t0, t0+33_000))
	}
	reps := tr.Reports()
	if len(reps) != 1 {
		t.Fatalf("reports = %d, want 1", len(reps))
	}
	ccx, _ := reps[0].Box.Center()
	want := 40.0 + 2*39
	if math.Abs(ccx-want) > 10 {
		t.Errorf("cluster x = %v, want ~%v", ccx, want)
	}
	// Velocity regression should see ~60 px/s rightward.
	if reps[0].VX < 30 || reps[0].VX > 90 {
		t.Errorf("VX = %v px/s, want ~60", reps[0].VX)
	}
	if math.Abs(reps[0].VY) > 15 {
		t.Errorf("VY = %v px/s, want ~0", reps[0].VY)
	}
}

func TestTwoClustersSeparate(t *testing.T) {
	tr, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(3)
	a := burst(rng, 50, 50, 6, 150, 0, 50_000)
	b := burst(rng, 180, 120, 6, 150, 0, 50_000)
	merged, err := events.Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	tr.Process(merged)
	if tr.ActiveClusters() != 2 {
		t.Fatalf("active clusters = %d, want 2", tr.ActiveClusters())
	}
}

func TestClusterExpiry(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ExpiryUS = 100_000
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(4)
	tr.Process(burst(rng, 100, 90, 6, 100, 0, 30_000))
	if tr.ActiveClusters() != 1 {
		t.Fatal("cluster not formed")
	}
	// A lone far-away event much later triggers expiry sweep.
	tr.Process([]events.Event{{X: 10, Y: 10, T: 400_000, P: events.On}})
	// The original cluster should be gone; only the new seed remains.
	if got := tr.ActiveClusters(); got != 1 {
		t.Fatalf("after expiry active = %d, want 1 (the new seed)", got)
	}
	if len(tr.Reports()) != 0 {
		t.Error("fresh seed should not be visible yet")
	}
}

func TestClustersMerge(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MergeDistance = 15
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(5)
	// Two clusters seeded apart, then their event sources converge until
	// the cluster centers come within MergeDistance.
	tr.Process(burst(rng, 50, 90, 5, 100, 0, 20_000))
	tr.Process(burst(rng, 140, 90, 5, 100, 0, 20_000))
	if tr.ActiveClusters() != 2 {
		t.Fatalf("precondition: want 2 clusters, got %d", tr.ActiveClusters())
	}
	// Move the two bursts toward each other, 2 px per 10 ms step.
	for k := 0; k < 22; k++ {
		t0 := 20_000 + int64(k)*10_000
		left := burst(rng, 50+2*k, 90, 5, 60, t0, t0+10_000)
		right := burst(rng, 140-2*k, 90, 5, 60, t0, t0+10_000)
		merged, err := events.Merge(left, right)
		if err != nil {
			t.Fatal(err)
		}
		tr.Process(merged)
	}
	if tr.ActiveClusters() != 1 {
		t.Errorf("converged clusters should merge: %d active", tr.ActiveClusters())
	}
	if tr.Merges() == 0 {
		t.Error("merge counter did not advance")
	}
}

func TestClusterCapRespected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxClusters = 2
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(6)
	streams := [][]events.Event{
		burst(rng, 30, 30, 4, 50, 0, 10_000),
		burst(rng, 120, 120, 4, 50, 0, 10_000),
		burst(rng, 200, 60, 4, 50, 0, 10_000),
	}
	var all []events.Event
	for _, s := range streams {
		all, err = events.Merge(all, s)
		if err != nil {
			t.Fatal(err)
		}
	}
	tr.Process(all)
	if tr.ActiveClusters() > 2 {
		t.Errorf("cluster cap exceeded: %d", tr.ActiveClusters())
	}
}

func TestSupportThreshold(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SupportEvents = 50
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(7)
	tr.Process(burst(rng, 100, 90, 5, 30, 0, 10_000))
	if len(tr.Reports()) != 0 {
		t.Error("under-supported cluster should not be reported")
	}
	tr.Process(burst(rng, 100, 90, 5, 40, 10_000, 20_000))
	if len(tr.Reports()) != 1 {
		t.Error("supported cluster should be reported")
	}
}

func TestOpsAndEventsCounters(t *testing.T) {
	tr, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(8)
	tr.Process(burst(rng, 100, 90, 5, 100, 0, 10_000))
	if tr.EventsSeen() != 100 {
		t.Errorf("EventsSeen = %d", tr.EventsSeen())
	}
	if tr.Ops() == 0 {
		t.Error("ops counter did not advance")
	}
}

func TestOnSimulatedScene(t *testing.T) {
	// End-to-end: EBMS on a clean simulated car should track it.
	sc := scene.SingleObjectScene(events.DAVIS240, 3_000_000)
	cfg := sensor.DefaultConfig(99)
	cfg.NoiseRatePerPixelHz = 0
	sim, err := sensor.New(cfg, sc)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for c := int64(0); c < 3_000_000; c += 66_000 {
		evs, err := sim.Events(c, c+66_000)
		if err != nil {
			t.Fatal(err)
		}
		tr.Process(evs)
	}
	reps := tr.Reports()
	if len(reps) == 0 {
		t.Fatal("EBMS lost the object")
	}
	// At t=3s, the car (entered x=-32, 60 px/s) spans x in [148, 180].
	gt := sc.GroundTruth(3_000_000-33_000, 4)
	if len(gt) != 1 {
		t.Fatal("no ground truth")
	}
	cx, _ := reps[0].Box.Center()
	gcx, _ := gt[0].Box.Center()
	if math.Abs(cx-gcx) > 20 {
		t.Errorf("cluster x = %v, ground truth x = %v", cx, gcx)
	}
}

func BenchmarkProcessPerEvent(b *testing.B) {
	tr, err := New(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	rng := xrand.New(1)
	evs := burst(rng, 100, 90, 10, 10000, 0, 1_000_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Process(evs[i%len(evs) : i%len(evs)+1])
	}
}
