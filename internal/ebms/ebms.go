// Package ebms implements the event-based mean-shift cluster tracker used
// as the fully event-driven baseline (Delbruck & Lang 2013, the paper's
// reference [4], with the cost model of Eq. 8).
//
// Every (noise-filtered) event is assigned to the nearest active cluster
// whose extent contains it; the cluster's position mixes exponentially
// toward the event (the mean-shift step). Events claimed by no cluster seed
// a new one while slots are available (CLmax = 8). Clusters that stop
// receiving events expire; overlapping clusters merge (probability γmerge
// in the cost model). Cluster velocity is estimated by least-squares
// regression over the last 10 recorded positions, as the paper assumes for
// Eq. 8's arithmetic.
//
// Unlike the frame-based trackers, EBMS has per-event costs: the paper's
// point is precisely that its computes scale with the event rate NF.
package ebms

import (
	"fmt"
	"math"

	"ebbiot/internal/events"
	"ebbiot/internal/geometry"
)

// historyLen is the number of past positions used for the least-squares
// velocity fit (10 in the paper's Eq. 8 accounting).
const historyLen = 10

// Config parameterises the mean-shift tracker.
type Config struct {
	// MaxClusters is CLmax; the paper uses 8.
	MaxClusters int
	// Radius is the cluster's capture radius in pixels: events within this
	// Chebyshev distance of a cluster center are assigned to it.
	Radius float64
	// MixFactor is the exponential mixing rate of the cluster center toward
	// each assigned event.
	MixFactor float64
	// SupportEvents is the minimum event count for a cluster to be
	// reported (visible, in Delbruck's terms).
	SupportEvents int
	// ExpiryUS removes a cluster not hit by any event for this long.
	ExpiryUS int64
	// MergeDistance merges two clusters whose centers approach within this
	// many pixels.
	MergeDistance float64
	// HistoryStrideUS is the spacing between recorded positions for the
	// velocity regression.
	HistoryStrideUS int64
	// Bounds is the sensor array.
	Bounds geometry.Box
}

// DefaultConfig returns parameters tuned for the paper's traffic scenes.
func DefaultConfig() Config {
	return Config{
		MaxClusters:     8,
		Radius:          25,
		MixFactor:       0.02,
		SupportEvents:   20,
		ExpiryUS:        200_000,
		MergeDistance:   12,
		HistoryStrideUS: 33_000,
		Bounds:          geometry.NewBox(0, 0, 240, 180),
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.MaxClusters <= 0 {
		return fmt.Errorf("ebms: MaxClusters must be positive, got %d", c.MaxClusters)
	}
	if c.Radius <= 0 {
		return fmt.Errorf("ebms: Radius must be positive, got %v", c.Radius)
	}
	if c.MixFactor <= 0 || c.MixFactor > 1 {
		return fmt.Errorf("ebms: MixFactor must be in (0,1], got %v", c.MixFactor)
	}
	if c.ExpiryUS <= 0 {
		return fmt.Errorf("ebms: ExpiryUS must be positive, got %d", c.ExpiryUS)
	}
	if c.HistoryStrideUS <= 0 {
		return fmt.Errorf("ebms: HistoryStrideUS must be positive, got %d", c.HistoryStrideUS)
	}
	if c.Bounds.Empty() {
		return fmt.Errorf("ebms: empty bounds")
	}
	return nil
}

// cluster is one mean-shift cluster.
type cluster struct {
	id     int
	cx, cy float64
	// sx, sy are exponentially-smoothed half-extents estimated from event
	// scatter, giving the reported box its size.
	sx, sy     float64
	count      int
	lastSeenUS int64
	// history holds up to historyLen (t, x, y) samples for the velocity
	// regression, spaced HistoryStrideUS apart.
	history    []sample
	lastHistUS int64
	valid      bool
}

type sample struct {
	tUS  int64
	x, y float64
}

// Report is one visible cluster's state.
type Report struct {
	ID  int
	Box geometry.Box
	// VX, VY are the regression velocity in px/s.
	VX, VY float64
	// Events is the cluster's accumulated event count.
	Events int
}

// Tracker is the EBMS multi-cluster tracker.
type Tracker struct {
	cfg      Config
	clusters []cluster
	nextID   int
	// ops approximates primitive operations under Eq. 8's accounting.
	ops int64
	// merges counts cluster merge episodes (the γmerge rate).
	merges int64
	// eventsSeen counts processed events.
	eventsSeen int64
}

// New returns a Tracker.
func New(cfg Config) (*Tracker, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Tracker{cfg: cfg, clusters: make([]cluster, cfg.MaxClusters)}, nil
}

// Ops returns the cumulative approximate operation count.
func (t *Tracker) Ops() int64 { return t.ops }

// Merges returns the number of cluster merges so far.
func (t *Tracker) Merges() int64 { return t.merges }

// EventsSeen returns the number of processed events.
func (t *Tracker) EventsSeen() int64 { return t.eventsSeen }

// ActiveClusters returns the number of live clusters.
func (t *Tracker) ActiveClusters() int {
	n := 0
	for i := range t.clusters {
		if t.clusters[i].valid {
			n++
		}
	}
	return n
}

// Process consumes a batch of time-sorted events, updating clusters per
// event.
func (t *Tracker) Process(evs []events.Event) {
	for _, e := range evs {
		t.processOne(e)
	}
}

func (t *Tracker) processOne(e events.Event) {
	t.eventsSeen++
	// Housekeeping runs on every event so stale clusters expire even when
	// the event seeds rather than matches.
	t.expireAndMerge(e.T)
	ex, ey := float64(e.X), float64(e.Y)

	// Find the nearest cluster whose capture radius contains the event.
	best := -1
	bestD := math.MaxFloat64
	for i := range t.clusters {
		c := &t.clusters[i]
		if !c.valid {
			continue
		}
		t.ops += 9 // distance computation + comparisons (Eq. 8's 9*CL/2 avg term)
		dx := math.Abs(ex - c.cx)
		dy := math.Abs(ey - c.cy)
		if dx > t.cfg.Radius+c.sx || dy > t.cfg.Radius+c.sy {
			continue
		}
		d := dx*dx + dy*dy
		if d < bestD {
			bestD = d
			best = i
		}
	}

	if best < 0 {
		t.seed(e)
		return
	}

	// Mean-shift update: mix the center toward the event and refresh the
	// extent estimate from the event offset.
	c := &t.clusters[best]
	m := t.cfg.MixFactor
	c.cx = (1-m)*c.cx + m*ex
	c.cy = (1-m)*c.cy + m*ey
	adx, ady := math.Abs(ex-c.cx), math.Abs(ey-c.cy)
	c.sx = (1-m)*c.sx + m*adx*2
	c.sy = (1-m)*c.sy + m*ady*2
	c.count++
	c.lastSeenUS = e.T
	t.ops += 169 // per-event update arithmetic (Eq. 8's 169 coefficient)

	// Record a history sample at the configured stride and refresh the
	// regression velocity.
	if e.T-c.lastHistUS >= t.cfg.HistoryStrideUS {
		c.lastHistUS = e.T
		c.history = append(c.history, sample{tUS: e.T, x: c.cx, y: c.cy})
		if len(c.history) > historyLen {
			c.history = c.history[len(c.history)-historyLen:]
		}
	}
}

// seed starts a new cluster at the event if a slot is free.
func (t *Tracker) seed(e events.Event) {
	for i := range t.clusters {
		if t.clusters[i].valid {
			continue
		}
		t.clusters[i] = cluster{
			id:         t.nextID,
			cx:         float64(e.X),
			cy:         float64(e.Y),
			sx:         4,
			sy:         4,
			count:      1,
			lastSeenUS: e.T,
			lastHistUS: e.T,
			history:    []sample{{tUS: e.T, x: float64(e.X), y: float64(e.Y)}},
			valid:      true,
		}
		t.nextID++
		t.ops += 11 // seeding constant of Eq. 8
		return
	}
}

// expireAndMerge removes stale clusters and merges converged ones.
func (t *Tracker) expireAndMerge(nowUS int64) {
	for i := range t.clusters {
		c := &t.clusters[i]
		if c.valid && nowUS-c.lastSeenUS > t.cfg.ExpiryUS {
			t.clusters[i] = cluster{}
		}
	}
	for i := range t.clusters {
		if !t.clusters[i].valid {
			continue
		}
		for j := i + 1; j < len(t.clusters); j++ {
			if !t.clusters[j].valid {
				continue
			}
			a, b := &t.clusters[i], &t.clusters[j]
			if math.Abs(a.cx-b.cx) < t.cfg.MergeDistance && math.Abs(a.cy-b.cy) < t.cfg.MergeDistance {
				// Keep the better-supported cluster.
				keep, drop := a, b
				di := j
				if b.count > a.count {
					keep, drop = b, a
					di = i
				}
				keep.count += drop.count
				keep.sx = math.Max(keep.sx, drop.sx)
				keep.sy = math.Max(keep.sy, drop.sy)
				t.clusters[di] = cluster{}
				t.merges++
				t.ops += 16 // merge constant of Eq. 8
			}
		}
	}
}

// velocity fits v = d(pos)/dt by least squares over the history samples,
// returning px/s.
func velocity(hist []sample) (vx, vy float64) {
	n := len(hist)
	if n < 2 {
		return 0, 0
	}
	t0 := hist[0].tUS
	var st, sx, sy, stt, stx, sty float64
	for _, h := range hist {
		ts := float64(h.tUS-t0) / 1e6
		st += ts
		sx += h.x
		sy += h.y
		stt += ts * ts
		stx += ts * h.x
		sty += ts * h.y
	}
	fn := float64(n)
	den := fn*stt - st*st
	if den < 1e-12 {
		return 0, 0
	}
	vx = (fn*stx - st*sx) / den
	vy = (fn*sty - st*sy) / den
	return vx, vy
}

// Reports returns the visible clusters (enough supporting events), with
// boxes derived from the scatter extents, clamped to bounds.
func (t *Tracker) Reports() []Report {
	var out []Report
	for i := range t.clusters {
		c := &t.clusters[i]
		if !c.valid || c.count < t.cfg.SupportEvents {
			continue
		}
		vx, vy := velocity(c.history)
		w := 2 * math.Max(c.sx, 2)
		h := 2 * math.Max(c.sy, 2)
		b := geometry.FBox{X: c.cx - w/2, Y: c.cy - h/2, W: w, H: h}.Round().Clamp(t.cfg.Bounds)
		if b.Empty() {
			continue
		}
		out = append(out, Report{ID: c.id, Box: b, VX: vx, VY: vy, Events: c.count})
	}
	return out
}
