package resources

import (
	"math"
	"testing"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", name, got, want, tol)
	}
}

func TestPaperDefaultsValidate(t *testing.T) {
	if err := PaperDefaults().Validate(); err != nil {
		t.Fatalf("paper defaults invalid: %v", err)
	}
}

func TestValidateCatchesBadParams(t *testing.T) {
	mutations := []func(*Params){
		func(p *Params) { p.A = 0 },
		func(p *Params) { p.P = 2 },
		func(p *Params) { p.Alpha = 1.5 },
		func(p *Params) { p.Beta = 0.5 },
		func(p *Params) { p.Bt = 0 },
		func(p *Params) { p.S1 = 0 },
		func(p *Params) { p.NF = -1 },
		func(p *Params) { p.CLMax = 0 },
	}
	for i, mut := range mutations {
		p := PaperDefaults()
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d should invalidate params", i)
		}
	}
}

// The tests below pin the equations to the paper's quoted Section II
// arithmetic.

func TestEq1EBBI(t *testing.T) {
	p := PaperDefaults()
	// Paper: C_EBBI ~ 125.2 kops/frame.
	approx(t, "C_EBBI", p.EBBIComputes(), 125280, 1)
	// Paper: M_EBBI = 2 A B bits = 10.8 kB.
	approx(t, "M_EBBI bits", p.EBBIMemoryBits(), 86400, 0)
	approx(t, "M_EBBI kB", p.EBBIMemoryBits()/8192, 10.55, 0.3)
}

func TestEq2NNFilt(t *testing.T) {
	p := PaperDefaults()
	// Paper: n = beta alpha A B with beta = 2 -> 8640 events/frame.
	approx(t, "n", p.EventsPerFrame(), 8640, 1e-9)
	// Paper: C_NN-filt ~ 276.4 kops/frame.
	approx(t, "C_NN", p.NNFiltComputes(), 276480, 1)
	// Paper: M_NN-filt = Bt A B; 8x more than EBBI at Bt = 16.
	approx(t, "M_NN bits", p.NNFiltMemoryBits(), 691200, 0)
	approx(t, "memory ratio", p.NNFiltMemoryBits()/p.EBBIMemoryBits(), 8, 1e-12)
}

func TestEq5RPN(t *testing.T) {
	p := PaperDefaults()
	// Formula as printed: A B + 2 A B/(s1 s2) = 48.0 kops (the paper quotes
	// 45.6; see the doc comment).
	approx(t, "C_RPN", p.RPNComputes(), 48000, 1)
	// Paper: M_RPN ~ 1.6 kB.
	approx(t, "M_RPN bits", p.RPNMemoryBits(), 13040, 1)
	approx(t, "M_RPN kB", p.RPNMemoryBits()/8192, 1.6, 0.05)
}

func TestEq6OT(t *testing.T) {
	p := PaperDefaults()
	// Paper: C_OT ~ 564 at NT ~ 2.
	approx(t, "C_OT", p.OTComputes(DefaultOTParams()), 564, 1)
	// Paper: OT memory is negligible, < 0.5 kB.
	if bits := p.OTMemoryBits(); bits/8192 >= 0.5 {
		t.Errorf("OT memory %v kB, want < 0.5", bits/8192)
	}
}

func TestEq7KF(t *testing.T) {
	p := PaperDefaults()
	// Paper: n = m = 2 NT = 4 -> C_KF = 1200.
	approx(t, "C_KF", p.KFComputesPaper(), 1200, 1e-9)
	// Paper: M_KF ~ 1.1 kB.
	approx(t, "M_KF kB", p.KFMemoryBitsPaper()/8192, 1.1, 0.2)
}

func TestEq8EBMS(t *testing.T) {
	p := PaperDefaults()
	// Paper: ~252 kops/frame at NF = 650, CL = 2, gamma = 0.1.
	approx(t, "C_EBMS", p.EBMSComputes(), 252330, 500)
	// Paper formula: M_EBMS = 408 CLmax + 56 bits.
	approx(t, "M_EBMS bits", p.EBMSMemoryBits(), 3320, 0)
}

func TestHeadlineRatios(t *testing.T) {
	p := PaperDefaults()
	cmp, err := p.Compare(DefaultOTParams())
	if err != nil {
		t.Fatal(err)
	}
	// Budgets[0] is EBBIOT (relative 1.0), [1] EBBI+KF, [2] EBMS.
	if cmp.RelComputes[0] != 1 || cmp.RelMemory[0] != 1 {
		t.Errorf("EBBIOT must be the unit reference: %+v", cmp)
	}
	// Abstract: ~3x fewer computes than the EBMS pipeline.
	approx(t, "EBMS compute ratio", cmp.RelComputes[2], 3.0, 0.3)
	// Abstract: ~7x less memory than the EBMS pipeline.
	approx(t, "EBMS memory ratio", cmp.RelMemory[2], 7.0, 0.7)
	// The KF pipeline differs from EBBIOT only in the tracker block, which
	// is negligible next to EBBI+RPN: ratios just above 1.
	if cmp.RelComputes[1] < 1 || cmp.RelComputes[1] > 1.05 {
		t.Errorf("EBBI+KF compute ratio = %v, want ~1", cmp.RelComputes[1])
	}
	if cmp.RelMemory[1] < 1 || cmp.RelMemory[1] > 1.15 {
		t.Errorf("EBBI+KF memory ratio = %v, want ~1", cmp.RelMemory[1])
	}
}

func TestCNNComparison(t *testing.T) {
	p := PaperDefaults()
	cnn := CNNRPNEstimate()
	// Abstract: >1000x less memory and computes than frame-based (CNN)
	// region proposal.
	if ratio := cnn.ComputesOps / p.RPNComputes(); ratio < 1000 {
		t.Errorf("CNN compute ratio = %v, want > 1000", ratio)
	}
	if ratio := cnn.MemoryBits / p.RPNMemoryBits(); ratio < 1000 {
		t.Errorf("CNN memory ratio = %v, want > 1000", ratio)
	}
}

func TestKFComputesFormula(t *testing.T) {
	// Spot check Eq. 7 symbolically: n = m = 1 -> 4+6+4+4+3 = 21.
	approx(t, "C_KF(1,1)", KFComputes(1, 1), 21, 1e-12)
	// Cubic growth.
	if KFComputes(8, 8) < 8*KFComputes(4, 4)*0.9 {
		t.Error("KF computes should grow cubically")
	}
}

func TestPipelineBudgetErrors(t *testing.T) {
	p := PaperDefaults()
	if _, err := p.PipelineBudget(Pipeline(99), DefaultOTParams()); err == nil {
		t.Error("unknown pipeline should error")
	}
	bad := p
	bad.A = -1
	if _, err := bad.PipelineBudget(PipelineEBBIOT, DefaultOTParams()); err == nil {
		t.Error("invalid params should error")
	}
}

func TestPipelineString(t *testing.T) {
	if PipelineEBBIOT.String() != "EBBIOT" || PipelineEBMS.String() != "EBMS" || PipelineEBBIKF.String() != "EBBI+KF" {
		t.Error("pipeline names wrong")
	}
	if Pipeline(42).String() != "Pipeline(42)" {
		t.Error("unknown pipeline formatting wrong")
	}
}

func TestBudgetKBytes(t *testing.T) {
	b := Budget{MemoryBits: 8192}
	if b.KBytes() != 1 {
		t.Errorf("KBytes = %v", b.KBytes())
	}
}

func TestScalingBehaviours(t *testing.T) {
	// EBBI computes scale linearly with activity; NN-filt scales with beta
	// as well, so denser firing favours the frame approach.
	p := PaperDefaults()
	busy := p
	busy.Alpha = 0.2
	if busy.EBBIComputes() <= p.EBBIComputes() {
		t.Error("EBBI computes should grow with alpha")
	}
	fast := p
	fast.Beta = 4
	if fast.NNFiltComputes() != 2*p.NNFiltComputes() {
		t.Error("NN computes should be linear in beta")
	}
	if fast.EBBIComputes() != p.EBBIComputes() {
		t.Error("EBBI computes must not depend on beta (binary latch)")
	}
}
