// Package resources implements the paper's analytic compute and memory
// models (Eqs. 1, 2, 5, 6, 7, 8) and the pipeline-level comparisons behind
// Fig. 5 and the headline claims (≈7x less memory, ≈3x fewer computes than
// NN-filt + EBMS; >1000x less than CNN-based region proposal).
//
// Computes are "primitive operations per frame" (comparisons, increments,
// memory writes) exactly as the paper counts them; memory is in bits. The
// implementations in internal/imgproc, internal/filter, internal/tracker
// and internal/ebms carry live counters so these closed forms can be
// cross-checked against measured counts.
package resources

import (
	"fmt"
	"math"
)

// Params collects the scene and sensor constants shared by the models,
// with the paper's defaults.
type Params struct {
	// A, B is the sensor resolution (240 x 180).
	A, B int
	// P is the noise-filter neighbourhood size (3).
	P int
	// Alpha is the fraction of active pixels per frame (~0.1: objects
	// occupy less than 10% of the image).
	Alpha float64
	// Beta is the average number of times an active pixel fires within a
	// frame (>= 1; the paper's conservative estimate uses 2).
	Beta float64
	// Bt is the timestamp width in bits for the NN filter (16).
	Bt int
	// S1, S2 are the RPN downsampling factors (6, 3).
	S1, S2 int
	// NT is the average number of valid trackers (~2 on the recordings).
	NT float64
	// NF is the average number of events per frame surviving the NN filter
	// (~650).
	NF float64
	// CL is the average number of active EBMS clusters (~NT ~ 2).
	CL float64
	// GammaMerge is the probability of a cluster merge per event (~0.1).
	GammaMerge float64
	// CLMax is the EBMS cluster capacity (8).
	CLMax int
}

// PaperDefaults returns the constants used in the paper's Section II
// arithmetic.
func PaperDefaults() Params {
	return Params{
		A: 240, B: 180,
		P:     3,
		Alpha: 0.1,
		Beta:  2.0,
		Bt:    16,
		S1:    6, S2: 3,
		NT:         2,
		NF:         650,
		CL:         2,
		GammaMerge: 0.1,
		CLMax:      8,
	}
}

// Validate checks that the parameters are physical.
func (p Params) Validate() error {
	if p.A <= 0 || p.B <= 0 {
		return fmt.Errorf("resources: invalid resolution %dx%d", p.A, p.B)
	}
	if p.P < 1 || p.P%2 == 0 {
		return fmt.Errorf("resources: invalid patch size %d", p.P)
	}
	if p.Alpha < 0 || p.Alpha > 1 {
		return fmt.Errorf("resources: alpha %v outside [0,1]", p.Alpha)
	}
	if p.Beta < 1 {
		return fmt.Errorf("resources: beta %v < 1", p.Beta)
	}
	if p.Bt <= 0 {
		return fmt.Errorf("resources: invalid Bt %d", p.Bt)
	}
	if p.S1 <= 0 || p.S2 <= 0 {
		return fmt.Errorf("resources: invalid scales %d, %d", p.S1, p.S2)
	}
	if p.NT < 0 || p.NF < 0 || p.CL < 0 {
		return fmt.Errorf("resources: negative rate parameter")
	}
	if p.CLMax <= 0 {
		return fmt.Errorf("resources: invalid CLMax %d", p.CLMax)
	}
	return nil
}

// EventsPerFrame returns n = beta * alpha * A * B, the raw event count per
// frame used by the NN-filter cost (Eq. 2).
func (p Params) EventsPerFrame() float64 {
	return p.Beta * p.Alpha * float64(p.A*p.B)
}

// EBBIComputes returns C_EBBI of Eq. 1: (alpha p^2 + 2) A B operations per
// frame — the median filter's counter increments on active pixels plus a
// comparison and the frame-memory write per pixel.
func (p Params) EBBIComputes() float64 {
	return (p.Alpha*float64(p.P*p.P) + 2) * float64(p.A*p.B)
}

// EBBIMemoryBits returns M_EBBI of Eq. 1: two binary frames (raw +
// filtered), one bit per pixel.
func (p Params) EBBIMemoryBits() float64 {
	return 2 * float64(p.A*p.B)
}

// NNFiltComputes returns C_NN-filt of Eq. 2: per event, 2(p^2 - 1)
// comparisons and increments plus one Bt-bit timestamp write.
func (p Params) NNFiltComputes() float64 {
	return (2*float64(p.P*p.P-1) + float64(p.Bt)) * p.EventsPerFrame()
}

// NNFiltMemoryBits returns M_NN-filt of Eq. 2: one Bt-bit timestamp per
// pixel.
func (p Params) NNFiltMemoryBits() float64 {
	return float64(p.Bt) * float64(p.A*p.B)
}

// RPNComputes returns C_RPN of Eq. 5: one pass over the full frame to build
// the scaled image plus two passes over the scaled image for the
// histograms.
//
// Note: evaluated at the paper's parameters this is 48.0 kops; the paper
// quotes 45.6 kops for the same expression (a small arithmetic slip in the
// paper; the formula is implemented as printed).
func (p Params) RPNComputes() float64 {
	ab := float64(p.A * p.B)
	return ab + 2*ab/float64(p.S1*p.S2)
}

// RPNMemoryBits returns M_RPN of Eq. 5: the scaled image at
// ceil(log2(s1 s2)) bits per entry plus the two histograms at their
// worst-case bit widths.
func (p Params) RPNMemoryBits() float64 {
	scaled := float64(p.A*p.B) / float64(p.S1*p.S2) * ceilLog2(p.S1*p.S2)
	hx := float64(p.A) / float64(p.S1) * ceilLog2(p.B*p.S1)
	hy := float64(p.B) / float64(p.S2) * ceilLog2(p.A*p.S2)
	return scaled + hx + hy
}

// OTParams are the per-step cost constants of Eq. 6's minor terms:
// gamma_j is the probability that tracker step j runs in a frame and N_j
// its cost when it does.
type OTParams struct {
	Gamma3, N3 float64 // seeding a new tracker
	Gamma4, N4 float64 // weighted update with fragment merge
	Gamma5, N5 float64 // contested proposal resolution
}

// DefaultOTParams returns minor-term constants consistent with the paper's
// C_OT ~ 564 at NT = 2 (the first term, 134 NT^2 = 536, dominates).
func DefaultOTParams() OTParams {
	return OTParams{
		Gamma3: 0.10, N3: 100,
		Gamma4: 0.50, N4: 30,
		Gamma5: 0.03, N5: 100,
	}
}

// OTComputes returns C_OT of Eq. 6: 134 NT^2 + sum_j gamma_j N_j.
func (p Params) OTComputes(ot OTParams) float64 {
	return 134*p.NT*p.NT + ot.Gamma3*ot.N3 + ot.Gamma4*ot.N4 + ot.Gamma5*ot.N5
}

// OTMemoryBits returns the overlap tracker's register footprint: per
// tracker, position (x, y), size (w, h), velocities and bookkeeping, all in
// 16-bit registers — under 0.5 kB for the 8-tracker pool as the paper
// states.
func (p Params) OTMemoryBits() float64 {
	const fieldsPerTracker = 10 // x, y, w, h, vx, vy, hits, misses, age, flags
	const bitsPerField = 16
	trackers := math.Max(p.NT, 1)
	// The pool is statically 8 deep regardless of average occupancy.
	if trackers < 8 {
		trackers = 8
	}
	return trackers * fieldsPerTracker * bitsPerField
}

// KFComputes returns C_KF of Eq. 7 for state size n and measurement size m:
// 4m^3 + 6m^2 n + 4mn^2 + 4n^3 + 3n^2. The paper evaluates it at
// n = m = 2 NT.
func KFComputes(n, m float64) float64 {
	return 4*m*m*m + 6*m*m*n + 4*m*n*n + 4*n*n*n + 3*n*n
}

// KFComputesPaper evaluates Eq. 7 at n = m = 2 NT.
func (p Params) KFComputesPaper() float64 {
	n := 2 * p.NT
	return KFComputes(n, n)
}

// KFMemoryBits returns the Kalman tracker's storage: state x (n), the
// matrices P, F, Q (n^2 each), H and K (mn each), R and S (m^2 each), the
// innovation (m) and two temporaries (n^2, mn), at 64-bit floats. At
// n = m = 4 this is ~1.2 kB, matching the paper's ~1.1 kB estimate.
func KFMemoryBits(n, m int) float64 {
	words := n + 3*n*n + 2*m*n + 2*m*m + m + n*n + m*n
	return float64(words) * 64
}

// KFMemoryBitsPaper evaluates KFMemoryBits at n = m = 2 NT.
func (p Params) KFMemoryBitsPaper() float64 {
	n := int(2 * p.NT)
	return KFMemoryBits(n, n)
}

// EBMSComputes returns C_EBMS of Eq. 8:
//
//	NF [ 9 CL^2 + (169 + 16 gamma_merge) CL + 11 ]
//
// per frame, where NF is the NN-filtered event rate per frame. At the
// paper's constants this is ~252 kops/frame.
func (p Params) EBMSComputes() float64 {
	return p.NF * (9*p.CL*p.CL + (169+16*p.GammaMerge)*p.CL + 11)
}

// EBMSMemoryBits returns M_EBMS of Eq. 8: 408 CLmax + 56 bits.
func (p Params) EBMSMemoryBits() float64 {
	return 408*float64(p.CLMax) + 56
}

// ceilLog2 returns ceil(log2(v)) as a float.
func ceilLog2(v int) float64 {
	if v <= 1 {
		return 0
	}
	return math.Ceil(math.Log2(float64(v)))
}

// Pipeline identifies one of the compared end-to-end systems.
type Pipeline int

// The three pipelines of Fig. 5.
const (
	// PipelineEBBIOT is EBBI + median + histogram RPN + overlap tracker.
	PipelineEBBIOT Pipeline = iota + 1
	// PipelineEBBIKF is EBBI + median + histogram RPN + Kalman filter.
	PipelineEBBIKF
	// PipelineEBMS is NN-filt + event-based mean shift.
	PipelineEBMS
)

// String implements fmt.Stringer.
func (pl Pipeline) String() string {
	switch pl {
	case PipelineEBBIOT:
		return "EBBIOT"
	case PipelineEBBIKF:
		return "EBBI+KF"
	case PipelineEBMS:
		return "EBMS"
	default:
		return fmt.Sprintf("Pipeline(%d)", int(pl))
	}
}

// Budget is a pipeline's total per-frame computes and memory.
type Budget struct {
	Pipeline    Pipeline
	ComputesOps float64
	MemoryBits  float64
}

// KBytes returns the memory in kilobytes (1 kB = 8192 bits).
func (b Budget) KBytes() float64 { return b.MemoryBits / 8192 }

// PipelineBudget sums the block models for the chosen pipeline.
func (p Params) PipelineBudget(pl Pipeline, ot OTParams) (Budget, error) {
	if err := p.Validate(); err != nil {
		return Budget{}, err
	}
	switch pl {
	case PipelineEBBIOT:
		return Budget{
			Pipeline:    pl,
			ComputesOps: p.EBBIComputes() + p.RPNComputes() + p.OTComputes(ot),
			MemoryBits:  p.EBBIMemoryBits() + p.RPNMemoryBits() + p.OTMemoryBits(),
		}, nil
	case PipelineEBBIKF:
		return Budget{
			Pipeline:    pl,
			ComputesOps: p.EBBIComputes() + p.RPNComputes() + p.KFComputesPaper(),
			MemoryBits:  p.EBBIMemoryBits() + p.RPNMemoryBits() + p.KFMemoryBitsPaper(),
		}, nil
	case PipelineEBMS:
		return Budget{
			Pipeline:    pl,
			ComputesOps: p.NNFiltComputes() + p.EBMSComputes(),
			MemoryBits:  p.NNFiltMemoryBits() + p.EBMSMemoryBits(),
		}, nil
	default:
		return Budget{}, fmt.Errorf("resources: unknown pipeline %d", int(pl))
	}
}

// Comparison is the Fig. 5 dataset: each pipeline's budget normalised to
// EBBIOT.
type Comparison struct {
	Budgets []Budget
	// RelComputes and RelMemory are indexed like Budgets, each entry the
	// ratio to the EBBIOT budget.
	RelComputes []float64
	RelMemory   []float64
}

// Compare computes the Fig. 5 comparison for the three pipelines.
func (p Params) Compare(ot OTParams) (Comparison, error) {
	pls := []Pipeline{PipelineEBBIOT, PipelineEBBIKF, PipelineEBMS}
	var cmp Comparison
	for _, pl := range pls {
		b, err := p.PipelineBudget(pl, ot)
		if err != nil {
			return Comparison{}, err
		}
		cmp.Budgets = append(cmp.Budgets, b)
	}
	base := cmp.Budgets[0]
	for _, b := range cmp.Budgets {
		cmp.RelComputes = append(cmp.RelComputes, b.ComputesOps/base.ComputesOps)
		cmp.RelMemory = append(cmp.RelMemory, b.MemoryBits/base.MemoryBits)
	}
	return cmp, nil
}

// CNNRPNEstimate returns a conservative floor for a CNN-based region
// proposal network's per-frame cost and memory (the ">1000x" comparison in
// the abstract): even a minimal one-pass detector at DAVIS resolution needs
// on the order of 100 Mops per frame and >1 GB of weights/activations; we
// use published tiny-YOLO figures scaled to 240x180 as the floor.
func CNNRPNEstimate() Budget {
	return Budget{
		ComputesOps: 5e9, // ~5 GFLOPs per detection pass
		MemoryBits:  8e9, // 1 GB of weights and activations
	}
}
