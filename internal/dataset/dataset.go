// Package dataset defines the synthetic replicas of the paper's two traffic
// recordings (Table I) and utilities for generating, describing and
// annotating them.
//
// The paper's data is 1.1 hours of DAVIS240 recordings at a traffic
// junction:
//
//	Location  Lens   Duration   Events
//	ENG       12 mm  2998.4 s   107.5 M
//	LT4       6 mm    999.5 s    12.5 M
//
// The recordings themselves are unpublished, so each preset pairs a traffic
// scene specification (lane layout, arrival rates, object mix, lens scale)
// with a sensor noise configuration, tuned so the synthetic recording
// reproduces the duration, mean event rate and object statistics of the
// original. A Scale parameter shrinks the duration for tests and benches
// while preserving all rates.
package dataset

import (
	"fmt"

	"ebbiot/internal/events"
	"ebbiot/internal/geometry"
	"ebbiot/internal/scene"
	"ebbiot/internal/sensor"
)

// Preset identifies one of the paper's recordings.
type Preset int

// The two recordings of Table I.
const (
	ENG Preset = iota + 1
	LT4
)

// String implements fmt.Stringer.
func (p Preset) String() string {
	switch p {
	case ENG:
		return "ENG"
	case LT4:
		return "LT4"
	default:
		return fmt.Sprintf("Preset(%d)", int(p))
	}
}

// Spec describes a recording to synthesise.
type Spec struct {
	Name string
	// LensMM is the lens focal length from Table I (documentation only; the
	// geometric effect enters through LensScale).
	LensMM float64
	// DurationUS is the recording length.
	DurationUS int64
	// TargetEvents is Table I's event count at full scale, used by the
	// Table I reproduction to report paper-vs-measured.
	TargetEvents int64
	// Traffic is the scene generator specification.
	Traffic scene.TrafficSpec
	// Sensor is the DAVIS model configuration.
	Sensor sensor.Config
}

// For returns the Spec for a preset at the given scale (1.0 = full length)
// and seed. Scale only shortens the duration; all rates, mixes and noise
// levels are scale-invariant, so a 1% replica has the same per-second
// statistics as the full recording.
func For(p Preset, scale float64, seed uint64) (Spec, error) {
	if scale <= 0 || scale > 1 {
		return Spec{}, fmt.Errorf("dataset: scale must be in (0,1], got %v", scale)
	}
	switch p {
	case ENG:
		return engSpec(scale, seed), nil
	case LT4:
		return lt4Spec(scale, seed), nil
	default:
		return Spec{}, fmt.Errorf("dataset: unknown preset %d", int(p))
	}
}

// engSpec models the ENG site: 12 mm lens (objects at full reference
// scale), heavier traffic, two lanes in opposite directions, a tree
// distractor band, and ~36 k events/s (107.5 M over 2998.4 s).
func engSpec(scale float64, seed uint64) Spec {
	durUS := int64(2_998_400_000 * scale)
	traffic := scene.TrafficSpec{
		Res:        events.DAVIS240,
		DurationUS: durUS,
		// Lane floors are separated by more than the tallest vehicle (36 px)
		// so the two traffic directions occupy disjoint horizontal bands,
		// matching the paper's side-view junction geometry.
		Lanes: []scene.Lane{
			{Y: 44, Dir: 1, Z: 2, ArrivalRateHz: 0.28},
			{Y: 100, Dir: -1, Z: 1, ArrivalRateHz: 0.22},
		},
		LensScale: 1.0,
		Distractors: []scene.Distractor{
			// Tree foliage along the top of the frame; removed by ROE in the
			// tracking experiments.
			{Box: TreeROEENG(), RatePerPixelHz: 6},
		},
		MinGapUS: 800_000,
		Seed:     seed,
	}
	sensorCfg := sensor.Config{
		Res:                 events.DAVIS240,
		NoiseRatePerPixelHz: 0.22,
		RefractoryUS:        300,
		TickUS:              1000,
		Seed:                seed + 1,
	}
	return Spec{
		Name:         "ENG",
		LensMM:       12,
		DurationUS:   durUS,
		TargetEvents: 107_500_000,
		Traffic:      traffic,
		Sensor:       sensorCfg,
	}
}

// lt4Spec models the LT4 site: 6 mm lens (objects half scale), lighter
// traffic and ~12.5 k events/s (12.5 M over 999.5 s).
func lt4Spec(scale float64, seed uint64) Spec {
	durUS := int64(999_500_000 * scale)
	traffic := scene.TrafficSpec{
		Res:        events.DAVIS240,
		DurationUS: durUS,
		Lanes: []scene.Lane{
			{Y: 58, Dir: 1, Z: 2, ArrivalRateHz: 0.20},
			{Y: 96, Dir: -1, Z: 1, ArrivalRateHz: 0.15},
		},
		LensScale: 0.5,
		MinGapUS:  600_000,
		Seed:      seed,
	}
	sensorCfg := sensor.Config{
		Res:                 events.DAVIS240,
		NoiseRatePerPixelHz: 0.28,
		RefractoryUS:        300,
		TickUS:              1000,
		Seed:                seed + 1,
	}
	return Spec{
		Name:         "LT4",
		LensMM:       6,
		DurationUS:   durUS,
		TargetEvents: 12_500_000,
		Traffic:      traffic,
		Sensor:       sensorCfg,
	}
}

// TreeROEENG returns the tree-distractor zone of the ENG preset, which
// doubles as the region of exclusion the tracking experiments apply.
func TreeROEENG() geometry.Box {
	return geometry.NewBox(0, 150, 120, 30)
}

// Recording is a generated dataset: the scene (with exact ground truth) and
// a ready simulator positioned at t = 0.
type Recording struct {
	Spec  Spec
	Scene *scene.Scene
	Sim   *sensor.Simulator
}

// Generate builds the scene and simulator for a spec.
func Generate(spec Spec) (*Recording, error) {
	sc, err := scene.Generate(spec.Traffic)
	if err != nil {
		return nil, fmt.Errorf("dataset: generating scene: %w", err)
	}
	sim, err := sensor.New(spec.Sensor, sc)
	if err != nil {
		return nil, fmt.Errorf("dataset: building simulator: %w", err)
	}
	return &Recording{Spec: spec, Scene: sc, Sim: sim}, nil
}

// TableRow is one row of the Table I reproduction.
type TableRow struct {
	Location string
	LensMM   float64
	// DurationS is the recording duration in seconds.
	DurationS float64
	// Events is the measured event count (at the generated scale).
	Events int64
	// PaperEvents is Table I's count scaled to the same duration.
	PaperEvents int64
	// Tracks is the number of ground-truth tracks.
	Tracks int
}

// MeasureTableRow streams the whole recording through the simulator,
// counting events, and returns the Table I row. The recording's simulator
// is consumed.
func MeasureTableRow(rec *Recording, frameUS int64) (TableRow, error) {
	if frameUS <= 0 {
		return TableRow{}, fmt.Errorf("dataset: frame duration must be positive")
	}
	var count int64
	for cursor := int64(0); cursor < rec.Spec.DurationUS; {
		end := cursor + frameUS
		if end > rec.Spec.DurationUS {
			end = rec.Spec.DurationUS
		}
		evs, err := rec.Sim.Events(cursor, end)
		if err != nil {
			return TableRow{}, err
		}
		count += int64(len(evs))
		cursor = end
	}
	fullDur := rec.Spec.DurationUS
	scaledTarget := int64(float64(rec.Spec.TargetEvents) * float64(fullDur) / fullDurationUS(rec.Spec.Name))
	return TableRow{
		Location:    rec.Spec.Name,
		LensMM:      rec.Spec.LensMM,
		DurationS:   float64(fullDur) / 1e6,
		Events:      count,
		PaperEvents: scaledTarget,
		Tracks:      rec.Scene.TrackCount(),
	}, nil
}

func fullDurationUS(name string) float64 {
	switch name {
	case "ENG":
		return 2_998_400_000
	case "LT4":
		return 999_500_000
	default:
		return 1
	}
}
