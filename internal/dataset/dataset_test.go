package dataset

import (
	"math"
	"testing"
)

func TestPresetString(t *testing.T) {
	if ENG.String() != "ENG" || LT4.String() != "LT4" {
		t.Error("preset names wrong")
	}
	if Preset(9).String() != "Preset(9)" {
		t.Error("unknown preset formatting wrong")
	}
}

func TestForValidation(t *testing.T) {
	if _, err := For(ENG, 0, 1); err == nil {
		t.Error("zero scale should error")
	}
	if _, err := For(ENG, 1.5, 1); err == nil {
		t.Error("scale > 1 should error")
	}
	if _, err := For(Preset(42), 0.5, 1); err == nil {
		t.Error("unknown preset should error")
	}
}

func TestSpecsMatchTableI(t *testing.T) {
	eng, err := For(ENG, 1.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if eng.LensMM != 12 || eng.TargetEvents != 107_500_000 {
		t.Errorf("ENG header wrong: %+v", eng)
	}
	if math.Abs(float64(eng.DurationUS)/1e6-2998.4) > 0.01 {
		t.Errorf("ENG duration = %v s", float64(eng.DurationUS)/1e6)
	}
	lt4, err := For(LT4, 1.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lt4.LensMM != 6 || lt4.TargetEvents != 12_500_000 {
		t.Errorf("LT4 header wrong: %+v", lt4)
	}
	if math.Abs(float64(lt4.DurationUS)/1e6-999.5) > 0.01 {
		t.Errorf("LT4 duration = %v s", float64(lt4.DurationUS)/1e6)
	}
	// LT4 uses the wide lens: half-scale objects.
	if lt4.Traffic.LensScale != 0.5 || eng.Traffic.LensScale != 1.0 {
		t.Error("lens scales wrong")
	}
}

func TestScaleShrinksDurationOnly(t *testing.T) {
	full, err := For(ENG, 1.0, 7)
	if err != nil {
		t.Fatal(err)
	}
	small, err := For(ENG, 0.01, 7)
	if err != nil {
		t.Fatal(err)
	}
	if small.DurationUS >= full.DurationUS {
		t.Error("scale did not shrink duration")
	}
	if small.Sensor.NoiseRatePerPixelHz != full.Sensor.NoiseRatePerPixelHz {
		t.Error("noise rate must be scale invariant")
	}
	if small.Traffic.Lanes[0].ArrivalRateHz != full.Traffic.Lanes[0].ArrivalRateHz {
		t.Error("arrival rate must be scale invariant")
	}
}

func TestGenerateAndMeasureENGRates(t *testing.T) {
	// A 10-second ENG replica must land in the right event-rate ballpark:
	// Table I implies ~35.9 k events/s.
	spec, err := For(ENG, 10.0/2998.4, 42)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	row, err := MeasureTableRow(rec, 66_000)
	if err != nil {
		t.Fatal(err)
	}
	rate := float64(row.Events) / row.DurationS
	paperRate := 107_500_000 / 2998.4
	if rate < paperRate*0.5 || rate > paperRate*1.6 {
		t.Errorf("ENG event rate = %.0f /s, paper implies %.0f /s", rate, paperRate)
	}
	if row.Location != "ENG" || row.LensMM != 12 {
		t.Errorf("row header: %+v", row)
	}
	if row.PaperEvents <= 0 || math.Abs(float64(row.PaperEvents)-107_500_000*10/2998.4) > 2000 {
		t.Errorf("scaled paper target = %d", row.PaperEvents)
	}
}

func TestGenerateAndMeasureLT4Rates(t *testing.T) {
	spec, err := For(LT4, 10.0/999.5, 42)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	row, err := MeasureTableRow(rec, 66_000)
	if err != nil {
		t.Fatal(err)
	}
	rate := float64(row.Events) / row.DurationS
	paperRate := 12_500_000 / 999.5
	if rate < paperRate*0.5 || rate > paperRate*1.8 {
		t.Errorf("LT4 event rate = %.0f /s, paper implies %.0f /s", rate, paperRate)
	}
}

func TestMeasureTableRowValidation(t *testing.T) {
	spec, err := For(LT4, 0.001, 1)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MeasureTableRow(rec, 0); err == nil {
		t.Error("zero frame duration should error")
	}
}

func TestTreeROEMatchesDistractor(t *testing.T) {
	spec, err := For(ENG, 0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Traffic.Distractors) != 1 {
		t.Fatal("ENG should have one distractor")
	}
	if spec.Traffic.Distractors[0].Box != TreeROEENG() {
		t.Error("ROE does not match the distractor zone")
	}
}

func TestDeterministicGeneration(t *testing.T) {
	mk := func() int64 {
		spec, err := For(LT4, 0.005, 9)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		row, err := MeasureTableRow(rec, 66_000)
		if err != nil {
			t.Fatal(err)
		}
		return row.Events
	}
	if a, b := mk(), mk(); a != b {
		t.Errorf("same seed produced different event counts: %d vs %d", a, b)
	}
}
