package aedat

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"ebbiot/internal/events"
)

func sample() []events.Event {
	return []events.Event{
		{X: 0, Y: 0, T: 0, P: events.On},
		{X: 239, Y: 179, T: 15, P: events.Off},
		{X: 7, Y: 9, T: 15, P: events.On}, // duplicate timestamp allowed
		{X: 100, Y: 50, T: 1_000_000, P: events.Off},
	}
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, events.DAVIS240, sample()); err != nil {
		t.Fatal(err)
	}
	res, got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if res != events.DAVIS240 {
		t.Errorf("resolution = %v", res)
	}
	want := sample()
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestRoundTripEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, events.DAVIS240, nil); err != nil {
		t.Fatal(err)
	}
	_, got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("empty round trip yielded %d events", len(got))
	}
}

func TestWriteRejectsUnsorted(t *testing.T) {
	evs := []events.Event{{T: 10}, {T: 5}}
	var buf bytes.Buffer
	if err := Write(&buf, events.DAVIS240, evs); !errors.Is(err, events.ErrUnsorted) {
		t.Errorf("want ErrUnsorted, got %v", err)
	}
}

func TestWriteRejectsOutOfBounds(t *testing.T) {
	evs := []events.Event{{X: 240, Y: 0, T: 0, P: events.On}}
	var buf bytes.Buffer
	if err := Write(&buf, events.DAVIS240, evs); err == nil {
		t.Error("out-of-bounds event should fail to encode")
	}
}

func TestReadRejectsBadMagic(t *testing.T) {
	if _, _, err := Read(bytes.NewReader(make([]byte, 64))); !errors.Is(err, ErrBadMagic) {
		t.Errorf("want ErrBadMagic, got %v", err)
	}
}

func TestReadTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, events.DAVIS240, sample()); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-5]
	if _, _, err := Read(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated stream should error")
	}
}

func TestStreamingReaderWindows(t *testing.T) {
	evs := []events.Event{
		{X: 1, Y: 1, T: 10, P: events.On},
		{X: 2, Y: 2, T: 60, P: events.On},
		{X: 3, Y: 3, T: 120, P: events.Off},
		{X: 4, Y: 4, T: 130, P: events.On},
	}
	var buf bytes.Buffer
	if err := Write(&buf, events.DAVIS240, evs); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	w1, err := r.NextWindow(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(w1) != 2 {
		t.Fatalf("window 1 has %d events, want 2", len(w1))
	}
	w2, err := r.NextWindow(200)
	if !errors.Is(err, io.EOF) {
		t.Fatalf("want EOF at stream end, got %v", err)
	}
	if len(w2) != 2 {
		t.Fatalf("window 2 has %d events, want 2", len(w2))
	}
}

func TestStreamingWriter(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rec.aer")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWriter(f, events.DAVIS240)
	if err != nil {
		t.Fatal(err)
	}
	evs := sample()
	if err := w.Append(evs[:2]); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(evs[2:]); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 4 {
		t.Errorf("Count = %d", w.Count())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	res, got, err := Read(rf)
	if err != nil {
		t.Fatal(err)
	}
	if res != events.DAVIS240 {
		t.Errorf("resolution = %v", res)
	}
	if len(got) != 4 {
		t.Fatalf("got %d events", len(got))
	}
	for i, e := range evs {
		if got[i] != e {
			t.Errorf("event %d = %v, want %v", i, got[i], e)
		}
	}
}

func TestStreamingWriterRejectsRegression(t *testing.T) {
	dir := t.TempDir()
	f, err := os.Create(filepath.Join(dir, "rec.aer"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w, err := NewWriter(f, events.DAVIS240)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]events.Event{{T: 100, P: events.On}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]events.Event{{T: 50, P: events.On}}); !errors.Is(err, events.ErrUnsorted) {
		t.Errorf("want ErrUnsorted, got %v", err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	// Arbitrary sorted in-bounds streams must round trip exactly.
	prop := func(raw []uint32) bool {
		evs := make([]events.Event, len(raw))
		var tcur int64
		for i, r := range raw {
			tcur += int64(r % 100000)
			p := events.On
			if r%2 == 0 {
				p = events.Off
			}
			evs[i] = events.Event{
				X: int16(r % 240),
				Y: int16((r / 240) % 180),
				T: tcur,
				P: p,
			}
		}
		var buf bytes.Buffer
		if err := Write(&buf, events.DAVIS240, evs); err != nil {
			return false
		}
		_, got, err := Read(&buf)
		if err != nil {
			return false
		}
		if len(got) != len(evs) {
			return false
		}
		for i := range evs {
			if got[i] != evs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFileSizeMatchesFormula(t *testing.T) {
	var buf bytes.Buffer
	evs := sample()
	if err := Write(&buf, events.DAVIS240, evs); err != nil {
		t.Fatal(err)
	}
	want := 20 + len(evs)*10 // header 8+2+2+8, 10 bytes per event
	if buf.Len() != want {
		t.Errorf("encoded size = %d, want %d", buf.Len(), want)
	}
}

func BenchmarkWrite(b *testing.B) {
	evs := make([]events.Event, 100000)
	for i := range evs {
		evs[i] = events.Event{X: int16(i % 240), Y: int16(i % 180), T: int64(i * 10), P: events.On}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := Write(&buf, events.DAVIS240, evs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRead(b *testing.B) {
	evs := make([]events.Event, 100000)
	for i := range evs {
		evs[i] = events.Event{X: int16(i % 240), Y: int16(i % 180), T: int64(i * 10), P: events.On}
	}
	var buf bytes.Buffer
	if err := Write(&buf, events.DAVIS240, evs); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Read(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
