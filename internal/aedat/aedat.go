// Package aedat implements a compact binary container for address-event
// recordings, modelled on the AEDAT format produced by DAVIS tooling.
//
// Layout (all little endian):
//
//	magic    [8]byte  "EBBIAER1"
//	width    uint16   sensor columns (A)
//	height   uint16   sensor rows (B)
//	count    uint64   number of events
//	events   count * 10 bytes:
//	           x  uint16
//	           y  uint16
//	           dt uint32  timestamp delta from previous event (us)
//	           p  uint8   1 = ON, 0 = OFF
//	           _  uint8   reserved (0)
//
// Delta-encoded timestamps keep 1-hour recordings within uint32 range per
// event while preserving microsecond resolution.
package aedat

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"ebbiot/internal/events"
)

var magic = [8]byte{'E', 'B', 'B', 'I', 'A', 'E', 'R', '1'}

// ErrBadMagic is returned when the stream does not start with the format
// magic.
var ErrBadMagic = errors.New("aedat: bad magic (not an EBBI AER recording)")

const eventSize = 10

// header is the fixed-size file prefix.
type header struct {
	Magic  [8]byte
	Width  uint16
	Height uint16
	Count  uint64
}

// Write encodes a sorted event stream to w. It returns an error if the
// stream is unsorted, an event lies outside the resolution, or consecutive
// timestamps differ by more than 2^32-1 microseconds.
func Write(w io.Writer, res events.Resolution, evs []events.Event) error {
	if err := res.Validate(); err != nil {
		return err
	}
	if !events.Sorted(evs) {
		return events.ErrUnsorted
	}
	bw := bufio.NewWriter(w)
	h := header{Magic: magic, Width: uint16(res.A), Height: uint16(res.B), Count: uint64(len(evs))}
	if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
		return fmt.Errorf("aedat: writing header: %w", err)
	}
	var buf [eventSize]byte
	prev := int64(0)
	for i, e := range evs {
		if !res.Contains(int(e.X), int(e.Y)) {
			return fmt.Errorf("aedat: event %d at (%d,%d) outside %dx%d", i, e.X, e.Y, res.A, res.B)
		}
		dt := e.T - prev
		if dt < 0 || dt > 0xFFFFFFFF {
			return fmt.Errorf("aedat: event %d timestamp delta %d out of range", i, dt)
		}
		prev = e.T
		binary.LittleEndian.PutUint16(buf[0:2], uint16(e.X))
		binary.LittleEndian.PutUint16(buf[2:4], uint16(e.Y))
		binary.LittleEndian.PutUint32(buf[4:8], uint32(dt))
		if e.P == events.On {
			buf[8] = 1
		} else {
			buf[8] = 0
		}
		buf[9] = 0
		if _, err := bw.Write(buf[:]); err != nil {
			return fmt.Errorf("aedat: writing event %d: %w", i, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("aedat: flushing: %w", err)
	}
	return nil
}

// Read decodes a full recording from r.
func Read(r io.Reader) (events.Resolution, []events.Event, error) {
	dec, err := NewReader(r)
	if err != nil {
		return events.Resolution{}, nil, err
	}
	evs := make([]events.Event, 0, dec.Remaining())
	for {
		e, err := dec.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return dec.Resolution(), nil, err
		}
		evs = append(evs, e)
	}
	return dec.Resolution(), evs, nil
}

// Reader decodes a recording incrementally, so hour-long streams can be
// processed frame by frame without holding every event in memory.
type Reader struct {
	br        *bufio.Reader
	res       events.Resolution
	remaining uint64
	prevT     int64
	// scratch is the per-event decode buffer; keeping it in the struct stops
	// it escaping to the heap once per decoded event.
	scratch [eventSize]byte
}

// NewReader parses the header and returns a streaming decoder.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var h header
	if err := binary.Read(br, binary.LittleEndian, &h); err != nil {
		return nil, fmt.Errorf("aedat: reading header: %w", err)
	}
	if h.Magic != magic {
		return nil, ErrBadMagic
	}
	res := events.Resolution{A: int(h.Width), B: int(h.Height)}
	if err := res.Validate(); err != nil {
		return nil, err
	}
	return &Reader{br: br, res: res, remaining: h.Count}, nil
}

// Resolution returns the recording's sensor resolution.
func (r *Reader) Resolution() events.Resolution { return r.res }

// Remaining returns how many events have not yet been decoded.
func (r *Reader) Remaining() uint64 { return r.remaining }

// Next decodes one event, returning io.EOF after the last one.
func (r *Reader) Next() (events.Event, error) {
	if r.remaining == 0 {
		return events.Event{}, io.EOF
	}
	if _, err := io.ReadFull(r.br, r.scratch[:]); err != nil {
		return events.Event{}, fmt.Errorf("aedat: reading event: %w", err)
	}
	r.remaining--
	x := binary.LittleEndian.Uint16(r.scratch[0:2])
	y := binary.LittleEndian.Uint16(r.scratch[2:4])
	dt := binary.LittleEndian.Uint32(r.scratch[4:8])
	r.prevT += int64(dt)
	p := events.Off
	if r.scratch[8] == 1 {
		p = events.On
	}
	e := events.Event{X: int16(x), Y: int16(y), T: r.prevT, P: p}
	if !r.res.Contains(int(e.X), int(e.Y)) {
		return events.Event{}, fmt.Errorf("aedat: decoded event at (%d,%d) outside %dx%d", e.X, e.Y, r.res.A, r.res.B)
	}
	return e, nil
}

// NextWindow decodes all events with timestamps below end. It is the
// streaming analogue of events.Windows for frame-driven pipelines: call it
// once per frame interrupt with end = frame boundary. Returns io.EOF along
// with any final events once the stream is exhausted.
func (r *Reader) NextWindow(end int64) ([]events.Event, error) {
	return r.NextWindowInto(nil, end)
}

// NextWindowInto is NextWindow appending into a caller-owned buffer, so
// streaming pipelines can recycle one window buffer instead of allocating
// per frame. The extended slice is returned.
func (r *Reader) NextWindowInto(buf []events.Event, end int64) ([]events.Event, error) {
	out := buf
	for {
		if r.remaining == 0 {
			return out, io.EOF
		}
		// Peek at the next event's delta to see if it crosses the boundary.
		hdr, err := r.br.Peek(eventSize)
		if err != nil {
			return out, fmt.Errorf("aedat: peeking event: %w", err)
		}
		dt := binary.LittleEndian.Uint32(hdr[4:8])
		if r.prevT+int64(dt) >= end {
			return out, nil
		}
		e, err := r.Next()
		if err != nil {
			return out, err
		}
		out = append(out, e)
	}
}

// Writer encodes a recording incrementally. The caller must Close to flush
// the buffered tail and must know the event count in advance is NOT
// required: the header count is back-filled only when the underlying writer
// is an io.WriteSeeker; otherwise use Write for one-shot encoding.
type Writer struct {
	w     io.WriteSeeker
	bw    *bufio.Writer
	res   events.Resolution
	prevT int64
	count uint64
}

// NewWriter writes a provisional header and returns a streaming encoder.
func NewWriter(w io.WriteSeeker, res events.Resolution) (*Writer, error) {
	if err := res.Validate(); err != nil {
		return nil, err
	}
	bw := bufio.NewWriter(w)
	h := header{Magic: magic, Width: uint16(res.A), Height: uint16(res.B)}
	if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
		return nil, fmt.Errorf("aedat: writing header: %w", err)
	}
	return &Writer{w: w, bw: bw, res: res}, nil
}

// Append encodes a batch of events, which must continue the sorted order of
// everything written so far.
func (w *Writer) Append(evs []events.Event) error {
	var buf [eventSize]byte
	for i, e := range evs {
		if !w.res.Contains(int(e.X), int(e.Y)) {
			return fmt.Errorf("aedat: event %d at (%d,%d) outside %dx%d", i, e.X, e.Y, w.res.A, w.res.B)
		}
		dt := e.T - w.prevT
		if dt < 0 {
			return events.ErrUnsorted
		}
		if dt > 0xFFFFFFFF {
			return fmt.Errorf("aedat: timestamp delta %d out of range", dt)
		}
		w.prevT = e.T
		binary.LittleEndian.PutUint16(buf[0:2], uint16(e.X))
		binary.LittleEndian.PutUint16(buf[2:4], uint16(e.Y))
		binary.LittleEndian.PutUint32(buf[4:8], uint32(dt))
		if e.P == events.On {
			buf[8] = 1
		} else {
			buf[8] = 0
		}
		buf[9] = 0
		if _, err := w.bw.Write(buf[:]); err != nil {
			return fmt.Errorf("aedat: writing event: %w", err)
		}
		w.count++
	}
	return nil
}

// Close flushes buffered events and back-fills the header's event count.
func (w *Writer) Close() error {
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("aedat: flushing: %w", err)
	}
	// Seek back to the count field (offset 12: magic 8 + width 2 + height 2).
	if _, err := w.w.Seek(12, io.SeekStart); err != nil {
		return fmt.Errorf("aedat: seeking to header: %w", err)
	}
	var cnt [8]byte
	binary.LittleEndian.PutUint64(cnt[:], w.count)
	if _, err := w.w.Write(cnt[:]); err != nil {
		return fmt.Errorf("aedat: back-filling count: %w", err)
	}
	if _, err := w.w.Seek(0, io.SeekEnd); err != nil {
		return fmt.Errorf("aedat: seeking to end: %w", err)
	}
	return nil
}

// Count returns the number of events appended so far.
func (w *Writer) Count() uint64 { return w.count }
