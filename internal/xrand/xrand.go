// Package xrand implements a small, fast, deterministic pseudo-random number
// generator used by the dataset synthesiser and the sensor noise model.
//
// The standard library's math/rand is avoided so that generated recordings
// are reproducible byte-for-byte across Go releases: math/rand's stream is
// not guaranteed stable between versions, while this package's SplitMix64 /
// xoshiro256** pair is a fixed published algorithm.
package xrand

import "math"

// splitMix64 advances the given state and returns the next output of the
// SplitMix64 generator (Steele, Lea & Flood 2014). It is used only to seed
// xoshiro256**.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rand is a deterministic xoshiro256** generator. The zero value is not
// usable; construct with New.
type Rand struct {
	s [4]uint64
	// spare Gaussian from the last Box-Muller pair, if any.
	gauss    float64
	hasGauss bool
}

// New returns a generator seeded from the given seed via SplitMix64, as
// recommended by the xoshiro authors.
func New(seed uint64) *Rand {
	var r Rand
	sm := seed
	for i := range r.s {
		r.s[i] = splitMix64(&sm)
	}
	// A xoshiro state of all zeros would be a fixed point; SplitMix64 cannot
	// produce four zero outputs in a row, so no further check is needed.
	return &r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	// Lemire's nearly-divisionless bounded generation would be faster, but
	// simple modulo with rejection keeps the stream easy to reason about.
	bound := uint64(n)
	threshold := (-bound) % bound // 2^64 mod n
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Int63 returns a non-negative 63-bit integer.
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Range returns a uniform float64 in [lo, hi).
func (r *Rand) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// IntRange returns a uniform integer in [lo, hi]. It panics if hi < lo.
func (r *Rand) IntRange(lo, hi int) int {
	if hi < lo {
		panic("xrand: IntRange called with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// NormFloat64 returns a standard normal variate using the Box-Muller
// transform (polar form avoided for stream stability — trig form consumes a
// fixed two uniforms per pair).
func (r *Rand) NormFloat64() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	// Avoid log(0) by shifting u1 into (0, 1].
	u1 := 1 - r.Float64()
	u2 := r.Float64()
	mag := math.Sqrt(-2 * math.Log(u1))
	r.gauss = mag * math.Sin(2*math.Pi*u2)
	r.hasGauss = true
	return mag * math.Cos(2*math.Pi*u2)
}

// ExpFloat64 returns an exponential variate with rate 1 (mean 1). Scale by
// 1/lambda for other rates; used for Poisson-process inter-arrival times in
// the sensor noise model.
func (r *Rand) ExpFloat64() float64 {
	// Shift into (0, 1] so the log is finite.
	return -math.Log(1 - r.Float64())
}

// Poisson returns a Poisson variate with the given mean using Knuth's
// multiplication method for small means and a normal approximation above 30,
// which is ample for the per-patch event counts the simulator draws.
func (r *Rand) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		v := mean + math.Sqrt(mean)*r.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	limit := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= limit {
			return k
		}
		k++
	}
}

// Shuffle permutes the first n elements using swap, via Fisher-Yates.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Fork returns a new generator deterministically derived from this one's
// stream, so independent subsystems (noise, trajectories, textures) can
// consume randomness without perturbing each other's sequences.
func (r *Rand) Fork() *Rand {
	return New(r.Uint64())
}
