package control

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ebbiot/internal/events"
	"ebbiot/internal/geometry"
	"ebbiot/internal/pipeline"
)

// countSystem is a minimal deterministic core.System for server tests.
type countSystem struct{ windows int }

func (c *countSystem) Name() string { return "count" }

func (c *countSystem) ProcessWindow(evs []events.Event) ([]geometry.Box, error) {
	c.windows++
	if len(evs) == 0 {
		return nil, nil
	}
	return []geometry.Box{geometry.NewBox(len(evs), c.windows, 2, 2)}, nil
}

// runOnce drives a short two-stream run so the server has real status.
func runOnce(t *testing.T, runner *pipeline.Runner, tuner func(i int) pipeline.Tuner) {
	t.Helper()
	streams := make([]pipeline.Stream, 2)
	for i := range streams {
		var evs []events.Event
		for ts := int64(0); ts < 500_000; ts += 1000 {
			evs = append(evs, events.Event{X: int16(i + 1), Y: 2, T: ts, P: events.On})
		}
		src, err := pipeline.NewSliceSource(evs)
		if err != nil {
			t.Fatal(err)
		}
		streams[i] = pipeline.Stream{Name: fmt.Sprintf("cam%d", i), Source: src, System: &countSystem{}}
		if tuner != nil {
			streams[i].Tuner = tuner(i)
		}
	}
	if _, err := runner.Run(context.Background(), streams, nil); err != nil {
		t.Fatal(err)
	}
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

func patchParams(t *testing.T, url, body string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPatch, url+"/params", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp, string(b)
}

func TestServerEndpoints(t *testing.T) {
	store, err := NewParamStore(Defaults())
	if err != nil {
		t.Fatal(err)
	}
	runner, err := pipeline.NewRunner(pipeline.Config{FrameUS: 66_000, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(store, runner).Handler())
	defer srv.Close()

	// Before any run: healthz is idle, stats empty, streams 404.
	var health map[string]any
	if resp := getJSON(t, srv.URL+"/healthz", &health); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	if health["status"] != "ok" || health["phase"] != "idle" {
		t.Fatalf("healthz %v", health)
	}
	var empty pipeline.StatusSnapshot
	getJSON(t, srv.URL+"/stats", &empty)
	if empty.Running || empty.Streams != 0 {
		t.Fatalf("pre-run stats %+v", empty)
	}
	if resp := getJSON(t, srv.URL+"/streams/0", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pre-run stream status %d", resp.StatusCode)
	}

	runOnce(t, runner, func(int) pipeline.Tuner { return NewTuner(store) })

	// healthz now reports done.
	getJSON(t, srv.URL+"/healthz", &health)
	if health["phase"] != "done" {
		t.Fatalf("post-run healthz %v", health)
	}

	// /stats: totals and per-stream counters for both streams, plus the
	// active kernel dispatch report.
	var stats struct {
		pipeline.StatusSnapshot
		ParamVersion int64 `json:"param_version"`
		Kernels      struct {
			CPU      string `json:"cpu"`
			Median   string `json:"median"`
			Popcount string `json:"popcount"`
			BlockPop string `json:"blockpop"`
		} `json:"kernels"`
	}
	getJSON(t, srv.URL+"/stats", &stats)
	if stats.Running {
		t.Fatal("stats still running after Run returned")
	}
	if stats.Kernels.CPU == "" || stats.Kernels.Median == "" ||
		stats.Kernels.Popcount == "" || stats.Kernels.BlockPop == "" {
		t.Fatalf("stats kernels incomplete: %+v", stats.Kernels)
	}
	if stats.Streams != 2 || stats.Windows != 16 { // 2 streams x 8 windows of 66 ms over 0.5 s
		t.Fatalf("stats totals %+v", stats.StatusSnapshot)
	}
	if stats.ParamVersion != 1 {
		t.Fatalf("stats param_version %d", stats.ParamVersion)
	}
	if len(stats.PerStream) != 2 {
		t.Fatalf("per-stream count %d", len(stats.PerStream))
	}
	for _, ss := range stats.PerStream {
		if ss.State != "done" || ss.Windows != 8 || ss.Events != 500 {
			t.Fatalf("stream %d snapshot %+v", ss.Sensor, ss)
		}
		if ss.FrameUS != 66_000 || ss.ParamVersion != 1 {
			t.Fatalf("stream %d tuning (%d us, v%d)", ss.Sensor, ss.FrameUS, ss.ParamVersion)
		}
	}

	// /streams/{id} by index and by name; unknown id 404s.
	var one pipeline.StreamSnapshot
	if resp := getJSON(t, srv.URL+"/streams/1", &one); resp.StatusCode != http.StatusOK {
		t.Fatalf("stream by index status %d", resp.StatusCode)
	}
	if one.Name != "cam1" || one.Windows != 8 {
		t.Fatalf("stream 1 snapshot %+v", one)
	}
	var byName pipeline.StreamSnapshot
	getJSON(t, srv.URL+"/streams/cam0", &byName)
	if byName.Sensor != 0 {
		t.Fatalf("stream by name snapshot %+v", byName)
	}
	if resp := getJSON(t, srv.URL+"/streams/nope", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown stream status %d", resp.StatusCode)
	}

	// /params GET.
	var ps ParamSet
	getJSON(t, srv.URL+"/params", &ps)
	if ps.Version != 1 || ps.FrameUS != Defaults().FrameUS {
		t.Fatalf("params %+v", ps)
	}

	// PATCH applies and bumps the version.
	resp, body := patchParams(t, srv.URL, `{"threshold": 2}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("patch status %d: %s", resp.StatusCode, body)
	}
	var patched ParamSet
	if err := json.Unmarshal([]byte(body), &patched); err != nil {
		t.Fatal(err)
	}
	if patched.Version != 2 || patched.Threshold != 2 {
		t.Fatalf("patched %+v", patched)
	}

	// Invalid PATCH: 400 with a reason, old version stays active.
	resp, body = patchParams(t, srv.URL, `{"median_p": 4}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid patch status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(body, "median") {
		t.Fatalf("rejection reason missing: %s", body)
	}
	if store.Version() != 2 {
		t.Fatalf("invalid patch moved the store to v%d", store.Version())
	}
	resp, body = patchParams(t, srv.URL, `{"bogus_knob": 1}`)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(body, "bogus_knob") {
		t.Fatalf("unknown-field patch: %d %s", resp.StatusCode, body)
	}

	// Wrong method on /params.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/params", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE /params status %d", dresp.StatusCode)
	}

	// /metrics: Prometheus text with per-stream series.
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	mb, _ := io.ReadAll(mresp.Body)
	metrics := string(mb)
	for _, want := range []string{
		"ebbiot_param_version 2",
		"ebbiot_run_running 0",
		`ebbiot_windows_total{stream="cam0"} 8`,
		`ebbiot_events_total{stream="cam1"} 500`,
		`ebbiot_frame_us{stream="cam0"} 66000`,
		"ebbiot_sink_lag",
		"ebbiot_kernel_info{cpu=",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

func TestServerWithoutParams(t *testing.T) {
	// A replay server has status but no live parameters.
	rs := pipeline.NewRunStatus(1)
	srv := httptest.NewServer(NewServer(nil, rs).Handler())
	defer srv.Close()

	if resp := getJSON(t, srv.URL+"/params", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /params status %d", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodPatch, srv.URL+"/params", bytes.NewReader([]byte(`{}`)))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("PATCH /params status %d", resp.StatusCode)
	}
	var health map[string]any
	getJSON(t, srv.URL+"/healthz", &health)
	if health["phase"] != "running" {
		t.Fatalf("healthz with bare status %v", health)
	}
}
