// Package control is the operator surface over the streaming pipeline: a
// versioned, validated parameter set (ParamSet) held in an atomic ParamStore,
// a per-stream Tuner that applies new versions to running systems at window
// boundaries, and an HTTP server exposing live run status, Prometheus
// metrics and GET/PATCH parameter endpoints — so an always-on deployment can
// be observed and retuned without restarting the Runner.
//
// The reconfiguration contract is inherited from core.ApplyParams: applying
// version N at a window boundary leaves the stream bit-identical to one
// freshly launched with version N at that boundary. Invalid parameter sets
// are rejected whole (HTTP 400 with the reason) and the previous version
// stays active.
package control

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"

	"ebbiot/internal/core"
	"ebbiot/internal/pipeline"
)

// ParamSet is one versioned snapshot of every live-tunable per-stream
// parameter: the frame clock, the RPN thresholds and geometry, the overlap
// tracker's gating, and the duty-cycle power model. Fields map onto the
// ebbi/rpn/tracker configs via Apply; sensor resolution, ROE masks and the
// frame representation are deployment-fixed and deliberately absent.
type ParamSet struct {
	// Version orders sets; the store assigns it monotonically on update.
	Version int64 `json:"version"`

	// FrameUS is the frame period tF in microseconds.
	FrameUS int64 `json:"frame_us"`
	// MedianP is the binary median patch size (odd).
	MedianP int `json:"median_p"`
	// SkipEventsBelow is the near-empty window fast-path threshold: windows
	// with fewer in-array events bypass the filter/proposal stages (0
	// disables; see core.Config.SkipEventsBelow and
	// core.LosslessSkipThreshold for the lossless bound).
	SkipEventsBelow int `json:"skip_events_below"`

	// RPN: downsampling factors, run threshold, gap merging, validity check
	// and minimum proposal size (see rpn.Config).
	S1             int  `json:"s1"`
	S2             int  `json:"s2"`
	Threshold      int  `json:"threshold"`
	MergeGap       int  `json:"merge_gap"`
	MinValidPixels int  `json:"min_valid_pixels"`
	MinW           int  `json:"min_w"`
	MinH           int  `json:"min_h"`
	Tighten        bool `json:"tighten"`

	// Tracker gating (see tracker.Config).
	MaxTrackers   int     `json:"max_trackers"`
	MatchFraction float64 `json:"match_fraction"`
	MinHits       int     `json:"min_hits"`
	MaxMisses     int     `json:"max_misses"`

	// Duty-cycle power model (see ebbi.DutyCycle); used by the /stats
	// endpoint to estimate live power, not by the tracking chain.
	ActivePowerMW float64 `json:"active_power_mw"`
	SleepPowerMW  float64 `json:"sleep_power_mw"`
}

// Defaults returns the paper's parameters as version 1, with the duty-cycle
// power model of the evaluation (a Cortex-M class budget).
func Defaults() ParamSet {
	return FromCore(core.DefaultConfig(), 1)
}

// FromCore lifts a core configuration into a ParamSet at the given version.
func FromCore(cfg core.Config, version int64) ParamSet {
	return ParamSet{
		Version:         version,
		FrameUS:         cfg.EBBI.FrameUS,
		MedianP:         cfg.EBBI.MedianP,
		SkipEventsBelow: cfg.SkipEventsBelow,
		S1:              cfg.RPN.S1,
		S2:              cfg.RPN.S2,
		Threshold:       cfg.RPN.Threshold,
		MergeGap:        cfg.RPN.MergeGap,
		MinValidPixels:  cfg.RPN.MinValidPixels,
		MinW:            cfg.RPN.MinW,
		MinH:            cfg.RPN.MinH,
		Tighten:         cfg.RPN.Tighten,
		MaxTrackers:     cfg.Tracker.MaxTrackers,
		MatchFraction:   cfg.Tracker.MatchFraction,
		MinHits:         cfg.Tracker.MinHits,
		MaxMisses:       cfg.Tracker.MaxMisses,
		ActivePowerMW:   90,
		SleepPowerMW:    0.5,
	}
}

// Apply overlays the tunable fields onto a base core configuration,
// preserving its deployment-fixed parts (resolution, ROE, representation,
// the tracker's blend weights).
func (p ParamSet) Apply(base core.Config) core.Config {
	base.EBBI.FrameUS = p.FrameUS
	base.EBBI.MedianP = p.MedianP
	base.SkipEventsBelow = p.SkipEventsBelow
	base.RPN.S1 = p.S1
	base.RPN.S2 = p.S2
	base.RPN.Threshold = p.Threshold
	base.RPN.MergeGap = p.MergeGap
	base.RPN.MinValidPixels = p.MinValidPixels
	base.RPN.MinW = p.MinW
	base.RPN.MinH = p.MinH
	base.RPN.Tighten = p.Tighten
	base.Tracker.MaxTrackers = p.MaxTrackers
	base.Tracker.MatchFraction = p.MatchFraction
	base.Tracker.MinHits = p.MinHits
	base.Tracker.MaxMisses = p.MaxMisses
	return base
}

// ApplyKF overlays the shared fields onto an EBBI+KF configuration; the
// OT-specific gating maps onto the KF's pool and lifecycle counters.
func (p ParamSet) ApplyKF(base core.KFConfig) core.KFConfig {
	base.EBBI.FrameUS = p.FrameUS
	base.EBBI.MedianP = p.MedianP
	base.SkipEventsBelow = p.SkipEventsBelow
	base.RPN.S1 = p.S1
	base.RPN.S2 = p.S2
	base.RPN.Threshold = p.Threshold
	base.RPN.MergeGap = p.MergeGap
	base.RPN.MinValidPixels = p.MinValidPixels
	base.RPN.MinW = p.MinW
	base.RPN.MinH = p.MinH
	base.RPN.Tighten = p.Tighten
	base.Tracker.MaxTracks = p.MaxTrackers
	base.Tracker.MinHits = p.MinHits
	base.Tracker.MaxMisses = p.MaxMisses
	return base
}

// SameChain reports whether two sets agree on every field that affects the
// tracking chain — everything except the version and the power model, which
// only feed the /stats duty-cycle estimate. Tuners use it so a
// monitoring-only update never resets live tracker state.
func (p ParamSet) SameChain(o ParamSet) bool {
	p.Version, o.Version = 0, 0
	p.ActivePowerMW, o.ActivePowerMW = 0, 0
	p.SleepPowerMW, o.SleepPowerMW = 0, 0
	return p == o
}

// Hash fingerprints the parameter set for run manifests: sha256 over the
// canonical JSON encoding with Version zeroed, so two runs recorded under
// the same tuning hash identically regardless of how many monitoring-only
// version bumps separated them. Recorded by ebbiot-run into the store's
// run manifest and shown by ebbiot-query list.
func (p ParamSet) Hash() [32]byte {
	p.Version = 0
	raw, err := json.Marshal(p)
	if err != nil {
		// ParamSet is a flat struct of scalars; Marshal cannot fail.
		panic(err)
	}
	return sha256.Sum256(raw)
}

// Validate checks every field through the underlying config validators (the
// same ones construction uses), plus the control-plane-only power model.
func (p ParamSet) Validate() error {
	cfg := p.Apply(core.DefaultConfig())
	if err := cfg.EBBI.Validate(); err != nil {
		return fmt.Errorf("control: %w", err)
	}
	if err := cfg.RPN.Validate(); err != nil {
		return fmt.Errorf("control: %w", err)
	}
	if err := cfg.Tracker.Validate(); err != nil {
		return fmt.Errorf("control: %w", err)
	}
	if p.SkipEventsBelow < 0 {
		return fmt.Errorf("control: skip_events_below must be non-negative, got %d", p.SkipEventsBelow)
	}
	if p.ActivePowerMW < 0 || p.SleepPowerMW < 0 {
		return fmt.Errorf("control: negative power model (%v active, %v sleep)", p.ActivePowerMW, p.SleepPowerMW)
	}
	if p.SleepPowerMW > p.ActivePowerMW {
		return fmt.Errorf("control: sleep power %v exceeds active power %v", p.SleepPowerMW, p.ActivePowerMW)
	}
	return nil
}

// ParamStore is the atomic holder every stream consults at window
// boundaries. Readers (one Tuner per stream, on worker goroutines) never
// block; updates validate first and then publish a new version, so a
// rejected set can never become visible.
type ParamStore struct {
	mu  sync.Mutex // serialises updates; reads go through cur
	cur atomic.Pointer[ParamSet]
}

// NewParamStore validates the initial set and returns a store holding it as
// the current version (forced to at least 1).
func NewParamStore(ps ParamSet) (*ParamStore, error) {
	if ps.Version < 1 {
		ps.Version = 1
	}
	if err := ps.Validate(); err != nil {
		return nil, err
	}
	s := &ParamStore{}
	s.cur.Store(&ps)
	return s, nil
}

// Load returns the current parameter set.
func (s *ParamStore) Load() ParamSet { return *s.cur.Load() }

// Version returns the current version.
func (s *ParamStore) Version() int64 { return s.cur.Load().Version }

// Update validates next and publishes it as the new current set with a
// version one past the current one (any version in next is ignored). The
// published set is returned; on validation failure the store is untouched.
func (s *ParamStore) Update(next ParamSet) (ParamSet, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.updateLocked(next)
}

func (s *ParamStore) updateLocked(next ParamSet) (ParamSet, error) {
	next.Version = s.cur.Load().Version + 1
	if err := next.Validate(); err != nil {
		return ParamSet{}, err
	}
	s.cur.Store(&next)
	return next, nil
}

// Patch merges a partial JSON object over the current set and publishes the
// result — the PATCH /params semantics: absent fields keep their current
// values, unknown fields are rejected, and an invalid result leaves the
// current version active. The read-merge-publish is atomic with respect to
// concurrent updates.
func (s *ParamStore) Patch(body []byte) (ParamSet, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	next := *s.cur.Load()
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&next); err != nil {
		return ParamSet{}, fmt.Errorf("control: bad params patch: %w", err)
	}
	return s.updateLocked(next)
}

// Tuner adapts a ParamStore to pipeline.Stream.Tuner for one stream: at
// each window boundary it compares the store's version with the last
// version applied to this stream and, when newer, rebuilds the stream's
// System through its ApplyParams hook — unless the new version changes no
// tracking-chain field (SameChain), in which case live tracker state is
// left alone: a PATCH that only recalibrates the power model must not
// cause a tracking blackout. EBBIOT and EBBI+KF systems take the full set;
// any other system (EBMS, custom) gets only the frame-period change, which
// is system-independent.
//
// Each stream needs its own Tuner (the applied cursor is per-stream);
// construct with NewTuner.
type Tuner struct {
	store *ParamStore
	// applied is the set already reflected in the stream's System.
	applied ParamSet
}

// NewTuner returns a tuner whose stream's System was built from the store's
// current set — the first Tune call therefore applies nothing until the
// store moves past it.
func NewTuner(store *ParamStore) *Tuner {
	return &Tuner{store: store, applied: store.Load()}
}

// Tune implements pipeline.Tuner.
func (t *Tuner) Tune(sensor int, sys core.System) (frameUS, version int64, err error) {
	ps := t.store.Load()
	if ps.Version != t.applied.Version {
		if !ps.SameChain(t.applied) {
			switch s := sys.(type) {
			case *core.EBBIOT:
				if err := s.ApplyParams(ps.Apply(s.Config())); err != nil {
					return 0, 0, fmt.Errorf("control: apply params v%d: %w", ps.Version, err)
				}
			case *core.EBBIKF:
				if err := s.ApplyParams(ps.ApplyKF(s.Config())); err != nil {
					return 0, 0, fmt.Errorf("control: apply params v%d: %w", ps.Version, err)
				}
			}
		}
		t.applied = ps
	}
	return ps.FrameUS, ps.Version, nil
}

// Attach installs one fresh Tuner per stream, sharing the store.
func Attach(streams []pipeline.Stream, store *ParamStore) {
	for i := range streams {
		streams[i].Tuner = NewTuner(store)
	}
}
