package control

import (
	"strings"
	"testing"

	"ebbiot/internal/core"
)

func TestDefaultsValidate(t *testing.T) {
	ps := Defaults()
	if err := ps.Validate(); err != nil {
		t.Fatalf("Defaults invalid: %v", err)
	}
	if ps.Version != 1 {
		t.Fatalf("Defaults version = %d, want 1", ps.Version)
	}
	// Round trip: Defaults -> Apply over the default core config must be a
	// no-op on the tunable fields.
	cfg := ps.Apply(core.DefaultConfig())
	base := core.DefaultConfig()
	if cfg.EBBI != base.EBBI || cfg.RPN != base.RPN {
		t.Fatalf("Defaults.Apply changed the default config: %+v", cfg)
	}
}

func TestParamSetHash(t *testing.T) {
	a, b := Defaults(), Defaults()
	b.Version = 99 // version bumps must not change the fingerprint
	if a.Hash() != b.Hash() {
		t.Fatal("Hash changed with Version alone")
	}
	b.Threshold++
	if a.Hash() == b.Hash() {
		t.Fatal("Hash ignored a tuning change")
	}
}

func TestParamSetValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*ParamSet)
	}{
		{"zero-frame", func(p *ParamSet) { p.FrameUS = 0 }},
		{"even-median", func(p *ParamSet) { p.MedianP = 4 }},
		{"zero-scale", func(p *ParamSet) { p.S1 = 0 }},
		{"negative-threshold", func(p *ParamSet) { p.Threshold = -1 }},
		{"zero-trackers", func(p *ParamSet) { p.MaxTrackers = 0 }},
		{"bad-match-fraction", func(p *ParamSet) { p.MatchFraction = 1.5 }},
		{"zero-misses", func(p *ParamSet) { p.MaxMisses = 0 }},
		{"negative-power", func(p *ParamSet) { p.ActivePowerMW = -1 }},
		{"sleep-above-active", func(p *ParamSet) { p.SleepPowerMW = p.ActivePowerMW + 1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ps := Defaults()
			tc.mutate(&ps)
			if err := ps.Validate(); err == nil {
				t.Fatalf("Validate accepted %s", tc.name)
			}
		})
	}
}

func TestParamStoreUpdateVersions(t *testing.T) {
	store, err := NewParamStore(Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if store.Version() != 1 {
		t.Fatalf("initial version %d, want 1", store.Version())
	}
	next := store.Load()
	next.Threshold = 3
	next.Version = 99 // ignored: the store owns versioning
	got, err := store.Update(next)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 2 || store.Version() != 2 {
		t.Fatalf("updated version %d / store %d, want 2", got.Version, store.Version())
	}
	if store.Load().Threshold != 3 {
		t.Fatalf("update lost the field change")
	}

	bad := store.Load()
	bad.S2 = -1
	if _, err := store.Update(bad); err == nil {
		t.Fatal("Update accepted an invalid set")
	}
	if store.Version() != 2 || store.Load().S2 == -1 {
		t.Fatal("failed Update mutated the store")
	}
}

func TestParamStorePatch(t *testing.T) {
	store, err := NewParamStore(Defaults())
	if err != nil {
		t.Fatal(err)
	}
	got, err := store.Patch([]byte(`{"threshold": 2, "frame_us": 33000}`))
	if err != nil {
		t.Fatal(err)
	}
	if got.Threshold != 2 || got.FrameUS != 33000 || got.Version != 2 {
		t.Fatalf("patched set %+v", got)
	}
	// Absent fields keep their values.
	if got.S1 != Defaults().S1 || got.MedianP != Defaults().MedianP {
		t.Fatalf("patch clobbered absent fields: %+v", got)
	}

	if _, err := store.Patch([]byte(`{"frame_us": -5}`)); err == nil {
		t.Fatal("Patch accepted an invalid merge")
	}
	if _, err := store.Patch([]byte(`{"no_such_field": 1}`)); err == nil {
		t.Fatal("Patch accepted an unknown field")
	} else if !strings.Contains(err.Error(), "no_such_field") {
		t.Fatalf("unknown-field error does not name the field: %v", err)
	}
	if _, err := store.Patch([]byte(`{broken`)); err == nil {
		t.Fatal("Patch accepted malformed JSON")
	}
	if store.Version() != 2 {
		t.Fatalf("failed patches moved the version to %d", store.Version())
	}
}

func TestTunerAppliesOnVersionChange(t *testing.T) {
	store, err := NewParamStore(Defaults())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewEBBIOT(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	tuner := NewTuner(store)

	// No version change: nothing applied, current tF returned.
	frameUS, version, err := tuner.Tune(0, sys)
	if err != nil {
		t.Fatal(err)
	}
	if frameUS != Defaults().FrameUS || version != 1 {
		t.Fatalf("Tune returned (%d, v%d)", frameUS, version)
	}

	next := store.Load()
	next.Threshold = 2
	next.FrameUS = 33_000
	if _, err := store.Update(next); err != nil {
		t.Fatal(err)
	}
	frameUS, version, err = tuner.Tune(0, sys)
	if err != nil {
		t.Fatal(err)
	}
	if frameUS != 33_000 || version != 2 {
		t.Fatalf("Tune after update returned (%d, v%d)", frameUS, version)
	}
	if got := sys.Config(); got.RPN.Threshold != 2 || got.EBBI.FrameUS != 33_000 {
		t.Fatalf("Tune did not apply the new params: %+v", got)
	}
}

// TestTunerSkipsRebuildForMonitoringOnlyChange guards live tracker state
// against tuning no-ops: a PATCH touching only the power model (or nothing)
// bumps the version but must not reset the tracker.
func TestTunerSkipsRebuildForMonitoringOnlyChange(t *testing.T) {
	store, err := NewParamStore(Defaults())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewEBBIOT(store.Load().Apply(core.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	tuner := NewTuner(store)

	// Age the tracker a little.
	for i := 0; i < 3; i++ {
		if _, err := sys.ProcessWindow(nil); err != nil {
			t.Fatal(err)
		}
	}
	if sys.Tracker().Frame() != 3 {
		t.Fatalf("tracker frame %d, want 3", sys.Tracker().Frame())
	}

	// Power-model-only update: version moves, tracker survives.
	if _, err := store.Patch([]byte(`{"active_power_mw": 120}`)); err != nil {
		t.Fatal(err)
	}
	if _, version, err := tuner.Tune(0, sys); err != nil || version != 2 {
		t.Fatalf("Tune = (v%d, %v)", version, err)
	}
	if sys.Tracker().Frame() != 3 {
		t.Fatalf("monitoring-only change reset the tracker (frame %d)", sys.Tracker().Frame())
	}

	// A chain change still rebuilds with clean-restart semantics.
	if _, err := store.Patch([]byte(`{"threshold": 2}`)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tuner.Tune(0, sys); err != nil {
		t.Fatal(err)
	}
	if sys.Tracker().Frame() != 0 {
		t.Fatalf("chain change did not reset the tracker (frame %d)", sys.Tracker().Frame())
	}
}
