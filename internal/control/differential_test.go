package control

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"ebbiot/internal/core"
	"ebbiot/internal/events"
	"ebbiot/internal/pipeline"
	"ebbiot/internal/scene"
	"ebbiot/internal/sensor"
)

// TestPatchMidRunEquivalentToFreshRun is the acceptance test of the control
// plane: retuning tF and the RPN mid-run through PATCH /params yields
// bit-identical tracks to a brand-new run launched with the new parameters
// from the same window boundary. The PATCH is issued from an Observer (which
// runs synchronously between windows of the stream), so the boundary at
// which the new version lands is deterministic.
func TestPatchMidRunEquivalentToFreshRun(t *testing.T) {
	const (
		tF1      = 66_000
		tF2      = 44_000
		boundary = 12 // windows of tF1 processed before the PATCH lands
	)
	sc := scene.SingleObjectScene(events.DAVIS240, 3_000_000)
	simCfg := sensor.DefaultConfig(7)
	simCfg.NoiseRatePerPixelHz = 1
	sim, err := sensor.New(simCfg, sc)
	if err != nil {
		t.Fatal(err)
	}
	evs, err := sim.Events(0, sc.DurationUS)
	if err != nil {
		t.Fatal(err)
	}

	initial := Defaults()
	initial.FrameUS = tF1
	store, err := NewParamStore(initial)
	if err != nil {
		t.Fatal(err)
	}
	runner, err := pipeline.NewRunner(pipeline.Config{FrameUS: tF1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(store, runner).Handler())
	defer srv.Close()

	patchBody := fmt.Sprintf(`{"frame_us": %d, "threshold": 2, "min_valid_pixels": 6}`, tF2)

	// Live run: PATCH after the window with Frame == boundary-1; the tuner
	// applies version 2 at the next window boundary.
	src, err := pipeline.NewSliceSource(evs)
	if err != nil {
		t.Fatal(err)
	}
	baseCfg := store.Load().Apply(core.DefaultConfig())
	sys, err := core.NewEBBIOT(baseCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	var live []pipeline.TrackSnapshot
	patched := false
	observe := func(snap pipeline.TrackSnapshot, _ core.System) error {
		if snap.Frame == boundary-1 && !patched {
			patched = true
			req, err := http.NewRequest(http.MethodPatch, srv.URL+"/params", strings.NewReader(patchBody))
			if err != nil {
				return err
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b, _ := io.ReadAll(resp.Body)
				return fmt.Errorf("PATCH /params: %d %s", resp.StatusCode, b)
			}
			var got ParamSet
			if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
				return err
			}
			if got.Version != 2 {
				return fmt.Errorf("PATCH published v%d, want 2", got.Version)
			}
		}
		return nil
	}
	collect := pipeline.SinkFunc(func(snap pipeline.TrackSnapshot) error {
		live = append(live, snap)
		return nil
	})
	if _, err := runner.Run(context.Background(),
		[]pipeline.Stream{{Name: "live", Source: src, System: sys, Observer: observe, Tuner: NewTuner(store)}},
		collect); err != nil {
		t.Fatal(err)
	}
	if !patched {
		t.Fatalf("run ended after %d snapshots without reaching the patch boundary", len(live))
	}

	// The retune must be visible in the emitted window bounds: window
	// `boundary` starts at the old boundary and spans tF2.
	if len(live) <= boundary {
		t.Fatalf("only %d snapshots", len(live))
	}
	if live[boundary].StartUS != int64(boundary)*tF1 || live[boundary].EndUS != int64(boundary)*tF1+tF2 {
		t.Fatalf("window %d spans [%d, %d), want [%d, %d)", boundary,
			live[boundary].StartUS, live[boundary].EndUS, int64(boundary)*tF1, int64(boundary)*tF1+tF2)
	}

	// Fresh run: the remaining events, rebased to the boundary, through a
	// brand-new system built from the patched parameters.
	originUS := int64(boundary) * tF1
	var suffix []events.Event
	for _, e := range evs {
		if e.T >= originUS {
			se := e
			se.T -= originUS
			suffix = append(suffix, se)
		}
	}
	fsrc, err := pipeline.NewSliceSource(suffix)
	if err != nil {
		t.Fatal(err)
	}
	fcfg := store.Load().Apply(core.DefaultConfig())
	fsys, err := core.NewEBBIOT(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer fsys.Close()
	frunner, err := pipeline.NewRunner(pipeline.Config{FrameUS: tF2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var fresh []pipeline.TrackSnapshot
	if _, err := frunner.Run(context.Background(),
		[]pipeline.Stream{{Name: "fresh", Source: fsrc, System: fsys}},
		pipeline.SinkFunc(func(snap pipeline.TrackSnapshot) error {
			fresh = append(fresh, snap)
			return nil
		})); err != nil {
		t.Fatal(err)
	}

	after := live[boundary:]
	if len(after) != len(fresh) {
		t.Fatalf("live run emitted %d windows after the boundary, fresh run %d", len(after), len(fresh))
	}
	for i := range fresh {
		got, want := after[i].Boxes, fresh[i].Boxes
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("window %d after patch: live boxes %v != fresh %v", i, got, want)
		}
	}
}

// TestInvalidPatchMidRunKeepsOldParams drives a run while an invalid PATCH
// is rejected: the stream must finish on the original parameters.
func TestInvalidPatchMidRunKeepsOldParams(t *testing.T) {
	store, err := NewParamStore(Defaults())
	if err != nil {
		t.Fatal(err)
	}
	runner, err := pipeline.NewRunner(pipeline.Config{FrameUS: 66_000, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(store, runner).Handler())
	defer srv.Close()

	var evs []events.Event
	for ts := int64(0); ts < 600_000; ts += 500 {
		evs = append(evs, events.Event{X: 10, Y: 10, T: ts, P: events.On})
	}
	src, err := pipeline.NewSliceSource(evs)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewEBBIOT(store.Load().Apply(core.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	rejected := false
	observe := func(snap pipeline.TrackSnapshot, _ core.System) error {
		if snap.Frame == 2 && !rejected {
			rejected = true
			req, _ := http.NewRequest(http.MethodPatch, srv.URL+"/params", strings.NewReader(`{"s1": 0}`))
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				return err
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				return fmt.Errorf("invalid PATCH got %d, want 400", resp.StatusCode)
			}
		}
		return nil
	}
	if _, err := runner.Run(context.Background(),
		[]pipeline.Stream{{Source: src, System: sys, Observer: observe, Tuner: NewTuner(store)}},
		nil); err != nil {
		t.Fatal(err)
	}
	if !rejected {
		t.Fatal("run ended before the invalid PATCH was attempted")
	}
	if store.Version() != 1 {
		t.Fatalf("store moved to v%d after a rejected PATCH", store.Version())
	}
	if got := sys.Config(); got.RPN.S1 != Defaults().S1 {
		t.Fatalf("system config changed after a rejected PATCH: %+v", got.RPN)
	}
}
