package control

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"time"

	"ebbiot/internal/ebbi"
	"ebbiot/internal/imgproc"
	"ebbiot/internal/pipeline"
)

// StatusProvider supplies the live run to serve. pipeline.Runner implements
// it directly (Status returns the current run), and so does a bare
// pipeline.RunStatus (for store replays and custom drivers). A nil return
// means no run has started yet.
type StatusProvider interface {
	Status() *pipeline.RunStatus
}

// Server is the control plane's HTTP surface:
//
//	GET   /healthz       liveness + run phase
//	GET   /stats         full StatusSnapshot (totals + per-stream)
//	GET   /streams/{id}  one stream by index or name
//	GET   /params        current ParamSet
//	PATCH /params        merge a partial ParamSet; 400 + reason on invalid,
//	                     previous version stays active
//	GET   /metrics       Prometheus text format
//
// Params may be nil (a replay has no live parameters): /params then answers
// 404 and /stats omits the power estimate.
type Server struct {
	params *ParamStore
	status StatusProvider
	start  time.Time
	mux    *http.ServeMux
}

// NewServer builds the server; either argument may be nil (the matching
// endpoints degrade as documented).
func NewServer(params *ParamStore, status StatusProvider) *Server {
	s := &Server{params: params, status: status, start: time.Now(), mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /streams/{id}", s.handleStream)
	s.mux.HandleFunc("GET /params", s.handleGetParams)
	s.mux.HandleFunc("PATCH /params", s.handlePatchParams)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Handler returns the root handler, for mounting on any http.Server (or an
// httptest one).
func (s *Server) Handler() http.Handler { return s.mux }

// Serve listens on addr and serves handler in a background goroutine — the
// bootstrap the CLIs share. It returns the bound address (useful with
// ":0") and a shutdown function that gives in-flight requests a 2 s grace.
// Serve errors other than graceful close are passed to onErr (may be nil).
func Serve(addr string, handler http.Handler, onErr func(error)) (net.Addr, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("control: listen: %w", err)
	}
	hs := &http.Server{Handler: handler}
	go func() {
		if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed && onErr != nil {
			onErr(err)
		}
	}()
	shutdown := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = hs.Shutdown(ctx)
	}
	return ln.Addr(), shutdown, nil
}

// run returns the current RunStatus, or nil when none exists yet.
func (s *Server) run() *pipeline.RunStatus {
	if s.status == nil {
		return nil
	}
	return s.status.Status()
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	phase := "idle"
	if rs := s.run(); rs != nil {
		if rs.Running() {
			phase = "running"
		} else {
			phase = "done"
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"phase":     phase,
		"uptime_us": time.Since(s.start).Microseconds(),
	})
}

// statsResponse is the /stats payload: the pipeline's live snapshot plus
// the control plane's own view (parameter version, duty-cycle estimate).
type statsResponse struct {
	pipeline.StatusSnapshot
	ParamVersion int64           `json:"param_version,omitempty"`
	Duty         []dutyEstimate  `json:"duty,omitempty"`
	Kernels      imgproc.Kernels `json:"kernels"`
}

// dutyEstimate is the live per-stream duty-cycle power estimate, computed
// from the measured mean active time and the ParamSet's power model.
type dutyEstimate struct {
	Sensor        int     `json:"sensor"`
	MeanActiveUS  float64 `json:"mean_active_us"`
	SleepFraction float64 `json:"sleep_fraction"`
	AvgPowerMW    float64 `json:"avg_power_mw"`
	Savings       float64 `json:"savings"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	rs := s.run()
	if rs == nil {
		writeJSON(w, http.StatusOK, statsResponse{Kernels: imgproc.KernelInfo()})
		return
	}
	resp := statsResponse{StatusSnapshot: rs.Snapshot(), Kernels: imgproc.KernelInfo()}
	if s.params != nil {
		ps := s.params.Load()
		resp.ParamVersion = ps.Version
		dc := ebbi.DutyCycle{FrameUS: ps.FrameUS, ActivePowerMW: ps.ActivePowerMW, SleepPowerMW: ps.SleepPowerMW}
		for _, ss := range resp.PerStream {
			if ss.Windows == 0 {
				continue
			}
			mean := float64(ss.ProcUS) / float64(ss.Windows)
			rep, err := dc.Analyze(int64(mean))
			if err != nil {
				continue
			}
			resp.Duty = append(resp.Duty, dutyEstimate{
				Sensor:        ss.Sensor,
				MeanActiveUS:  mean,
				SleepFraction: rep.SleepFraction,
				AvgPowerMW:    rep.AvgPowerMW,
				Savings:       rep.Savings,
			})
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	rs := s.run()
	if rs == nil {
		writeError(w, http.StatusNotFound, "no run in progress")
		return
	}
	id := r.PathValue("id")
	var ss *pipeline.StreamStatus
	if idx, err := strconv.Atoi(id); err == nil {
		ss = rs.Stream(idx)
	}
	if ss == nil {
		ss = rs.StreamByName(id)
	}
	if ss == nil {
		writeError(w, http.StatusNotFound, "unknown stream %q", id)
		return
	}
	writeJSON(w, http.StatusOK, ss.Snapshot(rs.Elapsed()))
}

func (s *Server) handleGetParams(w http.ResponseWriter, r *http.Request) {
	if s.params == nil {
		writeError(w, http.StatusNotFound, "no live parameters (replay or untuned run)")
		return
	}
	writeJSON(w, http.StatusOK, s.params.Load())
}

func (s *Server) handlePatchParams(w http.ResponseWriter, r *http.Request) {
	if s.params == nil {
		writeError(w, http.StatusNotFound, "no live parameters (replay or untuned run)")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	next, err := s.params.Patch(body)
	if err != nil {
		// Invalid set rejected whole: the previous version stays active.
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, next)
}

// handleMetrics renders the Prometheus text exposition format by hand —
// counters and gauges only, no client library dependency.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	k := imgproc.KernelInfo()
	fmt.Fprintf(w, "# HELP ebbiot_kernel_info Active imgproc kernel dispatch (1 = the labelled configuration is in effect).\n# TYPE ebbiot_kernel_info gauge\nebbiot_kernel_info{cpu=%q,median=%q,popcount=%q,blockpop=%q} 1\n",
		k.CPU, k.Median, k.Popcount, k.BlockPop)
	if s.params != nil {
		fmt.Fprintf(w, "# HELP ebbiot_param_version Currently published ParamSet version.\n# TYPE ebbiot_param_version gauge\nebbiot_param_version %d\n", s.params.Version())
	}
	rs := s.run()
	if rs == nil {
		return
	}
	snap := rs.Snapshot()
	running := 0
	if snap.Running {
		running = 1
	}
	fmt.Fprintf(w, "# HELP ebbiot_run_running Whether a run is in flight.\n# TYPE ebbiot_run_running gauge\nebbiot_run_running %d\n", running)
	fmt.Fprintf(w, "# HELP ebbiot_run_elapsed_seconds Wall-clock since the run started.\n# TYPE ebbiot_run_elapsed_seconds gauge\nebbiot_run_elapsed_seconds %g\n", float64(snap.ElapsedUS)/1e6)
	fmt.Fprintf(w, "# HELP ebbiot_sink_seconds_total Cumulative wall-clock inside Sink.Consume.\n# TYPE ebbiot_sink_seconds_total counter\nebbiot_sink_seconds_total %g\n", float64(snap.SinkUS)/1e6)
	fmt.Fprintf(w, "# HELP ebbiot_sink_lag Snapshots queued in the fan-in channel.\n# TYPE ebbiot_sink_lag gauge\nebbiot_sink_lag %d\n", snap.SinkLag)

	// Deterministic stream order for scrape friendliness.
	streams := append([]pipeline.StreamSnapshot(nil), snap.PerStream...)
	sort.Slice(streams, func(i, j int) bool { return streams[i].Sensor < streams[j].Sensor })
	emit := func(name, help, typ string, value func(ss pipeline.StreamSnapshot) string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		for _, ss := range streams {
			fmt.Fprintf(w, "%s{stream=%q} %s\n", name, ss.Name, value(ss))
		}
	}
	emit("ebbiot_windows_total", "Windows processed per stream.", "counter",
		func(ss pipeline.StreamSnapshot) string { return strconv.FormatInt(ss.Windows, 10) })
	emit("ebbiot_events_total", "Events consumed per stream.", "counter",
		func(ss pipeline.StreamSnapshot) string { return strconv.FormatInt(ss.Events, 10) })
	emit("ebbiot_boxes_total", "Track boxes reported per stream.", "counter",
		func(ss pipeline.StreamSnapshot) string { return strconv.FormatInt(ss.Boxes, 10) })
	emit("ebbiot_windows_skipped_total", "Windows bypassed by the near-empty fast path per stream.", "counter",
		func(ss pipeline.StreamSnapshot) string {
			if ss.Stages == nil {
				return "0"
			}
			return strconv.FormatInt(ss.Stages.WindowsSkipped, 10)
		})
	emit("ebbiot_proc_seconds_total", "Cumulative ProcessWindow wall-clock per stream.", "counter",
		func(ss pipeline.StreamSnapshot) string {
			return strconv.FormatFloat(float64(ss.ProcUS)/1e6, 'g', -1, 64)
		})
	emit("ebbiot_active_tracks", "Tracks reported at the last window (live NT).", "gauge",
		func(ss pipeline.StreamSnapshot) string { return strconv.FormatInt(ss.LastBoxes, 10) })
	emit("ebbiot_frame_us", "Frame period tF in effect.", "gauge",
		func(ss pipeline.StreamSnapshot) string { return strconv.FormatInt(ss.FrameUS, 10) })
	emit("ebbiot_source_errors_total", "Source/windower failures per stream.", "counter",
		func(ss pipeline.StreamSnapshot) string { return strconv.FormatInt(ss.SourceErrors, 10) })
	emit("ebbiot_stream_stalls_total", "Watchdog trips (no window progress within the deadline) per stream.", "counter",
		func(ss pipeline.StreamSnapshot) string { return strconv.FormatInt(ss.Stalls, 10) })
	emit("ebbiot_stream_restarts_total", "Supervised source restarts per stream.", "counter",
		func(ss pipeline.StreamSnapshot) string { return strconv.FormatInt(ss.Restarts, 10) })
	emit("ebbiot_stream_stalled", "Whether the stream is currently stalled (no window progress).", "gauge",
		func(ss pipeline.StreamSnapshot) string {
			if ss.State == pipeline.StreamStalled.String() {
				return "1"
			}
			return "0"
		})

	// Network-ingest counters: emitted only when at least one stream is fed
	// by a metered source, so local-file runs stay noise-free.
	hasIngest := false
	for _, ss := range streams {
		if ss.Source != nil {
			hasIngest = true
			break
		}
	}
	if !hasIngest {
		return
	}
	src := func(ss pipeline.StreamSnapshot) pipeline.SourceStats {
		if ss.Source == nil {
			return pipeline.SourceStats{}
		}
		return *ss.Source
	}
	emit("ebbiot_ingest_connected", "Whether the stream's sensor connection is live.", "gauge",
		func(ss pipeline.StreamSnapshot) string {
			if src(ss).Connected {
				return "1"
			}
			return "0"
		})
	emit("ebbiot_ingest_batches_total", "Event batches accepted off the wire per stream.", "counter",
		func(ss pipeline.StreamSnapshot) string { return strconv.FormatInt(src(ss).Batches, 10) })
	emit("ebbiot_ingest_events_total", "Events accepted off the wire per stream.", "counter",
		func(ss pipeline.StreamSnapshot) string { return strconv.FormatInt(src(ss).Events, 10) })
	emit("ebbiot_ingest_dropped_batches_total", "Batches shed by the queue drop policy per stream.", "counter",
		func(ss pipeline.StreamSnapshot) string { return strconv.FormatInt(src(ss).DroppedBatches, 10) })
	emit("ebbiot_ingest_dropped_events_total", "Events shed by the drop policy or duplicate batches per stream.", "counter",
		func(ss pipeline.StreamSnapshot) string { return strconv.FormatInt(src(ss).DroppedEvents, 10) })
	emit("ebbiot_ingest_dup_batches_total", "Duplicate/reordered batches rejected per stream.", "counter",
		func(ss pipeline.StreamSnapshot) string { return strconv.FormatInt(src(ss).DupBatches, 10) })
	emit("ebbiot_ingest_seq_gaps_total", "Skipped batch sequence numbers per stream.", "counter",
		func(ss pipeline.StreamSnapshot) string { return strconv.FormatInt(src(ss).SeqGaps, 10) })
	emit("ebbiot_ingest_queued_batches", "Batches waiting in the stream's ingest queue.", "gauge",
		func(ss pipeline.StreamSnapshot) string { return strconv.FormatInt(src(ss).QueuedBatches, 10) })
	emit("ebbiot_ingest_faults_total", "Mid-stream transport/protocol faults per stream.", "counter",
		func(ss pipeline.StreamSnapshot) string { return strconv.FormatInt(src(ss).Faults, 10) })
	emit("ebbiot_ingest_epoch", "Ingest session epoch (1 = first connection, +1 per accepted resume).", "gauge",
		func(ss pipeline.StreamSnapshot) string { return strconv.FormatInt(src(ss).Epoch, 10) })
	emit("ebbiot_ingest_resumes_total", "Accepted session resumes per stream.", "counter",
		func(ss pipeline.StreamSnapshot) string { return strconv.FormatInt(src(ss).Resumes, 10) })
	emit("ebbiot_ingest_resumable", "Whether the stream is disconnected but inside its resume grace window.", "gauge",
		func(ss pipeline.StreamSnapshot) string {
			if src(ss).Resumable {
				return "1"
			}
			return "0"
		})
}
