// Package imgproc implements the binary-image operations the EBBIOT pipeline
// runs on event-based binary images (EBBI): median noise filtering, block
// downsampling, X/Y histograms, connected-component analysis and simple
// morphology.
//
// Two representations coexist. Bitmap is a dense one-byte-per-pixel binary
// image: a byte per pixel matches how an embedded implementation would hold
// the working frame in SRAM for constant-time access, and keeps the
// per-pixel compute counts aligned with the paper's cost model (Eq. 1); it
// is also the differential-test oracle. PackedBitmap stores 64 pixels per
// uint64 word and backs the word-parallel fast path: the same kernels
// reformulated as shifts and popcounts (math/bits.OnesCount64), which the
// streaming pipeline runs per window. Differential tests and a fuzz target
// hold the two bit-identical.
package imgproc

import (
	"fmt"
	"strings"
)

// Bitmap is a dense binary image with W columns and H rows. Pixels are
// stored row-major; a non-zero byte means the pixel is set. The zero value
// is an empty 0x0 image; construct with NewBitmap.
type Bitmap struct {
	W, H int
	Pix  []uint8
}

// NewBitmap returns a cleared W x H bitmap. It panics if either dimension is
// negative.
func NewBitmap(w, h int) *Bitmap {
	if w < 0 || h < 0 {
		panic(fmt.Sprintf("imgproc: negative bitmap size %dx%d", w, h))
	}
	return &Bitmap{W: w, H: h, Pix: make([]uint8, w*h)}
}

// Clone returns a deep copy of the bitmap.
func (b *Bitmap) Clone() *Bitmap {
	nb := &Bitmap{W: b.W, H: b.H, Pix: make([]uint8, len(b.Pix))}
	copy(nb.Pix, b.Pix)
	return nb
}

// Clear zeroes every pixel in place, reusing the backing array so a
// double-buffered pipeline allocates nothing per frame.
func (b *Bitmap) Clear() { clear(b.Pix) }

// In reports whether (x, y) is inside the image.
func (b *Bitmap) In(x, y int) bool { return x >= 0 && x < b.W && y >= 0 && y < b.H }

// Get returns 1 if pixel (x, y) is set, 0 otherwise. Out-of-range reads
// return 0, which gives the border behaviour the median filter needs.
func (b *Bitmap) Get(x, y int) uint8 {
	if !b.In(x, y) {
		return 0
	}
	if b.Pix[y*b.W+x] != 0 {
		return 1
	}
	return 0
}

// Set sets pixel (x, y) to 1. Out-of-range writes are ignored.
func (b *Bitmap) Set(x, y int) {
	if b.In(x, y) {
		b.Pix[y*b.W+x] = 1
	}
}

// Unset clears pixel (x, y). Out-of-range writes are ignored.
func (b *Bitmap) Unset(x, y int) {
	if b.In(x, y) {
		b.Pix[y*b.W+x] = 0
	}
}

// CountOnes returns the number of set pixels.
func (b *Bitmap) CountOnes() int {
	n := 0
	for _, p := range b.Pix {
		if p != 0 {
			n++
		}
	}
	return n
}

// Density returns the fraction of set pixels (the paper's α when measured
// over object patches).
func (b *Bitmap) Density() float64 {
	if len(b.Pix) == 0 {
		return 0
	}
	return float64(b.CountOnes()) / float64(len(b.Pix))
}

// Equal reports whether two bitmaps have identical size and pixels
// (comparing set/unset state, not raw byte values).
func (b *Bitmap) Equal(o *Bitmap) bool {
	if b.W != o.W || b.H != o.H {
		return false
	}
	for i := range b.Pix {
		if (b.Pix[i] != 0) != (o.Pix[i] != 0) {
			return false
		}
	}
	return true
}

// String renders the bitmap as rows of '.' and '#' characters with row 0 at
// the bottom, matching the sensor's coordinate convention. Intended for
// debugging and small test fixtures only.
func (b *Bitmap) String() string {
	var sb strings.Builder
	sb.Grow((b.W + 1) * b.H)
	for y := b.H - 1; y >= 0; y-- {
		for x := 0; x < b.W; x++ {
			if b.Get(x, y) != 0 {
				sb.WriteByte('#')
			} else {
				sb.WriteByte('.')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// FromString parses the format produced by String: rows of '.' and '#', top
// row first. Useful for readable test fixtures.
func FromString(s string) (*Bitmap, error) {
	lines := strings.Split(strings.TrimSpace(s), "\n")
	h := len(lines)
	if h == 0 {
		return NewBitmap(0, 0), nil
	}
	w := len(strings.TrimSpace(lines[0]))
	b := NewBitmap(w, h)
	for i, ln := range lines {
		ln = strings.TrimSpace(ln)
		if len(ln) != w {
			return nil, fmt.Errorf("imgproc: ragged row %d: got %d chars, want %d", i, len(ln), w)
		}
		y := h - 1 - i
		for x := 0; x < w; x++ {
			switch ln[x] {
			case '#', '1':
				b.Set(x, y)
			case '.', '0':
			default:
				return nil, fmt.Errorf("imgproc: bad pixel char %q at row %d col %d", ln[x], i, x)
			}
		}
	}
	return b, nil
}
