package imgproc

import (
	"fmt"
	"testing"
)

// Per-arm kernel benchmarks: the same workload through every available
// dispatch implementation, so the SIMD-vs-generic spread is measurable on
// one machine in one run (the cross-tree gate compares totals; these
// attribute them). Names match the gated set (Median / Popcount /
// Histograms) so the bench gate watches them too.

// BenchmarkMedianDense runs the full-frame packed median on an all-ones
// DAVIS frame — every word dirty, so the run kernels see maximal vector
// work — under each available implementation.
func BenchmarkMedianDense(b *testing.B) {
	src := NewPackedBitmap(240, 180)
	for i := range src.Words {
		src.Words[i] = ^uint64(0)
	}
	src.clearTail()
	dst := NewPackedBitmap(240, 180)
	for _, p := range []int{3, 5} {
		for _, im := range available {
			b.Run(fmt.Sprintf("p%d/%s", p, im.name), func(b *testing.B) {
				restore := forceImpl(im)
				defer restore()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := PackedMedianFilter(dst, src, p); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkPopcountWords measures the raw word-popcount reduction per
// implementation over a buffer the size of a DAVIS240 frame (675 words).
func BenchmarkPopcountWords(b *testing.B) {
	src := PackBitmap(nil, benchFrame(240, 180))
	for _, im := range available {
		b.Run(im.name, func(b *testing.B) {
			restore := forceImpl(im)
			defer restore()
			b.ReportAllocs()
			b.ResetTimer()
			n := 0
			for i := 0; i < b.N; i++ {
				n += im.popcntWords(src.Words)
			}
			if n < 0 {
				b.Fatal("impossible")
			}
		})
	}
}

// BenchmarkHistogramsArms runs the fused downsample+histogram kernel on the
// standard bench frame under each available implementation (the block
// popcount is the kernel that differs between arms here).
func BenchmarkHistogramsArms(b *testing.B) {
	src := PackBitmap(nil, benchFrame(240, 180))
	var hx, hy []int
	var err error
	for _, im := range available {
		b.Run(im.name, func(b *testing.B) {
			restore := forceImpl(im)
			defer restore()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				hx, hy, err = PackedHistogramsInto(hx, hy, src, 6, 3)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// forceImpl swaps im in as the active implementation for the duration of a
// benchmark, returning the restore closure.
func forceImpl(im *kernelImpl) func() {
	prev := current.Swap(im)
	return func() { current.Store(prev) }
}
