//go:build amd64 && !purego

package imgproc

import (
	"math/bits"

	"ebbiot/internal/cpufeat"
)

// The assembly kernels in simd_amd64.s. All of them require the feature
// set their wrapper gates on; none touches memory outside the slices whose
// base pointers it is handed.

// median3AsmAVX2 stages the vertical-count CSA planes of three window rows
// (n words each, nil rows replaced by an all-zero row) into v0/v1 at
// elements [1, n] with zeroed pad words at 0 and n+1, then evaluates the
// horizontal 3-column majority network four words per lane into out.
// Requires n >= 4; out must not alias the row or plane slices.
//
//go:noescape
func median3AsmAVX2(out, v0, v1, ra, rb, rc *uint64, n int)

// median5AsmAVX2 is the 5x5 analogue: three vertical planes at elements
// [1, n] (the ±2-column shifts still borrow only from the adjacent word,
// so one zeroed pad per side suffices), then the five-column Wallace
// tree. Requires n >= 4.
//
//go:noescape
func median5AsmAVX2(out, v0, v1, v2, r0, r1, r2, r3, r4 *uint64, n int)

// popcntWordsAsmAVX2 returns the total popcount of n words via the VPSHUFB
// nibble-LUT + VPSADBW reduction. Requires n >= 8.
//
//go:noescape
func popcntWordsAsmAVX2(p *uint64, n int) int

// popcntWordsAsmAVX512 is the VPOPCNTQ (AVX-512 VPOPCNTDQ+VL, 256-bit
// lanes) variant. Requires n >= 8.
//
//go:noescape
func popcntWordsAsmAVX512(p *uint64, n int) int

// blockPopAsmAVX2 adds the popcount of each of n s1-wide bit blocks of row
// (starting at bit offset off) into acc[0..n) and returns their sum. Four
// blocks are extracted per 64-bit fetch with per-lane variable shifts, so
// it requires 1 <= s1 <= blockPopMaxS1, n >= 4, and every block in bounds:
// off + n*s1 <= 64*rowLen.
//
//go:noescape
func blockPopAsmAVX2(row *uint64, rowLen, off, s1 int, acc *int, n int) int

// blockPopAsmAVX512 is the VPOPCNTQ variant of blockPopAsmAVX2, same
// contract.
//
//go:noescape
func blockPopAsmAVX512(row *uint64, rowLen, off, s1 int, acc *int, n int) int

func median3RunAVX2(s *medianScratch, out, ra, rb, rc []uint64, ka, kb int) {
	n := kb - ka + 1
	if n < simdMinRun {
		median3Run(out, ra, rb, rc, ka, kb)
		return
	}
	z := &s.zero[0]
	pa, pb, pc := z, z, z
	if ra != nil {
		pa = &ra[ka]
	}
	if rb != nil {
		pb = &rb[ka]
	}
	if rc != nil {
		pc = &rc[ka]
	}
	median3AsmAVX2(&out[ka], &s.v0[0], &s.v1[0], pa, pb, pc, n)
}

func median5RunAVX2(s *medianScratch, out, r0, r1, r2, r3, r4 []uint64, ka, kb int) {
	n := kb - ka + 1
	if n < simdMinRun {
		median5Run(out, r0, r1, r2, r3, r4, ka, kb)
		return
	}
	z := &s.zero[0]
	p0, p1, p2, p3, p4 := z, z, z, z, z
	if r0 != nil {
		p0 = &r0[ka]
	}
	if r1 != nil {
		p1 = &r1[ka]
	}
	if r2 != nil {
		p2 = &r2[ka]
	}
	if r3 != nil {
		p3 = &r3[ka]
	}
	if r4 != nil {
		p4 = &r4[ka]
	}
	median5AsmAVX2(&out[ka], &s.v0[0], &s.v1[0], &s.v2[0], p0, p1, p2, p3, p4, n)
}

// simdMinPopWords gates the vector popcount: below this the scalar POPCNT
// loop wins on setup cost alone.
const simdMinPopWords = 16

func popcntWordsAVX2(p []uint64) int {
	if len(p) < simdMinPopWords {
		return popcntWordsGeneric(p)
	}
	return popcntWordsAsmAVX2(&p[0], len(p))
}

func popcntWordsAVX512(p []uint64) int {
	if len(p) < simdMinPopWords {
		return popcntWordsGeneric(p)
	}
	return popcntWordsAsmAVX512(&p[0], len(p))
}

// simdMinBlocks gates the vector block popcount per row segment.
const simdMinBlocks = 8

func blockPopAVX2(row []uint64, off, s1 int, acc []int) int {
	if len(acc) < simdMinBlocks {
		return blockPopGeneric(row, off, s1, acc)
	}
	return blockPopAsmAVX2(&row[0], len(row), off, s1, &acc[0], len(acc))
}

func blockPopAVX512(row []uint64, off, s1 int, acc []int) int {
	if len(acc) < simdMinBlocks {
		return blockPopGeneric(row, off, s1, acc)
	}
	return blockPopAsmAVX512(&row[0], len(row), off, s1, &acc[0], len(acc))
}

// archImpls returns the implementations this CPU can run, best first. The
// medians are AVX2 (the bit-plane networks are pure 256-bit logic; wider
// vectors would cross the dirty-run granularity for no gain); the popcount
// reductions get a VPOPCNTQ upgrade when AVX-512 VL+VPOPCNTDQ is present.
func archImpls() []*kernelImpl {
	f := cpufeat.Detect()
	if !f.AVX2 {
		return nil
	}
	avx2 := &kernelImpl{
		name:         "avx2",
		median3:      median3RunAVX2,
		median5:      median5RunAVX2,
		medianName:   "avx2",
		popcntWords:  popcntWordsAVX2,
		popcntName:   "avx2",
		blockPop:     blockPopAVX2,
		blockPopName: "avx2",
	}
	impls := []*kernelImpl{avx2}
	if f.HasAVX512() && f.AVX512VPOPCNTDQ {
		avx512 := &kernelImpl{
			name:         "avx512",
			median3:      median3RunAVX2,
			median5:      median5RunAVX2,
			medianName:   "avx2",
			popcntWords:  popcntWordsAVX512,
			popcntName:   "avx512",
			blockPop:     blockPopAVX512,
			blockPopName: "avx512",
		}
		impls = []*kernelImpl{avx512, avx2}
	}
	for len(impls) > 0 && !popcntSelfCheck(impls[0]) {
		impls = impls[1:]
	}
	return impls
}

// popcntSelfCheck is a cheap init-time sanity probe, run inside archImpls
// (before dispatch.go's init picks an implementation): if the assembly
// popcount disagrees with the scalar one on a fixed vector, drop to the
// next implementation rather than corrupt every downstream reduction. It
// guards against an OS/hypervisor that advertises a feature it cannot
// actually execute correctly (the full differential guarantee comes from
// the test suite, not this probe).
func popcntSelfCheck(im *kernelImpl) bool {
	v := make([]uint64, 32)
	for i := range v {
		v[i] = uint64(i) * 0x9e3779b97f4a7c15
	}
	want := 0
	for _, w := range v {
		want += bits.OnesCount64(w)
	}
	return im.popcntWords(v) == want
}
