package imgproc

import "math/bits"

// ActiveRegion summarises where a PackedBitmap may contain set pixels: a
// dirty row span plus, per row, a bitmap of dirty storage words. It is the
// sparsity side-channel of the packed frame chain — event accumulation
// maintains it in O(1) per event (ebbi.PackedBuilder), and every ranged
// kernel (PackedMedianFilterRange, PackedHistogramsIntoRange,
// PackedConnectedComponentsRegion, PackedDilateRegion/PackedErodeRegion)
// processes only the region plus its kernel halo and bulk-clears the rest.
//
// The contract is conservative in exactly one direction: the region is a
// SUPERSET of the set pixels. Every marked word may still be all-zero
// (clearing pixels — ROE masking, deferred frame clears — never unmarks),
// but a set pixel outside the region is a caller bug and kernels will
// silently miss it. Kernels accept a nil *ActiveRegion to mean "no
// information": the full frame is processed, which keeps the ranged
// variants drop-in supersets of the full-frame kernels.
//
// Per-word tracking covers strides up to 64 words (4096-pixel-wide
// frames); wider frames degrade gracefully to span-only tracking, where
// every word of a dirty row counts as dirty.
type ActiveRegion struct {
	h, stride int
	y0, y1    int // dirty row span [y0, y1); empty when y0 >= y1
	// rows[y] bit k set means word k of row y may hold set pixels. Rows
	// outside [y0, y1) are all-zero by invariant.
	rows []uint64
	// wordMask is the set of word indexes that exist in a row (all ones
	// when the stride is 64 words or wider).
	wordMask uint64
	// wide disables per-word tracking (stride > 64): RowMask degrades to
	// wordMask for every row inside the span.
	wide bool
}

// NewActiveRegion returns an empty region for a w x h packed bitmap.
func NewActiveRegion(w, h int) *ActiveRegion {
	a := &ActiveRegion{}
	a.Resize(w, h)
	return a
}

// Resize reshapes the region for a w x h bitmap and empties it.
func (a *ActiveRegion) Resize(w, h int) {
	stride := (w + wordBits - 1) / wordBits
	a.h, a.stride = h, stride
	a.wide = stride > 64
	if stride >= 64 {
		a.wordMask = ^uint64(0)
	} else {
		a.wordMask = (uint64(1) << uint(stride)) - 1
	}
	if cap(a.rows) < h {
		a.rows = make([]uint64, h)
	} else {
		a.rows = a.rows[:h]
		clear(a.rows)
	}
	a.y0, a.y1 = h, 0
}

// Reset empties the region in place, touching only the dirty span.
func (a *ActiveRegion) Reset() {
	if a.y1 > a.y0 {
		clear(a.rows[a.y0:a.y1])
	}
	a.y0, a.y1 = a.h, 0
}

// MarkWord records that word w of row y may now hold set pixels. It is the
// O(1) per-event update on the accumulate hot path; y and w must be in
// range (the caller has already bounds-checked the event).
func (a *ActiveRegion) MarkWord(y, w int) {
	a.rows[y] |= uint64(1) << (uint(w) & 63)
	if y < a.y0 {
		a.y0 = y
	}
	if y >= a.y1 {
		a.y1 = y + 1
	}
}

// MarkAll dirties the whole frame, the "no sparsity" fixed point.
func (a *ActiveRegion) MarkAll() {
	a.y0, a.y1 = 0, a.h
	for y := range a.rows {
		a.rows[y] = a.wordMask
	}
}

// Empty reports whether no word is marked.
func (a *ActiveRegion) Empty() bool { return a.y1 <= a.y0 }

// RowSpan returns the dirty row span [y0, y1); y0 >= y1 when empty.
func (a *ActiveRegion) RowSpan() (y0, y1 int) { return a.y0, a.y1 }

// RowMask returns the dirty-word bitmap of row y (zero outside the span;
// all words when per-word tracking is degraded).
func (a *ActiveRegion) RowMask(y int) uint64 {
	if y < a.y0 || y >= a.y1 {
		return 0
	}
	if a.wide {
		return a.wordMask
	}
	return a.rows[y]
}

// SetDilated makes a the morphological dilation of src by a square radius
// r: the row span grows by r in both directions (clamped to the image) and
// each row's word mask becomes the union of the source masks within r rows,
// smeared sideways far enough to cover an r-pixel horizontal reach. This is
// how a frame's region propagates through an r-halo kernel: the median
// filter with patch p can only set pixels within p/2 of a set input pixel,
// so the filtered frame's region is the raw region dilated by p/2.
//
// a adopts src's geometry. a == src dilates in place; because every row
// written is a union that includes its own prior value, the in-place
// result can only be wider than the exact dilation — still a valid
// superset region.
func (a *ActiveRegion) SetDilated(src *ActiveRegion, r int) {
	if r < 0 {
		r = 0
	}
	if a != src {
		a.h, a.stride, a.wide, a.wordMask = src.h, src.stride, src.wide, src.wordMask
		if cap(a.rows) < a.h {
			a.rows = make([]uint64, a.h)
		} else {
			a.rows = a.rows[:a.h]
			clear(a.rows)
		}
		a.y0, a.y1 = a.h, 0
	}
	if src.Empty() {
		a.Reset()
		return
	}
	oy0, oy1 := src.y0-r, src.y1+r
	if oy0 < 0 {
		oy0 = 0
	}
	if oy1 > a.h {
		oy1 = a.h
	}
	// smear is how many words an r-pixel horizontal reach can cross: a bit
	// at the top of a word travels at most (63+r)/64 word boundaries.
	smear := 0
	if r > 0 && !a.wide {
		smear = (r + 63) >> 6
	}
	sy0, sy1 := src.y0, src.y1
	for y := oy0; y < oy1; y++ {
		var m uint64
		lo, hi := y-r, y+r
		if lo < sy0 {
			lo = sy0
		}
		if hi >= sy1 {
			hi = sy1 - 1
		}
		if src.wide {
			m = src.wordMask
		} else {
			for yy := lo; yy <= hi; yy++ {
				m |= src.rows[yy]
			}
		}
		for s := 1; s <= smear; s++ {
			m |= m << 1
			m |= m >> 1
		}
		a.rows[y] |= m & a.wordMask
	}
	a.y0, a.y1 = oy0, oy1
}

// CoverageWords returns how many words the region marks dirty — the
// numerator of the active-pixel fraction the monitoring surface reports.
func (a *ActiveRegion) CoverageWords() int {
	if a.Empty() {
		return 0
	}
	if a.wide {
		return a.stride * (a.y1 - a.y0)
	}
	n := 0
	for _, m := range a.rows[a.y0:a.y1] {
		n += bits.OnesCount64(m)
	}
	return n
}

// FrameWords returns the total word count of the tracked frame — the
// denominator of the active-pixel fraction.
func (a *ActiveRegion) FrameWords() int { return a.stride * a.h }
