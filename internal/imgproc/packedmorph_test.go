package imgproc

import (
	"math/rand"
	"testing"
)

func TestPackedMorphologyDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, sz := range testSizes {
		for _, r := range []int{0, 1, 2, 3, 5, 70} {
			for _, density := range []float64{0.02, 0.2, 0.7} {
				src := randomBitmap(rng, sz.w, sz.h, density)
				psrc := PackBitmap(nil, src)

				wantD := Dilate(src, r)
				gotD := PackedDilate(nil, psrc, r)
				if !gotD.Unpack(nil).Equal(wantD) {
					t.Fatalf("%dx%d r=%d d=%.2f: packed dilate != byte\nsrc:\n%s\ngot:\n%s\nwant:\n%s",
						sz.w, sz.h, r, density, src, gotD, wantD)
				}
				checkTailInvariant(t, gotD)

				wantE := Erode(src, r)
				gotE := PackedErode(nil, psrc, r)
				if !gotE.Unpack(nil).Equal(wantE) {
					t.Fatalf("%dx%d r=%d d=%.2f: packed erode != byte\nsrc:\n%s\ngot:\n%s\nwant:\n%s",
						sz.w, sz.h, r, density, src, gotE, wantE)
				}
				checkTailInvariant(t, gotE)

				// The source must be untouched (dst never aliases src).
				if !psrc.Unpack(nil).Equal(src) {
					t.Fatalf("%dx%d r=%d: morphology mutated its source", sz.w, sz.h, r)
				}
			}
		}
	}
}

func TestPackedMorphologyReusesDst(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	src := randomBitmap(rng, 100, 80, 0.3)
	psrc := PackBitmap(nil, src)
	dst := NewPackedBitmap(7, 3) // wrong shape: must be resized
	out := PackedDilate(dst, psrc, 2)
	if out != dst {
		t.Fatal("PackedDilate did not return the provided dst")
	}
	if !out.Unpack(nil).Equal(Dilate(src, 2)) {
		t.Fatal("reused-dst dilation differs from byte path")
	}
}

func TestPackedMorphologyDuality(t *testing.T) {
	// Interior duality sanity check: eroding the dilation of a single
	// centred pixel with the same radius recovers exactly that pixel when
	// the structuring element fits inside the image.
	p := NewPackedBitmap(65, 65)
	p.Set(32, 32)
	for r := 1; r <= 3; r++ {
		opened := PackedErode(nil, PackedDilate(nil, p, r), r)
		if !opened.Equal(p) {
			t.Fatalf("r=%d: erode(dilate(point)) != point", r)
		}
	}
}
