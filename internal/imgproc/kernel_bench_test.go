package imgproc

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchFrame builds a DAVIS240-sized frame that looks like a filtered EBBI
// from the traffic recordings: a few dense object patches over sparse
// salt-and-pepper background noise (about 2% overall density).
func benchFrame(w, h int) *Bitmap {
	rng := rand.New(rand.NewSource(42))
	b := NewBitmap(w, h)
	type patch struct{ x, y, pw, ph int }
	for _, p := range []patch{{60, 70, 25, 25}, {92, 70, 28, 25}, {150, 110, 40, 20}, {20, 30, 10, 16}} {
		for y := p.y; y < p.y+p.ph && y < h; y++ {
			for x := p.x; x < p.x+p.pw && x < w; x++ {
				if rng.Float64() < 0.6 {
					b.Set(x, y)
				}
			}
		}
	}
	for i := 0; i < w*h/100; i++ {
		b.Set(rng.Intn(w), rng.Intn(h))
	}
	return b
}

func BenchmarkMedianByte(b *testing.B) {
	for _, p := range []int{3, 5} {
		p := p
		b.Run(benchP(p), func(b *testing.B) {
			src := benchFrame(240, 180)
			dst := NewBitmap(240, 180)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := MedianFilter(dst, src, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDownsampleByte(b *testing.B) {
	src := benchFrame(240, 180)
	dst := NewCountImage(40, 60)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DownsampleInto(dst, src, 6, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHistogramsByte(b *testing.B) {
	src := benchFrame(240, 180)
	scaled, err := Downsample(src, 6, 3)
	if err != nil {
		b.Fatal(err)
	}
	var hx, hy []int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hx, hy = HistogramsInto(hx, hy, scaled)
	}
}

func BenchmarkCCAByte(b *testing.B) {
	src := benchFrame(240, 180)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(ConnectedComponents(src)) == 0 {
			b.Fatal("no components")
		}
	}
}

func benchP(p int) string {
	if p == 3 {
		return "p=3"
	}
	return "p=5"
}

func BenchmarkMedianPacked(b *testing.B) {
	for _, p := range []int{3, 5} {
		p := p
		b.Run(benchP(p), func(b *testing.B) {
			src := PackBitmap(nil, benchFrame(240, 180))
			dst := NewPackedBitmap(240, 180)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := PackedMedianFilter(dst, src, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDownsamplePacked(b *testing.B) {
	src := PackBitmap(nil, benchFrame(240, 180))
	dst := NewCountImage(40, 60)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PackedDownsampleInto(dst, src, 6, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHistogramsPacked covers the fused downsample+histogram kernel,
// so its byte-path comparison point is DownsampleByte + HistogramsByte
// combined.
func BenchmarkHistogramsPacked(b *testing.B) {
	src := PackBitmap(nil, benchFrame(240, 180))
	var hx, hy []int
	var err error
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hx, hy, err = PackedHistogramsInto(hx, hy, src, 6, 3)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCCAPacked(b *testing.B) {
	src := PackBitmap(nil, benchFrame(240, 180))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(PackedConnectedComponents(src)) == 0 {
			b.Fatal("no components")
		}
	}
}

// benchSceneFrame builds a DAVIS240-sized frame whose activity is confined
// to object patches touching roughly activeRows of the frame's rows, with
// no global noise — the sparsity shape of typical traffic scenes, where
// events touch a small band of the array and the rest stays dark.
func benchSceneFrame(w, h, activeRows int) *PackedBitmap {
	rng := rand.New(rand.NewSource(7))
	p := NewPackedBitmap(w, h)
	if activeRows <= 0 {
		return p
	}
	// Two vehicle-sized patches splitting the active row budget.
	ph := activeRows / 2
	if ph == 0 {
		ph = 1
	}
	type patch struct{ x, y, pw, ph int }
	patches := []patch{
		{60, 70, 34, ph},
		{150, 110, 40, activeRows - ph},
	}
	for _, pt := range patches {
		for y := pt.y; y < pt.y+pt.ph && y < h; y++ {
			for x := pt.x; x < pt.x+pt.pw && x < w; x++ {
				if rng.Float64() < 0.6 {
					p.Set(x, y)
				}
			}
		}
	}
	return p
}

// benchScenes are the sparsity levels the activity-bounded kernels are
// measured at: fully dense (every row busy — the worst case, where the
// ranged path must not regress), ~10% of rows active, and ~1% active.
func benchScenes() []struct {
	name string
	src  *PackedBitmap
} {
	dense := PackBitmap(nil, benchFrame(240, 180))
	return []struct {
		name string
		src  *PackedBitmap
	}{
		{"dense", dense},
		{"active10pct", benchSceneFrame(240, 180, 18)},
		{"active1pct", benchSceneFrame(240, 180, 2)},
	}
}

// BenchmarkMedianPackedSparsity measures the median filter across patch
// sizes and sparsity levels: "full" is the bit-sliced kernel without a
// region, "ranged" consumes the frame's exact dirty region (the state
// accumulate-time tracking maintains), and "sliding" pins the retired
// sliding-column fallback at the same region as the comparison baseline.
func BenchmarkMedianPackedSparsity(b *testing.B) {
	for _, sc := range benchScenes() {
		ar := regionFor(sc.src)
		dst := NewPackedBitmap(240, 180)
		for _, p := range []int{3, 5} {
			p := p
			b.Run(sc.name+"/"+benchP(p)+"/full", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if err := PackedMedianFilter(dst, sc.src, p); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(sc.name+"/"+benchP(p)+"/ranged", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if err := PackedMedianFilterRange(dst, sc.src, p, ar); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(sc.name+"/"+benchP(p)+"/sliding", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					packedMedianSlidingRange(dst, sc.src, p, ar)
				}
			})
		}
	}
}

// BenchmarkHistogramsPackedSparsity is the fused downsample+histogram
// kernel across the same sparsity grid.
func BenchmarkHistogramsPackedSparsity(b *testing.B) {
	for _, sc := range benchScenes() {
		ar := regionFor(sc.src)
		var hx, hy []int
		var err error
		b.Run(sc.name+"/full", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if hx, hy, err = PackedHistogramsInto(hx, hy, sc.src, 6, 3); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(sc.name+"/ranged", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if hx, hy, err = PackedHistogramsIntoRange(hx, hy, sc.src, 6, 3, ar); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCCAPackedSparsity is the run-extraction CCA across the same
// sparsity grid (dilation radius 0, matching the RPN ablation default).
func BenchmarkCCAPackedSparsity(b *testing.B) {
	for _, sc := range benchScenes() {
		ar := regionFor(sc.src)
		b.Run(sc.name+"/full", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				PackedConnectedComponents(sc.src)
			}
		})
		b.Run(sc.name+"/ranged", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				PackedConnectedComponentsRegion(sc.src, ar)
			}
		})
	}
}

// BenchmarkPackedChainBatch is the kernel-level view of pipeline window
// batching: one op runs the fused median + downsample/histogram chain over
// a batch of contiguous frames back-to-back, so call dispatch and scratch
// reuse amortize exactly as they do when pipeline.Runner hands a System a
// window batch. ns/op scales with the batch size; the reported ns/frame
// metric is the amortized per-frame cost to compare across batch sizes.
func BenchmarkPackedChainBatch(b *testing.B) {
	for _, sc := range benchScenes() {
		ar := regionFor(sc.src)
		dst := NewPackedBitmap(240, 180)
		var hx, hy []int
		var err error
		for _, batch := range []int{1, 4, 16} {
			batch := batch
			b.Run(fmt.Sprintf("%s/batch=%d", sc.name, batch), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					for j := 0; j < batch; j++ {
						if err = PackedMedianFilterRange(dst, sc.src, 3, ar); err != nil {
							b.Fatal(err)
						}
						// The raw frame's dirty region is a superset of the
						// filtered output's, so it bounds the fused
						// histogram pass too.
						if hx, hy, err = PackedHistogramsIntoRange(hx, hy, dst, 6, 3, ar); err != nil {
							b.Fatal(err)
						}
					}
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/frame")
			})
		}
	}
}

func BenchmarkPackUnpack(b *testing.B) {
	src := benchFrame(240, 180)
	var p *PackedBitmap
	var back *Bitmap
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p = PackBitmap(p, src)
		back = p.Unpack(back)
	}
}
