package imgproc

import (
	"math/rand"
	"testing"
)

// benchFrame builds a DAVIS240-sized frame that looks like a filtered EBBI
// from the traffic recordings: a few dense object patches over sparse
// salt-and-pepper background noise (about 2% overall density).
func benchFrame(w, h int) *Bitmap {
	rng := rand.New(rand.NewSource(42))
	b := NewBitmap(w, h)
	type patch struct{ x, y, pw, ph int }
	for _, p := range []patch{{60, 70, 25, 25}, {92, 70, 28, 25}, {150, 110, 40, 20}, {20, 30, 10, 16}} {
		for y := p.y; y < p.y+p.ph && y < h; y++ {
			for x := p.x; x < p.x+p.pw && x < w; x++ {
				if rng.Float64() < 0.6 {
					b.Set(x, y)
				}
			}
		}
	}
	for i := 0; i < w*h/100; i++ {
		b.Set(rng.Intn(w), rng.Intn(h))
	}
	return b
}

func BenchmarkMedianByte(b *testing.B) {
	for _, p := range []int{3, 5} {
		p := p
		b.Run(benchP(p), func(b *testing.B) {
			src := benchFrame(240, 180)
			dst := NewBitmap(240, 180)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := MedianFilter(dst, src, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDownsampleByte(b *testing.B) {
	src := benchFrame(240, 180)
	dst := NewCountImage(40, 60)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DownsampleInto(dst, src, 6, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHistogramsByte(b *testing.B) {
	src := benchFrame(240, 180)
	scaled, err := Downsample(src, 6, 3)
	if err != nil {
		b.Fatal(err)
	}
	var hx, hy []int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hx, hy = HistogramsInto(hx, hy, scaled)
	}
}

func BenchmarkCCAByte(b *testing.B) {
	src := benchFrame(240, 180)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(ConnectedComponents(src)) == 0 {
			b.Fatal("no components")
		}
	}
}

func benchP(p int) string {
	if p == 3 {
		return "p=3"
	}
	return "p=5"
}

func BenchmarkMedianPacked(b *testing.B) {
	for _, p := range []int{3, 5} {
		p := p
		b.Run(benchP(p), func(b *testing.B) {
			src := PackBitmap(nil, benchFrame(240, 180))
			dst := NewPackedBitmap(240, 180)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := PackedMedianFilter(dst, src, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDownsamplePacked(b *testing.B) {
	src := PackBitmap(nil, benchFrame(240, 180))
	dst := NewCountImage(40, 60)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PackedDownsampleInto(dst, src, 6, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHistogramsPacked covers the fused downsample+histogram kernel,
// so its byte-path comparison point is DownsampleByte + HistogramsByte
// combined.
func BenchmarkHistogramsPacked(b *testing.B) {
	src := PackBitmap(nil, benchFrame(240, 180))
	var hx, hy []int
	var err error
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hx, hy, err = PackedHistogramsInto(hx, hy, src, 6, 3)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCCAPacked(b *testing.B) {
	src := PackBitmap(nil, benchFrame(240, 180))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(PackedConnectedComponents(src)) == 0 {
			b.Fatal("no components")
		}
	}
}

func BenchmarkPackUnpack(b *testing.B) {
	src := benchFrame(240, 180)
	var p *PackedBitmap
	var back *Bitmap
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p = PackBitmap(p, src)
		back = p.Unpack(back)
	}
}
