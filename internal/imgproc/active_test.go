package imgproc

import (
	"math/rand"
	"testing"
)

// regionFor builds the exact active region of a packed bitmap: every word
// holding a set pixel is marked. This mirrors what accumulate-time
// tracking produces when every marked word still holds its pixel.
func regionFor(p *PackedBitmap) *ActiveRegion {
	ar := NewActiveRegion(p.W, p.H)
	for y := 0; y < p.H; y++ {
		for k, w := range p.Row(y) {
			if w != 0 {
				ar.MarkWord(y, k)
			}
		}
	}
	return ar
}

// garbageFill sets every pixel of dst so missing bulk clears in ranged
// kernels show up as stale ones in the output.
func garbageFill(dst *PackedBitmap) {
	for i := range dst.Words {
		dst.Words[i] = ^uint64(0)
	}
	dst.clearTail()
}

// rangedKernelCase checks every ranged kernel against its full-frame
// counterpart for one bitmap and one (superset) region.
func rangedKernelCase(t *testing.T, src *PackedBitmap, ar *ActiveRegion, p, s1, s2, r int) {
	t.Helper()
	w, h := src.W, src.H

	want := NewPackedBitmap(w, h)
	if err := PackedMedianFilter(want, src, p); err != nil {
		t.Fatal(err)
	}
	got := NewPackedBitmap(w, h)
	garbageFill(got)
	if err := PackedMedianFilterRange(got, src, p, ar); err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("ranged median != full (w=%d h=%d p=%d)\nfull:\n%s\nranged:\n%s", w, h, p, want, got)
	}
	// The sliding-column fallback no longer sits on any dispatch path for
	// p <= 63, so pin it explicitly against the same oracle.
	sld := NewPackedBitmap(w, h)
	garbageFill(sld)
	packedMedianSlidingRange(sld, src, p, ar)
	if !sld.Equal(want) {
		t.Fatalf("sliding median != full (w=%d h=%d p=%d)\nfull:\n%s\nsliding:\n%s", w, h, p, want, sld)
	}

	wantDS, err := PackedDownsampleInto(nil, src, s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	gotDS, err := PackedDownsampleIntoRange(nil, src, s1, s2, ar)
	if err != nil {
		t.Fatal(err)
	}
	if gotDS.W != wantDS.W || gotDS.H != wantDS.H {
		t.Fatalf("ranged downsample size (%d,%d) != (%d,%d)", gotDS.W, gotDS.H, wantDS.W, wantDS.H)
	}
	for i := range wantDS.Pix {
		if gotDS.Pix[i] != wantDS.Pix[i] {
			t.Fatalf("ranged downsample block %d: %d != %d (w=%d h=%d s1=%d s2=%d)",
				i, gotDS.Pix[i], wantDS.Pix[i], w, h, s1, s2)
		}
	}

	wantHX, wantHY, err := PackedHistogramsInto(nil, nil, src, s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	gotHX, gotHY, err := PackedHistogramsIntoRange(nil, nil, src, s1, s2, ar)
	if err != nil {
		t.Fatal(err)
	}
	if !intsEqual(gotHX, wantHX) || !intsEqual(gotHY, wantHY) {
		t.Fatalf("ranged histograms mismatch (w=%d h=%d s1=%d s2=%d)", w, h, s1, s2)
	}

	if !componentsEqual(PackedConnectedComponentsRegion(src, ar), PackedConnectedComponents(src)) {
		t.Fatalf("ranged CCA mismatch (w=%d h=%d)", w, h)
	}

	wantDil := PackedDilate(nil, src, r)
	gotDil := PackedDilateRegion(nil, src, r, ar)
	if !gotDil.Equal(wantDil) {
		t.Fatalf("ranged dilate mismatch (w=%d h=%d r=%d)", w, h, r)
	}
	wantEro := PackedErode(nil, src, r)
	gotEro := PackedErodeRegion(nil, src, r, ar)
	if !gotEro.Equal(wantEro) {
		t.Fatalf("ranged erode mismatch (w=%d h=%d r=%d)", w, h, r)
	}
}

// TestRangedKernelsSparsityLevels pins the sparsity levels the issue calls
// out — empty window, single pixel (corners and centre), border-saturated
// and full frame — plus word-boundary straddles, at several patch sizes.
func TestRangedKernelsSparsityLevels(t *testing.T) {
	const w, h = 240, 180
	build := func(name string, set func(p *PackedBitmap)) (string, *PackedBitmap) {
		p := NewPackedBitmap(w, h)
		set(p)
		return name, p
	}
	names := make([]string, 0, 8)
	frames := make(map[string]*PackedBitmap)
	add := func(name string, set func(p *PackedBitmap)) {
		n, p := build(name, set)
		names = append(names, n)
		frames[n] = p
	}
	add("empty", func(p *PackedBitmap) {})
	add("single-centre", func(p *PackedBitmap) { p.Set(127, 90) })
	add("single-origin", func(p *PackedBitmap) { p.Set(0, 0) })
	add("single-far-corner", func(p *PackedBitmap) { p.Set(w-1, h-1) })
	add("word-straddle", func(p *PackedBitmap) {
		for x := 60; x < 70; x++ { // crosses the bit-63/64 boundary
			for y := 88 + 0; y < 93; y++ {
				p.Set(x, y)
			}
		}
	})
	add("two-blobs-same-rows", func(p *PackedBitmap) {
		// Disjoint word masks on the same rows: per-word halo bounding must
		// keep each blob's columns from paying for — or corrupting — the
		// other's words.
		for y := 80; y < 96; y++ {
			for x := 10; x < 30; x++ {
				p.Set(x, y)
			}
			for x := 150; x < 170; x++ {
				p.Set(x, y)
			}
		}
	})
	add("two-blobs-offset-words", func(p *PackedBitmap) {
		// Vertically overlapping blobs in adjacent words with offset row
		// spans: the vertical neighbour-mask OR must widen each row's word
		// set exactly enough for the shared rows.
		for y := 50; y < 61; y++ {
			for x := 70; x < 90; x++ {
				p.Set(x, y)
			}
		}
		for y := 55; y < 66; y++ {
			for x := 130; x < 150; x++ {
				p.Set(x, y)
			}
		}
	})
	add("word-sparse-row", func(p *PackedBitmap) {
		// Isolated pixels in non-adjacent words of one row: the run
		// iteration must seed and flush its rolling planes per word run.
		p.Set(5, 90)
		p.Set(70, 90)
		p.Set(200, 90)
	})
	add("border-saturated", func(p *PackedBitmap) {
		for x := 0; x < w; x++ {
			p.Set(x, 0)
			p.Set(x, h-1)
		}
		for y := 0; y < h; y++ {
			p.Set(0, y)
			p.Set(w-1, y)
		}
	})
	add("full", func(p *PackedBitmap) {
		for i := range p.Words {
			p.Words[i] = ^uint64(0)
		}
		p.clearTail()
	})

	for _, name := range names {
		src := frames[name]
		t.Run(name, func(t *testing.T) {
			// The whole grid runs under both dispatch arms — the active
			// (possibly SIMD) kernels and the forced-generic ones — and the
			// median output of the two arms is compared bit for bit, with
			// garbage-prefilled destinations so a missed clear cannot hide.
			arms := []struct {
				name  string
				force bool
			}{{"active", false}, {"generic", true}}
			for _, arm := range arms {
				t.Run(arm.name, func(t *testing.T) {
					if arm.force {
						defer ForceGeneric()()
					}
					for _, p := range []int{1, 3, 5} {
						// Exact region, a loose superset region, and the
						// no-information full region must all agree with the
						// full-frame kernels.
						exact := regionFor(src)
						loose := NewActiveRegion(w, h)
						loose.SetDilated(exact, 70) // smears across a word boundary
						full := NewActiveRegion(w, h)
						full.MarkAll()
						for _, ar := range []*ActiveRegion{exact, loose, full} {
							rangedKernelCase(t, src, ar, p, 6, 3, p/2)
						}
					}
				})
			}
			for _, p := range []int{3, 5} {
				for _, ar := range []*ActiveRegion{nil, regionFor(src)} {
					dstA := NewPackedBitmap(w, h)
					dstG := NewPackedBitmap(w, h)
					garbageFill(dstA)
					garbageFill(dstG)
					if err := PackedMedianFilterRange(dstA, src, p, ar); err != nil {
						t.Fatal(err)
					}
					restore := ForceGeneric()
					err := PackedMedianFilterRange(dstG, src, p, ar)
					restore()
					if err != nil {
						t.Fatal(err)
					}
					if !dstA.Equal(dstG) {
						t.Fatalf("p=%d region=%v: SIMD arm != generic arm", p, ar != nil)
					}
				}
			}
		})
	}
}

// TestRangedKernelsRandom cross-checks random frames, widths (including
// non-multiples of 64) and geometries against the full-frame kernels with
// exact regions.
func TestRangedKernelsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		w := rng.Intn(200) + 1
		h := rng.Intn(120) + 1
		src := NewPackedBitmap(w, h)
		n := rng.Intn(w * h / 4)
		for i := 0; i < n; i++ {
			src.Set(rng.Intn(w), rng.Intn(h))
		}
		p := 2*rng.Intn(4) + 1
		s1, s2 := rng.Intn(8)+1, rng.Intn(8)+1
		rangedKernelCase(t, src, regionFor(src), p, s1, s2, rng.Intn(3))
	}
}

// TestActiveRegionBasics pins the summary type itself: marking, span and
// coverage accounting, reset, and dilation growth/clamping.
func TestActiveRegionBasics(t *testing.T) {
	ar := NewActiveRegion(240, 180)
	if !ar.Empty() {
		t.Fatal("fresh region not empty")
	}
	if got := ar.CoverageWords(); got != 0 {
		t.Fatalf("empty coverage = %d", got)
	}
	if ar.FrameWords() != 4*180 {
		t.Fatalf("frame words = %d, want %d", ar.FrameWords(), 4*180)
	}
	ar.MarkWord(10, 1)
	ar.MarkWord(12, 2)
	if y0, y1 := ar.RowSpan(); y0 != 10 || y1 != 13 {
		t.Fatalf("span = [%d,%d)", y0, y1)
	}
	if got := ar.CoverageWords(); got != 2 {
		t.Fatalf("coverage = %d, want 2", got)
	}
	if ar.RowMask(11) != 0 {
		t.Fatalf("unmarked row has mask %x", ar.RowMask(11))
	}
	if ar.RowMask(9) != 0 || ar.RowMask(13) != 0 {
		t.Fatal("rows outside span must have zero masks")
	}

	var dil ActiveRegion
	dil.SetDilated(ar, 1)
	if y0, y1 := dil.RowSpan(); y0 != 9 || y1 != 14 {
		t.Fatalf("dilated span = [%d,%d)", y0, y1)
	}
	// r=1 smears each mask one word to both sides and unions rows.
	if got := dil.RowMask(11); got != 0b1111 {
		t.Fatalf("dilated mask row 11 = %b", got)
	}
	if got := dil.RowMask(9); got != 0b0111 {
		t.Fatalf("dilated mask row 9 = %b", got)
	}

	ar.Reset()
	if !ar.Empty() || ar.CoverageWords() != 0 {
		t.Fatal("reset did not empty the region")
	}
	ar.MarkAll()
	if ar.CoverageWords() != ar.FrameWords() {
		t.Fatalf("MarkAll coverage %d != frame %d", ar.CoverageWords(), ar.FrameWords())
	}
}
