//go:build !amd64 || purego

package imgproc

// archImpls reports no architecture-specific kernel implementations: on
// non-amd64 platforms and under the purego build tag only the portable
// generic kernels exist.
func archImpls() []*kernelImpl { return nil }
