package imgproc

import (
	"testing"
	"testing/quick"
)

func TestBitmapBasics(t *testing.T) {
	b := NewBitmap(4, 3)
	if b.CountOnes() != 0 {
		t.Error("new bitmap should be empty")
	}
	b.Set(1, 2)
	b.Set(3, 0)
	if b.Get(1, 2) != 1 || b.Get(3, 0) != 1 {
		t.Error("set pixels should read 1")
	}
	if b.Get(0, 0) != 0 {
		t.Error("unset pixel should read 0")
	}
	if b.CountOnes() != 2 {
		t.Errorf("CountOnes = %d, want 2", b.CountOnes())
	}
	b.Unset(1, 2)
	if b.Get(1, 2) != 0 {
		t.Error("Unset should clear pixel")
	}
}

func TestBitmapOutOfRange(t *testing.T) {
	b := NewBitmap(2, 2)
	// Out-of-range operations must be safe no-ops / zero reads.
	b.Set(-1, 0)
	b.Set(0, -1)
	b.Set(2, 0)
	b.Set(0, 2)
	b.Unset(5, 5)
	if b.CountOnes() != 0 {
		t.Error("out-of-range Set should be ignored")
	}
	if b.Get(-1, -1) != 0 || b.Get(2, 2) != 0 {
		t.Error("out-of-range Get should return 0")
	}
}

func TestBitmapNegativeSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewBitmap with negative size should panic")
		}
	}()
	NewBitmap(-1, 4)
}

func TestCloneIndependence(t *testing.T) {
	b := NewBitmap(3, 3)
	b.Set(1, 1)
	c := b.Clone()
	c.Set(0, 0)
	if b.Get(0, 0) != 0 {
		t.Error("mutating clone affected original")
	}
	if !b.Equal(b.Clone()) {
		t.Error("clone should equal original")
	}
}

func TestClear(t *testing.T) {
	b := NewBitmap(3, 3)
	for y := 0; y < 3; y++ {
		for x := 0; x < 3; x++ {
			b.Set(x, y)
		}
	}
	b.Clear()
	if b.CountOnes() != 0 {
		t.Error("Clear should zero all pixels")
	}
}

func TestDensity(t *testing.T) {
	b := NewBitmap(2, 2)
	b.Set(0, 0)
	if got := b.Density(); got != 0.25 {
		t.Errorf("Density = %v, want 0.25", got)
	}
	if got := NewBitmap(0, 0).Density(); got != 0 {
		t.Errorf("empty bitmap density = %v", got)
	}
}

func TestEqual(t *testing.T) {
	a := NewBitmap(2, 2)
	b := NewBitmap(2, 2)
	if !a.Equal(b) {
		t.Error("empty bitmaps should be equal")
	}
	a.Set(1, 1)
	if a.Equal(b) {
		t.Error("different bitmaps should not be equal")
	}
	if a.Equal(NewBitmap(2, 3)) {
		t.Error("size-mismatched bitmaps should not be equal")
	}
	// Equal compares logical state, not raw bytes.
	c := NewBitmap(1, 1)
	d := NewBitmap(1, 1)
	c.Pix[0] = 1
	d.Pix[0] = 255
	if !c.Equal(d) {
		t.Error("any non-zero byte should count as set")
	}
}

func TestStringRoundTrip(t *testing.T) {
	src := `
		.#..
		####
		..#.
	`
	b, err := FromString(src)
	if err != nil {
		t.Fatal(err)
	}
	if b.W != 4 || b.H != 3 {
		t.Fatalf("parsed size %dx%d", b.W, b.H)
	}
	// Top row of the string is the highest y.
	if b.Get(1, 2) != 1 || b.Get(2, 0) != 1 || b.Get(0, 1) != 1 {
		t.Errorf("parsed bitmap wrong:\n%s", b)
	}
	b2, err := FromString(b.String())
	if err != nil {
		t.Fatal(err)
	}
	if !b.Equal(b2) {
		t.Error("String/FromString round trip failed")
	}
}

func TestFromStringErrors(t *testing.T) {
	if _, err := FromString("..\n..."); err == nil {
		t.Error("ragged rows should error")
	}
	if _, err := FromString("..\n.x"); err == nil {
		t.Error("bad char should error")
	}
}

func TestMedianRemovesSaltNoise(t *testing.T) {
	// Isolated pixels (salt noise from sensor background activity) must be
	// removed, while a solid object survives.
	src, err := FromString(`
		#.........
		....####..
		....####..
		....####..
		.#........
	`)
	if err != nil {
		t.Fatal(err)
	}
	dst := NewBitmap(src.W, src.H)
	if err := MedianFilter(dst, src, 3); err != nil {
		t.Fatal(err)
	}
	if dst.Get(0, 4) != 0 || dst.Get(1, 0) != 0 {
		t.Errorf("salt noise not removed:\n%s", dst)
	}
	// The interior of the block survives.
	if dst.Get(5, 2) != 1 || dst.Get(6, 2) != 1 {
		t.Errorf("object interior removed:\n%s", dst)
	}
}

func TestMedianFillsPepperHole(t *testing.T) {
	// A single hole inside a solid region is filled by the majority vote.
	src, err := FromString(`
		#####
		##.##
		#####
	`)
	if err != nil {
		t.Fatal(err)
	}
	dst := NewBitmap(src.W, src.H)
	if err := MedianFilter(dst, src, 3); err != nil {
		t.Fatal(err)
	}
	if dst.Get(2, 1) != 1 {
		t.Errorf("pepper hole not filled:\n%s", dst)
	}
}

func TestMedianEmptyAndFull(t *testing.T) {
	empty := NewBitmap(8, 8)
	dst := NewBitmap(8, 8)
	if err := MedianFilter(dst, empty, 3); err != nil {
		t.Fatal(err)
	}
	if dst.CountOnes() != 0 {
		t.Error("median of empty image should be empty")
	}
	full := NewBitmap(8, 8)
	for i := range full.Pix {
		full.Pix[i] = 1
	}
	if err := MedianFilter(dst, full, 3); err != nil {
		t.Fatal(err)
	}
	// Interior must stay set; corners have only 4 of 9 neighbours set so they
	// are eroded by the border-as-zero convention.
	if dst.Get(4, 4) != 1 {
		t.Error("interior of full image should stay set")
	}
	if dst.Get(0, 0) != 0 {
		t.Error("corner of full image should be eroded (4 <= floor(9/2))")
	}
}

func TestMedianErrors(t *testing.T) {
	a, b := NewBitmap(4, 4), NewBitmap(4, 4)
	if err := MedianFilter(a, b, 2); err == nil {
		t.Error("even patch size should error")
	}
	if err := MedianFilter(a, b, 0); err == nil {
		t.Error("zero patch size should error")
	}
	if err := MedianFilter(a, a, 3); err == nil {
		t.Error("in-place median should error")
	}
	if err := MedianFilter(NewBitmap(3, 3), b, 3); err == nil {
		t.Error("size mismatch should error")
	}
}

func TestMedianP1IsIdentity(t *testing.T) {
	src := NewBitmap(5, 5)
	src.Set(2, 2)
	src.Set(0, 4)
	dst := NewBitmap(5, 5)
	if err := MedianFilter(dst, src, 1); err != nil {
		t.Fatal(err)
	}
	if !dst.Equal(src) {
		t.Error("p=1 median should be identity")
	}
}

func TestMedianCounted(t *testing.T) {
	src, err := FromString(`
		....
		.##.
		....
	`)
	if err != nil {
		t.Fatal(err)
	}
	dst := NewBitmap(src.W, src.H)
	ops, err := MedianFilterCounted(dst, src, 3)
	if err != nil {
		t.Fatal(err)
	}
	// 12 pixels => 12 comparisons; each of the 2 set pixels is visited by the
	// patches of its (up to 9) neighbours; count increments = number of
	// (pixel, patch) incidences = sum over set pixels of patches containing
	// them = 2 * 9 = 18 (all neighbour centers are in range for a 4x3 image
	// at (1,1) and (2,1)).
	want := int64(12 + 18)
	if ops != want {
		t.Errorf("counted ops = %d, want %d", ops, want)
	}
}

func TestMedianMonotoneProperty(t *testing.T) {
	// Median filtering is monotone: adding pixels to the input never removes
	// pixels from the output.
	prop := func(seed []byte) bool {
		a := NewBitmap(12, 9)
		for i, v := range seed {
			if i >= len(a.Pix) {
				break
			}
			if v%3 == 0 {
				a.Pix[i] = 1
			}
		}
		b := a.Clone()
		// Superset: set a few more pixels.
		for i, v := range seed {
			if i >= len(b.Pix) {
				break
			}
			if v%5 == 0 {
				b.Pix[i] = 1
			}
		}
		fa, fb := NewBitmap(12, 9), NewBitmap(12, 9)
		if err := MedianFilter(fa, a, 3); err != nil {
			return false
		}
		if err := MedianFilter(fb, b, 3); err != nil {
			return false
		}
		for i := range fa.Pix {
			if fa.Pix[i] == 1 && fb.Pix[i] == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
