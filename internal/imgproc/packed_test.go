package imgproc

import (
	"math/rand"
	"testing"
)

// medianNaive is the seed's literal O(p^2)-per-pixel median, kept as the
// trivially-correct oracle for both fast paths.
func medianNaive(dst, src *Bitmap, p int) {
	half := p / 2
	thresh := (p * p) / 2
	for y := 0; y < src.H; y++ {
		for x := 0; x < src.W; x++ {
			count := 0
			for dy := -half; dy <= half; dy++ {
				for dx := -half; dx <= half; dx++ {
					count += int(src.Get(x+dx, y+dy))
				}
			}
			if count > thresh {
				dst.Pix[y*dst.W+x] = 1
			} else {
				dst.Pix[y*dst.W+x] = 0
			}
		}
	}
}

// randomBitmap fills a w x h bitmap at the given density, plus a fully set
// border column/row pattern on some seeds to stress border handling.
func randomBitmap(rng *rand.Rand, w, h int, density float64) *Bitmap {
	b := NewBitmap(w, h)
	for i := range b.Pix {
		if rng.Float64() < density {
			b.Pix[i] = 1
		}
	}
	if w > 0 && h > 0 && rng.Intn(3) == 0 {
		// Saturate one border so patches straddle the image edge.
		for x := 0; x < w; x++ {
			b.Set(x, 0)
			b.Set(x, h-1)
		}
		for y := 0; y < h; y++ {
			b.Set(0, y)
			b.Set(w-1, y)
		}
	}
	return b
}

// testSizes stresses word-boundary handling: widths below, at and beyond
// multiples of 64, plus degenerate one-pixel dimensions and the paper's
// 240x180 array.
var testSizes = []struct{ w, h int }{
	{1, 1}, {7, 5}, {63, 40}, {64, 64}, {65, 33}, {100, 77},
	{128, 3}, {129, 2}, {240, 180}, {257, 3}, {3, 257},
}

func TestPackedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, sz := range testSizes {
		b := randomBitmap(rng, sz.w, sz.h, 0.3)
		p := PackBitmap(nil, b)
		if p.CountOnes() != b.CountOnes() {
			t.Fatalf("%dx%d: CountOnes packed %d != byte %d", sz.w, sz.h, p.CountOnes(), b.CountOnes())
		}
		for y := 0; y < sz.h; y++ {
			for x := 0; x < sz.w; x++ {
				if p.Get(x, y) != b.Get(x, y) {
					t.Fatalf("%dx%d: pixel (%d,%d) packed %d != byte %d", sz.w, sz.h, x, y, p.Get(x, y), b.Get(x, y))
				}
			}
		}
		back := p.Unpack(nil)
		if !back.Equal(b) {
			t.Fatalf("%dx%d: pack/unpack round trip mismatch", sz.w, sz.h)
		}
		checkTailInvariant(t, p)
	}
}

func TestPackedSetUnset(t *testing.T) {
	p := NewPackedBitmap(70, 4)
	p.Set(63, 1)
	p.Set(64, 1)
	p.Set(69, 3)
	p.Set(-1, 0) // ignored
	p.Set(70, 3) // ignored
	p.Set(0, 4)  // ignored
	if p.CountOnes() != 3 {
		t.Fatalf("CountOnes = %d, want 3", p.CountOnes())
	}
	p.Unset(64, 1)
	if p.Get(64, 1) != 0 || p.Get(63, 1) != 1 {
		t.Fatal("Unset cleared the wrong bit")
	}
	checkTailInvariant(t, p)
}

// checkTailInvariant asserts the padding bits beyond column W-1 are zero.
func checkTailInvariant(t *testing.T, p *PackedBitmap) {
	t.Helper()
	if p.Stride == 0 || p.W&63 == 0 {
		return
	}
	mask := p.tailMask()
	for y := 0; y < p.H; y++ {
		if w := p.Words[y*p.Stride+p.Stride-1]; w&^mask != 0 {
			t.Fatalf("row %d: padding bits set: %064b", y, w)
		}
	}
}

func TestMedianDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, sz := range testSizes {
		for _, p := range []int{1, 3, 5, 7, 9} {
			for _, density := range []float64{0.02, 0.3, 0.7} {
				src := randomBitmap(rng, sz.w, sz.h, density)
				want := NewBitmap(sz.w, sz.h)
				medianNaive(want, src, p)

				got := NewBitmap(sz.w, sz.h)
				if err := MedianFilter(got, src, p); err != nil {
					t.Fatal(err)
				}
				if !got.Equal(want) {
					t.Fatalf("%dx%d p=%d d=%.2f: byte sliding median != naive\nsrc:\n%sgot:\n%swant:\n%s",
						sz.w, sz.h, p, density, src, got, want)
				}

				psrc := PackBitmap(nil, src)
				pdst := NewPackedBitmap(sz.w, sz.h)
				if err := PackedMedianFilter(pdst, psrc, p); err != nil {
					t.Fatal(err)
				}
				if !pdst.Unpack(nil).Equal(want) {
					t.Fatalf("%dx%d p=%d d=%.2f: packed median != naive\nsrc:\n%sgot:\n%swant:\n%s",
						sz.w, sz.h, p, density, src, pdst, want)
				}
				checkTailInvariant(t, pdst)
			}
		}
	}
}

func TestPackedMedianErrors(t *testing.T) {
	a, b := NewPackedBitmap(8, 8), NewPackedBitmap(8, 9)
	if err := PackedMedianFilter(a, a, 3); err == nil {
		t.Fatal("in-place packed median not rejected")
	}
	if err := PackedMedianFilter(a, b, 3); err == nil {
		t.Fatal("size mismatch not rejected")
	}
	if err := PackedMedianFilter(a, NewPackedBitmap(8, 8), 2); err == nil {
		t.Fatal("even p not rejected")
	}
}

func TestDownsampleHistogramsDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	scales := []struct{ s1, s2 int }{{1, 1}, {6, 3}, {3, 6}, {12, 6}, {64, 2}, {65, 2}, {7, 5}}
	for _, sz := range testSizes {
		for _, sc := range scales {
			src := randomBitmap(rng, sz.w, sz.h, 0.25)
			want, err := Downsample(src, sc.s1, sc.s2)
			if err != nil {
				t.Fatal(err)
			}
			wantHX, wantHY := Histograms(want)

			psrc := PackBitmap(nil, src)
			got, err := PackedDownsample(psrc, sc.s1, sc.s2)
			if err != nil {
				t.Fatal(err)
			}
			if got.W != want.W || got.H != want.H {
				t.Fatalf("%dx%d s=(%d,%d): size %dx%d != %dx%d", sz.w, sz.h, sc.s1, sc.s2, got.W, got.H, want.W, want.H)
			}
			for i := range want.Pix {
				if got.Pix[i] != want.Pix[i] {
					t.Fatalf("%dx%d s=(%d,%d): block %d packed %d != byte %d", sz.w, sz.h, sc.s1, sc.s2, i, got.Pix[i], want.Pix[i])
				}
			}

			gotHX, gotHY, err := PackedHistograms(psrc, sc.s1, sc.s2)
			if err != nil {
				t.Fatal(err)
			}
			if !intsEqual(gotHX, wantHX) || !intsEqual(gotHY, wantHY) {
				t.Fatalf("%dx%d s=(%d,%d): histograms mismatch\nhx %v want %v\nhy %v want %v",
					sz.w, sz.h, sc.s1, sc.s2, gotHX, wantHX, gotHY, wantHY)
			}
		}
	}
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPackedCCADifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, sz := range testSizes {
		for _, density := range []float64{0.05, 0.3, 0.6, 0.95} {
			src := randomBitmap(rng, sz.w, sz.h, density)
			want := ConnectedComponents(src)
			got := PackedConnectedComponents(PackBitmap(nil, src))
			if !componentsEqual(got, want) {
				t.Fatalf("%dx%d d=%.2f: packed CCA %v != byte %v\nsrc:\n%s", sz.w, sz.h, density, got, want, src)
			}
		}
	}
}

// componentsEqual compares component lists as multisets (the sort comparator
// leaves truly identical (size, x, y) keys in arbitrary order).
func componentsEqual(a, b []Component) bool {
	if len(a) != len(b) {
		return false
	}
	counts := map[Component]int{}
	for _, c := range a {
		counts[c]++
	}
	for _, c := range b {
		counts[c]--
		if counts[c] < 0 {
			return false
		}
	}
	return true
}

func TestCountRangeTightBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, sz := range testSizes {
		src := randomBitmap(rng, sz.w, sz.h, 0.15)
		p := PackBitmap(nil, src)
		for trial := 0; trial < 50; trial++ {
			// Random rectangles, deliberately allowed to poke outside the
			// image so clamping is exercised.
			x0, y0 := rng.Intn(sz.w+4)-2, rng.Intn(sz.h+4)-2
			x1, y1 := x0+rng.Intn(sz.w+4), y0+rng.Intn(sz.h+4)
			wantN := 0
			wx0, wy0, wx1, wy1 := x1, y1, x0, y0
			for y := y0; y < y1; y++ {
				for x := x0; x < x1; x++ {
					if src.Get(x, y) != 0 {
						wantN++
						if x < wx0 {
							wx0 = x
						}
						if x >= wx1 {
							wx1 = x + 1
						}
						if y < wy0 {
							wy0 = y
						}
						if y >= wy1 {
							wy1 = y + 1
						}
					}
				}
			}
			if got := p.CountRange(x0, y0, x1, y1); got != wantN {
				t.Fatalf("%dx%d rect(%d,%d,%d,%d): CountRange %d != %d", sz.w, sz.h, x0, y0, x1, y1, got, wantN)
			}
			tx0, ty0, tx1, ty1, ok := p.TightBounds(x0, y0, x1, y1)
			if ok != (wantN > 0) {
				t.Fatalf("%dx%d rect(%d,%d,%d,%d): TightBounds ok=%v want %v", sz.w, sz.h, x0, y0, x1, y1, ok, wantN > 0)
			}
			if ok && (tx0 != wx0 || ty0 != wy0 || tx1 != wx1 || ty1 != wy1) {
				t.Fatalf("%dx%d rect(%d,%d,%d,%d): TightBounds (%d,%d,%d,%d) != (%d,%d,%d,%d)",
					sz.w, sz.h, x0, y0, x1, y1, tx0, ty0, tx1, ty1, wx0, wy0, wx1, wy1)
			}
		}
	}
}

func TestPackedResizeReuse(t *testing.T) {
	p := GetPacked(240, 180)
	p.Set(239, 179)
	PutPacked(p)
	q := GetPacked(100, 50)
	if q.CountOnes() != 0 {
		t.Fatal("pooled packed bitmap not cleared")
	}
	if q.W != 100 || q.H != 50 || q.Stride != 2 {
		t.Fatalf("unexpected shape %dx%d stride %d", q.W, q.H, q.Stride)
	}
	PutPacked(q)
}
