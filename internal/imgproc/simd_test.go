package imgproc

import (
	"fmt"
	"math/bits"
	"math/rand"
	"testing"
)

// The differential suite behind the dispatch layer: every input runs
// through the active (possibly SIMD) implementation and the forced-generic
// one, and the outputs must be bit-identical. On machines without SIMD
// support (or under -tags purego) both arms are generic and the suite
// degenerates to a self-check, which is the intended behaviour.

// simdRandomBitmap fills a w x h packed bitmap at the given density with a
// deterministic PRNG stream.
func simdRandomBitmap(rng *rand.Rand, w, h int, density float64) *PackedBitmap {
	p := NewPackedBitmap(w, h)
	switch {
	case density >= 1:
		for y := 0; y < h; y++ {
			row := p.Row(y)
			for k := range row {
				row[k] = ^uint64(0)
			}
		}
		p.clearTail()
	case density > 0:
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				if rng.Float64() < density {
					p.Set(x, y)
				}
			}
		}
	}
	return p
}

// simdRegionFor is regionFor (active_test.go): the exact dirty-word region.
func simdRegionFor(src *PackedBitmap) *ActiveRegion { return regionFor(src) }

func TestSIMDMedianDifferential(t *testing.T) {
	widths := []int{7, 64, 65, 120, 127, 128, 200, 240, 256, 320, 640, 1024}
	densities := []float64{0, 0.01, 0.1, 0.5, 1}
	rng := rand.New(rand.NewSource(7))
	for _, p := range []int{3, 5} {
		for _, w := range widths {
			for _, d := range densities {
				h := 48
				src := simdRandomBitmap(rng, w, h, d)
				ar := simdRegionFor(src)
				for _, tc := range []struct {
					name string
					ar   *ActiveRegion
				}{{"full", nil}, {"region", ar}} {
					dstA := NewPackedBitmap(w, h)
					dstB := NewPackedBitmap(w, h)
					garbageFill(dstA)
					garbageFill(dstB)
					if err := PackedMedianFilterRange(dstA, src, p, tc.ar); err != nil {
						t.Fatal(err)
					}
					restore := ForceGeneric()
					err := PackedMedianFilterRange(dstB, src, p, tc.ar)
					restore()
					if err != nil {
						t.Fatal(err)
					}
					if !dstA.Equal(dstB) {
						t.Fatalf("p=%d w=%d d=%g %s: SIMD median differs from generic",
							p, w, d, tc.name)
					}
				}
			}
		}
	}
}

func TestSIMDHistogramsDifferential(t *testing.T) {
	widths := []int{16, 64, 65, 200, 240, 640, 1024}
	scales := []struct{ s1, s2 int }{
		{1, 1}, {2, 2}, {4, 4}, {5, 3}, {7, 7}, {8, 8}, {13, 5},
		{14, 14}, {15, 15}, {16, 4}, {31, 2}, {63, 63}, {64, 64}, {100, 10},
	}
	rng := rand.New(rand.NewSource(11))
	for _, w := range widths {
		for _, sc := range scales {
			for _, d := range []float64{0, 0.05, 0.5, 1} {
				h := 40
				src := simdRandomBitmap(rng, w, h, d)
				ar := simdRegionFor(src)
				for _, reg := range []*ActiveRegion{nil, ar} {
					hxA, hyA, err := PackedHistogramsIntoRange(nil, nil, src, sc.s1, sc.s2, reg)
					if err != nil {
						t.Fatal(err)
					}
					restore := ForceGeneric()
					hxB, hyB, err := PackedHistogramsIntoRange(nil, nil, src, sc.s1, sc.s2, reg)
					restore()
					if err != nil {
						t.Fatal(err)
					}
					if !intsEqual(hxA, hxB) || !intsEqual(hyA, hyB) {
						t.Fatalf("w=%d s1=%d s2=%d d=%g region=%v: histograms differ",
							w, sc.s1, sc.s2, d, reg != nil)
					}

					dsA, err := PackedDownsampleIntoRange(nil, src, sc.s1, sc.s2, reg)
					if err != nil {
						t.Fatal(err)
					}
					restore = ForceGeneric()
					dsB, err := PackedDownsampleIntoRange(nil, src, sc.s1, sc.s2, reg)
					restore()
					if err != nil {
						t.Fatal(err)
					}
					if dsA.W != dsB.W || dsA.H != dsB.H {
						t.Fatalf("downsample size mismatch")
					}
					for i := range dsA.Pix {
						if dsA.Pix[i] != dsB.Pix[i] {
							t.Fatalf("w=%d s1=%d s2=%d d=%g region=%v: downsample differs at %d",
								w, sc.s1, sc.s2, d, reg != nil, i)
						}
					}
				}
			}
		}
	}
}

func TestSIMDPopcountDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, w := range []int{1, 63, 64, 65, 200, 640, 1024, 2048} {
		for _, d := range []float64{0, 0.3, 1} {
			src := simdRandomBitmap(rng, w, 20, d)
			restore := ForceGeneric()
			wantOnes := src.CountOnes()
			restore()
			if got := src.CountOnes(); got != wantOnes {
				t.Fatalf("w=%d d=%g: CountOnes %d != generic %d", w, d, got, wantOnes)
			}
			for trial := 0; trial < 8; trial++ {
				x0 := rng.Intn(w)
				x1 := x0 + 1 + rng.Intn(w-x0)
				y0 := rng.Intn(20)
				y1 := y0 + 1 + rng.Intn(20-y0)
				restore := ForceGeneric()
				want := src.CountRange(x0, y0, x1, y1)
				restore()
				if got := src.CountRange(x0, y0, x1, y1); got != want {
					t.Fatalf("w=%d d=%g CountRange(%d,%d,%d,%d) = %d, generic %d",
						w, d, x0, y0, x1, y1, got, want)
				}
			}
		}
	}
}

// TestSIMDMedianRunEdges drives the run kernels at every short length and
// alignment, where the overlapped final vector group and the scalar
// min-run fallback meet.
func TestSIMDMedianRunEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for w := 1; w <= 130; w++ {
		src := simdRandomBitmap(rng, w, 12, 0.4)
		for _, p := range []int{3, 5} {
			dstA := NewPackedBitmap(w, 12)
			dstB := NewPackedBitmap(w, 12)
			if err := PackedMedianFilterRange(dstA, src, p, nil); err != nil {
				t.Fatal(err)
			}
			restore := ForceGeneric()
			err := PackedMedianFilterRange(dstB, src, p, nil)
			restore()
			if err != nil {
				t.Fatal(err)
			}
			if !dstA.Equal(dstB) {
				t.Fatalf("p=%d w=%d: run-edge mismatch", p, w)
			}
		}
	}
}

func TestKernelInfo(t *testing.T) {
	k := KernelInfo()
	if k.CPU == "" || k.Median == "" || k.Popcount == "" || k.BlockPop == "" {
		t.Fatalf("KernelInfo has empty fields: %+v", k)
	}
	t.Logf("active kernels: %s", k)

	restore := ForceGeneric()
	g := KernelInfo()
	if g.Median != "generic" || g.Popcount != "generic" || g.BlockPop != "generic" {
		t.Fatalf("ForceGeneric not reflected in KernelInfo: %+v", g)
	}
	restore()
	if got := KernelInfo(); got.Median != k.Median || got.Popcount != k.Popcount {
		t.Fatalf("restore did not reinstate kernels: %+v != %+v", got, k)
	}
	if s := k.String(); s == "" {
		t.Fatal("Kernels.String empty")
	}
}

// TestBlockPopGenericOracle pins the dispatched block popcount against a
// naive per-bit count, independent of fetchBits.
func TestBlockPopGenericOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 200; trial++ {
		stride := 1 + rng.Intn(8)
		row := make([]uint64, stride)
		for i := range row {
			row[i] = rng.Uint64()
		}
		s1 := 1 + rng.Intn(blockPopMaxS1)
		maxBlocks := stride * 64 / s1
		if maxBlocks == 0 {
			continue
		}
		n := 1 + rng.Intn(maxBlocks)
		off := rng.Intn(stride*64 - n*s1 + 1)
		want := make([]int, n)
		for i := 0; i < n; i++ {
			for b := 0; b < s1; b++ {
				bit := off + i*s1 + b
				if row[bit>>6]>>(uint(bit)&63)&1 == 1 {
					want[i]++
				}
			}
		}
		wantTotal := 0
		for _, c := range want {
			wantTotal += c
		}
		check := func(name string, fn func(row []uint64, off, s1 int, acc []int) int) {
			acc := make([]int, n)
			for i := range acc {
				acc[i] = 1000 * i // pre-filled: fn must add, not overwrite
			}
			total := fn(row, off, s1, acc)
			if total != wantTotal {
				t.Fatalf("%s trial %d: total %d want %d", name, trial, total, wantTotal)
			}
			for i := range acc {
				if acc[i] != 1000*i+want[i] {
					t.Fatalf("%s trial %d: acc[%d] = %d want %d",
						name, trial, i, acc[i], 1000*i+want[i])
				}
			}
		}
		check("generic", blockPopGeneric)
		if bp := kernels().blockPop; bp != nil {
			check(kernels().blockPopName, bp)
		}
	}
}

// TestPopcntWordsImpls runs every available popcount implementation over
// assorted lengths (crossing the vector-group and tail boundaries).
func TestPopcntWordsImpls(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, n := range []int{0, 1, 7, 8, 9, 15, 16, 17, 31, 32, 100, 255, 256} {
		v := make([]uint64, n)
		for i := range v {
			v[i] = rng.Uint64()
		}
		want := 0
		for _, w := range v {
			want += bits.OnesCount64(w)
		}
		for _, im := range available {
			if got := im.popcntWords(v); got != want {
				t.Fatalf("%s popcntWords(len %d) = %d, want %d", im.name, n, got, want)
			}
		}
	}
}

// TestAvailableImpls sanity-checks the dispatch table itself.
func TestAvailableImpls(t *testing.T) {
	if len(available) == 0 {
		t.Fatal("no kernel implementations available")
	}
	last := available[len(available)-1]
	if last != &genericImpl {
		t.Fatalf("generic must be the final fallback, got %q", last.name)
	}
	seen := map[string]bool{}
	for _, im := range available {
		if im.name == "" || seen[im.name] {
			t.Fatalf("bad or duplicate impl name %q", im.name)
		}
		seen[im.name] = true
		if im.popcntWords == nil {
			t.Fatalf("impl %q missing popcount kernel", im.name)
		}
		// median3/median5/blockPop may be nil (generic: the region loops
		// then use the scalar kernels directly), but an arch impl that
		// provides one must provide both medians.
		if (im.median3 == nil) != (im.median5 == nil) {
			t.Fatalf("impl %q provides only one median kernel", im.name)
		}
	}
	t.Logf("available: %v", func() []string {
		var names []string
		for _, im := range available {
			names = append(names, fmt.Sprintf("%s", im.name))
		}
		return names
	}())
}
