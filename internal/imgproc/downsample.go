package imgproc

import "fmt"

// CountImage is a small-integer image holding per-block event-pixel counts,
// the scaled image I_{s1,s2} of Eq. 3. Values are at most s1*s2, so the
// paper budgets ceil(log2(s1*s2)) bits per entry (Eq. 5); we store uint16
// which covers every practical block size.
type CountImage struct {
	W, H int
	Pix  []uint16
}

// NewCountImage returns a cleared count image.
func NewCountImage(w, h int) *CountImage {
	return &CountImage{W: w, H: h, Pix: make([]uint16, w*h)}
}

// Get returns the count at (x, y); out-of-range reads return 0.
func (c *CountImage) Get(x, y int) uint16 {
	if x < 0 || x >= c.W || y < 0 || y >= c.H {
		return 0
	}
	return c.Pix[y*c.W+x]
}

// Sum returns the total of all block counts.
func (c *CountImage) Sum() int {
	s := 0
	for _, v := range c.Pix {
		s += int(v)
	}
	return s
}

// Downsample computes the block-sum scaled image of Eq. 3:
//
//	I_{s1,s2}(i, j) = sum over the s1 x s2 block of I
//
// with i < floor(A/s1), j < floor(B/s2). Pixels in the partial blocks at the
// right/top edges (when A or B is not a multiple of the scale) are discarded
// exactly as the floor in the paper's index bounds implies.
func Downsample(src *Bitmap, s1, s2 int) (*CountImage, error) {
	return DownsampleInto(nil, src, s1, s2)
}

// DownsampleInto is Downsample writing into a caller-owned scratch image,
// so a per-window pipeline allocates nothing steady-state. dst is resized
// (reusing its backing array when large enough) and returned; pass nil to
// allocate.
func DownsampleInto(dst *CountImage, src *Bitmap, s1, s2 int) (*CountImage, error) {
	if s1 <= 0 || s2 <= 0 {
		return nil, fmt.Errorf("imgproc: scale factors must be positive, got s1=%d s2=%d", s1, s2)
	}
	w := src.W / s1
	h := src.H / s2
	out := dst
	if out == nil {
		out = NewCountImage(w, h)
	} else {
		out.W, out.H = w, h
		if cap(out.Pix) < w*h {
			out.Pix = make([]uint16, w*h)
		} else {
			out.Pix = out.Pix[:w*h]
		}
	}
	for j := 0; j < h; j++ {
		outRow := out.Pix[j*w : (j+1)*w]
		rowBase := j * s2 * src.W
		for i := range outRow {
			// The block sum accumulates in a register and stores once; the
			// per-block sub-slices carry the bounds check out of the inner
			// pixel loop.
			var sum uint16
			off := rowBase + i*s1
			for n := 0; n < s2; n++ {
				for _, px := range src.Pix[off : off+s1] {
					if px != 0 {
						sum++
					}
				}
				off += src.W
			}
			outRow[i] = sum
		}
	}
	return out, nil
}

// Histograms computes the X and Y projections of Eq. 4 from a scaled image:
//
//	HX(i) = sum_j I_{s1,s2}(i, j)    HY(j) = sum_i I_{s1,s2}(i, j)
//
// HX has one entry per downsampled column, HY one per downsampled row.
func Histograms(img *CountImage) (hx, hy []int) {
	return HistogramsInto(nil, nil, img)
}

// HistogramsInto is Histograms writing into caller-owned scratch slices,
// which are resized (reusing backing arrays when large enough) and returned.
func HistogramsInto(hxBuf, hyBuf []int, img *CountImage) (hx, hy []int) {
	hx = resizeInts(hxBuf, img.W)
	hy = resizeInts(hyBuf, img.H)
	for j := 0; j < img.H; j++ {
		row := j * img.W
		for i := 0; i < img.W; i++ {
			v := int(img.Pix[row+i])
			hx[i] += v
			hy[j] += v
		}
	}
	return hx, hy
}

// resizeInts returns a zeroed slice of length n, reusing buf's backing array
// when it is large enough.
func resizeInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}

// Run is a maximal contiguous interval [Start, End) of histogram bins whose
// values exceed a threshold — the 1-D "region" of Section II-B.
type Run struct {
	Start, End int
}

// Len returns the number of bins in the run.
func (r Run) Len() int { return r.End - r.Start }

// FindRuns scans a histogram and returns the maximal runs of consecutive
// entries strictly greater than thresh. The paper uses thresh = 1 on the
// downsampled histograms, accepting coarse regions that the tracker then
// smooths.
func FindRuns(h []int, thresh int) []Run {
	var runs []Run
	start := -1
	for i, v := range h {
		if v > thresh {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			runs = append(runs, Run{Start: start, End: i})
			start = -1
		}
	}
	if start >= 0 {
		runs = append(runs, Run{Start: start, End: len(h)})
	}
	return runs
}

// MergeRuns coalesces runs separated by a gap of at most maxGap bins. This
// counters object fragmentation: a vehicle with a low-texture flank can
// split into two histogram peaks with a small valley between them (Fig. 3),
// which merge back into a single proposal at the histogram level.
func MergeRuns(runs []Run, maxGap int) []Run {
	if len(runs) == 0 {
		return nil
	}
	out := make([]Run, 0, len(runs))
	cur := runs[0]
	for _, r := range runs[1:] {
		if r.Start-cur.End <= maxGap {
			cur.End = r.End
			continue
		}
		out = append(out, cur)
		cur = r
	}
	out = append(out, cur)
	return out
}
