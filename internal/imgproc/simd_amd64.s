//go:build amd64 && !purego

#include "textflag.h"

// SIMD packed kernels. Each routine mirrors a pure-Go kernel in
// packedkernels.go / packed.go bit for bit; the Go versions stay compiled
// as the dispatch fallback and as the differential oracle for these.
//
// Shared conventions:
//   - 4-word (256-bit) lanes; the final loop iteration restarts at n-4 and
//     overlaps the previous one, which is safe because every store is a
//     pure function of the loaded inputs (idempotent).
//   - The median kernels stage vertical-count bit-planes through scratch
//     rows padded with one zero word per side, so the horizontal ±1/±2
//     column shifts can always read word k-1 and k+1 unconditionally.
//   - Popcount is VPSHUFB nibble lookup + VPSADBW on AVX2, VPOPCNTQ on
//     AVX-512 (VPOPCNTDQ+VL, 256-bit encodings).

// Byte popcount table for VPSHUFB: popLUT[i] = bits.OnesCount(i), i < 16,
// repeated per 128-bit lane.
DATA popLUT<>+0(SB)/8, $0x0302020102010100
DATA popLUT<>+8(SB)/8, $0x0403030203020201
DATA popLUT<>+16(SB)/8, $0x0302020102010100
DATA popLUT<>+24(SB)/8, $0x0403030203020201
GLOBL popLUT<>(SB), RODATA|NOPTR, $32

DATA nibMask<>+0(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibMask<>+8(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibMask<>+16(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibMask<>+24(SB)/8, $0x0f0f0f0f0f0f0f0f
GLOBL nibMask<>(SB), RODATA|NOPTR, $32

// Qword lane indices 0..3, the multiplier that turns a broadcast s1 into
// the per-lane shift counts [0, s1, 2*s1, 3*s1].
DATA idx0123<>+0(SB)/8, $0
DATA idx0123<>+8(SB)/8, $1
DATA idx0123<>+16(SB)/8, $2
DATA idx0123<>+24(SB)/8, $3
GLOBL idx0123<>(SB), RODATA|NOPTR, $32

// func median3AsmAVX2(out, v0, v1, ra, rb, rc *uint64, n int)
//
// Pass 1 computes the vertical 3-row carry-save planes (low plane a^b^c,
// high plane majority) into v0/v1 elements [1, n], zeroing pads 0 and n+1.
// Pass 2 aligns the neighbour columns with ±1-bit shifts (borrowing the
// carry bit from the unaligned-loaded adjacent word) and evaluates the
// exact boolean network of median3Run: patch count > 4.
TEXT ·median3AsmAVX2(SB), NOSPLIT, $0-56
	MOVQ out+0(FP), DI
	MOVQ v0+8(FP), R8
	MOVQ v1+16(FP), R9
	MOVQ ra+24(FP), SI
	MOVQ rb+32(FP), BX
	MOVQ rc+40(FP), DX
	MOVQ n+48(FP), CX

	// Pass 1: vertical planes.
	XORQ AX, AX
	MOVQ CX, R10
	SUBQ $4, R10

m3vert:
	VMOVDQU (SI)(AX*8), Y0  // a
	VMOVDQU (BX)(AX*8), Y1  // b
	VMOVDQU (DX)(AX*8), Y2  // c
	VPXOR   Y1, Y0, Y3      // ab = a^b
	VPAND   Y1, Y0, Y4      // a&b
	VPXOR   Y2, Y3, Y5      // v0 = ab^c
	VPAND   Y2, Y3, Y6      // ab&c
	VPOR    Y6, Y4, Y6      // v1 = a&b | ab&c
	VMOVDQU Y5, 8(R8)(AX*8)
	VMOVDQU Y6, 8(R9)(AX*8)
	CMPQ    AX, R10
	JGE     m3vertdone
	ADDQ    $4, AX
	CMPQ    AX, R10
	JLE     m3vert
	MOVQ    R10, AX
	JMP     m3vert

m3vertdone:
	XORQ R11, R11
	MOVQ R11, (R8)
	MOVQ R11, (R9)
	MOVQ R11, 8(R8)(CX*8)
	MOVQ R11, 8(R9)(CX*8)

	// Pass 2: horizontal majority network, 4 output words per iteration.
	XORQ AX, AX

m3horiz:
	VMOVDQU (R8)(AX*8), Y0   // P0 (word k-1, low plane)
	VMOVDQU 8(R8)(AX*8), Y1  // c0 (word k)
	VMOVDQU 16(R8)(AX*8), Y2 // N0 (word k+1)
	VPSLLQ  $1, Y1, Y3
	VPSRLQ  $63, Y0, Y4
	VPOR    Y4, Y3, Y3       // l0 = c0<<1 | P0>>63
	VPSRLQ  $1, Y1, Y4
	VPSLLQ  $63, Y2, Y5
	VPOR    Y5, Y4, Y4       // r0 = c0>>1 | N0<<63
	VMOVDQU (R9)(AX*8), Y0   // P1 (high plane)
	VMOVDQU 8(R9)(AX*8), Y5  // c1
	VMOVDQU 16(R9)(AX*8), Y2 // N1
	VPSLLQ  $1, Y5, Y6
	VPSRLQ  $63, Y0, Y7
	VPOR    Y7, Y6, Y6       // l1
	VPSRLQ  $1, Y5, Y7
	VPSLLQ  $63, Y2, Y8
	VPOR    Y8, Y7, Y7       // r1

	// t = left + centre + right, then median = t3 | t2&(t1|t0).
	VPXOR   Y1, Y3, Y0   // x0 = l0^c0
	VPAND   Y1, Y3, Y2   // g0 = l0&c0
	VPXOR   Y5, Y6, Y8   // xa = l1^c1
	VPXOR   Y2, Y8, Y9   // x1 = xa^g0
	VPAND   Y5, Y6, Y10  // l1&c1
	VPAND   Y8, Y2, Y11  // g0&xa
	VPOR    Y11, Y10, Y10 // x2
	VPXOR   Y4, Y0, Y11  // t0 = x0^r0
	VPAND   Y4, Y0, Y12  // h0 = x0&r0
	VPXOR   Y7, Y9, Y13  // tb = x1^r1
	VPXOR   Y12, Y13, Y14 // t1 = tb^h0
	VPAND   Y7, Y9, Y15  // x1&r1
	VPAND   Y13, Y12, Y1 // h0&tb
	VPOR    Y1, Y15, Y15 // h1
	VPXOR   Y15, Y10, Y2 // t2 = x2^h1
	VPAND   Y15, Y10, Y3 // t3 = x2&h1
	VPOR    Y11, Y14, Y0 // t1|t0
	VPAND   Y0, Y2, Y0
	VPOR    Y0, Y3, Y0
	VMOVDQU Y0, (DI)(AX*8)
	CMPQ    AX, R10
	JGE     m3done
	ADDQ    $4, AX
	CMPQ    AX, R10
	JLE     m3horiz
	MOVQ    R10, AX
	JMP     m3horiz

m3done:
	VZEROUPPER
	RET

// func median5AsmAVX2(out, v0, v1, v2, r0, r1, r2, r3, r4 *uint64, n int)
//
// Pass 1 computes the three vertical 5-row carry-save planes into
// v0/v1/v2 elements [1, n] (pads 0 and n+1 zeroed — the ±2 column shifts
// still borrow from at most the adjacent word). Pass 2 is the fully
// unrolled Wallace tree of median5Run, staged plane-by-plane so the live
// set fits the 16 vector registers: patch count > 12.
TEXT ·median5AsmAVX2(SB), NOSPLIT, $0-80
	MOVQ out+0(FP), DI
	MOVQ v0+8(FP), R8
	MOVQ v1+16(FP), R9
	MOVQ v2+24(FP), R14
	MOVQ r0+32(FP), SI
	MOVQ r1+40(FP), BX
	MOVQ r2+48(FP), DX
	MOVQ r3+56(FP), R11
	MOVQ r4+64(FP), R12
	MOVQ n+72(FP), CX

	// Pass 1: vertical planes (counts 0..5 in three bit planes).
	XORQ AX, AX
	MOVQ CX, R10
	SUBQ $4, R10

m5vert:
	VMOVDQU (SI)(AX*8), Y0   // a
	VMOVDQU (BX)(AX*8), Y1   // b
	VMOVDQU (DX)(AX*8), Y2   // c
	VMOVDQU (R11)(AX*8), Y3  // d
	VMOVDQU (R12)(AX*8), Y4  // e
	VPXOR   Y1, Y0, Y5       // ab
	VPAND   Y1, Y0, Y6       // a&b
	VPXOR   Y2, Y5, Y7       // s0 = ab^c
	VPAND   Y2, Y5, Y8       // ab&c
	VPOR    Y8, Y6, Y6       // c0
	VPXOR   Y3, Y7, Y8       // sd = s0^d
	VPAND   Y3, Y7, Y9       // s0&d
	VPXOR   Y4, Y8, Y10      // v0 = sd^e
	VPAND   Y4, Y8, Y11      // sd&e
	VPOR    Y11, Y9, Y9      // c1
	VPXOR   Y9, Y6, Y12      // v1 = c0^c1
	VPAND   Y9, Y6, Y13      // v2 = c0&c1
	VMOVDQU Y10, 8(R8)(AX*8)
	VMOVDQU Y12, 8(R9)(AX*8)
	VMOVDQU Y13, 8(R14)(AX*8)
	CMPQ    AX, R10
	JGE     m5vertdone
	ADDQ    $4, AX
	CMPQ    AX, R10
	JLE     m5vert
	MOVQ    R10, AX
	JMP     m5vert

m5vertdone:
	XORQ R13, R13
	MOVQ R13, (R8)
	MOVQ R13, (R9)
	MOVQ R13, (R14)
	MOVQ R13, 8(R8)(CX*8)
	MOVQ R13, 8(R9)(CX*8)
	MOVQ R13, 8(R14)(CX*8)

	// Pass 2: five shifted copies per plane, Wallace tree by weight.
	XORQ AX, AX

m5horiz:
	// Plane 0 (weight 1): shifted copies a,b,m,d,e then reduce with two
	// full adders. Carried out: t0 (Y9), cA (Y6), cB (Y8).
	VMOVDQU (R8)(AX*8), Y0   // P
	VMOVDQU 8(R8)(AX*8), Y2  // m
	VMOVDQU 16(R8)(AX*8), Y3 // N
	VPSLLQ  $2, Y2, Y5
	VPSRLQ  $62, Y0, Y1
	VPOR    Y1, Y5, Y1       // a = m<<2 | P>>62
	VPSLLQ  $1, Y2, Y5
	VPSRLQ  $63, Y0, Y0
	VPOR    Y0, Y5, Y0       // b = m<<1 | P>>63
	VPSRLQ  $1, Y2, Y5
	VPSLLQ  $63, Y3, Y4
	VPOR    Y4, Y5, Y4       // d = m>>1 | N<<63
	VPSRLQ  $2, Y2, Y5
	VPSLLQ  $62, Y3, Y3
	VPOR    Y3, Y5, Y3       // e = m>>2 | N<<62
	VPXOR   Y0, Y1, Y5       // x = a^b
	VPAND   Y0, Y1, Y6       // a&b
	VPXOR   Y2, Y5, Y7       // sA = x^m
	VPAND   Y2, Y5, Y8       // x&m
	VPOR    Y8, Y6, Y6       // cA
	VPXOR   Y4, Y7, Y5       // x = sA^d
	VPAND   Y4, Y7, Y8       // sA&d
	VPXOR   Y3, Y5, Y9       // t0 = x^e
	VPAND   Y3, Y5, Y10      // x&e
	VPOR    Y10, Y8, Y8      // cB

	// Plane 1 (weight 2). Carried out: t0, t1 (Y14), cC (Y7), cD (Y11),
	// cE (Y13).
	VMOVDQU (R9)(AX*8), Y0
	VMOVDQU 8(R9)(AX*8), Y2
	VMOVDQU 16(R9)(AX*8), Y3
	VPSLLQ  $2, Y2, Y5
	VPSRLQ  $62, Y0, Y1
	VPOR    Y1, Y5, Y1       // a1
	VPSLLQ  $1, Y2, Y5
	VPSRLQ  $63, Y0, Y0
	VPOR    Y0, Y5, Y0       // b1
	VPSRLQ  $1, Y2, Y5
	VPSLLQ  $63, Y3, Y4
	VPOR    Y4, Y5, Y4       // d1
	VPSRLQ  $2, Y2, Y5
	VPSLLQ  $62, Y3, Y3
	VPOR    Y3, Y5, Y3       // e1
	VPXOR   Y0, Y1, Y5       // x = a1^b1
	VPAND   Y0, Y1, Y7       // a1&b1
	VPXOR   Y2, Y5, Y10      // sC = x^m1
	VPAND   Y2, Y5, Y11      // x&m1
	VPOR    Y11, Y7, Y7      // cC
	VPXOR   Y3, Y4, Y5       // x = d1^e1
	VPAND   Y3, Y4, Y11      // d1&e1
	VPXOR   Y6, Y5, Y12      // sD = x^cA
	VPAND   Y6, Y5, Y13      // x&cA
	VPOR    Y13, Y11, Y11    // cD
	VPXOR   Y10, Y12, Y5     // x = sC^sD
	VPAND   Y10, Y12, Y13    // sC&sD
	VPXOR   Y8, Y5, Y14      // t1 = x^cB
	VPAND   Y8, Y5, Y15      // x&cB
	VPOR    Y15, Y13, Y13    // cE

	// Plane 2 (weight 4). Carried out: t0, t1, t2 (Y0), cF (Y6),
	// cG (Y10), cH (Y15), cI (Y1).
	VMOVDQU (R14)(AX*8), Y0
	VMOVDQU 8(R14)(AX*8), Y2
	VMOVDQU 16(R14)(AX*8), Y3
	VPSLLQ  $2, Y2, Y5
	VPSRLQ  $62, Y0, Y1
	VPOR    Y1, Y5, Y1       // a2
	VPSLLQ  $1, Y2, Y5
	VPSRLQ  $63, Y0, Y0
	VPOR    Y0, Y5, Y0       // b2
	VPSRLQ  $1, Y2, Y5
	VPSLLQ  $63, Y3, Y4
	VPOR    Y4, Y5, Y4       // d2
	VPSRLQ  $2, Y2, Y5
	VPSLLQ  $62, Y3, Y3
	VPOR    Y3, Y5, Y3       // e2
	VPXOR   Y0, Y1, Y5       // x = a2^b2
	VPAND   Y0, Y1, Y6       // a2&b2
	VPXOR   Y2, Y5, Y8       // sF = x^m2
	VPAND   Y2, Y5, Y10      // x&m2
	VPOR    Y10, Y6, Y6      // cF
	VPXOR   Y3, Y4, Y5       // x = d2^e2
	VPAND   Y3, Y4, Y10      // d2&e2
	VPXOR   Y7, Y5, Y12      // sG = x^cC
	VPAND   Y7, Y5, Y15      // x&cC
	VPOR    Y15, Y10, Y10    // cG
	VPXOR   Y8, Y12, Y5      // x = sF^sG
	VPAND   Y8, Y12, Y15     // sF&sG
	VPXOR   Y11, Y5, Y7      // sH = x^cD
	VPAND   Y11, Y5, Y12     // x&cD
	VPOR    Y12, Y15, Y15    // cH
	VPXOR   Y13, Y7, Y0      // t2 = sH^cE
	VPAND   Y13, Y7, Y1      // cI = sH&cE

	// Weight 8 and the threshold: total <= 25 so at most one bit lands
	// at weight 16; out = t4 | t3&t2&(t1|t0).
	VPXOR   Y6, Y10, Y5      // x = cF^cG
	VPAND   Y6, Y10, Y2      // cF&cG
	VPXOR   Y15, Y5, Y3      // sJ = x^cH
	VPAND   Y15, Y5, Y4      // x&cH
	VPOR    Y4, Y2, Y2       // cJ
	VPXOR   Y1, Y3, Y4       // t3 = sJ^cI
	VPAND   Y1, Y3, Y5       // cK = sJ&cI
	VPOR    Y5, Y2, Y2       // t4 = cJ|cK
	VPOR    Y9, Y14, Y5      // t1|t0
	VPAND   Y0, Y5, Y5       // &t2
	VPAND   Y4, Y5, Y5       // &t3
	VPOR    Y2, Y5, Y5       // |t4
	VMOVDQU Y5, (DI)(AX*8)
	CMPQ    AX, R10
	JGE     m5done
	ADDQ    $4, AX
	CMPQ    AX, R10
	JLE     m5horiz
	MOVQ    R10, AX
	JMP     m5horiz

m5done:
	VZEROUPPER
	RET

// func popcntWordsAsmAVX2(p *uint64, n int) int
TEXT ·popcntWordsAsmAVX2(SB), NOSPLIT, $0-24
	MOVQ p+0(FP), SI
	MOVQ n+8(FP), CX
	VMOVDQU popLUT<>(SB), Y15
	VMOVDQU nibMask<>(SB), Y14
	VPXOR   Y13, Y13, Y13
	VPXOR   Y12, Y12, Y12 // qword totals
	XORQ    AX, AX
	MOVQ    CX, DX
	ANDQ    $-8, DX
	TESTQ   DX, DX
	JZ      pw2tail

pw2loop:
	VMOVDQU (SI)(AX*8), Y0
	VMOVDQU 32(SI)(AX*8), Y1
	VPAND   Y14, Y0, Y2
	VPSRLQ  $4, Y0, Y0
	VPAND   Y14, Y0, Y0
	VPSHUFB Y2, Y15, Y2
	VPSHUFB Y0, Y15, Y0
	VPADDB  Y0, Y2, Y2  // byte counts of words 0-3 (<= 8 each)
	VPAND   Y14, Y1, Y3
	VPSRLQ  $4, Y1, Y1
	VPAND   Y14, Y1, Y1
	VPSHUFB Y3, Y15, Y3
	VPSHUFB Y1, Y15, Y1
	VPADDB  Y1, Y3, Y3  // byte counts of words 4-7
	VPADDB  Y3, Y2, Y2  // <= 16 per byte, no overflow
	VPSADBW Y13, Y2, Y2
	VPADDQ  Y2, Y12, Y12
	ADDQ    $8, AX
	CMPQ    AX, DX
	JL      pw2loop

pw2tail:
	XORQ R8, R8
	CMPQ AX, CX
	JGE  pw2sum

pw2tailloop:
	MOVQ    (SI)(AX*8), R9
	POPCNTQ R9, R9
	ADDQ    R9, R8
	INCQ    AX
	CMPQ    AX, CX
	JL      pw2tailloop

pw2sum:
	VEXTRACTI128 $1, Y12, X0
	VPADDQ       X0, X12, X0
	VPSRLDQ      $8, X0, X1
	VPADDQ       X1, X0, X0
	VMOVQ        X0, AX
	ADDQ         R8, AX
	MOVQ         AX, ret+16(FP)
	VZEROUPPER
	RET

// func popcntWordsAsmAVX512(p *uint64, n int) int
TEXT ·popcntWordsAsmAVX512(SB), NOSPLIT, $0-24
	MOVQ  p+0(FP), SI
	MOVQ  n+8(FP), CX
	VPXOR Y12, Y12, Y12
	VPXOR Y11, Y11, Y11
	XORQ  AX, AX
	MOVQ  CX, DX
	ANDQ  $-8, DX
	TESTQ DX, DX
	JZ    pw5tail

pw5loop:
	VMOVDQU  (SI)(AX*8), Y0
	VMOVDQU  32(SI)(AX*8), Y1
	VPOPCNTQ Y0, Y0
	VPOPCNTQ Y1, Y1
	VPADDQ   Y0, Y12, Y12
	VPADDQ   Y1, Y11, Y11
	ADDQ     $8, AX
	CMPQ     AX, DX
	JL       pw5loop

pw5tail:
	VPADDQ Y11, Y12, Y12
	XORQ   R8, R8
	CMPQ   AX, CX
	JGE    pw5sum

pw5tailloop:
	MOVQ    (SI)(AX*8), R9
	POPCNTQ R9, R9
	ADDQ    R9, R8
	INCQ    AX
	CMPQ    AX, CX
	JL      pw5tailloop

pw5sum:
	VEXTRACTI128 $1, Y12, X0
	VPADDQ       X0, X12, X0
	VPSRLDQ      $8, X0, X1
	VPADDQ       X1, X0, X0
	VMOVQ        X0, AX
	ADDQ         R8, AX
	MOVQ         AX, ret+16(FP)
	VZEROUPPER
	RET

// func blockPopAsmAVX2(row *uint64, rowLen, off, s1 int, acc *int, n int) int
//
// Four s1-wide blocks per iteration: one 64-bit fetch at the (byte-
// clamped) bit offset covers all four because 7 + 4*s1 <= 63 for
// s1 <= blockPopMaxS1; VPSRLVQ spreads the blocks across qword lanes.
// The clamp keeps the 8-byte load inside the row: near the row end the
// load drops back to rowBytes-8 and the shift grows by the same amount
// (still < 64 because the caller guarantees every block is in bounds).
TEXT ·blockPopAsmAVX2(SB), NOSPLIT, $0-56
	MOVQ    row+0(FP), SI
	MOVQ    rowLen+8(FP), R9
	SHLQ    $3, R9
	SUBQ    $8, R9           // rowBytes-8
	MOVQ    off+16(FP), R8   // b: bit offset of the next block
	MOVQ    s1+24(FP), R10
	MOVQ    acc+32(FP), DI
	VMOVDQU popLUT<>(SB), Y15
	VMOVDQU nibMask<>(SB), Y14
	VPXOR   Y13, Y13, Y13
	VPXOR   Y10, Y10, Y10    // vector total
	MOVQ    R10, CX
	MOVQ    $1, R12
	SHLQ    CX, R12
	DECQ    R12              // block mask (1<<s1)-1
	VMOVQ   R12, X0
	VPBROADCASTQ X0, Y12
	VMOVQ   R10, X0
	VPBROADCASTQ X0, Y11
	VPMULUDQ idx0123<>(SB), Y11, Y11 // lane shifts [0, s1, 2s1, 3s1]
	LEAQ    (R10)(R10*2), R13
	ADDQ    R10, R13         // 4*s1
	MOVQ    n+40(FP), DX
	ANDQ    $-4, DX
	XORQ    BX, BX           // block index
	XORQ    R15, R15         // scalar total
	TESTQ   DX, DX
	JZ      bp2tail

bp2loop:
	MOVQ R8, AX
	SHRQ $3, AX
	CMPQ AX, R9
	JLE  bp2ok
	MOVQ R9, AX

bp2ok:
	MOVQ    (SI)(AX*1), R11
	SHLQ    $3, AX
	MOVQ    R8, CX
	SUBQ    AX, CX
	SHRQ    CX, R11          // 64 row bits from bit offset b
	VMOVQ   R11, X0
	VPBROADCASTQ X0, Y0
	VPSRLVQ Y11, Y0, Y0
	VPAND   Y12, Y0, Y0      // four blocks, one per qword lane
	VPAND   Y14, Y0, Y1
	VPSRLQ  $4, Y0, Y2
	VPAND   Y14, Y2, Y2
	VPSHUFB Y1, Y15, Y1
	VPSHUFB Y2, Y15, Y2
	VPADDB  Y2, Y1, Y1
	VPSADBW Y13, Y1, Y1      // per-lane popcounts
	VMOVDQU (DI)(BX*8), Y2
	VPADDQ  Y1, Y2, Y2
	VMOVDQU Y2, (DI)(BX*8)
	VPADDQ  Y1, Y10, Y10
	ADDQ    R13, R8
	ADDQ    $4, BX
	CMPQ    BX, DX
	JL      bp2loop

bp2tail:
	MOVQ n+40(FP), DX
	CMPQ BX, DX
	JGE  bp2sum

bp2tailloop:
	MOVQ R8, AX
	SHRQ $3, AX
	CMPQ AX, R9
	JLE  bp2tok
	MOVQ R9, AX

bp2tok:
	MOVQ    (SI)(AX*1), R11
	SHLQ    $3, AX
	MOVQ    R8, CX
	SUBQ    AX, CX
	SHRQ    CX, R11
	ANDQ    R12, R11
	POPCNTQ R11, R11
	ADDQ    R11, (DI)(BX*8)
	ADDQ    R11, R15
	ADDQ    R10, R8
	INCQ    BX
	CMPQ    BX, DX
	JL      bp2tailloop

bp2sum:
	VEXTRACTI128 $1, Y10, X0
	VPADDQ       X0, X10, X0
	VPSRLDQ      $8, X0, X1
	VPADDQ       X1, X0, X0
	VMOVQ        X0, AX
	ADDQ         R15, AX
	MOVQ         AX, ret+48(FP)
	VZEROUPPER
	RET

// func blockPopAsmAVX512(row *uint64, rowLen, off, s1 int, acc *int, n int) int
//
// blockPopAsmAVX2 with the nibble-LUT popcount replaced by VPOPCNTQ.
TEXT ·blockPopAsmAVX512(SB), NOSPLIT, $0-56
	MOVQ    row+0(FP), SI
	MOVQ    rowLen+8(FP), R9
	SHLQ    $3, R9
	SUBQ    $8, R9
	MOVQ    off+16(FP), R8
	MOVQ    s1+24(FP), R10
	MOVQ    acc+32(FP), DI
	VPXOR   Y10, Y10, Y10
	MOVQ    R10, CX
	MOVQ    $1, R12
	SHLQ    CX, R12
	DECQ    R12
	VMOVQ   R12, X0
	VPBROADCASTQ X0, Y12
	VMOVQ   R10, X0
	VPBROADCASTQ X0, Y11
	VPMULUDQ idx0123<>(SB), Y11, Y11
	LEAQ    (R10)(R10*2), R13
	ADDQ    R10, R13
	MOVQ    n+40(FP), DX
	ANDQ    $-4, DX
	XORQ    BX, BX
	XORQ    R15, R15
	TESTQ   DX, DX
	JZ      bp5tail

bp5loop:
	MOVQ R8, AX
	SHRQ $3, AX
	CMPQ AX, R9
	JLE  bp5ok
	MOVQ R9, AX

bp5ok:
	MOVQ     (SI)(AX*1), R11
	SHLQ     $3, AX
	MOVQ     R8, CX
	SUBQ     AX, CX
	SHRQ     CX, R11
	VMOVQ    R11, X0
	VPBROADCASTQ X0, Y0
	VPSRLVQ  Y11, Y0, Y0
	VPAND    Y12, Y0, Y0
	VPOPCNTQ Y0, Y1
	VMOVDQU  (DI)(BX*8), Y2
	VPADDQ   Y1, Y2, Y2
	VMOVDQU  Y2, (DI)(BX*8)
	VPADDQ   Y1, Y10, Y10
	ADDQ     R13, R8
	ADDQ     $4, BX
	CMPQ     BX, DX
	JL       bp5loop

bp5tail:
	MOVQ n+40(FP), DX
	CMPQ BX, DX
	JGE  bp5sum

bp5tailloop:
	MOVQ R8, AX
	SHRQ $3, AX
	CMPQ AX, R9
	JLE  bp5tok
	MOVQ R9, AX

bp5tok:
	MOVQ    (SI)(AX*1), R11
	SHLQ    $3, AX
	MOVQ    R8, CX
	SUBQ    AX, CX
	SHRQ    CX, R11
	ANDQ    R12, R11
	POPCNTQ R11, R11
	ADDQ    R11, (DI)(BX*8)
	ADDQ    R11, R15
	ADDQ    R10, R8
	INCQ    BX
	CMPQ    BX, DX
	JL      bp5tailloop

bp5sum:
	VEXTRACTI128 $1, Y10, X0
	VPADDQ       X0, X10, X0
	VPSRLDQ      $8, X0, X1
	VPADDQ       X1, X0, X0
	VMOVQ        X0, AX
	ADDQ         R15, AX
	MOVQ         AX, ret+48(FP)
	VZEROUPPER
	RET
