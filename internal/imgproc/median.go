package imgproc

import (
	"fmt"
	"sync"
)

// colCountPool recycles the per-call column-count scratch of the sliding
// median so the per-window hot path stays allocation-free steady state.
var colCountPool = sync.Pool{New: func() any { return new([]int32) }}

func getColCounts(w int) *[]int32 {
	p := colCountPool.Get().(*[]int32)
	s := *p
	if cap(s) < w {
		s = make([]int32, w)
	} else {
		s = s[:w]
		clear(s)
	}
	*p = s
	return p
}

func putColCounts(p *[]int32) { colCountPool.Put(p) }

// MedianFilter applies a p x p binary median filter from src into dst, the
// EBBI noise-removal step of Section II-A: spurious single-pixel events show
// up as salt-and-pepper noise in the binary frame and are removed by
// majority vote over the patch.
//
// For a binary image the median over a p^2 patch is simply a comparison of
// the number of set pixels against floor(p^2/2): the output pixel is 1 when
// the count exceeds it. Pixels outside the image count as 0, so isolated
// events on the border are removed like any others.
//
// The patch count is evaluated in O(1) per pixel with separable sliding
// sums: per-column counts over the vertical window are maintained by adding
// the entering row and subtracting the leaving one, and the horizontal
// window slides over those counts. Total work is O(W*H) independent of p —
// the paper's per-patch accounting lives in MedianFilterCounted, which
// keeps the literal formulation.
//
// dst and src must be distinct bitmaps of the same size; p must be odd and
// >= 1. p = 1 degenerates to a copy.
func MedianFilter(dst, src *Bitmap, p int) error {
	if p < 1 || p%2 == 0 {
		return fmt.Errorf("imgproc: median patch size must be odd and positive, got %d", p)
	}
	if dst == src {
		return fmt.Errorf("imgproc: median filter cannot run in place")
	}
	if dst.W != src.W || dst.H != src.H {
		return fmt.Errorf("imgproc: size mismatch dst %dx%d vs src %dx%d", dst.W, dst.H, src.W, src.H)
	}
	w, h := src.W, src.H
	if w == 0 || h == 0 {
		return nil
	}
	half := p / 2
	thresh := int32((p * p) / 2)
	colp := getColCounts(w)
	defer putColCounts(colp)
	col := *colp

	// Seed the vertical window for output row 0: source rows [0, half].
	top := half
	if top >= h {
		top = h - 1
	}
	for r := 0; r <= top; r++ {
		addByteRow(col, src.Pix[r*w:(r+1)*w])
	}
	for y := 0; y < h; y++ {
		out := dst.Pix[y*w : (y+1)*w]
		var sum int32
		for x := 0; x <= half && x < w; x++ {
			sum += col[x]
		}
		for x := range out {
			if sum > thresh {
				out[x] = 1
			} else {
				out[x] = 0
			}
			if nx := x + half + 1; nx < w {
				sum += col[nx]
			}
			if ox := x - half; ox >= 0 {
				sum -= col[ox]
			}
		}
		// Slide the vertical window to be centred on y+1.
		if ny := y + half + 1; ny < h {
			addByteRow(col, src.Pix[ny*w:(ny+1)*w])
		}
		if oy := y - half; oy >= 0 {
			subByteRow(col, src.Pix[oy*w:(oy+1)*w])
		}
	}
	return nil
}

func addByteRow(col []int32, row []uint8) {
	for x, px := range row {
		if px != 0 {
			col[x]++
		}
	}
}

func subByteRow(col []int32, row []uint8) {
	for x, px := range row {
		if px != 0 {
			col[x]--
		}
	}
}

// MedianFilterCounted is MedianFilter with an operation counter: it returns
// the number of primitive operations performed using the paper's accounting
// (one increment per set pixel visited in each patch plus one comparison per
// pixel), so the analytic cost model of Eq. 1 can be validated against the
// implementation. The counting loop deliberately keeps the literal per-patch
// formulation — it is the accounting path, not the fast path.
func MedianFilterCounted(dst, src *Bitmap, p int) (ops int64, err error) {
	if err := MedianFilter(dst, src, p); err != nil {
		return 0, err
	}
	half := p / 2
	for y := 0; y < src.H; y++ {
		for x := 0; x < src.W; x++ {
			for dy := -half; dy <= half; dy++ {
				for dx := -half; dx <= half; dx++ {
					if src.Get(x+dx, y+dy) != 0 {
						ops++ // counter increment for a set pixel
					}
				}
			}
			ops++ // comparison against floor(p^2/2)
		}
	}
	return ops, nil
}
