package imgproc

import "fmt"

// MedianFilter applies a p x p binary median filter from src into dst, the
// EBBI noise-removal step of Section II-A: spurious single-pixel events show
// up as salt-and-pepper noise in the binary frame and are removed by
// majority vote over the patch.
//
// For a binary image the median over a p^2 patch is simply a comparison of
// the number of set pixels against floor(p^2/2): the output pixel is 1 when
// the count exceeds it. Pixels outside the image count as 0, so isolated
// events on the border are removed like any others.
//
// dst and src must be distinct bitmaps of the same size; p must be odd and
// >= 1. p = 1 degenerates to a copy.
func MedianFilter(dst, src *Bitmap, p int) error {
	if p < 1 || p%2 == 0 {
		return fmt.Errorf("imgproc: median patch size must be odd and positive, got %d", p)
	}
	if dst == src {
		return fmt.Errorf("imgproc: median filter cannot run in place")
	}
	if dst.W != src.W || dst.H != src.H {
		return fmt.Errorf("imgproc: size mismatch dst %dx%d vs src %dx%d", dst.W, dst.H, src.W, src.H)
	}
	half := p / 2
	thresh := (p * p) / 2
	for y := 0; y < src.H; y++ {
		for x := 0; x < src.W; x++ {
			count := 0
			for dy := -half; dy <= half; dy++ {
				for dx := -half; dx <= half; dx++ {
					count += int(src.Get(x+dx, y+dy))
				}
			}
			if count > thresh {
				dst.Pix[y*dst.W+x] = 1
			} else {
				dst.Pix[y*dst.W+x] = 0
			}
		}
	}
	return nil
}

// MedianFilterCounted is MedianFilter with an operation counter: it returns
// the number of primitive operations performed using the paper's accounting
// (one increment per set pixel visited in each patch plus one comparison per
// pixel), so the analytic cost model of Eq. 1 can be validated against the
// implementation.
func MedianFilterCounted(dst, src *Bitmap, p int) (ops int64, err error) {
	if err := MedianFilter(dst, src, p); err != nil {
		return 0, err
	}
	half := p / 2
	for y := 0; y < src.H; y++ {
		for x := 0; x < src.W; x++ {
			for dy := -half; dy <= half; dy++ {
				for dx := -half; dx <= half; dx++ {
					if src.Get(x+dx, y+dy) != 0 {
						ops++ // counter increment for a set pixel
					}
				}
			}
			ops++ // comparison against floor(p^2/2)
		}
	}
	return ops, nil
}
