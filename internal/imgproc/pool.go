package imgproc

import "sync"

// bitmapPool recycles Bitmap backing arrays across short-lived pipelines.
// Streaming runners build and discard whole tracking systems per sensor
// stream (and evaluation sweeps build one per recording); pooling their EBBI
// double buffers keeps that churn off the garbage collector.
var bitmapPool = sync.Pool{New: func() any { return new(Bitmap) }}

// GetBitmap returns a cleared w x h bitmap, reusing a pooled backing array
// when one of sufficient capacity is available. Release it with PutBitmap
// once no references to it (or its Pix slice) remain.
func GetBitmap(w, h int) *Bitmap {
	b := bitmapPool.Get().(*Bitmap)
	b.W, b.H = w, h
	if cap(b.Pix) < w*h {
		b.Pix = make([]uint8, w*h)
		return b
	}
	b.Pix = b.Pix[:w*h]
	b.Clear()
	return b
}

// PutBitmap returns a bitmap to the pool. The caller must not use b (or
// retain its Pix slice) afterwards.
func PutBitmap(b *Bitmap) {
	if b == nil {
		return
	}
	bitmapPool.Put(b)
}

// packedPool recycles PackedBitmap backing arrays, mirroring bitmapPool for
// the word-parallel fast path's EBBI double buffers.
var packedPool = sync.Pool{New: func() any { return new(PackedBitmap) }}

// GetPacked returns a cleared w x h packed bitmap, reusing a pooled backing
// array when one of sufficient capacity is available. Release it with
// PutPacked once no references to it (or its Words slice) remain.
func GetPacked(w, h int) *PackedBitmap {
	p := packedPool.Get().(*PackedBitmap)
	p.Resize(w, h)
	return p
}

// PutPacked returns a packed bitmap to the pool. The caller must not use p
// (or retain its Words slice) afterwards.
func PutPacked(p *PackedBitmap) {
	if p == nil {
		return
	}
	packedPool.Put(p)
}
