package imgproc

// Word-parallel binary morphology. A square structuring element of radius r
// is separable: dilation (erosion) by the (2r+1) x (2r+1) square is a
// horizontal dilation (erosion) by the 1 x (2r+1) segment followed by a
// vertical one. The horizontal pass reduces to OR-ing (AND-ing) each packed
// row with itself shifted by 1..r bits in both directions — shifts carry
// across word boundaries — and the vertical pass to the same over whole
// rows, so the cost is O(r · words) instead of O(r² · pixels) with
// per-pixel neighbourhood scans. Pixels outside the image count as unset,
// matching the byte-path Dilate/Erode border convention; for erosion the
// zero-fill shifted in at the edges clears border pixels exactly as the
// byte path does.

// PackedDilate writes the dilation of src by a square structuring element
// of radius r into dst, which is resized (reusing its backing array when
// large enough) and returned; pass nil to allocate. Output is bit-identical
// to Dilate on the unpacked image. dst must not alias src.
func PackedDilate(dst, src *PackedBitmap, r int) *PackedBitmap {
	return packedMorph(dst, src, r, true)
}

// PackedErode writes the erosion of src by a square structuring element of
// radius r into dst (same reuse contract as PackedDilate). A pixel survives
// only if its whole neighbourhood is set, with pixels outside the image
// counting as unset. Output is bit-identical to Erode on the unpacked
// image. dst must not alias src.
func PackedErode(dst, src *PackedBitmap, r int) *PackedBitmap {
	return packedMorph(dst, src, r, false)
}

func packedMorph(dst, src *PackedBitmap, r int, dilate bool) *PackedBitmap {
	if dst == nil {
		dst = NewPackedBitmap(src.W, src.H)
	} else {
		dst.Resize(src.W, src.H)
	}
	if src.W == 0 || src.H == 0 {
		return dst
	}
	if r <= 0 {
		copy(dst.Words, src.Words)
		return dst
	}
	// Horizontal pass into pooled scratch.
	tmp := GetPacked(src.W, src.H)
	defer PutPacked(tmp)
	for y := 0; y < src.H; y++ {
		row := src.Row(y)
		acc := tmp.Row(y)
		copy(acc, row)
		for k := 1; k <= r; k++ {
			combineShifted(acc, row, k, dilate)
			combineShifted(acc, row, -k, dilate)
		}
	}
	if dilate {
		// Left shifts can spill set bits into the row padding; erosion
		// cannot (ANDing with zero-tailed src keeps the tails zero).
		tmp.clearTail()
	}
	// Vertical pass: combine each row of tmp with its r neighbours above
	// and below; rows outside the image are all-zero (for erosion that
	// clears the border rows, as it must).
	for y := 0; y < src.H; y++ {
		out := dst.Row(y)
		copy(out, tmp.Row(y))
		for k := 1; k <= r; k++ {
			for _, ny := range [2]int{y - k, y + k} {
				if ny >= 0 && ny < src.H {
					combineRows(out, tmp.Row(ny), dilate)
				} else if !dilate {
					clear(out)
				}
			}
		}
	}
	return dst
}

// combineShifted ORs (dilate) or ANDs acc with row shifted by k bit
// positions: positive k samples x-k (a shift toward higher x), negative k
// samples x+k. Bits shifted in from beyond the row are zero.
func combineShifted(acc, row []uint64, k int, dilate bool) {
	n := len(acc)
	if k > 0 {
		q, m := k>>6, uint(k&63)
		for i := n - 1; i >= 0; i-- {
			var w uint64
			if j := i - q; j >= 0 {
				w = row[j] << m
				// Go defines shifts >= 64 as 0, so m == 0 needs no special
				// case here: the carry term vanishes.
				if j > 0 && m != 0 {
					w |= row[j-1] >> (64 - m)
				}
			}
			if dilate {
				acc[i] |= w
			} else {
				acc[i] &= w
			}
		}
		return
	}
	k = -k
	q, m := k>>6, uint(k&63)
	for i := 0; i < n; i++ {
		var w uint64
		if j := i + q; j < n {
			w = row[j] >> m
			if j+1 < n && m != 0 {
				w |= row[j+1] << (64 - m)
			}
		}
		if dilate {
			acc[i] |= w
		} else {
			acc[i] &= w
		}
	}
}

// combineRows ORs (dilate) or ANDs two packed rows word-wise into out.
func combineRows(out, row []uint64, dilate bool) {
	if dilate {
		for i, w := range row {
			out[i] |= w
		}
		return
	}
	for i, w := range row {
		out[i] &= w
	}
}
