package imgproc

// Word-parallel binary morphology. A square structuring element of radius r
// is separable: dilation (erosion) by the (2r+1) x (2r+1) square is a
// horizontal dilation (erosion) by the 1 x (2r+1) segment followed by a
// vertical one. The horizontal pass reduces to OR-ing (AND-ing) each packed
// row with itself shifted by 1..r bits in both directions — shifts carry
// across word boundaries — and the vertical pass to the same over whole
// rows, so the cost is O(r · words) instead of O(r² · pixels) with
// per-pixel neighbourhood scans. Pixels outside the image count as unset,
// matching the byte-path Dilate/Erode border convention; for erosion the
// zero-fill shifted in at the edges clears border pixels exactly as the
// byte path does.

// PackedDilate writes the dilation of src by a square structuring element
// of radius r into dst, which is resized (reusing its backing array when
// large enough) and returned; pass nil to allocate. Output is bit-identical
// to Dilate on the unpacked image. dst must not alias src.
func PackedDilate(dst, src *PackedBitmap, r int) *PackedBitmap {
	return packedMorph(dst, src, r, true, nil)
}

// PackedErode writes the erosion of src by a square structuring element of
// radius r into dst (same reuse contract as PackedDilate). A pixel survives
// only if its whole neighbourhood is set, with pixels outside the image
// counting as unset. Output is bit-identical to Erode on the unpacked
// image. dst must not alias src.
func PackedErode(dst, src *PackedBitmap, r int) *PackedBitmap {
	return packedMorph(dst, src, r, false, nil)
}

// PackedDilateRegion is PackedDilate bounded by an active region: only the
// region's row span (plus the r halo on the output side) is processed and
// the rest of dst stays bulk-cleared. ar must be a superset of src's set
// pixels; nil processes the full frame. Output is bit-identical to
// PackedDilate.
func PackedDilateRegion(dst, src *PackedBitmap, r int, ar *ActiveRegion) *PackedBitmap {
	return packedMorph(dst, src, r, true, ar)
}

// PackedErodeRegion is PackedErode bounded by an active region (erosion
// output can only lie within the region itself, so no halo is needed).
// Same contract as PackedDilateRegion.
func PackedErodeRegion(dst, src *PackedBitmap, r int, ar *ActiveRegion) *PackedBitmap {
	return packedMorph(dst, src, r, false, ar)
}

func packedMorph(dst, src *PackedBitmap, r int, dilate bool, ar *ActiveRegion) *PackedBitmap {
	if dst == nil {
		dst = NewPackedBitmap(src.W, src.H)
	} else {
		dst.Resize(src.W, src.H) // also bulk-clears every row
	}
	if src.W == 0 || src.H == 0 {
		return dst
	}
	// ry bounds the dirty source rows; everything outside stays zero in
	// the cleared dst (for erosion even the halo stays zero: an eroded
	// pixel needs its own centre set, so output rows ⊆ dirty rows).
	ry0, ry1 := 0, src.H
	if ar != nil {
		ry0, ry1 = ar.RowSpan()
		if ry0 >= ry1 {
			return dst
		}
	}
	if r <= 0 {
		copy(dst.Words[ry0*dst.Stride:ry1*dst.Stride], src.Words[ry0*src.Stride:ry1*src.Stride])
		return dst
	}
	// Horizontal pass into pooled scratch, dirty rows only: a clean row is
	// all-zero and its horizontal dilation/erosion is all-zero too, which
	// is exactly what the cleared scratch already holds.
	tmp := GetPacked(src.W, src.H)
	defer PutPacked(tmp)
	for y := ry0; y < ry1; y++ {
		row := src.Row(y)
		acc := tmp.Row(y)
		copy(acc, row)
		for k := 1; k <= r; k++ {
			combineShifted(acc, row, k, dilate)
			combineShifted(acc, row, -k, dilate)
		}
	}
	if dilate {
		// Left shifts can spill set bits into the row padding; erosion
		// cannot (ANDing with zero-tailed src keeps the tails zero).
		tmp.clearTail()
	}
	// Vertical pass: combine each row of tmp with its r neighbours above
	// and below; rows outside the image are all-zero (for erosion that
	// clears the border rows, as it must). Dilation output reaches r rows
	// past the dirty span; erosion output cannot leave it.
	oy0, oy1 := ry0, ry1
	if dilate {
		oy0, oy1 = ry0-r, ry1+r
		if oy0 < 0 {
			oy0 = 0
		}
		if oy1 > src.H {
			oy1 = src.H
		}
	}
	for y := oy0; y < oy1; y++ {
		out := dst.Row(y)
		copy(out, tmp.Row(y))
		for k := 1; k <= r; k++ {
			for _, ny := range [2]int{y - k, y + k} {
				if ny >= 0 && ny < src.H {
					combineRows(out, tmp.Row(ny), dilate)
				} else if !dilate {
					clear(out)
				}
			}
		}
	}
	return dst
}

// combineShifted ORs (dilate) or ANDs acc with row shifted by k bit
// positions: positive k samples x-k (a shift toward higher x), negative k
// samples x+k. Bits shifted in from beyond the row are zero.
func combineShifted(acc, row []uint64, k int, dilate bool) {
	n := len(acc)
	if k > 0 {
		q, m := k>>6, uint(k&63)
		for i := n - 1; i >= 0; i-- {
			var w uint64
			if j := i - q; j >= 0 {
				w = row[j] << m
				// Go defines shifts >= 64 as 0, so m == 0 needs no special
				// case here: the carry term vanishes.
				if j > 0 && m != 0 {
					w |= row[j-1] >> (64 - m)
				}
			}
			if dilate {
				acc[i] |= w
			} else {
				acc[i] &= w
			}
		}
		return
	}
	k = -k
	q, m := k>>6, uint(k&63)
	for i := 0; i < n; i++ {
		var w uint64
		if j := i + q; j < n {
			w = row[j] >> m
			if j+1 < n && m != 0 {
				w |= row[j+1] << (64 - m)
			}
		}
		if dilate {
			acc[i] |= w
		} else {
			acc[i] &= w
		}
	}
}

// combineRows ORs (dilate) or ANDs two packed rows word-wise into out.
func combineRows(out, row []uint64, dilate bool) {
	if dilate {
		for i, w := range row {
			out[i] |= w
		}
		return
	}
	for i, w := range row {
		out[i] &= w
	}
}
