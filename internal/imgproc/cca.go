package imgproc

import (
	"sort"

	"ebbiot/internal/geometry"
)

// Component is one 8-connected region of set pixels found by
// ConnectedComponents.
type Component struct {
	// Box is the tight bounding box of the component.
	Box geometry.Box
	// Size is the number of pixels in the component.
	Size int
}

// ConnectedComponents labels the 8-connected regions of set pixels and
// returns one Component per region, largest first. This is the classical
// CCA region detector the paper cites as the general alternative to its
// histogram-based proposal scheme (and names as future work); it serves as
// the RPN baseline in the ablation benchmarks.
//
// The implementation is a two-pass union-find over rows, the standard
// embedded-friendly formulation.
func ConnectedComponents(b *Bitmap) []Component {
	if b.W == 0 || b.H == 0 {
		return nil
	}
	labels := make([]int32, b.W*b.H)
	parent := make([]int32, 1, 64) // parent[0] unused; labels start at 1
	parent[0] = 0

	find := func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if ra < rb {
				parent[rb] = ra
			} else {
				parent[ra] = rb
			}
		}
	}

	// First pass: provisional labels with 8-connectivity (check W, NW, N, NE).
	for y := 0; y < b.H; y++ {
		for x := 0; x < b.W; x++ {
			if b.Pix[y*b.W+x] == 0 {
				continue
			}
			var neighbor int32
			check := func(nx, ny int) {
				if nx < 0 || nx >= b.W || ny < 0 {
					return
				}
				l := labels[ny*b.W+nx]
				if l == 0 {
					return
				}
				if neighbor == 0 {
					neighbor = l
				} else if l != neighbor {
					union(neighbor, l)
				}
			}
			check(x-1, y)
			check(x-1, y-1)
			check(x, y-1)
			check(x+1, y-1)
			if neighbor == 0 {
				label := int32(len(parent))
				parent = append(parent, label)
				labels[y*b.W+x] = label
			} else {
				labels[y*b.W+x] = neighbor
			}
		}
	}

	// Second pass: resolve labels and accumulate bounding boxes.
	type acc struct {
		minX, minY, maxX, maxY int
		size                   int
	}
	regions := map[int32]*acc{}
	for y := 0; y < b.H; y++ {
		for x := 0; x < b.W; x++ {
			l := labels[y*b.W+x]
			if l == 0 {
				continue
			}
			root := find(l)
			a := regions[root]
			if a == nil {
				a = &acc{minX: x, minY: y, maxX: x, maxY: y}
				regions[root] = a
			}
			a.size++
			if x < a.minX {
				a.minX = x
			}
			if x > a.maxX {
				a.maxX = x
			}
			if y < a.minY {
				a.minY = y
			}
			if y > a.maxY {
				a.maxY = y
			}
		}
	}

	out := make([]Component, 0, len(regions))
	for _, a := range regions {
		out = append(out, Component{
			Box:  geometry.NewBox(a.minX, a.minY, a.maxX-a.minX+1, a.maxY-a.minY+1),
			Size: a.size,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Size != out[j].Size {
			return out[i].Size > out[j].Size
		}
		if out[i].Box.X != out[j].Box.X {
			return out[i].Box.X < out[j].Box.X
		}
		return out[i].Box.Y < out[j].Box.Y
	})
	return out
}

// Dilate returns the morphological dilation of b by a square structuring
// element of radius r (so a (2r+1) x (2r+1) square). Used by the CCA-based
// RPN baseline to close small gaps before labelling.
func Dilate(b *Bitmap, r int) *Bitmap {
	out := NewBitmap(b.W, b.H)
	for y := 0; y < b.H; y++ {
		for x := 0; x < b.W; x++ {
			if b.Pix[y*b.W+x] == 0 {
				continue
			}
			for dy := -r; dy <= r; dy++ {
				for dx := -r; dx <= r; dx++ {
					out.Set(x+dx, y+dy)
				}
			}
		}
	}
	return out
}

// Erode returns the morphological erosion of b by a square structuring
// element of radius r: a pixel survives only if its whole neighbourhood is
// set. Pixels outside the image count as unset.
func Erode(b *Bitmap, r int) *Bitmap {
	out := NewBitmap(b.W, b.H)
	for y := 0; y < b.H; y++ {
	pixel:
		for x := 0; x < b.W; x++ {
			if b.Pix[y*b.W+x] == 0 {
				continue
			}
			for dy := -r; dy <= r; dy++ {
				for dx := -r; dx <= r; dx++ {
					if b.Get(x+dx, y+dy) == 0 {
						continue pixel
					}
				}
			}
			out.Set(x, y)
		}
	}
	return out
}
