package imgproc

import (
	"fmt"
	"math/bits"
	"os"
	"sync"
	"sync/atomic"

	"ebbiot/internal/cpufeat"
)

// kernelImpl is one resolved set of packed-kernel entry points. The generic
// implementation is always compiled and is the differential oracle for the
// assembly ones; on amd64, dispatch_amd64.go contributes AVX2/AVX-512
// variants and init picks the best the CPU supports.
type kernelImpl struct {
	name string // "generic", "avx2", "avx512"

	// median3 / median5 emit one run of output words [ka, kb] under the
	// same contract as median3Run / median5Run (clean flanking words, nil
	// rows all-zero), staging through the padded plane scratch s. nil means
	// "no accelerated version": the region loops then call the scalar run
	// kernels directly, so the generic arm pays no scratch or indirect-call
	// overhead, and runs shorter than simdMinRun skip the dispatch the same
	// way (the wrappers also self-check the length as a safety net).
	median3    func(s *medianScratch, out, ra, rb, rc []uint64, ka, kb int)
	median5    func(s *medianScratch, out, r0, r1, r2, r3, r4 []uint64, ka, kb int)
	medianName string

	// popcntWords returns the total popcount of p.
	popcntWords func(p []uint64) int
	popcntName  string

	// blockPop adds the popcount of each of len(acc) s1-wide bit blocks
	// (starting at bit offset off of row) into acc and returns their sum.
	// nil means "no accelerated version": callers keep their inline loops,
	// so the generic arm pays no scratch or call overhead. Callers must
	// check s1 <= blockPopMaxS1 before using it.
	blockPop     func(row []uint64, off, s1 int, acc []int) int
	blockPopName string
}

// blockPopMaxS1 is the widest block the vectorized block popcount handles:
// four s1-wide blocks plus a worst-case 7-bit load misalignment must fit in
// one 64-bit fetch (7 + 4*14 = 63).
const blockPopMaxS1 = 14

// simdMinRun is the run length (in words) below which the region loops keep
// a dirty run on the scalar median kernels even when an assembly
// implementation is active: the vector loops need at least one full 4-word
// group, and at that size the scalar rolling-plane kernel is competitive.
const simdMinRun = 4

var genericImpl = kernelImpl{
	name:         "generic",
	median3:      nil,
	median5:      nil,
	medianName:   "generic",
	popcntWords:  popcntWordsGeneric,
	popcntName:   "generic",
	blockPop:     nil,
	blockPopName: "generic",
}

func popcntWordsGeneric(p []uint64) int {
	n := 0
	for _, w := range p {
		n += bits.OnesCount64(w)
	}
	return n
}

// blockPopGeneric is the portable block popcount behind the dispatched
// signature; the assembly wrappers fall back to it for short block ranges.
func blockPopGeneric(row []uint64, off, s1 int, acc []int) int {
	mask := blockPopMask(s1)
	total := 0
	for i := range acc {
		c := bits.OnesCount64(fetchBits(row, off) & mask)
		acc[i] += c
		total += c
		off += s1
	}
	return total
}

var (
	// available lists the usable implementations, best first; archImpls is
	// supplied by dispatch_amd64.go / dispatch_generic.go.
	available = append(archImpls(), &genericImpl)

	// current is the active implementation, swapped atomically so test
	// overrides are race-free against concurrent kernel calls (both arms
	// produce bit-identical output, so a racing caller may use either).
	current atomic.Pointer[kernelImpl]

	// envForced records a recognised EBBIOT_KERNELS override, for KernelInfo.
	envForced string
)

func init() {
	pick := available[0]
	if want := os.Getenv("EBBIOT_KERNELS"); want != "" {
		for _, im := range available {
			if im.name == want {
				pick = im
				envForced = want
				break
			}
		}
	}
	current.Store(pick)
}

// kernels returns the active implementation. init has always run by the
// time any kernel is callable, so the pointer is never nil.
func kernels() *kernelImpl { return current.Load() }

// ForceGeneric routes every dispatched kernel to the portable pure-Go
// implementations and returns a function restoring the previous choice.
// It is the test hook behind the differential SIMD-vs-generic checks; the
// purego build tag forces the same thing at compile time.
func ForceGeneric() (restore func()) {
	old := current.Swap(&genericImpl)
	return func() { current.Store(old) }
}

// Kernels describes the dispatch decision: the detected CPU feature set and
// the implementation chosen per entry point. It is logged at startup by
// ebbiot-run and surfaced through /stats and /metrics.
type Kernels struct {
	CPU      string `json:"cpu"`
	Median   string `json:"median"`
	Popcount string `json:"popcount"`
	BlockPop string `json:"blockpop"`
	// Forced is the EBBIOT_KERNELS value when it selected the active
	// implementation, empty under automatic dispatch.
	Forced string `json:"forced,omitempty"`
}

// KernelInfo reports the currently active kernel implementations.
func KernelInfo() Kernels {
	im := kernels()
	return Kernels{
		CPU:      cpufeat.Detect().String(),
		Median:   im.medianName,
		Popcount: im.popcntName,
		BlockPop: im.blockPopName,
		Forced:   envForced,
	}
}

func (k Kernels) String() string {
	s := fmt.Sprintf("cpu %s, median %s, popcount %s, blockpop %s",
		k.CPU, k.Median, k.Popcount, k.BlockPop)
	if k.Forced != "" {
		s += " (forced " + k.Forced + ")"
	}
	return s
}

// medianScratch is the per-call staging area of the assembly median kernels:
// padded vertical-count bit-plane rows plus an all-zero stand-in for nil
// window rows. zero is only ever read — handing it out in place of a nil row
// keeps the assembly branchless.
type medianScratch struct {
	v0, v1, v2 []uint64
	zero       []uint64
}

var medianScratchPool = sync.Pool{New: func() any { return new(medianScratch) }}

// getMedianScratch returns scratch able to stage runs up to n words long
// (plane slices hold n+4, covering the 5x5 kernel's two pad words per side).
func getMedianScratch(n int) *medianScratch {
	s := medianScratchPool.Get().(*medianScratch)
	if cap(s.v0) < n+4 {
		s.v0 = make([]uint64, n+4)
		s.v1 = make([]uint64, n+4)
		s.v2 = make([]uint64, n+4)
		s.zero = make([]uint64, n+4)
	} else {
		s.v0 = s.v0[:n+4]
		s.v1 = s.v1[:n+4]
		s.v2 = s.v2[:n+4]
		s.zero = s.zero[:n+4]
	}
	return s
}

func putMedianScratch(s *medianScratch) { medianScratchPool.Put(s) }

// intRow is a pooled block-count accumulator row for the vectorized
// downsample (the assembly accumulates int64 lanes; the uint16 output row
// is folded from them per block row). s is all-zero on return from
// getIntRow.
type intRow struct{ s []int }

var intRowPool = sync.Pool{New: func() any { return new(intRow) }}

func getIntRow(n int) *intRow {
	r := intRowPool.Get().(*intRow)
	if cap(r.s) < n {
		r.s = make([]int, n)
	} else {
		r.s = r.s[:n]
		clear(r.s)
	}
	return r
}

func putIntRow(r *intRow) { intRowPool.Put(r) }
