package imgproc

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"

	"ebbiot/internal/geometry"
)

// PackedMedianFilter is MedianFilter over the packed representation: the
// same p x p binary median (output = 1 when the patch count exceeds
// floor(p^2/2), pixels outside the image counting 0), computed in O(1) per
// pixel with separable sliding sums. Column counts over the vertical window
// are maintained incrementally by adding/removing one row per step — and
// because EBBI frames are sparse, row updates iterate only the set bits of
// each word. The output row is assembled 64 pixels per word.
//
// dst and src must be distinct packed bitmaps of the same size; p must be
// odd and >= 1.
func PackedMedianFilter(dst, src *PackedBitmap, p int) error {
	return PackedMedianFilterRange(dst, src, p, nil)
}

// PackedMedianFilterRange is PackedMedianFilter bounded by an active
// region: only output rows within the region's row span plus the p/2 halo
// are computed (the rest of dst is bulk-cleared), the vertical column
// window slides over dirty source rows only, and per-row column bounding
// consults the region's dirty-word masks instead of scanning every word.
// ar must be a superset of src's set pixels (see ActiveRegion); nil means
// no information and processes the full frame. Output is bit-identical to
// the full-frame filter at every sparsity level.
func PackedMedianFilterRange(dst, src *PackedBitmap, p int, ar *ActiveRegion) error {
	if p < 1 || p%2 == 0 {
		return fmt.Errorf("imgproc: median patch size must be odd and positive, got %d", p)
	}
	if dst == src {
		return fmt.Errorf("imgproc: median filter cannot run in place")
	}
	if dst.W != src.W || dst.H != src.H {
		return fmt.Errorf("imgproc: size mismatch dst %dx%d vs src %dx%d", dst.W, dst.H, src.W, src.H)
	}
	w, h := src.W, src.H
	if w == 0 || h == 0 {
		return nil
	}
	if ar != nil && ar.Empty() {
		// No set pixels anywhere: every patch count is 0, which never
		// clears the > thresh test (thresh >= 0).
		dst.Clear()
		return nil
	}
	if p == 3 {
		// The paper's default patch size gets the hand-unrolled bit-sliced
		// kernel: 64 output pixels per handful of word ops, no per-pixel
		// slide — with or without an active region.
		packedMedian3Region(dst, src, ar)
		return nil
	}
	if p == 5 {
		// p=5 gets its own fully unrolled instance of the counter network:
		// the generic plane loops below are correct for it but spill to
		// memory, and this is the other patch size the paper sweeps.
		packedMedian5Region(dst, src, ar)
		return nil
	}
	if p <= maxPlanesP {
		// Remaining patches up to the single-word halo limit use the
		// generic bit-plane counter network; the sliding-column kernel
		// below survives only as the fallback for wider patches (and as
		// the oracle the benchmarks compare against).
		packedMedianPlanesRegion(dst, src, p, ar)
		return nil
	}
	packedMedianSlidingRange(dst, src, p, ar)
	return nil
}

// packedMedianSlidingRange is the separable sliding-sum median: per-column
// vertical counts maintained incrementally row to row, a horizontal p-wide
// sum slid per pixel. It handles every odd p but touches pixels one at a
// time; the bit-sliced kernels above replace it for p <= maxPlanesP.
func packedMedianSlidingRange(dst, src *PackedBitmap, p int, ar *ActiveRegion) {
	w, h := src.W, src.H
	half := p / 2
	thresh := int32((p * p) / 2)
	// ry bounds the dirty source rows; output rows can be nonzero only
	// within the half-halo around them. Everything else is bulk-cleared.
	ry0, ry1 := 0, h
	if ar != nil {
		ry0, ry1 = ar.RowSpan()
	}
	oy0, oy1 := ry0-half, ry1+half
	if oy0 < 0 {
		oy0 = 0
	}
	if oy1 > h {
		oy1 = h
	}
	stride := dst.Stride
	// One bulk clear covers the dead frame area and pre-zeroes the output
	// rows, so the slide below only ORs set bits in.
	clear(dst.Words)

	colp := getColCounts(w)
	defer putColCounts(colp)
	col := *colp

	// Direct dirty-mask access for the hot loop; nil when the region gives
	// no per-word information (absent or degraded to span-only).
	var rowsMask []uint64
	if ar != nil && !ar.wide {
		rowsMask = ar.rows
	}

	// Seed the vertical window for output row oy0 from the dirty rows it
	// covers (rows outside [ry0, ry1) are all-zero and contribute nothing).
	seedLo, seedHi := oy0-half, oy0+half
	if seedLo < ry0 {
		seedLo = ry0
	}
	if seedHi >= ry1 {
		seedHi = ry1 - 1
	}
	for r := seedLo; r <= seedHi; r++ {
		addPackedRow(col, src.Row(r))
	}
	for y := oy0; y < oy1; y++ {
		// EBBI frames are sparse: most vertical windows cover only a narrow
		// band of set columns (or none). Bound the horizontal slide to the
		// union span of set bits in the window's rows — found by scanning
		// whole words, narrowed to the region's dirty words when a region
		// is given — and emit zero words elsewhere: outside the span every
		// patch count is zero, which never clears the > thresh test.
		lo, hi := w, -1
		yLo, yHi := y-half, y+half
		if yLo < ry0 {
			yLo = ry0
		}
		if yHi >= ry1 {
			yHi = ry1 - 1
		}
		if rowsMask != nil {
			var wm uint64
			for r := yLo; r <= yHi; r++ {
				wm |= rowsMask[r]
			}
			if wm != 0 {
				ka := bits.TrailingZeros64(wm)
				kb := 63 - bits.LeadingZeros64(wm)
				if kb >= stride {
					kb = stride - 1
				}
				for r := yLo; r <= yHi; r++ {
					if rowsMask[r] == 0 {
						continue
					}
					if f, l, ok := rowSpanWords(src.Row(r), ka, kb); ok {
						if f < lo {
							lo = f
						}
						if l > hi {
							hi = l
						}
					}
				}
			}
		} else {
			for r := yLo; r <= yHi; r++ {
				if f, l, ok := rowSpan(src.Row(r)); ok {
					if f < lo {
						lo = f
					}
					if l > hi {
						hi = l
					}
				}
			}
		}
		if hi >= 0 {
			out := dst.Row(y)
			x0, x1 := lo-half, hi+half+1
			if x0 < 0 {
				x0 = 0
			}
			if x1 > w {
				x1 = w
			}
			var sum int32
			for x := x0 - half; x <= x0+half; x++ {
				if x >= 0 && x < w {
					sum += col[x]
				}
			}
			for x := x0; x < x1; x++ {
				if sum > thresh {
					out[x>>6] |= uint64(1) << (uint(x) & 63)
				}
				if nx := x + half + 1; nx < w {
					sum += col[nx]
				}
				if ox := x - half; ox >= 0 {
					sum -= col[ox]
				}
			}
		}
		// Slide the vertical window to be centred on y+1, touching only
		// dirty rows (clean rows hold no counts to add or remove).
		if ny := y + half + 1; ny >= ry0 && ny < ry1 {
			addPackedRow(col, src.Row(ny))
		}
		if oy := y - half; oy >= ry0 && oy < ry1 {
			subPackedRow(col, src.Row(oy))
		}
	}
}

// rowSpan returns the first and last set bit positions of a packed row; ok
// is false for an empty row.
func rowSpan(row []uint64) (first, last int, ok bool) {
	i := 0
	for i < len(row) && row[i] == 0 {
		i++
	}
	if i == len(row) {
		return 0, 0, false
	}
	first = i<<6 + bits.TrailingZeros64(row[i])
	j := len(row) - 1
	for row[j] == 0 {
		j--
	}
	last = j<<6 + 63 - bits.LeadingZeros64(row[j])
	return first, last, true
}

// packedMedian3Region is the 3 x 3 median specialised to bit-sliced
// word-parallel form: instead of sliding a per-pixel sum, the per-column
// vertical counts of three rows are held as two bit-planes (a carry-save
// adder over whole words), the horizontal 3-column sum as four bit-planes,
// and the > 4 majority test as a single boolean expression — 64 output
// pixels per ~40 word ops. With an active region the work is bounded per
// word: each output row touches only the maximal runs of its window's
// dirty-word mask widened by the one-word halo, so disjoint blobs on the
// same rows stop paying for each other's columns. ar == nil (or a degraded
// wide region) processes every word of the row span. Output is
// bit-identical to the sliding kernel.
func packedMedian3Region(dst, src *PackedBitmap, ar *ActiveRegion) {
	h, stride := src.H, src.Stride
	clear(dst.Words)
	// simd is the assembly run kernel when one is active; scratch is
	// acquired lazily on the first run long enough to use it, so sparse
	// frames whose runs are all short pay no pool or dispatch overhead.
	simd := kernels().median3
	var ms *medianScratch
	ry0, ry1 := 0, h
	var rowsMask []uint64
	var wordMask uint64
	if ar != nil {
		ry0, ry1 = ar.RowSpan()
		if !ar.wide {
			rowsMask = ar.rows
			wordMask = ar.wordMask
		}
	}
	oy0, oy1 := ry0-1, ry1+1
	if oy0 < 0 {
		oy0 = 0
	}
	if oy1 > h {
		oy1 = h
	}
	for y := oy0; y < oy1; y++ {
		// Output words: exactly the window's dirty words. A clean word
		// cannot produce output — its interior columns see only zero
		// words, and its edge columns collect at most 1 neighbouring
		// column x 3 rows = 3 < 5 — so no halo widening is needed, and
		// the words flanking a maximal run are clean, seeding each run's
		// rolling planes from zero.
		var wm uint64
		if rowsMask != nil {
			lo, hi := y-1, y+1
			if lo < ry0 {
				lo = ry0
			}
			if hi >= ry1 {
				hi = ry1 - 1
			}
			for r := lo; r <= hi; r++ {
				wm |= rowsMask[r]
			}
			if wm == 0 {
				continue
			}
		}
		// The three window rows, nil when outside the image or the dirty
		// span (both all-zero).
		var ra, rb, rc []uint64
		if yy := y - 1; yy >= ry0 && yy < ry1 {
			ra = src.Row(yy)
		}
		if y >= ry0 && y < ry1 {
			rb = src.Row(y)
		}
		if yy := y + 1; yy >= ry0 && yy < ry1 {
			rc = src.Row(yy)
		}
		out := dst.Row(y)
		if rowsMask == nil {
			if simd != nil && stride >= simdMinRun {
				if ms == nil {
					ms = getMedianScratch(stride)
				}
				simd(ms, out, ra, rb, rc, 0, stride-1)
			} else {
				median3Run(out, ra, rb, rc, 0, stride-1)
			}
			continue
		}
		om := wm & wordMask
		base := 0
		for om != 0 {
			tz := bits.TrailingZeros64(om)
			om >>= uint(tz)
			n := bits.TrailingZeros64(^om) // run length; 64 when om is all ones
			if simd != nil && n >= simdMinRun {
				if ms == nil {
					ms = getMedianScratch(stride)
				}
				simd(ms, out, ra, rb, rc, base+tz, base+tz+n-1)
			} else {
				median3Run(out, ra, rb, rc, base+tz, base+tz+n-1)
			}
			om >>= uint(n) // shift >= 64 is defined as 0 in Go
			base += tz + n
		}
	}
	if ms != nil {
		putMedianScratch(ms)
	}
}

// median3Run emits output words [ka, kb] of one 3 x 3 median row. The
// window rows may be nil (all-zero); words ka-1 and kb+1 must be clean,
// which both callers guarantee (run boundaries of the smeared dirty mask,
// or the frame edge).
func median3Run(out, ra, rb, rc []uint64, ka, kb int) {
	// Rolling bit-planes of the vertical counts: (p1 p0) for word k-1,
	// (c1 c0) for k, (n1 n0) for k+1. count = a + b + c per column:
	// low plane a^b^c, high plane majority(a, b, c).
	var p0, p1, c0, c1, n0, n1 uint64
	a, b, c := word3(ra, rb, rc, ka)
	ab := a ^ b
	c0, c1 = ab^c, (a&b)|(ab&c)
	for k := ka; k <= kb; k++ {
		n0, n1 = 0, 0
		if k < kb {
			a, b, c = word3(ra, rb, rc, k+1)
			ab = a ^ b
			n0, n1 = ab^c, (a&b)|(ab&c)
		}
		// Neighbour columns aligned onto this word's bit positions:
		// column x-1 arrives by shifting up (carry bit 63 of word k-1),
		// column x+1 by shifting down (carry bit 0 of word k+1).
		l0 := c0<<1 | p0>>63
		l1 := c1<<1 | p1>>63
		r0 := c0>>1 | n0<<63
		r1 := c1>>1 | n1<<63
		// t = left + centre + right, bit-sliced: first a 2-bit + 2-bit
		// add into (x2 x1 x0), then + 2-bit into (t3 t2 t1 t0) <= 9.
		x0 := l0 ^ c0
		g0 := l0 & c0
		xa := l1 ^ c1
		x1 := xa ^ g0
		x2 := (l1 & c1) | (g0 & xa)
		t0 := x0 ^ r0
		h0 := x0 & r0
		tb := x1 ^ r1
		t1 := tb ^ h0
		h1 := (x1 & r1) | (h0 & tb)
		t2 := x2 ^ h1
		t3 := x2 & h1
		// Median: patch count > 4, i.e. t >= 5 = t3 | t2&(t1|t0).
		// Row padding cannot fire: a padding column's own count is 0
		// and at most one real neighbour contributes <= 3.
		out[k] = t3 | t2&(t1|t0)
		p0, p1, c0, c1 = c0, c1, n0, n1
	}
}

// packedMedian5Region is the 5 x 5 median as a fully unrolled bit-sliced
// counter network: the vertical counts of five rows (0..5) are held as
// three bit-planes by a carry-save adder, the five shifted copies of those
// planes are reduced by a Wallace tree into the five planes of the patch
// total (0..25), and the > 12 threshold is a short boolean expression —
// all in registers, 64 output pixels per word. Region bounding is the same
// per-word run scheme as packedMedian3Region, with a two-pixel halo that
// still reaches at most one adjacent word. Output is bit-identical to the
// sliding kernel.
func packedMedian5Region(dst, src *PackedBitmap, ar *ActiveRegion) {
	h, stride := src.H, src.Stride
	clear(dst.Words)
	// Lazy SIMD dispatch, as in packedMedian3Region.
	simd := kernels().median5
	var ms *medianScratch
	ry0, ry1 := 0, h
	var rowsMask []uint64
	var wordMask uint64
	if ar != nil {
		ry0, ry1 = ar.RowSpan()
		if !ar.wide {
			rowsMask = ar.rows
			wordMask = ar.wordMask
		}
	}
	oy0, oy1 := ry0-2, ry1+2
	if oy0 < 0 {
		oy0 = 0
	}
	if oy1 > h {
		oy1 = h
	}
	for y := oy0; y < oy1; y++ {
		// Output words: exactly the window's dirty words — a clean word's
		// edge columns collect at most 2 neighbouring columns x 5 rows =
		// 10 < 13, so clean words never produce output and the words
		// flanking a maximal run seed each run's rolling planes from zero.
		var wm uint64
		if rowsMask != nil {
			lo, hi := y-2, y+2
			if lo < ry0 {
				lo = ry0
			}
			if hi >= ry1 {
				hi = ry1 - 1
			}
			for r := lo; r <= hi; r++ {
				wm |= rowsMask[r]
			}
			if wm == 0 {
				continue
			}
		}
		// The five window rows, nil when outside the image or dirty span.
		var r0, r1, r2, r3, r4 []uint64
		if yy := y - 2; yy >= ry0 && yy < ry1 {
			r0 = src.Row(yy)
		}
		if yy := y - 1; yy >= ry0 && yy < ry1 {
			r1 = src.Row(yy)
		}
		if y >= ry0 && y < ry1 {
			r2 = src.Row(y)
		}
		if yy := y + 1; yy >= ry0 && yy < ry1 {
			r3 = src.Row(yy)
		}
		if yy := y + 2; yy >= ry0 && yy < ry1 {
			r4 = src.Row(yy)
		}
		out := dst.Row(y)
		if rowsMask == nil {
			if simd != nil && stride >= simdMinRun {
				if ms == nil {
					ms = getMedianScratch(stride)
				}
				simd(ms, out, r0, r1, r2, r3, r4, 0, stride-1)
			} else {
				median5Run(out, r0, r1, r2, r3, r4, 0, stride-1)
			}
			continue
		}
		om := wm & wordMask
		base := 0
		for om != 0 {
			tz := bits.TrailingZeros64(om)
			om >>= uint(tz)
			n := bits.TrailingZeros64(^om)
			if simd != nil && n >= simdMinRun {
				if ms == nil {
					ms = getMedianScratch(stride)
				}
				simd(ms, out, r0, r1, r2, r3, r4, base+tz, base+tz+n-1)
			} else {
				median5Run(out, r0, r1, r2, r3, r4, base+tz, base+tz+n-1)
			}
			om >>= uint(n)
			base += tz + n
		}
	}
	if ms != nil {
		putMedianScratch(ms)
	}
}

// median5Run emits output words [ka, kb] of one 5 x 5 median row. Words
// ka-1 and kb+1 must be clean (run boundaries of the smeared dirty mask or
// the frame edge), so the rolling previous-word planes seed from zero.
func median5Run(out, r0, r1, r2, r3, r4 []uint64, ka, kb int) {
	// Rolling vertical-count planes: (q2 q1 q0) for word k-1, (m2 m1 m0)
	// for k, (n2 n1 n0) for k+1; plane weight 1, 2, 4.
	var q0, q1, q2, n0, n1, n2 uint64
	m0, m1, m2 := vert5(r0, r1, r2, r3, r4, ka)
	for k := ka; k <= kb; k++ {
		n0, n1, n2 = 0, 0, 0
		if k < kb {
			// vert5 hand-inlined: the compiler's budget rejects it and a
			// call per word costs as much as the adder tree it feeds.
			kk := k + 1
			var a, b, c, d, e uint64
			if r0 != nil {
				a = r0[kk]
			}
			if r1 != nil {
				b = r1[kk]
			}
			if r2 != nil {
				c = r2[kk]
			}
			if r3 != nil {
				d = r3[kk]
			}
			if r4 != nil {
				e = r4[kk]
			}
			ab := a ^ b
			s0 := ab ^ c
			vc0 := a&b | ab&c
			sd := s0 ^ d
			n0 = sd ^ e
			vc1 := s0&d | sd&e
			n1 = vc0 ^ vc1
			n2 = vc0 & vc1
		}
		// The five shifted copies of the count planes: columns x-2, x-1
		// arrive by shifting up (top bits of word k-1), x+1, x+2 by
		// shifting down (bottom bits of word k+1).
		a0 := m0<<2 | q0>>62
		a1 := m1<<2 | q1>>62
		a2 := m2<<2 | q2>>62
		b0 := m0<<1 | q0>>63
		b1 := m1<<1 | q1>>63
		b2 := m2<<1 | q2>>63
		d0 := m0>>1 | n0<<63
		d1 := m1>>1 | n1<<63
		d2 := m2>>1 | n2<<63
		e0 := m0>>2 | n0<<62
		e1 := m1>>2 | n1<<62
		e2 := m2>>2 | n2<<62
		// Wallace-tree reduction by plane weight into the patch total
		// t4..t0 (<= 25). Weight 1: five inputs, two full adders.
		x := a0 ^ b0
		sA := x ^ m0
		cA := a0&b0 | x&m0
		x = sA ^ d0
		t0 := x ^ e0
		cB := sA&d0 | x&e0
		// Weight 2: five inputs plus carries cA, cB — three full adders.
		x = a1 ^ b1
		sC := x ^ m1
		cC := a1&b1 | x&m1
		x = d1 ^ e1
		sD := x ^ cA
		cD := d1&e1 | x&cA
		x = sC ^ sD
		t1 := x ^ cB
		cE := sC&sD | x&cB
		// Weight 4: five inputs plus carries cC, cD, cE.
		x = a2 ^ b2
		sF := x ^ m2
		cF := a2&b2 | x&m2
		x = d2 ^ e2
		sG := x ^ cC
		cG := d2&e2 | x&cC
		x = sF ^ sG
		sH := x ^ cD
		cH := sF&sG | x&cD
		t2 := sH ^ cE
		cI := sH & cE
		// Weight 8: carries cF..cI.
		x = cF ^ cG
		sJ := x ^ cH
		cJ := cF&cG | x&cH
		t3 := sJ ^ cI
		cK := sJ & cI
		// Weight 16: the total is <= 25 < 32, so at most one carry lands.
		t4 := cJ | cK
		// Median: patch count > 12. Padding columns cannot fire — real
		// columns within the halo contribute at most 2*5 = 10 < 13.
		out[k] = t4 | t3&t2&(t1|t0)
		q0, q1, q2, m0, m1, m2 = m0, m1, m2, n0, n1, n2
	}
}

// vert5 returns the three vertical-count planes of word k over five window
// rows (nil rows are all-zero): a carry-save adder tree for counts 0..5.
func vert5(r0, r1, r2, r3, r4 []uint64, k int) (v0, v1, v2 uint64) {
	var a, b, c, d, e uint64
	if r0 != nil {
		a = r0[k]
	}
	if r1 != nil {
		b = r1[k]
	}
	if r2 != nil {
		c = r2[k]
	}
	if r3 != nil {
		d = r3[k]
	}
	if r4 != nil {
		e = r4[k]
	}
	ab := a ^ b
	s0 := ab ^ c
	c0 := a&b | ab&c
	sd := s0 ^ d
	v0 = sd ^ e
	c1 := s0&d | sd&e
	v1 = c0 ^ c1
	v2 = c0 & c1
	return v0, v1, v2
}

// maxPlanesP is the largest median patch size routed to the generic
// bit-plane kernel. 63 keeps the horizontal halo (p/2 <= 31 columns)
// within one adjacent word, so each output word depends on exactly its
// two neighbours, and keeps the plane arrays at fixed size on the stack.
const maxPlanesP = 63

// planeCount / totalPlaneCount bound the bit-plane arrays: vertical column
// counts reach p <= 63 (6 planes), patch totals reach p*p <= 3969 (12).
const (
	planeCount      = 6
	totalPlaneCount = 12
)

// packedMedianPlanesRegion generalises the carry-save median to any odd
// patch size 5 <= p <= maxPlanesP: the vertical column counts of the p
// window rows are accumulated into nv = ceil(log2(p+1)) bit-planes by a
// word-parallel ripple adder, the 2*half+1 shifted copies of those planes
// are summed into nt total planes, and the count > floor(p^2/2) test is a
// bit-sliced constant comparison — 64 output pixels per word, no per-pixel
// slide. Work is bounded exactly like packedMedian3Region: per output row,
// only the maximal runs of the window's dirty-word mask smeared by one word
// are touched (ar == nil or a wide region processes the full row span).
// Output is bit-identical to the sliding kernel at every sparsity level.
func packedMedianPlanesRegion(dst, src *PackedBitmap, p int, ar *ActiveRegion) {
	h, stride := src.H, src.Stride
	clear(dst.Words)
	half := p / 2
	nv := bits.Len(uint(p))     // vertical counts <= p fit in nv planes
	nt := bits.Len(uint(p * p)) // patch totals <= p*p fit in nt planes
	thresh := uint64(p*p) / 2
	ry0, ry1 := 0, h
	var rowsMask []uint64
	var wordMask uint64
	if ar != nil {
		ry0, ry1 = ar.RowSpan()
		if !ar.wide {
			rowsMask = ar.rows
			wordMask = ar.wordMask
		}
	}
	oy0, oy1 := ry0-half, ry1+half
	if oy0 < 0 {
		oy0 = 0
	}
	if oy1 > h {
		oy1 = h
	}
	// win collects the window's candidate rows for the current output row;
	// rows with an all-clean mask are dropped up front (their words are all
	// zero by the region invariant), so the per-word adder only ever loads
	// rows that can contribute.
	var win [maxPlanesP][]uint64
	for y := oy0; y < oy1; y++ {
		lo, hi := y-half, y+half
		if lo < ry0 {
			lo = ry0
		}
		if hi >= ry1 {
			hi = ry1 - 1
		}
		nw := 0
		var wm uint64
		if rowsMask != nil {
			for r := lo; r <= hi; r++ {
				if m := rowsMask[r]; m != 0 {
					wm |= m
					win[nw] = src.Row(r)
					nw++
				}
			}
			if wm == 0 {
				continue
			}
		} else {
			for r := lo; r <= hi; r++ {
				win[nw] = src.Row(r)
				nw++
			}
		}
		out := dst.Row(y)
		if rowsMask == nil {
			medianPlanesRun(out, win[:nw], 0, stride-1, half, nv, nt, thresh)
			continue
		}
		// Same run bounding as the 3x3 kernel: output words are exactly
		// the dirty words (a clean word's edge columns collect at most
		// half*p < floor(p^2/2)+1), and the words flanking a maximal run
		// are clean, so runs start from zeroed planes.
		om := wm & wordMask
		base := 0
		for om != 0 {
			tz := bits.TrailingZeros64(om)
			om >>= uint(tz)
			n := bits.TrailingZeros64(^om)
			medianPlanesRun(out, win[:nw], base+tz, base+tz+n-1, half, nv, nt, thresh)
			om >>= uint(n)
			base += tz + n
		}
	}
}

// medianPlanesRun emits output words [ka, kb] of one bit-plane median row.
// win holds the window's (possibly empty) rows; words ka-1 and kb+1 must be
// clean, which the caller guarantees, so the rolling previous-word planes
// seed from zero.
func medianPlanesRun(out []uint64, win [][]uint64, ka, kb, half, nv, nt int, thresh uint64) {
	// Rolling vertical-count planes for words k-1, k, k+1 plus a shift
	// scratch, and the total-count planes for the current word.
	var vp, vc, vn, vs [planeCount]uint64
	var t [totalPlaneCount]uint64
	vertPlanes(&vc, win, ka, nv)
	for k := ka; k <= kb; k++ {
		if k < kb {
			vertPlanes(&vn, win, k+1, nv)
		} else {
			for i := 0; i < nv; i++ {
				vn[i] = 0
			}
		}
		for i := 0; i < nt; i++ {
			t[i] = 0
		}
		// Patch total = sum over dx in [-half, half] of the vertical counts
		// shifted by dx. Left neighbours shift up pulling word k-1's top
		// bits in; right neighbours shift down pulling word k+1's bottom
		// bits in.
		addPlanes(&t, &vc, nv, nt)
		for d := 1; d <= half; d++ {
			s := uint(d)
			for i := 0; i < nv; i++ {
				vs[i] = vc[i]<<s | vp[i]>>(64-s)
			}
			addPlanes(&t, &vs, nv, nt)
			for i := 0; i < nv; i++ {
				vs[i] = vc[i]>>s | vn[i]<<(64-s)
			}
			addPlanes(&t, &vs, nv, nt)
		}
		// Bit-sliced count > thresh: walk planes high to low keeping an
		// "equal so far" mask; a 1 where thresh has a 0 decides greater.
		// Padding columns cannot fire: their own count is 0 and the real
		// columns within the halo contribute at most half*p <= floor(p^2/2).
		gt, eq := uint64(0), ^uint64(0)
		for j := nt - 1; j >= 0; j-- {
			if thresh>>uint(j)&1 == 0 {
				gt |= eq & t[j]
			} else {
				eq &= t[j]
			}
		}
		out[k] = gt
		vp, vc = vc, vn
	}
}

// vertPlanes accumulates word k of every window row into nv count planes
// with a word-parallel ripple adder: plane i carries bit i of each column's
// vertical count.
func vertPlanes(v *[planeCount]uint64, win [][]uint64, k, nv int) {
	for i := 0; i < nv; i++ {
		v[i] = 0
	}
	for _, row := range win {
		w := row[k]
		if w == 0 {
			continue
		}
		for i := 0; i < nv; i++ {
			cy := v[i] & w
			v[i] ^= w
			w = cy
			if w == 0 {
				break
			}
		}
	}
}

// addPlanes adds the nv-plane counts a into the nt-plane totals t with a
// word-parallel full adder per plane. Totals never overflow nt planes
// (the patch count is at most p*p).
func addPlanes(t *[totalPlaneCount]uint64, a *[planeCount]uint64, nv, nt int) {
	var carry uint64
	for i := 0; i < nv; i++ {
		ti, ai := t[i], a[i]
		t[i] = ti ^ ai ^ carry
		carry = ti&ai | carry&(ti^ai)
	}
	for i := nv; i < nt && carry != 0; i++ {
		ti := t[i]
		t[i] = ti ^ carry
		carry = ti & carry
	}
}

// word3 loads word k of the three window rows, treating a nil row as
// all-zero.
func word3(ra, rb, rc []uint64, k int) (a, b, c uint64) {
	if ra != nil {
		a = ra[k]
	}
	if rb != nil {
		b = rb[k]
	}
	if rc != nil {
		c = rc[k]
	}
	return a, b, c
}

// rowSpanWords is rowSpan restricted to words [ka, kb] (inclusive): it
// returns the first and last set bit positions found in that word range.
// The caller guarantees 0 <= ka <= kb < len(row).
func rowSpanWords(row []uint64, ka, kb int) (first, last int, ok bool) {
	i := ka
	for i <= kb && row[i] == 0 {
		i++
	}
	if i > kb {
		return 0, 0, false
	}
	first = i<<6 + bits.TrailingZeros64(row[i])
	j := kb
	for row[j] == 0 {
		j--
	}
	last = j<<6 + 63 - bits.LeadingZeros64(row[j])
	return first, last, true
}

// addPackedRow increments the column counters for every set bit of a packed
// row, visiting only set bits.
func addPackedRow(col []int32, row []uint64) {
	for k, w := range row {
		base := k << 6
		for w != 0 {
			col[base+bits.TrailingZeros64(w)]++
			w &= w - 1
		}
	}
}

// subPackedRow decrements the column counters for every set bit of a packed
// row.
func subPackedRow(col []int32, row []uint64) {
	for k, w := range row {
		base := k << 6
		for w != 0 {
			col[base+bits.TrailingZeros64(w)]--
			w &= w - 1
		}
	}
}

// PackedDownsample is Downsample over the packed representation.
func PackedDownsample(src *PackedBitmap, s1, s2 int) (*CountImage, error) {
	return PackedDownsampleInto(nil, src, s1, s2)
}

// PackedDownsampleInto computes the block-sum scaled image of Eq. 3 from a
// packed bitmap: each s1-wide block count is a masked popcount instead of s1
// byte loads. dst is resized (reusing its backing array when large enough)
// and returned; pass nil to allocate.
func PackedDownsampleInto(dst *CountImage, src *PackedBitmap, s1, s2 int) (*CountImage, error) {
	return PackedDownsampleIntoRange(dst, src, s1, s2, nil)
}

// PackedDownsampleIntoRange is PackedDownsampleInto bounded by an active
// region: only block rows intersecting the region's row span accumulate,
// and within a source row only the blocks covered by its dirty words are
// popcounted; everything else is zeroed. ar must be a superset of src's
// set pixels; nil processes the full frame. Output is bit-identical to the
// full-frame kernel.
func PackedDownsampleIntoRange(dst *CountImage, src *PackedBitmap, s1, s2 int, ar *ActiveRegion) (*CountImage, error) {
	if s1 <= 0 || s2 <= 0 {
		return nil, fmt.Errorf("imgproc: scale factors must be positive, got s1=%d s2=%d", s1, s2)
	}
	w := src.W / s1
	h := src.H / s2
	out := dst
	if out == nil {
		out = NewCountImage(w, h)
	} else {
		out.W, out.H = w, h
		if cap(out.Pix) < w*h {
			out.Pix = make([]uint16, w*h)
		} else {
			out.Pix = out.Pix[:w*h]
		}
	}
	clear(out.Pix)
	ry0, ry1 := 0, src.H
	if ar != nil {
		ry0, ry1 = ar.RowSpan()
		if ry0 >= ry1 {
			return out, nil
		}
	}
	blockMask := blockPopMask(s1)
	bp := kernels().blockPop
	if blockMask == 0 || s1 > blockPopMaxS1 {
		bp = nil
	}
	// The vectorized block popcount accumulates int64 lanes; stage block
	// rows through a pooled int row and fold into the uint16 output. acc
	// is all-zero between block rows.
	var acc *intRow
	if bp != nil {
		acc = getIntRow(w)
	}
	for j := ry0 / s2; j < h && j*s2 < ry1; j++ {
		outRow := out.Pix[j*w : (j+1)*w]
		lo, hi := w, 0
		for n := 0; n < s2; n++ {
			yy := j*s2 + n
			if yy < ry0 || yy >= ry1 {
				continue
			}
			row := src.Row(yy)
			i0, i1 := 0, w
			if ar != nil && !ar.wide {
				mask := ar.RowMask(yy)
				// The region is a superset: a marked row may still be
				// all-zero (e.g. the median filtered its pixels away), so
				// the emptiness check stays, bounded to the dirty words.
				if mask == 0 || rowEmptyMasked(row, mask) {
					continue
				}
				i0, i1 = blockBounds(mask, src.Stride, s1, w)
			} else if rowEmpty(row) {
				continue
			}
			if bp != nil {
				bp(row, i0*s1, s1, acc.s[i0:i1])
				if i0 < lo {
					lo = i0
				}
				if i1 > hi {
					hi = i1
				}
			} else if blockMask != 0 {
				off := i0 * s1
				for i := i0; i < i1; i++ {
					outRow[i] += uint16(bits.OnesCount64(fetchBits(row, off) & blockMask))
					off += s1
				}
			} else {
				for i := i0; i < i1; i++ {
					outRow[i] += uint16(popcountRange(row, i*s1, i*s1+s1))
				}
			}
		}
		for i := lo; i < hi; i++ {
			outRow[i] += uint16(acc.s[i])
			acc.s[i] = 0
		}
	}
	if acc != nil {
		putIntRow(acc)
	}
	return out, nil
}

// blockBounds converts a dirty-word mask into the [i0, i1) range of s1-wide
// blocks that can overlap a dirty word, clamped to the downsampled width w.
func blockBounds(mask uint64, stride, s1, w int) (i0, i1 int) {
	ka := bits.TrailingZeros64(mask)
	kb := 63 - bits.LeadingZeros64(mask)
	if kb >= stride {
		kb = stride - 1
	}
	i0 = (ka << 6) / s1
	i1 = (kb<<6+63)/s1 + 1
	if i1 > w {
		i1 = w
	}
	if i0 > i1 {
		i0 = i1
	}
	return i0, i1
}

// blockPopMask returns the s1-bit block mask for the fast block-popcount
// path, or 0 when s1 is too wide for a single 64-bit fetch.
func blockPopMask(s1 int) uint64 {
	if s1 >= 64 {
		return 0
	}
	return (uint64(1) << uint(s1)) - 1
}

// fetchBits returns 64 row bits starting at bit offset off (short at the row
// end). Hand-inlined two-word fetch: the block kernels call it once per
// downsampled block.
func fetchBits(row []uint64, off int) uint64 {
	k, sh := off>>6, uint(off)&63
	v := row[k] >> sh
	if sh != 0 && k+1 < len(row) {
		v |= row[k+1] << (64 - sh)
	}
	return v
}

// PackedHistograms computes the X/Y projections of Eq. 4 directly from a
// packed bitmap at downsampling factors (s1, s2).
func PackedHistograms(src *PackedBitmap, s1, s2 int) (hx, hy []int, err error) {
	return PackedHistogramsInto(nil, nil, src, s1, s2)
}

// PackedHistogramsInto fuses Downsample and Histograms: block popcounts are
// accumulated straight into the X histogram and each block row's total into
// the Y histogram, so the intermediate scaled image is never materialized.
// The results are bit-identical to DownsampleInto + HistogramsInto on the
// unpacked image. Scratch slices are reused when large enough.
func PackedHistogramsInto(hxBuf, hyBuf []int, src *PackedBitmap, s1, s2 int) (hx, hy []int, err error) {
	return PackedHistogramsIntoRange(hxBuf, hyBuf, src, s1, s2, nil)
}

// PackedHistogramsIntoRange is PackedHistogramsInto bounded by an active
// region: block rows outside the region's row span keep their zero Y bins
// without touching the frame, and within a dirty source row only the
// blocks its dirty words can cover are popcounted. ar must be a superset
// of src's set pixels; nil processes the full frame. Results are
// bit-identical to the full-frame kernel at every sparsity level.
func PackedHistogramsIntoRange(hxBuf, hyBuf []int, src *PackedBitmap, s1, s2 int, ar *ActiveRegion) (hx, hy []int, err error) {
	if s1 <= 0 || s2 <= 0 {
		return nil, nil, fmt.Errorf("imgproc: scale factors must be positive, got s1=%d s2=%d", s1, s2)
	}
	w := src.W / s1
	h := src.H / s2
	hx = resizeInts(hxBuf, w)
	hy = resizeInts(hyBuf, h)
	ry0, ry1 := 0, src.H
	if ar != nil {
		ry0, ry1 = ar.RowSpan()
		if ry0 >= ry1 {
			return hx, hy, nil
		}
	}
	blockMask := blockPopMask(s1)
	bp := kernels().blockPop
	if s1 > blockPopMaxS1 {
		bp = nil
	}
	for j := ry0 / s2; j < h && j*s2 < ry1; j++ {
		total := 0
		for n := 0; n < s2; n++ {
			yy := j*s2 + n
			if yy < ry0 || yy >= ry1 {
				continue
			}
			row := src.Row(yy)
			i0, i1 := 0, w
			if ar != nil && !ar.wide {
				mask := ar.RowMask(yy)
				// Superset region: a marked row may still be all-zero, so
				// the emptiness check stays, bounded to the dirty words.
				if mask == 0 || rowEmptyMasked(row, mask) {
					continue
				}
				i0, i1 = blockBounds(mask, src.Stride, s1, w)
			} else if rowEmpty(row) {
				continue
			}
			if blockMask != 0 {
				if bp != nil {
					total += bp(row, i0*s1, s1, hx[i0:i1])
				} else {
					off := i0 * s1
					for i := i0; i < i1; i++ {
						c := bits.OnesCount64(fetchBits(row, off) & blockMask)
						hx[i] += c
						total += c
						off += s1
					}
				}
			} else {
				for i := i0; i < i1; i++ {
					c := popcountRange(row, i*s1, i*s1+s1)
					hx[i] += c
					total += c
				}
			}
		}
		hy[j] += total
	}
	return hx, hy, nil
}

// rowEmptyMasked reports whether a packed row has no set bits within the
// dirty-word span of mask (words outside it are zero by the region
// invariant).
func rowEmptyMasked(row []uint64, mask uint64) bool {
	ka := bits.TrailingZeros64(mask)
	kb := 63 - bits.LeadingZeros64(mask)
	if kb >= len(row) {
		kb = len(row) - 1
	}
	var or uint64
	for k := ka; k <= kb; k++ {
		or |= row[k]
	}
	return or == 0
}

// rowEmpty reports whether a packed row has no set bits.
func rowEmpty(row []uint64) bool {
	var or uint64
	for _, w := range row {
		or |= w
	}
	return or == 0
}

// packedRun is one maximal horizontal run [start, end) of set pixels on row
// y, the unit of the run-extraction CCA.
type packedRun struct {
	y, start, end int32
	label         int32
}

// rowRunMask returns the dirty-word mask CCA should iterate for row y, or
// ^0 to request a plain full-row sweep — chosen when there is no per-word
// information (nil or degraded region) or when the mask is already fully
// dense, where iterating mask bits costs more than ranging over the row.
func rowRunMask(ar *ActiveRegion, y int) uint64 {
	if ar == nil || ar.wide {
		return ^uint64(0)
	}
	m := ar.RowMask(y)
	if m == ar.wordMask {
		return ^uint64(0)
	}
	return m
}

// extractRuns appends the maximal set-bit runs of word k (row y) to *runs,
// merging a run that continues across the word boundary into the previous
// run of the same row (rowStart is where this row's runs begin).
func extractRuns(runs *[]packedRun, rowStart int, y int32, k int, w uint64) {
	base := int32(k << 6)
	x := int32(0)
	for w != 0 {
		tz := int32(bits.TrailingZeros64(w))
		w >>= uint(tz)
		x += tz
		n := int32(bits.TrailingZeros64(^w)) // run length; 64 when w is all ones
		s, e := base+x, base+x+n
		rs := *runs
		if len(rs) > rowStart && rs[len(rs)-1].end == s {
			rs[len(rs)-1].end = e // run continues across the word boundary
		} else {
			*runs = append(rs, packedRun{y: y, start: s, end: e, label: -1})
		}
		w >>= uint(n) // shift >= 64 is defined as 0 in Go
		x += n
	}
}

// PackedConnectedComponents labels the 8-connected regions of a packed
// bitmap and returns the same Components (largest first) as
// ConnectedComponents on the unpacked image. Instead of visiting pixels it
// extracts maximal set-bit runs per word (TrailingZeros skips zero spans in
// one step) and unions runs of adjacent rows that touch under
// 8-connectivity, so the work scales with the number of runs, not W x H.
func PackedConnectedComponents(p *PackedBitmap) []Component {
	return PackedConnectedComponentsRegion(p, nil)
}

// PackedConnectedComponentsRegion is PackedConnectedComponents seeded only
// from the active region's dirty words: rows outside the region's span are
// never visited and, within a dirty row, run extraction iterates the dirty
// words directly instead of sweeping the whole row. ar must be a superset
// of p's set pixels; nil scans the full frame. Output is identical to the
// full-frame labelling.
func PackedConnectedComponentsRegion(p *PackedBitmap, ar *ActiveRegion) []Component {
	if p.W == 0 || p.H == 0 {
		return nil
	}
	ry0, ry1 := 0, p.H
	if ar != nil {
		ry0, ry1 = ar.RowSpan()
		if ry0 >= ry1 {
			return nil
		}
	}
	cs := getCCAScratch()
	runs := cs.runs
	parent := cs.parent
	find := func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	union := func(a, b int32) int32 {
		ra, rb := find(a), find(b)
		if ra == rb {
			return ra
		}
		if ra < rb {
			parent[rb] = ra
			return ra
		}
		parent[ra] = rb
		return rb
	}

	prevStart, prevEnd := 0, 0 // index range of the previous row's runs
	for y := ry0; y < ry1; y++ {
		rowStart := len(runs)
		row := p.Row(y)
		if m := rowRunMask(ar, y); m != ^uint64(0) {
			// Visit only the dirty words; clean words are zero by the
			// region invariant, so no run can bridge a skipped word.
			for ; m != 0; m &= m - 1 {
				k := bits.TrailingZeros64(m)
				if k >= len(row) {
					break
				}
				extractRuns(&runs, rowStart, int32(y), k, row[k])
			}
		} else {
			for k, w := range row {
				extractRuns(&runs, rowStart, int32(y), k, w)
			}
		}
		// Match this row's runs against the previous row's with two
		// pointers: runs [s1,e1) and [s2,e2) on adjacent rows are
		// 8-connected iff s1 <= e2 && s2 <= e1.
		pi := prevStart
		for ri := rowStart; ri < len(runs); ri++ {
			r := &runs[ri]
			for pi < prevEnd && runs[pi].end < r.start {
				pi++
			}
			for pj := pi; pj < prevEnd && runs[pj].start <= r.end; pj++ {
				if r.label < 0 {
					r.label = find(runs[pj].label)
				} else {
					r.label = union(r.label, runs[pj].label)
				}
			}
			if r.label < 0 {
				r.label = int32(len(parent))
				parent = append(parent, r.label)
			}
		}
		prevStart, prevEnd = rowStart, len(runs)
	}

	// Resolve roots and accumulate bounding boxes run-at-a-time.
	accs := cs.accs
	if cap(accs) < len(parent) {
		accs = make([]ccaAcc, len(parent))
	} else {
		accs = accs[:len(parent)]
		clear(accs)
	}
	for _, r := range runs {
		root := find(r.label)
		a := &accs[root]
		if a.size == 0 {
			*a = ccaAcc{minX: r.start, minY: r.y, maxX: r.end - 1, maxY: r.y}
		}
		a.size += int(r.end - r.start)
		if r.start < a.minX {
			a.minX = r.start
		}
		if r.end-1 > a.maxX {
			a.maxX = r.end - 1
		}
		if r.y < a.minY {
			a.minY = r.y
		}
		if r.y > a.maxY {
			a.maxY = r.y
		}
	}
	nroots := 0
	for i := range accs {
		if accs[i].size != 0 {
			nroots++
		}
	}
	out := make([]Component, 0, nroots)
	for _, a := range accs {
		if a.size == 0 {
			continue
		}
		out = append(out, Component{
			Box:  geometry.NewBox(int(a.minX), int(a.minY), int(a.maxX-a.minX+1), int(a.maxY-a.minY+1)),
			Size: a.size,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Size != out[j].Size {
			return out[i].Size > out[j].Size
		}
		if out[i].Box.X != out[j].Box.X {
			return out[i].Box.X < out[j].Box.X
		}
		return out[i].Box.Y < out[j].Box.Y
	})
	cs.runs, cs.parent, cs.accs = runs, parent, accs
	putCCAScratch(cs)
	return out
}

// ccaAcc accumulates one component's bounding box and size; size == 0
// marks an untouched slot (non-root labels).
type ccaAcc struct {
	minX, minY, maxX, maxY int32
	size                   int
}

// ccaScratch holds the run, union-find, and accumulator arrays of one
// connected-components labelling. Proposal extraction runs CCA per tracking
// window; pooling the scratch (about 180 KB once grown for a DAVIS-scale
// frame) keeps that off the per-window allocation profile.
type ccaScratch struct {
	runs   []packedRun
	parent []int32
	accs   []ccaAcc
}

var ccaScratchPool = sync.Pool{New: func() any { return new(ccaScratch) }}

func getCCAScratch() *ccaScratch {
	cs := ccaScratchPool.Get().(*ccaScratch)
	cs.runs = cs.runs[:0]
	if cs.parent == nil {
		cs.parent = make([]int32, 0, 64)
	} else {
		cs.parent = cs.parent[:0]
	}
	return cs
}

func putCCAScratch(cs *ccaScratch) { ccaScratchPool.Put(cs) }
