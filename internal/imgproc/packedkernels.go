package imgproc

import (
	"fmt"
	"math/bits"
	"sort"

	"ebbiot/internal/geometry"
)

// PackedMedianFilter is MedianFilter over the packed representation: the
// same p x p binary median (output = 1 when the patch count exceeds
// floor(p^2/2), pixels outside the image counting 0), computed in O(1) per
// pixel with separable sliding sums. Column counts over the vertical window
// are maintained incrementally by adding/removing one row per step — and
// because EBBI frames are sparse, row updates iterate only the set bits of
// each word. The output row is assembled 64 pixels per word.
//
// dst and src must be distinct packed bitmaps of the same size; p must be
// odd and >= 1.
func PackedMedianFilter(dst, src *PackedBitmap, p int) error {
	return PackedMedianFilterRange(dst, src, p, nil)
}

// PackedMedianFilterRange is PackedMedianFilter bounded by an active
// region: only output rows within the region's row span plus the p/2 halo
// are computed (the rest of dst is bulk-cleared), the vertical column
// window slides over dirty source rows only, and per-row column bounding
// consults the region's dirty-word masks instead of scanning every word.
// ar must be a superset of src's set pixels (see ActiveRegion); nil means
// no information and processes the full frame. Output is bit-identical to
// the full-frame filter at every sparsity level.
func PackedMedianFilterRange(dst, src *PackedBitmap, p int, ar *ActiveRegion) error {
	if p < 1 || p%2 == 0 {
		return fmt.Errorf("imgproc: median patch size must be odd and positive, got %d", p)
	}
	if dst == src {
		return fmt.Errorf("imgproc: median filter cannot run in place")
	}
	if dst.W != src.W || dst.H != src.H {
		return fmt.Errorf("imgproc: size mismatch dst %dx%d vs src %dx%d", dst.W, dst.H, src.W, src.H)
	}
	w, h := src.W, src.H
	if w == 0 || h == 0 {
		return nil
	}
	if ar != nil && ar.Empty() {
		// No set pixels anywhere: every patch count is 0, which never
		// clears the > thresh test (thresh >= 0).
		dst.Clear()
		return nil
	}
	if p == 3 && ar != nil {
		// The paper's default patch size gets the bit-sliced kernel: 64
		// output pixels per handful of word ops, no per-pixel slide.
		packedMedian3Region(dst, src, ar)
		return nil
	}
	half := p / 2
	thresh := int32((p * p) / 2)
	// ry bounds the dirty source rows; output rows can be nonzero only
	// within the half-halo around them. Everything else is bulk-cleared.
	ry0, ry1 := 0, h
	if ar != nil {
		ry0, ry1 = ar.RowSpan()
	}
	oy0, oy1 := ry0-half, ry1+half
	if oy0 < 0 {
		oy0 = 0
	}
	if oy1 > h {
		oy1 = h
	}
	stride := dst.Stride
	// One bulk clear covers the dead frame area and pre-zeroes the output
	// rows, so the slide below only ORs set bits in.
	clear(dst.Words)

	colp := getColCounts(w)
	defer putColCounts(colp)
	col := *colp

	// Direct dirty-mask access for the hot loop; nil when the region gives
	// no per-word information (absent or degraded to span-only).
	var rowsMask []uint64
	if ar != nil && !ar.wide {
		rowsMask = ar.rows
	}

	// Seed the vertical window for output row oy0 from the dirty rows it
	// covers (rows outside [ry0, ry1) are all-zero and contribute nothing).
	seedLo, seedHi := oy0-half, oy0+half
	if seedLo < ry0 {
		seedLo = ry0
	}
	if seedHi >= ry1 {
		seedHi = ry1 - 1
	}
	for r := seedLo; r <= seedHi; r++ {
		addPackedRow(col, src.Row(r))
	}
	for y := oy0; y < oy1; y++ {
		// EBBI frames are sparse: most vertical windows cover only a narrow
		// band of set columns (or none). Bound the horizontal slide to the
		// union span of set bits in the window's rows — found by scanning
		// whole words, narrowed to the region's dirty words when a region
		// is given — and emit zero words elsewhere: outside the span every
		// patch count is zero, which never clears the > thresh test.
		lo, hi := w, -1
		yLo, yHi := y-half, y+half
		if yLo < ry0 {
			yLo = ry0
		}
		if yHi >= ry1 {
			yHi = ry1 - 1
		}
		if rowsMask != nil {
			var wm uint64
			for r := yLo; r <= yHi; r++ {
				wm |= rowsMask[r]
			}
			if wm != 0 {
				ka := bits.TrailingZeros64(wm)
				kb := 63 - bits.LeadingZeros64(wm)
				if kb >= stride {
					kb = stride - 1
				}
				for r := yLo; r <= yHi; r++ {
					if rowsMask[r] == 0 {
						continue
					}
					if f, l, ok := rowSpanWords(src.Row(r), ka, kb); ok {
						if f < lo {
							lo = f
						}
						if l > hi {
							hi = l
						}
					}
				}
			}
		} else {
			for r := yLo; r <= yHi; r++ {
				if f, l, ok := rowSpan(src.Row(r)); ok {
					if f < lo {
						lo = f
					}
					if l > hi {
						hi = l
					}
				}
			}
		}
		if hi >= 0 {
			out := dst.Row(y)
			x0, x1 := lo-half, hi+half+1
			if x0 < 0 {
				x0 = 0
			}
			if x1 > w {
				x1 = w
			}
			var sum int32
			for x := x0 - half; x <= x0+half; x++ {
				if x >= 0 && x < w {
					sum += col[x]
				}
			}
			for x := x0; x < x1; x++ {
				if sum > thresh {
					out[x>>6] |= uint64(1) << (uint(x) & 63)
				}
				if nx := x + half + 1; nx < w {
					sum += col[nx]
				}
				if ox := x - half; ox >= 0 {
					sum -= col[ox]
				}
			}
		}
		// Slide the vertical window to be centred on y+1, touching only
		// dirty rows (clean rows hold no counts to add or remove).
		if ny := y + half + 1; ny >= ry0 && ny < ry1 {
			addPackedRow(col, src.Row(ny))
		}
		if oy := y - half; oy >= ry0 && oy < ry1 {
			subPackedRow(col, src.Row(oy))
		}
	}
	return nil
}

// rowSpan returns the first and last set bit positions of a packed row; ok
// is false for an empty row.
func rowSpan(row []uint64) (first, last int, ok bool) {
	i := 0
	for i < len(row) && row[i] == 0 {
		i++
	}
	if i == len(row) {
		return 0, 0, false
	}
	first = i<<6 + bits.TrailingZeros64(row[i])
	j := len(row) - 1
	for row[j] == 0 {
		j--
	}
	last = j<<6 + 63 - bits.LeadingZeros64(row[j])
	return first, last, true
}

// packedMedian3Region is the 3 x 3 median specialised to bit-sliced
// word-parallel form, bounded to the active region: instead of sliding a
// per-pixel sum, the per-column vertical counts of three rows are held as
// two bit-planes (a carry-save adder over whole words), the horizontal
// 3-column sum as four bit-planes, and the > 4 majority test as a single
// boolean expression — 64 output pixels per ~40 word ops, touching only
// the region's dirty words plus their one-word halo. The caller guarantees
// ar != nil and non-empty; output is bit-identical to the sliding kernel.
func packedMedian3Region(dst, src *PackedBitmap, ar *ActiveRegion) {
	h, stride := src.H, src.Stride
	clear(dst.Words)
	ry0, ry1 := ar.RowSpan()
	var rowsMask []uint64
	if !ar.wide {
		rowsMask = ar.rows
	}
	oy0, oy1 := ry0-1, ry1+1
	if oy0 < 0 {
		oy0 = 0
	}
	if oy1 > h {
		oy1 = h
	}
	for y := oy0; y < oy1; y++ {
		// The three window rows, nil when outside the image or the dirty
		// span (both all-zero).
		var ra, rb, rc []uint64
		if yy := y - 1; yy >= ry0 && yy < ry1 {
			ra = src.Row(yy)
		}
		if y >= ry0 && y < ry1 {
			rb = src.Row(y)
		}
		if yy := y + 1; yy >= ry0 && yy < ry1 {
			rc = src.Row(yy)
		}
		// Output words: the window's dirty words. A clean word cannot
		// produce output — its own vertical counts are zero and a single
		// neighbouring column's count (<= 3) cannot exceed the threshold 4.
		ka, kb := 0, stride-1
		if rowsMask != nil {
			var wm uint64
			lo, hi := y-1, y+1
			if lo < ry0 {
				lo = ry0
			}
			if hi >= ry1 {
				hi = ry1 - 1
			}
			for r := lo; r <= hi; r++ {
				wm |= rowsMask[r]
			}
			if wm == 0 {
				continue
			}
			ka = bits.TrailingZeros64(wm)
			kb = 63 - bits.LeadingZeros64(wm)
			if kb >= stride {
				kb = stride - 1
			}
		}
		out := dst.Row(y)
		// Rolling bit-planes of the vertical counts: (p1 p0) for word k-1,
		// (c1 c0) for k, (n1 n0) for k+1. count = a + b + c per column:
		// low plane a^b^c, high plane majority(a, b, c).
		var p0, p1, c0, c1, n0, n1 uint64
		var a, b, c uint64
		if k := ka - 1; k >= 0 {
			a, b, c = word3(ra, rb, rc, k)
			ab := a ^ b
			p0, p1 = ab^c, (a&b)|(ab&c)
		}
		a, b, c = word3(ra, rb, rc, ka)
		ab := a ^ b
		c0, c1 = ab^c, (a&b)|(ab&c)
		for k := ka; k <= kb; k++ {
			n0, n1 = 0, 0
			if k+1 < stride {
				a, b, c = word3(ra, rb, rc, k+1)
				ab = a ^ b
				n0, n1 = ab^c, (a&b)|(ab&c)
			}
			// Neighbour columns aligned onto this word's bit positions:
			// column x-1 arrives by shifting up (carry bit 63 of word k-1),
			// column x+1 by shifting down (carry bit 0 of word k+1).
			l0 := c0<<1 | p0>>63
			l1 := c1<<1 | p1>>63
			r0 := c0>>1 | n0<<63
			r1 := c1>>1 | n1<<63
			// t = left + centre + right, bit-sliced: first a 2-bit + 2-bit
			// add into (x2 x1 x0), then + 2-bit into (t3 t2 t1 t0) <= 9.
			x0 := l0 ^ c0
			g0 := l0 & c0
			xa := l1 ^ c1
			x1 := xa ^ g0
			x2 := (l1 & c1) | (g0 & xa)
			t0 := x0 ^ r0
			h0 := x0 & r0
			tb := x1 ^ r1
			t1 := tb ^ h0
			h1 := (x1 & r1) | (h0 & tb)
			t2 := x2 ^ h1
			t3 := x2 & h1
			// Median: patch count > 4, i.e. t >= 5 = t3 | t2&(t1|t0).
			// Row padding cannot fire: a padding column's own count is 0
			// and at most one real neighbour contributes <= 3.
			out[k] = t3 | t2&(t1|t0)
			p0, p1, c0, c1 = c0, c1, n0, n1
		}
	}
}

// word3 loads word k of the three window rows, treating a nil row as
// all-zero.
func word3(ra, rb, rc []uint64, k int) (a, b, c uint64) {
	if ra != nil {
		a = ra[k]
	}
	if rb != nil {
		b = rb[k]
	}
	if rc != nil {
		c = rc[k]
	}
	return a, b, c
}

// rowSpanWords is rowSpan restricted to words [ka, kb] (inclusive): it
// returns the first and last set bit positions found in that word range.
// The caller guarantees 0 <= ka <= kb < len(row).
func rowSpanWords(row []uint64, ka, kb int) (first, last int, ok bool) {
	i := ka
	for i <= kb && row[i] == 0 {
		i++
	}
	if i > kb {
		return 0, 0, false
	}
	first = i<<6 + bits.TrailingZeros64(row[i])
	j := kb
	for row[j] == 0 {
		j--
	}
	last = j<<6 + 63 - bits.LeadingZeros64(row[j])
	return first, last, true
}

// addPackedRow increments the column counters for every set bit of a packed
// row, visiting only set bits.
func addPackedRow(col []int32, row []uint64) {
	for k, w := range row {
		base := k << 6
		for w != 0 {
			col[base+bits.TrailingZeros64(w)]++
			w &= w - 1
		}
	}
}

// subPackedRow decrements the column counters for every set bit of a packed
// row.
func subPackedRow(col []int32, row []uint64) {
	for k, w := range row {
		base := k << 6
		for w != 0 {
			col[base+bits.TrailingZeros64(w)]--
			w &= w - 1
		}
	}
}

// PackedDownsample is Downsample over the packed representation.
func PackedDownsample(src *PackedBitmap, s1, s2 int) (*CountImage, error) {
	return PackedDownsampleInto(nil, src, s1, s2)
}

// PackedDownsampleInto computes the block-sum scaled image of Eq. 3 from a
// packed bitmap: each s1-wide block count is a masked popcount instead of s1
// byte loads. dst is resized (reusing its backing array when large enough)
// and returned; pass nil to allocate.
func PackedDownsampleInto(dst *CountImage, src *PackedBitmap, s1, s2 int) (*CountImage, error) {
	return PackedDownsampleIntoRange(dst, src, s1, s2, nil)
}

// PackedDownsampleIntoRange is PackedDownsampleInto bounded by an active
// region: only block rows intersecting the region's row span accumulate,
// and within a source row only the blocks covered by its dirty words are
// popcounted; everything else is zeroed. ar must be a superset of src's
// set pixels; nil processes the full frame. Output is bit-identical to the
// full-frame kernel.
func PackedDownsampleIntoRange(dst *CountImage, src *PackedBitmap, s1, s2 int, ar *ActiveRegion) (*CountImage, error) {
	if s1 <= 0 || s2 <= 0 {
		return nil, fmt.Errorf("imgproc: scale factors must be positive, got s1=%d s2=%d", s1, s2)
	}
	w := src.W / s1
	h := src.H / s2
	out := dst
	if out == nil {
		out = NewCountImage(w, h)
	} else {
		out.W, out.H = w, h
		if cap(out.Pix) < w*h {
			out.Pix = make([]uint16, w*h)
		} else {
			out.Pix = out.Pix[:w*h]
		}
	}
	clear(out.Pix)
	ry0, ry1 := 0, src.H
	if ar != nil {
		ry0, ry1 = ar.RowSpan()
		if ry0 >= ry1 {
			return out, nil
		}
	}
	blockMask := blockPopMask(s1)
	for j := ry0 / s2; j < h && j*s2 < ry1; j++ {
		outRow := out.Pix[j*w : (j+1)*w]
		for n := 0; n < s2; n++ {
			yy := j*s2 + n
			if yy < ry0 || yy >= ry1 {
				continue
			}
			row := src.Row(yy)
			i0, i1 := 0, w
			if ar != nil && !ar.wide {
				mask := ar.RowMask(yy)
				// The region is a superset: a marked row may still be
				// all-zero (e.g. the median filtered its pixels away), so
				// the emptiness check stays, bounded to the dirty words.
				if mask == 0 || rowEmptyMasked(row, mask) {
					continue
				}
				i0, i1 = blockBounds(mask, src.Stride, s1, w)
			} else if rowEmpty(row) {
				continue
			}
			if blockMask != 0 {
				off := i0 * s1
				for i := i0; i < i1; i++ {
					outRow[i] += uint16(bits.OnesCount64(fetchBits(row, off) & blockMask))
					off += s1
				}
			} else {
				for i := i0; i < i1; i++ {
					outRow[i] += uint16(popcountRange(row, i*s1, i*s1+s1))
				}
			}
		}
	}
	return out, nil
}

// blockBounds converts a dirty-word mask into the [i0, i1) range of s1-wide
// blocks that can overlap a dirty word, clamped to the downsampled width w.
func blockBounds(mask uint64, stride, s1, w int) (i0, i1 int) {
	ka := bits.TrailingZeros64(mask)
	kb := 63 - bits.LeadingZeros64(mask)
	if kb >= stride {
		kb = stride - 1
	}
	i0 = (ka << 6) / s1
	i1 = (kb<<6+63)/s1 + 1
	if i1 > w {
		i1 = w
	}
	if i0 > i1 {
		i0 = i1
	}
	return i0, i1
}

// blockPopMask returns the s1-bit block mask for the fast block-popcount
// path, or 0 when s1 is too wide for a single 64-bit fetch.
func blockPopMask(s1 int) uint64 {
	if s1 >= 64 {
		return 0
	}
	return (uint64(1) << uint(s1)) - 1
}

// fetchBits returns 64 row bits starting at bit offset off (short at the row
// end). Hand-inlined two-word fetch: the block kernels call it once per
// downsampled block.
func fetchBits(row []uint64, off int) uint64 {
	k, sh := off>>6, uint(off)&63
	v := row[k] >> sh
	if sh != 0 && k+1 < len(row) {
		v |= row[k+1] << (64 - sh)
	}
	return v
}

// PackedHistograms computes the X/Y projections of Eq. 4 directly from a
// packed bitmap at downsampling factors (s1, s2).
func PackedHistograms(src *PackedBitmap, s1, s2 int) (hx, hy []int, err error) {
	return PackedHistogramsInto(nil, nil, src, s1, s2)
}

// PackedHistogramsInto fuses Downsample and Histograms: block popcounts are
// accumulated straight into the X histogram and each block row's total into
// the Y histogram, so the intermediate scaled image is never materialized.
// The results are bit-identical to DownsampleInto + HistogramsInto on the
// unpacked image. Scratch slices are reused when large enough.
func PackedHistogramsInto(hxBuf, hyBuf []int, src *PackedBitmap, s1, s2 int) (hx, hy []int, err error) {
	return PackedHistogramsIntoRange(hxBuf, hyBuf, src, s1, s2, nil)
}

// PackedHistogramsIntoRange is PackedHistogramsInto bounded by an active
// region: block rows outside the region's row span keep their zero Y bins
// without touching the frame, and within a dirty source row only the
// blocks its dirty words can cover are popcounted. ar must be a superset
// of src's set pixels; nil processes the full frame. Results are
// bit-identical to the full-frame kernel at every sparsity level.
func PackedHistogramsIntoRange(hxBuf, hyBuf []int, src *PackedBitmap, s1, s2 int, ar *ActiveRegion) (hx, hy []int, err error) {
	if s1 <= 0 || s2 <= 0 {
		return nil, nil, fmt.Errorf("imgproc: scale factors must be positive, got s1=%d s2=%d", s1, s2)
	}
	w := src.W / s1
	h := src.H / s2
	hx = resizeInts(hxBuf, w)
	hy = resizeInts(hyBuf, h)
	ry0, ry1 := 0, src.H
	if ar != nil {
		ry0, ry1 = ar.RowSpan()
		if ry0 >= ry1 {
			return hx, hy, nil
		}
	}
	blockMask := blockPopMask(s1)
	for j := ry0 / s2; j < h && j*s2 < ry1; j++ {
		total := 0
		for n := 0; n < s2; n++ {
			yy := j*s2 + n
			if yy < ry0 || yy >= ry1 {
				continue
			}
			row := src.Row(yy)
			i0, i1 := 0, w
			if ar != nil && !ar.wide {
				mask := ar.RowMask(yy)
				// Superset region: a marked row may still be all-zero, so
				// the emptiness check stays, bounded to the dirty words.
				if mask == 0 || rowEmptyMasked(row, mask) {
					continue
				}
				i0, i1 = blockBounds(mask, src.Stride, s1, w)
			} else if rowEmpty(row) {
				continue
			}
			if blockMask != 0 {
				off := i0 * s1
				for i := i0; i < i1; i++ {
					c := bits.OnesCount64(fetchBits(row, off) & blockMask)
					hx[i] += c
					total += c
					off += s1
				}
			} else {
				for i := i0; i < i1; i++ {
					c := popcountRange(row, i*s1, i*s1+s1)
					hx[i] += c
					total += c
				}
			}
		}
		hy[j] += total
	}
	return hx, hy, nil
}

// rowEmptyMasked reports whether a packed row has no set bits within the
// dirty-word span of mask (words outside it are zero by the region
// invariant).
func rowEmptyMasked(row []uint64, mask uint64) bool {
	ka := bits.TrailingZeros64(mask)
	kb := 63 - bits.LeadingZeros64(mask)
	if kb >= len(row) {
		kb = len(row) - 1
	}
	var or uint64
	for k := ka; k <= kb; k++ {
		or |= row[k]
	}
	return or == 0
}

// rowEmpty reports whether a packed row has no set bits.
func rowEmpty(row []uint64) bool {
	var or uint64
	for _, w := range row {
		or |= w
	}
	return or == 0
}

// packedRun is one maximal horizontal run [start, end) of set pixels on row
// y, the unit of the run-extraction CCA.
type packedRun struct {
	y, start, end int32
	label         int32
}

// rowRunMask returns the dirty-word mask CCA should iterate for row y, or
// ^0 to request a plain full-row sweep — chosen when there is no per-word
// information (nil or degraded region) or when the mask is already fully
// dense, where iterating mask bits costs more than ranging over the row.
func rowRunMask(ar *ActiveRegion, y int) uint64 {
	if ar == nil || ar.wide {
		return ^uint64(0)
	}
	m := ar.RowMask(y)
	if m == ar.wordMask {
		return ^uint64(0)
	}
	return m
}

// extractRuns appends the maximal set-bit runs of word k (row y) to *runs,
// merging a run that continues across the word boundary into the previous
// run of the same row (rowStart is where this row's runs begin).
func extractRuns(runs *[]packedRun, rowStart int, y int32, k int, w uint64) {
	base := int32(k << 6)
	x := int32(0)
	for w != 0 {
		tz := int32(bits.TrailingZeros64(w))
		w >>= uint(tz)
		x += tz
		n := int32(bits.TrailingZeros64(^w)) // run length; 64 when w is all ones
		s, e := base+x, base+x+n
		rs := *runs
		if len(rs) > rowStart && rs[len(rs)-1].end == s {
			rs[len(rs)-1].end = e // run continues across the word boundary
		} else {
			*runs = append(rs, packedRun{y: y, start: s, end: e, label: -1})
		}
		w >>= uint(n) // shift >= 64 is defined as 0 in Go
		x += n
	}
}

// PackedConnectedComponents labels the 8-connected regions of a packed
// bitmap and returns the same Components (largest first) as
// ConnectedComponents on the unpacked image. Instead of visiting pixels it
// extracts maximal set-bit runs per word (TrailingZeros skips zero spans in
// one step) and unions runs of adjacent rows that touch under
// 8-connectivity, so the work scales with the number of runs, not W x H.
func PackedConnectedComponents(p *PackedBitmap) []Component {
	return PackedConnectedComponentsRegion(p, nil)
}

// PackedConnectedComponentsRegion is PackedConnectedComponents seeded only
// from the active region's dirty words: rows outside the region's span are
// never visited and, within a dirty row, run extraction iterates the dirty
// words directly instead of sweeping the whole row. ar must be a superset
// of p's set pixels; nil scans the full frame. Output is identical to the
// full-frame labelling.
func PackedConnectedComponentsRegion(p *PackedBitmap, ar *ActiveRegion) []Component {
	if p.W == 0 || p.H == 0 {
		return nil
	}
	ry0, ry1 := 0, p.H
	if ar != nil {
		ry0, ry1 = ar.RowSpan()
		if ry0 >= ry1 {
			return nil
		}
	}
	var runs []packedRun
	parent := make([]int32, 0, 64)
	find := func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	union := func(a, b int32) int32 {
		ra, rb := find(a), find(b)
		if ra == rb {
			return ra
		}
		if ra < rb {
			parent[rb] = ra
			return ra
		}
		parent[ra] = rb
		return rb
	}

	prevStart, prevEnd := 0, 0 // index range of the previous row's runs
	for y := ry0; y < ry1; y++ {
		rowStart := len(runs)
		row := p.Row(y)
		if m := rowRunMask(ar, y); m != ^uint64(0) {
			// Visit only the dirty words; clean words are zero by the
			// region invariant, so no run can bridge a skipped word.
			for ; m != 0; m &= m - 1 {
				k := bits.TrailingZeros64(m)
				if k >= len(row) {
					break
				}
				extractRuns(&runs, rowStart, int32(y), k, row[k])
			}
		} else {
			for k, w := range row {
				extractRuns(&runs, rowStart, int32(y), k, w)
			}
		}
		// Match this row's runs against the previous row's with two
		// pointers: runs [s1,e1) and [s2,e2) on adjacent rows are
		// 8-connected iff s1 <= e2 && s2 <= e1.
		pi := prevStart
		for ri := rowStart; ri < len(runs); ri++ {
			r := &runs[ri]
			for pi < prevEnd && runs[pi].end < r.start {
				pi++
			}
			for pj := pi; pj < prevEnd && runs[pj].start <= r.end; pj++ {
				if r.label < 0 {
					r.label = find(runs[pj].label)
				} else {
					r.label = union(r.label, runs[pj].label)
				}
			}
			if r.label < 0 {
				r.label = int32(len(parent))
				parent = append(parent, r.label)
			}
		}
		prevStart, prevEnd = rowStart, len(runs)
	}

	// Resolve roots and accumulate bounding boxes run-at-a-time.
	type acc struct {
		minX, minY, maxX, maxY int32
		size                   int
	}
	accs := make([]acc, len(parent))
	for _, r := range runs {
		root := find(r.label)
		a := &accs[root]
		if a.size == 0 {
			*a = acc{minX: r.start, minY: r.y, maxX: r.end - 1, maxY: r.y}
		}
		a.size += int(r.end - r.start)
		if r.start < a.minX {
			a.minX = r.start
		}
		if r.end-1 > a.maxX {
			a.maxX = r.end - 1
		}
		if r.y < a.minY {
			a.minY = r.y
		}
		if r.y > a.maxY {
			a.maxY = r.y
		}
	}
	out := make([]Component, 0, 16)
	for _, a := range accs {
		if a.size == 0 {
			continue
		}
		out = append(out, Component{
			Box:  geometry.NewBox(int(a.minX), int(a.minY), int(a.maxX-a.minX+1), int(a.maxY-a.minY+1)),
			Size: a.size,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Size != out[j].Size {
			return out[i].Size > out[j].Size
		}
		if out[i].Box.X != out[j].Box.X {
			return out[i].Box.X < out[j].Box.X
		}
		return out[i].Box.Y < out[j].Box.Y
	})
	return out
}
