package imgproc

import (
	"fmt"
	"math/bits"
	"sort"

	"ebbiot/internal/geometry"
)

// PackedMedianFilter is MedianFilter over the packed representation: the
// same p x p binary median (output = 1 when the patch count exceeds
// floor(p^2/2), pixels outside the image counting 0), computed in O(1) per
// pixel with separable sliding sums. Column counts over the vertical window
// are maintained incrementally by adding/removing one row per step — and
// because EBBI frames are sparse, row updates iterate only the set bits of
// each word. The output row is assembled 64 pixels per word.
//
// dst and src must be distinct packed bitmaps of the same size; p must be
// odd and >= 1.
func PackedMedianFilter(dst, src *PackedBitmap, p int) error {
	if p < 1 || p%2 == 0 {
		return fmt.Errorf("imgproc: median patch size must be odd and positive, got %d", p)
	}
	if dst == src {
		return fmt.Errorf("imgproc: median filter cannot run in place")
	}
	if dst.W != src.W || dst.H != src.H {
		return fmt.Errorf("imgproc: size mismatch dst %dx%d vs src %dx%d", dst.W, dst.H, src.W, src.H)
	}
	w, h := src.W, src.H
	if w == 0 || h == 0 {
		return nil
	}
	half := p / 2
	thresh := int32((p * p) / 2)
	colp := getColCounts(w)
	defer putColCounts(colp)
	col := *colp

	// Seed the vertical window for output row 0: source rows [0, half].
	top := half
	if top >= h {
		top = h - 1
	}
	for r := 0; r <= top; r++ {
		addPackedRow(col, src.Row(r))
	}
	for y := 0; y < h; y++ {
		out := dst.Row(y)
		// EBBI frames are sparse: most vertical windows cover only a narrow
		// band of set columns (or none). Bound the horizontal slide to the
		// union span of set bits in the window's rows — found by scanning
		// whole words — and emit zero words elsewhere: outside the span
		// every patch count is zero, which never clears the > thresh test.
		lo, hi := w, -1
		yLo, yHi := y-half, y+half
		if yLo < 0 {
			yLo = 0
		}
		if yHi >= h {
			yHi = h - 1
		}
		for r := yLo; r <= yHi; r++ {
			if f, l, ok := rowSpan(src.Row(r)); ok {
				if f < lo {
					lo = f
				}
				if l > hi {
					hi = l
				}
			}
		}
		clear(out)
		if hi >= 0 {
			x0, x1 := lo-half, hi+half+1
			if x0 < 0 {
				x0 = 0
			}
			if x1 > w {
				x1 = w
			}
			var sum int32
			for x := x0 - half; x <= x0+half; x++ {
				if x >= 0 && x < w {
					sum += col[x]
				}
			}
			for x := x0; x < x1; x++ {
				if sum > thresh {
					out[x>>6] |= uint64(1) << (uint(x) & 63)
				}
				if nx := x + half + 1; nx < w {
					sum += col[nx]
				}
				if ox := x - half; ox >= 0 {
					sum -= col[ox]
				}
			}
		}
		// Slide the vertical window to be centred on y+1.
		if ny := y + half + 1; ny < h {
			addPackedRow(col, src.Row(ny))
		}
		if oy := y - half; oy >= 0 {
			subPackedRow(col, src.Row(oy))
		}
	}
	return nil
}

// rowSpan returns the first and last set bit positions of a packed row; ok
// is false for an empty row.
func rowSpan(row []uint64) (first, last int, ok bool) {
	i := 0
	for i < len(row) && row[i] == 0 {
		i++
	}
	if i == len(row) {
		return 0, 0, false
	}
	first = i<<6 + bits.TrailingZeros64(row[i])
	j := len(row) - 1
	for row[j] == 0 {
		j--
	}
	last = j<<6 + 63 - bits.LeadingZeros64(row[j])
	return first, last, true
}

// addPackedRow increments the column counters for every set bit of a packed
// row, visiting only set bits.
func addPackedRow(col []int32, row []uint64) {
	for k, w := range row {
		base := k << 6
		for w != 0 {
			col[base+bits.TrailingZeros64(w)]++
			w &= w - 1
		}
	}
}

// subPackedRow decrements the column counters for every set bit of a packed
// row.
func subPackedRow(col []int32, row []uint64) {
	for k, w := range row {
		base := k << 6
		for w != 0 {
			col[base+bits.TrailingZeros64(w)]--
			w &= w - 1
		}
	}
}

// PackedDownsample is Downsample over the packed representation.
func PackedDownsample(src *PackedBitmap, s1, s2 int) (*CountImage, error) {
	return PackedDownsampleInto(nil, src, s1, s2)
}

// PackedDownsampleInto computes the block-sum scaled image of Eq. 3 from a
// packed bitmap: each s1-wide block count is a masked popcount instead of s1
// byte loads. dst is resized (reusing its backing array when large enough)
// and returned; pass nil to allocate.
func PackedDownsampleInto(dst *CountImage, src *PackedBitmap, s1, s2 int) (*CountImage, error) {
	if s1 <= 0 || s2 <= 0 {
		return nil, fmt.Errorf("imgproc: scale factors must be positive, got s1=%d s2=%d", s1, s2)
	}
	w := src.W / s1
	h := src.H / s2
	out := dst
	if out == nil {
		out = NewCountImage(w, h)
	} else {
		out.W, out.H = w, h
		if cap(out.Pix) < w*h {
			out.Pix = make([]uint16, w*h)
		} else {
			out.Pix = out.Pix[:w*h]
		}
	}
	blockMask := blockPopMask(s1)
	for j := 0; j < h; j++ {
		outRow := out.Pix[j*w : (j+1)*w]
		clear(outRow)
		for n := 0; n < s2; n++ {
			row := src.Row(j*s2 + n)
			if rowEmpty(row) {
				continue
			}
			if blockMask != 0 {
				off := 0
				for i := range outRow {
					outRow[i] += uint16(bits.OnesCount64(fetchBits(row, off) & blockMask))
					off += s1
				}
			} else {
				for i := range outRow {
					outRow[i] += uint16(popcountRange(row, i*s1, i*s1+s1))
				}
			}
		}
	}
	return out, nil
}

// blockPopMask returns the s1-bit block mask for the fast block-popcount
// path, or 0 when s1 is too wide for a single 64-bit fetch.
func blockPopMask(s1 int) uint64 {
	if s1 >= 64 {
		return 0
	}
	return (uint64(1) << uint(s1)) - 1
}

// fetchBits returns 64 row bits starting at bit offset off (short at the row
// end). Hand-inlined two-word fetch: the block kernels call it once per
// downsampled block.
func fetchBits(row []uint64, off int) uint64 {
	k, sh := off>>6, uint(off)&63
	v := row[k] >> sh
	if sh != 0 && k+1 < len(row) {
		v |= row[k+1] << (64 - sh)
	}
	return v
}

// PackedHistograms computes the X/Y projections of Eq. 4 directly from a
// packed bitmap at downsampling factors (s1, s2).
func PackedHistograms(src *PackedBitmap, s1, s2 int) (hx, hy []int, err error) {
	return PackedHistogramsInto(nil, nil, src, s1, s2)
}

// PackedHistogramsInto fuses Downsample and Histograms: block popcounts are
// accumulated straight into the X histogram and each block row's total into
// the Y histogram, so the intermediate scaled image is never materialized.
// The results are bit-identical to DownsampleInto + HistogramsInto on the
// unpacked image. Scratch slices are reused when large enough.
func PackedHistogramsInto(hxBuf, hyBuf []int, src *PackedBitmap, s1, s2 int) (hx, hy []int, err error) {
	if s1 <= 0 || s2 <= 0 {
		return nil, nil, fmt.Errorf("imgproc: scale factors must be positive, got s1=%d s2=%d", s1, s2)
	}
	w := src.W / s1
	h := src.H / s2
	hx = resizeInts(hxBuf, w)
	hy = resizeInts(hyBuf, h)
	blockMask := blockPopMask(s1)
	for j := 0; j < h; j++ {
		total := 0
		for n := 0; n < s2; n++ {
			row := src.Row(j*s2 + n)
			if rowEmpty(row) {
				continue
			}
			if blockMask != 0 {
				off := 0
				for i := range hx {
					c := bits.OnesCount64(fetchBits(row, off) & blockMask)
					hx[i] += c
					total += c
					off += s1
				}
			} else {
				for i := range hx {
					c := popcountRange(row, i*s1, i*s1+s1)
					hx[i] += c
					total += c
				}
			}
		}
		hy[j] = total
	}
	return hx, hy, nil
}

// rowEmpty reports whether a packed row has no set bits.
func rowEmpty(row []uint64) bool {
	var or uint64
	for _, w := range row {
		or |= w
	}
	return or == 0
}

// packedRun is one maximal horizontal run [start, end) of set pixels on row
// y, the unit of the run-extraction CCA.
type packedRun struct {
	y, start, end int32
	label         int32
}

// PackedConnectedComponents labels the 8-connected regions of a packed
// bitmap and returns the same Components (largest first) as
// ConnectedComponents on the unpacked image. Instead of visiting pixels it
// extracts maximal set-bit runs per word (TrailingZeros skips zero spans in
// one step) and unions runs of adjacent rows that touch under
// 8-connectivity, so the work scales with the number of runs, not W x H.
func PackedConnectedComponents(p *PackedBitmap) []Component {
	if p.W == 0 || p.H == 0 {
		return nil
	}
	var runs []packedRun
	parent := make([]int32, 0, 64)
	find := func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	union := func(a, b int32) int32 {
		ra, rb := find(a), find(b)
		if ra == rb {
			return ra
		}
		if ra < rb {
			parent[rb] = ra
			return ra
		}
		parent[ra] = rb
		return rb
	}

	prevStart, prevEnd := 0, 0 // index range of the previous row's runs
	for y := 0; y < p.H; y++ {
		rowStart := len(runs)
		row := p.Row(y)
		for k, w := range row {
			base := int32(k << 6)
			x := int32(0)
			for w != 0 {
				tz := int32(bits.TrailingZeros64(w))
				w >>= uint(tz)
				x += tz
				n := int32(bits.TrailingZeros64(^w)) // run length; 64 when w is all ones
				s, e := base+x, base+x+n
				if len(runs) > rowStart && runs[len(runs)-1].end == s {
					runs[len(runs)-1].end = e // run continues across the word boundary
				} else {
					runs = append(runs, packedRun{y: int32(y), start: s, end: e, label: -1})
				}
				w >>= uint(n) // shift >= 64 is defined as 0 in Go
				x += n
			}
		}
		// Match this row's runs against the previous row's with two
		// pointers: runs [s1,e1) and [s2,e2) on adjacent rows are
		// 8-connected iff s1 <= e2 && s2 <= e1.
		pi := prevStart
		for ri := rowStart; ri < len(runs); ri++ {
			r := &runs[ri]
			for pi < prevEnd && runs[pi].end < r.start {
				pi++
			}
			for pj := pi; pj < prevEnd && runs[pj].start <= r.end; pj++ {
				if r.label < 0 {
					r.label = find(runs[pj].label)
				} else {
					r.label = union(r.label, runs[pj].label)
				}
			}
			if r.label < 0 {
				r.label = int32(len(parent))
				parent = append(parent, r.label)
			}
		}
		prevStart, prevEnd = rowStart, len(runs)
	}

	// Resolve roots and accumulate bounding boxes run-at-a-time.
	type acc struct {
		minX, minY, maxX, maxY int32
		size                   int
	}
	accs := make([]acc, len(parent))
	for _, r := range runs {
		root := find(r.label)
		a := &accs[root]
		if a.size == 0 {
			*a = acc{minX: r.start, minY: r.y, maxX: r.end - 1, maxY: r.y}
		}
		a.size += int(r.end - r.start)
		if r.start < a.minX {
			a.minX = r.start
		}
		if r.end-1 > a.maxX {
			a.maxX = r.end - 1
		}
		if r.y < a.minY {
			a.minY = r.y
		}
		if r.y > a.maxY {
			a.maxY = r.y
		}
	}
	out := make([]Component, 0, 16)
	for _, a := range accs {
		if a.size == 0 {
			continue
		}
		out = append(out, Component{
			Box:  geometry.NewBox(int(a.minX), int(a.minY), int(a.maxX-a.minX+1), int(a.maxY-a.minY+1)),
			Size: a.size,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Size != out[j].Size {
			return out[i].Size > out[j].Size
		}
		if out[i].Box.X != out[j].Box.X {
			return out[i].Box.X < out[j].Box.X
		}
		return out[i].Box.Y < out[j].Box.Y
	})
	return out
}
