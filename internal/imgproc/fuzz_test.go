package imgproc

import "testing"

// FuzzPackedKernels asserts the packed word-parallel kernels stay
// bit-identical to the byte-per-pixel reference on arbitrary frames. The
// fuzzer controls the image width (forcing non-multiple-of-64 rows and
// word-boundary straddles), the pixel contents, the median patch size and
// the downsampling factors; the byte path is itself cross-checked against
// the literal O(p^2) median so a shared bug in both fast paths cannot hide.
func FuzzPackedKernels(f *testing.F) {
	f.Add(uint8(240), uint8(1), uint8(2), uint8(1), []byte("\x01\x00\xff seed"))
	f.Add(uint8(64), uint8(0), uint8(5), uint8(2), []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add(uint8(65), uint8(2), uint8(31), uint8(31), []byte{0x80, 0x01})
	f.Add(uint8(1), uint8(4), uint8(0), uint8(0), []byte{1})
	f.Add(uint8(127), uint8(3), uint8(63), uint8(2), []byte{0xaa, 0x55, 0xaa, 0x55, 0xaa, 0x55})
	f.Fuzz(func(t *testing.T, wRaw, pRaw, s1Raw, s2Raw uint8, pix []byte) {
		w := int(wRaw)%200 + 1
		h := len(pix)/w + 1
		if h > 200 {
			h = 200
		}
		p := 2*(int(pRaw)%6) + 1             // odd, 1..11
		s1, s2 := int(s1Raw)+1, int(s2Raw)+1 // 1..256, may exceed W/H

		src := NewBitmap(w, h)
		for i := range src.Pix {
			if i < len(pix) && pix[i]&1 != 0 {
				src.Pix[i] = 1
			}
		}
		psrc := PackBitmap(nil, src)
		checkTailInvariant(t, psrc)

		// Median: naive oracle vs byte sliding vs packed.
		want := NewBitmap(w, h)
		medianNaive(want, src, p)
		got := NewBitmap(w, h)
		if err := MedianFilter(got, src, p); err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("byte median != naive (w=%d h=%d p=%d)", w, h, p)
		}
		pdst := NewPackedBitmap(w, h)
		if err := PackedMedianFilter(pdst, psrc, p); err != nil {
			t.Fatal(err)
		}
		if !pdst.Unpack(nil).Equal(want) {
			t.Fatalf("packed median != naive (w=%d h=%d p=%d)", w, h, p)
		}
		checkTailInvariant(t, pdst)

		// Downsample + histograms.
		wantDS, err := Downsample(src, s1, s2)
		if err != nil {
			t.Fatal(err)
		}
		gotDS, err := PackedDownsample(psrc, s1, s2)
		if err != nil {
			t.Fatal(err)
		}
		if gotDS.W != wantDS.W || gotDS.H != wantDS.H {
			t.Fatalf("downsample size (%d,%d) != (%d,%d)", gotDS.W, gotDS.H, wantDS.W, wantDS.H)
		}
		for i := range wantDS.Pix {
			if gotDS.Pix[i] != wantDS.Pix[i] {
				t.Fatalf("downsample block %d: %d != %d (w=%d h=%d s1=%d s2=%d)", i, gotDS.Pix[i], wantDS.Pix[i], w, h, s1, s2)
			}
		}
		wantHX, wantHY := Histograms(wantDS)
		gotHX, gotHY, err := PackedHistograms(psrc, s1, s2)
		if err != nil {
			t.Fatal(err)
		}
		if !intsEqual(gotHX, wantHX) || !intsEqual(gotHY, wantHY) {
			t.Fatalf("histograms mismatch (w=%d h=%d s1=%d s2=%d)", w, h, s1, s2)
		}

		// CCA and whole-image popcount.
		if !componentsEqual(PackedConnectedComponents(psrc), ConnectedComponents(src)) {
			t.Fatalf("CCA mismatch (w=%d h=%d)", w, h)
		}
		if psrc.CountOnes() != src.CountOnes() {
			t.Fatalf("CountOnes mismatch (w=%d h=%d)", w, h)
		}

		// Morphology (radius reuses the median patch half-width so the
		// fuzzer also drives r across word boundaries via p).
		r := p / 2
		if !PackedDilate(nil, psrc, r).Unpack(nil).Equal(Dilate(src, r)) {
			t.Fatalf("packed dilate mismatch (w=%d h=%d r=%d)", w, h, r)
		}
		if !PackedErode(nil, psrc, r).Unpack(nil).Equal(Erode(src, r)) {
			t.Fatalf("packed erode mismatch (w=%d h=%d r=%d)", w, h, r)
		}
	})
}
