package imgproc

import "testing"

// FuzzPackedKernels asserts the packed word-parallel kernels stay
// bit-identical to the byte-per-pixel reference on arbitrary frames. The
// fuzzer controls the image width (forcing non-multiple-of-64 rows and
// word-boundary straddles), the pixel contents, the median patch size and
// the downsampling factors; the byte path is itself cross-checked against
// the literal O(p^2) median so a shared bug in both fast paths cannot hide.
// The ranged (activity-bounded) kernel variants are fuzzed against the
// full-frame kernels with both the exact dirty region and a randomly
// over-approximated superset (the region contract allows marked words that
// hold no pixels).
func FuzzPackedKernels(f *testing.F) {
	f.Add(uint8(240), uint8(1), uint8(2), uint8(1), []byte("\x01\x00\xff seed"))
	f.Add(uint8(64), uint8(0), uint8(5), uint8(2), []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add(uint8(65), uint8(2), uint8(31), uint8(31), []byte{0x80, 0x01})
	f.Add(uint8(1), uint8(4), uint8(0), uint8(0), []byte{1})
	f.Add(uint8(127), uint8(3), uint8(63), uint8(2), []byte{0xaa, 0x55, 0xaa, 0x55, 0xaa, 0x55})
	// Multi-blob seeds: dense clusters separated by long all-zero gaps, so
	// rows carry disjoint dirty-word masks and the per-word-bounded median
	// starts from runs that begin and end mid-row.
	multi := make([]byte, 600)
	for i := 0; i < 8; i++ {
		multi[i] = 0xff
		multi[300+i] = 0xff
	}
	f.Add(uint8(200), uint8(1), uint8(5), uint8(2), multi)
	f.Add(uint8(200), uint8(2), uint8(5), uint8(2), multi)
	three := make([]byte, 900)
	for i := 0; i < 4; i++ {
		three[i] = 0x0f
		three[420+i] = 0xff
		three[880+i] = 0xf0
	}
	f.Add(uint8(130), uint8(2), uint8(6), uint8(3), three)
	f.Fuzz(func(t *testing.T, wRaw, pRaw, s1Raw, s2Raw uint8, pix []byte) {
		w := int(wRaw)%200 + 1
		h := len(pix)/w + 1
		if h > 200 {
			h = 200
		}
		p := 2*(int(pRaw)%6) + 1             // odd, 1..11
		s1, s2 := int(s1Raw)+1, int(s2Raw)+1 // 1..256, may exceed W/H

		src := NewBitmap(w, h)
		for i := range src.Pix {
			if i < len(pix) && pix[i]&1 != 0 {
				src.Pix[i] = 1
			}
		}
		psrc := PackBitmap(nil, src)
		checkTailInvariant(t, psrc)

		// Median: naive oracle vs byte sliding vs packed.
		want := NewBitmap(w, h)
		medianNaive(want, src, p)
		got := NewBitmap(w, h)
		if err := MedianFilter(got, src, p); err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("byte median != naive (w=%d h=%d p=%d)", w, h, p)
		}
		pdst := NewPackedBitmap(w, h)
		if err := PackedMedianFilter(pdst, psrc, p); err != nil {
			t.Fatal(err)
		}
		if !pdst.Unpack(nil).Equal(want) {
			t.Fatalf("packed median != naive (w=%d h=%d p=%d)", w, h, p)
		}
		checkTailInvariant(t, pdst)

		// Downsample + histograms.
		wantDS, err := Downsample(src, s1, s2)
		if err != nil {
			t.Fatal(err)
		}
		gotDS, err := PackedDownsample(psrc, s1, s2)
		if err != nil {
			t.Fatal(err)
		}
		if gotDS.W != wantDS.W || gotDS.H != wantDS.H {
			t.Fatalf("downsample size (%d,%d) != (%d,%d)", gotDS.W, gotDS.H, wantDS.W, wantDS.H)
		}
		for i := range wantDS.Pix {
			if gotDS.Pix[i] != wantDS.Pix[i] {
				t.Fatalf("downsample block %d: %d != %d (w=%d h=%d s1=%d s2=%d)", i, gotDS.Pix[i], wantDS.Pix[i], w, h, s1, s2)
			}
		}
		wantHX, wantHY := Histograms(wantDS)
		gotHX, gotHY, err := PackedHistograms(psrc, s1, s2)
		if err != nil {
			t.Fatal(err)
		}
		if !intsEqual(gotHX, wantHX) || !intsEqual(gotHY, wantHY) {
			t.Fatalf("histograms mismatch (w=%d h=%d s1=%d s2=%d)", w, h, s1, s2)
		}

		// CCA and whole-image popcount.
		if !componentsEqual(PackedConnectedComponents(psrc), ConnectedComponents(src)) {
			t.Fatalf("CCA mismatch (w=%d h=%d)", w, h)
		}
		if psrc.CountOnes() != src.CountOnes() {
			t.Fatalf("CountOnes mismatch (w=%d h=%d)", w, h)
		}

		// Morphology (radius reuses the median patch half-width so the
		// fuzzer also drives r across word boundaries via p).
		r := p / 2
		if !PackedDilate(nil, psrc, r).Unpack(nil).Equal(Dilate(src, r)) {
			t.Fatalf("packed dilate mismatch (w=%d h=%d r=%d)", w, h, r)
		}
		if !PackedErode(nil, psrc, r).Unpack(nil).Equal(Erode(src, r)) {
			t.Fatalf("packed erode mismatch (w=%d h=%d r=%d)", w, h, r)
		}

		// Ranged variants: the exact region of the frame, plus a superset
		// loosened by extra marks derived from the fuzz input. Both must
		// reproduce the full-frame kernels bit for bit; the ranged median
		// output buffer is pre-filled with garbage so a missing bulk clear
		// cannot hide.
		exact := regionFor(psrc)
		loose := regionFor(psrc)
		for i, b := range pix {
			if b&0x10 != 0 {
				loose.MarkWord(i%h, int(b)%((w+63)/64))
			}
		}
		for _, ar := range []*ActiveRegion{exact, loose} {
			pdstR := NewPackedBitmap(w, h)
			garbageFill(pdstR)
			if err := PackedMedianFilterRange(pdstR, psrc, p, ar); err != nil {
				t.Fatal(err)
			}
			if !pdstR.Equal(pdst) {
				t.Fatalf("ranged median != full (w=%d h=%d p=%d)", w, h, p)
			}
			checkTailInvariant(t, pdstR)
			// The sliding-column fallback is off every p <= 63 dispatch
			// path now; fuzz it against the same oracle so it stays a
			// trustworthy baseline.
			garbageFill(pdstR)
			packedMedianSlidingRange(pdstR, psrc, p, ar)
			if !pdstR.Equal(pdst) {
				t.Fatalf("sliding median != full (w=%d h=%d p=%d)", w, h, p)
			}
			checkTailInvariant(t, pdstR)
			gotDSR, err := PackedDownsampleIntoRange(nil, psrc, s1, s2, ar)
			if err != nil {
				t.Fatal(err)
			}
			for i := range wantDS.Pix {
				if gotDSR.Pix[i] != wantDS.Pix[i] {
					t.Fatalf("ranged downsample block %d: %d != %d (w=%d h=%d s1=%d s2=%d)", i, gotDSR.Pix[i], wantDS.Pix[i], w, h, s1, s2)
				}
			}
			gotHXR, gotHYR, err := PackedHistogramsIntoRange(nil, nil, psrc, s1, s2, ar)
			if err != nil {
				t.Fatal(err)
			}
			if !intsEqual(gotHXR, wantHX) || !intsEqual(gotHYR, wantHY) {
				t.Fatalf("ranged histograms mismatch (w=%d h=%d s1=%d s2=%d)", w, h, s1, s2)
			}
			if !componentsEqual(PackedConnectedComponentsRegion(psrc, ar), PackedConnectedComponents(psrc)) {
				t.Fatalf("ranged CCA mismatch (w=%d h=%d)", w, h)
			}
			if !PackedDilateRegion(nil, psrc, r, ar).Unpack(nil).Equal(Dilate(src, r)) {
				t.Fatalf("ranged dilate mismatch (w=%d h=%d r=%d)", w, h, r)
			}
			if !PackedErodeRegion(nil, psrc, r, ar).Unpack(nil).Equal(Erode(src, r)) {
				t.Fatalf("ranged erode mismatch (w=%d h=%d r=%d)", w, h, r)
			}
		}

		// Both dispatch arms: every kernel that routes through the runtime
		// dispatch table re-runs forced-generic and must reproduce the
		// active (possibly SIMD) arm bit for bit. On machines without SIMD
		// both arms are generic and this degenerates to a self-check.
		func() {
			defer ForceGeneric()()
			pdstG := NewPackedBitmap(w, h)
			if err := PackedMedianFilter(pdstG, psrc, p); err != nil {
				t.Fatal(err)
			}
			if !pdstG.Equal(pdst) {
				t.Fatalf("generic median != active arm (w=%d h=%d p=%d)", w, h, p)
			}
			for _, ar := range []*ActiveRegion{exact, loose} {
				garbageFill(pdstG)
				if err := PackedMedianFilterRange(pdstG, psrc, p, ar); err != nil {
					t.Fatal(err)
				}
				if !pdstG.Equal(pdst) {
					t.Fatalf("generic ranged median != active arm (w=%d h=%d p=%d)", w, h, p)
				}
				gotDSG, err := PackedDownsampleIntoRange(nil, psrc, s1, s2, ar)
				if err != nil {
					t.Fatal(err)
				}
				for i := range wantDS.Pix {
					if gotDSG.Pix[i] != wantDS.Pix[i] {
						t.Fatalf("generic ranged downsample block %d (w=%d h=%d s1=%d s2=%d)", i, w, h, s1, s2)
					}
				}
				gotHXG, gotHYG, err := PackedHistogramsIntoRange(nil, nil, psrc, s1, s2, ar)
				if err != nil {
					t.Fatal(err)
				}
				if !intsEqual(gotHXG, wantHX) || !intsEqual(gotHYG, wantHY) {
					t.Fatalf("generic ranged histograms mismatch (w=%d h=%d s1=%d s2=%d)", w, h, s1, s2)
				}
			}
			if psrc.CountOnes() != src.CountOnes() {
				t.Fatalf("generic CountOnes mismatch (w=%d h=%d)", w, h)
			}
		}()
	})
}
