package imgproc

import (
	"testing"
	"testing/quick"
)

func TestDownsampleBasic(t *testing.T) {
	// 6x4 image, s1=3, s2=2 -> 2x2 count image.
	src, err := FromString(`
		##....
		#..#..
		......
		...###
	`)
	if err != nil {
		t.Fatal(err)
	}
	img, err := Downsample(src, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if img.W != 2 || img.H != 2 {
		t.Fatalf("downsampled size %dx%d, want 2x2", img.W, img.H)
	}
	// Remember: row 0 is the bottom. Bottom-left block covers x 0-2, y 0-1:
	// empty. Bottom-right block covers x 3-5, y 0-1: three pixels.
	if got := img.Get(0, 0); got != 0 {
		t.Errorf("block (0,0) = %d, want 0", got)
	}
	if got := img.Get(1, 0); got != 3 {
		t.Errorf("block (1,0) = %d, want 3", got)
	}
	if got := img.Get(0, 1); got != 3 {
		t.Errorf("block (0,1) = %d, want 3", got)
	}
	if got := img.Get(1, 1); got != 1 {
		t.Errorf("block (1,1) = %d, want 1", got)
	}
}

func TestDownsamplePartialBlocksDiscarded(t *testing.T) {
	// 7x5 with s1=3, s2=2 -> floor sizes 2x2; the rightmost column and top
	// row of pixels fall outside any block.
	src := NewBitmap(7, 5)
	src.Set(6, 0) // only in partial column
	src.Set(0, 4) // only in partial row
	img, err := Downsample(src, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if img.W != 2 || img.H != 2 {
		t.Fatalf("size %dx%d, want 2x2", img.W, img.H)
	}
	if img.Sum() != 0 {
		t.Errorf("partial-block pixels leaked into blocks: sum=%d", img.Sum())
	}
}

func TestDownsampleErrors(t *testing.T) {
	b := NewBitmap(6, 6)
	if _, err := Downsample(b, 0, 1); err == nil {
		t.Error("zero scale should error")
	}
	if _, err := Downsample(b, 1, -2); err == nil {
		t.Error("negative scale should error")
	}
}

func TestDownsampleSumPreserved(t *testing.T) {
	// When the scales divide the image exactly, the block sums account for
	// every set pixel.
	prop := func(seed []byte) bool {
		src := NewBitmap(24, 18) // divisible by s1=6, s2=3 like the paper
		ones := 0
		for i, v := range seed {
			if i >= len(src.Pix) {
				break
			}
			if v%2 == 0 {
				src.Pix[i] = 1
				ones++
			}
		}
		img, err := Downsample(src, 6, 3)
		if err != nil {
			return false
		}
		return img.Sum() == ones
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHistograms(t *testing.T) {
	img := NewCountImage(3, 2)
	// Layout (row-major, row 0 bottom): row0 = [1 0 2], row1 = [0 3 1]
	img.Pix = []uint16{1, 0, 2, 0, 3, 1}
	hx, hy := Histograms(img)
	wantX := []int{1, 3, 3}
	wantY := []int{3, 4}
	for i, w := range wantX {
		if hx[i] != w {
			t.Errorf("HX[%d] = %d, want %d", i, hx[i], w)
		}
	}
	for j, w := range wantY {
		if hy[j] != w {
			t.Errorf("HY[%d] = %d, want %d", j, hy[j], w)
		}
	}
}

func TestHistogramSumsEqualProperty(t *testing.T) {
	// Sum(HX) == Sum(HY) == total count, for any image.
	prop := func(seed []byte) bool {
		img := NewCountImage(8, 5)
		for i, v := range seed {
			if i >= len(img.Pix) {
				break
			}
			img.Pix[i] = uint16(v % 19)
		}
		hx, hy := Histograms(img)
		sx, sy := 0, 0
		for _, v := range hx {
			sx += v
		}
		for _, v := range hy {
			sy += v
		}
		return sx == img.Sum() && sy == img.Sum()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFindRuns(t *testing.T) {
	tests := []struct {
		name   string
		h      []int
		thresh int
		want   []Run
	}{
		{"empty", nil, 1, nil},
		{"all below", []int{0, 1, 1, 0}, 1, nil},
		{"single run", []int{0, 2, 3, 2, 0}, 1, []Run{{1, 4}}},
		{"run to end", []int{0, 0, 5, 5}, 1, []Run{{2, 4}}},
		{"run from start", []int{5, 5, 0, 0}, 1, []Run{{0, 2}}},
		{"two runs", []int{3, 0, 0, 4, 4, 0}, 1, []Run{{0, 1}, {3, 5}}},
		{"threshold strict", []int{2, 2, 2}, 2, nil},
		{"whole array", []int{9, 9, 9}, 0, []Run{{0, 3}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := FindRuns(tt.h, tt.thresh)
			if len(got) != len(tt.want) {
				t.Fatalf("got %v, want %v", got, tt.want)
			}
			for i := range got {
				if got[i] != tt.want[i] {
					t.Errorf("run %d = %v, want %v", i, got[i], tt.want[i])
				}
			}
		})
	}
}

func TestMergeRuns(t *testing.T) {
	tests := []struct {
		name   string
		runs   []Run
		maxGap int
		want   []Run
	}{
		{"empty", nil, 1, nil},
		{"single", []Run{{0, 3}}, 1, []Run{{0, 3}}},
		{"merge small gap", []Run{{0, 3}, {4, 6}}, 1, []Run{{0, 6}}},
		{"keep big gap", []Run{{0, 3}, {6, 8}}, 1, []Run{{0, 3}, {6, 8}}},
		{"chain merge", []Run{{0, 2}, {3, 5}, {6, 8}}, 1, []Run{{0, 8}}},
		{"zero gap merges adjacent", []Run{{0, 2}, {2, 4}}, 0, []Run{{0, 4}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := MergeRuns(tt.runs, tt.maxGap)
			if len(got) != len(tt.want) {
				t.Fatalf("got %v, want %v", got, tt.want)
			}
			for i := range got {
				if got[i] != tt.want[i] {
					t.Errorf("run %d = %v, want %v", i, got[i], tt.want[i])
				}
			}
		})
	}
}

func TestRunLen(t *testing.T) {
	if (Run{2, 7}).Len() != 5 {
		t.Error("Run.Len wrong")
	}
}

func TestFindRunsCoverProperty(t *testing.T) {
	// Every bin above threshold is covered by exactly one run, and no run
	// contains a bin at or below threshold at its boundary bins' exterior.
	prop := func(seed []byte, thresh8 uint8) bool {
		h := make([]int, len(seed))
		for i, v := range seed {
			h[i] = int(v % 5)
		}
		thresh := int(thresh8 % 4)
		runs := FindRuns(h, thresh)
		covered := make([]bool, len(h))
		for _, r := range runs {
			if r.Start >= r.End {
				return false
			}
			for i := r.Start; i < r.End; i++ {
				if covered[i] {
					return false // runs overlap
				}
				covered[i] = true
				if h[i] <= thresh {
					return false // run contains below-threshold bin
				}
			}
		}
		for i, v := range h {
			if v > thresh && !covered[i] {
				return false // above-threshold bin missed
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
