package imgproc

import (
	"testing"

	"ebbiot/internal/geometry"
)

func TestCCAEmpty(t *testing.T) {
	if got := ConnectedComponents(NewBitmap(10, 10)); len(got) != 0 {
		t.Errorf("empty image has %d components", len(got))
	}
	if got := ConnectedComponents(NewBitmap(0, 0)); got != nil {
		t.Errorf("zero image components = %v", got)
	}
}

func TestCCASingleBlock(t *testing.T) {
	src, err := FromString(`
		......
		.###..
		.###..
		......
	`)
	if err != nil {
		t.Fatal(err)
	}
	comps := ConnectedComponents(src)
	if len(comps) != 1 {
		t.Fatalf("got %d components, want 1", len(comps))
	}
	if comps[0].Size != 6 {
		t.Errorf("size = %d, want 6", comps[0].Size)
	}
	if comps[0].Box != geometry.NewBox(1, 1, 3, 2) {
		t.Errorf("box = %v", comps[0].Box)
	}
}

func TestCCATwoComponents(t *testing.T) {
	src, err := FromString(`
		##....##
		##....##
		........
	`)
	if err != nil {
		t.Fatal(err)
	}
	comps := ConnectedComponents(src)
	if len(comps) != 2 {
		t.Fatalf("got %d components, want 2", len(comps))
	}
	for _, c := range comps {
		if c.Size != 4 {
			t.Errorf("component size = %d, want 4", c.Size)
		}
	}
	// Equal sizes: sorted by X.
	if comps[0].Box.X != 0 || comps[1].Box.X != 6 {
		t.Errorf("tie-break order wrong: %v", comps)
	}
}

func TestCCADiagonalConnectivity(t *testing.T) {
	// 8-connectivity joins diagonal pixels into one component.
	src, err := FromString(`
		#..
		.#.
		..#
	`)
	if err != nil {
		t.Fatal(err)
	}
	comps := ConnectedComponents(src)
	if len(comps) != 1 {
		t.Fatalf("diagonal chain should be one 8-connected component, got %d", len(comps))
	}
	if comps[0].Size != 3 {
		t.Errorf("size = %d, want 3", comps[0].Size)
	}
}

func TestCCAUShapeMergesLabels(t *testing.T) {
	// A U shape forces two provisional labels that must union at the bottom.
	src, err := FromString(`
		#.#
		#.#
		###
	`)
	if err != nil {
		t.Fatal(err)
	}
	comps := ConnectedComponents(src)
	if len(comps) != 1 {
		t.Fatalf("U shape should be one component, got %d", len(comps))
	}
	if comps[0].Size != 7 {
		t.Errorf("size = %d, want 7", comps[0].Size)
	}
	if comps[0].Box != geometry.NewBox(0, 0, 3, 3) {
		t.Errorf("box = %v", comps[0].Box)
	}
}

func TestCCASortedBySize(t *testing.T) {
	src, err := FromString(`
		####...#
		####....
		........
	`)
	if err != nil {
		t.Fatal(err)
	}
	comps := ConnectedComponents(src)
	if len(comps) != 2 {
		t.Fatalf("got %d components", len(comps))
	}
	if comps[0].Size < comps[1].Size {
		t.Error("components must be sorted largest first")
	}
}

func TestCCASizesSumProperty(t *testing.T) {
	// Component sizes must sum to the number of set pixels for any image.
	imgs := []string{
		"#.#.#\n.#.#.\n#.#.#",
		"#####\n#####\n#####",
		"#....\n.....\n....#",
		"##..#\n##..#\n....#",
	}
	for _, s := range imgs {
		b, err := FromString(s)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, c := range ConnectedComponents(b) {
			total += c.Size
		}
		if total != b.CountOnes() {
			t.Errorf("sizes sum %d != ones %d for\n%s", total, b.CountOnes(), b)
		}
	}
}

func TestDilateErode(t *testing.T) {
	src, err := FromString(`
		.....
		..#..
		.....
	`)
	if err != nil {
		t.Fatal(err)
	}
	d := Dilate(src, 1)
	if d.CountOnes() != 9 {
		t.Errorf("dilated single pixel should be 3x3=9, got %d", d.CountOnes())
	}
	e := Erode(d, 1)
	if e.CountOnes() != 1 || e.Get(2, 1) != 1 {
		t.Errorf("erode(dilate(x)) should restore single pixel:\n%s", e)
	}
}

func TestErodeRemovesThinFeatures(t *testing.T) {
	src, err := FromString(`
		.....
		#####
		.....
	`)
	if err != nil {
		t.Fatal(err)
	}
	if got := Erode(src, 1); got.CountOnes() != 0 {
		t.Errorf("1-pixel-thick line should be fully eroded, got %d pixels", got.CountOnes())
	}
}

func TestDilateClosesGap(t *testing.T) {
	src, err := FromString(`
		##.##
	`)
	if err != nil {
		t.Fatal(err)
	}
	if comps := ConnectedComponents(src); len(comps) != 2 {
		t.Fatalf("precondition: want 2 components, got %d", len(comps))
	}
	d := Dilate(src, 1)
	if comps := ConnectedComponents(d); len(comps) != 1 {
		t.Errorf("dilation should close the gap, got %d components", len(comps))
	}
}

func BenchmarkMedianFilterDAVIS(b *testing.B) {
	src := NewBitmap(240, 180)
	// ~10% density, like a busy traffic frame.
	for i := 0; i < len(src.Pix); i += 10 {
		src.Pix[i] = 1
	}
	dst := NewBitmap(240, 180)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := MedianFilter(dst, src, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDownsampleDAVIS(b *testing.B) {
	src := NewBitmap(240, 180)
	for i := 0; i < len(src.Pix); i += 10 {
		src.Pix[i] = 1
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Downsample(src, 6, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCCADAVIS(b *testing.B) {
	src := NewBitmap(240, 180)
	for i := 0; i < len(src.Pix); i += 10 {
		src.Pix[i] = 1
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ConnectedComponents(src)
	}
}
