package imgproc

import (
	"fmt"
	"math/bits"
	"strings"
)

// wordBits is the pixel width of one PackedBitmap storage word.
const wordBits = 64

// PackedBitmap is a dense binary image storing 64 pixels per uint64 word,
// the word-parallel counterpart of Bitmap. Rows are padded to a whole number
// of words (Stride words per row) and the padding bits beyond column W-1 are
// always zero — every kernel relies on that invariant, so anything that
// writes raw Words must preserve it (or call clearTail).
//
// The packed layout is the fast per-window path: median filtering,
// downsampling, histograms and connected components all reduce to shifts
// and math/bits.OnesCount64 over whole words. The byte-per-pixel Bitmap
// remains the paper's cost-model accounting surface and the differential
// test oracle.
type PackedBitmap struct {
	W, H   int
	Stride int // words per row: (W + 63) / 64
	Words  []uint64
}

// NewPackedBitmap returns a cleared W x H packed bitmap. It panics if either
// dimension is negative.
func NewPackedBitmap(w, h int) *PackedBitmap {
	if w < 0 || h < 0 {
		panic(fmt.Sprintf("imgproc: negative bitmap size %dx%d", w, h))
	}
	stride := (w + wordBits - 1) / wordBits
	return &PackedBitmap{W: w, H: h, Stride: stride, Words: make([]uint64, stride*h)}
}

// Resize reshapes the bitmap to w x h in place, reusing the backing array
// when it is large enough, and clears every pixel.
func (p *PackedBitmap) Resize(w, h int) {
	if w < 0 || h < 0 {
		panic(fmt.Sprintf("imgproc: negative bitmap size %dx%d", w, h))
	}
	stride := (w + wordBits - 1) / wordBits
	p.W, p.H, p.Stride = w, h, stride
	if cap(p.Words) < stride*h {
		p.Words = make([]uint64, stride*h)
		return
	}
	p.Words = p.Words[:stride*h]
	p.Clear()
}

// Clone returns a deep copy of the bitmap.
func (p *PackedBitmap) Clone() *PackedBitmap {
	np := &PackedBitmap{W: p.W, H: p.H, Stride: p.Stride, Words: make([]uint64, len(p.Words))}
	copy(np.Words, p.Words)
	return np
}

// Clear zeroes every pixel in place.
func (p *PackedBitmap) Clear() { clear(p.Words) }

// In reports whether (x, y) is inside the image.
func (p *PackedBitmap) In(x, y int) bool { return x >= 0 && x < p.W && y >= 0 && y < p.H }

// Row returns the words backing row y. The slice aliases the bitmap.
func (p *PackedBitmap) Row(y int) []uint64 { return p.Words[y*p.Stride : (y+1)*p.Stride] }

// tailMask returns the mask of valid bits in the last word of a row, or all
// ones when W is a multiple of 64.
func (p *PackedBitmap) tailMask() uint64 {
	if r := p.W & (wordBits - 1); r != 0 {
		return (uint64(1) << r) - 1
	}
	return ^uint64(0)
}

// clearTail re-zeroes the padding bits of every row, restoring the invariant
// after bulk word writes that may have spilled past column W-1.
func (p *PackedBitmap) clearTail() {
	if p.Stride == 0 || p.W&(wordBits-1) == 0 {
		return
	}
	mask := p.tailMask()
	for y := 0; y < p.H; y++ {
		p.Words[y*p.Stride+p.Stride-1] &= mask
	}
}

// Get returns 1 if pixel (x, y) is set, 0 otherwise. Out-of-range reads
// return 0, matching Bitmap.Get's border behaviour.
func (p *PackedBitmap) Get(x, y int) uint8 {
	if !p.In(x, y) {
		return 0
	}
	return uint8(p.Words[y*p.Stride+x>>6] >> (uint(x) & 63) & 1)
}

// Set sets pixel (x, y) to 1. Out-of-range writes are ignored.
func (p *PackedBitmap) Set(x, y int) {
	if p.In(x, y) {
		p.Words[y*p.Stride+x>>6] |= uint64(1) << (uint(x) & 63)
	}
}

// Unset clears pixel (x, y). Out-of-range writes are ignored.
func (p *PackedBitmap) Unset(x, y int) {
	if p.In(x, y) {
		p.Words[y*p.Stride+x>>6] &^= uint64(1) << (uint(x) & 63)
	}
}

// CountOnes returns the number of set pixels via word popcounts,
// dispatched to the vector popcount kernel when one is active.
func (p *PackedBitmap) CountOnes() int {
	return kernels().popcntWords(p.Words)
}

// Density returns the fraction of set pixels.
func (p *PackedBitmap) Density() float64 {
	if p.W*p.H == 0 {
		return 0
	}
	return float64(p.CountOnes()) / float64(p.W*p.H)
}

// Equal reports whether two packed bitmaps have identical size and pixels.
func (p *PackedBitmap) Equal(o *PackedBitmap) bool {
	if p.W != o.W || p.H != o.H {
		return false
	}
	for i := range p.Words {
		if p.Words[i] != o.Words[i] {
			return false
		}
	}
	return true
}

// CountRange returns the number of set pixels in the rectangle
// [x0, x1) x [y0, y1), clamped to the image — the popcount form of the
// RPN's validity-check pixel count.
func (p *PackedBitmap) CountRange(x0, y0, x1, y1 int) int {
	x0, y0, x1, y1 = p.clampRect(x0, y0, x1, y1)
	if x0 >= x1 || y0 >= y1 {
		return 0
	}
	n := 0
	for y := y0; y < y1; y++ {
		n += popcountRange(p.Row(y), x0, x1)
	}
	return n
}

// TightBounds returns the bounding box [tx0, tx1) x [ty0, ty1) of the set
// pixels inside the clamped rectangle [x0, x1) x [y0, y1); ok is false when
// the rectangle contains no set pixels.
func (p *PackedBitmap) TightBounds(x0, y0, x1, y1 int) (tx0, ty0, tx1, ty1 int, ok bool) {
	x0, y0, x1, y1 = p.clampRect(x0, y0, x1, y1)
	if x0 >= x1 || y0 >= y1 {
		return 0, 0, 0, 0, false
	}
	tx0, tx1 = x1, x0
	ty0, ty1 = y1, y0
	for y := y0; y < y1; y++ {
		lo, hi, rowOK := rowBitBounds(p.Row(y), x0, x1)
		if !rowOK {
			continue
		}
		if lo < tx0 {
			tx0 = lo
		}
		if hi > tx1 {
			tx1 = hi
		}
		if y < ty0 {
			ty0 = y
		}
		ty1 = y + 1
		ok = true
	}
	if !ok {
		return 0, 0, 0, 0, false
	}
	return tx0, ty0, tx1, ty1, true
}

// ClearRange zeroes every pixel in the rectangle [x0, x1) x [y0, y1),
// clamped to the image, with word-masked stores — the packed form of the
// region-of-exclusion blanking.
func (p *PackedBitmap) ClearRange(x0, y0, x1, y1 int) {
	x0, y0, x1, y1 = p.clampRect(x0, y0, x1, y1)
	if x0 >= x1 || y0 >= y1 {
		return
	}
	wa, wb := x0>>6, (x1-1)>>6
	loMask := ^uint64(0) << (uint(x0) & 63)
	hiMask := ^uint64(0) >> (63 - (uint(x1-1) & 63))
	for y := y0; y < y1; y++ {
		row := p.Row(y)
		if wa == wb {
			row[wa] &^= loMask & hiMask
			continue
		}
		row[wa] &^= loMask
		for k := wa + 1; k < wb; k++ {
			row[k] = 0
		}
		row[wb] &^= hiMask
	}
}

func (p *PackedBitmap) clampRect(x0, y0, x1, y1 int) (int, int, int, int) {
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x1 > p.W {
		x1 = p.W
	}
	if y1 > p.H {
		y1 = p.H
	}
	return x0, y0, x1, y1
}

// popcountRange counts the set bits of a packed row in bit positions [a, b).
// The caller guarantees 0 <= a < b <= 64*len(row).
func popcountRange(row []uint64, a, b int) int {
	wa, wb := a>>6, (b-1)>>6
	loMask := ^uint64(0) << (uint(a) & 63)
	hiMask := ^uint64(0) >> (63 - (uint(b-1) & 63))
	if wa == wb {
		return bits.OnesCount64(row[wa] & loMask & hiMask)
	}
	n := bits.OnesCount64(row[wa] & loMask)
	if wb-wa > 16 {
		// Wide interior: hand the unmasked words to the dispatched vector
		// popcount. Narrow ranges (the common RPN validity checks) stay on
		// the scalar loop — below that size the call costs more than it
		// saves.
		n += kernels().popcntWords(row[wa+1 : wb])
	} else {
		for k := wa + 1; k < wb; k++ {
			n += bits.OnesCount64(row[k])
		}
	}
	return n + bits.OnesCount64(row[wb]&hiMask)
}

// rowBitBounds returns the first and one-past-last set bit positions of a
// packed row within [a, b); ok is false when the range has no set bits.
func rowBitBounds(row []uint64, a, b int) (lo, hi int, ok bool) {
	wa, wb := a>>6, (b-1)>>6
	loMask := ^uint64(0) << (uint(a) & 63)
	hiMask := ^uint64(0) >> (63 - (uint(b-1) & 63))
	lo = -1
	for k := wa; k <= wb; k++ {
		w := row[k]
		if k == wa {
			w &= loMask
		}
		if k == wb {
			w &= hiMask
		}
		if w == 0 {
			continue
		}
		if lo < 0 {
			lo = k<<6 + bits.TrailingZeros64(w)
		}
		hi = k<<6 + 64 - bits.LeadingZeros64(w)
	}
	if lo < 0 {
		return 0, 0, false
	}
	return lo, hi, true
}

// PackBitmap packs a byte-per-pixel bitmap into dst, which is resized
// (reusing its backing array when large enough) and returned; pass nil to
// allocate.
func PackBitmap(dst *PackedBitmap, src *Bitmap) *PackedBitmap {
	if dst == nil {
		dst = NewPackedBitmap(src.W, src.H)
	} else {
		dst.Resize(src.W, src.H)
	}
	for y := 0; y < src.H; y++ {
		row := src.Pix[y*src.W : (y+1)*src.W]
		out := dst.Row(y)
		for x, px := range row {
			if px != 0 {
				out[x>>6] |= uint64(1) << (uint(x) & 63)
			}
		}
	}
	return dst
}

// Unpack expands the packed bitmap into dst, which is resized (reusing its
// backing array when large enough) and returned; pass nil to allocate.
func (p *PackedBitmap) Unpack(dst *Bitmap) *Bitmap {
	if dst == nil {
		dst = NewBitmap(p.W, p.H)
	} else {
		dst.W, dst.H = p.W, p.H
		if cap(dst.Pix) < p.W*p.H {
			dst.Pix = make([]uint8, p.W*p.H)
		} else {
			dst.Pix = dst.Pix[:p.W*p.H]
			dst.Clear()
		}
	}
	for y := 0; y < p.H; y++ {
		out := dst.Pix[y*p.W : (y+1)*p.W]
		for k, w := range p.Row(y) {
			base := k << 6
			for w != 0 {
				b := bits.TrailingZeros64(w)
				out[base+b] = 1
				w &= w - 1
			}
		}
	}
	return dst
}

// String renders the bitmap like Bitmap.String: rows of '.' and '#' with row
// 0 at the bottom. Debugging and small test fixtures only.
func (p *PackedBitmap) String() string {
	var sb strings.Builder
	sb.Grow((p.W + 1) * p.H)
	for y := p.H - 1; y >= 0; y-- {
		for x := 0; x < p.W; x++ {
			if p.Get(x, y) != 0 {
				sb.WriteByte('#')
			} else {
				sb.WriteByte('.')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
