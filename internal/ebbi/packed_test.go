package ebbi

import (
	"math/rand"
	"testing"

	"ebbiot/internal/events"
	"ebbiot/internal/imgproc"
)

// TestPackedBuilderParity drives the byte and packed builders through the
// same window sequence — including empty windows, which exercise the
// deferred clear — and asserts every frame is bit-identical.
func TestPackedBuilderParity(t *testing.T) {
	cfg := DefaultConfig()
	ref, err := NewBuilder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Release()
	fast, err := NewPackedBuilder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer fast.Release()

	rng := rand.New(rand.NewSource(7))
	for frame := 0; frame < 6; frame++ {
		var evs []events.Event
		if frame != 2 { // frame 2 stays empty
			n := rng.Intn(400)
			for i := 0; i < n; i++ {
				evs = append(evs, events.Event{
					// Out-of-range coordinates on some events: both paths
					// must ignore them identically.
					X: int16(rng.Intn(cfg.Res.A+20) - 10),
					Y: int16(rng.Intn(cfg.Res.B+20) - 10),
				})
			}
		}
		ref.Accumulate(evs)
		fast.Accumulate(evs)
		rf, err := ref.Finish()
		if err != nil {
			t.Fatal(err)
		}
		pf, err := fast.Finish()
		if err != nil {
			t.Fatal(err)
		}
		if rf.Index != pf.Index || rf.Start != pf.Start || rf.End != pf.End || rf.EventCount != pf.EventCount {
			t.Fatalf("frame %d: metadata mismatch: byte {%d %d %d %d} packed {%d %d %d %d}",
				frame, rf.Index, rf.Start, rf.End, rf.EventCount, pf.Index, pf.Start, pf.End, pf.EventCount)
		}
		if !pf.Raw.Unpack(nil).Equal(rf.Raw) {
			t.Fatalf("frame %d: raw EBBI mismatch", frame)
		}
		if !pf.Filtered.Unpack(nil).Equal(rf.Filtered) {
			t.Fatalf("frame %d: filtered EBBI mismatch", frame)
		}
	}
}

// TestPackedBuilderActiveRegion asserts the frame's active region is a
// superset of the set pixels in both the raw and the filtered EBBI, that
// its coverage tracks sparsity (a localized window dirties a small
// fraction), and that an empty window yields an empty region.
func TestPackedBuilderActiveRegion(t *testing.T) {
	cfg := DefaultConfig()
	b, err := NewPackedBuilder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Release()

	// A dense 20x20 patch plus one far-away pixel.
	var evs []events.Event
	for y := 40; y < 60; y++ {
		for x := 100; x < 120; x++ {
			evs = append(evs, events.Event{X: int16(x), Y: int16(y)})
		}
	}
	evs = append(evs, events.Event{X: 5, Y: 170})
	b.Accumulate(evs)
	f, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	for _, img := range []*struct {
		name string
		bm   *imgproc.PackedBitmap
	}{{"raw", f.Raw}, {"filtered", f.Filtered}} {
		for y := 0; y < img.bm.H; y++ {
			for k, w := range img.bm.Row(y) {
				if w != 0 && f.Active.RowMask(y)&(1<<uint(k)) == 0 {
					t.Fatalf("%s: set pixels in row %d word %d outside active region", img.name, y, k)
				}
			}
		}
	}
	if cov, total := f.Active.CoverageWords(), f.Active.FrameWords(); cov == 0 || cov*4 > total {
		t.Fatalf("active coverage %d/%d not sparse", cov, total)
	}

	// Empty window: the region must reset along with the deferred clear.
	b.Accumulate(nil)
	f, err = b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if !f.Active.Empty() {
		y0, y1 := f.Active.RowSpan()
		t.Fatalf("empty window left active span [%d,%d)", y0, y1)
	}
	if f.Raw.CountOnes() != 0 || f.Filtered.CountOnes() != 0 {
		t.Fatal("empty window left pixels set")
	}
}

// TestPackedBuilderReconfigureResetsActive is the mid-run Reconfigure
// differential: after Reconfigure, the builder — including its
// active-region state — must behave bit-identically to a freshly built
// one, even though the previous window dirtied a completely different part
// of the frame.
func TestPackedBuilderReconfigureResetsActive(t *testing.T) {
	cfg := DefaultConfig()
	b, err := NewPackedBuilder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Release()

	// Dirty the top-left corner, finish, then reconfigure mid-run.
	var first []events.Event
	for i := 0; i < 300; i++ {
		first = append(first, events.Event{X: int16(i % 30), Y: int16(i % 20)})
	}
	b.Accumulate(first)
	if _, err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.MedianP = 5
	if err := b.Reconfigure(cfg2); err != nil {
		t.Fatal(err)
	}

	fresh, err := NewPackedBuilder(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Release()

	// Drive both through the same windows (bottom-right activity, then an
	// empty window): frames, regions and clocks must match exactly.
	rng := rand.New(rand.NewSource(3))
	for frame := 0; frame < 3; frame++ {
		var evs []events.Event
		if frame != 1 {
			for i := 0; i < 400; i++ {
				evs = append(evs, events.Event{X: int16(150 + rng.Intn(80)), Y: int16(100 + rng.Intn(70))})
			}
		}
		b.Accumulate(evs)
		fresh.Accumulate(evs)
		got, err := b.Finish()
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.Finish()
		if err != nil {
			t.Fatal(err)
		}
		if got.Index != want.Index || got.EventCount != want.EventCount {
			t.Fatalf("frame %d: clock mismatch: got {%d %d} want {%d %d}",
				frame, got.Index, got.EventCount, want.Index, want.EventCount)
		}
		if !got.Raw.Equal(want.Raw) || !got.Filtered.Equal(want.Filtered) {
			t.Fatalf("frame %d: reconfigured builder diverges from fresh builder", frame)
		}
		gy0, gy1 := got.Active.RowSpan()
		wy0, wy1 := want.Active.RowSpan()
		if gy0 != wy0 || gy1 != wy1 {
			t.Fatalf("frame %d: active span [%d,%d) != fresh [%d,%d)", frame, gy0, gy1, wy0, wy1)
		}
		for y := gy0; y < gy1; y++ {
			if got.Active.RowMask(y) != want.Active.RowMask(y) {
				t.Fatalf("frame %d row %d: active mask %x != fresh %x",
					frame, y, got.Active.RowMask(y), want.Active.RowMask(y))
			}
		}
	}
}

func TestPackedBuilderValidates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MedianP = 2
	if _, err := NewPackedBuilder(cfg); err == nil {
		t.Fatal("even median patch size not rejected")
	}
}

// BenchmarkPackedAccumulateFinish is BenchmarkAccumulateFinish on the
// packed fast path: the same ~typical busy frame through the fused
// accumulate + word-parallel median chain.
func BenchmarkPackedAccumulateFinish(b *testing.B) {
	builder, err := NewPackedBuilder(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	defer builder.Release()
	evs := make([]events.Event, 2400) // ~typical busy frame
	for i := range evs {
		evs[i] = events.Event{X: int16(i % 240), Y: int16((i / 240) % 180), T: int64(i), P: events.On}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		builder.Accumulate(evs)
		if _, err := builder.Finish(); err != nil {
			b.Fatal(err)
		}
	}
}
