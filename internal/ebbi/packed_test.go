package ebbi

import (
	"math/rand"
	"testing"

	"ebbiot/internal/events"
)

// TestPackedBuilderParity drives the byte and packed builders through the
// same window sequence — including empty windows, which exercise the
// deferred clear — and asserts every frame is bit-identical.
func TestPackedBuilderParity(t *testing.T) {
	cfg := DefaultConfig()
	ref, err := NewBuilder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Release()
	fast, err := NewPackedBuilder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer fast.Release()

	rng := rand.New(rand.NewSource(7))
	for frame := 0; frame < 6; frame++ {
		var evs []events.Event
		if frame != 2 { // frame 2 stays empty
			n := rng.Intn(400)
			for i := 0; i < n; i++ {
				evs = append(evs, events.Event{
					// Out-of-range coordinates on some events: both paths
					// must ignore them identically.
					X: int16(rng.Intn(cfg.Res.A+20) - 10),
					Y: int16(rng.Intn(cfg.Res.B+20) - 10),
				})
			}
		}
		ref.Accumulate(evs)
		fast.Accumulate(evs)
		rf, err := ref.Finish()
		if err != nil {
			t.Fatal(err)
		}
		pf, err := fast.Finish()
		if err != nil {
			t.Fatal(err)
		}
		if rf.Index != pf.Index || rf.Start != pf.Start || rf.End != pf.End || rf.EventCount != pf.EventCount {
			t.Fatalf("frame %d: metadata mismatch: byte {%d %d %d %d} packed {%d %d %d %d}",
				frame, rf.Index, rf.Start, rf.End, rf.EventCount, pf.Index, pf.Start, pf.End, pf.EventCount)
		}
		if !pf.Raw.Unpack(nil).Equal(rf.Raw) {
			t.Fatalf("frame %d: raw EBBI mismatch", frame)
		}
		if !pf.Filtered.Unpack(nil).Equal(rf.Filtered) {
			t.Fatalf("frame %d: filtered EBBI mismatch", frame)
		}
	}
}

func TestPackedBuilderValidates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MedianP = 2
	if _, err := NewPackedBuilder(cfg); err == nil {
		t.Fatal("even median patch size not rejected")
	}
}

// BenchmarkPackedAccumulateFinish is BenchmarkAccumulateFinish on the
// packed fast path: the same ~typical busy frame through the fused
// accumulate + word-parallel median chain.
func BenchmarkPackedAccumulateFinish(b *testing.B) {
	builder, err := NewPackedBuilder(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	defer builder.Release()
	evs := make([]events.Event, 2400) // ~typical busy frame
	for i := range evs {
		evs[i] = events.Event{X: int16(i % 240), Y: int16((i / 240) % 180), T: int64(i), P: events.On}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		builder.Accumulate(evs)
		if _, err := builder.Finish(); err != nil {
			b.Fatal(err)
		}
	}
}
