// Package ebbi implements event-based binary image generation, the first
// stage of the EBBIOT pipeline (Section II-A of the paper).
//
// Instead of processing each event as it arrives, the processor sleeps and
// wakes on a timer interrupt every tF (66 ms in the paper). The sensor's
// pixels latch their event bits until read out, so the readout at each
// interrupt is already a binary image of everything that happened during
// the sleep — the sensor doubles as the frame memory. The processor then
// runs a p x p binary median filter to strip background-activity noise.
//
// Frame memory is two A x B binary frames (Eq. 1): the raw EBBI, kept for a
// possible later classification stage, and the filtered frame consumed by
// the region-proposal network.
package ebbi

import (
	"fmt"

	"ebbiot/internal/events"
	"ebbiot/internal/imgproc"
)

// Config parameterises the EBBI stage.
type Config struct {
	Res events.Resolution
	// FrameUS is the frame duration tF in microseconds; the paper uses
	// 66000 (about 15 Hz).
	FrameUS int64
	// MedianP is the median-filter patch size p; the paper uses 3.
	MedianP int
}

// DefaultConfig returns the paper's parameters: DAVIS240, tF = 66 ms, p = 3.
func DefaultConfig() Config {
	return Config{Res: events.DAVIS240, FrameUS: 66_000, MedianP: 3}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Res.Validate(); err != nil {
		return err
	}
	if c.FrameUS <= 0 {
		return fmt.Errorf("ebbi: frame duration must be positive, got %d", c.FrameUS)
	}
	if c.MedianP < 1 || c.MedianP%2 == 0 {
		return fmt.Errorf("ebbi: median patch size must be odd and positive, got %d", c.MedianP)
	}
	return nil
}

// Frame is the output of one readout interrupt.
type Frame struct {
	// Index is the frame sequence number (Start / FrameUS).
	Index int
	// Start, End bound the accumulation window [Start, End) in microseconds.
	Start, End int64
	// Raw is the unfiltered EBBI, kept per Eq. 1 for later classification.
	Raw *imgproc.Bitmap
	// Filtered is the median-filtered EBBI consumed by the RPN.
	Filtered *imgproc.Bitmap
	// EventCount is the number of events accumulated (n in Eq. 2's terms,
	// before collapsing to binary).
	EventCount int
}

// Builder accumulates events into frames. It owns a double buffer (raw +
// filtered) that is reused across frames, so per-frame allocation is zero —
// the embedded discipline the paper's memory model assumes.
type Builder struct {
	cfg      Config
	raw      *imgproc.Bitmap
	filtered *imgproc.Bitmap
	// frameIdx is the index of the frame currently accumulating.
	frameIdx int
	// count is the number of events accumulated into the current frame.
	count int
	// needsClear defers zeroing the raw buffer until the next frame starts,
	// so the Frame returned by Finish stays readable until then.
	needsClear bool
}

// NewBuilder returns a Builder for the given configuration. The double
// buffer comes from the shared bitmap pool, so sensor streams that build and
// discard whole pipelines recycle their EBBI frames; call Release when the
// builder is no longer needed.
func NewBuilder(cfg Config) (*Builder, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Builder{
		cfg:      cfg,
		raw:      imgproc.GetBitmap(cfg.Res.A, cfg.Res.B),
		filtered: imgproc.GetBitmap(cfg.Res.A, cfg.Res.B),
	}, nil
}

// Release returns the builder's double buffer to the bitmap pool. The
// builder — and any Frame it has returned, which aliases those buffers —
// must not be used afterwards.
func (b *Builder) Release() {
	imgproc.PutBitmap(b.raw)
	imgproc.PutBitmap(b.filtered)
	b.raw, b.filtered = nil, nil
}

// Config returns the builder's configuration.
func (b *Builder) Config() Config { return b.cfg }

// Reconfigure rebuilds the builder in place for a new configuration — the
// live-reconfiguration hook behind core's ApplyParams. The double buffer is
// reused when the sensor resolution is unchanged (re-pooled otherwise) and
// all accumulation state resets, so the builder afterwards is
// indistinguishable from a fresh NewBuilder(cfg). On error the builder is
// left untouched.
func (b *Builder) Reconfigure(cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if cfg.Res != b.cfg.Res {
		imgproc.PutBitmap(b.raw)
		imgproc.PutBitmap(b.filtered)
		b.raw = imgproc.GetBitmap(cfg.Res.A, cfg.Res.B)
		b.filtered = imgproc.GetBitmap(cfg.Res.A, cfg.Res.B)
	} else {
		b.raw.Clear()
		b.filtered.Clear()
	}
	b.cfg = cfg
	b.frameIdx = 0
	b.count = 0
	b.needsClear = false
	return nil
}

// Accumulate latches a batch of events into the current frame. Events
// outside the sensor array are ignored; polarity is ignored (the EBBI is
// binary). Events must belong to the current frame window; the caller
// (typically a Window iterator or the streaming AEDAT reader) is
// responsible for slicing.
func (b *Builder) Accumulate(evs []events.Event) {
	if b.needsClear {
		b.raw.Clear()
		b.needsClear = false
	}
	for _, e := range evs {
		x, y := int(e.X), int(e.Y)
		if x >= 0 && x < b.cfg.Res.A && y >= 0 && y < b.cfg.Res.B {
			b.raw.Pix[y*b.cfg.Res.A+x] = 1
			b.count++
		}
	}
}

// Finish runs the median filter and returns the completed frame, then
// resets the accumulator for the next frame window. The returned frame's
// bitmaps alias the builder's double buffer and are valid only until the
// next Finish call; callers that need to retain a frame must Clone.
func (b *Builder) Finish() (Frame, error) {
	if b.needsClear {
		// No events arrived this frame; the buffer still holds the previous
		// frame's image and must be cleared before filtering.
		b.raw.Clear()
		b.needsClear = false
	}
	if err := imgproc.MedianFilter(b.filtered, b.raw, b.cfg.MedianP); err != nil {
		return Frame{}, fmt.Errorf("ebbi: median filter: %w", err)
	}
	f := Frame{
		Index:      b.frameIdx,
		Start:      int64(b.frameIdx) * b.cfg.FrameUS,
		End:        int64(b.frameIdx+1) * b.cfg.FrameUS,
		Raw:        b.raw,
		Filtered:   b.filtered,
		EventCount: b.count,
	}
	b.frameIdx++
	b.count = 0
	b.needsClear = true
	return f, nil
}

// Pending returns the number of in-array events accumulated into the
// current (unfinished) frame. It mirrors PackedBuilder.Pending so the skip
// decision is identical on both representations.
func (b *Builder) Pending() int { return b.count }

// SkipWindow advances the frame clock without filtering, discarding the
// accumulated raw bits via the deferred clear. See
// PackedBuilder.SkipWindow for the losslessness argument.
func (b *Builder) SkipWindow() {
	b.frameIdx++
	b.count = 0
	b.needsClear = true
}

// BuildAll converts a sorted event stream into frames, invoking yield for
// each. The frame passed to yield aliases internal buffers; copy if kept.
// This is the whole-recording convenience path; streaming pipelines drive
// Accumulate/Finish themselves.
func BuildAll(cfg Config, evs []events.Event, yield func(Frame) error) error {
	b, err := NewBuilder(cfg)
	if err != nil {
		return err
	}
	ws, err := events.Windows(evs, cfg.FrameUS)
	if err != nil {
		return err
	}
	for _, w := range ws {
		b.Accumulate(w.Events)
		f, err := b.Finish()
		if err != nil {
			return err
		}
		if err := yield(f); err != nil {
			return err
		}
	}
	return nil
}

// DutyCycle models the interrupt-driven operation of Fig. 2: the sensor is
// always on, the processor wakes every tF, spends activeUS processing the
// frame, and sleeps the rest. It reports the achievable sleep fraction and
// average power, quantifying the "heavy duty cycling" the EBBI scheme
// enables versus event-interrupt operation.
type DutyCycle struct {
	// FrameUS is the wakeup period tF.
	FrameUS int64
	// ActivePowerMW and SleepPowerMW are the processor's power draws.
	ActivePowerMW, SleepPowerMW float64
}

// Report summarises a duty-cycle analysis.
type Report struct {
	// SleepFraction is the fraction of each period spent asleep.
	SleepFraction float64
	// AvgPowerMW is the duty-cycled average processor power.
	AvgPowerMW float64
	// AlwaysOnPowerMW is the comparison power with no sleeping (the
	// event-interrupt mode where noise keeps the processor awake).
	AlwaysOnPowerMW float64
	// Savings is AlwaysOnPowerMW / AvgPowerMW.
	Savings float64
}

// Analyze computes the report for a given per-frame processing time.
func (d DutyCycle) Analyze(activeUS int64) (Report, error) {
	if d.FrameUS <= 0 {
		return Report{}, fmt.Errorf("ebbi: frame period must be positive, got %d", d.FrameUS)
	}
	if activeUS < 0 {
		return Report{}, fmt.Errorf("ebbi: negative active time %d", activeUS)
	}
	if activeUS > d.FrameUS {
		activeUS = d.FrameUS // processor saturated: no sleep at all
	}
	sleep := float64(d.FrameUS-activeUS) / float64(d.FrameUS)
	avg := d.ActivePowerMW*(1-sleep) + d.SleepPowerMW*sleep
	rep := Report{
		SleepFraction:   sleep,
		AvgPowerMW:      avg,
		AlwaysOnPowerMW: d.ActivePowerMW,
	}
	if avg > 0 {
		rep.Savings = d.ActivePowerMW / avg
	}
	return rep, nil
}
