package ebbi

import (
	"math"
	"testing"

	"ebbiot/internal/events"
)

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		cfg     Config
		wantErr bool
	}{
		{"default ok", DefaultConfig(), false},
		{"zero frame", Config{Res: events.DAVIS240, FrameUS: 0, MedianP: 3}, true},
		{"even median", Config{Res: events.DAVIS240, FrameUS: 66_000, MedianP: 2}, true},
		{"bad res", Config{Res: events.Resolution{}, FrameUS: 66_000, MedianP: 3}, true},
		{"p1 ok", Config{Res: events.DAVIS240, FrameUS: 66_000, MedianP: 1}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.cfg.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestAccumulateBinarizes(t *testing.T) {
	b, err := NewBuilder(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Multiple events at one pixel latch a single bit, polarity ignored.
	b.Accumulate([]events.Event{
		{X: 10, Y: 20, T: 0, P: events.On},
		{X: 10, Y: 20, T: 10, P: events.Off},
		{X: 10, Y: 20, T: 20, P: events.On},
	})
	f, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if f.Raw.CountOnes() != 1 {
		t.Errorf("raw frame has %d set pixels, want 1", f.Raw.CountOnes())
	}
	if f.EventCount != 3 {
		t.Errorf("EventCount = %d, want 3", f.EventCount)
	}
}

func TestAccumulateIgnoresOutOfRange(t *testing.T) {
	b, err := NewBuilder(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b.Accumulate([]events.Event{
		{X: -1, Y: 0, T: 0, P: events.On},
		{X: 240, Y: 0, T: 0, P: events.On},
		{X: 0, Y: 180, T: 0, P: events.On},
	})
	f, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if f.Raw.CountOnes() != 0 || f.EventCount != 0 {
		t.Error("out-of-range events should be dropped")
	}
}

func TestFinishResetsAndNumbersFrames(t *testing.T) {
	b, err := NewBuilder(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b.Accumulate([]events.Event{{X: 5, Y: 5, T: 0, P: events.On}})
	f0, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if f0.Index != 0 || f0.Start != 0 || f0.End != 66_000 {
		t.Errorf("frame 0 header: %+v", f0)
	}
	f1, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if f1.Index != 1 || f1.Start != 66_000 {
		t.Errorf("frame 1 header: %+v", f1)
	}
	if f1.Raw.CountOnes() != 0 {
		t.Error("accumulator must reset between frames")
	}
}

func TestMedianFilterApplied(t *testing.T) {
	cfg := DefaultConfig()
	b, err := NewBuilder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// An isolated pixel (noise) plus a dense 4x4 block (object).
	var evs []events.Event
	evs = append(evs, events.Event{X: 200, Y: 100, T: 0, P: events.On})
	for y := 50; y < 54; y++ {
		for x := 60; x < 64; x++ {
			evs = append(evs, events.Event{X: int16(x), Y: int16(y), T: 0, P: events.On})
		}
	}
	b.Accumulate(evs)
	f, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if f.Filtered.Get(200, 100) != 0 {
		t.Error("isolated noise pixel survived median filter")
	}
	if f.Filtered.Get(61, 51) != 1 {
		t.Error("object interior removed by median filter")
	}
	if f.Raw.Get(200, 100) != 1 {
		t.Error("raw frame must keep the unfiltered image")
	}
}

func TestBuildAll(t *testing.T) {
	evs := []events.Event{
		{X: 1, Y: 1, T: 0, P: events.On},
		{X: 2, Y: 2, T: 66_000, P: events.On},  // second frame
		{X: 3, Y: 3, T: 150_000, P: events.On}, // third frame
	}
	var frames []int
	var counts []int
	err := BuildAll(DefaultConfig(), evs, func(f Frame) error {
		frames = append(frames, f.Index)
		counts = append(counts, f.EventCount)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 3 {
		t.Fatalf("got %d frames, want 3", len(frames))
	}
	for i, idx := range frames {
		if idx != i {
			t.Errorf("frame %d has index %d", i, idx)
		}
	}
	wantCounts := []int{1, 1, 1}
	for i, c := range counts {
		if c != wantCounts[i] {
			t.Errorf("frame %d count = %d", i, c)
		}
	}
}

func TestBuildAllUnsorted(t *testing.T) {
	evs := []events.Event{{T: 100}, {T: 50}}
	err := BuildAll(DefaultConfig(), evs, func(Frame) error { return nil })
	if err == nil {
		t.Error("unsorted stream should error")
	}
}

func TestDutyCycleAnalyze(t *testing.T) {
	d := DutyCycle{FrameUS: 66_000, ActivePowerMW: 100, SleepPowerMW: 1}
	// 6.6 ms active per 66 ms frame: 90% sleep.
	rep, err := d.Analyze(6600)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.SleepFraction-0.9) > 1e-9 {
		t.Errorf("SleepFraction = %v, want 0.9", rep.SleepFraction)
	}
	wantAvg := 100*0.1 + 1*0.9
	if math.Abs(rep.AvgPowerMW-wantAvg) > 1e-9 {
		t.Errorf("AvgPowerMW = %v, want %v", rep.AvgPowerMW, wantAvg)
	}
	if rep.Savings <= 1 {
		t.Errorf("Savings = %v, want > 1", rep.Savings)
	}
}

func TestDutyCycleSaturation(t *testing.T) {
	d := DutyCycle{FrameUS: 66_000, ActivePowerMW: 100, SleepPowerMW: 1}
	rep, err := d.Analyze(100_000) // active longer than the period
	if err != nil {
		t.Fatal(err)
	}
	if rep.SleepFraction != 0 {
		t.Errorf("saturated processor should never sleep, got %v", rep.SleepFraction)
	}
	if rep.AvgPowerMW != 100 {
		t.Errorf("saturated AvgPowerMW = %v", rep.AvgPowerMW)
	}
}

func TestDutyCycleErrors(t *testing.T) {
	if _, err := (DutyCycle{FrameUS: 0}).Analyze(10); err == nil {
		t.Error("zero period should error")
	}
	if _, err := (DutyCycle{FrameUS: 100}).Analyze(-1); err == nil {
		t.Error("negative active time should error")
	}
}

func BenchmarkAccumulateFinish(b *testing.B) {
	builder, err := NewBuilder(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	evs := make([]events.Event, 2400) // ~typical busy frame
	for i := range evs {
		evs[i] = events.Event{X: int16(i % 240), Y: int16((i / 240) % 180), T: int64(i), P: events.On}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		builder.Accumulate(evs)
		if _, err := builder.Finish(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestEventInterruptModelNoiseDominates(t *testing.T) {
	// The paper's argument: DAVIS240 background activity at ~1 Hz/pixel is
	// ~43 k events/s; waking per event with tens-of-us overhead leaves the
	// processor awake most of the time, while the EBBI mode sleeps >95%.
	ev := EventInterruptModel{
		EventRateHz:    43_200, // 1 Hz/px noise alone, empty scene
		WakeOverheadUS: 20,
		HandlingUS:     2,
		BatchSize:      1,
		ActivePowerMW:  100,
		SleepPowerMW:   0.5,
	}
	dc := DutyCycle{FrameUS: 66_000, ActivePowerMW: 100, SleepPowerMW: 0.5}
	ebbiRep, evRep, err := CompareModes(dc, 2000, ev)
	if err != nil {
		t.Fatal(err)
	}
	if evRep.SleepFraction > 0.1 {
		t.Errorf("event-interrupt sleep = %.2f, expected near-zero at noise rates", evRep.SleepFraction)
	}
	if ebbiRep.SleepFraction < 0.95 {
		t.Errorf("EBBI sleep = %.2f, want > 0.95", ebbiRep.SleepFraction)
	}
	if ebbiRep.AvgPowerMW >= evRep.AvgPowerMW {
		t.Errorf("EBBI power %.2f should undercut event-interrupt power %.2f",
			ebbiRep.AvgPowerMW, evRep.AvgPowerMW)
	}
}

func TestEventInterruptBatchingHelps(t *testing.T) {
	base := EventInterruptModel{
		EventRateHz:    43_200,
		WakeOverheadUS: 20,
		HandlingUS:     2,
		BatchSize:      1,
		ActivePowerMW:  100,
		SleepPowerMW:   0.5,
	}
	batched := base
	batched.BatchSize = 64
	a, err := base.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	b, err := batched.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if b.SleepFraction <= a.SleepFraction {
		t.Errorf("batching should increase sleep: %.3f vs %.3f", b.SleepFraction, a.SleepFraction)
	}
}

func TestEventInterruptSaturation(t *testing.T) {
	ev := EventInterruptModel{
		EventRateHz:    10_000_000, // absurd rate
		WakeOverheadUS: 20,
		HandlingUS:     2,
		ActivePowerMW:  100,
	}
	rep, err := ev.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if rep.SleepFraction != 0 {
		t.Errorf("saturated processor should never sleep: %v", rep.SleepFraction)
	}
}

func TestEventInterruptValidation(t *testing.T) {
	if _, err := (EventInterruptModel{EventRateHz: -1}).Analyze(); err == nil {
		t.Error("negative rate should error")
	}
	if _, err := (EventInterruptModel{WakeOverheadUS: -1}).Analyze(); err == nil {
		t.Error("negative overhead should error")
	}
	dc := DutyCycle{FrameUS: 0}
	if _, _, err := CompareModes(dc, 10, EventInterruptModel{}); err == nil {
		t.Error("bad duty cycle should propagate")
	}
}

func TestEventInterruptZeroRateSleepsFully(t *testing.T) {
	ev := EventInterruptModel{ActivePowerMW: 100, SleepPowerMW: 1}
	rep, err := ev.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if rep.SleepFraction != 1 {
		t.Errorf("no events -> full sleep, got %v", rep.SleepFraction)
	}
}
