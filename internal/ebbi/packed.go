package ebbi

import (
	"fmt"

	"ebbiot/internal/events"
	"ebbiot/internal/imgproc"
)

// PackedFrame is the output of one readout interrupt on the word-parallel
// fast path: the same frame clock and event count as Frame, with the raw and
// filtered EBBIs held packed (64 pixels per word) so the downstream RPN
// kernels consume them without ever materializing byte-per-pixel frames.
type PackedFrame struct {
	// Index is the frame sequence number (Start / FrameUS).
	Index int
	// Start, End bound the accumulation window [Start, End) in microseconds.
	Start, End int64
	// Raw is the unfiltered EBBI, kept per Eq. 1 for later classification.
	Raw *imgproc.PackedBitmap
	// Filtered is the median-filtered EBBI consumed by the RPN.
	Filtered *imgproc.PackedBitmap
	// Active is a conservative superset of the set pixels in both Raw and
	// Filtered (the accumulate-time dirty region dilated by the median
	// halo). Downstream kernels use it to skip dead frame area; it aliases
	// builder state with the same lifetime as the bitmaps.
	Active *imgproc.ActiveRegion
	// EventCount is the number of events accumulated.
	EventCount int
}

// PackedBuilder is Builder for the packed fast path: events are latched
// straight into the packed raw frame (one OR per event) and Finish runs the
// word-parallel median, so the whole per-window frame chain stays in the
// packed domain. Semantics — frame clock, deferred clearing, buffer
// aliasing, zero steady-state allocation — mirror Builder exactly, and
// differential tests hold the two paths bit-identical.
//
// On top of the packed frames the builder maintains an
// imgproc.ActiveRegion — a dirty row span plus per-row dirty word bitmaps,
// updated O(1) per accumulated event — which makes the whole downstream
// frame chain activity-bounded: Finish runs the median only over the dirty
// span plus its halo, the frame's deferred clear touches only dirty rows,
// and the returned PackedFrame carries the (halo-dilated) region for the
// RPN kernels.
type PackedBuilder struct {
	cfg      Config
	raw      *imgproc.PackedBitmap
	filtered *imgproc.PackedBitmap
	// active is the raw frame's dirty region for the accumulating window;
	// outActive is the halo-dilated copy handed out via PackedFrame.
	active    *imgproc.ActiveRegion
	outActive *imgproc.ActiveRegion
	frameIdx  int
	count     int
	// needsClear defers zeroing the raw buffer until the next frame starts,
	// so the PackedFrame returned by Finish stays readable until then.
	needsClear bool
}

// NewPackedBuilder returns a PackedBuilder for the given configuration. The
// double buffer comes from the shared packed pool; call Release when the
// builder is no longer needed.
func NewPackedBuilder(cfg Config) (*PackedBuilder, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &PackedBuilder{
		cfg:       cfg,
		raw:       imgproc.GetPacked(cfg.Res.A, cfg.Res.B),
		filtered:  imgproc.GetPacked(cfg.Res.A, cfg.Res.B),
		active:    imgproc.NewActiveRegion(cfg.Res.A, cfg.Res.B),
		outActive: imgproc.NewActiveRegion(cfg.Res.A, cfg.Res.B),
	}, nil
}

// Release returns the builder's double buffer to the packed pool. The
// builder — and any PackedFrame it has returned, which aliases those
// buffers — must not be used afterwards.
func (b *PackedBuilder) Release() {
	imgproc.PutPacked(b.raw)
	imgproc.PutPacked(b.filtered)
	b.raw, b.filtered = nil, nil
	b.active, b.outActive = nil, nil
}

// Config returns the builder's configuration.
func (b *PackedBuilder) Config() Config { return b.cfg }

// Reconfigure rebuilds the builder in place for a new configuration,
// mirroring Builder.Reconfigure: the packed double buffer is reused when
// the sensor resolution is unchanged, all accumulation state — including
// the active-region tracking — resets, and the result is indistinguishable
// from a fresh NewPackedBuilder(cfg). On error the builder is left
// untouched.
func (b *PackedBuilder) Reconfigure(cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if cfg.Res != b.cfg.Res {
		imgproc.PutPacked(b.raw)
		imgproc.PutPacked(b.filtered)
		b.raw = imgproc.GetPacked(cfg.Res.A, cfg.Res.B)
		b.filtered = imgproc.GetPacked(cfg.Res.A, cfg.Res.B)
		b.active.Resize(cfg.Res.A, cfg.Res.B)
		b.outActive.Resize(cfg.Res.A, cfg.Res.B)
	} else {
		b.raw.Clear()
		b.filtered.Clear()
		b.active.Reset()
		b.outActive.Reset()
	}
	b.cfg = cfg
	b.frameIdx = 0
	b.count = 0
	b.needsClear = false
	return nil
}

// Accumulate latches a batch of events into the current frame: each in-array
// event ORs one bit into the packed raw EBBI and marks its storage word in
// the active region. Events outside the sensor array are ignored; polarity
// is ignored (the EBBI is binary).
func (b *PackedBuilder) Accumulate(evs []events.Event) {
	if b.needsClear {
		b.clearFrame()
	}
	a, bb := b.cfg.Res.A, b.cfg.Res.B
	stride := b.raw.Stride
	words := b.raw.Words
	ar := b.active
	for _, e := range evs {
		x, y := int(e.X), int(e.Y)
		if x >= 0 && x < a && y >= 0 && y < bb {
			w := x >> 6
			words[y*stride+w] |= uint64(1) << (uint(x) & 63)
			ar.MarkWord(y, w)
			b.count++
		}
	}
}

// clearFrame performs the deferred between-frames clear: only the rows the
// previous window dirtied are zeroed (the rest of the buffer is already
// zero by the region invariant), then the region resets.
func (b *PackedBuilder) clearFrame() {
	if y0, y1 := b.active.RowSpan(); y1 > y0 {
		clear(b.raw.Words[y0*b.raw.Stride : y1*b.raw.Stride])
	}
	b.active.Reset()
	b.needsClear = false
}

// Finish runs the word-parallel median filter — bounded to the window's
// active region plus the filter halo — and returns the completed frame,
// then resets the accumulator for the next frame window. The returned
// frame's bitmaps and active region alias the builder's double buffer and
// are valid only until the next Finish call; callers that need to retain a
// frame must Clone.
func (b *PackedBuilder) Finish() (PackedFrame, error) {
	if b.needsClear {
		// No events arrived this frame; the buffer still holds the previous
		// frame's image and must be cleared before filtering.
		b.clearFrame()
	}
	if err := imgproc.PackedMedianFilterRange(b.filtered, b.raw, b.cfg.MedianP, b.active); err != nil {
		return PackedFrame{}, fmt.Errorf("ebbi: median filter: %w", err)
	}
	// The filtered image can only hold set pixels within p/2 of a raw set
	// pixel; the dilated region therefore covers Filtered (and trivially
	// Raw) for every downstream consumer.
	b.outActive.SetDilated(b.active, b.cfg.MedianP/2)
	f := PackedFrame{
		Index:      b.frameIdx,
		Start:      int64(b.frameIdx) * b.cfg.FrameUS,
		End:        int64(b.frameIdx+1) * b.cfg.FrameUS,
		Raw:        b.raw,
		Filtered:   b.filtered,
		Active:     b.outActive,
		EventCount: b.count,
	}
	b.frameIdx++
	b.count = 0
	b.needsClear = true
	return f, nil
}

// Pending returns the number of in-array events accumulated into the
// current (unfinished) frame — the quantity the near-empty window fast
// path thresholds on before deciding to Finish.
func (b *PackedBuilder) Pending() int { return b.count }

// SkipWindow advances the frame clock without filtering: the accumulated
// raw bits are discarded by the usual deferred clear and no frame is
// produced. When the pending event count is at or below floor(MedianP^2/2)
// the median output would be all-zero — no patch can exceed the threshold —
// so skipping is bit-identical to a Finish whose frame produces no
// proposals; callers use this to bypass the whole filter/proposal chain on
// near-empty windows.
func (b *PackedBuilder) SkipWindow() {
	b.frameIdx++
	b.count = 0
	b.needsClear = true
}
