package ebbi

import (
	"fmt"
	"math"
)

// EventInterruptModel quantifies the operating mode the paper argues
// against (Section II-A): the NVS raises a processor interrupt per event
// (or per small event batch). Because background-activity noise fires
// continuously across the array, the processor is woken at the noise rate
// even in an empty scene — "using the NVS events as interrupts would
// rarely allow the processor to sleep".
type EventInterruptModel struct {
	// EventRateHz is the total event rate presented to the processor
	// (noise + scene); an empty surveilled scene still sees
	// NoiseRatePerPixelHz * pixels.
	EventRateHz float64
	// WakeOverheadUS is the cost of each wake-up (context restore, PLL
	// settle); tens of microseconds on IoT-class MCUs.
	WakeOverheadUS float64
	// HandlingUS is the per-event processing time once awake.
	HandlingUS float64
	// BatchSize amortises a wake-up over this many events when the sensor
	// FIFO batches interrupts (1 = wake per event).
	BatchSize int
	// ActivePowerMW and SleepPowerMW mirror DutyCycle's power model.
	ActivePowerMW, SleepPowerMW float64
}

// Analyze returns the duty-cycle report of the event-interrupt mode: the
// awake fraction is the fraction of time spent in wake-up overhead plus
// event handling, saturating at 1 when the event rate outruns the
// processor.
func (m EventInterruptModel) Analyze() (Report, error) {
	if m.EventRateHz < 0 {
		return Report{}, fmt.Errorf("ebbi: negative event rate %v", m.EventRateHz)
	}
	if m.WakeOverheadUS < 0 || m.HandlingUS < 0 {
		return Report{}, fmt.Errorf("ebbi: negative timing parameters")
	}
	batch := float64(m.BatchSize)
	if batch < 1 {
		batch = 1
	}
	// Per second: EventRateHz/batch wake-ups, each costing WakeOverheadUS,
	// plus EventRateHz * HandlingUS of processing.
	busyUSPerSec := m.EventRateHz/batch*m.WakeOverheadUS + m.EventRateHz*m.HandlingUS
	awake := math.Min(busyUSPerSec/1e6, 1)
	sleep := 1 - awake
	avg := m.ActivePowerMW*awake + m.SleepPowerMW*sleep
	rep := Report{
		SleepFraction:   sleep,
		AvgPowerMW:      avg,
		AlwaysOnPowerMW: m.ActivePowerMW,
	}
	if avg > 0 {
		rep.Savings = m.ActivePowerMW / avg
	}
	return rep, nil
}

// CompareModes contrasts the timer-interrupt EBBI mode with the
// event-interrupt mode for the same sensor noise environment, returning
// (ebbiReport, eventReport). The comparison quantifies the paper's Fig. 2
// argument: at realistic noise rates the event-interrupt processor spends
// most of its time awake while the EBBI processor sleeps through all of it.
func CompareModes(dc DutyCycle, activeUS int64, ev EventInterruptModel) (Report, Report, error) {
	ebbiRep, err := dc.Analyze(activeUS)
	if err != nil {
		return Report{}, Report{}, err
	}
	evRep, err := ev.Analyze()
	if err != nil {
		return Report{}, Report{}, err
	}
	return ebbiRep, evRep, nil
}
