package matrix

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func almostEq(t *testing.T, got, want *Mat, tol float64) {
	t.Helper()
	d, err := got.MaxAbsDiff(want)
	if err != nil {
		t.Fatal(err)
	}
	if d > tol {
		t.Errorf("matrices differ by %v:\ngot\n%swant\n%s", d, got, want)
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0, 3) should panic")
		}
	}()
	New(0, 3)
}

func TestFromSlice(t *testing.T) {
	m, err := FromSlice(2, 2, []float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Errorf("element access wrong: %s", m)
	}
	if _, err := FromSlice(2, 2, []float64{1}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := FromSlice(-1, 2, nil); err == nil {
		t.Error("negative shape should error")
	}
}

func TestAddSub(t *testing.T) {
	a, _ := FromSlice(2, 2, []float64{1, 2, 3, 4})
	b, _ := FromSlice(2, 2, []float64{5, 6, 7, 8})
	sum, err := a.Add(b)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := FromSlice(2, 2, []float64{6, 8, 10, 12})
	almostEq(t, sum, want, 0)
	diff, err := sum.Sub(b)
	if err != nil {
		t.Fatal(err)
	}
	almostEq(t, diff, a, 0)
	if _, err := a.Add(New(3, 3)); err == nil {
		t.Error("shape mismatch should error")
	}
	if _, err := a.Sub(New(1, 2)); err == nil {
		t.Error("shape mismatch should error")
	}
}

func TestMul(t *testing.T) {
	a, _ := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b, _ := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	got, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := FromSlice(2, 2, []float64{58, 64, 139, 154})
	almostEq(t, got, want, 1e-12)
	if _, err := a.Mul(New(2, 2)); err == nil {
		t.Error("inner dimension mismatch should error")
	}
}

func TestMulIdentity(t *testing.T) {
	a, _ := FromSlice(3, 3, []float64{2, -1, 0, 1, 3, 5, 0, 0, 4})
	got, err := a.Mul(Identity(3))
	if err != nil {
		t.Fatal(err)
	}
	almostEq(t, got, a, 0)
	got2, err := Identity(3).Mul(a)
	if err != nil {
		t.Fatal(err)
	}
	almostEq(t, got2, a, 0)
}

func TestTranspose(t *testing.T) {
	a, _ := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	got := a.T()
	want, _ := FromSlice(3, 2, []float64{1, 4, 2, 5, 3, 6})
	almostEq(t, got, want, 0)
	// Double transpose is identity.
	almostEq(t, got.T(), a, 0)
}

func TestScale(t *testing.T) {
	a, _ := FromSlice(2, 2, []float64{1, 2, 3, 4})
	got := a.Scale(-2)
	want, _ := FromSlice(2, 2, []float64{-2, -4, -6, -8})
	almostEq(t, got, want, 0)
}

func TestInverse2x2(t *testing.T) {
	a, _ := FromSlice(2, 2, []float64{4, 7, 2, 6})
	inv, err := a.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := FromSlice(2, 2, []float64{0.6, -0.7, -0.2, 0.4})
	almostEq(t, inv, want, 1e-12)
}

func TestInverseProducesIdentity(t *testing.T) {
	a, _ := FromSlice(3, 3, []float64{2, -1, 0, -1, 2, -1, 0, -1, 2})
	inv, err := a.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	prod, err := a.Mul(inv)
	if err != nil {
		t.Fatal(err)
	}
	almostEq(t, prod, Identity(3), 1e-10)
}

func TestInverseRequiresPivoting(t *testing.T) {
	// Zero on the diagonal forces a row swap.
	a, _ := FromSlice(2, 2, []float64{0, 1, 1, 0})
	inv, err := a.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	almostEq(t, inv, a, 1e-12) // a permutation is its own inverse
}

func TestInverseSingular(t *testing.T) {
	a, _ := FromSlice(2, 2, []float64{1, 2, 2, 4})
	if _, err := a.Inverse(); !errors.Is(err, ErrSingular) {
		t.Errorf("want ErrSingular, got %v", err)
	}
	if _, err := New(2, 3).Inverse(); err == nil {
		t.Error("non-square inverse should error")
	}
}

func TestSymmetrize(t *testing.T) {
	a, _ := FromSlice(2, 2, []float64{1, 2, 4, 3})
	s, err := a.Symmetrize()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := FromSlice(2, 2, []float64{1, 3, 3, 3})
	almostEq(t, s, want, 0)
	if _, err := New(2, 3).Symmetrize(); err == nil {
		t.Error("non-square symmetrize should error")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := Identity(2)
	b := a.Clone()
	b.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Error("clone mutation leaked into original")
	}
}

func TestInversePropertyRandomSPD(t *testing.T) {
	// For random well-conditioned SPD matrices M = A^T A + I,
	// M * M^-1 ~= I.
	prop := func(vals [9]int8) bool {
		a := New(3, 3)
		for i, v := range vals {
			a.Data[i] = float64(v%8) / 4
		}
		at := a.T()
		m, err := at.Mul(a)
		if err != nil {
			return false
		}
		m, err = m.Add(Identity(3))
		if err != nil {
			return false
		}
		inv, err := m.Inverse()
		if err != nil {
			return false
		}
		prod, err := m.Mul(inv)
		if err != nil {
			return false
		}
		d, err := prod.MaxAbsDiff(Identity(3))
		if err != nil {
			return false
		}
		return d < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMulAssociativityProperty(t *testing.T) {
	prop := func(vals [12]int8) bool {
		a := New(2, 2)
		b := New(2, 2)
		c := New(2, 2)
		for i := 0; i < 4; i++ {
			a.Data[i] = float64(vals[i])
			b.Data[i] = float64(vals[i+4])
			c.Data[i] = float64(vals[i+8])
		}
		ab, err := a.Mul(b)
		if err != nil {
			return false
		}
		abc1, err := ab.Mul(c)
		if err != nil {
			return false
		}
		bc, err := b.Mul(c)
		if err != nil {
			return false
		}
		abc2, err := a.Mul(bc)
		if err != nil {
			return false
		}
		d, err := abc1.MaxAbsDiff(abc2)
		if err != nil {
			return false
		}
		return d < math.Max(1e-6, 1e-12*maxAbs(abc1))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func maxAbs(m *Mat) float64 {
	v := 0.0
	for _, x := range m.Data {
		if a := math.Abs(x); a > v {
			v = a
		}
	}
	return v
}
