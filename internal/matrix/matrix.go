// Package matrix provides small dense float64 matrices for the Kalman
// filter baseline. It is deliberately minimal — the KF state in the paper
// is a handful of elements per track (Eq. 7), so no BLAS-style machinery is
// warranted, only correct arithmetic with explicit error returns.
package matrix

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrSingular is returned when inverting a (numerically) singular matrix.
var ErrSingular = errors.New("matrix: singular matrix")

// Mat is a dense row-major matrix.
type Mat struct {
	Rows, Cols int
	Data       []float64
}

// New returns a zero matrix of the given shape. It panics on non-positive
// dimensions (programmer error, like a negative slice length).
func New(rows, cols int) *Mat {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("matrix: invalid shape %dx%d", rows, cols))
	}
	return &Mat{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice builds a matrix from row-major data; the slice is copied.
func FromSlice(rows, cols int, data []float64) (*Mat, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("matrix: invalid shape %dx%d", rows, cols)
	}
	if len(data) != rows*cols {
		return nil, fmt.Errorf("matrix: data length %d != %d*%d", len(data), rows, cols)
	}
	m := New(rows, cols)
	copy(m.Data, data)
	return m, nil
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Mat {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// Clone returns a deep copy.
func (m *Mat) Clone() *Mat {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// At returns element (i, j).
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// String implements fmt.Stringer for debugging.
func (m *Mat) String() string {
	var sb strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			fmt.Fprintf(&sb, "%10.4f ", m.At(i, j))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Add returns m + o.
func (m *Mat) Add(o *Mat) (*Mat, error) {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return nil, fmt.Errorf("matrix: add shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, o.Rows, o.Cols)
	}
	out := New(m.Rows, m.Cols)
	for i := range m.Data {
		out.Data[i] = m.Data[i] + o.Data[i]
	}
	return out, nil
}

// Sub returns m - o.
func (m *Mat) Sub(o *Mat) (*Mat, error) {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return nil, fmt.Errorf("matrix: sub shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, o.Rows, o.Cols)
	}
	out := New(m.Rows, m.Cols)
	for i := range m.Data {
		out.Data[i] = m.Data[i] - o.Data[i]
	}
	return out, nil
}

// Mul returns the matrix product m * o.
func (m *Mat) Mul(o *Mat) (*Mat, error) {
	if m.Cols != o.Rows {
		return nil, fmt.Errorf("matrix: mul shape mismatch %dx%d * %dx%d", m.Rows, m.Cols, o.Rows, o.Cols)
	}
	out := New(m.Rows, o.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.Data[i*m.Cols+k]
			if a == 0 {
				continue
			}
			row := k * o.Cols
			outRow := i * o.Cols
			for j := 0; j < o.Cols; j++ {
				out.Data[outRow+j] += a * o.Data[row+j]
			}
		}
	}
	return out, nil
}

// Scale returns s * m.
func (m *Mat) Scale(s float64) *Mat {
	out := New(m.Rows, m.Cols)
	for i := range m.Data {
		out.Data[i] = s * m.Data[i]
	}
	return out
}

// T returns the transpose.
func (m *Mat) T() *Mat {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Data[j*m.Rows+i] = m.Data[i*m.Cols+j]
		}
	}
	return out
}

// Inverse returns m^-1 by Gauss-Jordan elimination with partial pivoting.
// Returns ErrSingular when a pivot underflows.
func (m *Mat) Inverse() (*Mat, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("matrix: cannot invert %dx%d", m.Rows, m.Cols)
	}
	n := m.Rows
	a := m.Clone()
	inv := Identity(n)
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a.At(r, col)); v > best {
				best = v
				pivot = r
			}
		}
		if best < 1e-12 {
			return nil, ErrSingular
		}
		if pivot != col {
			swapRows(a, pivot, col)
			swapRows(inv, pivot, col)
		}
		// Normalise pivot row.
		p := a.At(col, col)
		for j := 0; j < n; j++ {
			a.Set(col, j, a.At(col, j)/p)
			inv.Set(col, j, inv.At(col, j)/p)
		}
		// Eliminate the column from other rows.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a.At(r, col)
			if f == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				a.Set(r, j, a.At(r, j)-f*a.At(col, j))
				inv.Set(r, j, inv.At(r, j)-f*inv.At(col, j))
			}
		}
	}
	return inv, nil
}

func swapRows(m *Mat, r1, r2 int) {
	for j := 0; j < m.Cols; j++ {
		m.Data[r1*m.Cols+j], m.Data[r2*m.Cols+j] = m.Data[r2*m.Cols+j], m.Data[r1*m.Cols+j]
	}
}

// Symmetrize returns (m + m^T)/2, used to keep covariance matrices
// numerically symmetric across updates.
func (m *Mat) Symmetrize() (*Mat, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("matrix: cannot symmetrize %dx%d", m.Rows, m.Cols)
	}
	t := m.T()
	s, err := m.Add(t)
	if err != nil {
		return nil, err
	}
	return s.Scale(0.5), nil
}

// MaxAbsDiff returns the largest absolute element-wise difference, or an
// error on shape mismatch. Useful for approximate equality in tests.
func (m *Mat) MaxAbsDiff(o *Mat) (float64, error) {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return 0, fmt.Errorf("matrix: diff shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, o.Rows, o.Cols)
	}
	max := 0.0
	for i := range m.Data {
		d := math.Abs(m.Data[i] - o.Data[i])
		if d > max {
			max = d
		}
	}
	return max, nil
}
