//go:build amd64 && !purego

package cpufeat

// cpuid executes CPUID with EAX=leaf, ECX=sub. Implemented in
// cpuid_amd64.s.
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads XCR0, the OS-enabled extended state mask. Only valid when
// CPUID.1:ECX.OSXSAVE is set. Implemented in cpuid_amd64.s.
func xgetbv0() (eax, edx uint32)

// CPUID.1:ECX bits.
const (
	cpuidOSXSAVE = 1 << 27
	cpuidAVX     = 1 << 28
)

// CPUID.7.0:EBX / ECX bits.
const (
	cpuid7AVX2      = 1 << 5
	cpuid7AVX512F   = 1 << 16
	cpuid7AVX512BW  = 1 << 30
	cpuid7AVX512VL  = 1 << 31
	cpuid7VPOPCNTDQ = 1 << 14 // ECX
)

// XCR0 state-component bits.
const (
	xcr0SSE      = 1 << 1
	xcr0AVX      = 1 << 2
	xcr0Opmask   = 1 << 5
	xcr0ZMMHi256 = 1 << 6
	xcr0Hi16ZMM  = 1 << 7

	xcr0AVXState    = xcr0SSE | xcr0AVX
	xcr0AVX512State = xcr0AVXState | xcr0Opmask | xcr0ZMMHi256 | xcr0Hi16ZMM
)

func detect() Features {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return Features{}
	}
	_, _, ecx1, _ := cpuid(1, 0)
	// Without OSXSAVE the OS does not save the wide registers across
	// context switches; executing AVX code would fault or corrupt state.
	if ecx1&cpuidOSXSAVE == 0 || ecx1&cpuidAVX == 0 {
		return Features{}
	}
	xlo, _ := xgetbv0()
	if xlo&xcr0AVXState != xcr0AVXState {
		return Features{}
	}
	_, ebx7, ecx7, _ := cpuid(7, 0)
	var f Features
	f.AVX2 = ebx7&cpuid7AVX2 != 0
	if xlo&xcr0AVX512State == xcr0AVX512State {
		f.AVX512F = ebx7&cpuid7AVX512F != 0
		f.AVX512BW = ebx7&cpuid7AVX512BW != 0
		f.AVX512VL = ebx7&cpuid7AVX512VL != 0
		f.AVX512VPOPCNTDQ = ecx7&cpuid7VPOPCNTDQ != 0
	}
	return f
}
