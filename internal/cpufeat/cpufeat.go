// Package cpufeat detects the x86 SIMD features the hand-written assembly
// kernels in internal/imgproc gate on. It is intentionally tiny and
// zero-dependency: a CPUID/XGETBV probe on amd64, a constant "nothing
// detected" answer everywhere else (and under the purego build tag), so the
// pure-Go fallback kernels are what every other platform runs.
//
// Detection follows the Intel rules rather than trusting feature bits in
// isolation: AVX2 requires OSXSAVE plus XCR0 XMM+YMM state enabled by the
// OS, and the AVX-512 bits are only believed when XCR0 additionally enables
// the opmask and ZMM register state. A hypervisor that masks CPUID or an OS
// that doesn't context-switch the wide registers therefore reports false,
// and the dispatcher stays on the generic kernels.
package cpufeat

import "strings"

// Features is the detected x86 SIMD feature set. The zero value means
// "nothing beyond baseline amd64" and is what non-amd64 builds report.
type Features struct {
	// AVX2 covers the 256-bit integer instruction set the packed median
	// and popcount kernels use (VPSHUFB, VPSRLVQ, VPSADBW and friends).
	AVX2 bool
	// AVX512F, AVX512BW and AVX512VL are the foundation/byte-word/vector-
	// length extensions; the kernels require all three together (see
	// HasAVX512) so 256-bit encodings of AVX-512 instructions are legal.
	AVX512F  bool
	AVX512BW bool
	AVX512VL bool
	// AVX512VPOPCNTDQ is the hardware per-lane popcount (VPOPCNTQ); with
	// VL it replaces the nibble-LUT popcount in the reduction kernels.
	AVX512VPOPCNTDQ bool
}

// HasAVX512 reports whether the F+BW+VL trio the kernels gate on is
// present — the subset every AVX-512 production part since Skylake-SP
// ships together.
func (f Features) HasAVX512() bool { return f.AVX512F && f.AVX512BW && f.AVX512VL }

// String renders the detected set as a compact comma-separated list
// ("none" when empty), the form the startup log and /stats report.
func (f Features) String() string {
	var parts []string
	if f.AVX2 {
		parts = append(parts, "avx2")
	}
	if f.AVX512F {
		parts = append(parts, "avx512f")
	}
	if f.AVX512BW {
		parts = append(parts, "avx512bw")
	}
	if f.AVX512VL {
		parts = append(parts, "avx512vl")
	}
	if f.AVX512VPOPCNTDQ {
		parts = append(parts, "vpopcntdq")
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// detected is probed once at init; CPUID is not free and the answer cannot
// change while the process runs.
var detected = detect()

// Detect returns the features of the CPU the process is running on.
func Detect() Features { return detected }
