package cpufeat

import (
	"runtime"
	"testing"
)

func TestDetectConsistency(t *testing.T) {
	f := Detect()
	if f != Detect() {
		t.Fatal("Detect is not stable across calls")
	}
	// The extension implies the base: a CPU (or a correctly masked
	// hypervisor) never reports AVX-512 without AVX2, and VPOPCNTDQ is an
	// AVX-512 extension.
	if f.HasAVX512() && !f.AVX2 {
		t.Errorf("AVX-512 reported without AVX2: %+v", f)
	}
	if f.AVX512VPOPCNTDQ && !f.AVX512F {
		t.Errorf("VPOPCNTDQ reported without AVX512F: %+v", f)
	}
	if runtime.GOARCH != "amd64" && f != (Features{}) {
		t.Errorf("non-amd64 build must report zero features, got %+v", f)
	}
	if f.String() == "" {
		t.Error("String must never be empty")
	}
	t.Logf("detected: %s", f)
}

func TestStringZero(t *testing.T) {
	if s := (Features{}).String(); s != "none" {
		t.Fatalf("zero Features String = %q, want none", s)
	}
	all := Features{AVX2: true, AVX512F: true, AVX512BW: true, AVX512VL: true, AVX512VPOPCNTDQ: true}
	if s := all.String(); s != "avx2,avx512f,avx512bw,avx512vl,vpopcntdq" {
		t.Fatalf("full Features String = %q", s)
	}
	if !all.HasAVX512() {
		t.Fatal("HasAVX512 false for full set")
	}
}
