//go:build !amd64 || purego

package cpufeat

// detect reports no SIMD features on non-amd64 platforms and under the
// purego build tag, keeping every dispatcher on the pure-Go kernels.
func detect() Features { return Features{} }
