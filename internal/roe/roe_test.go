package roe

import (
	"testing"

	"ebbiot/internal/events"
	"ebbiot/internal/geometry"
	"ebbiot/internal/imgproc"
)

func TestExcluded(t *testing.T) {
	m := New(geometry.NewBox(0, 0, 50, 50))
	tests := []struct {
		name     string
		box      geometry.Box
		maxCover float64
		want     bool
	}{
		{"fully inside", geometry.NewBox(10, 10, 20, 20), 0.5, true},
		{"fully outside", geometry.NewBox(100, 100, 20, 20), 0.5, false},
		{"half covered at 0.4 cap", geometry.NewBox(40, 0, 20, 20), 0.4, true},
		{"half covered at 0.6 cap", geometry.NewBox(40, 0, 20, 20), 0.6, false},
		{"empty box", geometry.Box{}, 0.5, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := m.Excluded(tt.box, tt.maxCover); got != tt.want {
				t.Errorf("Excluded = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestOverlappingZonesCapped(t *testing.T) {
	// Two identical zones must not double-count coverage beyond 100%.
	m := New(geometry.NewBox(0, 0, 10, 10), geometry.NewBox(0, 0, 10, 10))
	b := geometry.NewBox(0, 0, 10, 20) // exactly half covered
	if m.Excluded(b, 0.9) {
		t.Error("coverage must cap at the box area: half-covered box excluded at 0.9")
	}
	if !m.Excluded(b, 0.4) {
		t.Error("half-covered box should be excluded at 0.4")
	}
}

func TestEmptyMask(t *testing.T) {
	m := New()
	if m.Excluded(geometry.NewBox(0, 0, 10, 10), 0.1) {
		t.Error("empty mask should exclude nothing")
	}
}

func TestNewDropsEmptyZones(t *testing.T) {
	m := New(geometry.Box{}, geometry.NewBox(0, 0, 5, 5))
	if len(m.Zones()) != 1 {
		t.Errorf("empty zones should be dropped, have %d", len(m.Zones()))
	}
}

func TestAddAndZonesCopy(t *testing.T) {
	m := New()
	m.Add(geometry.NewBox(1, 1, 2, 2))
	m.Add(geometry.Box{}) // ignored
	z := m.Zones()
	if len(z) != 1 {
		t.Fatalf("zones = %v", z)
	}
	z[0] = geometry.NewBox(9, 9, 9, 9) // mutating the copy must not affect the mask
	if m.Zones()[0] != geometry.NewBox(1, 1, 2, 2) {
		t.Error("Zones must return a copy")
	}
}

func TestFilterBoxes(t *testing.T) {
	m := New(geometry.NewBox(0, 0, 50, 180))
	boxes := []geometry.Box{
		geometry.NewBox(10, 10, 20, 20),  // inside ROE
		geometry.NewBox(100, 10, 20, 20), // clear
		geometry.NewBox(45, 10, 20, 20),  // 25% covered
	}
	got := m.FilterBoxes(boxes, 0.5)
	if len(got) != 2 {
		t.Fatalf("kept %d boxes, want 2", len(got))
	}
	if got[0] != boxes[1] || got[1] != boxes[2] {
		t.Errorf("kept wrong boxes: %v", got)
	}
}

func TestContainsPoint(t *testing.T) {
	m := New(geometry.NewBox(10, 10, 5, 5), geometry.NewBox(100, 100, 5, 5))
	if !m.ContainsPoint(12, 12) || !m.ContainsPoint(100, 104) {
		t.Error("points inside zones should be contained")
	}
	if m.ContainsPoint(9, 10) || m.ContainsPoint(50, 50) {
		t.Error("points outside zones should not be contained")
	}
}

func TestMaskBitmap(t *testing.T) {
	m := New(geometry.NewBox(2, 2, 3, 3))
	b := imgproc.NewBitmap(8, 8)
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			b.Set(x, y)
		}
	}
	m.MaskBitmap(b)
	if b.Get(3, 3) != 0 || b.Get(2, 2) != 0 || b.Get(4, 4) != 0 {
		t.Error("zone pixels should be cleared")
	}
	if b.Get(5, 5) != 1 || b.Get(1, 1) != 1 {
		t.Error("pixels outside zones must survive")
	}
	if b.CountOnes() != 64-9 {
		t.Errorf("CountOnes = %d, want %d", b.CountOnes(), 64-9)
	}
}

func TestMaskBitmapClipsZones(t *testing.T) {
	// A zone hanging off the image must not panic or touch other pixels.
	m := New(geometry.NewBox(-5, -5, 10, 10))
	b := imgproc.NewBitmap(8, 8)
	b.Set(0, 0)
	b.Set(7, 7)
	m.MaskBitmap(b)
	if b.Get(0, 0) != 0 {
		t.Error("in-zone pixel should clear")
	}
	if b.Get(7, 7) != 1 {
		t.Error("out-of-zone pixel must survive")
	}
}

func TestFilterEvents(t *testing.T) {
	m := New(geometry.NewBox(0, 150, 120, 30))
	evs := []events.Event{
		{X: 10, Y: 160, T: 1, P: events.On},   // in the zone
		{X: 10, Y: 100, T: 2, P: events.On},   // clear
		{X: 130, Y: 160, T: 3, P: events.Off}, // right of the zone
	}
	got := m.FilterEvents(evs)
	if len(got) != 2 {
		t.Fatalf("kept %d events, want 2", len(got))
	}
	if got[0].T != 2 || got[1].T != 3 {
		t.Errorf("kept wrong events: %v", got)
	}
	// Empty mask: all events survive, and the result must be a copy.
	empty := New()
	all := empty.FilterEvents(evs)
	if len(all) != 3 {
		t.Errorf("empty mask should keep all events")
	}
	all[0].X = 99
	if evs[0].X == 99 {
		t.Error("FilterEvents must not alias the input")
	}
}

// TestMaskPackedParity holds MaskPacked bit-identical to MaskBitmap across
// zones that straddle word boundaries and the image border.
func TestMaskPackedParity(t *testing.T) {
	m := New(
		geometry.NewBox(60, 2, 10, 5),   // inside one word
		geometry.NewBox(50, 8, 100, 4),  // spans multiple words
		geometry.NewBox(-5, -5, 10, 10), // hangs off the image
		geometry.NewBox(230, 170, 40, 40),
	)
	b := imgproc.NewBitmap(240, 180)
	for y := 0; y < b.H; y++ {
		for x := y % 3; x < b.W; x += 3 {
			b.Set(x, y)
		}
	}
	p := imgproc.PackBitmap(nil, b)
	m.MaskBitmap(b)
	m.MaskPacked(p)
	if !p.Unpack(nil).Equal(b) {
		t.Fatal("MaskPacked differs from MaskBitmap")
	}
}
