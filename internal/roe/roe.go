// Package roe implements regions of exclusion (ROE): manually defined
// areas of the sensor array whose region proposals are discarded.
//
// The paper's tracker assumes "distractors such as trees which create
// spurious events can be removed by a manually provided definition of
// region of exclusion"; static occlusions (posts) are handled the same way.
package roe

import (
	"sort"

	"ebbiot/internal/events"
	"ebbiot/internal/geometry"
	"ebbiot/internal/imgproc"
)

// Mask is a set of exclusion rectangles.
type Mask struct {
	zones []geometry.Box
}

// New returns a mask covering the given zones. Empty boxes are dropped.
func New(zones ...geometry.Box) *Mask {
	m := &Mask{zones: make([]geometry.Box, 0, len(zones))}
	for _, z := range zones {
		if !z.Empty() {
			m.zones = append(m.zones, z)
		}
	}
	return m
}

// Zones returns a copy of the exclusion rectangles.
func (m *Mask) Zones() []geometry.Box {
	out := make([]geometry.Box, len(m.zones))
	copy(out, m.zones)
	return out
}

// Add appends a zone to the mask.
func (m *Mask) Add(z geometry.Box) {
	if !z.Empty() {
		m.zones = append(m.zones, z)
	}
}

// Excluded reports whether a proposal box should be discarded: true when
// the fraction of the box's area covered by exclusion zones exceeds
// maxCover (e.g. 0.5 discards proposals more than half inside an ROE).
func (m *Mask) Excluded(b geometry.Box, maxCover float64) bool {
	if b.Empty() || len(m.zones) == 0 {
		return false
	}
	covered := unionCoverage(b, m.zones)
	return float64(covered) > maxCover*float64(b.Area())
}

// unionCoverage returns the area of b covered by the union of the zones
// (zones may overlap each other, so simple summation would double count).
// Coordinate compression over the intersection rectangles keeps this exact
// at O(k^2) for k zones, and k is tiny in practice.
func unionCoverage(b geometry.Box, zones []geometry.Box) int {
	inters := make([]geometry.Box, 0, len(zones))
	xs := make([]int, 0, 2*len(zones))
	ys := make([]int, 0, 2*len(zones))
	for _, z := range zones {
		in := b.Intersect(z)
		if in.Empty() {
			continue
		}
		inters = append(inters, in)
		xs = append(xs, in.X, in.MaxX())
		ys = append(ys, in.Y, in.MaxY())
	}
	if len(inters) == 0 {
		return 0
	}
	sort.Ints(xs)
	sort.Ints(ys)
	xs = dedupInts(xs)
	ys = dedupInts(ys)
	covered := 0
	for xi := 0; xi+1 < len(xs); xi++ {
		for yi := 0; yi+1 < len(ys); yi++ {
			cx, cy := xs[xi], ys[yi]
			cell := geometry.BoxFromCorners(cx, cy, xs[xi+1], ys[yi+1])
			for _, in := range inters {
				if in.Contains(cx, cy) {
					covered += cell.Area()
					break
				}
			}
		}
	}
	return covered
}

func dedupInts(s []int) []int {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// FilterBoxes returns the proposals not excluded by the mask, preserving
// order. The result is a fresh slice.
func (m *Mask) FilterBoxes(boxes []geometry.Box, maxCover float64) []geometry.Box {
	out := make([]geometry.Box, 0, len(boxes))
	for _, b := range boxes {
		if !m.Excluded(b, maxCover) {
			out = append(out, b)
		}
	}
	return out
}

// ContainsPoint reports whether (x, y) lies inside any exclusion zone.
func (m *Mask) ContainsPoint(x, y int) bool {
	for _, z := range m.zones {
		if z.Contains(x, y) {
			return true
		}
	}
	return false
}

// MaskBitmap clears every pixel inside the exclusion zones, in place. The
// EBBIOT pipeline applies this to the filtered EBBI before region proposal
// so that distractor events cannot contaminate the X/Y histograms (the
// histograms project over full rows/columns, so even a distant distractor
// would otherwise widen runs everywhere).
func (m *Mask) MaskBitmap(b *imgproc.Bitmap) {
	for _, z := range m.zones {
		x0, y0 := max(z.X, 0), max(z.Y, 0)
		x1, y1 := min(z.MaxX(), b.W), min(z.MaxY(), b.H)
		for y := y0; y < y1; y++ {
			row := y * b.W
			for x := x0; x < x1; x++ {
				b.Pix[row+x] = 0
			}
		}
	}
}

// MaskPacked is MaskBitmap for the packed fast path: each zone row is
// blanked with word-masked stores instead of per-pixel writes.
func (m *Mask) MaskPacked(p *imgproc.PackedBitmap) {
	m.MaskPackedRegion(p, nil)
}

// MaskPackedRegion is MaskPacked bounded by the frame's active region:
// zone rows outside the region's dirty row span are already all-zero and
// are skipped instead of rewritten. Clearing pixels never invalidates the
// region (it is a superset contract), so ar stays correct afterwards. A
// nil region blanks every zone row.
func (m *Mask) MaskPackedRegion(p *imgproc.PackedBitmap, ar *imgproc.ActiveRegion) {
	y0, y1 := 0, p.H
	if ar != nil {
		y0, y1 = ar.RowSpan()
		if y0 >= y1 {
			return
		}
	}
	for _, z := range m.zones {
		zy0, zy1 := max(z.Y, y0), min(z.MaxY(), y1)
		if zy0 >= zy1 {
			continue
		}
		p.ClearRange(z.X, zy0, z.MaxX(), zy1)
	}
}

// FilterEvents returns the events outside all exclusion zones, preserving
// order — the event-domain analogue of MaskBitmap, applied by the EBMS
// pipeline. The result is a fresh slice.
func (m *Mask) FilterEvents(evs []events.Event) []events.Event {
	if len(m.zones) == 0 {
		return append([]events.Event(nil), evs...)
	}
	out := make([]events.Event, 0, len(evs))
	for _, e := range evs {
		if !m.ContainsPoint(int(e.X), int(e.Y)) {
			out = append(out, e)
		}
	}
	return out
}
