package filter

import (
	"testing"

	"ebbiot/internal/events"
	"ebbiot/internal/scene"
	"ebbiot/internal/sensor"
)

func TestNNRejectsIsolatedNoise(t *testing.T) {
	f, err := NewNN(events.DAVIS240, 3, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	// Three far-apart events with no neighbours: all rejected.
	evs := []events.Event{
		{X: 10, Y: 10, T: 100, P: events.On},
		{X: 100, Y: 100, T: 200, P: events.Off},
		{X: 200, Y: 50, T: 300, P: events.On},
	}
	if got := f.Filter(evs); len(got) != 0 {
		t.Errorf("isolated events should be rejected, kept %d", len(got))
	}
}

func TestNNKeepsSupportedEvents(t *testing.T) {
	f, err := NewNN(events.DAVIS240, 3, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	evs := []events.Event{
		{X: 50, Y: 50, T: 100, P: events.On},  // no support yet: rejected
		{X: 51, Y: 50, T: 200, P: events.On},  // neighbour fired 100us ago: kept
		{X: 50, Y: 51, T: 300, P: events.Off}, // supported by both: kept
	}
	got := f.Filter(evs)
	if len(got) != 2 {
		t.Fatalf("kept %d events, want 2", len(got))
	}
	if got[0].T != 200 || got[1].T != 300 {
		t.Errorf("kept wrong events: %v", got)
	}
}

func TestNNSupportWindowExpires(t *testing.T) {
	f, err := NewNN(events.DAVIS240, 3, 1000)
	if err != nil {
		t.Fatal(err)
	}
	evs := []events.Event{
		{X: 50, Y: 50, T: 0, P: events.On},
		{X: 51, Y: 50, T: 5000, P: events.On}, // neighbour too old: rejected
	}
	if got := f.Filter(evs); len(got) != 0 {
		t.Errorf("stale support should not count, kept %d", len(got))
	}
}

func TestNNSamePixelIsNotSupport(t *testing.T) {
	// Repeated firing of one pixel (stuck pixel) must not self-support.
	f, err := NewNN(events.DAVIS240, 3, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	evs := []events.Event{
		{X: 50, Y: 50, T: 0, P: events.On},
		{X: 50, Y: 50, T: 100, P: events.On},
		{X: 50, Y: 50, T: 200, P: events.On},
	}
	if got := f.Filter(evs); len(got) != 0 {
		t.Errorf("stuck pixel should be rejected, kept %d", len(got))
	}
}

func TestNNBorderSafe(t *testing.T) {
	f, err := NewNN(events.DAVIS240, 3, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	evs := []events.Event{
		{X: 0, Y: 0, T: 0, P: events.On},
		{X: 1, Y: 0, T: 10, P: events.On},
		{X: 239, Y: 179, T: 20, P: events.On},
	}
	got := f.Filter(evs) // must not panic at corners
	if len(got) != 1 {
		t.Errorf("kept %d, want 1 (only the supported corner-adjacent event)", len(got))
	}
}

func TestNNValidation(t *testing.T) {
	if _, err := NewNN(events.DAVIS240, 2, 1000); err == nil {
		t.Error("even p should error")
	}
	if _, err := NewNN(events.DAVIS240, 1, 1000); err == nil {
		t.Error("p=1 should error (no neighbours)")
	}
	if _, err := NewNN(events.DAVIS240, 3, 0); err == nil {
		t.Error("zero support window should error")
	}
	if _, err := NewNN(events.Resolution{}, 3, 1000); err == nil {
		t.Error("invalid resolution should error")
	}
}

func TestNNOpsCounting(t *testing.T) {
	f, err := NewNN(events.DAVIS240, 3, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	// An interior event touches 8 neighbours + 1 write = 9 ops.
	f.Filter([]events.Event{{X: 100, Y: 100, T: 0, P: events.On}})
	if got := f.Ops(); got != 9 {
		t.Errorf("interior event ops = %d, want 9", got)
	}
	f.ResetOps()
	// A corner event touches 3 neighbours + 1 write = 4 ops.
	f.Filter([]events.Event{{X: 0, Y: 0, T: 10, P: events.On}})
	if got := f.Ops(); got != 4 {
		t.Errorf("corner event ops = %d, want 4", got)
	}
}

func TestNNOnRealisticStream(t *testing.T) {
	// On a simulated noisy scene, the filter should keep most object events
	// and reject most noise.
	sc := scene.SingleObjectScene(events.DAVIS240, 2_000_000)
	cfg := sensor.DefaultConfig(77)
	cfg.NoiseRatePerPixelHz = 0.25
	sim, err := sensor.New(cfg, sc)
	if err != nil {
		t.Fatal(err)
	}
	var all []events.Event
	for c := int64(0); c < 2_000_000; c += 66_000 {
		w, err := sim.Events(c, c+66_000)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, w...)
	}
	f, err := NewNN(events.DAVIS240, 3, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	kept := f.Filter(all)
	if len(kept) == 0 {
		t.Fatal("filter rejected everything")
	}
	// Count how many kept events lie near the object trajectory band.
	nearObject := func(evs []events.Event) float64 {
		n := 0
		for _, e := range evs {
			if int(e.Y) >= 68 && int(e.Y) <= 90 {
				n++
			}
		}
		return float64(n) / float64(len(evs))
	}
	before := nearObject(all)
	after := nearObject(kept)
	if after <= before {
		t.Errorf("filter should concentrate events on object: before %.3f after %.3f", before, after)
	}
	if after < 0.9 {
		t.Errorf("after filtering, %.3f of events near object, want > 0.9", after)
	}
}

func TestRefractoryFilter(t *testing.T) {
	f, err := NewRefractory(events.DAVIS240, 1000)
	if err != nil {
		t.Fatal(err)
	}
	evs := []events.Event{
		{X: 5, Y: 5, T: 0, P: events.On},
		{X: 5, Y: 5, T: 500, P: events.On},  // within refractory: dropped
		{X: 5, Y: 5, T: 1500, P: events.On}, // past refractory: kept
		{X: 6, Y: 5, T: 600, P: events.On},  // different pixel: kept
	}
	got := f.Filter(evs)
	if len(got) != 3 {
		t.Fatalf("kept %d events, want 3", len(got))
	}
	if got[0].T != 0 || got[1].T != 1500 || got[2].T != 600 {
		t.Errorf("kept wrong events: %v", got)
	}
}

func TestRefractoryValidation(t *testing.T) {
	if _, err := NewRefractory(events.DAVIS240, 0); err == nil {
		t.Error("zero period should error")
	}
	if _, err := NewRefractory(events.Resolution{A: -1, B: 2}, 100); err == nil {
		t.Error("bad resolution should error")
	}
}

func TestPolaritySplit(t *testing.T) {
	evs := []events.Event{
		{T: 1, P: events.On},
		{T: 2, P: events.Off},
		{T: 3, P: events.On},
	}
	on, off := PolaritySplit(evs)
	if len(on) != 2 || len(off) != 1 {
		t.Fatalf("split = %d on, %d off", len(on), len(off))
	}
	if on[0].T != 1 || on[1].T != 3 || off[0].T != 2 {
		t.Error("split order wrong")
	}
}

func BenchmarkNNFilter(b *testing.B) {
	sc := scene.SingleObjectScene(events.DAVIS240, 2_000_000)
	cfg := sensor.DefaultConfig(5)
	sim, err := sensor.New(cfg, sc)
	if err != nil {
		b.Fatal(err)
	}
	evs, err := sim.Events(0, 1_000_000)
	if err != nil {
		b.Fatal(err)
	}
	f, err := NewNN(events.DAVIS240, 3, 66_000)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.Filter(evs)
	}
}
