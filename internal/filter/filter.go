// Package filter implements event-domain noise filters for AER streams.
//
// The paper's baseline pipeline (NN-filt + EBMS) filters noise per event
// with a nearest-neighbour test over a timestamp map; EBBIOT instead
// filters per frame with a binary median (see imgproc.MedianFilter). Both
// are implemented here and in imgproc respectively so the resource
// comparison of Section II-A (Eqs. 1 and 2) can be reproduced on identical
// inputs.
package filter

import (
	"fmt"

	"ebbiot/internal/events"
)

// NNFilter is the nearest-neighbour event filter of Padala et al. (the
// paper's reference [9]): an event is kept only if some pixel in its p x p
// spatial neighbourhood fired within the support window, i.e. the event has
// spatio-temporal support. Background-activity noise is uncorrelated and
// fails the test; object events arrive in spatial bursts and pass.
//
// The filter stores one timestamp per pixel (Bt bits in the paper's memory
// model, Eq. 2); this implementation uses int64 for convenience while the
// resource accounting in internal/resources uses the paper's Bt.
type NNFilter struct {
	res events.Resolution
	// p is the neighbourhood size (side length, odd).
	p int
	// supportUS is the temporal window within which a neighbour timestamp
	// counts as support.
	supportUS int64
	// sae is the surface-of-active-events: last event time per pixel.
	sae []int64
	// ops counts primitive operations using the paper's accounting
	// (comparisons/increments plus one timestamp write per event).
	ops int64
}

// NewNN returns a nearest-neighbour filter. p must be odd and >= 3;
// supportUS must be positive.
func NewNN(res events.Resolution, p int, supportUS int64) (*NNFilter, error) {
	if err := res.Validate(); err != nil {
		return nil, err
	}
	if p < 3 || p%2 == 0 {
		return nil, fmt.Errorf("filter: neighbourhood size must be odd and >= 3, got %d", p)
	}
	if supportUS <= 0 {
		return nil, fmt.Errorf("filter: support window must be positive, got %d", supportUS)
	}
	sae := make([]int64, res.Pixels())
	for i := range sae {
		sae[i] = -1 << 40
	}
	return &NNFilter{res: res, p: p, supportUS: supportUS, sae: sae}, nil
}

// Filter processes a batch of events in arrival order and returns the
// subset that has neighbourhood support. The returned slice is freshly
// allocated; the input is unmodified.
func (f *NNFilter) Filter(evs []events.Event) []events.Event {
	out := make([]events.Event, 0, len(evs))
	half := f.p / 2
	for _, e := range evs {
		x, y := int(e.X), int(e.Y)
		supported := false
		for dy := -half; dy <= half; dy++ {
			for dx := -half; dx <= half; dx++ {
				if dx == 0 && dy == 0 {
					continue
				}
				nx, ny := x+dx, y+dy
				if nx < 0 || nx >= f.res.A || ny < 0 || ny >= f.res.B {
					continue
				}
				f.ops++ // comparison against the neighbour timestamp
				if e.T-f.sae[ny*f.res.A+nx] <= f.supportUS {
					supported = true
				}
			}
		}
		// Timestamp write happens for every event, kept or not: the SAE must
		// reflect all sensor activity or bursts of noise would self-support.
		f.sae[y*f.res.A+x] = e.T
		f.ops++ // memory write
		if supported {
			out = append(out, e)
		}
	}
	return out
}

// Ops returns the cumulative primitive-operation count.
func (f *NNFilter) Ops() int64 { return f.ops }

// ResetOps zeroes the operation counter.
func (f *NNFilter) ResetOps() { f.ops = 0 }

// RefractoryFilter drops events that arrive within a refractory period of
// the previous event at the same pixel. It is commonly chained before the
// NN filter to bound per-pixel event rates.
type RefractoryFilter struct {
	res      events.Resolution
	periodUS int64
	last     []int64
}

// NewRefractory returns a refractory filter with the given period.
func NewRefractory(res events.Resolution, periodUS int64) (*RefractoryFilter, error) {
	if err := res.Validate(); err != nil {
		return nil, err
	}
	if periodUS <= 0 {
		return nil, fmt.Errorf("filter: refractory period must be positive, got %d", periodUS)
	}
	last := make([]int64, res.Pixels())
	for i := range last {
		last[i] = -1 << 40
	}
	return &RefractoryFilter{res: res, periodUS: periodUS, last: last}, nil
}

// Filter returns the events that survive the refractory test, preserving
// order. The returned slice is freshly allocated.
func (f *RefractoryFilter) Filter(evs []events.Event) []events.Event {
	out := make([]events.Event, 0, len(evs))
	for _, e := range evs {
		idx := int(e.Y)*f.res.A + int(e.X)
		if e.T-f.last[idx] < f.periodUS {
			continue
		}
		f.last[idx] = e.T
		out = append(out, e)
	}
	return out
}

// PolaritySplit partitions a stream into ON and OFF sub-streams, preserving
// order. Useful for pipelines that process polarities separately.
func PolaritySplit(evs []events.Event) (on, off []events.Event) {
	for _, e := range evs {
		if e.P == events.On {
			on = append(on, e)
		} else {
			off = append(off, e)
		}
	}
	return on, off
}
