package ingest

import (
	"math/rand"
	"os"
	"reflect"
	"strconv"
	"testing"
	"time"

	"ebbiot/internal/pipeline"
)

// chaosSeed reads CHAOS_SEED so `make chaos-ingest` can sweep a drill
// matrix; the default keeps `go test` deterministic.
func chaosSeed(t *testing.T) int64 {
	t.Helper()
	s := os.Getenv("CHAOS_SEED")
	if s == "" {
		return 1
	}
	seed, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		t.Fatalf("CHAOS_SEED=%q: %v", s, err)
	}
	return seed
}

// TestChaosKillResumeBitIdentical is the acceptance drill for resumable
// sessions: stream a deterministic recording over the wire while randomly
// pulling the plug mid-stream, let the sink reconnect + replay each time,
// and require the tracked output to be bit-identical to an uninterrupted
// in-process run — exactly-once delivery, no gaps, no faults. Run it under
// -race (the Makefile's chaos-ingest target does) to also shake the
// reconnect/ack/replay machinery for data races.
func TestChaosKillResumeBitIdentical(t *testing.T) {
	seed := chaosSeed(t)
	rng := rand.New(rand.NewSource(seed))
	t.Logf("chaos seed %d", seed)

	spec, all := diffRecording(t)
	if len(all) == 0 {
		t.Fatal("empty recording")
	}

	// Reference: the same events replayed in process, never interrupted.
	sliceSrc, err := pipeline.NewSliceSource(all)
	if err != nil {
		t.Fatal(err)
	}
	inproc := runCollect(t, sliceSrc, nil)
	if len(inproc) == 0 {
		t.Fatal("in-process run produced no snapshots")
	}

	// Chaos run: 17 ms chunks (misaligned with the 66 ms frames), with the
	// connection killed before roughly a quarter of the sends. A small ack
	// cadence and replay window keep the replayed tails short but nonzero.
	srv := startServer(t, ServerConfig{
		Streams:     []string{"cam0"},
		Res:         spec.Sensor.Res,
		AckEvery:    2,
		ResumeGrace: 10 * time.Second,
	})
	sendErr := make(chan error, 1)
	kills := 0
	var ds *DialSink
	go func() {
		var err error
		ds, err = Dial(srv.Addr().String(), DialConfig{
			StreamID:      "cam0",
			Res:           spec.Sensor.Res,
			ResumeRetries: 10,
			ResumeBackoff: 5 * time.Millisecond,
			ReplayWindow:  16,
		})
		if err != nil {
			sendErr <- err
			return
		}
		const chunkUS = 17_000
		for lo := 0; lo < len(all); {
			hi := lo
			cutoff := all[lo].T + chunkUS
			for hi < len(all) && all[hi].T < cutoff {
				hi++
			}
			if rng.Intn(4) == 0 {
				ds.breakConn()
				kills++
			}
			if err := ds.Send(all[lo:hi]); err != nil {
				sendErr <- err
				return
			}
			lo = hi
		}
		if rng.Intn(2) == 0 {
			ds.breakConn() // sometimes the EOF itself needs the resume path
			kills++
		}
		sendErr <- ds.Close()
	}()
	wire := runCollect(t, srv.Source("cam0"), nil)
	if err := <-sendErr; err != nil {
		t.Fatalf("chaos sender (seed %d, %d kills): %v", seed, kills, err)
	}
	if kills == 0 {
		t.Fatalf("seed %d produced no kills; the drill exercised nothing", seed)
	}
	t.Logf("killed the connection %d times; client stats: %+v", kills, ds.Stats())

	if !reflect.DeepEqual(normalizeProc(inproc), normalizeProc(wire)) {
		t.Fatalf("seed %d: interrupted wire replay diverged from uninterrupted run: %d vs %d snaps",
			seed, len(inproc), len(wire))
	}
	st := srv.Source("cam0").SourceStats()
	if st.Faults != 0 || st.DroppedEvents != 0 || st.SeqGaps != 0 {
		t.Fatalf("seed %d: chaos run must end lossless and fault-free: %+v", seed, st)
	}
	if st.Resumes == 0 || st.Epoch != int64(st.Resumes)+1 {
		t.Fatalf("seed %d: resume accounting off: resumes=%d epoch=%d", seed, st.Resumes, st.Epoch)
	}
}
