package ingest

import (
	"fmt"
	"io"
	"sync"

	"ebbiot/internal/events"
	"ebbiot/internal/pipeline"
)

// DropPolicy selects what a full per-stream queue does with the next
// incoming batch.
type DropPolicy int

const (
	// Block stops reading from the connection until the consumer drains a
	// batch — backpressure propagates to the sender through TCP flow
	// control. No events are lost; a persistently slow consumer slows the
	// camera down.
	Block DropPolicy = iota
	// DropOldest evicts the oldest queued batch to admit the new one: the
	// stream stays current at the cost of a gap in the past. Best for live
	// tracking, where stale windows are worthless.
	DropOldest
	// DropNewest discards the incoming batch and keeps the queue as is:
	// the already-buffered prefix is preserved contiguously. Best when a
	// complete prefix matters more than freshness.
	DropNewest
)

// String implements fmt.Stringer.
func (p DropPolicy) String() string {
	switch p {
	case Block:
		return "block"
	case DropOldest:
		return "drop-oldest"
	case DropNewest:
		return "drop-newest"
	default:
		return fmt.Sprintf("DropPolicy(%d)", int(p))
	}
}

// ParseDropPolicy parses the CLI spelling of a policy.
func ParseDropPolicy(s string) (DropPolicy, error) {
	switch s {
	case "block":
		return Block, nil
	case "drop-oldest":
		return DropOldest, nil
	case "drop-newest":
		return DropNewest, nil
	default:
		return 0, fmt.Errorf("ingest: unknown drop policy %q (want block, drop-oldest or drop-newest)", s)
	}
}

// NetSourceConfig parameterises a NetSource.
type NetSourceConfig struct {
	// QueueBatches bounds the decoded-batch queue; 0 means 64.
	QueueBatches int
	// Policy is the full-queue behaviour; the zero value is Block.
	Policy DropPolicy
	// FailFast makes a mid-stream fault (torn frame, stalled or dropped
	// connection, protocol violation) surface as an error from NextWindow
	// — failing the stream, and with it the run — once the already-queued
	// batches are drained. The default (false) is fault-tolerant: the
	// fault is counted, recorded in SourceStats.LastError and the stream
	// ends as if the sensor had cleanly finished, so one bad camera never
	// takes down a fleet's run.
	FailFast bool
}

// batch is one accepted event batch queued for the consumer.
type batch struct {
	evs []events.Event
}

// NetSource adapts one sensor connection to pipeline.EventSource. The
// producing side (Server's per-connection read loop, or tests) pushes
// decoded batches through offer/finish/fail; the consuming side is the
// pipeline worker calling NextWindow, which blocks until enough of the
// stream has arrived to close out the requested window.
//
// NetSource implements pipeline.SourceMeter, so its counters flow into
// StreamStatus, /streams/{id} and /metrics automatically.
type NetSource struct {
	cfg NetSourceConfig

	mu   sync.Mutex
	cond *sync.Cond
	// queue holds accepted batches awaiting the consumer.
	queue []batch
	// pending is the consumer-side staging buffer: events popped from the
	// queue but beyond the current window's end.
	pending []events.Event
	// closed: no more batches will ever arrive (clean EOF, fault, abort).
	closed bool
	// failErr is the terminal fault, surfaced by NextWindow iff FailFast.
	failErr error
	// lastSeq is the highest accepted batch sequence number.
	lastSeq uint64
	// lastT is the last accepted event timestamp, for cross-batch order
	// enforcement.
	lastT int64

	stats pipeline.SourceStats
}

// NewNetSource returns an unconnected source: NextWindow blocks until a
// producer attaches and feeds it. Server creates one per expected stream;
// tests may drive offer/finish/fail directly.
func NewNetSource(cfg NetSourceConfig) *NetSource {
	if cfg.QueueBatches <= 0 {
		cfg.QueueBatches = 64
	}
	n := &NetSource{cfg: cfg}
	n.cond = sync.NewCond(&n.mu)
	return n
}

// setConnected flips the connection-liveness gauge.
func (n *NetSource) setConnected(up bool) {
	n.mu.Lock()
	n.stats.Connected = up
	n.mu.Unlock()
}

// setResumable flips the grace-window gauge: a disconnected session that
// may still be resumed.
func (n *NetSource) setResumable(v bool) {
	n.mu.Lock()
	n.stats.Resumable = v
	n.mu.Unlock()
}

// setEpoch publishes the session epoch.
func (n *NetSource) setEpoch(e uint64) {
	n.mu.Lock()
	n.stats.Epoch = int64(e)
	n.mu.Unlock()
}

// noteResume counts one accepted session resume.
func (n *NetSource) noteResume() {
	n.mu.Lock()
	n.stats.Resumes++
	n.mu.Unlock()
}

// LastSeq returns the highest accepted batch sequence number — the
// resume point a reconnecting client replays past.
func (n *NetSource) LastSeq() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.lastSeq
}

// primeSeq advances the sequence floor without counting gaps, used when a
// resume point beyond the source's own high-water mark is negotiated (a
// client resuming into a restarted server): batches at or below the floor
// are dups, the first fresh one is not a gap.
func (n *NetSource) primeSeq(seq uint64) {
	n.mu.Lock()
	if seq > n.lastSeq {
		n.lastSeq = seq
	}
	n.mu.Unlock()
}

// offer hands one decoded batch to the stream. It enforces the sequence
// discipline (duplicates and reordered batches are dropped and counted,
// gaps are counted) and cross-batch timestamp order, then queues the
// batch under the configured policy. Block policy blocks the caller —
// that is the backpressure path. The returned error is a protocol
// violation the caller should treat as a stream fault; offer on a closed
// source returns io.ErrClosedPipe.
func (n *NetSource) offer(seq uint64, evs []events.Event) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return io.ErrClosedPipe
	}
	if seq <= n.lastSeq {
		// Duplicate or reordered batch: already delivered (or superseded)
		// territory. Dropping it keeps the consumed stream time-sorted.
		n.stats.DupBatches++
		n.stats.DroppedEvents += int64(len(evs))
		return nil
	}
	if seq > n.lastSeq+1 {
		n.stats.SeqGaps += int64(seq - n.lastSeq - 1)
	}
	if len(evs) > 0 && evs[0].T < n.lastT {
		return fmt.Errorf("%w: batch %d starts at t=%d before t=%d: %v",
			ErrBadFrame, seq, evs[0].T, n.lastT, events.ErrUnsorted)
	}
	n.lastSeq = seq
	n.stats.Batches++
	n.stats.Events += int64(len(evs))
	if len(evs) == 0 {
		return nil // heartbeat: sequence advanced, nothing to queue
	}
	n.lastT = evs[len(evs)-1].T
	for len(n.queue) >= n.cfg.QueueBatches {
		switch n.cfg.Policy {
		case DropOldest:
			old := n.queue[0]
			copy(n.queue, n.queue[1:])
			n.queue = n.queue[:len(n.queue)-1]
			n.stats.DroppedBatches++
			n.stats.DroppedEvents += int64(len(old.evs))
		case DropNewest:
			n.stats.DroppedBatches++
			n.stats.DroppedEvents += int64(len(evs))
			return nil
		default: // Block
			n.cond.Wait()
			if n.closed {
				return io.ErrClosedPipe
			}
		}
	}
	n.queue = append(n.queue, batch{evs: evs})
	n.cond.Broadcast()
	return nil
}

// finish marks a clean end of stream: queued batches remain consumable,
// then NextWindow reports io.EOF.
func (n *NetSource) finish() {
	n.mu.Lock()
	n.closed = true
	n.stats.Connected = false
	n.cond.Broadcast()
	n.mu.Unlock()
}

// fail records a mid-stream fault and ends the stream. Under FailFast the
// error surfaces from NextWindow once the queue drains; otherwise it is
// counted and the stream ends like a clean EOF.
func (n *NetSource) fail(err error) {
	n.mu.Lock()
	if !n.closed {
		n.closed = true
		n.stats.Connected = false
		n.stats.Faults++
		if err != nil {
			n.stats.LastError = err.Error()
			if n.failErr == nil {
				n.failErr = err
			}
		}
	}
	n.cond.Broadcast()
	n.mu.Unlock()
}

// SourceStats implements pipeline.SourceMeter.
func (n *NetSource) SourceStats() pipeline.SourceStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	st := n.stats
	st.QueuedBatches = int64(len(n.queue))
	return st
}

// NextWindow implements pipeline.EventSource. It appends the stream's
// events in [start, end) to buf, blocking until an event at or past end
// (or the end of the stream) proves the window complete — on a live
// connection this is what paces the pipeline to sensor time.
func (n *NetSource) NextWindow(buf []events.Event, start, end int64) ([]events.Event, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for {
		// Deliver the pending prefix below end.
		cut := 0
		for cut < len(n.pending) && n.pending[cut].T < end {
			cut++
		}
		buf = append(buf, n.pending[:cut]...)
		n.pending = n.pending[cut:]
		if len(n.pending) > 0 {
			// An event at or beyond end proves the window complete.
			return buf, nil
		}
		if len(n.queue) > 0 {
			b := n.queue[0]
			copy(n.queue, n.queue[1:])
			n.queue = n.queue[:len(n.queue)-1]
			n.pending = append(n.pending[:0], b.evs...)
			n.cond.Broadcast() // a Block-policy producer may be waiting
			continue
		}
		if n.closed {
			if n.failErr != nil && n.cfg.FailFast {
				return buf, fmt.Errorf("ingest: stream fault: %w", n.failErr)
			}
			return buf, io.EOF
		}
		n.cond.Wait()
	}
}
