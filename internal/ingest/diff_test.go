package ingest

import (
	"context"
	"math"
	"reflect"
	"testing"

	"ebbiot/internal/core"
	"ebbiot/internal/dataset"
	"ebbiot/internal/events"
	"ebbiot/internal/pipeline"
	"ebbiot/internal/store"
)

const diffFrameUS = 66_000

// diffRecording generates a short deterministic LT4-style recording.
func diffRecording(t *testing.T) (dataset.Spec, []events.Event) {
	t.Helper()
	spec, err := dataset.For(dataset.LT4, 3.0/999.5, 77)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := dataset.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	var all []events.Event
	for cursor := int64(0); cursor < spec.DurationUS; {
		end := cursor + diffFrameUS
		if end > spec.DurationUS {
			end = spec.DurationUS
		}
		evs, err := rec.Sim.Events(cursor, end)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, evs...)
		cursor = end
	}
	return spec, all
}

// runCollect drives one stream through a Runner with a real EBBIOT system
// and returns the snapshot sequence.
func runCollect(t *testing.T, src pipeline.EventSource, extra pipeline.Sink) []pipeline.TrackSnapshot {
	t.Helper()
	sys, err := core.NewEBBIOT(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r, err := pipeline.NewRunner(pipeline.Config{FrameUS: diffFrameUS})
	if err != nil {
		t.Fatal(err)
	}
	var got []pipeline.TrackSnapshot
	collect := pipeline.SinkFunc(func(snap pipeline.TrackSnapshot) error {
		got = append(got, snap)
		return nil
	})
	var sink pipeline.Sink = collect
	if extra != nil {
		sink = pipeline.MultiSink{collect, extra}
	}
	streams := []pipeline.Stream{{Name: "cam0", Source: src, System: sys}}
	if _, err := r.Run(context.Background(), streams, sink); err != nil {
		t.Fatal(err)
	}
	return got
}

// normalizeProc zeroes the wall-clock field: processing time legitimately
// differs between runs; everything else must be bit-identical.
func normalizeProc(snaps []pipeline.TrackSnapshot) []pipeline.TrackSnapshot {
	out := make([]pipeline.TrackSnapshot, len(snaps))
	for i, s := range snaps {
		s.ProcUS = 0
		out[i] = s
	}
	return out
}

// TestWireReplayBitIdentical is the acceptance property for the ingest
// path: streaming a recorded run over the loopback wire — with batch
// boundaries deliberately misaligned against the frame clock — produces
// bit-identical TrackSnapshots to replaying the same events in process,
// and to replaying the in-process run back out of the store it was
// recorded into.
func TestWireReplayBitIdentical(t *testing.T) {
	spec, all := diffRecording(t)
	if len(all) == 0 {
		t.Fatal("empty recording")
	}

	// Path A: in-process replay, recorded through a StoreSink on the side.
	dir := t.TempDir()
	w, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sliceSrc, err := pipeline.NewSliceSource(all)
	if err != nil {
		t.Fatal(err)
	}
	inproc := runCollect(t, sliceSrc, pipeline.NewStoreSink(w))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if len(inproc) == 0 {
		t.Fatal("in-process run produced no snapshots")
	}

	// Path B: the same events over the wire, chunked at 17 ms so batch
	// boundaries land nowhere near the 66 ms frame boundaries.
	srv := startServer(t, ServerConfig{Streams: []string{"cam0"}, Res: spec.Sensor.Res})
	sendErr := make(chan error, 1)
	go func() {
		ds, err := Dial(srv.Addr().String(), DialConfig{StreamID: "cam0", Res: spec.Sensor.Res})
		if err != nil {
			sendErr <- err
			return
		}
		const chunkUS = 17_000
		for lo := 0; lo < len(all); {
			hi := lo
			cutoff := all[lo].T + chunkUS
			for hi < len(all) && all[hi].T < cutoff {
				hi++
			}
			if err := ds.Send(all[lo:hi]); err != nil {
				sendErr <- err
				return
			}
			lo = hi
		}
		sendErr <- ds.Close()
	}()
	wire := runCollect(t, srv.Source("cam0"), nil)
	if err := <-sendErr; err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(normalizeProc(inproc), normalizeProc(wire)) {
		t.Fatalf("wire replay diverged from in-process replay:\nin-process: %d snaps\nwire: %d snaps",
			len(inproc), len(wire))
	}
	if st := srv.Source("cam0").SourceStats(); st.DroppedEvents != 0 || st.Faults != 0 {
		t.Fatalf("lossless wire replay expected: %+v", st)
	}

	// Path C: the stored record of path A replays to the same snapshots.
	r, err := store.OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	var replayed []pipeline.TrackSnapshot
	_, err = pipeline.ReplayStore(context.Background(), r, nil, 0, math.MaxInt64,
		pipeline.SinkFunc(func(snap pipeline.TrackSnapshot) error {
			replayed = append(replayed, snap)
			return nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(normalizeProc(inproc), normalizeProc(replayed)) {
		t.Fatalf("store replay diverged: %d vs %d snaps", len(inproc), len(replayed))
	}
}
