// Package ingest is the network event-ingest layer: fleets of cameras push
// address-events to an ebbiot process over a length-framed TCP protocol
// instead of the process reading local AEDAT files.
//
// The wire protocol reuses the store's framing discipline (docs/STORE.md):
// every frame is `u32 payloadLen | u32 CRC32(payload) | payload`, so torn
// and bit-flipped frames are rejected instead of decoded into garbage. A
// connection opens with a handshake (magic, version, sensor resolution,
// stream ID, optional shared-secret token) that the server answers with a
// one-byte status; after acceptance the client streams sequence-numbered
// event batches and finishes with an explicit EOF frame, so a clean end of
// stream is distinguishable from a mid-stream disconnect. The full format
// is specified in docs/INGEST.md; this file is the single source of truth
// for the byte layout.
//
// The receiving side is built for hostile inputs and slow consumers:
// NetSource applies per-stream backpressure through a bounded batch queue
// with selectable drop policies (Block, DropOldest, DropNewest) and
// surfaces every anomaly — queue drops, duplicate/reordered sequence
// numbers, gaps, decode faults — as counters that the pipeline publishes
// through RunStatus, /streams/{id} and /metrics.
package ingest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"ebbiot/internal/events"
)

// Wire constants. Bump wireVersion on any incompatible layout change.
//
// Version 2 adds session resume: a trailing handshake extension (flags +
// last-acked sequence), a 16-byte suffix on the server's OK reply
// (resume point + session epoch) and the server→client cumulative ACK
// frame. Version 1 clients remain fully supported — the server keys every
// v2 behaviour off the version the client advertised, so a v1 handshake
// gets the v1 single-byte reply and no ACK traffic.
const (
	handshakeMagic = "EBIN"
	wireVersion    = 2
	// wireVersionMin is the oldest client version the server still speaks.
	wireVersionMin = 1

	// frameHeaderLen is u32 payloadLen + u32 CRC32(payload).
	frameHeaderLen = 8

	// eventLen is the encoded size of one event: i16 x | i16 y | i64 t |
	// i8 p.
	eventLen = 13

	// maxBatchEvents bounds one batch; larger counts are treated as a
	// protocol violation rather than attempted as an allocation.
	maxBatchEvents = 1 << 20
	// maxFramePayload bounds a frame payload (type + seq + count + events).
	maxFramePayload = 1 + 8 + 4 + maxBatchEvents*eventLen

	maxStreamIDLen = 255
	maxTokenLen    = 255
)

// Frame payload types.
const (
	frameBatch = 1
	frameEOF   = 2
	// frameAck is the server→client cumulative acknowledgement (wire v2):
	// every sequence number up to and including seq has been accepted, so
	// the client may drop those batches from its replay ring.
	frameAck = 3
)

// Handshake extension flags (wire v2).
const (
	// helloFlagResume asks the server to resume a disconnected session
	// instead of claiming a fresh stream.
	helloFlagResume = 1 << 0

	helloFlagsKnown = helloFlagResume
)

// Handshake status codes, answered by the server as a single byte.
const (
	StatusOK uint8 = iota
	StatusUnknownStream
	StatusBadToken
	StatusStreamBusy
	StatusBadHandshake
	StatusResolutionMismatch
)

// statusText maps a reply status to a human-readable reason.
func statusText(s uint8) string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusUnknownStream:
		return "unknown stream id"
	case StatusBadToken:
		return "bad token"
	case StatusStreamBusy:
		return "stream already connected or finished"
	case StatusBadHandshake:
		return "malformed handshake"
	case StatusResolutionMismatch:
		return "resolution mismatch"
	default:
		return fmt.Sprintf("status %d", s)
	}
}

// Typed wire errors. Decoders return these (possibly wrapped with
// position context) so callers can distinguish protocol violations from
// transport failures.
var (
	ErrBadMagic     = errors.New("ingest: bad handshake magic")
	ErrBadVersion   = errors.New("ingest: unsupported wire version")
	ErrBadHandshake = errors.New("ingest: malformed handshake")
	ErrFrameTooBig  = errors.New("ingest: frame exceeds size limit")
	ErrChecksum     = errors.New("ingest: frame checksum mismatch")
	ErrBadFrame     = errors.New("ingest: malformed frame payload")
	ErrRejected     = errors.New("ingest: server rejected handshake")
)

var le = binary.LittleEndian

// Hello is the decoded client handshake.
type Hello struct {
	StreamID string
	Token    string
	// Res is the sensor resolution the client will emit events for; the
	// server rejects the connection when it does not match the deployment's
	// configured resolution.
	Res events.Resolution
	// Version is the wire version the client advertised (1 or 2). The zero
	// value encodes as the current wireVersion.
	Version uint32
	// Resume (v2 only) asks the server to resume a disconnected session:
	// the client will replay every un-ACKed batch past the server's reply
	// point. LastAck is the highest sequence number the client has seen
	// acknowledged — the server treats it as a floor for its reply so a
	// client never replays what it knows was accepted.
	Resume  bool
	LastAck uint64
}

// appendHandshake serialises h. Layout:
//
//	"EBIN" | u32 version | u16 resA | u16 resB |
//	u8 idLen | id | u8 tokenLen | token |
//	[v2: u8 flags | u64 lastAck]
func appendHandshake(dst []byte, h Hello) ([]byte, error) {
	if h.StreamID == "" || len(h.StreamID) > maxStreamIDLen {
		return dst, fmt.Errorf("%w: stream id length %d", ErrBadHandshake, len(h.StreamID))
	}
	if len(h.Token) > maxTokenLen {
		return dst, fmt.Errorf("%w: token length %d", ErrBadHandshake, len(h.Token))
	}
	version := h.Version
	if version == 0 {
		version = wireVersion
	}
	dst = append(dst, handshakeMagic...)
	dst = le.AppendUint32(dst, version)
	dst = le.AppendUint16(dst, uint16(h.Res.A))
	dst = le.AppendUint16(dst, uint16(h.Res.B))
	dst = append(dst, uint8(len(h.StreamID)))
	dst = append(dst, h.StreamID...)
	dst = append(dst, uint8(len(h.Token)))
	dst = append(dst, h.Token...)
	if version >= 2 {
		var flags uint8
		if h.Resume {
			flags |= helloFlagResume
		}
		dst = append(dst, flags)
		dst = le.AppendUint64(dst, h.LastAck)
	}
	return dst, nil
}

// readHandshake decodes a client handshake from r, reading exactly the
// handshake's bytes and nothing further. Both wire versions are accepted;
// the version read first tells the decoder whether the v2 extension
// follows, so the handshake stays self-framing.
func readHandshake(r io.Reader) (Hello, error) {
	var h Hello
	var fixed [13]byte // magic + version + res + idLen
	if _, err := io.ReadFull(r, fixed[:]); err != nil {
		return h, fmt.Errorf("%w: %v", ErrBadHandshake, err)
	}
	if string(fixed[:4]) != handshakeMagic {
		return h, ErrBadMagic
	}
	h.Version = le.Uint32(fixed[4:8])
	if h.Version < wireVersionMin || h.Version > wireVersion {
		return h, fmt.Errorf("%w: got %d, want %d..%d", ErrBadVersion, h.Version, wireVersionMin, wireVersion)
	}
	h.Res = events.Resolution{A: int(le.Uint16(fixed[8:10])), B: int(le.Uint16(fixed[10:12]))}
	idLen := int(fixed[12])
	if idLen == 0 {
		return h, fmt.Errorf("%w: empty stream id", ErrBadHandshake)
	}
	buf := make([]byte, idLen+1)
	if _, err := io.ReadFull(r, buf); err != nil {
		return h, fmt.Errorf("%w: %v", ErrBadHandshake, err)
	}
	h.StreamID = string(buf[:idLen])
	tokLen := int(buf[idLen])
	if tokLen > 0 {
		tok := make([]byte, tokLen)
		if _, err := io.ReadFull(r, tok); err != nil {
			return h, fmt.Errorf("%w: %v", ErrBadHandshake, err)
		}
		h.Token = string(tok)
	}
	if h.Version >= 2 {
		var ext [9]byte // flags + lastAck
		if _, err := io.ReadFull(r, ext[:]); err != nil {
			return h, fmt.Errorf("%w: %v", ErrBadHandshake, err)
		}
		if ext[0]&^uint8(helloFlagsKnown) != 0 {
			return h, fmt.Errorf("%w: unknown handshake flags %#x", ErrBadHandshake, ext[0])
		}
		h.Resume = ext[0]&helloFlagResume != 0
		h.LastAck = le.Uint64(ext[1:])
	}
	return h, nil
}

// helloReply is the server's answer to an accepted v2 handshake: the
// resume point (highest contiguous sequence number the server has
// accepted for the stream — the client replays everything past it) and
// the session epoch (1 on a fresh claim, bumped on every resume).
type helloReply struct {
	ResumeFrom uint64
	Epoch      uint64
}

// appendHelloReply serialises an accepted handshake's reply for the given
// client version: the status byte, plus the 16-byte v2 suffix when the
// client speaks v2. Rejections are always the bare status byte.
func appendHelloReply(dst []byte, version uint32, rep helloReply) []byte {
	dst = append(dst, StatusOK)
	if version >= 2 {
		dst = le.AppendUint64(dst, rep.ResumeFrom)
		dst = le.AppendUint64(dst, rep.Epoch)
	}
	return dst
}

// readHelloReply decodes the server's handshake answer on the client. A
// non-OK status is returned as ErrRejected with the decoded reason.
func readHelloReply(r io.Reader, version uint32) (helloReply, error) {
	var rep helloReply
	var status [1]byte
	if _, err := io.ReadFull(r, status[:]); err != nil {
		return rep, fmt.Errorf("ingest: handshake reply: %w", err)
	}
	if status[0] != StatusOK {
		return rep, fmt.Errorf("%w: %s", ErrRejected, statusText(status[0]))
	}
	if version >= 2 {
		var suffix [16]byte
		if _, err := io.ReadFull(r, suffix[:]); err != nil {
			return rep, fmt.Errorf("ingest: handshake reply: %w", err)
		}
		rep.ResumeFrom = le.Uint64(suffix[0:8])
		rep.Epoch = le.Uint64(suffix[8:16])
	}
	return rep, nil
}

// appendBatchFrame serialises one event batch as a framed payload:
//
//	u32 payloadLen | u32 CRC32 | u8 type=1 | u64 seq | u32 count |
//	count × (i16 x | i16 y | i64 t | i8 p)
func appendBatchFrame(dst []byte, seq uint64, evs []events.Event) ([]byte, error) {
	if len(evs) > maxBatchEvents {
		return dst, fmt.Errorf("%w: %d events", ErrFrameTooBig, len(evs))
	}
	payloadLen := 1 + 8 + 4 + len(evs)*eventLen
	dst = le.AppendUint32(dst, uint32(payloadLen))
	crcAt := len(dst)
	dst = le.AppendUint32(dst, 0) // CRC patched below
	body := len(dst)
	dst = append(dst, frameBatch)
	dst = le.AppendUint64(dst, seq)
	dst = le.AppendUint32(dst, uint32(len(evs)))
	for _, e := range evs {
		dst = le.AppendUint16(dst, uint16(e.X))
		dst = le.AppendUint16(dst, uint16(e.Y))
		dst = le.AppendUint64(dst, uint64(e.T))
		dst = append(dst, byte(e.P))
	}
	le.PutUint32(dst[crcAt:], crc32.ChecksumIEEE(dst[body:]))
	return dst, nil
}

// appendEOFFrame serialises the clean end-of-stream frame: u8 type=2 |
// u64 seq (the sender's final sequence number plus one).
func appendEOFFrame(dst []byte, seq uint64) []byte {
	return appendSeqFrame(dst, frameEOF, seq)
}

// appendAckFrame serialises the server's cumulative acknowledgement
// (wire v2): u8 type=3 | u64 seq — every sequence number up to and
// including seq has been accepted.
func appendAckFrame(dst []byte, seq uint64) []byte {
	return appendSeqFrame(dst, frameAck, seq)
}

// appendSeqFrame frames the shared type+seq payload layout of the EOF and
// ACK frames.
func appendSeqFrame(dst []byte, typ uint8, seq uint64) []byte {
	dst = le.AppendUint32(dst, 1+8)
	crcAt := len(dst)
	dst = le.AppendUint32(dst, 0)
	body := len(dst)
	dst = append(dst, typ)
	dst = le.AppendUint64(dst, seq)
	le.PutUint32(dst[crcAt:], crc32.ChecksumIEEE(dst[body:]))
	return dst
}

// frame is one decoded wire frame.
type frame struct {
	typ uint8
	seq uint64
	// evs holds the batch events (typ == frameBatch); freshly allocated per
	// frame because the consumer queues batches beyond the next read.
	evs []events.Event
}

// decoder incrementally decodes frames off a byte stream. The payload
// scratch buffer is reused across frames; batch event slices are not. A
// decoder validates everything the bytes alone can prove: framing lengths,
// checksums, payload structure, polarity values, in-batch timestamp order
// and (when res is non-zero) pixel addresses. Cross-batch ordering and
// sequence-number discipline are NetSource's job — the decoder is
// stateless across frames so it can be fuzzed on arbitrary byte streams.
type decoder struct {
	r       io.Reader
	hdr     [frameHeaderLen]byte
	payload []byte
	res     events.Resolution // zero disables the address check
}

func newDecoder(r io.Reader, res events.Resolution) *decoder {
	return &decoder{r: r, res: res}
}

// next reads and validates one frame. io.EOF is returned only on a clean
// frame boundary; a stream ending inside a frame yields io.ErrUnexpectedEOF
// (a torn frame, from the receiver's point of view). Transport errors that
// are not stream ends — a read deadline, a reset — pass through unchanged
// so the caller can classify them.
func (d *decoder) next() (frame, error) {
	if _, err := io.ReadFull(d.r, d.hdr[:]); err != nil {
		if err == io.EOF {
			return frame{}, io.EOF
		}
		if err == io.ErrUnexpectedEOF {
			return frame{}, io.ErrUnexpectedEOF
		}
		return frame{}, err
	}
	payloadLen := int(le.Uint32(d.hdr[0:4]))
	wantCRC := le.Uint32(d.hdr[4:8])
	if payloadLen > maxFramePayload {
		return frame{}, fmt.Errorf("%w: payload %d bytes", ErrFrameTooBig, payloadLen)
	}
	if payloadLen < 1 {
		return frame{}, fmt.Errorf("%w: empty payload", ErrBadFrame)
	}
	if cap(d.payload) < payloadLen {
		d.payload = make([]byte, payloadLen)
	}
	p := d.payload[:payloadLen]
	if _, err := io.ReadFull(d.r, p); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return frame{}, io.ErrUnexpectedEOF
		}
		return frame{}, err
	}
	if crc32.ChecksumIEEE(p) != wantCRC {
		return frame{}, ErrChecksum
	}
	return d.parsePayload(p)
}

func (d *decoder) parsePayload(p []byte) (frame, error) {
	switch p[0] {
	case frameEOF, frameAck:
		if len(p) != 1+8 {
			return frame{}, fmt.Errorf("%w: frame type %d length %d", ErrBadFrame, p[0], len(p))
		}
		return frame{typ: p[0], seq: le.Uint64(p[1:])}, nil
	case frameBatch:
		if len(p) < 1+8+4 {
			return frame{}, fmt.Errorf("%w: batch frame length %d", ErrBadFrame, len(p))
		}
		f := frame{typ: frameBatch, seq: le.Uint64(p[1:])}
		count := int(le.Uint32(p[9:]))
		body := p[13:]
		if count > maxBatchEvents || len(body) != count*eventLen {
			return frame{}, fmt.Errorf("%w: batch count %d vs %d payload bytes", ErrBadFrame, count, len(body))
		}
		if count == 0 {
			return f, nil
		}
		f.evs = make([]events.Event, count)
		lastT := int64(-1)
		for i := range f.evs {
			off := i * eventLen
			e := events.Event{
				X: int16(le.Uint16(body[off:])),
				Y: int16(le.Uint16(body[off+2:])),
				T: int64(le.Uint64(body[off+4:])),
				P: events.Polarity(int8(body[off+12])),
			}
			if !e.P.Valid() {
				return frame{}, fmt.Errorf("%w: event %d polarity %d", ErrBadFrame, i, int8(e.P))
			}
			if e.T < 0 {
				return frame{}, fmt.Errorf("%w: event %d negative timestamp", ErrBadFrame, i)
			}
			if e.T < lastT {
				return frame{}, fmt.Errorf("%w: batch event %d at t=%d after t=%d: %v",
					ErrBadFrame, i, e.T, lastT, events.ErrUnsorted)
			}
			if d.res.A > 0 && !d.res.Contains(int(e.X), int(e.Y)) {
				return frame{}, fmt.Errorf("%w: event %d at (%d,%d) outside %dx%d",
					ErrBadFrame, i, e.X, e.Y, d.res.A, d.res.B)
			}
			lastT = e.T
			f.evs[i] = e
		}
		return f, nil
	default:
		return frame{}, fmt.Errorf("%w: unknown frame type %d", ErrBadFrame, p[0])
	}
}
