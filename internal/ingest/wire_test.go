package ingest

import (
	"bytes"
	"errors"
	"hash/crc32"
	"io"
	"testing"

	"ebbiot/internal/events"
)

func mustHandshake(t *testing.T, h Hello) []byte {
	t.Helper()
	b, err := appendHandshake(nil, h)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func mustBatch(t *testing.T, seq uint64, evs []events.Event) []byte {
	t.Helper()
	b, err := appendBatchFrame(nil, seq, evs)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func testEvents(n int, t0 int64) []events.Event {
	evs := make([]events.Event, n)
	for i := range evs {
		p := events.On
		if i%2 == 1 {
			p = events.Off
		}
		evs[i] = events.Event{X: int16(i % 240), Y: int16(i % 180), T: t0 + int64(i), P: p}
	}
	return evs
}

func TestHandshakeRoundTrip(t *testing.T) {
	// Version 0 encodes as the current wireVersion.
	want := Hello{StreamID: "cam0", Token: "s3cret", Res: events.DAVIS240}
	got, err := readHandshake(bytes.NewReader(mustHandshake(t, want)))
	if err != nil {
		t.Fatal(err)
	}
	want.Version = wireVersion
	if got != want {
		t.Fatalf("handshake round trip: got %+v want %+v", got, want)
	}

	// No token.
	want = Hello{StreamID: "a", Res: events.Resolution{A: 640, B: 480}, Version: wireVersion}
	got, err = readHandshake(bytes.NewReader(mustHandshake(t, want)))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("tokenless round trip: got %+v want %+v", got, want)
	}

	// Explicit v1: no extension bytes on the wire, zero resume fields back.
	want = Hello{StreamID: "old", Token: "tok", Res: events.DAVIS240, Version: 1}
	got, err = readHandshake(bytes.NewReader(mustHandshake(t, want)))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("v1 round trip: got %+v want %+v", got, want)
	}

	// v2 resume request carries the flag and the last-acked sequence.
	want = Hello{StreamID: "cam1", Res: events.DAVIS240, Version: 2, Resume: true, LastAck: 12345}
	got, err = readHandshake(bytes.NewReader(mustHandshake(t, want)))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("resume round trip: got %+v want %+v", got, want)
	}
}

func TestHandshakeVersionFraming(t *testing.T) {
	// A v1 handshake is exactly its own bytes: the reader must not consume
	// past it even when more data follows (the first frame).
	v1 := mustHandshake(t, Hello{StreamID: "cam0", Version: 1})
	v2 := mustHandshake(t, Hello{StreamID: "cam0", Version: 2})
	if len(v2) != len(v1)+9 {
		t.Fatalf("v2 extension size: len(v2)=%d len(v1)=%d, want +9", len(v2), len(v1))
	}
	r := bytes.NewReader(append(append([]byte(nil), v1...), 0xAB))
	if _, err := readHandshake(r); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 {
		t.Fatalf("v1 read consumed past the handshake: %d bytes left, want 1", r.Len())
	}

	// Truncated v2 extension is a malformed handshake, not a crash.
	if _, err := readHandshake(bytes.NewReader(v2[:len(v2)-3])); !errors.Is(err, ErrBadHandshake) {
		t.Fatalf("truncated extension: got %v, want ErrBadHandshake", err)
	}

	// Unknown flag bits are rejected so future flags can change semantics.
	bad := append([]byte(nil), v2...)
	bad[len(bad)-9] = 0x80
	if _, err := readHandshake(bytes.NewReader(bad)); !errors.Is(err, ErrBadHandshake) {
		t.Fatalf("unknown flags: got %v, want ErrBadHandshake", err)
	}
}

func TestHelloReplyRoundTrip(t *testing.T) {
	// v1 reply: the bare status byte.
	b := appendHelloReply(nil, 1, helloReply{ResumeFrom: 7, Epoch: 3})
	if len(b) != 1 {
		t.Fatalf("v1 reply length %d, want 1", len(b))
	}
	rep, err := readHelloReply(bytes.NewReader(b), 1)
	if err != nil || rep != (helloReply{}) {
		t.Fatalf("v1 reply: %+v err %v", rep, err)
	}

	// v2 reply carries the resume point and epoch.
	want := helloReply{ResumeFrom: 42, Epoch: 5}
	b = appendHelloReply(nil, 2, want)
	if len(b) != 17 {
		t.Fatalf("v2 reply length %d, want 17", len(b))
	}
	rep, err = readHelloReply(bytes.NewReader(b), 2)
	if err != nil || rep != want {
		t.Fatalf("v2 reply: %+v err %v, want %+v", rep, err, want)
	}

	// Rejections are a bare byte on both versions and decode to ErrRejected.
	if _, err := readHelloReply(bytes.NewReader([]byte{StatusStreamBusy}), 2); !errors.Is(err, ErrRejected) {
		t.Fatalf("rejection: got %v, want ErrRejected", err)
	}

	// A truncated v2 suffix is a transport error, not a silent zero reply.
	if _, err := readHelloReply(bytes.NewReader(b[:5]), 2); err == nil {
		t.Fatal("truncated v2 reply: want an error")
	}
}

func TestAckFrameRoundTrip(t *testing.T) {
	wire := appendAckFrame(nil, 99)
	f, err := newDecoder(bytes.NewReader(wire), events.DAVIS240).next()
	if err != nil || f.typ != frameAck || f.seq != 99 {
		t.Fatalf("ack frame: %+v err %v", f, err)
	}
	// Wrong payload length for a seq frame is malformed.
	bad := append([]byte(nil), wire...)
	bad = bad[:len(bad)-1]
	le.PutUint32(bad, 1+8-1)
	patchCRC(bad)
	if _, err := newDecoder(bytes.NewReader(bad), events.DAVIS240).next(); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("short ack payload: got %v, want ErrBadFrame", err)
	}
}

func TestHandshakeRejectsGarbage(t *testing.T) {
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrBadHandshake},
		{"bad magic", append([]byte("NOPE"), mustHandshake(t, Hello{StreamID: "x"})[4:]...), ErrBadMagic},
		{"truncated", mustHandshake(t, Hello{StreamID: "cam0", Token: "tok"})[:10], ErrBadHandshake},
		{"short id", mustHandshake(t, Hello{StreamID: "cam0"})[:14], ErrBadHandshake},
	}
	// Wrong version.
	bad := mustHandshake(t, Hello{StreamID: "cam0"})
	bad[4] = 99
	cases = append(cases, struct {
		name string
		data []byte
		want error
	}{"bad version", bad, ErrBadVersion})
	// Zero-length id.
	zid := mustHandshake(t, Hello{StreamID: "x"})
	zid[12] = 0
	cases = append(cases, struct {
		name string
		data []byte
		want error
	}{"empty id", zid[:13], ErrBadHandshake})

	for _, tc := range cases {
		if _, err := readHandshake(bytes.NewReader(tc.data)); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestHandshakeEncodeLimits(t *testing.T) {
	if _, err := appendHandshake(nil, Hello{}); !errors.Is(err, ErrBadHandshake) {
		t.Errorf("empty id: got %v", err)
	}
	long := string(make([]byte, maxStreamIDLen+1))
	if _, err := appendHandshake(nil, Hello{StreamID: long}); !errors.Is(err, ErrBadHandshake) {
		t.Errorf("oversized id: got %v", err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	evs := testEvents(100, 5000)
	var wire []byte
	wire = append(wire, mustBatch(t, 1, evs)...)
	wire = append(wire, mustBatch(t, 2, nil)...) // heartbeat
	wire = append(wire, appendEOFFrame(nil, 3)...)

	dec := newDecoder(bytes.NewReader(wire), events.DAVIS240)
	f, err := dec.next()
	if err != nil {
		t.Fatal(err)
	}
	if f.typ != frameBatch || f.seq != 1 || len(f.evs) != len(evs) {
		t.Fatalf("batch frame: %+v", f)
	}
	for i := range evs {
		if f.evs[i] != evs[i] {
			t.Fatalf("event %d: got %v want %v", i, f.evs[i], evs[i])
		}
	}
	f, err = dec.next()
	if err != nil || f.typ != frameBatch || f.seq != 2 || f.evs != nil {
		t.Fatalf("heartbeat frame: %+v err %v", f, err)
	}
	f, err = dec.next()
	if err != nil || f.typ != frameEOF || f.seq != 3 {
		t.Fatalf("eof frame: %+v err %v", f, err)
	}
	if _, err = dec.next(); err != io.EOF {
		t.Fatalf("after eof: got %v, want io.EOF", err)
	}
}

func TestDecoderRejectsCorruption(t *testing.T) {
	evs := testEvents(10, 0)
	valid := mustBatch(t, 1, evs)

	t.Run("bit flip fails checksum", func(t *testing.T) {
		for _, i := range []int{frameHeaderLen, frameHeaderLen + 5, len(valid) - 1} {
			mut := append([]byte(nil), valid...)
			mut[i] ^= 0x10
			if _, err := newDecoder(bytes.NewReader(mut), events.DAVIS240).next(); !errors.Is(err, ErrChecksum) {
				t.Errorf("flip at %d: got %v, want ErrChecksum", i, err)
			}
		}
	})
	t.Run("torn frame", func(t *testing.T) {
		for _, cut := range []int{1, frameHeaderLen - 1, frameHeaderLen + 3, len(valid) - 1} {
			if _, err := newDecoder(bytes.NewReader(valid[:cut]), events.DAVIS240).next(); !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Errorf("cut at %d: got %v, want io.ErrUnexpectedEOF", cut, err)
			}
		}
	})
	t.Run("oversized length field", func(t *testing.T) {
		mut := append([]byte(nil), valid...)
		le.PutUint32(mut, uint32(maxFramePayload+1))
		if _, err := newDecoder(bytes.NewReader(mut), events.DAVIS240).next(); !errors.Is(err, ErrFrameTooBig) {
			t.Errorf("got %v, want ErrFrameTooBig", err)
		}
	})
	t.Run("count payload mismatch", func(t *testing.T) {
		// Rewrite the count field without adjusting the payload; re-CRC so
		// only the structural check can catch it.
		mut := append([]byte(nil), valid...)
		le.PutUint32(mut[frameHeaderLen+9:], 999)
		patchCRC(mut)
		if _, err := newDecoder(bytes.NewReader(mut), events.DAVIS240).next(); !errors.Is(err, ErrBadFrame) {
			t.Errorf("got %v, want ErrBadFrame", err)
		}
	})
	t.Run("unknown frame type", func(t *testing.T) {
		mut := append([]byte(nil), valid...)
		mut[frameHeaderLen] = 77
		patchCRC(mut)
		if _, err := newDecoder(bytes.NewReader(mut), events.DAVIS240).next(); !errors.Is(err, ErrBadFrame) {
			t.Errorf("got %v, want ErrBadFrame", err)
		}
	})
	t.Run("invalid polarity", func(t *testing.T) {
		mut := mustBatch(t, 1, evs)
		// Polarity byte of event 0 sits at payload offset 13 + 12.
		mut[frameHeaderLen+13+12] = 0
		patchCRC(mut)
		if _, err := newDecoder(bytes.NewReader(mut), events.DAVIS240).next(); !errors.Is(err, ErrBadFrame) {
			t.Errorf("got %v, want ErrBadFrame", err)
		}
	})
	t.Run("unsorted batch", func(t *testing.T) {
		bad := testEvents(3, 100)
		bad[2].T = 50
		mut, err := appendBatchFrame(nil, 1, bad)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := newDecoder(bytes.NewReader(mut), events.DAVIS240).next(); !errors.Is(err, ErrBadFrame) {
			t.Errorf("got %v, want ErrBadFrame", err)
		}
	})
	t.Run("event outside resolution", func(t *testing.T) {
		out := []events.Event{{X: 240, Y: 0, T: 1, P: events.On}}
		mut, err := appendBatchFrame(nil, 1, out)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := newDecoder(bytes.NewReader(mut), events.DAVIS240).next(); !errors.Is(err, ErrBadFrame) {
			t.Errorf("got %v, want ErrBadFrame", err)
		}
		// With no configured resolution the address check is disabled.
		if _, err := newDecoder(bytes.NewReader(mut), events.Resolution{}).next(); err != nil {
			t.Errorf("unchecked resolution: got %v", err)
		}
	})
}

// patchCRC recomputes the CRC of a single mutated frame in place.
func patchCRC(frame []byte) {
	le.PutUint32(frame[4:], crc32.ChecksumIEEE(frame[frameHeaderLen:]))
}
