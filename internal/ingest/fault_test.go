package ingest

import (
	"context"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"ebbiot/internal/events"
	"ebbiot/internal/geometry"
	"ebbiot/internal/pipeline"
)

// countSystem is a trivial core.System for exercising the transport: each
// window reports one box whose X is the window's event count, so snapshots
// encode exactly what arrived.
type countSystem struct{ windows int }

func (c *countSystem) Name() string { return "count" }

func (c *countSystem) ProcessWindow(evs []events.Event) ([]geometry.Box, error) {
	c.windows++
	if len(evs) == 0 {
		return nil, nil
	}
	return []geometry.Box{geometry.NewBox(len(evs), c.windows, 1, 1)}, nil
}

// startServer spins up an ingest server for the given stream IDs and
// guarantees teardown.
func startServer(t *testing.T, cfg ServerConfig) *Server {
	t.Helper()
	srv, err := Listen("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// waitStats polls a source until cond approves its stats or the deadline
// passes — connection goroutines record faults asynchronously.
func waitStats(t *testing.T, src *NetSource, what string, cond func(pipeline.SourceStats) bool) pipeline.SourceStats {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := src.SourceStats()
		if cond(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s; stats: %+v", what, st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// rawSender dials and completes the handshake by hand, for injecting
// arbitrary bytes after it. It speaks wire v1 — the raw fault tests are
// about frame-level behaviour, and a v1 connection keeps the server's
// legacy immediate-fault semantics (no resume grace, no ACK traffic to
// drain).
func rawSender(t *testing.T, addr, stream string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	hs, err := appendHandshake(nil, Hello{StreamID: stream, Res: events.DAVIS240, Version: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(hs); err != nil {
		t.Fatal(err)
	}
	var status [1]byte
	if _, err := conn.Read(status[:]); err != nil {
		t.Fatal(err)
	}
	if status[0] != StatusOK {
		t.Fatalf("handshake rejected: %s", statusText(status[0]))
	}
	return conn
}

// runStreams drives every listed stream through a Runner with tolerant
// sources and returns per-stream delivered event totals (from the box
// encoding) and the run error.
func runStreams(t *testing.T, srv *Server, ids []string) (map[string]int, error) {
	t.Helper()
	streams := make([]pipeline.Stream, len(ids))
	for i, id := range ids {
		streams[i] = pipeline.Stream{Name: id, Source: srv.Source(id), System: &countSystem{}}
	}
	r, err := pipeline.NewRunner(pipeline.Config{FrameUS: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	total := make(map[string]int)
	_, runErr := r.Run(context.Background(), streams, pipeline.SinkFunc(func(snap pipeline.TrackSnapshot) error {
		for _, b := range snap.Boxes {
			total[snap.Name] += b.X
		}
		return nil
	}))
	return total, runErr
}

// TestFaultTornFrame cuts a connection mid-frame and asserts the fault is
// counted, the pre-fault batch still tracks, and a healthy concurrent
// stream is completely unaffected.
func TestFaultTornFrame(t *testing.T) {
	srv := startServer(t, ServerConfig{Streams: []string{"bad", "good"}, Res: events.DAVIS240})

	// Healthy stream: full send with a clean EOF frame.
	good, err := Dial(srv.Addr().String(), DialConfig{StreamID: "good", Res: events.DAVIS240})
	if err != nil {
		t.Fatal(err)
	}
	const goodEvents = 500
	if err := good.Send(testEvents(goodEvents, 0)); err != nil {
		t.Fatal(err)
	}
	if err := good.Close(); err != nil {
		t.Fatal(err)
	}

	// Faulty stream: one complete batch, then half a frame, then the plug is
	// pulled.
	conn := rawSender(t, srv.Addr().String(), "bad")
	full, err := appendBatchFrame(nil, 1, testEvents(100, 0))
	if err != nil {
		t.Fatal(err)
	}
	torn, err := appendBatchFrame(nil, 2, testEvents(100, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(append(full, torn[:len(torn)/2]...)); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	st := waitStats(t, srv.Source("bad"), "torn-frame fault", func(st pipeline.SourceStats) bool {
		return st.Faults == 1
	})
	if !strings.Contains(st.LastError, "torn frame") {
		t.Fatalf("LastError = %q, want a torn-frame description", st.LastError)
	}
	if st.Batches != 1 || st.Events != 100 {
		t.Fatalf("pre-fault batch not accepted: %+v", st)
	}

	total, runErr := runStreams(t, srv, []string{"bad", "good"})
	if runErr != nil {
		t.Fatalf("tolerant run must not fail on a stream fault: %v", runErr)
	}
	if total["good"] != goodEvents {
		t.Fatalf("surviving stream delivered %d events, want %d", total["good"], goodEvents)
	}
	if total["bad"] != 100 {
		t.Fatalf("faulty stream delivered %d events, want the 100 accepted before the tear", total["bad"])
	}
}

// TestFaultDisconnectWithoutEOF aborts a connection on a frame boundary
// (no EOF frame) and asserts it is recorded as a fault, not a clean end.
func TestFaultDisconnectWithoutEOF(t *testing.T) {
	srv := startServer(t, ServerConfig{Streams: []string{"cam0"}, ResumeGrace: -1})
	ds, err := Dial(srv.Addr().String(), DialConfig{StreamID: "cam0"})
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Send(testEvents(50, 0)); err != nil {
		t.Fatal(err)
	}
	if err := ds.Flush(); err != nil {
		t.Fatal(err)
	}
	// Let the server accept the batch before the plug is pulled, so the
	// assertion below can distinguish data loss from the fault itself.
	waitStats(t, srv.Source("cam0"), "batch accepted", func(st pipeline.SourceStats) bool {
		return st.Batches == 1
	})
	ds.Abort()
	st := waitStats(t, srv.Source("cam0"), "disconnect fault", func(st pipeline.SourceStats) bool {
		return st.Faults == 1
	})
	if !strings.Contains(st.LastError, "disconnect without EOF frame") {
		t.Fatalf("LastError = %q, want a disconnect description", st.LastError)
	}
	if st.Events != 50 {
		t.Fatalf("accepted events before disconnect: %d, want 50", st.Events)
	}
}

// TestFaultStalledWriter holds a connection open without sending frames
// past the idle timeout and asserts the stall is recorded as a fault.
func TestFaultStalledWriter(t *testing.T) {
	srv := startServer(t, ServerConfig{Streams: []string{"cam0"}, IdleTimeout: 50 * time.Millisecond})
	conn := rawSender(t, srv.Addr().String(), "cam0")
	defer conn.Close()
	st := waitStats(t, srv.Source("cam0"), "stall fault", func(st pipeline.SourceStats) bool {
		return st.Faults == 1
	})
	if !strings.Contains(st.LastError, "stalled writer") {
		t.Fatalf("LastError = %q, want a stalled-writer description", st.LastError)
	}
}

// TestFaultDuplicateAndReorderedSeq sends duplicate and out-of-order
// sequence numbers plus a gap; the stream must survive to a clean EOF with
// the anomalies counted and the duplicates dropped.
func TestFaultDuplicateAndReorderedSeq(t *testing.T) {
	srv := startServer(t, ServerConfig{Streams: []string{"cam0"}})
	conn := rawSender(t, srv.Addr().String(), "cam0")

	var wire []byte
	mustAppend := func(seq uint64, evs []events.Event) {
		b, err := appendBatchFrame(wire, seq, evs)
		if err != nil {
			t.Fatal(err)
		}
		wire = b
	}
	mustAppend(1, testEvents(10, 0))
	mustAppend(1, testEvents(10, 0))    // duplicate
	mustAppend(4, testEvents(10, 1000)) // gap: 2 and 3 skipped
	mustAppend(2, testEvents(10, 500))  // reordered: stale seq after a newer one
	wire = appendEOFFrame(wire, 5)
	if _, err := conn.Write(wire); err != nil {
		t.Fatal(err)
	}

	st := waitStats(t, srv.Source("cam0"), "clean EOF", func(st pipeline.SourceStats) bool {
		return !st.Connected && st.Batches == 2
	})
	if st.Faults != 0 {
		t.Fatalf("seq anomalies must not fault the stream: %+v", st)
	}
	if st.DupBatches != 2 {
		t.Fatalf("DupBatches = %d, want 2 (one duplicate, one reordered)", st.DupBatches)
	}
	if st.SeqGaps != 2 {
		t.Fatalf("SeqGaps = %d, want 2", st.SeqGaps)
	}
	if st.Events != 20 || st.DroppedEvents != 20 {
		t.Fatalf("accepted/dropped events: %+v", st)
	}

	total, runErr := runStreams(t, srv, []string{"cam0"})
	if runErr != nil {
		t.Fatal(runErr)
	}
	if total["cam0"] != 20 {
		t.Fatalf("delivered %d events, want the 20 accepted ones", total["cam0"])
	}
}

// TestFaultFailFastFailsRun opts a deployment into FailFast and asserts a
// torn connection surfaces as a run error with the source_errors counter
// incremented — the strict-mode counterpart of TestFaultTornFrame.
func TestFaultFailFastFailsRun(t *testing.T) {
	srv := startServer(t, ServerConfig{Streams: []string{"cam0"}, FailFast: true, ResumeGrace: -1})
	ds, err := Dial(srv.Addr().String(), DialConfig{StreamID: "cam0"})
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Send(testEvents(50, 0)); err != nil {
		t.Fatal(err)
	}
	if err := ds.Flush(); err != nil {
		t.Fatal(err)
	}
	waitStats(t, srv.Source("cam0"), "batch accepted", func(st pipeline.SourceStats) bool {
		return st.Batches == 1
	})
	ds.Abort()
	waitStats(t, srv.Source("cam0"), "fault", func(st pipeline.SourceStats) bool {
		return st.Faults == 1
	})

	streams := []pipeline.Stream{{Name: "cam0", Source: srv.Source("cam0"), System: &countSystem{}}}
	r, err := pipeline.NewRunner(pipeline.Config{FrameUS: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	_, runErr := r.Run(context.Background(), streams, nil)
	if runErr == nil || !strings.Contains(runErr.Error(), "stream fault") {
		t.Fatalf("FailFast run error = %v, want a stream-fault error", runErr)
	}
	snap := r.Status().Snapshot()
	if snap.SourceErrors != 1 {
		t.Fatalf("run source_errors = %d, want 1", snap.SourceErrors)
	}
	var ss *pipeline.StreamSnapshot
	for i := range snap.PerStream {
		if snap.PerStream[i].Name == "cam0" {
			ss = &snap.PerStream[i]
		}
	}
	if ss == nil || ss.Source == nil {
		t.Fatalf("stream snapshot missing source stats: %+v", snap.PerStream)
	}
	if ss.Source.Faults != 1 || ss.SourceErrors != 1 {
		t.Fatalf("per-stream counters: source=%+v source_errors=%d", ss.Source, ss.SourceErrors)
	}
}

// TestConcurrentSendersSlowConsumer is the race-detector workout: N senders
// stream concurrently under the Block policy with a tiny queue while a
// deliberately slow consumer drains them. Nothing may be lost.
func TestConcurrentSendersSlowConsumer(t *testing.T) {
	const (
		senders       = 4
		batchesPer    = 30
		eventsPer     = 40
		eventsStreamT = batchesPer * eventsPer
	)
	ids := make([]string, senders)
	for i := range ids {
		ids[i] = fmt.Sprintf("cam%d", i)
	}
	srv := startServer(t, ServerConfig{Streams: ids, QueueBatches: 2, Policy: Block})

	errc := make(chan error, senders)
	for _, id := range ids {
		go func(id string) {
			ds, err := Dial(srv.Addr().String(), DialConfig{StreamID: id})
			if err != nil {
				errc <- err
				return
			}
			for b := 0; b < batchesPer; b++ {
				if err := ds.Send(testEvents(eventsPer, int64(b*1000))); err != nil {
					errc <- err
					return
				}
				if err := ds.Flush(); err != nil {
					errc <- err
					return
				}
			}
			errc <- ds.Close()
		}(id)
	}

	streams := make([]pipeline.Stream, senders)
	for i, id := range ids {
		streams[i] = pipeline.Stream{Name: id, Source: srv.Source(id), System: &countSystem{}}
	}
	r, err := pipeline.NewRunner(pipeline.Config{FrameUS: 1000, Workers: senders})
	if err != nil {
		t.Fatal(err)
	}
	total := make(map[string]int)
	_, runErr := r.Run(context.Background(), streams, pipeline.SinkFunc(func(snap pipeline.TrackSnapshot) error {
		time.Sleep(100 * time.Microsecond) // the slow consumer
		for _, b := range snap.Boxes {
			total[snap.Name] += b.X
		}
		return nil
	}))
	if runErr != nil {
		t.Fatal(runErr)
	}
	for i := 0; i < senders; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range ids {
		if total[id] != eventsStreamT {
			t.Errorf("stream %s delivered %d events, want %d (Block policy loses nothing)", id, total[id], eventsStreamT)
		}
	}
	for _, id := range ids {
		st := srv.Source(id).SourceStats()
		if st.DroppedBatches != 0 || st.Faults != 0 {
			t.Errorf("stream %s: %+v", id, st)
		}
	}
}
