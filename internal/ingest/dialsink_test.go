package ingest

import (
	"errors"
	"net"
	"testing"
	"time"

	"ebbiot/internal/events"
)

// TestDialRetriesUntilServerUp covers the fleet-boot race: the sensor dials
// before its server listens, and the bounded backoff carries it across the
// gap instead of failing the first connect.
func TestDialRetriesUntilServerUp(t *testing.T) {
	// Reserve a port, then free it so the first dial attempts land on a
	// closed socket.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	srvCh := make(chan *Server, 1)
	go func() {
		time.Sleep(120 * time.Millisecond)
		srv, err := Listen(addr, ServerConfig{Streams: []string{"cam0"}, Res: events.DAVIS240})
		if err != nil {
			srvCh <- nil
			return
		}
		srvCh <- srv
	}()

	sink, err := Dial(addr, DialConfig{
		StreamID:       "cam0",
		Res:            events.DAVIS240,
		ConnectRetries: 20,
		ConnectBackoff: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Dial with retries did not survive a late server: %v", err)
	}
	if err := sink.Send([]events.Event{{X: 1, Y: 1, T: 1, P: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	srv := <-srvCh
	if srv == nil {
		t.Fatal("late server failed to listen")
	}
	srv.Close()
}

// TestDialRetriesAreBounded asserts a dead endpoint fails after the
// configured attempt count, with backoff actually spent between attempts.
func TestDialRetriesAreBounded(t *testing.T) {
	// A listener opened and closed again: nothing will ever accept here.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	start := time.Now()
	_, err = Dial(addr, DialConfig{
		StreamID:       "cam0",
		Res:            events.DAVIS240,
		ConnectRetries: 2,
		ConnectBackoff: 20 * time.Millisecond,
	})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Dial succeeded against a closed port")
	}
	// Two retries with 20 ms base: sleeps in [10,20] + [20,40] ms.
	if elapsed < 30*time.Millisecond {
		t.Fatalf("Dial returned after %v; backoff between attempts not taken", elapsed)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("bounded retry took %v", elapsed)
	}
}

// TestDialDoesNotRetryRejection: a server that answers and says no is
// authoritative — retrying a bad token would just hammer it.
func TestDialDoesNotRetryRejection(t *testing.T) {
	srv := startServer(t, ServerConfig{
		Streams: []string{"cam0"},
		Token:   "sesame",
		Res:     events.DAVIS240,
	})

	start := time.Now()
	_, err := Dial(srv.Addr().String(), DialConfig{
		StreamID:       "cam0",
		Token:          "wrong",
		Res:            events.DAVIS240,
		ConnectRetries: 5,
		ConnectBackoff: 500 * time.Millisecond,
	})
	elapsed := time.Since(start)
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("Dial error = %v, want ErrRejected", err)
	}
	// With retries the first sleep alone would be >=250 ms.
	if elapsed > 200*time.Millisecond {
		t.Fatalf("rejection took %v; handshake rejection must not be retried", elapsed)
	}
}

// TestJitteredBackoffBounds pins the backoff envelope: doubling from the
// base, capped, and jittered into [d/2, d].
func TestJitteredBackoffBounds(t *testing.T) {
	base := 200 * time.Millisecond
	want := []time.Duration{
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		1600 * time.Millisecond,
		3200 * time.Millisecond,
		connectBackoffCap,
		connectBackoffCap, // stays capped
	}
	for attempt, d := range want {
		for trial := 0; trial < 50; trial++ {
			got := jitteredBackoff(base, attempt)
			if got < d/2 || got > d {
				t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, got, d/2, d)
			}
		}
	}
}
