package ingest

import (
	"errors"
	"io"
	"net"
	"strings"
	"testing"

	"ebbiot/internal/events"
)

func TestServerRejectsBadToken(t *testing.T) {
	srv := startServer(t, ServerConfig{Streams: []string{"cam0"}, Token: "hunter2"})
	_, err := Dial(srv.Addr().String(), DialConfig{StreamID: "cam0", Token: "wrong"})
	if !errors.Is(err, ErrRejected) || !strings.Contains(err.Error(), "bad token") {
		t.Fatalf("got %v, want ErrRejected (bad token)", err)
	}
	// The right token still gets in afterwards: a rejected handshake must
	// not claim the stream.
	ds, err := Dial(srv.Addr().String(), DialConfig{StreamID: "cam0", Token: "hunter2"})
	if err != nil {
		t.Fatal(err)
	}
	ds.Close()
}

func TestServerRejectsUnknownStream(t *testing.T) {
	srv := startServer(t, ServerConfig{Streams: []string{"cam0"}})
	_, err := Dial(srv.Addr().String(), DialConfig{StreamID: "nope"})
	if !errors.Is(err, ErrRejected) || !strings.Contains(err.Error(), "unknown stream") {
		t.Fatalf("got %v, want ErrRejected (unknown stream)", err)
	}
}

func TestServerRejectsSecondClaim(t *testing.T) {
	srv := startServer(t, ServerConfig{Streams: []string{"cam0"}})
	first, err := Dial(srv.Addr().String(), DialConfig{StreamID: "cam0"})
	if err != nil {
		t.Fatal(err)
	}
	defer first.Abort()
	_, err = Dial(srv.Addr().String(), DialConfig{StreamID: "cam0"})
	if !errors.Is(err, ErrRejected) || !strings.Contains(err.Error(), "already connected") {
		t.Fatalf("got %v, want ErrRejected (stream busy)", err)
	}
}

func TestServerRejectsResolutionMismatch(t *testing.T) {
	srv := startServer(t, ServerConfig{Streams: []string{"cam0"}, Res: events.DAVIS240})
	_, err := Dial(srv.Addr().String(), DialConfig{StreamID: "cam0", Res: events.Resolution{A: 640, B: 480}})
	if !errors.Is(err, ErrRejected) || !strings.Contains(err.Error(), "resolution mismatch") {
		t.Fatalf("got %v, want ErrRejected (resolution mismatch)", err)
	}
}

func TestServerRejectsGarbageHandshake(t *testing.T) {
	srv := startServer(t, ServerConfig{Streams: []string{"cam0"}})
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET / HTTP/1.1\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	var status [1]byte
	if _, err := io.ReadFull(conn, status[:]); err != nil {
		t.Fatal(err)
	}
	if status[0] != StatusBadHandshake {
		t.Fatalf("status = %d, want StatusBadHandshake", status[0])
	}
}

func TestServerRejectsConfigErrors(t *testing.T) {
	if _, err := Listen("127.0.0.1:0", ServerConfig{}); err == nil {
		t.Error("no streams accepted")
	}
	if _, err := Listen("127.0.0.1:0", ServerConfig{Streams: []string{"a", "a"}}); err == nil {
		t.Error("duplicate stream ids accepted")
	}
	if _, err := Listen("127.0.0.1:0", ServerConfig{Streams: []string{""}}); err == nil {
		t.Error("empty stream id accepted")
	}
}

func TestServerCloseEndsOpenStreams(t *testing.T) {
	srv := startServer(t, ServerConfig{Streams: []string{"cam0", "cam1"}})
	ds, err := Dial(srv.Addr().String(), DialConfig{StreamID: "cam0"})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Abort()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// Both the connected and the never-connected stream end with the
	// server-closed fault, so pipeline workers blocked in NextWindow wake up.
	for _, id := range []string{"cam0", "cam1"} {
		src := srv.Source(id)
		if _, err := src.NextWindow(nil, 0, 1000); err != io.EOF {
			t.Errorf("stream %s after Close: err %v, want io.EOF (tolerant mode)", id, err)
		}
		if st := src.SourceStats(); st.Faults != 1 || !strings.Contains(st.LastError, "server closed") {
			t.Errorf("stream %s stats after Close: %+v", id, st)
		}
	}
	// Close is idempotent.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}
